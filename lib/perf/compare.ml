(* Regression gate: compare a freshly produced benchmark document against
   a committed baseline (both in the respct-sim/bench/v1 schema).

   Two metrics per benchmark, two very different tolerances:

   - simulated throughput is deterministic, so any drift beyond float
     noise means the *cost model* changed — gate tightly;
   - wall throughput depends on the host, so both documents carry a
     calibration score (a fixed integer-work loop timed on their machine)
     and the gate compares calibration-normalised medians with a generous
     tolerance. A genuine 2× slowdown still trips it; scheduler noise on a
     shared CI runner does not. *)

type verdict = {
  v_bench : string;
  v_metric : string; (* "wall" or "sim" *)
  v_baseline : float;
  v_current : float;
  v_ratio : float; (* current / baseline; < 1 means slower *)
  v_tolerance : float;
  v_ok : bool;
}

type report = { verdicts : verdict list; errors : string list }

let ok r = r.errors = [] && List.for_all (fun v -> v.v_ok) r.verdicts

let default_wall_tolerance = 0.40
let default_sim_tolerance = 0.001

let float_member k j = Option.bind (Obs.Json.member k j) Obs.Json.to_float_opt

let median_member k j =
  Option.bind (Obs.Json.member k j) (float_member "median")

let benches_of doc =
  match Obs.Json.member "benchmarks" doc with
  | Some (Obs.Json.List entries) ->
      List.filter_map
        (fun e ->
          match Obs.Json.member "name" e with
          | Some (Obs.Json.String name) -> Some (name, e)
          | _ -> None)
        entries
  | _ -> []

let verdict ~bench ~metric ~tolerance ~baseline ~current =
  let ratio = current /. baseline in
  {
    v_bench = bench;
    v_metric = metric;
    v_baseline = baseline;
    v_current = current;
    v_ratio = ratio;
    v_tolerance = tolerance;
    v_ok = ratio >= 1.0 -. tolerance;
  }

(* Every benchmark present in the baseline must be present and not
   regressed in the current document; benchmarks that only exist in the
   current document are new and pass by construction. *)
let compare ?(wall_tolerance = default_wall_tolerance)
    ?(sim_tolerance = default_sim_tolerance) ~baseline ~current () =
  let schema doc =
    match Obs.Json.member "schema" doc with
    | Some (Obs.Json.String s) -> s
    | _ -> "<missing>"
  in
  if schema baseline <> "respct-sim/bench/v1" then
    {
      verdicts = [];
      errors =
        [ Printf.sprintf "baseline has schema %S, not respct-sim/bench/v1"
            (schema baseline) ];
    }
  else begin
    let base_cal = float_member "calibration_mips" baseline in
    let cur_cal = float_member "calibration_mips" current in
    let cur_benches = benches_of current in
    let errors = ref [] in
    let verdicts = ref [] in
    List.iter
      (fun (name, base_entry) ->
        match List.assoc_opt name cur_benches with
        | None ->
            errors :=
              Printf.sprintf "benchmark %S missing from current run" name
              :: !errors
        | Some cur_entry -> (
            (match
               ( median_member "sim_mops" base_entry,
                 median_member "sim_mops" cur_entry )
             with
            | Some b, Some c ->
                verdicts :=
                  verdict ~bench:name ~metric:"sim" ~tolerance:sim_tolerance
                    ~baseline:b ~current:c
                  :: !verdicts
            | _ ->
                errors :=
                  Printf.sprintf "benchmark %S lacks sim_mops medians" name
                  :: !errors);
            (* Wall verdicts need calibrations on both sides; a baseline
               exported with stripped wall fields simply has no wall gate. *)
            match
              ( median_member "wall_kops" base_entry,
                median_member "wall_kops" cur_entry,
                base_cal,
                cur_cal )
            with
            | Some b, Some c, Some bcal, Some ccal ->
                verdicts :=
                  verdict ~bench:name ~metric:"wall" ~tolerance:wall_tolerance
                    ~baseline:(b /. bcal) ~current:(c /. ccal)
                  :: !verdicts
            | None, _, _, _ -> ()
            | _ ->
                errors :=
                  Printf.sprintf
                    "benchmark %S has wall medians but a calibration score \
                     is missing"
                    name
                  :: !errors))
      (benches_of baseline);
    { verdicts = List.rev !verdicts; errors = List.rev !errors }
  end

let print_report ppf r =
  List.iter (fun e -> Format.fprintf ppf "error: %s@." e) r.errors;
  List.iter
    (fun v ->
      Format.fprintf ppf "%-12s %-4s %10.3f -> %10.3f  ratio %.3f  %s@."
        v.v_bench v.v_metric v.v_baseline v.v_current v.v_ratio
        (if v.v_ok then "ok"
         else
           Printf.sprintf "REGRESSION (beyond %.0f%% tolerance)"
             (100.0 *. v.v_tolerance)))
    r.verdicts;
  Format.fprintf ppf "perf compare: %s@."
    (if ok r then "PASS" else "FAIL")
