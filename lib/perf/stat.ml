(* Robust summary statistics for benchmark samples.

   Wall-clock samples on a shared machine are contaminated by scheduler
   noise, so the harness reports medians with MAD (median absolute
   deviation) spreads rather than means with standard deviations: one
   preempted run shifts a mean arbitrarily but moves a median by at most
   one rank. Confidence intervals come from a seeded bootstrap — all
   randomness flows through Simnvm.Rng, so the same samples always yield
   the same interval and the exported JSON stays byte-deterministic. *)

let sorted xs =
  let a = Array.copy xs in
  Array.sort compare a;
  a

let median_of_sorted a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stat.median: empty sample";
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median xs = median_of_sorted (sorted xs)

(* Median absolute deviation around the median: the robust analogue of a
   standard deviation (consistent up to the 1.4826 normal factor, which we
   deliberately do not apply — the raw MAD is what thresholds are set
   against). *)
let mad xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

(* Percentile of a sorted sample, nearest-rank. *)
let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stat.percentile: empty sample";
  let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  a.(max 0 (min (n - 1) rank))

(* Bootstrap confidence interval for the median: resample with
   replacement, take the median of each resample, report the central
   [confidence] mass of the resulting distribution. Deterministic from
   [seed]. With a single sample the interval degenerates to the point. *)
let bootstrap_ci ?(resamples = 300) ?(confidence = 0.95) ~seed xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stat.bootstrap_ci: empty sample";
  if n = 1 then (xs.(0), xs.(0))
  else begin
    let rng = Simnvm.Rng.create seed in
    let medians =
      Array.init resamples (fun _ ->
          let resample = Array.init n (fun _ -> xs.(Simnvm.Rng.int rng n)) in
          median resample)
    in
    let s = sorted medians in
    let alpha = (1.0 -. confidence) /. 2.0 in
    (percentile_of_sorted s alpha, percentile_of_sorted s (1.0 -. alpha))
  end

type summary = {
  s_median : float;
  s_mad : float;
  s_ci_lo : float;
  s_ci_hi : float;
}

let summarize ~seed xs =
  let lo, hi = bootstrap_ci ~seed xs in
  { s_median = median xs; s_mad = mad xs; s_ci_lo = lo; s_ci_hi = hi }

let summary_json s =
  Obs.Json.Obj
    [
      ("median", Obs.Json.Float s.s_median);
      ("mad", Obs.Json.Float s.s_mad);
      ("ci95_lo", Obs.Json.Float s.s_ci_lo);
      ("ci95_hi", Obs.Json.Float s.s_ci_hi);
    ]
