(* The benchmark suite: the paper's two throughput sweeps, run through the
   *uninstrumented* experiment points (no Memobs subscribers attached) so
   the kernel's stats-only fast path is what gets measured — exactly the
   configuration every property test and crashmatrix run exercises.

   Each benchmark executes a whole sweep (every system × every thread
   count) and reports one aggregate sample: total simulated operations,
   total virtual time, wall time. Aggregating keeps the sample count low
   and the per-sample work large, which is what the median/MAD machinery
   wants. *)

type preset = {
  p_name : string;
  p_runs : int;
  p_warmup : int;
  p_benches : (string * (unit -> Bench.sample)) list;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let ops, sim_ns = f () in
  { Bench.wall_s = Unix.gettimeofday () -. t0; sim_ns; ops }

let map_sample (scale : Harness.Experiments.scale) kinds () =
  timed (fun () ->
      let ops = ref 0 and sim = ref 0.0 in
      List.iter
        (fun kind ->
          List.iter
            (fun threads ->
              let r, _ =
                Harness.Experiments.map_point ~update_pct:50 scale kind
                  ~threads
              in
              ops := !ops + r.Harness.Workload.total_ops;
              sim := !sim +. r.Harness.Workload.elapsed_ns)
            scale.Harness.Experiments.sweep_threads)
        kinds;
      (!ops, !sim))

let queue_sample (scale : Harness.Experiments.scale) kinds () =
  timed (fun () ->
      let ops = ref 0 and sim = ref 0.0 in
      List.iter
        (fun kind ->
          List.iter
            (fun threads ->
              let r, _ =
                Harness.Experiments.queue_point scale kind ~threads
              in
              ops := !ops + r.Harness.Workload.total_ops;
              sim := !sim +. r.Harness.Workload.elapsed_ns)
            scale.Harness.Experiments.sweep_threads)
        kinds;
      (!ops, !sim))

let benches_for scale =
  [
    ("fig8-map", map_sample scale Harness.Systems.map_kinds);
    ("fig9-queue", queue_sample scale Harness.Systems.queue_kinds);
  ]

(* Default preset: the figures' own scale — the ISSUE's "fig8 + fig9
   workloads at default scale". *)
let default_preset =
  {
    p_name = "default";
    p_runs = 3;
    p_warmup = 1;
    p_benches = benches_for Harness.Experiments.small;
  }

(* Smoke preset: the same sweeps on a drastically shrunk world, for CI
   and for the harness's own tests — seconds, not minutes. *)
let smoke_scale =
  {
    Harness.Experiments.small with
    Harness.Experiments.label = "smoke";
    sweep_threads = [ 2 ];
    duration_ns = 100_000.0;
    map_prefill = 400;
    buckets = 200;
    queue_prefill = 50;
    period_ns = 25_000.0;
  }

let smoke_preset =
  {
    p_name = "smoke";
    p_runs = 2;
    p_warmup = 1;
    p_benches = benches_for smoke_scale;
  }

let preset_of_string = function
  | "default" -> Some default_preset
  | "smoke" -> Some smoke_preset
  | _ -> None

let run ?runs ?warmup ?(seed = 42) ?only preset =
  let benches =
    match only with
    | None -> preset.p_benches
    | Some name -> List.filter (fun (n, _) -> n = name) preset.p_benches
  in
  let runs = Option.value ~default:preset.p_runs runs in
  let warmup = Option.value ~default:preset.p_warmup warmup in
  List.map (fun (name, f) -> Bench.measure ~warmup ~runs ~seed ~name f) benches

let document ?strip_wall ~calibration preset ms =
  Bench.document ?strip_wall ~preset:preset.p_name ~calibration ms
