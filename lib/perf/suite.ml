(* The benchmark suite: the paper's two throughput sweeps, run through the
   *uninstrumented* experiment points (no Memobs subscribers attached) so
   the kernel's stats-only fast path is what gets measured — exactly the
   configuration every property test and crashmatrix run exercises.

   Each benchmark executes a whole sweep (every system × every thread
   count) and reports one aggregate sample: total simulated operations,
   total virtual time, wall time. Aggregating keeps the sample count low
   and the per-sample work large, which is what the median/MAD machinery
   wants. *)

type preset = {
  p_name : string;
  p_runs : int;
  p_warmup : int;
  p_benches : (string * (unit -> Bench.sample)) list;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let ops, sim_ns = f () in
  { Bench.wall_s = Unix.gettimeofday () -. t0; sim_ns; ops }

let map_sample (scale : Harness.Experiments.scale) kinds () =
  timed (fun () ->
      let ops = ref 0 and sim = ref 0.0 in
      List.iter
        (fun kind ->
          List.iter
            (fun threads ->
              let r, _ =
                Harness.Experiments.map_point ~update_pct:50 scale kind
                  ~threads
              in
              ops := !ops + r.Harness.Workload.total_ops;
              sim := !sim +. r.Harness.Workload.elapsed_ns)
            scale.Harness.Experiments.sweep_threads)
        kinds;
      (!ops, !sim))

let queue_sample (scale : Harness.Experiments.scale) kinds () =
  timed (fun () ->
      let ops = ref 0 and sim = ref 0.0 in
      List.iter
        (fun kind ->
          List.iter
            (fun threads ->
              let r, _ =
                Harness.Experiments.queue_point scale kind ~threads
              in
              ops := !ops + r.Harness.Workload.total_ops;
              sim := !sim +. r.Harness.Workload.elapsed_ns)
            scale.Harness.Experiments.sweep_threads)
        kinds;
      (!ops, !sim))

(* ResPCT with pipelined checkpointing (async epoch advance,
   double-buffered commits): the same fig8 map sweep restricted to ResPCT,
   so the pipelined runtime's hot paths (volatile epoch views, overlap
   barrier, staged reclamation) are under the same wall-clock regression
   gate as everything else. *)
let pipeline_map_sample (scale : Harness.Experiments.scale) () =
  let kind = Harness.Systems.Respct in
  timed (fun () ->
      let ops = ref 0 and sim = ref 0.0 in
      List.iter
        (fun threads ->
          let p =
            {
              (Harness.Experiments.params_for scale ~threads ~kind) with
              Harness.Systems.pipeline = true;
            }
          in
          let r, _ =
            Harness.Experiments.map_point ~update_pct:50 ~params:p scale kind
              ~threads
          in
          ops := !ops + r.Harness.Workload.total_ops;
          sim := !sim +. r.Harness.Workload.elapsed_ns)
        scale.Harness.Experiments.sweep_threads;
      (!ops, !sim))

(* The sharded KV service front-end (lib/service): sessions, admission,
   batching and consistent-hash routing over per-shard runtimes, on the
   Sim backend. The sample is whole-service: completed requests over the
   run's virtual makespan, so a regression anywhere in the serving path
   (router, queues, batcher, shard runtimes, rolling checkpoints) moves
   it. *)
let service_sample ~big () =
  let cfg =
    if big then
      {
        Service.Front.smoke with
        Service.Front.sessions = 500;
        requests = 12;
        keys = 40_000;
        prefill = 10_000;
      }
    else
      {
        Service.Front.smoke with
        Service.Front.sessions = 100;
        requests = 6;
        keys = 8_000;
        prefill = 2_000;
      }
  in
  timed (fun () ->
      let r = Service.Front.run cfg in
      (r.Service.Front.r_completed, r.Service.Front.r_makespan_ns))

let benches_for ?(big = true) scale =
  [
    ("fig8-map", map_sample scale Harness.Systems.map_kinds);
    ("fig9-queue", queue_sample scale Harness.Systems.queue_kinds);
    ("respct-pipe", pipeline_map_sample scale);
    ("kv-service", service_sample ~big);
  ]

(* Default preset: the figures' own scale — the ISSUE's "fig8 + fig9
   workloads at default scale". *)
let default_preset =
  {
    p_name = "default";
    p_runs = 3;
    p_warmup = 1;
    p_benches = benches_for Harness.Experiments.small;
  }

(* Smoke preset: the same sweeps on a drastically shrunk world, for CI
   and for the harness's own tests — seconds, not minutes. *)
let smoke_scale =
  {
    Harness.Experiments.small with
    Harness.Experiments.label = "smoke";
    sweep_threads = [ 2 ];
    duration_ns = 100_000.0;
    map_prefill = 400;
    buckets = 200;
    queue_prefill = 50;
    period_ns = 25_000.0;
  }

let smoke_preset =
  {
    p_name = "smoke";
    p_runs = 2;
    p_warmup = 1;
    p_benches = benches_for ~big:false smoke_scale;
  }

let preset_of_string = function
  | "default" -> Some default_preset
  | "smoke" -> Some smoke_preset
  | _ -> None

(* Checkpoint-pause probe: the metric the pipelined runtime is built to
   move. One classic and one pipelined ResPCT map run at the preset's
   largest thread count; the pause is the mutator stall per checkpoint
   (the whole flush in classic mode, only quiescence + handoff in
   pipeline mode) and the overlap is the background-flush window that
   replaced the rest of it. *)
type pause = {
  pause_mode : string; (* "classic" | "pipeline" *)
  pause_stall_us : float; (* mutator stall per checkpoint *)
  pause_overlap_us : float; (* overlapped background flush per checkpoint *)
  pause_checkpoints : int;
}

let checkpoint_pause preset =
  let scale =
    if preset.p_name = "smoke" then smoke_scale else Harness.Experiments.small
  in
  let kind = Harness.Systems.Respct in
  let threads =
    List.fold_left max 1 scale.Harness.Experiments.sweep_threads
  in
  let run ~pipeline =
    let p =
      {
        (Harness.Experiments.params_for scale ~threads ~kind) with
        Harness.Systems.pipeline;
      }
    in
    let _, rt = Harness.Experiments.map_point ~update_pct:50 ~params:p scale kind ~threads in
    Option.bind rt (fun rt ->
        let s = Respct.Runtime.stats rt in
        let n = s.Respct.Runtime.checkpoints in
        if n = 0 then None
        else
          Some
            {
              pause_mode = (if pipeline then "pipeline" else "classic");
              pause_stall_us =
                s.Respct.Runtime.stall_ns /. float_of_int n /. 1e3;
              pause_overlap_us =
                s.Respct.Runtime.overlap_ns /. float_of_int n /. 1e3;
              pause_checkpoints = n;
            })
  in
  List.filter_map (fun pipeline -> run ~pipeline) [ false; true ]

let run ?runs ?warmup ?(seed = 42) ?only preset =
  let benches =
    match only with
    | None -> preset.p_benches
    | Some name -> List.filter (fun (n, _) -> n = name) preset.p_benches
  in
  let runs = Option.value ~default:preset.p_runs runs in
  let warmup = Option.value ~default:preset.p_warmup warmup in
  List.map (fun (name, f) -> Bench.measure ~warmup ~runs ~seed ~name f) benches

let document ?strip_wall ~calibration preset ms =
  Bench.document ?strip_wall ~preset:preset.p_name ~calibration ms
