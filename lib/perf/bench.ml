(* Benchmark runner: warmup + repetition around a workload closure.

   A workload reports one [sample] per execution: how many simulated
   operations it completed, how much virtual time they covered and how
   much wall-clock time the run took. Two throughputs fall out:

   - simulated throughput (Mops per virtual second) is a pure function of
     the simulation and must be bit-identical across same-seed runs — it
     guards the *cost model* against accidental changes;
   - wall throughput (kops per wall second) measures how fast the host
     executes the simulator — it is what a hot-path optimisation moves and
     what the regression gate watches, normalised by [calibrate] so
     machines of different speeds can share a baseline.

   Export strips to [Obs.Json]; [strip_wall] removes every
   host-speed-dependent field so determinism tests can compare documents
   byte-for-byte. *)

type sample = {
  wall_s : float; (* host seconds for the run *)
  sim_ns : float; (* virtual nanoseconds covered by the measured windows *)
  ops : int; (* simulated operations completed *)
}

type measurement = {
  name : string;
  warmup : int;
  runs : int;
  samples : sample array; (* in execution order, warmup excluded *)
  wall_kops : Stat.summary; (* thousand simulated ops per wall second *)
  sim_mops : Stat.summary; (* million simulated ops per virtual second *)
}

let wall_kops_of s = float_of_int s.ops /. Float.max 1e-9 s.wall_s /. 1e3
let sim_mops_of s = float_of_int s.ops /. Float.max 1.0 s.sim_ns *. 1e3

(* Seed the bootstrap from the benchmark name so reordering benchmarks in
   a suite cannot silently change any interval. *)
let name_seed name seed =
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) seed name
  land max_int

let measure ?(warmup = 1) ?(runs = 3) ?(seed = 42) ~name f =
  if runs < 1 then invalid_arg "Bench.measure: runs must be >= 1";
  for _ = 1 to warmup do
    ignore (f () : sample)
  done;
  let samples = Array.init runs (fun _ -> f ()) in
  let summarize proj =
    Stat.summarize ~seed:(name_seed name seed) (Array.map proj samples)
  in
  {
    name;
    warmup;
    runs;
    samples;
    wall_kops = summarize wall_kops_of;
    sim_mops = summarize sim_mops_of;
  }

(* Host-speed calibration: a fixed pure-integer loop (the splitmix64 step
   the simulator's own RNG uses) timed on the current machine. Wall
   throughputs are meaningless across machines; wall throughput divided by
   the calibration score is comparable enough to gate on with a generous
   threshold. *)
let calibration_iters = 20_000_000

let calibrate () =
  let rng = Simnvm.Rng.create 7 in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to calibration_iters do
    acc := !acc lxor Simnvm.Rng.bits rng
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity !acc);
  float_of_int calibration_iters /. Float.max 1e-9 dt /. 1e6

let sample_json ~strip_wall s =
  Obs.Json.Obj
    (List.concat
       [
         [ ("ops", Obs.Json.Int s.ops); ("sim_ns", Obs.Json.Float s.sim_ns) ];
         (if strip_wall then []
          else [ ("wall_s", Obs.Json.Float s.wall_s) ]);
       ])

let measurement_json ?(strip_wall = false) m =
  Obs.Json.Obj
    (List.concat
       [
         [
           ("name", Obs.Json.String m.name);
           ("warmup", Obs.Json.Int m.warmup);
           ("runs", Obs.Json.Int m.runs);
           ( "samples",
             Obs.Json.List
               (Array.to_list (Array.map (sample_json ~strip_wall) m.samples))
           );
           ("sim_mops", Stat.summary_json m.sim_mops);
         ];
         (if strip_wall then []
          else [ ("wall_kops", Stat.summary_json m.wall_kops) ]);
       ])

(* The benchmark document: schema + preset label + calibration score +
   one entry per measurement. [strip_wall] also drops the calibration
   (it is a wall measurement). *)
let document ?(strip_wall = false) ~preset ~calibration ms =
  Obs.Json.Obj
    (List.concat
       [
         [
           ("schema", Obs.Json.String "respct-sim/bench/v1");
           ("preset", Obs.Json.String preset);
         ];
         (if strip_wall then []
          else [ ("calibration_mips", Obs.Json.Float calibration) ]);
         [
           ( "benchmarks",
             Obs.Json.List (List.map (measurement_json ~strip_wall) ms) );
         ];
       ])
