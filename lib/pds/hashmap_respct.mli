(** ResPCT-instrumented lock-based hash map.

    Instrumentation follows the paper's section 3.3.2 rules with restart
    points placed after each operation: bucket heads, node [next] pointers
    and node values are InCLL variables (WAR across RPs); node keys are
    written once and only tracked. Nodes are line-aligned 8-word blocks
    (the layout change the paper's section 6 discusses). *)

type t

val node_words : int

val create : Respct.Runtime.t -> slot:int -> buckets:int -> t
(** Allocate bucket-head cells from the runtime's persistent heap; call
    from a simulated thread. @raise Invalid_argument if [buckets <= 0]. *)

val insert : t -> slot:int -> key:int -> value:int -> bool
(** The caller's slot must be the executing thread's slot (it owns the
    tracking list the update is recorded in). *)

val search : t -> slot:int -> key:int -> int option
val remove : t -> slot:int -> key:int -> bool

val ops : t -> Ops.map
(** Harness-facing record; [map_rp] is [Runtime.rp]. *)

val persisted_bindings : Simnvm.Memsys.t -> t -> (int * int) list
(** Recovery-time oracle: the logical (key, value) bindings readable from
    the NVMM image, sorted (crash-consistency tests compare this against
    the snapshot of the last checkpoint). *)

val heads : t -> int
(** Base address of the packed bucket-head cell array (log it so an
    out-of-process oracle can rebuild the walk with {!bindings_of}). *)

val buckets : t -> int

val bindings_of :
  read:(int -> int) ->
  line_words:int ->
  fuel:int ->
  heads:int ->
  buckets:int ->
  (int * int) list
(** The walk underneath {!persisted_bindings}, parameterised over the read
    function and geometry: pass a backend's [persisted] (durable image) or
    [peek] (coherent view) to take the oracle reading from any vantage
    point, including a process that holds no [t].
    @raise Failure on a cyclic chain (fuel exhausted). *)
