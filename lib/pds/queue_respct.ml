(* ResPCT-instrumented lock-based FIFO queue.

   Head and tail pointers and node [next] pointers carry WAR dependencies
   across restart points -> InCLL variables; node values are written once ->
   plain words with add_modified. The paper's section 6 notes that InCLL
   changes the queue's data layout (elements are no longer contiguous):
   here every node occupies a line-aligned 4-word block.

   Node layout: +0 value (plain), +1 next InCLL cell. *)

let node_words = 4

type t = {
  rt : Respct.Runtime.t;
  env : Simsched.Env.t;
  head_cell : Respct.Incll.cell;
  tail_cell : Respct.Incll.cell;
  lock : Simsched.Mutex.t;
}

let value_of node = node
let next_cell node = node + 1

let alloc_node t ~slot v next =
  let node, fresh =
    Respct.Runtime.alloc_raw_block ~align_line:true t.rt ~slot
      ~words:node_words
  in
  Simsched.Env.store t.env (value_of node) v;
  Respct.Runtime.add_modified t.rt ~slot (value_of node);
  Respct.Runtime.init_incll t.rt ~slot ~fresh (next_cell node) next;
  node

let create rt ~slot =
  let head_cell = Respct.Runtime.alloc_incll rt ~slot 0 in
  let tail_cell = Respct.Runtime.alloc_incll rt ~slot 0 in
  let t =
    {
      rt;
      env = Respct.Runtime.env rt;
      head_cell;
      tail_cell;
      lock = Simsched.Mutex.create ~name:"queue" ();
    }
  in
  let sentinel = alloc_node t ~slot 0 0 in
  Respct.Runtime.update rt ~slot head_cell sentinel;
  Respct.Runtime.update rt ~slot tail_cell sentinel;
  t

let sched t = Simsched.Env.sched t.env

let enqueue t ~slot v =
  Simsched.Mutex.with_lock (sched t) t.lock (fun () ->
      let node = alloc_node t ~slot v 0 in
      let tail = Respct.Runtime.read t.rt ~slot t.tail_cell in
      Respct.Runtime.update t.rt ~slot (next_cell tail) node;
      Respct.Runtime.update t.rt ~slot t.tail_cell node)

let dequeue t ~slot =
  Simsched.Mutex.with_lock (sched t) t.lock (fun () ->
      let sentinel = Respct.Runtime.read t.rt ~slot t.head_cell in
      let first = Respct.Runtime.read t.rt ~slot (next_cell sentinel) in
      if first = 0 then None
      else begin
        let v = Simsched.Env.load t.env (value_of first) in
        Respct.Runtime.update t.rt ~slot t.head_cell first;
        Respct.Runtime.free t.rt ~slot sentinel ~words:node_words;
        Some v
      end)

let head_cell t = t.head_cell
let tail_cell t = t.tail_cell

let ops t : Ops.queue =
  {
    Ops.enqueue = (fun ~slot v -> enqueue t ~slot v);
    dequeue = (fun ~slot -> dequeue t ~slot);
    queue_rp = (fun ~slot ~id -> Respct.Runtime.rp t.rt ~slot id);
  }

(* Recovery-time view: the queue contents in the persistent image, head to
   tail (used by crash-consistency tests). Parameterised over the read
   function, like [Hashmap_respct.bindings_of], so any vantage point (live
   image, reopened file, pre-crash peek) and any process can take the
   reading. *)
let contents_of ~read ~fuel ~head =
  let sentinel = read head in
  (* Fuel bounds the walk: a corrupt image (the crash explorer feeds us
     adversarial ones) can tie the chain into a cycle. *)
  let rec walk node acc fuel =
    if node = 0 then List.rev acc
    else if fuel = 0 then failwith "persisted queue chain is cyclic"
    else walk (read (next_cell node)) (read (value_of node) :: acc) (fuel - 1)
  in
  walk (read (next_cell sentinel)) [] fuel

let persisted_contents mem t =
  contents_of
    ~read:(Simnvm.Memsys.persisted mem)
    ~fuel:(Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words
    ~head:t.head_cell
