(* Transient lock-based hash map (Synch-framework style: one pthread lock
   per bucket, chained nodes of [key; value; next]).

   This is the "original program" of the paper's evaluation; it runs over
   NVMM or DRAM depending on the memory interface it is given, and is also
   the structural core the persistence baselines wrap (PMThreads store
   interception, Clobber-NVM / Quadra failure-atomic sections). *)

let node_words = 3

type t = {
  env : Simsched.Env.t;
  mem : Mem_iface.t;
  buckets : int;
  heads : int; (* base address of the bucket-head array *)
  locks : Simsched.Mutex.t array;
}

let create env mem ~buckets =
  if buckets <= 0 then invalid_arg "Hashmap_transient: buckets must be positive";
  let heads = mem.Mem_iface.alloc ~slot:0 ~words:buckets in
  (* A fresh simulated arena is zeroed: head = 0 means an empty bucket. *)
  {
    env;
    mem;
    buckets;
    heads;
    locks = Array.init buckets (fun _ -> Simsched.Mutex.create ~name:"bucket" ());
  }

let bucket t key = (key land max_int) mod t.buckets

let sched t = Simsched.Env.sched t.env

let insert t ~slot ~key ~value =
  let load = t.mem.Mem_iface.load ~slot and store = t.mem.Mem_iface.store ~slot in
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let head = load (t.heads + b) in
      let rec find node =
        if node = 0 then 0
        else if load node = key then node
        else find (load (node + 2))
      in
      match find head with
      | 0 ->
          let node = t.mem.Mem_iface.alloc ~slot ~words:node_words in
          store node key;
          store (node + 1) value;
          store (node + 2) head;
          store (t.heads + b) node;
          true
      | node ->
          store (node + 1) value;
          false)

let search t ~slot ~key =
  let load = t.mem.Mem_iface.load ~slot in
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let rec find node =
        if node = 0 then None
        else if load node = key then Some (load (node + 1))
        else find (load (node + 2))
      in
      find (load (t.heads + b)))

let remove t ~slot ~key =
  let load = t.mem.Mem_iface.load ~slot and store = t.mem.Mem_iface.store ~slot in
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let rec unlink prev node =
        if node = 0 then false
        else if load node = key then begin
          let nxt = load (node + 2) in
          if prev = 0 then store (t.heads + b) nxt else store (prev + 2) nxt;
          t.mem.Mem_iface.free ~slot node ~words:node_words;
          true
        end
        else unlink node (load (node + 2))
      in
      unlink 0 (load (t.heads + b)))

let ops t : Ops.map =
  {
    Ops.insert = (fun ~slot ~key ~value -> insert t ~slot ~key ~value);
    remove = (fun ~slot ~key -> remove t ~slot ~key);
    search = (fun ~slot ~key -> search t ~slot ~key);
    map_rp = Ops.no_rp;
  }

(* Recovery-time oracle view: rebuild the logical contents from the NVMM
   image alone (meaningful only when the arena is NVMM-backed, i.e. for the
   durable baselines wrapping this structure). *)
let persisted_bindings mem t =
  let p = Simnvm.Memsys.persisted mem in
  (* Fuel bounds each bucket walk: corrupt crash images can tie a chain
     into a cycle. *)
  let fuel = (Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words in
  let rec walk node acc fuel =
    if node = 0 then acc
    else if fuel = 0 then failwith "persisted bucket chain is cyclic"
    else walk (p (node + 2)) ((p node, p (node + 1)) :: acc) (fuel - 1)
  in
  let all = ref [] in
  for b = 0 to t.buckets - 1 do
    all := walk (p (t.heads + b)) !all fuel
  done;
  List.sort compare !all
