(* Transient lock-based FIFO queue (the paper's "queue protected by one
   lock"): a sentinel-headed linked list of [value; next] nodes. The head
   and tail pointers live in simulated memory like the rest of the
   structure. *)

let node_words = 2

type t = {
  env : Simsched.Env.t;
  mem : Mem_iface.t;
  head_ptr : int;
  tail_ptr : int;
  lock : Simsched.Mutex.t;
}

let create env mem =
  let ptrs = mem.Mem_iface.alloc ~slot:0 ~words:2 in
  let sentinel = mem.Mem_iface.alloc ~slot:0 ~words:node_words in
  mem.Mem_iface.store ~slot:0 (sentinel + 1) 0;
  mem.Mem_iface.store ~slot:0 ptrs sentinel;
  mem.Mem_iface.store ~slot:0 (ptrs + 1) sentinel;
  {
    env;
    mem;
    head_ptr = ptrs;
    tail_ptr = ptrs + 1;
    lock = Simsched.Mutex.create ~name:"queue" ();
  }

let sched t = Simsched.Env.sched t.env

let enqueue t ~slot v =
  let load = t.mem.Mem_iface.load ~slot and store = t.mem.Mem_iface.store ~slot in
  Simsched.Mutex.with_lock (sched t) t.lock (fun () ->
      let node = t.mem.Mem_iface.alloc ~slot ~words:node_words in
      store node v;
      store (node + 1) 0;
      let tail = load t.tail_ptr in
      store (tail + 1) node;
      store t.tail_ptr node)

let dequeue t ~slot =
  let load = t.mem.Mem_iface.load ~slot and store = t.mem.Mem_iface.store ~slot in
  Simsched.Mutex.with_lock (sched t) t.lock (fun () ->
      let sentinel = load t.head_ptr in
      let first = load (sentinel + 1) in
      if first = 0 then None
      else begin
        let v = load first in
        (* [first] becomes the new sentinel; the old one is reclaimed. *)
        store t.head_ptr first;
        t.mem.Mem_iface.free ~slot sentinel ~words:node_words;
        Some v
      end)

let ops t : Ops.queue =
  {
    Ops.enqueue = (fun ~slot v -> enqueue t ~slot v);
    dequeue = (fun ~slot -> dequeue t ~slot);
    queue_rp = Ops.no_rp;
  }

(* Recovery-time oracle view from the NVMM image (NVMM-backed arenas only):
   head_ptr names the sentinel; contents follow its next chain. *)
let persisted_contents mem t =
  let p = Simnvm.Memsys.persisted mem in
  (* Fuel bounds the walk: corrupt crash images can tie the chain into a
     cycle. *)
  let rec walk node acc fuel =
    if node = 0 then List.rev acc
    else if fuel = 0 then failwith "persisted queue chain is cyclic"
    else walk (p (node + 1)) (p node :: acc) (fuel - 1)
  in
  let sentinel = p t.head_ptr in
  if sentinel = 0 then []
  else
    walk (p (sentinel + 1)) []
      (Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words
