(** Transient lock-based FIFO queue ("queue protected by one lock"):
    sentinel-headed linked list of [value; next] nodes, head/tail pointers
    in simulated memory. *)

type t

val node_words : int

val create : Simsched.Env.t -> Mem_iface.t -> t
val enqueue : t -> slot:int -> int -> unit
val dequeue : t -> slot:int -> int option

val ops : t -> Ops.queue
(** Harness-facing closure record (no restart points). *)

val persisted_contents : Simnvm.Memsys.t -> t -> int list
(** Recovery-time oracle: contents (head to tail) readable from the NVMM
    image alone. Meaningful only when the arena is NVMM-backed (the durable
    baselines wrapping this structure). *)
