(** ResPCT-instrumented lock-based FIFO queue: head/tail and node [next]
    pointers are InCLL variables, node values are write-once tracked words;
    nodes are line-aligned 4-word blocks recycled through the epoch-safe
    free lists of {!Respct.Heap}. *)

type t

val node_words : int

val create : Respct.Runtime.t -> slot:int -> t
(** Allocate the sentinel and pointer cells; call from a simulated thread. *)

val enqueue : t -> slot:int -> int -> unit
val dequeue : t -> slot:int -> int option

val ops : t -> Ops.queue
(** Harness-facing record; [queue_rp] is [Runtime.rp]. *)

val head_cell : t -> Respct.Incll.cell
(** The head pointer's InCLL cell (trace-analysis tests). *)

val tail_cell : t -> Respct.Incll.cell
(** The tail pointer's InCLL cell (trace-analysis tests). *)

val persisted_contents : Simnvm.Memsys.t -> t -> int list
(** Recovery-time oracle: queue contents (head to tail) readable from the
    NVMM image. *)

val contents_of : read:(int -> int) -> fuel:int -> head:int -> int list
(** The walk underneath {!persisted_contents}, parameterised over the read
    function: pass a backend's [persisted] or [peek] to take the reading
    from any vantage point (any process that knows the head cell address).
    @raise Failure on a cyclic chain (fuel exhausted). *)
