(* ResPCT-instrumented lock-based hash map.

   Per the paper's rules (section 3.3.2) with restart points placed after
   each operation:

   - bucket heads and node [next] pointers are read and later written within
     an epoch (WAR) -> InCLL variables;
   - node values are updated in place on a duplicate insert -> InCLL;
   - node keys are written exactly once when the node is linked -> plain
     persistent words, tracked with add_modified.

   Node layout (one cache line, line-aligned):
     +0  key               (plain word)
     +1  value InCLL cell  (record, backup, epoch_id)
     +4  next  InCLL cell  (record, backup, epoch_id)
     +7  padding *)

let node_words = 8

type t = {
  rt : Respct.Runtime.t;
  env : Simsched.Env.t;
  buckets : int;
  heads : int; (* base of the packed bucket-head InCLL cell array *)
  locks : Simsched.Mutex.t array;
}

let key_of node = node
let value_cell node = node + 1
let next_cell node = node + 4

let create rt ~slot ~buckets =
  if buckets <= 0 then invalid_arg "Hashmap_respct: buckets must be positive";
  let heads = Respct.Runtime.alloc_incll_array rt ~slot buckets ~init:0 in
  {
    rt;
    env = Respct.Runtime.env rt;
    buckets;
    heads;
    locks = Array.init buckets (fun _ -> Simsched.Mutex.create ~name:"bucket" ());
  }

let bucket t key = (key land max_int) mod t.buckets
let head_cell t b = Respct.Heap.cell_at t.env t.heads b
let sched t = Simsched.Env.sched t.env

let rec find t ~slot node key =
  if node = 0 then 0
  else if Simsched.Env.load t.env (key_of node) = key then node
  else find t ~slot (Respct.Runtime.read t.rt ~slot (next_cell node)) key

let insert t ~slot ~key ~value =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let head = Respct.Runtime.read t.rt ~slot (head_cell t b) in
      match find t ~slot head key with
      | 0 ->
          let node, fresh =
            Respct.Runtime.alloc_raw_block ~align_line:true t.rt ~slot
              ~words:node_words
          in
          (* The key is written once per node lifetime: WAR-free. *)
          Simsched.Env.store t.env (key_of node) key;
          Respct.Runtime.add_modified t.rt ~slot (key_of node);
          Respct.Runtime.init_incll t.rt ~slot ~fresh (value_cell node) value;
          Respct.Runtime.init_incll t.rt ~slot ~fresh (next_cell node) head;
          Respct.Runtime.update t.rt ~slot (head_cell t b) node;
          true
      | node ->
          Respct.Runtime.update t.rt ~slot (value_cell node) value;
          false)

let search t ~slot ~key =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let head = Respct.Runtime.read t.rt ~slot (head_cell t b) in
      match find t ~slot head key with
      | 0 -> None
      | node -> Some (Respct.Runtime.read t.rt ~slot (value_cell node)))

let remove t ~slot ~key =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let rec unlink prev node =
        if node = 0 then false
        else if Simsched.Env.load t.env (key_of node) = key then begin
          let nxt = Respct.Runtime.read t.rt ~slot (next_cell node) in
          if prev = 0 then Respct.Runtime.update t.rt ~slot (head_cell t b) nxt
          else Respct.Runtime.update t.rt ~slot (next_cell prev) nxt;
          Respct.Runtime.free t.rt ~slot node ~words:node_words;
          true
        end
        else unlink node (Respct.Runtime.read t.rt ~slot (next_cell node))
      in
      unlink 0 (Respct.Runtime.read t.rt ~slot (head_cell t b)))

let ops t : Ops.map =
  {
    Ops.insert = (fun ~slot ~key ~value -> insert t ~slot ~key ~value);
    remove = (fun ~slot ~key -> remove t ~slot ~key);
    search = (fun ~slot ~key -> search t ~slot ~key);
    map_rp = (fun ~slot ~id -> Respct.Runtime.rp t.rt ~slot id);
  }

let heads t = t.heads
let buckets t = t.buckets

(* Recovery-time view over the persistent image: rebuild the logical
   contents bucket by bucket (used by crash-consistency tests).
   Parameterised over the read function and the geometry so the same walk
   serves every vantage point — a live map read through [Memsys.persisted],
   a reopened file image read through a backend's [persisted], or a
   pre-crash snapshot read through [peek] — including from a process that
   holds no [t] (the prockill parent reconstructs the walk from the heads
   base and bucket count in the child's progress log). *)
let bindings_of ~read ~line_words ~fuel ~heads ~buckets =
  (* Fuel bounds each bucket walk: a corrupt image (the crash explorer
     feeds us adversarial ones) can tie a chain into a cycle. *)
  let rec walk node acc fuel =
    if node = 0 then acc
    else if fuel = 0 then failwith "persisted bucket chain is cyclic"
    else
      walk
        (read (next_cell node))
        ((read (key_of node), read (value_cell node)) :: acc)
        (fuel - 1)
  in
  let all = ref [] in
  for b = 0 to buckets - 1 do
    all :=
      walk (read (Respct.Heap.cell_at_words ~line_words heads b)) !all fuel
  done;
  List.sort compare !all

let persisted_bindings mem t =
  bindings_of
    ~read:(Simnvm.Memsys.persisted mem)
    ~line_words:(Simsched.Env.line_words t.env)
    ~fuel:(Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words
    ~heads:t.heads ~buckets:t.buckets
