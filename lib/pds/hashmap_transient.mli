(** Transient lock-based hash map (Synch-framework style: one lock per
    bucket, chained [key; value; next] nodes) — the "original program" of
    the paper's evaluation and the structural core wrapped by the
    persistence baselines. *)

type t

val node_words : int

val create : Simsched.Env.t -> Mem_iface.t -> buckets:int -> t
(** Allocate the bucket array from the given memory interface.
    @raise Invalid_argument if [buckets <= 0]. *)

val insert : t -> slot:int -> key:int -> value:int -> bool
(** Insert or update under the bucket lock; [true] if the key was absent. *)

val search : t -> slot:int -> key:int -> int option
val remove : t -> slot:int -> key:int -> bool

val ops : t -> Ops.map
(** Harness-facing closure record (no restart points). *)

val persisted_bindings : Simnvm.Memsys.t -> t -> (int * int) list
(** Recovery-time oracle: sorted (key, value) bindings readable from the
    NVMM image alone. Meaningful only when the arena is NVMM-backed (the
    durable baselines wrapping this structure). *)
