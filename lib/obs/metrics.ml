(* Metric registry: named counters and virtual-time histograms.

   A registry belongs to one experiment run. Names are get-or-create and
   the registry remembers insertion order, so JSON export is deterministic
   regardless of how lookup is implemented. Counters are plain ints on the
   hot path (one record-field increment); histograms bucket a float sample
   (typically a virtual-time duration in ns) against fixed bounds and keep
   running sum/min/max for the summary line. *)

type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  bounds : float array; (* ascending upper bounds; +inf bucket is implicit *)
  buckets : int array; (* length = Array.length bounds + 1 *)
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type entry = Counter of counter | Histogram of histogram

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order : entry list; (* newest first; reversed on export *)
}

let create () = { by_name = Hashtbl.create 32; order = [] }

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name)
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add t.by_name name (Counter c);
      t.order <- Counter c :: t.order;
      c

(* Default bounds suit virtual-time durations in ns: 100ns..100ms. *)
let default_bounds =
  [| 1e2; 3e2; 1e3; 3e3; 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8 |]

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name)
  | None ->
      let h =
        {
          h_name = name;
          bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          n = 0;
          sum = 0.0;
          min = infinity;
          max = neg_infinity;
        }
      in
      Hashtbl.add t.by_name name (Histogram h);
      t.order <- Histogram h :: t.order;
      h

let[@inline] incr c = c.count <- c.count + 1
let[@inline] add c k = c.count <- c.count + k
let value c = c.count

let observe h x =
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if x <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. x;
  if x < h.min then h.min <- x;
  if x > h.max then h.max <- x

let count h = h.n
let sum h = h.sum
let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let reset t =
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Counter c -> c.count <- 0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.n <- 0;
          h.sum <- 0.0;
          h.min <- infinity;
          h.max <- neg_infinity)
    t.by_name

let histogram_json h =
  let bucket_fields =
    List.concat
      [
        Array.to_list
          (Array.mapi
             (fun i b -> (Printf.sprintf "le_%g" h.bounds.(i), Json.Int b))
             (Array.sub h.buckets 0 (Array.length h.bounds)));
        [ ("le_inf", Json.Int h.buckets.(Array.length h.bounds)) ];
      ]
  in
  Json.Obj
    [
      ("type", Json.String "histogram");
      ("count", Json.Int h.n);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float (mean h));
      ("min", Json.Float (if h.n = 0 then 0.0 else h.min));
      ("max", Json.Float (if h.n = 0 then 0.0 else h.max));
      ("buckets", Json.Obj bucket_fields);
    ]

let to_json t =
  Json.Obj
    (List.rev_map
       (fun e ->
         match e with
         | Counter c -> (c.c_name, Json.Int c.count)
         | Histogram h -> (h.h_name, histogram_json h))
       t.order)
