(* Span-style phase profiling over virtual time.

   Producers (the ResPCT runtime, the recovery procedure) report named
   phases — epoch, checkpoint, flush, recovery — as [t0, t1] intervals on
   the simulation's virtual clock. The recorder keeps the raw intervals
   (bounded, newest dropped beyond the cap) plus exact per-name aggregates,
   so a JSON export carries both a summary breakdown and a sample of
   individual spans for timeline inspection.

   Timestamps are plain floats: obs knows nothing of the scheduler, which
   keeps the dependency graph acyclic (respct depends on obs, not the
   reverse). *)

type span = { name : string; t0 : float; t1 : float }

type agg = {
  a_name : string;
  mutable n : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
}

type t = {
  mutable spans : span list; (* newest first *)
  mutable kept : int;
  keep : int; (* cap on raw spans retained *)
  aggs : (string, agg) Hashtbl.t;
  mutable agg_order : agg list; (* newest first *)
}

let create ?(keep = 512) () =
  { spans = []; kept = 0; keep; aggs = Hashtbl.create 8; agg_order = [] }

let emit t ~name ~t0 ~t1 =
  let dur = t1 -. t0 in
  (if t.kept < t.keep then begin
     t.spans <- { name; t0; t1 } :: t.spans;
     t.kept <- t.kept + 1
   end);
  let a =
    match Hashtbl.find_opt t.aggs name with
    | Some a -> a
    | None ->
        let a =
          { a_name = name; n = 0; total = 0.0; min = infinity; max = neg_infinity }
        in
        Hashtbl.add t.aggs name a;
        t.agg_order <- a :: t.agg_order;
        a
  in
  a.n <- a.n + 1;
  a.total <- a.total +. dur;
  if dur < a.min then a.min <- dur;
  if dur > a.max then a.max <- dur

(* Convenience for callers that already hold the duration. *)
let emit_dur t ~name ~at ~dur = emit t ~name ~t0:(at -. dur) ~t1:at

type summary = {
  s_name : string;
  count : int;
  total_ns : float;
  mean_ns : float;
  min_ns : float;
  max_ns : float;
}

let breakdown t =
  List.rev_map
    (fun a ->
      {
        s_name = a.a_name;
        count = a.n;
        total_ns = a.total;
        mean_ns = (if a.n = 0 then 0.0 else a.total /. float_of_int a.n);
        min_ns = (if a.n = 0 then 0.0 else a.min);
        max_ns = (if a.n = 0 then 0.0 else a.max);
      })
    t.agg_order

let count t name =
  match Hashtbl.find_opt t.aggs name with Some a -> a.n | None -> 0

let total_ns t name =
  match Hashtbl.find_opt t.aggs name with Some a -> a.total | None -> 0.0

let reset t =
  t.spans <- [];
  t.kept <- 0;
  Hashtbl.reset t.aggs;
  t.agg_order <- []

let to_json t =
  let summary =
    List.map
      (fun s ->
        ( s.s_name,
          Json.Obj
            [
              ("count", Json.Int s.count);
              ("total_ns", Json.Float s.total_ns);
              ("mean_ns", Json.Float s.mean_ns);
              ("min_ns", Json.Float s.min_ns);
              ("max_ns", Json.Float s.max_ns);
            ] ))
      (breakdown t)
  in
  let raw =
    List.rev_map
      (fun sp ->
        Json.Obj
          [
            ("name", Json.String sp.name);
            ("t0_ns", Json.Float sp.t0);
            ("t1_ns", Json.Float sp.t1);
          ])
      t.spans
  in
  Json.Obj [ ("summary", Json.Obj summary); ("spans", Json.List raw) ]
