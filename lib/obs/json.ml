(* Minimal JSON document type with a deterministic printer.

   Hand-rolled on purpose: the container has no JSON library baked in, the
   repository only ever *produces* JSON, and determinism of the output
   bytes is a test requirement (two same-seed runs must serialise to
   identical files). Objects are association lists, so field order is
   exactly construction order — never Hashtbl iteration order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Floats print with enough digits to round-trip but without the noise of
   %.17g; NaN/inf are not valid JSON so they degrade to null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ when Float.is_integer f && Float.abs f < 1e15 -> Printf.sprintf "%.1f" f
  | _ -> Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

(* Indented variant for files meant to be read by humans and diffed. *)
let rec write_indent buf level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make ((level + 1) * 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_indent buf (level + 1) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * 2) ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make ((level + 1) * 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write_indent buf (level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * 2) ' ');
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  write_indent buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))
