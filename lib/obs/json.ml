(* Minimal JSON document type with a deterministic printer and a small
   reader.

   Hand-rolled on purpose: the container has no JSON library baked in and
   determinism of the output bytes is a test requirement (two same-seed
   runs must serialise to identical files). Objects are association lists,
   so field order is exactly construction order — never Hashtbl iteration
   order. The reader exists for the one consumer in the repository: the
   perf harness loading a committed benchmark baseline back for
   [perf --compare]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Floats print with enough digits to round-trip but without the noise of
   %.17g; NaN/inf are not valid JSON so they degrade to null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ when Float.is_integer f && Float.abs f < 1e15 -> Printf.sprintf "%.1f" f
  | _ -> Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

(* Indented variant for files meant to be read by humans and diffed. *)
let rec write_indent buf level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make ((level + 1) * 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_indent buf (level + 1) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * 2) ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make ((level + 1) * 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write_indent buf (level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * 2) ' ');
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  write_indent buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* ------------------------------------------------------------------ *)
(* Reader: a plain recursive-descent parser over the subset of JSON the
   printers above emit (which is all of JSON minus exotic number forms).
   Errors carry the byte offset so a truncated baseline file is
   diagnosable. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* The printers only escape control characters, so the
                  code point is always in the single-byte range. *)
               if code > 0xff then fail "\\u escape out of supported range";
               Buffer.add_char buf (Char.chr code);
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape %C" c));
           advance ());
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | '0' .. '9' | '-' | '+' ->
          advance ();
          go ()
      | '.' | 'e' | 'E' ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* integers beyond the native range degrade to float *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields (kv :: acc)
            | '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* Field access helpers for the reader's consumers. *)
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
