(* Structured per-experiment results.

   The harness experiments produce one [point] per configuration they
   measure (system x threads x update ratio ...). A point bundles the
   scalar result (throughput), the throughput series over the measurement
   window when one was sampled, the memory-system counters, the metric
   registry and the span breakdown. [experiment] wraps the points of one
   figure; [document] wraps several experiments into the file handed to
   [--json]. ASCII tables and JSON export are two views of the same
   points. *)

type point = {
  label : string;
  params : (string * Json.t) list;
  throughput_mops : float option;
  series : (string * float list) list; (* named numeric series, e.g. per-thread Mops *)
  stats : Simnvm.Stats.t option;
  metrics : Metrics.t option;
  spans : Span.t option;
  extra : (string * Json.t) list;
}

let point ?(params = []) ?throughput_mops ?(series = []) ?stats ?metrics
    ?spans ?(extra = []) label =
  { label; params; throughput_mops; series; stats; metrics; spans; extra }

let stats_json (s : Simnvm.Stats.t) =
  Json.Obj
    [
      ("loads", Json.Int s.Simnvm.Stats.loads);
      ("stores", Json.Int s.Simnvm.Stats.stores);
      ("hits", Json.Int s.Simnvm.Stats.hits);
      ("dram_misses", Json.Int s.Simnvm.Stats.dram_misses);
      ("nvm_misses", Json.Int s.Simnvm.Stats.nvm_misses);
      ("dram_writebacks", Json.Int s.Simnvm.Stats.dram_writebacks);
      ("nvm_writebacks", Json.Int s.Simnvm.Stats.nvm_writebacks);
      ("pwbs", Json.Int s.Simnvm.Stats.pwbs);
      ("psyncs", Json.Int s.Simnvm.Stats.psyncs);
      ("spontaneous_evictions", Json.Int s.Simnvm.Stats.spontaneous_evictions);
      ("crashes", Json.Int s.Simnvm.Stats.crashes);
    ]

let point_json p =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  add "label" (Json.String p.label);
  if p.params <> [] then add "params" (Json.Obj p.params);
  (match p.throughput_mops with
  | Some x -> add "throughput_mops" (Json.Float x)
  | None -> ());
  if p.series <> [] then
    add "series"
      (Json.Obj
         (List.map
            (fun (k, xs) -> (k, Json.List (List.map (fun x -> Json.Float x) xs)))
            p.series));
  (match p.stats with Some s -> add "mem_stats" (stats_json s) | None -> ());
  (match p.metrics with Some m -> add "metrics" (Metrics.to_json m) | None -> ());
  (match p.spans with Some s -> add "spans" (Span.to_json s) | None -> ());
  List.iter (fun (k, v) -> add k v) p.extra;
  Json.Obj (List.rev !fields)

let experiment ?(params = []) ?(extra = []) name points =
  Json.Obj
    (List.concat
       [
         [ ("experiment", Json.String name) ];
         (if params = [] then [] else [ ("params", Json.Obj params) ]);
         extra;
         [ ("points", Json.List (List.map point_json points)) ];
       ])

let document ?(meta = []) experiments =
  Json.Obj
    (List.concat
       [
         [ ("schema", Json.String "respct-sim/results/v1") ];
         meta;
         [ ("experiments", Json.List experiments) ];
       ])
