(* Memory-event probe: a Metrics-backed subscriber for the Memsys pipeline.

   Attaching one puts named counters for every memory event class into a
   registry, as a second consumer alongside (not instead of) Stats. The
   counter set is richer than Stats where the event carries more detail
   than the historical record kept — clean pwbs and prefetched misses are
   distinguished here. *)

type t = {
  loads : Metrics.counter;
  stores : Metrics.counter;
  hits : Metrics.counter;
  dram_misses : Metrics.counter;
  nvm_misses : Metrics.counter;
  prefetched_misses : Metrics.counter;
  dram_writebacks : Metrics.counter;
  nvm_writebacks : Metrics.counter;
  pwbs : Metrics.counter;
  clean_pwbs : Metrics.counter;
  psyncs : Metrics.counter;
  noop_psyncs : Metrics.counter;
  mutable flush_armed : bool;
      (* a dirty pwb was issued since the last psync: the next psync
         actually retires something. Clean pwbs don't arm — fencing
         them is exactly the no-op the static Psync_no_pending rule
         flags. *)
  evictions : Metrics.counter;
  crashes : Metrics.counter;
  faults_torn : Metrics.counter;
  faults_poisoned : Metrics.counter;
  faults_bitflip : Metrics.counter;
  faults_transient : Metrics.counter;
  media_errors : Metrics.counter;
  media_errors_transient : Metrics.counter;
  media_scrubs : Metrics.counter;
}

let make registry =
  let c name = Metrics.counter registry ("mem." ^ name) in
  (* Registration order is export order; record-field evaluation order is
     unspecified, so create the counters in explicit sequence. *)
  let loads = c "loads" in
  let stores = c "stores" in
  let hits = c "hits" in
  let dram_misses = c "misses.dram" in
  let nvm_misses = c "misses.nvm" in
  let prefetched_misses = c "misses.prefetched" in
  let dram_writebacks = c "writebacks.dram" in
  let nvm_writebacks = c "writebacks.nvm" in
  let pwbs = c "pwbs" in
  let clean_pwbs = c "pwbs.clean" in
  let psyncs = c "psyncs" in
  let noop_psyncs = c "psyncs.noop" in
  let evictions = c "evictions" in
  let crashes = c "crashes" in
  let faults_torn = c "faults.torn" in
  let faults_poisoned = c "faults.poisoned" in
  let faults_bitflip = c "faults.bitflip" in
  let faults_transient = c "faults.transient" in
  let media_errors = c "media_errors" in
  let media_errors_transient = c "media_errors.transient" in
  let media_scrubs = c "media_scrubs" in
  {
    loads;
    stores;
    hits;
    dram_misses;
    nvm_misses;
    prefetched_misses;
    dram_writebacks;
    nvm_writebacks;
    pwbs;
    clean_pwbs;
    psyncs;
    noop_psyncs;
    flush_armed = false;
    evictions;
    crashes;
    faults_torn;
    faults_poisoned;
    faults_bitflip;
    faults_transient;
    media_errors;
    media_errors_transient;
    media_scrubs;
  }

let subscriber p (ev : Simnvm.Event.t) =
  match ev with
  | Simnvm.Event.Load _ -> Metrics.incr p.loads
  | Simnvm.Event.Store _ -> Metrics.incr p.stores
  | Simnvm.Event.Hit _ -> Metrics.incr p.hits
  | Simnvm.Event.Miss { backing; prefetched; _ } ->
      (match backing with
      | Simnvm.Event.Dram -> Metrics.incr p.dram_misses
      | Simnvm.Event.Nvm -> Metrics.incr p.nvm_misses);
      if prefetched then Metrics.incr p.prefetched_misses
  | Simnvm.Event.Writeback { backing = Simnvm.Event.Dram; _ } ->
      Metrics.incr p.dram_writebacks
  | Simnvm.Event.Writeback { backing = Simnvm.Event.Nvm; _ } ->
      Metrics.incr p.nvm_writebacks
  | Simnvm.Event.Pwb { dirty; _ } ->
      Metrics.incr p.pwbs;
      if dirty then p.flush_armed <- true
      else Metrics.incr p.clean_pwbs
  | Simnvm.Event.Psync _ ->
      Metrics.incr p.psyncs;
      if not p.flush_armed then Metrics.incr p.noop_psyncs;
      p.flush_armed <- false
  | Simnvm.Event.Eviction _ -> Metrics.incr p.evictions
  | Simnvm.Event.Crash _ -> Metrics.incr p.crashes
  | Simnvm.Event.Fault_injected f -> (
      match f with
      | Simnvm.Event.Torn _ -> Metrics.incr p.faults_torn
      | Simnvm.Event.Poisoned _ -> Metrics.incr p.faults_poisoned
      | Simnvm.Event.Bitflip _ -> Metrics.incr p.faults_bitflip
      | Simnvm.Event.Transient_armed _ -> Metrics.incr p.faults_transient)
  | Simnvm.Event.Media_error { transient; _ } ->
      Metrics.incr p.media_errors;
      if transient then Metrics.incr p.media_errors_transient
  | Simnvm.Event.Media_scrub _ -> Metrics.incr p.media_scrubs

(* Attach to a memory system; returns the subscription for detaching. *)
let attach registry mem =
  let p = make registry in
  (p, Simnvm.Memsys.subscribe mem (subscriber p))
