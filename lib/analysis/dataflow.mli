(** Generic worklist dataflow engine over {!Ir.cfg}.

    Facts live in a join-semilattice; [solve] iterates transfer
    functions to the least fixpoint. Forward analyses propagate along
    [succ] edges from [entry], backward analyses along [pred] edges
    from [exit_node]. May-analyses use set union with an empty bottom;
    must-analyses use intersection with a synthetic [Top] bottom so
    unreachable code stays optimistic. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of [join]; the initial fact everywhere. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type 'a solution = {
  inf : 'a array;  (** fact on entry to node [i] *)
  outf : 'a array;  (** fact on exit from node [i] *)
}

module Make (L : LATTICE) : sig
  val forward :
    Ir.cfg -> init:L.t -> transfer:(Ir.node -> L.t -> L.t) -> L.t solution
  (** [init] is the fact entering the CFG's [entry] node. *)

  val backward :
    Ir.cfg -> init:L.t -> transfer:(Ir.node -> L.t -> L.t) -> L.t solution
  (** [init] enters at [exit_node]; [inf.(i)] is the fact *after* node
      [i] in program order and [outf.(i)] the fact before it. *)
end

module Vars : Set.S with type elt = string
module Locks : Set.S with type elt = int

(** Union/empty lattice over a set: "may hold on some path". *)
module MaySet (S : Set.S) : LATTICE with type t = S.t

(** Intersection lattice over a set with explicit top: "must hold on
    every path reaching here". [bottom = Top] keeps unreachable nodes
    from polluting intersections. *)
module MustSet (S : Set.S) : sig
  type t = Top | Known of S.t

  include LATTICE with type t := t

  val known : t -> S.t
  (** [Known s -> s]; [Top] (unreachable) maps to the empty set so
      clients treat unreachable code conservatively. *)

  val mem : S.elt -> t -> bool
  (** Membership; everything is a member of [Top]. *)
end
