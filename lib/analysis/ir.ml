type var = string

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | And | Or

type expr = Int of int | Var of var | Binop of binop * expr * expr

type stmt =
  | Assign of var * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Acquire of int
  | Release of int
  | Rp of int
  | Pwb of var
  | Psync
  | Skip

type thread = { tname : string; body : stmt list }

type program = {
  pname : string;
  persistent : (var * int) list;
  transient : (var * int) list;
  threads : thread list;
}

let rec expr_reads = function
  | Int _ -> []
  | Var v -> [ v ]
  | Binop (_, a, b) -> expr_reads a @ expr_reads b

let stmt_writes s =
  let rec go acc = function
    | Assign (v, _) -> if List.mem v acc then acc else v :: acc
    | If (_, t, e) -> List.fold_left go (List.fold_left go acc t) e
    | While (_, b) -> List.fold_left go acc b
    | Acquire _ | Release _ | Rp _ | Pwb _ | Psync | Skip -> acc
  in
  List.rev (go [] s)

let declared p = List.map fst p.persistent @ List.map fst p.transient
let is_persistent p v = List.mem_assoc v p.persistent
let is_declared p v = List.mem v (declared p)

let rec stmt_rps = function
  | Rp r -> [ r ]
  | If (_, t, e) -> List.concat_map stmt_rps t @ List.concat_map stmt_rps e
  | While (_, b) -> List.concat_map stmt_rps b
  | Assign _ | Acquire _ | Release _ | Pwb _ | Psync | Skip -> []

let rp_ids p =
  List.concat_map (fun t -> List.concat_map stmt_rps t.body) p.threads

let max_rp_id p = List.fold_left max (-1) (rp_ids p)

(* ------------------------------------------------------------------ *)
(* Well-formedness *)

let dups l =
  let rec go seen = function
    | [] -> []
    | x :: rest ->
        if List.mem x seen then x :: go seen rest else go (x :: seen) rest
  in
  List.sort_uniq compare (go [] l)

let check p =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun m -> errs := m :: !errs) fmt in
  List.iter
    (fun v -> err "duplicate variable declaration: %s" v)
    (dups (declared p));
  List.iter
    (fun r -> err "duplicate restart-point id: %d" r)
    (dups (rp_ids p));
  List.iter
    (fun n -> err "duplicate thread name: %s" n)
    (dups (List.map (fun t -> t.tname) p.threads));
  let check_var t v =
    if not (is_declared p v) then
      err "thread %s: undeclared variable %s" t.tname v
  in
  let check_expr t e = List.iter (check_var t) (expr_reads e) in
  let rec check_stmt t = function
    | Assign (v, e) ->
        check_var t v;
        check_expr t e
    | If (c, a, b) ->
        check_expr t c;
        List.iter (check_stmt t) a;
        List.iter (check_stmt t) b
    | While (c, b) ->
        check_expr t c;
        List.iter (check_stmt t) b
    | Acquire l | Release l ->
        if l < 0 then err "thread %s: negative lock id %d" t.tname l
    | Rp r -> if r < 0 then err "thread %s: negative restart-point id %d" t.tname r
    | Pwb v ->
        check_var t v;
        if is_declared p v && not (is_persistent p v) then
          err "thread %s: pwb of transient variable %s" t.tname v
    | Psync | Skip -> ()
  in
  List.iter (fun t -> List.iter (check_stmt t) t.body) p.threads;
  List.rev !errs

let well_formed p = check p = []

(* ------------------------------------------------------------------ *)
(* CFG construction *)

type node_kind =
  | Entry
  | Exit
  | Node_assign of var * expr
  | Node_branch of expr
  | Node_acquire of int
  | Node_release of int
  | Node_rp of int
  | Node_pwb of var
  | Node_psync

type node = {
  id : int;
  kind : node_kind;
  path : string;
  mutable succ : int list;
  mutable pred : int list;
}

type cfg = {
  owner : string;
  nodes : node array;
  entry : int;
  exit_node : int;
}

(* A pwb reads no value and writes none: it orders the write-back of the
   variable's cache line, which is invisible to the volatile dataflow the
   WAR/lockset analyses reason about. *)
let node_reads = function
  | Node_assign (_, e) | Node_branch e -> expr_reads e
  | Entry | Exit | Node_acquire _ | Node_release _ | Node_rp _ | Node_pwb _
  | Node_psync ->
      []

let node_write = function
  | Node_assign (v, _) -> Some v
  | Entry | Exit | Node_branch _ | Node_acquire _ | Node_release _
  | Node_rp _ | Node_pwb _ | Node_psync ->
      None

let cfg_of_thread t =
  let rev_nodes = ref [] in
  let count = ref 0 in
  let add kind path =
    let id = !count in
    incr count;
    rev_nodes := { id; kind; path; succ = []; pred = [] } :: !rev_nodes;
    id
  in
  let edges = ref [] in
  let connect preds n =
    List.iter (fun p -> if not (List.mem (p, n) !edges) then edges := (p, n) :: !edges) preds
  in
  (* [lower] threads the set of dangling predecessors through the
     statement list; a statement's lowering returns the frontier that
     falls through to whatever comes next. *)
  let rec seq preds path stmts =
    snd
      (List.fold_left
         (fun (i, preds) s ->
           (i + 1, lower preds (Fmt.str "%s[%d]" path i) s))
         (0, preds) stmts)
  and lower preds path = function
    | Skip -> preds
    | Assign (v, e) ->
        let n = add (Node_assign (v, e)) path in
        connect preds n;
        [ n ]
    | Acquire l ->
        let n = add (Node_acquire l) path in
        connect preds n;
        [ n ]
    | Release l ->
        let n = add (Node_release l) path in
        connect preds n;
        [ n ]
    | Rp r ->
        let n = add (Node_rp r) path in
        connect preds n;
        [ n ]
    | Pwb v ->
        let n = add (Node_pwb v) path in
        connect preds n;
        [ n ]
    | Psync ->
        let n = add Node_psync path in
        connect preds n;
        [ n ]
    | If (c, a, b) ->
        let br = add (Node_branch c) path in
        connect preds br;
        let t_out = seq [ br ] (path ^ ".then") a in
        let e_out = seq [ br ] (path ^ ".else") b in
        t_out @ e_out
    | While (c, body) ->
        let br = add (Node_branch c) path in
        connect preds br;
        let body_out = seq [ br ] (path ^ ".body") body in
        connect body_out br;
        [ br ]
  in
  let entry = add Entry "entry" in
  let out = seq [ entry ] t.tname t.body in
  let exit_node = add Exit "exit" in
  connect out exit_node;
  let nodes = Array.make !count { id = 0; kind = Entry; path = ""; succ = []; pred = [] } in
  List.iter (fun n -> nodes.(n.id) <- n) !rev_nodes;
  List.iter
    (fun (a, b) ->
      nodes.(a).succ <- nodes.(a).succ @ [ b ];
      nodes.(b).pred <- nodes.(b).pred @ [ a ])
    (List.rev !edges);
  { owner = t.tname; nodes; entry; exit_node }

(* ------------------------------------------------------------------ *)
(* Printers *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf = function
  | Int n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let rec pp_stmt ppf = function
  | Assign (v, e) -> Fmt.pf ppf "%s = %a" v pp_expr e
  | If (c, a, b) ->
      Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_body a pp_body b
  | While (c, b) ->
      Fmt.pf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_body b
  | Acquire l -> Fmt.pf ppf "acquire L%d" l
  | Release l -> Fmt.pf ppf "release L%d" l
  | Rp r -> Fmt.pf ppf "rp %d" r
  | Pwb v -> Fmt.pf ppf "pwb %s" v
  | Psync -> Fmt.string ppf "psync"
  | Skip -> Fmt.string ppf "skip"

and pp_body ppf body = Fmt.(list ~sep:cut pp_stmt) ppf body

let pp_decl kind ppf (v, init) = Fmt.pf ppf "%s %s = %d" kind v init

let pp_program ppf p =
  Fmt.pf ppf "@[<v>program %s@," p.pname;
  List.iter (fun d -> Fmt.pf ppf "%a@," (pp_decl "persistent") d) p.persistent;
  List.iter (fun d -> Fmt.pf ppf "%a@," (pp_decl "transient") d) p.transient;
  List.iter
    (fun t -> Fmt.pf ppf "@[<v 2>thread %s {@,%a@]@,}@," t.tname pp_body t.body)
    p.threads;
  Fmt.pf ppf "@]"

let pp_node_kind ppf = function
  | Entry -> Fmt.string ppf "entry"
  | Exit -> Fmt.string ppf "exit"
  | Node_assign (v, e) -> Fmt.pf ppf "%s = %a" v pp_expr e
  | Node_branch e -> Fmt.pf ppf "branch %a" pp_expr e
  | Node_acquire l -> Fmt.pf ppf "acquire L%d" l
  | Node_release l -> Fmt.pf ppf "release L%d" l
  | Node_rp r -> Fmt.pf ppf "rp %d" r
  | Node_pwb v -> Fmt.pf ppf "pwb %s" v
  | Node_psync -> Fmt.string ppf "psync"

let pp_cfg ppf cfg =
  Fmt.pf ppf "@[<v>cfg %s@," cfg.owner;
  Array.iter
    (fun n ->
      Fmt.pf ppf "%3d: %a -> %a  (%s)@," n.id pp_node_kind n.kind
        Fmt.(list ~sep:comma int)
        n.succ n.path)
    cfg.nodes;
  Fmt.pf ppf "@]"

let program_to_string p = Fmt.str "%a" pp_program p
