(* Vector-clock data-race checker for access traces.

   ResPCT assumes race-free lock-based programs (paper section 2.1): two
   conflicting accesses to the same variable must be ordered by
   happens-before edges induced by lock release/acquire pairs. This checker
   validates that assumption: it implements the standard vector-clock
   algorithm (FastTrack-style, unoptimised) over reads, writes, acquires
   and releases.

   The checker is streaming: [create] makes an empty state, [push] feeds
   one event, [races] reads the verdicts so far. That shape lets it sit
   directly on a trace bus as a subscriber, consuming events as the
   simulation produces them, with the batch [check] kept as a wrapper for
   recorded event lists. *)

type event =
  | Racq of { thread : int; lock : int }
  | Rrel of { thread : int; lock : int }
  | Rread of { thread : int; addr : int }
  | Rwrite of { thread : int; addr : int }

type access = Aread | Awrite

type race = {
  addr : int;
  first_thread : int;
  first_access : access;
  second_thread : int;
  second_access : access;
}

let pp_access ppf = function
  | Aread -> Fmt.string ppf "read"
  | Awrite -> Fmt.string ppf "write"

let pp_race ppf r =
  Fmt.pf ppf "addr %d: %a by T%d races with %a by T%d" r.addr pp_access
    r.first_access r.first_thread pp_access r.second_access r.second_thread

module Vc = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let get (t : t) i = Option.value ~default:0 (Hashtbl.find_opt t i)
  let set (t : t) i v = Hashtbl.replace t i v

  let join (a : t) (b : t) =
    Hashtbl.iter (fun i v -> if v > get a i then set a i v) b

  let copy (t : t) : t = Hashtbl.copy t

  (* a <= b pointwise *)
  let leq (a : t) (b : t) =
    Hashtbl.fold (fun i v acc -> acc && v <= get b i) a true
end

type shadow = {
  mutable last_writes : (int * int) list; (* (thread, clock) per writer *)
  mutable last_reads : (int * int) list;
}

type t = {
  threads : (int, Vc.t) Hashtbl.t;
  locks : (int, Vc.t) Hashtbl.t;
  vars : (int, shadow) Hashtbl.t;
  seen : (int * int * int, unit) Hashtbl.t;
      (* (addr, lo thread, hi thread) pairs already reported *)
  mutable found : race list; (* newest first, deduped *)
  mutable n_races : int; (* every detection, duplicates included *)
}

let create () =
  {
    threads = Hashtbl.create 8;
    locks = Hashtbl.create 8;
    vars = Hashtbl.create 64;
    seen = Hashtbl.create 16;
    found = [];
    n_races = 0;
  }

let vc_of t thread =
  match Hashtbl.find_opt t.threads thread with
  | Some vc -> vc
  | None ->
      let vc = Vc.create () in
      Vc.set vc thread 1;
      Hashtbl.add t.threads thread vc;
      vc

let shadow_of t addr =
  match Hashtbl.find_opt t.vars addr with
  | Some s -> s
  | None ->
      let s = { last_writes = []; last_reads = [] } in
      Hashtbl.add t.vars addr s;
      s

(* event (thread, clock) happens-before the state vc *)
let happens_before (thread, clock) vc = clock <= Vc.get vc thread

(* Long traces hammer the same unordered pair over and over (every loop
   iteration re-detects it); [races] keeps one report per
   (addr, unordered thread pair) while [race_count] still counts every
   detection. *)
let report t addr (first, first_access) (second, second_access) =
  t.n_races <- t.n_races + 1;
  let key = (addr, min first second, max first second) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.found <-
      { addr; first_thread = first; first_access; second_thread = second;
        second_access }
      :: t.found
  end

let push t ev =
  match ev with
  | Racq { thread; lock } -> (
      let vc = vc_of t thread in
      match Hashtbl.find_opt t.locks lock with
      | Some lvc -> Vc.join vc lvc
      | None -> ())
  | Rrel { thread; lock } ->
      let vc = vc_of t thread in
      Hashtbl.replace t.locks lock (Vc.copy vc);
      Vc.set vc thread (Vc.get vc thread + 1)
  | Rread { thread; addr } ->
      let vc = vc_of t thread in
      let s = shadow_of t addr in
      List.iter
        (fun (w, c) ->
          if w <> thread && not (happens_before (w, c) vc) then
            report t addr (w, Awrite) (thread, Aread))
        s.last_writes;
      s.last_reads <-
        (thread, Vc.get vc thread)
        :: List.filter (fun (th, _) -> th <> thread) s.last_reads
  | Rwrite { thread; addr } ->
      let vc = vc_of t thread in
      let s = shadow_of t addr in
      List.iter
        (fun (w, c) ->
          if w <> thread && not (happens_before (w, c) vc) then
            report t addr (w, Awrite) (thread, Awrite))
        s.last_writes;
      List.iter
        (fun (r, c) ->
          if r <> thread && not (happens_before (r, c) vc) then
            report t addr (r, Aread) (thread, Awrite))
        s.last_reads;
      s.last_writes <- [ (thread, Vc.get vc thread) ];
      s.last_reads <- []

let races t = List.rev t.found
let race_count t = t.n_races

let check events =
  let t = create () in
  List.iter (push t) events;
  races t

let race_free events = check events = []

let _ = Vc.leq (* exposed for tests of the vector-clock lattice *)
