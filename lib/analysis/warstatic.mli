(** Path-insensitive may-WAR analysis: the CFG lift of
    {!Idempotence.classify}.

    Per restart-point-delimited region, a variable whose access
    sequence can begin with a read followed by a write (WAR) makes
    re-execution non-idempotent and needs InCLL logging (paper section
    3.3.2). The forward dataflow tracks, per region, the variables
    may-read-before-write ([r], union lattice) and must-/may-written
    (intersection / union); a write to [v] flags WAR iff [v] is in [r]
    at the write — i.e. some path carries a read of [v] with no earlier
    write on that path since the region start. Restart points reset the
    state; the thread entry starts an implicit region.

    Soundness: on straight-line code there is a single path, the may
    and must sets coincide with the exact access sequence and the
    verdict equals {!Idempotence.classify} on the trace. With branches
    and loops, every WAR observable in some execution is a WAR along
    some CFG path, and the union lattice only ever grows [r] while the
    intersection lattice only ever shrinks [wmust], so the static WAR
    set over-approximates every dynamic one (tested as a QCheck
    property against the {!Exec} interpreter). *)

module Vars = Dataflow.Vars

type site = { s_node : int; s_path : string; s_var : Ir.var }
(** A flagging assignment: CFG node id, source breadcrumb, variable. *)

type summary = {
  thread : string;
  war : Vars.t;  (** may-WAR variables, any region of this thread *)
  written : Vars.t;  (** may-written variables (WAR or RAW) *)
  sites : site list;
}

val analyse_cfg : Ir.cfg -> summary
val analyse_thread : Ir.thread -> summary
val analyse : Ir.program -> summary list

val classify_thread : summary -> Ir.var -> Idempotence.classification

val classify : Ir.program -> Ir.var -> Idempotence.classification
(** Program-wide verdict, merging threads with [War > Raw >
    No_dependency]. Exact on straight-line single-thread programs. *)
