(* Persist-state abstract interpretation.

   Each persistent variable is tracked through a three-state persist
   lifecycle: Dirty (stored, line possibly cache-dirty), FlushPending
   (a pwb of its line was issued but no ordering fence has retired it),
   Durable (every path has fenced the last store). The abstract fact is
   the *collecting* powerset: per variable, the set of lifecycle states
   it can be in on some path reaching the program point, encoded as a
   3-bit mask. Join is pointwise union, so both may-queries ("can this
   var be dirty here?") and must-queries ("is it Durable on every
   path?") read off exactly — a single max-join lattice would conflate
   redundant-pwb with pwb-after-store.

   Transfer relation, per possible state (pointwise over the mask):

     store v            : v            -> {Dirty}
     pwb v              : every w on line(v):
                            Dirty -> FlushPending, others unchanged
     psync              : every w: FlushPending -> Durable
     anything else      : identity

   Pwb is line-granular (matching clwb and the PCSO axioms): flushing v
   also carries its line-mates' stores toward durability. Psync is a
   global fence: it retires every issued pwb, whatever variable it
   named. Under the lazy-pwb axioms a FlushPending value is NOT yet in
   the image — only Durable masks certify the persisted word equals the
   coherent one.

   Soundness (checked mechanically by Litmus.Axcheck): the per-thread
   facts compose to whole-program claims at a crash only for variables
   with a single writing thread; other threads' pwb/psync and the
   adversary's spontaneous write-backs can only copy the coherent value
   into the image, never un-persist it, so a claim derived from the
   writer's own program order survives every interleaving. Multi-writer
   variables are demoted to the full-unknown mask. *)

module Vars = Dataflow.Vars

type mask = int

let st_durable = 1
let st_pending = 2
let st_dirty = 4
let full_mask = st_durable lor st_pending lor st_dirty
let has_dirty m = m land st_dirty <> 0
let has_pending m = m land st_pending <> 0
let is_must_durable m = m <> 0 && m land (st_dirty lor st_pending) = 0

let mask_name m =
  if m = 0 then "unreachable"
  else
    String.concat "|"
      (List.filter_map
         (fun (bit, n) -> if m land bit <> 0 then Some n else None)
         [ (st_durable, "durable"); (st_pending, "pending"); (st_dirty, "dirty") ])

(* --- analysis context ----------------------------------------------- *)

type t = {
  prog : Ir.program;
  pvars : Ir.var array;  (** persistent variables, declaration order *)
  index : (Ir.var, int) Hashtbl.t;
  line : int array;  (** cache-line id per variable index *)
}

let create ?lines (prog : Ir.program) : t =
  let pvars = Array.of_list (List.map fst prog.Ir.persistent) in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) pvars;
  let line =
    match lines with
    | Some f -> Array.map f pvars
    (* default layout: every persistent variable on its own line, the
       binding Exec.sim_world uses (alloc_raw ~line_start:true) *)
    | None -> Array.init (Array.length pvars) (fun i -> i)
  in
  { prog; pvars; index; line }

let pvars t = Array.to_list t.pvars
let var_index t v = Hashtbl.find_opt t.index v
let line_of t v = match var_index t v with Some i -> t.line.(i) | None -> -1

let line_members t lid =
  Array.to_list t.pvars
  |> List.filteri (fun i _ -> t.line.(i) = lid)

(* --- the lattice ----------------------------------------------------- *)

(* A fact is one mask per persistent variable; the zero-length array is
   bottom (unreachable), distinct from any real fact even for programs
   with no persistent variables... which have nothing to track anyway. *)
type fact = int array

module L = struct
  type t = fact

  let bottom = [||]
  let equal (a : t) b = a = b

  let join a b =
    if Array.length a = 0 then b
    else if Array.length b = 0 then a
    else Array.init (Array.length a) (fun i -> a.(i) lor b.(i))
end

module Solver = Dataflow.Make (L)

let step_pwb m =
  m land st_durable
  lor (if m land (st_dirty lor st_pending) <> 0 then st_pending else 0)

let step_psync m =
  m land st_dirty
  lor (if m land (st_pending lor st_durable) <> 0 then st_durable else 0)

let transfer t (n : Ir.node) (f : fact) : fact =
  if Array.length f = 0 then f
  else
    match n.Ir.kind with
    | Ir.Node_assign (v, _) -> (
        match var_index t v with
        | Some i ->
            let f' = Array.copy f in
            f'.(i) <- st_dirty;
            f'
        | None -> f)
    | Ir.Node_pwb v -> (
        match var_index t v with
        | Some i ->
            let lid = t.line.(i) in
            Array.mapi
              (fun j m -> if t.line.(j) = lid then step_pwb m else m)
              f
        | None -> f)
    | Ir.Node_psync -> Array.map step_psync f
    | _ -> f

let entry_fact t = Array.make (Array.length t.pvars) st_durable

type thread_facts = {
  tf_thread : string;
  tf_cfg : Ir.cfg;
  tf_sol : fact Dataflow.solution;
}

let solve_cfg t cfg =
  Solver.forward cfg ~init:(entry_fact t) ~transfer:(transfer t)

let analyse t : thread_facts list =
  List.map
    (fun (th : Ir.thread) ->
      let cfg = Ir.cfg_of_thread th in
      { tf_thread = th.Ir.tname; tf_cfg = cfg; tf_sol = solve_cfg t cfg })
    t.prog.Ir.threads

let mask (f : fact) i = if Array.length f = 0 then 0 else f.(i)

(* --- whole-program crash summary ------------------------------------- *)

type summary = {
  s_masks : (Ir.var * mask) list;  (** per variable, declaration order *)
  s_must_durable : Vars.t;
      (** persisted word provably equals the coherent word at every
          axiomatically-allowed crash state *)
  s_may_dirty : Vars.t;
      (** the variable's line may be cache-dirty (stored with no pwb
          since) at the crash — the over-approximation the eager-pwb
          reference model's [is_cached_dirty] must stay inside *)
  s_may_pending : Vars.t;
  s_multi_writer : Vars.t;  (** demoted to the full-unknown mask *)
}

(* Threads that syntactically write [v] anywhere (assignments only; pwb
   never changes the coherent value). *)
let writer_threads (p : Ir.program) v =
  List.filter_map
    (fun (th : Ir.thread) ->
      let rec writes s =
        List.mem v (Ir.stmt_writes s)
        ||
        match s with
        | Ir.If (_, a, b) -> List.exists writes a || List.exists writes b
        | Ir.While (_, b) -> List.exists writes b
        | _ -> false
      in
      if List.exists writes th.Ir.body then Some th.Ir.tname else None)
    p.Ir.threads

(* A copy of the thread CFG with crash nodes made terminal: an
   assignment to [crash_var] halts the whole program (the litmus
   [Crash] compilation), so no statement after it on that path ever
   executes and the exit fact must not absorb post-crash effects. *)
let truncate_at_crash ~crash_var (cfg : Ir.cfg) =
  let is_crash (n : Ir.node) =
    match n.Ir.kind with
    | Ir.Node_assign (v, _) -> v = crash_var
    | _ -> false
  in
  let nodes =
    Array.map
      (fun (n : Ir.node) -> { n with Ir.succ = n.Ir.succ; pred = n.Ir.pred })
      cfg.Ir.nodes
  in
  let crash_ids =
    Array.to_list nodes
    |> List.filter_map (fun n -> if is_crash n then Some n.Ir.id else None)
  in
  Array.iter
    (fun (n : Ir.node) ->
      if is_crash n then n.Ir.succ <- []
      else n.Ir.pred <- List.filter (fun p -> not (List.mem p crash_ids)) n.Ir.pred)
    nodes;
  ({ cfg with Ir.nodes } : Ir.cfg)

let summarize ?crash_var (t : t) : summary =
  let nv = Array.length t.pvars in
  let is_crash_node (n : Ir.node) =
    match (crash_var, n.Ir.kind) with
    | Some cv, Ir.Node_assign (v, _) -> v = cv
    | _ -> false
  in
  let per_thread =
    List.map
      (fun (th : Ir.thread) ->
        let cfg = Ir.cfg_of_thread th in
        let cfg =
          match crash_var with
          | Some cv -> truncate_at_crash ~crash_var:cv cfg
          | None -> cfg
        in
        let sol = solve_cfg t cfg in
        let crash_nodes =
          Array.to_list cfg.Ir.nodes |> List.filter is_crash_node
        in
        (cfg, sol, crash_nodes))
      t.prog.Ir.threads
  in
  let any_crash_in other =
    List.exists
      (fun (cfg, _, crashes) -> cfg != other && crashes <> [])
      per_thread
  in
  (* Per thread, the joined fact describing its possible progress when
     the program stops: its own crash points (the crash dominates: once
     it executes nothing later on that path runs), plus normal exit if
     still reachable, plus — when any OTHER thread can crash — every
     program point, since the halt can catch this thread anywhere. *)
  let thread_masks =
    List.map
      (fun (cfg, (sol : fact Dataflow.solution), crash_nodes) ->
        let m = ref L.bottom in
        List.iter
          (fun (n : Ir.node) -> m := L.join !m sol.Dataflow.inf.(n.Ir.id))
          crash_nodes;
        m := L.join !m sol.Dataflow.inf.(cfg.Ir.exit_node);
        if any_crash_in cfg then
          Array.iter
            (fun (n : Ir.node) -> m := L.join !m sol.Dataflow.inf.(n.Ir.id))
            cfg.Ir.nodes;
        !m)
      per_thread
  in
  let owners =
    List.map2
      (fun (th : Ir.thread) m -> (th.Ir.tname, m))
      t.prog.Ir.threads thread_masks
  in
  let masks =
    Array.init nv (fun i ->
        let v = t.pvars.(i) in
        match writer_threads t.prog v with
        | [] -> st_durable  (* never stored: image keeps the initial value *)
        | [ w ] -> (
            match List.assoc_opt w owners with
            | Some m when Array.length m > 0 -> m.(i)
            | _ -> full_mask)
        | _ -> full_mask)
  in
  let sel pred =
    Array.to_list t.pvars
    |> List.filteri (fun i _ -> pred masks.(i))
    |> Vars.of_list
  in
  let multi =
    Array.to_list t.pvars
    |> List.filter (fun v -> List.length (writer_threads t.prog v) > 1)
    |> Vars.of_list
  in
  {
    s_masks =
      Array.to_list (Array.mapi (fun i v -> (v, masks.(i))) t.pvars);
    s_must_durable = sel is_must_durable;
    s_may_dirty = sel has_dirty;
    s_may_pending = sel has_pending;
    s_multi_writer = multi;
  }

let summary_to_json (s : summary) =
  let vars set =
    Obs.Json.List
      (List.map (fun v -> Obs.Json.String v) (Vars.elements set))
  in
  Obs.Json.Obj
    [
      ( "masks",
        Obs.Json.Obj
          (List.map
             (fun (v, m) -> (v, Obs.Json.String (mask_name m)))
             s.s_masks) );
      ("must_durable", vars s.s_must_durable);
      ("may_dirty", vars s.s_may_dirty);
      ("may_pending", vars s.s_may_pending);
      ("multi_writer", vars s.s_multi_writer);
    ]

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "@[<v>%a@,must-durable {%s}@,may-dirty {%s}@]"
    Fmt.(
      list ~sep:cut (fun ppf (v, m) -> pf ppf "%-10s %s" v (mask_name m)))
    s.s_masks
    (String.concat ", " (Vars.elements s.s_must_durable))
    (String.concat ", " (Vars.elements s.s_may_dirty))
