(** Static lockset analysis: the forward must-/may-held lockset per CFG
    point, the structural lock lints derived from it, and Eraser-style
    race candidates complementing the dynamic {!Racecheck} vector
    clocks.

    Must-held (intersection over joining paths) is used where a missing
    lock is the hazard: released-not-acquired sites and race
    candidates. May-held (union) is used where holding a lock at all is
    the hazard: locks leaked past thread exit and restart points placed
    inside a critical section (rolling back to such a point would
    re-acquire, or worse re-release, a lock whose state the crash
    destroyed — the runtime requires restart points at lock-free
    quiescence). Both lattices are path-insensitive over-approximations
    in the safe direction for their respective checks. *)

module Locks = Dataflow.Locks

type release_site = { rel_node : int; rel_path : string; rel_lock : int }

type rp_site = {
  rpc_node : int;
  rpc_path : string;
  rpc_rp : int;
  rpc_locks : int list;
}

type thread_summary = {
  ls_thread : string;
  release_unheld : release_site list;
      (** releases of a lock not must-held there (a bug on some path;
          [Simsched.Mutex] raises at run time) *)
  leaked : int list;  (** locks possibly held at thread exit *)
  rp_critical : rp_site list;  (** restart points with may-held locks *)
}

val analyse_cfg : Ir.cfg -> thread_summary
val analyse_thread : Ir.thread -> thread_summary
val analyse : Ir.program -> thread_summary list

type access_kind = Acc_read | Acc_write

type race_candidate = {
  rc_var : Ir.var;
  rc_threads : (string * access_kind) list;
  rc_write_write : bool;
}

val races : Ir.program -> race_candidate list
(** Variables accessed by two or more threads, at least once as a
    write, with an empty intersection of must-held locksets over all
    access sites — the Eraser discipline. Path-insensitivity makes this
    a may-race: the dynamic {!Racecheck} can refute a candidate that no
    schedule realises, but a consistently-locked variable is never
    reported. *)
