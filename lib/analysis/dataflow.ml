module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type 'a solution = { inf : 'a array; outf : 'a array }

module Make (L : LATTICE) = struct
  (* One worklist pass parameterised by edge direction: [preds] feeds a
     node's input fact, [succs] is reawakened when its output changes. *)
  let solve (cfg : Ir.cfg) ~root ~preds ~succs ~init ~transfer =
    let n = Array.length cfg.Ir.nodes in
    let inf = Array.make n L.bottom and outf = Array.make n L.bottom in
    let work = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then (
        queued.(i) <- true;
        Queue.add i work)
    in
    for i = 0 to n - 1 do
      push i
    done;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      queued.(i) <- false;
      let node = cfg.Ir.nodes.(i) in
      let base = if i = root then init else L.bottom in
      let in_ =
        List.fold_left (fun acc p -> L.join acc outf.(p)) base (preds node)
      in
      inf.(i) <- in_;
      let out = transfer node in_ in
      if not (L.equal out outf.(i)) then (
        outf.(i) <- out;
        List.iter push (succs node))
    done;
    { inf; outf }

  let forward cfg ~init ~transfer =
    solve cfg ~root:cfg.Ir.entry
      ~preds:(fun n -> n.Ir.pred)
      ~succs:(fun n -> n.Ir.succ)
      ~init ~transfer

  let backward cfg ~init ~transfer =
    solve cfg ~root:cfg.Ir.exit_node
      ~preds:(fun n -> n.Ir.succ)
      ~succs:(fun n -> n.Ir.pred)
      ~init ~transfer
end

module Vars = Set.Make (String)
module Locks = Set.Make (Int)

module MaySet (S : Set.S) = struct
  type t = S.t

  let bottom = S.empty
  let equal = S.equal
  let join = S.union
end

module MustSet (S : Set.S) = struct
  type t = Top | Known of S.t

  let bottom = Top

  let equal a b =
    match (a, b) with
    | Top, Top -> true
    | Known x, Known y -> S.equal x y
    | Top, Known _ | Known _, Top -> false

  let join a b =
    match (a, b) with
    | Top, x | x, Top -> x
    | Known x, Known y -> Known (S.inter x y)

  let known = function Top -> S.empty | Known s -> s
  let mem x = function Top -> true | Known s -> S.mem x s
end
