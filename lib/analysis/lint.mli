(** Persistency lint: typed findings over an IR program, combining the
    {!Warstatic} WAR analysis, the {!Lockset} analyses and a
    constant-condition dead-code walk, optionally validated against a
    {!Placement.plan}. Rendered via {!Obs.Json} behind the [analyze]
    CLI subcommand; errors are what the CI lint gate fails on. *)

type severity = Error | Warning

type rule =
  | Ill_formed  (** {!Ir.check} diagnostics; suppresses further rules *)
  | Store_outside_region
      (** persistent store with no restart point on any path before or
          after it *)
  | War_missing_logging
      (** may-WAR persistent write whose variable the plan does not log *)
  | Write_untracked
      (** persistent write neither logged nor [add_modified]-tracked *)
  | Release_unheld
  | Lock_leak
  | Rp_in_critical_section
  | Unreachable_rp
  | Lockset_race
  | Flush_missing_pwb_at_rp
      (** persistent var may be dirty at a restart point
          ({!Flushlint.Missing_pwb_at_rp}) *)
  | Flush_missing_psync_publish
  | Flush_redundant_pwb
  | Flush_psync_no_pending
  | Flush_torn_cross_line
  | Flush_persist_order_race

type finding = {
  rule : rule;
  severity : severity;
  thread : string option;
  var : Ir.var option;
  lock : int option;
  rp : int option;
  site : string option;  (** CFG breadcrumb, e.g. ["main[1].body[0]"] *)
  message : string;
}

val run :
  ?plan:Placement.plan -> ?lines:(Ir.var -> int) -> Ir.program -> finding list
(** Without [?plan], plan-conformance rules are skipped. [lines] is the
    cache-line layout for the flush-discipline rules (see
    {!Persistate.create}). The result is normalized: sorted on every
    identifying field and deduped by (rule, thread, site, var, lock,
    rp), so the JSON report is byte-deterministic. *)

val errors : finding list -> finding list
val rule_name : rule -> string
val severity_name : severity -> string
val to_json : Ir.program -> finding list -> Obs.Json.t
val pp_finding : finding Fmt.t
