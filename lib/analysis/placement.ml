module Vars = Dataflow.Vars
module Locks = Dataflow.Locks

type plan = { plan_program : string; log : Vars.t; track : Vars.t }

(* Syntactic may-held lockset after a statement (list), used to keep
   inserted restart points out of critical sections. Branches join by
   union; a loop may run zero times, so its effect joins with the
   incoming set. *)
let rec held_stmt held = function
  | Ir.Acquire l -> Locks.add l held
  | Ir.Release l -> Locks.remove l held
  | Ir.If (_, a, b) -> Locks.union (held_list held a) (held_list held b)
  | Ir.While (_, b) -> Locks.union held (held_list held b)
  | Ir.Assign _ | Ir.Rp _ | Ir.Pwb _ | Ir.Psync | Ir.Skip -> held

and held_list held stmts = List.fold_left held_stmt held stmts

let insert_rps (p : Ir.program) : Ir.program =
  let next = ref (Ir.max_rp_id p + 1) in
  let fresh () =
    let r = !next in
    incr next;
    r
  in
  let pers = List.map fst p.Ir.persistent in
  let writes_pers s =
    List.exists (fun v -> List.mem v pers) (Ir.stmt_writes s)
  in
  let transform_thread (t : Ir.thread) =
    (* Paper-style placement: one restart point per iteration of each
       outermost persistent-writing loop, provided the end of the body
       is outside every critical section. *)
    let rec go held acc = function
      | [] -> (held, List.rev acc)
      | (Ir.While (c, body) as s) :: rest
        when writes_pers s && Ir.stmt_rps s = []
             && Locks.is_empty (held_list held body) ->
          let s' = Ir.While (c, body @ [ Ir.Rp (fresh ()) ]) in
          go (held_stmt held s) (s' :: acc) rest
      | s :: rest -> go (held_stmt held s) (s :: acc) rest
    in
    let held_end, body = go Locks.empty [] t.Ir.body in
    (* Every thread mutating persistent state gets a final restart
       point so its last region is bounded before thread exit. *)
    let body =
      if
        List.exists writes_pers body
        && List.concat_map Ir.stmt_rps body = []
        && Locks.is_empty held_end
      then body @ [ Ir.Rp (fresh ()) ]
      else body
    in
    { t with Ir.body }
  in
  { p with Ir.threads = List.map transform_thread p.Ir.threads }

let plan (p : Ir.program) : plan =
  let summaries = Warstatic.analyse p in
  let war, written =
    List.fold_left
      (fun (w, wr) (s : Warstatic.summary) ->
        (Vars.union w s.Warstatic.war, Vars.union wr s.Warstatic.written))
      (Vars.empty, Vars.empty) summaries
  in
  let pers = Vars.of_list (List.map fst p.Ir.persistent) in
  {
    plan_program = p.Ir.pname;
    log = Vars.inter war pers;
    track = Vars.inter (Vars.diff written war) pers;
  }

let infer p =
  let p' = insert_rps p in
  (p', plan p')

let plan_to_json (p : Ir.program) (pl : plan) : Obs.Json.t =
  let vars s = Obs.Json.List (List.map (fun v -> Obs.Json.String v) (Vars.elements s)) in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "respct-plan/v1");
      ("program", Obs.Json.String pl.plan_program);
      ("log", vars pl.log);
      ("track", vars pl.track);
      ( "restart_points",
        Obs.Json.List
          (List.map
             (fun r -> Obs.Json.Int r)
             (List.sort_uniq compare (Ir.rp_ids p))) );
      ( "threads",
        Obs.Json.List
          (List.map (fun t -> Obs.Json.String t.Ir.tname) p.Ir.threads) );
    ]

let pp_plan ppf pl =
  Fmt.pf ppf "@[<v>plan %s@,log:   {%s}@,track: {%s}@]" pl.plan_program
    (String.concat ", " (Vars.elements pl.log))
    (String.concat ", " (Vars.elements pl.track))
