(** A small imperative program IR for static persistency analysis.

    Programs declare persistent variables (NVM-resident, checkpointed by
    the ResPCT runtime) and transient variables (re-initialised on
    restart), and run one or more threads of structured statements:
    assignments over integer arithmetic, [if]/[while], lock
    acquire/release and explicit restart points. This is the domain the
    paper's section 6 sketches for automating the section 3.3.2 logging
    rule statically; {!Warstatic} and {!Placement} implement that
    automation over the control-flow graphs built here, and {!Exec} runs
    the same programs dynamically so every static verdict can be checked
    against the trace-based oracles. *)

type var = string

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | And | Or

type expr = Int of int | Var of var | Binop of binop * expr * expr

type stmt =
  | Assign of var * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Acquire of int  (** lock id *)
  | Release of int
  | Rp of int  (** explicit restart point with a program-unique id *)
  | Pwb of var
      (** [clwb] of the persistent variable's cache line (litmus programs;
          a volatile no-op in the host interpreter) *)
  | Psync  (** [sfence] ordering fence *)
  | Skip

type thread = { tname : string; body : stmt list }

type program = {
  pname : string;
  persistent : (var * int) list;  (** name, initial value *)
  transient : (var * int) list;
  threads : thread list;
}

val expr_reads : expr -> var list
(** Variables read by an expression, left-to-right depth-first, with
    duplicates preserved (evaluation order of the interpreter). *)

val stmt_writes : stmt -> var list
(** Variables assigned anywhere inside a statement (deduplicated). *)

val declared : program -> var list
val is_persistent : program -> var -> bool
val is_declared : program -> var -> bool

val stmt_rps : stmt -> int list
(** Restart-point ids anywhere inside a statement, in syntactic order. *)

val rp_ids : program -> int list
(** All restart-point ids in program order, duplicates preserved. *)

val max_rp_id : program -> int
(** Largest restart-point id, [-1] when the program has none. *)

val check : program -> string list
(** Well-formedness diagnostics: duplicate declarations, undeclared
    variables, duplicate restart-point ids, negative lock ids, duplicate
    thread names. Empty means well-formed. *)

val well_formed : program -> bool

(** {1 Control-flow graph}

    One CFG per thread. Nodes carry a [path] breadcrumb into the source
    statement list (e.g. ["main[2].body[0].then[1]"]) used verbatim in
    lint diagnostics. A {!Node_branch} evaluates its condition (reading
    its variables) and forks; the loop back-edge targets the branch
    node. *)

type node_kind =
  | Entry
  | Exit
  | Node_assign of var * expr
  | Node_branch of expr
  | Node_acquire of int
  | Node_release of int
  | Node_rp of int
  | Node_pwb of var
  | Node_psync

type node = {
  id : int;
  kind : node_kind;
  path : string;
  mutable succ : int list;
  mutable pred : int list;
}

type cfg = {
  owner : string;  (** thread name *)
  nodes : node array;  (** indexed by [node.id] *)
  entry : int;
  exit_node : int;
}

val cfg_of_thread : thread -> cfg

val node_reads : node_kind -> var list
(** Variables read when executing a node (assign RHS or branch
    condition), in evaluation order with duplicates. *)

val node_write : node_kind -> var option

val pp_expr : expr Fmt.t
val pp_stmt : stmt Fmt.t
val pp_program : program Fmt.t
val pp_node_kind : node_kind Fmt.t
val pp_cfg : cfg Fmt.t

val program_to_string : program -> string
(** [Fmt.str pp_program], for QCheck counterexample printing. *)
