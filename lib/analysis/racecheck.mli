(** Vector-clock data-race checker for access traces.

    ResPCT assumes race-free lock-based programs (paper section 2.1): two
    conflicting accesses to the same variable must be ordered by the
    happens-before edges of lock release/acquire pairs. This checker
    validates the assumption for recorded traces with the standard
    vector-clock algorithm. *)

type event =
  | Racq of { thread : int; lock : int }
  | Rrel of { thread : int; lock : int }
  | Rread of { thread : int; addr : int }
  | Rwrite of { thread : int; addr : int }

type race = { addr : int; first_thread : int; second_thread : int }

(** {2 Streaming interface} — the shape a trace-bus subscriber needs *)

type t
(** Checker state accumulating happens-before knowledge event by event. *)

val create : unit -> t

val push : t -> event -> unit
(** Feed one event in trace order. *)

val races : t -> race list
(** Races detected so far, in trace order. *)

val race_count : t -> int

(** {2 Batch interface over recorded traces} *)

val check : event list -> race list
(** All conflicting, unordered access pairs, in trace order. *)

val race_free : event list -> bool
(** [check events = []]. *)
