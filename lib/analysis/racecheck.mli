(** Vector-clock data-race checker for access traces.

    ResPCT assumes race-free lock-based programs (paper section 2.1): two
    conflicting accesses to the same variable must be ordered by the
    happens-before edges of lock release/acquire pairs. This checker
    validates the assumption for recorded traces with the standard
    vector-clock algorithm. *)

type event =
  | Racq of { thread : int; lock : int }
  | Rrel of { thread : int; lock : int }
  | Rread of { thread : int; addr : int }
  | Rwrite of { thread : int; addr : int }

type access = Aread | Awrite

type race = {
  addr : int;
  first_thread : int;  (** the earlier endpoint in trace order *)
  first_access : access;
  second_thread : int;  (** the later, conflicting endpoint *)
  second_access : access;
}
(** One unordered conflicting pair. At least one endpoint is a write;
    [first_access = Aread] means a read raced with a later write. *)

val pp_access : Format.formatter -> access -> unit
val pp_race : Format.formatter -> race -> unit

(** {2 Streaming interface} — the shape a trace-bus subscriber needs *)

type t
(** Checker state accumulating happens-before knowledge event by event. *)

val create : unit -> t

val push : t -> event -> unit
(** Feed one event in trace order. *)

val races : t -> race list
(** Races detected so far, in trace order, deduplicated: at most one
    report per (address, unordered thread pair), keeping the first
    conflicting access kinds observed. Long loops that re-race the same
    pair every iteration therefore do not flood the list. *)

val race_count : t -> int
(** Total number of conflicting, unordered access pairs detected,
    {e including} repeats of pairs [races] deduplicates — so
    [race_count t >= List.length (races t)], with equality iff no pair
    raced more than once. *)

(** {2 Batch interface over recorded traces} *)

val check : event list -> race list
(** Conflicting, unordered access pairs, in trace order, deduplicated
    per (address, unordered thread pair) like [races]. *)

val race_free : event list -> bool
(** [check events = []]. *)
