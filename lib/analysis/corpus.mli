(** The analysis corpus: IR ports of the repo's example workloads,
    parameterised by iteration count for crashtest shrinking. Both come
    without restart points so {!Placement.infer} supplies them. *)

val bank_transfer : iters:int -> Ir.program
(** Two tellers transferring between three locked accounts (port of
    [examples/bank_transfer.ml]); every account is WAR, so the inferred
    plan logs all three. *)

val kv_update : iters:int -> Ir.program
(** Single-threaded kvstore-style loop: a write-first journal word
    (RAW: tracked only), branch-selected read-modify-write slots and a
    size counter (WAR: logged). *)

val all : (string * (iters:int -> Ir.program)) list
(** Name-indexed corpus, used by the [analyze] CLI and the CI gate. *)
