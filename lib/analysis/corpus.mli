(** The analysis corpus: IR ports of the repo's example workloads,
    parameterised by iteration count for crashtest shrinking. Both come
    without restart points so {!Placement.infer} supplies them. *)

val bank_transfer : iters:int -> Ir.program
(** Two tellers transferring between three locked accounts (port of
    [examples/bank_transfer.ml]); every account is WAR, so the inferred
    plan logs all three. *)

val kv_update : iters:int -> Ir.program
(** Single-threaded kvstore-style loop: a write-first journal word
    (RAW: tracked only), branch-selected read-modify-write slots and a
    size counter (WAR: logged). *)

val wal_append : iters:int -> Ir.program
(** Single-threaded WAL append in the explicit-flush discipline:
    [payload] pwb'd and psync'd before the [commit] mark is published,
    then the mark flushed in turn. Write-only persistent state, so the
    inferred plan logs nothing — the {!Flushlint} rules are the whole
    story. *)

val all : (string * (iters:int -> Ir.program)) list
(** Name-indexed corpus, used by the [analyze] CLI and the CI gate.
    Every entry here must produce a non-empty logging plan (the
    crashmatrix strip-log mutant gates depend on it). *)

val flush_corpus : (string * (iters:int -> Ir.program)) list
(** Explicit-flush programs linted by [analyze] alongside {!all} but
    excluded from the strip-log dynamic gates. *)
