(* Analysis corpus: representative programs ported to the IR from the
   repo's examples, parameterised by iteration count so the crashtest
   explorer can shrink them. Neither carries restart points — placement
   inserts them, and the inferred plan is what the dynamic oracles
   validate. *)

let v x = Ir.Var x
let i n = Ir.Int n
let ( + ) a b = Ir.Binop (Ir.Add, a, b)
let ( - ) a b = Ir.Binop (Ir.Sub, a, b)
let ( * ) a b = Ir.Binop (Ir.Mul, a, b)
let ( mod ) a b = Ir.Binop (Ir.Mod, a, b)
let ( < ) a b = Ir.Binop (Ir.Lt, a, b)
let ( = ) a b = Ir.Binop (Ir.Eq, a, b)
let set x e = Ir.Assign (x, e)

(* examples/bank_transfer.ml: two tellers moving money between locked
   accounts, locks taken in address order. Reading both balances before
   writing both back makes every account WAR — the InCLL-logging case. *)
let bank_transfer ~iters : Ir.program =
  let teller name ~src ~dst ~lo ~hi ~ctr =
    {
      Ir.tname = name;
      body =
        [
          set ctr (i 0);
          Ir.While
            ( v ctr < i iters,
              [
                Ir.Acquire lo;
                Ir.Acquire hi;
                set "tmp_src" (v src);
                set "tmp_dst" (v dst);
                set "amt" ((v ctr mod i 7) + i 1);
                set src (v "tmp_src" - v "amt");
                set dst (v "tmp_dst" + v "amt");
                Ir.Release hi;
                Ir.Release lo;
                set ctr (v ctr + i 1);
              ] );
        ];
    }
  in
  {
    Ir.pname = "bank-transfer";
    persistent = [ ("acct0", 100); ("acct1", 100); ("acct2", 100) ];
    transient =
      [
        ("i0", 0); ("i1", 0); ("tmp_src", 0); ("tmp_dst", 0); ("amt", 0);
      ];
    threads =
      [
        teller "teller0" ~src:"acct0" ~dst:"acct1" ~lo:0 ~hi:1 ~ctr:"i0";
        teller "teller1" ~src:"acct1" ~dst:"acct2" ~lo:1 ~hi:2 ~ctr:"i1";
      ];
  }

(* A kvstore-style update loop (cf. lib/apps/kvstore.ml): a journal word
   written before anything reads it (RAW: tracked, never logged), two
   slots updated read-modify-write through a branch, and a size counter
   bumped every iteration (both WAR: logged). Single-threaded, so the
   lockset analyses stay quiet and the WAR/RAW split is the whole
   story. *)
let kv_update ~iters : Ir.program =
  {
    Ir.pname = "kv-update";
    persistent = [ ("slot0", 0); ("slot1", 0); ("size", 0); ("journal", 0) ];
    transient = [ ("i", 0); ("old", 0) ];
    threads =
      [
        {
          Ir.tname = "kv";
          body =
            [
              set "i" (i 0);
              Ir.While
                ( v "i" < i iters,
                  [
                    set "journal" ((v "i" * i 10) + i 1);
                    Ir.If
                      ( v "i" mod i 2 = i 0,
                        [ set "old" (v "slot0"); set "slot0" (v "old" + i 3) ],
                        [ set "old" (v "slot1"); set "slot1" (v "old" + i 5) ]
                      );
                    set "size" (v "size" + i 1);
                    set "i" (v "i" + i 1);
                  ] );
            ];
        };
      ];
  }

(* A write-ahead-log append loop in the *explicit-flush* discipline:
   payload persisted and fenced before the commit mark is published,
   then the mark persisted and fenced in turn. Write-only persistent
   state (no WAR, nothing logged), so it exercises exactly the rules
   the Persistate lattice adds: stripping the psyncs leaves the commit
   publish racing an unfenced payload pwb
   (missing-psync-before-dependent-publish), and duplicating a pwb is
   flagged redundant. Lives in [flush_corpus], not [all]: the dynamic
   strip-log mutant gates require a non-empty logging plan. *)
let wal_append ~iters : Ir.program =
  {
    Ir.pname = "wal-append";
    persistent = [ ("payload", 0); ("commit", 0) ];
    transient = [ ("seq", 0) ];
    threads =
      [
        {
          Ir.tname = "writer";
          body =
            [
              set "seq" (i 0);
              Ir.While
                ( v "seq" < i iters,
                  [
                    set "payload" ((v "seq" * i 10) + i 1);
                    Ir.Pwb "payload";
                    Ir.Psync;
                    set "commit" (v "seq" + i 1);
                    Ir.Pwb "commit";
                    Ir.Psync;
                    set "seq" (v "seq" + i 1);
                  ] );
            ];
        };
      ];
  }

let all : (string * (iters:int -> Ir.program)) list =
  [
    ("bank-transfer", fun ~iters -> bank_transfer ~iters);
    ("kv-update", fun ~iters -> kv_update ~iters);
  ]

let flush_corpus : (string * (iters:int -> Ir.program)) list =
  [ ("wal-append", fun ~iters -> wal_append ~iters) ]
