module Vars = Dataflow.Vars
module VMust = Dataflow.MustSet (Vars)

(* The region-local dataflow state, reset at every restart point. [r]
   may-holds the variables read before any write on some path from the
   region start; [wmust]/[wmay] are the variables written on every /
   some path. A variable enters [r] on a read exactly when it is not
   must-written — i.e. when some path carries the read as the
   variable's first access, which is the section 3.3.2 WAR trigger. *)
module Fact = struct
  type t = { r : Vars.t; wmust : VMust.t; wmay : Vars.t }

  let bottom = { r = Vars.empty; wmust = VMust.Top; wmay = Vars.empty }
  let region_start = { r = Vars.empty; wmust = VMust.Known Vars.empty; wmay = Vars.empty }

  let equal a b =
    Vars.equal a.r b.r && VMust.equal a.wmust b.wmust
    && Vars.equal a.wmay b.wmay

  let join a b =
    {
      r = Vars.union a.r b.r;
      wmust = VMust.join a.wmust b.wmust;
      wmay = Vars.union a.wmay b.wmay;
    }
end

module Solver = Dataflow.Make (Fact)

type site = { s_node : int; s_path : string; s_var : Ir.var }

type summary = {
  thread : string;
  war : Vars.t;
  written : Vars.t;
  sites : site list;
}

let apply_reads (f : Fact.t) reads =
  List.fold_left
    (fun (f : Fact.t) v ->
      if VMust.mem v f.Fact.wmust then f
      else { f with Fact.r = Vars.add v f.Fact.r })
    f reads

let transfer (node : Ir.node) (f : Fact.t) : Fact.t =
  match node.Ir.kind with
  | Ir.Entry | Ir.Exit | Ir.Node_acquire _ | Ir.Node_release _
  | Ir.Node_pwb _ | Ir.Node_psync ->
      f
  | Ir.Node_rp _ -> Fact.region_start
  | Ir.Node_branch e -> apply_reads f (Ir.expr_reads e)
  | Ir.Node_assign (v, e) ->
      let f = apply_reads f (Ir.expr_reads e) in
      {
        Fact.r = f.Fact.r;
        wmust = VMust.Known (Vars.add v (VMust.known f.Fact.wmust));
        wmay = Vars.add v f.Fact.wmay;
      }

let analyse_cfg (cfg : Ir.cfg) : summary =
  let sol = Solver.forward cfg ~init:Fact.region_start ~transfer in
  let war = ref Vars.empty and written = ref Vars.empty in
  let sites = ref [] in
  Array.iter
    (fun (n : Ir.node) ->
      match n.Ir.kind with
      | Ir.Node_assign (v, e) ->
          let inf = sol.Dataflow.inf.(n.Ir.id) in
          (* Unreachable nodes keep the bottom fact (wmust = Top), so
             their reads never enter [r] and they cannot flag. *)
          let f = apply_reads inf (Ir.expr_reads e) in
          written := Vars.add v !written;
          if Vars.mem v f.Fact.r then (
            war := Vars.add v !war;
            sites := { s_node = n.Ir.id; s_path = n.Ir.path; s_var = v } :: !sites)
      | _ -> ())
    cfg.Ir.nodes;
  {
    thread = cfg.Ir.owner;
    war = !war;
    written = !written;
    sites = List.rev !sites;
  }

let analyse_thread t = analyse_cfg (Ir.cfg_of_thread t)
let analyse (p : Ir.program) = List.map analyse_thread p.Ir.threads

let classify_thread (s : summary) v =
  if Vars.mem v s.war then Idempotence.War
  else if Vars.mem v s.written then Idempotence.Raw
  else Idempotence.No_dependency

let classify p v =
  let merge a b =
    match (a, b) with
    | Idempotence.War, _ | _, Idempotence.War -> Idempotence.War
    | Idempotence.Raw, _ | _, Idempotence.Raw -> Idempotence.Raw
    | Idempotence.No_dependency, Idempotence.No_dependency ->
        Idempotence.No_dependency
  in
  List.fold_left
    (fun acc s -> merge acc (classify_thread s v))
    Idempotence.No_dependency (analyse p)
