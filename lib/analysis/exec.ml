module Vars = Dataflow.Vars

let truthy n = n <> 0

let apply op x y =
  match op with
  | Ir.Add -> x + y
  | Ir.Sub -> x - y
  | Ir.Mul -> x * y
  | Ir.Div -> if y = 0 then 0 else x / y
  | Ir.Mod -> if y = 0 then 0 else x mod y
  | Ir.Eq -> if x = y then 1 else 0
  | Ir.Ne -> if x <> y then 1 else 0
  | Ir.Lt -> if x < y then 1 else 0
  | Ir.Le -> if x <= y then 1 else 0
  | Ir.And -> if truthy x && truthy y then 1 else 0
  | Ir.Or -> if truthy x || truthy y then 1 else 0

(* ------------------------------------------------------------------ *)
(* Host reference interpreter *)

type obs = {
  war : Vars.t;
  segments : (string * Idempotence.access list list) list;
  finals : (Ir.var * int) list;
  completed : bool;
  thread_error : string option;
}

(* The section 3.3.2 state machine, applied to the executed path: a
   region-local per-variable record of whether the first access so far
   was a read. *)
type region_state = Read_first | Written

type ithread = {
  it_name : string;
  mutable work : Ir.stmt list;
  mutable blocked_on : int option;
  region : (Ir.var, region_state) Hashtbl.t;
  mutable cur : Idempotence.access list;  (** reversed *)
  mutable segs : Idempotence.access list list;  (** reversed *)
}

let interp ?(fuel = 100_000) ?(sched_seed = 0) (p : Ir.program) : obs =
  let store = Hashtbl.create 16 in
  List.iter
    (fun (v, i) -> Hashtbl.replace store v i)
    (p.Ir.persistent @ p.Ir.transient);
  let threads =
    List.map
      (fun (t : Ir.thread) ->
        {
          it_name = t.Ir.tname;
          work = t.Ir.body;
          blocked_on = None;
          region = Hashtbl.create 8;
          cur = [];
          segs = [];
        })
      p.Ir.threads
  in
  let owners : (int, ithread) Hashtbl.t = Hashtbl.create 4 in
  let war = ref Vars.empty in
  let error = ref None in
  let record_read t v =
    t.cur <- Idempotence.Read v :: t.cur;
    if not (Hashtbl.mem t.region v) then Hashtbl.replace t.region v Read_first
  in
  let record_write t v =
    t.cur <- Idempotence.Write v :: t.cur;
    (match Hashtbl.find_opt t.region v with
    | Some Read_first -> war := Vars.add v !war
    | Some Written | None -> ());
    Hashtbl.replace t.region v Written
  in
  let rec eval t = function
    | Ir.Int n -> n
    | Ir.Var v ->
        record_read t v;
        Hashtbl.find store v
    | Ir.Binop (op, a, b) ->
        let x = eval t a in
        let y = eval t b in
        apply op x y
  in
  let flush_region t =
    t.segs <- List.rev t.cur :: t.segs;
    t.cur <- [];
    Hashtbl.reset t.region
  in
  (* Execute one atomic step of [t]; assignments evaluate their RHS and
     write in one step, mirroring a single IR CFG node. *)
  let step t =
    match t.work with
    | [] -> ()
    | s :: rest -> (
        match s with
        | Ir.Skip -> t.work <- rest
        | Ir.Assign (v, e) ->
            let x = eval t e in
            record_write t v;
            Hashtbl.replace store v x;
            t.work <- rest
        | Ir.If (c, a, b) ->
            let x = eval t c in
            t.work <- (if truthy x then a else b) @ rest
        | Ir.While (c, body) ->
            let x = eval t c in
            if truthy x then t.work <- body @ (s :: rest) else t.work <- rest
        | Ir.Acquire l -> (
            match Hashtbl.find_opt owners l with
            | Some o when o != t -> t.blocked_on <- Some l
            | Some _ -> t.work <- rest (* re-entrant: no-op *)
            | None ->
                Hashtbl.replace owners l t;
                t.work <- rest)
        | Ir.Release l -> (
            match Hashtbl.find_opt owners l with
            | Some o when o == t ->
                Hashtbl.remove owners l;
                t.work <- rest
            | Some _ | None ->
                if !error = None then
                  error :=
                    Some
                      (Fmt.str "thread %s releases unheld lock L%d" t.it_name
                         l);
                t.work <- [])
        | Ir.Rp _ ->
            flush_region t;
            t.work <- rest
        | Ir.Pwb _ | Ir.Psync ->
            (* Persist instructions are volatile no-ops: they order
               write-back, which the host store does not model. They still
               cost one scheduler step, like any other atomic statement. *)
            t.work <- rest)
  in
  (* Deterministic seeded scheduler: splitmix-style stream picking among
     runnable threads each step. *)
  let state = ref (sched_seed * 0x9E3779B9 + 0x85EBCA6B) in
  let next_int bound =
    state := (!state * 25214903917) + 11;
    let x = (!state lsr 17) land 0x3FFFFFFF in
    x mod bound
  in
  let fuel = ref fuel in
  let runnable () =
    List.filter
      (fun t ->
        t.work <> []
        &&
        match t.blocked_on with
        | None -> true
        | Some l -> (
            match Hashtbl.find_opt owners l with
            | Some o -> o == t
            | None -> true))
      threads
  in
  let rec drive () =
    if !fuel > 0 then
      match runnable () with
      | [] -> ()
      | rs ->
          let t = List.nth rs (next_int (List.length rs)) in
          (match t.blocked_on with
          | Some l when not (Hashtbl.mem owners l) ->
              Hashtbl.replace owners l t;
              t.blocked_on <- None;
              t.work <- (match t.work with _ :: rest -> rest | [] -> [])
          | Some _ -> t.blocked_on <- None (* already owner *)
          | None -> step t);
          decr fuel;
          drive ()
  in
  drive ();
  List.iter flush_region threads;
  {
    war = !war;
    segments = List.map (fun t -> (t.it_name, List.rev t.segs)) threads;
    finals =
      List.map
        (fun (v, _) -> (v, Hashtbl.find store v))
        (p.Ir.persistent @ p.Ir.transient);
    completed = List.for_all (fun t -> t.work = []) threads;
    thread_error = !error;
  }

(* ------------------------------------------------------------------ *)
(* Memory-backed stepper: the host interpreter's scheduler and statement
   semantics, with persistent variables living in a Simnvm.Memsys at
   caller-chosen addresses. This is the "analyzer IR semantics over real
   persistent memory" world the litmus differential harness drives:
   Pwb/Psync hit the memory system, and the caller crashes [mem] and
   reads the persisted image afterwards. *)

type mem_obs = {
  mo_finals : (Ir.var * int) list;  (** volatile (coherent) final values *)
  mo_halted : bool;  (** stopped because [halt_var] became nonzero *)
  mo_completed : bool;  (** every thread ran to completion within fuel *)
}

let run_mem ?(fuel = 100_000) ?(sched_seed = 0) ?halt_var
    ~(mem : Simnvm.Memsys.t) ~(addr_of : Ir.var -> Simnvm.Addr.t option)
    (p : Ir.program) : mem_obs =
  let transient = Hashtbl.create 16 in
  let read v =
    match addr_of v with
    | Some a -> Simnvm.Memsys.load mem a
    | None -> Hashtbl.find transient v
  in
  let write v x =
    match addr_of v with
    | Some a -> Simnvm.Memsys.store mem a x
    | None -> Hashtbl.replace transient v x
  in
  List.iter
    (fun (v, i) ->
      match addr_of v with
      | Some a ->
          (* Avoid gratuitously dirtying the line when the zeroed image
             already holds the initial value (litmus programs start all
             locations at 0, and an init store would widen the crash-image
             nondeterminism beyond what the program itself performs). *)
          if Simnvm.Memsys.peek mem a <> i then Simnvm.Memsys.store mem a i
      | None -> Hashtbl.replace transient v i)
    (p.Ir.persistent @ p.Ir.transient);
  let halted () =
    match halt_var with
    | None -> false
    | Some v -> ( try read v <> 0 with Not_found -> false)
  in
  let threads =
    List.map (fun (t : Ir.thread) -> (t.Ir.tname, ref t.Ir.body)) p.Ir.threads
  in
  let owners : (int, Ir.stmt list ref) Hashtbl.t = Hashtbl.create 4 in
  let rec eval = function
    | Ir.Int n -> n
    | Ir.Var v -> read v
    | Ir.Binop (op, a, b) ->
        let x = eval a in
        let y = eval b in
        apply op x y
  in
  let step work =
    match !work with
    | [] -> ()
    | s :: rest -> (
        match s with
        | Ir.Skip -> work := rest
        | Ir.Assign (v, e) ->
            let x = eval e in
            write v x;
            work := rest
        | Ir.If (c, a, b) ->
            work := (if truthy (eval c) then a else b) @ rest
        | Ir.While (c, body) ->
            if truthy (eval c) then work := body @ (s :: rest)
            else work := rest
        | Ir.Acquire l -> (
            match Hashtbl.find_opt owners l with
            | Some o when o != work -> () (* blocked; retried when free *)
            | Some _ -> work := rest
            | None ->
                Hashtbl.replace owners l work;
                work := rest)
        | Ir.Release l ->
            (match Hashtbl.find_opt owners l with
            | Some o when o == work -> Hashtbl.remove owners l
            | Some _ | None -> ());
            work := rest
        | Ir.Rp _ -> work := rest
        | Ir.Pwb v -> (
            (match addr_of v with
            | Some a -> Simnvm.Memsys.pwb mem a
            | None -> ());
            work := rest)
        | Ir.Psync ->
            Simnvm.Memsys.psync mem;
            work := rest)
  in
  let state = ref ((sched_seed * 0x9E3779B9) + 0x85EBCA6B) in
  let next_int bound =
    state := (!state * 25214903917) + 11;
    let x = (!state lsr 17) land 0x3FFFFFFF in
    x mod bound
  in
  let runnable () =
    List.filter
      (fun (_, work) ->
        match !work with
        | [] -> false
        | Ir.Acquire l :: _ -> (
            match Hashtbl.find_opt owners l with
            | Some o -> o == work
            | None -> true)
        | _ -> true)
      threads
  in
  let fuel = ref fuel in
  let rec drive () =
    if !fuel > 0 && not (halted ()) then
      match runnable () with
      | [] -> ()
      | rs ->
          let _, work = List.nth rs (next_int (List.length rs)) in
          step work;
          decr fuel;
          drive ()
  in
  drive ();
  {
    mo_finals =
      List.filter_map
        (fun (v, _) ->
          match try Some (read v) with Not_found -> None with
          | Some x -> Some (v, x)
          | None -> None)
        (p.Ir.persistent @ p.Ir.transient);
    mo_halted = halted ();
    mo_completed = List.for_all (fun (_, w) -> !w = []) threads;
  }

(* ------------------------------------------------------------------ *)
(* Simulator world: run the program on Simsched/Respct.Runtime under an
   instrumentation plan, with the last-checkpoint durability oracle. *)

type world = {
  w_mem : Simnvm.Memsys.t;
  w_bus : Simsched.Trace.bus;
  w_run : unit -> unit;
  w_completed : unit -> int;
  w_recover_check : unit -> (unit, string) result;
  w_var_addrs : unit -> (Ir.var * Simnvm.Addr.t) list;
}

let mem_cfg ~mem_seed ~pcso =
  {
    Simnvm.Memsys.default_config with
    Simnvm.Memsys.nvm_words = 1 lsl 16;
    dram_words = 1 lsl 14;
    sets = 64;
    ways = 4;
    seed = mem_seed;
    evict_rate = 0.0;
    pcso;
  }

let rt_cfg =
  {
    Respct.Runtime.period_ns = 400.0;
    flusher_pool = 2;
    mode = Respct.Runtime.Full;
    max_threads = 8;
    registry_per_slot = 256;
    integrity = false;
    pipeline = false;
  }

type binding = Cell of Respct.Incll.cell | Raw of Simnvm.Addr.t

let sim_world ?(sched_seed = 1) ?(mem_seed = 1) ?(pcso = true)
    ?(strip_log = []) ?oracle_log ~(plan : Placement.plan) (p : Ir.program) :
    world =
  let mem = Simnvm.Memsys.create (mem_cfg ~mem_seed ~pcso) in
  let sched = Simsched.Scheduler.create ~seed:sched_seed () in
  let env = Simsched.Env.make mem sched in
  let rt = ref None in
  let created_epoch = ref max_int in
  let completed = ref 0 in
  let remaining = ref (List.length p.Ir.threads) in
  (* Ground truth for the oracle: the variables the correct plan logs.
     A stripped variable still *ought* to roll back exactly — that is
     what makes the mutant detectable. *)
  let oracle_log = Option.value oracle_log ~default:plan.Placement.log in
  let logged v =
    Vars.mem v plan.Placement.log && not (List.mem v strip_log)
  in
  let tracked v =
    Vars.mem v plan.Placement.track
    || (Vars.mem v plan.Placement.log && List.mem v strip_log)
  in
  let model = Hashtbl.create 16 in
  let history : (Ir.var, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let snapshots = Hashtbl.create 8 in
  let cursors = Hashtbl.create 8 in
  let bindings : (Ir.var, binding) Hashtbl.t = Hashtbl.create 16 in
  let transient = Hashtbl.create 16 in
  let model_snapshot () =
    List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) model [])
  in
  let history_cursors () =
    List.sort compare
      (Hashtbl.fold (fun v h a -> (v, List.length !h) :: a) history [])
  in
  let max_lock =
    let rec go m = function
      | Ir.Acquire l | Ir.Release l -> max m l
      | Ir.If (_, a, b) -> List.fold_left go (List.fold_left go m a) b
      | Ir.While (_, b) -> List.fold_left go m b
      | Ir.Assign _ | Ir.Rp _ | Ir.Pwb _ | Ir.Psync | Ir.Skip -> m
    in
    List.fold_left
      (fun m (t : Ir.thread) -> List.fold_left go m t.Ir.body)
      0 p.Ir.threads
  in
  let mutexes =
    Array.init (max_lock + 1) (fun i ->
        Simsched.Mutex.create ~name:(Fmt.str "L%d" i) ())
  in
  let run () =
    let r = Respct.Runtime.create ~cfg:rt_cfg env in
    rt := Some r;
    let finished = ref false in
    ignore
      (Simsched.Scheduler.spawn ~name:"ckpt" sched (fun () ->
           let rec loop at =
             if not !finished then begin
               Simsched.Scheduler.sleep_until sched at;
               if not !finished then begin
                 Respct.Runtime.run_checkpoint r
                   ~on_flushed:(fun next_epoch ->
                     Hashtbl.replace snapshots next_epoch (model_snapshot ());
                     Hashtbl.replace cursors next_epoch (history_cursors ()));
                 loop (at +. rt_cfg.Respct.Runtime.period_ns)
               end
             end
           in
           loop rt_cfg.Respct.Runtime.period_ns));
    let read slot v =
      match Hashtbl.find_opt bindings v with
      | Some (Cell c) -> Respct.Runtime.read r ~slot c
      | Some (Raw a) -> Simsched.Env.load env a
      | None -> Hashtbl.find transient v
    in
    let write slot v x =
      match Hashtbl.find_opt bindings v with
      | Some (Cell c) ->
          Hashtbl.replace model v x;
          (Hashtbl.find history v) := x :: !(Hashtbl.find history v);
          Respct.Runtime.update r ~slot c x
      | Some (Raw a) ->
          Hashtbl.replace model v x;
          (Hashtbl.find history v) := x :: !(Hashtbl.find history v);
          Simsched.Env.store env a x;
          if tracked v then Respct.Runtime.add_modified r ~slot a
      | None -> Hashtbl.replace transient v x
    in
    let rec eval slot = function
      | Ir.Int n -> n
      | Ir.Var v -> read slot v
      | Ir.Binop (op, a, b) ->
          let x = eval slot a in
          let y = eval slot b in
          apply op x y
    in
    let rec exec_stmts slot stmts = List.iter (exec_stmt slot) stmts
    and exec_stmt slot s =
      (* Every statement costs a little virtual time so transient-only
         control flow still advances the clock and yields to the
         coordinator. *)
      Simsched.Env.compute env 25.0;
      match s with
      | Ir.Skip -> ()
      | Ir.Assign (v, e) -> write slot v (eval slot e)
      | Ir.If (c, a, b) ->
          if truthy (eval slot c) then exec_stmts slot a else exec_stmts slot b
      | Ir.While (c, body) ->
          let rec loop () =
            if truthy (eval slot c) then begin
              exec_stmts slot body;
              Simsched.Env.compute env 25.0;
              loop ()
            end
          in
          loop ()
      | Ir.Acquire l -> Simsched.Mutex.lock sched mutexes.(l)
      | Ir.Release l -> Simsched.Mutex.unlock sched mutexes.(l)
      | Ir.Rp id ->
          incr completed;
          Respct.Runtime.rp r ~slot id
      | Ir.Pwb v -> (
          match Hashtbl.find_opt bindings v with
          | Some (Cell c) -> Simsched.Env.pwb env (Respct.Incll.record c)
          | Some (Raw a) -> Simsched.Env.pwb env a
          | None -> () (* transient: nothing to persist *))
      | Ir.Psync -> Simsched.Env.psync env
    in
    let worker slot (t : Ir.thread) () =
      exec_stmts slot t.Ir.body;
      decr remaining;
      if !remaining = 0 then finished := true
    in
    ignore
      (Respct.Runtime.spawn r ~slot:0 (fun _ctx ->
           List.iter
             (fun (v, init) ->
               Hashtbl.replace model v init;
               Hashtbl.replace history v (ref [ init ]);
               if logged v then
                 Hashtbl.replace bindings v
                   (Cell (Respct.Runtime.alloc_incll r ~slot:0 init))
               else begin
                 let a =
                   Respct.Runtime.alloc_raw ~line_start:true r ~slot:0
                     ~words:1
                 in
                 Simsched.Env.store env a init;
                 if tracked v then Respct.Runtime.add_modified r ~slot:0 a;
                 Hashtbl.replace bindings v (Raw a)
               end)
             p.Ir.persistent;
           List.iter
             (fun (v, init) -> Hashtbl.replace transient v init)
             p.Ir.transient;
           created_epoch := Respct.Runtime.epoch r;
           List.iteri
             (fun i t ->
               if i > 0 then
                 ignore
                   (Respct.Runtime.spawn ~name:t.Ir.tname r ~slot:i
                      (fun _ctx -> worker i t ())))
             p.Ir.threads;
           match p.Ir.threads with
           | [] -> finished := true
           | t0 :: _ -> worker 0 t0 ()));
    match Simsched.Scheduler.run sched with
    | Simsched.Scheduler.Completed | Simsched.Scheduler.Crash_interrupt _ ->
        ()
  in
  let recover_check () =
    match !rt with
    | None -> Ok ()
    | Some r -> (
        let rep = Respct.Recovery.run ~layout:(Respct.Runtime.layout r) mem in
        let failed = rep.Respct.Recovery.failed_epoch in
        if failed <= !created_epoch then Ok ()
        else
          match Hashtbl.find_opt snapshots failed with
          | None -> Ok () (* no checkpoint covered this epoch *)
          | Some expected ->
              let cursor =
                Option.value ~default:[] (Hashtbl.find_opt cursors failed)
              in
              let check_var acc (v, want) =
                match acc with
                | Error _ -> acc
                | Ok () -> (
                    match Hashtbl.find_opt bindings v with
                    | Some (Cell c) ->
                        let got = Respct.Incll.Persisted.record mem c in
                        if got = want then Ok ()
                        else
                          Error
                            (Fmt.str
                               "epoch %d: logged %s should recover %d, image \
                                has %d"
                               failed v want got)
                    | Some (Raw a) ->
                        let got = Simnvm.Memsys.persisted mem a in
                        if Vars.mem v oracle_log then
                          (* A variable the 3.3.2 rule requires logged:
                             recovery must restore the checkpoint value
                             exactly, and without the log it cannot. *)
                          if got = want then Ok ()
                          else
                            Error
                              (Fmt.str
                                 "epoch %d: WAR variable %s should recover \
                                  %d, image has %d (logging stripped?)"
                                 failed v want got)
                        else
                          (* RAW-only: re-execution overwrites before
                             reading, so any value this epoch wrote (or
                             the checkpoint value) is legal. *)
                          let written =
                            match Hashtbl.find_opt history v with
                            | None -> []
                            | Some h ->
                                let l = !h in
                                let cut =
                                  match List.assoc_opt v cursor with
                                  | Some c -> List.length l - c
                                  | None -> 0
                                in
                                List.filteri (fun i _ -> i < cut) l
                          in
                          if got = want || List.mem got written then Ok ()
                          else
                            Error
                              (Fmt.str
                                 "epoch %d: raw %s has %d, not the \
                                  checkpoint value %d nor any epoch-%d \
                                  write"
                                 failed v got want failed)
                    | None -> Ok ())
              in
              List.fold_left check_var (Ok ()) expected)
  in
  {
    w_mem = mem;
    w_bus = Simsched.Env.bus env;
    w_run = run;
    w_completed = (fun () -> !completed);
    w_recover_check = recover_check;
    w_var_addrs =
      (fun () ->
        Hashtbl.fold
          (fun v b acc ->
            match b with
            | Cell c -> (v, Respct.Incll.record c) :: acc
            | Raw a -> (v, a) :: acc)
          bindings []
        |> List.sort compare);
  }
