module Vars = Dataflow.Vars

type severity = Error | Warning

type rule =
  | Ill_formed
  | Store_outside_region
  | War_missing_logging
  | Write_untracked
  | Release_unheld
  | Lock_leak
  | Rp_in_critical_section
  | Unreachable_rp
  | Lockset_race
  | Flush_missing_pwb_at_rp
  | Flush_missing_psync_publish
  | Flush_redundant_pwb
  | Flush_psync_no_pending
  | Flush_torn_cross_line
  | Flush_persist_order_race

type finding = {
  rule : rule;
  severity : severity;
  thread : string option;
  var : Ir.var option;
  lock : int option;
  rp : int option;
  site : string option;
  message : string;
}

let rule_name = function
  | Ill_formed -> "ill-formed"
  | Store_outside_region -> "store-outside-restart-region"
  | War_missing_logging -> "war-write-missing-logging"
  | Write_untracked -> "persistent-write-untracked"
  | Release_unheld -> "release-not-acquired"
  | Lock_leak -> "lock-leaked-at-exit"
  | Rp_in_critical_section -> "restart-point-in-critical-section"
  | Unreachable_rp -> "unreachable-restart-point"
  | Lockset_race -> "lockset-race"
  | Flush_missing_pwb_at_rp -> Flushlint.kind_name Flushlint.Missing_pwb_at_rp
  | Flush_missing_psync_publish ->
      Flushlint.kind_name Flushlint.Missing_psync_publish
  | Flush_redundant_pwb -> Flushlint.kind_name Flushlint.Redundant_pwb
  | Flush_psync_no_pending -> Flushlint.kind_name Flushlint.Psync_no_pending
  | Flush_torn_cross_line -> Flushlint.kind_name Flushlint.Torn_cross_line
  | Flush_persist_order_race ->
      Flushlint.kind_name Flushlint.Persist_order_race

let severity_name = function Error -> "error" | Warning -> "warning"

let finding ?thread ?var ?lock ?rp ?site rule severity message =
  { rule; severity; thread; var; lock; rp; site; message }

(* --- persistent store outside any restart region ------------------- *)

(* A boolean may-lattice: "a restart point lies on some path before
   (forward) / after (backward) this node". A persistent store with
   neither has no restart machinery around it at all; one with only a
   restart point ahead sits in the implicit prologue region and is
   fine. *)
module Reach = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module ReachSolver = Dataflow.Make (Reach)

let rp_transfer (n : Ir.node) seen =
  match n.Ir.kind with Ir.Node_rp _ -> true | _ -> seen

let store_outside_region (p : Ir.program) =
  List.concat_map
    (fun (t : Ir.thread) ->
      let cfg = Ir.cfg_of_thread t in
      let fwd = ReachSolver.forward cfg ~init:false ~transfer:rp_transfer in
      let bwd = ReachSolver.backward cfg ~init:false ~transfer:rp_transfer in
      List.filter_map
        (fun (n : Ir.node) ->
          match n.Ir.kind with
          | Ir.Node_assign (v, _)
            when Ir.is_persistent p v
                 && (not fwd.Dataflow.inf.(n.Ir.id))
                 && not bwd.Dataflow.inf.(n.Ir.id) ->
              Some
                (finding ~thread:t.Ir.tname ~var:v ~site:n.Ir.path
                   Store_outside_region Error
                   (Fmt.str
                      "thread %s stores persistent %s at %s with no \
                       restart point on any path before or after it"
                      t.Ir.tname v n.Ir.path))
          | _ -> None)
        (Array.to_list cfg.Ir.nodes))
    p.Ir.threads

(* --- unreachable restart points (constant-condition dead code) ----- *)

let unreachable_rps (p : Ir.program) =
  let rec walk tname dead s =
    match s with
    | Ir.Rp r ->
        if dead then
          [
            finding ~thread:tname ~rp:r Unreachable_rp Warning
              (Fmt.str
                 "restart point %d in thread %s is dead code (constant \
                  branch condition)"
                 r tname);
          ]
        else []
    | Ir.If (c, a, b) ->
        let const = match c with Ir.Int n -> Some (n <> 0) | _ -> None in
        let dead_then = dead || const = Some false in
        let dead_else = dead || const = Some true in
        List.concat_map (walk tname dead_then) a
        @ List.concat_map (walk tname dead_else) b
    | Ir.While (c, b) ->
        let dead_body = dead || c = Ir.Int 0 in
        List.concat_map (walk tname dead_body) b
    | Ir.Assign _ | Ir.Acquire _ | Ir.Release _ | Ir.Pwb _ | Ir.Psync
    | Ir.Skip ->
        []
  in
  List.concat_map
    (fun (t : Ir.thread) -> List.concat_map (walk t.Ir.tname false) t.Ir.body)
    p.Ir.threads

(* --- plan conformance ---------------------------------------------- *)

let plan_findings (p : Ir.program) (pl : Placement.plan) =
  let summaries = Warstatic.analyse p in
  let war_missing =
    List.concat_map
      (fun (s : Warstatic.summary) ->
        List.filter_map
          (fun (site : Warstatic.site) ->
            if
              Ir.is_persistent p site.Warstatic.s_var
              && not (Vars.mem site.Warstatic.s_var pl.Placement.log)
            then
              Some
                (finding ~thread:s.Warstatic.thread ~var:site.Warstatic.s_var
                   ~site:site.Warstatic.s_path War_missing_logging Error
                   (Fmt.str
                      "thread %s write-after-reads persistent %s at %s but \
                       the plan does not InCLL-log it; re-execution after a \
                       crash would observe the new value"
                      s.Warstatic.thread site.Warstatic.s_var
                      site.Warstatic.s_path))
            else None)
          s.Warstatic.sites)
      summaries
  in
  let covered = Vars.union pl.Placement.log pl.Placement.track in
  let untracked =
    List.concat_map
      (fun (s : Warstatic.summary) ->
        Vars.elements
          (Vars.filter
             (fun v -> Ir.is_persistent p v && not (Vars.mem v covered))
             s.Warstatic.written)
        |> List.map (fun v ->
               finding ~thread:s.Warstatic.thread ~var:v Write_untracked
                 Error
                 (Fmt.str
                    "thread %s writes persistent %s but the plan neither \
                     logs nor tracks it; the checkpoint would never flush \
                     it"
                    s.Warstatic.thread v)))
      summaries
  in
  war_missing @ untracked

(* --- driver -------------------------------------------------------- *)

let lock_findings (p : Ir.program) =
  List.concat_map
    (fun (s : Lockset.thread_summary) ->
      let t = s.Lockset.ls_thread in
      List.map
        (fun (r : Lockset.release_site) ->
          finding ~thread:t ~lock:r.Lockset.rel_lock ~site:r.Lockset.rel_path
            Release_unheld Error
            (Fmt.str "thread %s releases lock L%d at %s without holding it"
               t r.Lockset.rel_lock r.Lockset.rel_path))
        s.Lockset.release_unheld
      @ List.map
          (fun l ->
            finding ~thread:t ~lock:l Lock_leak Warning
              (Fmt.str "thread %s can exit still holding lock L%d" t l))
          s.Lockset.leaked
      @ List.map
          (fun (r : Lockset.rp_site) ->
            finding ~thread:t ~rp:r.Lockset.rpc_rp ~site:r.Lockset.rpc_path
              Rp_in_critical_section Error
              (Fmt.str
                 "restart point %d in thread %s at %s can execute while \
                  holding %a"
                 r.Lockset.rpc_rp t r.Lockset.rpc_path
                 Fmt.(list ~sep:comma (fmt "L%d"))
                 r.Lockset.rpc_locks))
          s.Lockset.rp_critical)
    (Lockset.analyse p)

let race_findings (p : Ir.program) =
  List.map
    (fun (rc : Lockset.race_candidate) ->
      let kind_name = function
        | Lockset.Acc_read -> "read"
        | Lockset.Acc_write -> "write"
      in
      finding ~var:rc.Lockset.rc_var Lockset_race Warning
        (Fmt.str "%s on %s: no common lock across %a"
           (if rc.Lockset.rc_write_write then "write/write race candidate"
            else "read/write race candidate")
           rc.Lockset.rc_var
           Fmt.(
             list ~sep:comma (fun ppf (t, k) ->
                 pf ppf "%s(%s)" t (kind_name k)))
           rc.Lockset.rc_threads))
    (Lockset.races p)

(* --- flush discipline (Persistate-driven, see Flushlint) ----------- *)

let flush_findings ?lines (p : Ir.program) =
  List.map
    (fun (f : Flushlint.finding) ->
      let rule =
        match f.Flushlint.fl_kind with
        | Flushlint.Missing_pwb_at_rp -> Flush_missing_pwb_at_rp
        | Flushlint.Missing_psync_publish -> Flush_missing_psync_publish
        | Flushlint.Redundant_pwb -> Flush_redundant_pwb
        | Flushlint.Psync_no_pending -> Flush_psync_no_pending
        | Flushlint.Torn_cross_line -> Flush_torn_cross_line
        | Flushlint.Persist_order_race -> Flush_persist_order_race
      in
      let severity =
        if Flushlint.is_error f.Flushlint.fl_kind then Error else Warning
      in
      {
        rule;
        severity;
        thread = f.Flushlint.fl_thread;
        var = f.Flushlint.fl_var;
        lock = None;
        rp = f.Flushlint.fl_rp;
        site = f.Flushlint.fl_site;
        message = f.Flushlint.fl_message;
      })
    (Flushlint.run ?lines p)

(* Deterministic report: sort findings on every identifying field, then
   dedupe on the identity (rule, thread, site, var, lock, rp) so path-
   and thread-cross-product rules report each concrete site once and
   [analyze --json] is byte-stable across runs and list-append order. *)
let normalize (fs : finding list) : finding list =
  let key f = (rule_name f.rule, f.thread, f.site, f.var, f.lock, f.rp) in
  let sorted =
    List.sort
      (fun a b ->
        compare (key a, a.message) (key b, b.message))
      fs
  in
  let rec dedupe = function
    | a :: b :: rest when key a = key b -> dedupe (a :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe sorted

let run ?plan ?lines (p : Ir.program) : finding list =
  normalize
    (match Ir.check p with
    | _ :: _ as errs ->
        List.map (fun m -> finding Ill_formed Error m) errs
    | [] ->
        let plan_part =
          match plan with Some pl -> plan_findings p pl | None -> []
        in
        store_outside_region p @ plan_part @ lock_findings p
        @ unreachable_rps p @ race_findings p @ flush_findings ?lines p)

let errors fs = List.filter (fun f -> f.severity = Error) fs

let opt_str = function None -> Obs.Json.Null | Some s -> Obs.Json.String s
let opt_int = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i

let finding_to_json f =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.String (rule_name f.rule));
      ("severity", Obs.Json.String (severity_name f.severity));
      ("thread", opt_str f.thread);
      ("var", opt_str f.var);
      ("lock", opt_int f.lock);
      ("rp", opt_int f.rp);
      ("site", opt_str f.site);
      ("message", Obs.Json.String f.message);
    ]

let to_json (p : Ir.program) (fs : finding list) =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "respct-lint/v1");
      ("program", Obs.Json.String p.Ir.pname);
      ("errors", Obs.Json.Int (List.length (errors fs)));
      ("warnings",
       Obs.Json.Int (List.length fs - List.length (errors fs)));
      ("findings", Obs.Json.List (List.map finding_to_json fs));
    ]

let pp_finding ppf f =
  Fmt.pf ppf "%s: [%s] %s" (severity_name f.severity) (rule_name f.rule)
    f.message
