(** Dynamic execution of IR programs, in two flavours, so every static
    verdict can be validated end-to-end.

    The {b host interpreter} ([interp]) runs a program natively under a
    seeded deterministic scheduler and observes the actual dynamic WAR
    set and per-region access traces — the ground truth for the QCheck
    soundness property: {!Warstatic} must flag every WAR any execution
    exhibits, and on straight-line programs must agree exactly with
    {!Idempotence.classify} over the recorded segments.

    The {b simulator world} ([sim_world]) runs the program on
    {!Simsched}/{!Respct.Runtime} under an instrumentation plan:
    plan-logged variables become InCLL cells updated through the
    runtime, plan-tracked variables become raw persistent words with
    plain stores plus [add_modified], restart points call [Runtime.rp].
    The world exposes the crashmatrix-style last-checkpoint durability
    oracle so inferred plans can be pushed through the {!Crashtest}
    explorer, and [strip_log] plants the logging-removed mutant. *)

module Vars = Dataflow.Vars

type obs = {
  war : Vars.t;  (** variables dynamically WAR in some region *)
  segments : (string * Idempotence.access list list) list;
      (** per thread: the straight-line access trace of each
          restart-point-delimited region, in execution order (the last
          segment is the trailing partial region) *)
  finals : (Ir.var * int) list;
  completed : bool;  (** all threads ran to completion within fuel *)
  thread_error : string option;  (** e.g. a release of an unheld lock *)
}

val interp : ?fuel:int -> ?sched_seed:int -> Ir.program -> obs
(** Execute on the host under a seeded scheduler, one atomic statement
    per step (assignments read and write atomically, like one CFG
    node). Deadlocked or fuel-exhausted runs return [completed =
    false]; WARs observed up to that point are still real. *)

type mem_obs = {
  mo_finals : (Ir.var * int) list;  (** volatile (coherent) final values *)
  mo_halted : bool;  (** stopped because [halt_var] became nonzero *)
  mo_completed : bool;  (** every thread ran to completion within fuel *)
}

val run_mem :
  ?fuel:int ->
  ?sched_seed:int ->
  ?halt_var:Ir.var ->
  mem:Simnvm.Memsys.t ->
  addr_of:(Ir.var -> Simnvm.Addr.t option) ->
  Ir.program ->
  mem_obs
(** The {b memory-backed stepper}: [interp]'s scheduler and statement
    semantics, but variables with an [addr_of] binding live in the given
    {!Simnvm.Memsys} (loads/stores go through the cache; [Pwb]/[Psync]
    hit the memory system), the rest stay host-transient. Used by the
    litmus harness as the "analyzer IR over real persistent memory"
    world: the caller seeds [mem], runs, then crashes it and reads the
    persisted image. Initial stores are skipped when the image already
    holds the initial value, so a zero-initialised program does not
    dirty any line before its first real store. [halt_var], when it
    becomes nonzero, stops every thread at the next scheduling point
    (litmus [crash] compiles to an assignment to it). *)

type world = {
  w_mem : Simnvm.Memsys.t;
  w_bus : Simsched.Trace.bus;
      (** the world's trace bus, for attaching the dynamic advisor or a
          race checker around [w_run] *)
  w_run : unit -> unit;
  w_completed : unit -> int;  (** restart points executed *)
  w_recover_check : unit -> (unit, string) result;
  w_var_addrs : unit -> (Ir.var * Simnvm.Addr.t) list;
      (** persistent variable -> data word address (a cell's record word
          for logged variables); populated once [w_run] has allocated *)
}

val sim_world :
  ?sched_seed:int ->
  ?mem_seed:int ->
  ?pcso:bool ->
  ?strip_log:Ir.var list ->
  ?oracle_log:Vars.t ->
  plan:Placement.plan ->
  Ir.program ->
  world
(** [strip_log] demotes plan-logged variables to tracked raw words (the
    planted mutant: same stores, no InCLL log). [oracle_log] is the
    ground-truth set of variables that must recover to the exact
    last-checkpoint value (default: [plan.log]); stripped variables stay
    in it, which is what makes the mutant fail under adversarial
    eviction images. RAW-only variables get the weaker membership
    oracle — the checkpoint value or any value written in the failed
    epoch — since re-execution overwrites them before reading. *)
