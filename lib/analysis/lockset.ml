module Locks = Dataflow.Locks
module LMust = Dataflow.MustSet (Locks)
module LMay = Dataflow.MaySet (Locks)

(* Joint must/may-held lockset fact. Must-held (intersection) drives
   Eraser-style race candidates and released-not-acquired checks;
   may-held (union) drives leak and restart-point-in-critical-section
   checks. *)
module Fact = struct
  type t = { must : LMust.t; may : Locks.t }

  let bottom = { must = LMust.bottom; may = LMay.bottom }
  let start = { must = LMust.Known Locks.empty; may = Locks.empty }

  let equal a b = LMust.equal a.must b.must && LMay.equal a.may b.may
  let join a b = { must = LMust.join a.must b.must; may = LMay.join a.may b.may }
end

module Solver = Dataflow.Make (Fact)

let transfer (node : Ir.node) (f : Fact.t) : Fact.t =
  match node.Ir.kind with
  | Ir.Node_acquire l ->
      {
        Fact.must = LMust.Known (Locks.add l (LMust.known f.Fact.must));
        may = Locks.add l f.Fact.may;
      }
  | Ir.Node_release l ->
      {
        Fact.must =
          (match f.Fact.must with
          | LMust.Top -> LMust.Top
          | LMust.Known s -> LMust.Known (Locks.remove l s));
        may = Locks.remove l f.Fact.may;
      }
  | Ir.Entry | Ir.Exit | Ir.Node_assign _ | Ir.Node_branch _ | Ir.Node_rp _
  | Ir.Node_pwb _ | Ir.Node_psync ->
      f

let solve (cfg : Ir.cfg) = Solver.forward cfg ~init:Fact.start ~transfer

type release_site = { rel_node : int; rel_path : string; rel_lock : int }

type rp_site = {
  rpc_node : int;
  rpc_path : string;
  rpc_rp : int;
  rpc_locks : int list;
}

type thread_summary = {
  ls_thread : string;
  release_unheld : release_site list;
  leaked : int list;
  rp_critical : rp_site list;
}

let analyse_cfg (cfg : Ir.cfg) : thread_summary =
  let sol = solve cfg in
  let release_unheld = ref [] and rp_critical = ref [] in
  Array.iter
    (fun (n : Ir.node) ->
      let inf = sol.Dataflow.inf.(n.Ir.id) in
      match n.Ir.kind with
      | Ir.Node_release l ->
          if not (LMust.mem l inf.Fact.must) then
            release_unheld :=
              { rel_node = n.Ir.id; rel_path = n.Ir.path; rel_lock = l }
              :: !release_unheld
      | Ir.Node_rp r ->
          if not (Locks.is_empty inf.Fact.may) then
            rp_critical :=
              {
                rpc_node = n.Ir.id;
                rpc_path = n.Ir.path;
                rpc_rp = r;
                rpc_locks = Locks.elements inf.Fact.may;
              }
              :: !rp_critical
      | _ -> ())
    cfg.Ir.nodes;
  let leaked =
    Locks.elements sol.Dataflow.inf.(cfg.Ir.exit_node).Fact.may
  in
  {
    ls_thread = cfg.Ir.owner;
    release_unheld = List.rev !release_unheld;
    leaked;
    rp_critical = List.rev !rp_critical;
  }

let analyse_thread t = analyse_cfg (Ir.cfg_of_thread t)
let analyse (p : Ir.program) = List.map analyse_thread p.Ir.threads

(* ------------------------------------------------------------------ *)
(* Eraser-style race candidates *)

type access_kind = Acc_read | Acc_write

type race_candidate = {
  rc_var : Ir.var;
  rc_threads : (string * access_kind) list;
  rc_write_write : bool;
}

(* Per thread and variable: the intersection of must-held locksets over
   every access site of the variable, plus whether any access writes. *)
let candidate_locks (cfg : Ir.cfg) =
  let sol = solve cfg in
  let tbl : (Ir.var, Locks.t option * access_kind) Hashtbl.t =
    Hashtbl.create 16
  in
  let meet v held kind =
    let prev_locks, prev_kind =
      match Hashtbl.find_opt tbl v with
      | Some (l, k) -> (l, k)
      | None -> (None, Acc_read)
    in
    let locks =
      match prev_locks with
      | None -> Some held
      | Some l -> Some (Locks.inter l held)
    in
    let kind =
      if kind = Acc_write || prev_kind = Acc_write then Acc_write else Acc_read
    in
    Hashtbl.replace tbl v (locks, kind)
  in
  Array.iter
    (fun (n : Ir.node) ->
      let held = LMust.known sol.Dataflow.inf.(n.Ir.id).Fact.must in
      List.iter (fun v -> meet v held Acc_read) (Ir.node_reads n.Ir.kind);
      match Ir.node_write n.Ir.kind with
      | Some v -> meet v held Acc_write
      | None -> ())
    cfg.Ir.nodes;
  tbl

let races (p : Ir.program) : race_candidate list =
  let per_thread =
    List.map
      (fun t -> (t.Ir.tname, candidate_locks (Ir.cfg_of_thread t)))
      p.Ir.threads
  in
  let vars = Ir.declared p in
  List.filter_map
    (fun v ->
      let accessors =
        List.filter_map
          (fun (tn, tbl) ->
            match Hashtbl.find_opt tbl v with
            | Some (Some locks, kind) -> Some (tn, locks, kind)
            | Some (None, _) | None -> None)
          per_thread
      in
      let writers = List.filter (fun (_, _, k) -> k = Acc_write) accessors in
      if List.length accessors < 2 || writers = [] then None
      else
        let common =
          match accessors with
          | [] -> Locks.empty
          | (_, l0, _) :: rest ->
              List.fold_left (fun acc (_, l, _) -> Locks.inter acc l) l0 rest
        in
        if not (Locks.is_empty common) then None
        else
          Some
            {
              rc_var = v;
              rc_threads = List.map (fun (tn, _, k) -> (tn, k)) accessors;
              rc_write_write = List.length writers >= 2;
            })
    vars
