(* Flush-discipline lint over the Persistate facts.

   Only programs that use explicit flushes anywhere are checked: the
   runtime-checkpointed corpus programs never issue Pwb/Psync (the
   ResPCT runtime flushes for them at epoch seal), and flagging their
   stores as unflushed would re-litigate what the checkpoint already
   guarantees. A single Pwb or Psync in any thread opts the whole
   program into the explicit-flush discipline.

   The cross-thread mode composes with a must-held lockset analysis:
   when one thread stores a persistent variable and a different thread
   flushes its line with no lock common to both site sets, the flusher
   races the store — its pwb may persist either the old or the new
   value, so any durability reasoning that pairs the two is unsound
   (a persist-order race, invisible to the per-thread lattice). *)

module Locks = Dataflow.Locks

type kind =
  | Missing_pwb_at_rp
      (* persistent var may be Dirty at a restart point: rollback could
         resurrect a store the image never received *)
  | Missing_psync_publish
      (* persistent store while another line's pwb is still unfenced:
         the publish can persist before the data it depends on *)
  | Redundant_pwb
      (* no path reaches this pwb with anything dirty on its line *)
  | Psync_no_pending
      (* no path reaches this psync with an issued pwb to retire *)
  | Torn_cross_line
      (* >=2 distinct lines may be dirty together at program exit: a
         crash tears the logical record across line boundaries *)
  | Persist_order_race
      (* store and flush of one line in different threads with no
         common lock *)

let kind_name = function
  | Missing_pwb_at_rp -> "missing-pwb-before-restart-point"
  | Missing_psync_publish -> "missing-psync-before-dependent-publish"
  | Redundant_pwb -> "redundant-pwb"
  | Psync_no_pending -> "psync-with-no-pending"
  | Torn_cross_line -> "cross-line-torn-logging"
  | Persist_order_race -> "persist-order-race"

let is_error = function
  | Missing_pwb_at_rp | Missing_psync_publish -> true
  | Redundant_pwb | Psync_no_pending | Torn_cross_line
  | Persist_order_race ->
      false

type finding = {
  fl_kind : kind;
  fl_thread : string option;
  fl_var : Ir.var option;
  fl_vars : Ir.var list;  (** other involved variables, sorted *)
  fl_rp : int option;
  fl_site : string option;
  fl_message : string;
}

let finding ?thread ?var ?(vars = []) ?rp ?site fl_kind fl_message =
  {
    fl_kind;
    fl_thread = thread;
    fl_var = var;
    fl_vars = vars;
    fl_rp = rp;
    fl_site = site;
    fl_message;
  }

let uses_flushes (p : Ir.program) =
  let rec stmt = function
    | Ir.Pwb _ | Ir.Psync -> true
    | Ir.If (_, a, b) -> List.exists stmt a || List.exists stmt b
    | Ir.While (_, b) -> List.exists stmt b
    | _ -> false
  in
  List.exists (fun (t : Ir.thread) -> List.exists stmt t.Ir.body) p.Ir.threads

(* --- per-thread lattice walk ----------------------------------------- *)

let thread_findings ps (tf : Persistate.thread_facts) =
  let t = tf.Persistate.tf_thread in
  let pvars = Array.of_list (Persistate.pvars ps) in
  let masked f pred =
    Array.to_list pvars
    |> List.filteri (fun i _ -> pred (Persistate.mask f i))
  in
  Array.to_list tf.Persistate.tf_cfg.Ir.nodes
  |> List.concat_map (fun (n : Ir.node) ->
         let inf = tf.Persistate.tf_sol.Dataflow.inf.(n.Ir.id) in
         if Array.length inf = 0 then [] (* unreachable *)
         else
           match n.Ir.kind with
           | Ir.Node_rp r ->
               List.map
                 (fun v ->
                   finding ~thread:t ~var:v ~rp:r ~site:n.Ir.path
                     Missing_pwb_at_rp
                     (Fmt.str
                        "restart point %d in thread %s at %s can be \
                         reached with persistent %s stored but never \
                         pwb'd; rollback would replay a store the image \
                         never received"
                        r t n.Ir.path v))
                 (masked inf Persistate.has_dirty)
           | Ir.Node_assign (w, _)
             when Persistate.var_index ps w <> None ->
               let wl = Persistate.line_of ps w in
               let pend =
                 masked inf Persistate.has_pending
                 |> List.filter (fun v ->
                        v <> w && Persistate.line_of ps v <> wl)
               in
               if pend = [] then []
               else
                 [
                   finding ~thread:t ~var:w ~vars:pend ~site:n.Ir.path
                     Missing_psync_publish
                     (Fmt.str
                        "thread %s publishes persistent %s at %s while \
                         {%s} still has an unfenced pwb; without a psync \
                         the publish can persist first"
                        t w n.Ir.path (String.concat ", " pend));
                 ]
           | Ir.Node_pwb v ->
               let lid = Persistate.line_of ps v in
               let dirty_mate =
                 Array.to_list pvars
                 |> List.exists (fun w ->
                        Persistate.line_of ps w = lid
                        &&
                        match Persistate.var_index ps w with
                        | Some i -> Persistate.has_dirty (Persistate.mask inf i)
                        | None -> false)
               in
               if dirty_mate then []
               else
                 [
                   finding ~thread:t ~var:v ~site:n.Ir.path Redundant_pwb
                     (Fmt.str
                        "pwb of %s in thread %s at %s is redundant on \
                         every path: nothing on its line can be dirty \
                         here"
                        v t n.Ir.path);
                 ]
           | Ir.Node_psync ->
               let pending = masked inf Persistate.has_pending in
               if pending <> [] then []
               else
                 [
                   finding ~thread:t ~site:n.Ir.path Psync_no_pending
                     (Fmt.str
                        "psync in thread %s at %s has no issued pwb to \
                         retire on any path"
                        t n.Ir.path);
                 ]
           | Ir.Exit ->
               let dirty = masked inf Persistate.has_dirty in
               let lines =
                 List.sort_uniq compare
                   (List.map (Persistate.line_of ps) dirty)
               in
               if List.length lines < 2 then []
               else
                 [
                   finding ~thread:t ~vars:dirty Torn_cross_line
                     (Fmt.str
                        "thread %s can exit with {%s} dirty across %d \
                         cache lines; a crash persists an arbitrary \
                         subset of the lines, tearing the record"
                        t
                        (String.concat ", " dirty)
                        (List.length lines));
                 ]
           | _ -> [])

(* --- cross-thread persist-order races -------------------------------- *)

(* Must-held locksets per node: the Lockset module exposes summaries but
   not raw facts, and the transfer here is three lines. *)
module LMust = Dataflow.MustSet (Locks)
module LSolver = Dataflow.Make (LMust)

let must_held_sol cfg =
  LSolver.forward cfg ~init:(LMust.Known Locks.empty)
    ~transfer:(fun (n : Ir.node) f ->
      match (n.Ir.kind, f) with
      | Ir.Node_acquire l, LMust.Known s -> LMust.Known (Locks.add l s)
      | Ir.Node_release l, LMust.Known s -> LMust.Known (Locks.remove l s)
      | _ -> f)

let race_findings ps (p : Ir.program) =
  let per_thread =
    List.map
      (fun (th : Ir.thread) ->
        let cfg = Ir.cfg_of_thread th in
        (th.Ir.tname, cfg, must_held_sol cfg))
      p.Ir.threads
  in
  (* (thread, must-held lockset intersection) over matching sites *)
  let sites select =
    List.filter_map
      (fun (tname, cfg, (sol : LMust.t Dataflow.solution)) ->
        let acc = ref None in
        Array.iter
          (fun (n : Ir.node) ->
            if select n then
              let held = LMust.known sol.Dataflow.inf.(n.Ir.id) in
              acc :=
                Some
                  (match !acc with
                  | None -> held
                  | Some s -> Locks.inter s held))
          cfg.Ir.nodes;
        Option.map (fun s -> (tname, s)) !acc)
      per_thread
  in
  Persistate.pvars ps
  |> List.concat_map (fun v ->
         let lid = Persistate.line_of ps v in
         let writers =
           sites (fun n ->
               match n.Ir.kind with
               | Ir.Node_assign (w, _) -> w = v
               | _ -> false)
         in
         let flushers =
           sites (fun n ->
               match n.Ir.kind with
               | Ir.Node_pwb w -> Persistate.line_of ps w = lid
               | _ -> false)
         in
         List.concat_map
           (fun (tw, lw) ->
             List.filter_map
               (fun (tf, lf) ->
                 if tw = tf || not (Locks.is_empty (Locks.inter lw lf))
                 then None
                 else
                   Some
                     (finding ~thread:tw ~var:v Persist_order_race
                        (Fmt.str
                           "persist-order race on %s: thread %s stores \
                            it while thread %s flushes its line with no \
                            common lock; the flush can persist either \
                            value"
                           v tw tf)))
               flushers)
           writers)

(* --- driver ----------------------------------------------------------- *)

let run ?lines (p : Ir.program) : finding list =
  if not (uses_flushes p) then []
  else
    let ps = Persistate.create ?lines p in
    let per_thread =
      Persistate.analyse ps |> List.concat_map (thread_findings ps)
    in
    per_thread @ race_findings ps p

(* --- planted mutants -------------------------------------------------- *)

let rec map_stmts f body =
  List.concat_map
    (fun s ->
      match s with
      | Ir.If (c, a, b) -> f (Ir.If (c, map_stmts f a, map_stmts f b))
      | Ir.While (c, b) -> f (Ir.While (c, map_stmts f b))
      | s -> f s)
    body

let on_threads g (p : Ir.program) =
  {
    p with
    Ir.threads =
      List.map
        (fun (t : Ir.thread) -> { t with Ir.body = g t.Ir.body })
        p.Ir.threads;
  }

let strip_psync p =
  on_threads
    (map_stmts (function Ir.Psync -> [] | s -> [ s ]))
    { p with Ir.pname = p.Ir.pname ^ "+strip-psync" }

let inject_redundant_pwb p =
  on_threads
    (map_stmts (function
      | Ir.Pwb v -> [ Ir.Pwb v; Ir.Pwb v ]
      | s -> [ s ]))
    { p with Ir.pname = p.Ir.pname ^ "+redundant-pwb" }
