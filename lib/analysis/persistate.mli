(** Persist-state abstract interpretation over the {!Ir} CFGs.

    Tracks every persistent variable through the flush lifecycle
    [Dirty -> FlushPending (pwb issued) -> Durable (psync'd)] with a
    collecting-powerset lattice: the fact at a program point is, per
    variable, the *set* of lifecycle states reachable on some path,
    encoded as a 3-bit mask joined by pointwise union. Both may-queries
    (dirty on some path — what {!Flushlint} flags at restart points)
    and must-queries (Durable on every path — the claims
    {!Litmus.Axcheck} verifies against the axiomatic PCSO spec) are
    exact reads of the mask.

    [pwb v] is line-granular (it advances every variable sharing [v]'s
    cache line, like [clwb]); [psync] is a global fence retiring every
    issued pwb. The whole-program {!summarize} composes per-thread
    facts into crash-time claims, demoting multi-writer variables to
    the full-unknown mask — see the module implementation and DESIGN.md
    §16 for the soundness argument. *)

module Vars = Dataflow.Vars

type mask = int
(** Bit-set over the three lifecycle states. *)

val st_durable : int
val st_pending : int
val st_dirty : int
val full_mask : mask

val has_dirty : mask -> bool
val has_pending : mask -> bool

val is_must_durable : mask -> bool
(** Reachable and [{Durable}] only: the persisted word provably equals
    the coherent word. *)

val mask_name : mask -> string
(** e.g. ["durable|dirty"]; the empty mask prints ["unreachable"]. *)

type t
(** Analysis context: a program plus its persistent-variable universe
    and cache-line layout. *)

val create : ?lines:(Ir.var -> int) -> Ir.program -> t
(** [lines] maps each persistent variable to its cache-line id; the
    default gives every variable its own line (the
    {!Exec.sim_world} binding). Litmus-compiled programs pass
    [Litmus.Prog.line_of]. *)

val pvars : t -> Ir.var list
val line_of : t -> Ir.var -> int
(** [-1] for unknown (transient) variables. *)

val line_members : t -> int -> Ir.var list

type fact = int array
(** One mask per persistent variable (declaration order); the
    zero-length array is bottom (unreachable). *)

val mask : fact -> int -> mask
(** [mask f i] is variable [i]'s mask, [0] on bottom. *)

val entry_fact : t -> fact
(** All variables [{Durable}]: the zeroed (or checkpointed) image. *)

type thread_facts = {
  tf_thread : string;
  tf_cfg : Ir.cfg;
  tf_sol : fact Dataflow.solution;
}

val analyse : t -> thread_facts list
(** Per-thread fixpoints over the untruncated CFGs — what
    {!Flushlint} consumes. *)

val var_index : t -> Ir.var -> int option

(** {2 Whole-program crash summary} *)

type summary = {
  s_masks : (Ir.var * mask) list;
  s_must_durable : Vars.t;
  s_may_dirty : Vars.t;
  s_may_pending : Vars.t;
  s_multi_writer : Vars.t;
}

val summarize : ?crash_var:Ir.var -> t -> summary
(** Crash-time claims. [crash_var] marks assignments that halt the
    whole program (the litmus [Crash] compilation,
    {!Litmus.World.halt_var}): facts are taken at those nodes for the
    crashing thread — with the CFG truncated there, since nothing after
    a crash executes — at normal exit where still reachable, and at
    *every* point of a thread that can be halted from outside. Without
    [crash_var] the summary describes normal termination. *)

val summary_to_json : summary -> Obs.Json.t
val pp_summary : summary Fmt.t
