(** Flush-discipline lint over {!Persistate} facts.

    Emits typed findings for the explicit-flush discipline: restart
    points reachable with an unflushed persistent store, dependent
    publishes racing an unfenced pwb, pwbs that are redundant on every
    path, psyncs with nothing to retire, records left dirty across
    cache-line boundaries at exit, and — composing with a must-held
    lockset analysis — cross-thread persist-order races the per-thread
    lattice cannot see.

    Programs that never issue a [Pwb]/[Psync] are out of scope (the
    runtime-checkpointed corpus relies on epoch-seal flushing instead)
    and produce no findings. *)

type kind =
  | Missing_pwb_at_rp
  | Missing_psync_publish
  | Redundant_pwb
  | Psync_no_pending
  | Torn_cross_line
  | Persist_order_race

val kind_name : kind -> string
(** The stable rule identifier, e.g. ["missing-pwb-before-restart-point"]. *)

val is_error : kind -> bool
(** [Missing_pwb_at_rp] and [Missing_psync_publish] gate CI; the rest
    are warnings. *)

type finding = {
  fl_kind : kind;
  fl_thread : string option;
  fl_var : Ir.var option;
  fl_vars : Ir.var list;  (** other involved variables *)
  fl_rp : int option;
  fl_site : string option;  (** CFG breadcrumb of the offending node *)
  fl_message : string;
}

val uses_flushes : Ir.program -> bool

val run : ?lines:(Ir.var -> int) -> Ir.program -> finding list
(** [lines] is the cache-line layout, as for {!Persistate.create}. *)

(** {2 Planted mutants}

    Program transformers used by the soundness gate: each must turn a
    clean program into one the lint flags (and the dynamic oracles
    confirm). *)

val strip_psync : Ir.program -> Ir.program
(** Delete every [Psync]; pwbs are issued but never fenced. *)

val inject_redundant_pwb : Ir.program -> Ir.program
(** Duplicate every [Pwb] immediately after itself; the second can
    never see a dirty line. *)
