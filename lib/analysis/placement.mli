(** Automatic restart-point insertion and InCLL-logging inference —
    the static automation of the paper's section 6 future work.

    [insert_rps] places one restart point at the end of each outermost
    loop body that mutates persistent state and has none (the paper's
    per-iteration checkpoint discipline), plus a final restart point in
    any persistent-writing thread still without one; points are only
    placed where the syntactic may-held lockset is empty, matching the
    runtime's requirement that restart points sit at lock-free
    quiescence. [plan] then applies the section 3.3.2 rule over the
    {!Warstatic} results: every may-WAR persistent variable is logged
    (InCLL), every other written persistent variable is merely tracked
    ([add_modified] without logging), and RAW-only variables are never
    logged — the minimal sound instrumentation set. *)

module Vars = Dataflow.Vars

type plan = {
  plan_program : string;
  log : Vars.t;  (** persistent vars needing InCLL logging *)
  track : Vars.t;  (** persistent vars written but RAW-only *)
}

val insert_rps : Ir.program -> Ir.program

val plan : Ir.program -> plan
(** Assumes restart points are already in place. *)

val infer : Ir.program -> Ir.program * plan
(** [insert_rps] followed by [plan] on the instrumented program. *)

val plan_to_json : Ir.program -> plan -> Obs.Json.t
(** Machine-readable instrumentation plan, schema [respct-plan/v1]. *)

val pp_plan : plan Fmt.t
