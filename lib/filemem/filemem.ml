(* File-backed persistence backend: the Simnvm.Backend contract over a
   memory-mapped file, built for real-process crash testing (lib/prockill
   SIGKILLs a child running against one of these).

   Durability model. mmap'd stores land in the kernel page cache, which
   survives the death of the writing process — a SIGKILL therefore cannot
   lose *any* mmap write, and a backend that stored straight through the
   mapping would make pwb/psync vacuously correct (the psync-elision
   mutant would be undetectable, and no InCLL property would ever be
   exercised). So the volatile half of PCSO is modelled process-locally: a
   plain OCaml mirror array plays the cache (it genuinely dies with the
   process), the mapping plays the medium, and only [psync] moves pending
   lines mirror -> mapping. pwb is lazy (marks the line pending, in issue
   order); psync performs the write-back. What the parent reopens after a
   kill is exactly the set of lines the child psync'd — plus any seeded
   spontaneous evictions — which is the PCSO crash-visible image.

   Line atomicity. PCSO write-backs copy a line as a snapshot; a word loop
   into the mapping is not SIGKILL-atomic (the kill can land between word
   stores). Each line write-back therefore goes through a one-slot journal
   in the file: data words, then the line number, then a checksum over
   both, then the home-location copy, then the slot is retired. A kill
   mid-journal leaves an uncertified slot (home line intact: the old
   snapshot); a kill mid-home-copy leaves a certified slot that [open_]
   replays to completion. Either way every line is durably old or durably
   new, never torn — the invariant In-Cache-Line Logging relies on.

   Honesty caveat (see DESIGN.md §14): because the page cache absorbs the
   mappings' stores, SIGKILL exercises process-crash durability, not
   power-failure durability. OCaml's Unix module exposes no msync, so
   against power loss this backend orders nothing; the harness only makes
   claims about killed processes.

   File layout, in 8-byte words:
     [0..15]   header: magic, version, geometry, meta, FNV-1a checksum
     [16..17+lw] journal slot: lineno, checksum, lw data words
     [..]      the NVMM image, nvm_words words
   The DRAM region exists only in the mirror (volatile scratch). *)

type config = {
  line_words : int;
  nvm_words : int;
  dram_words : int;
  latency : Simnvm.Latency.t;
  evict_rate : float;
  seed : int;
}

let default_config =
  {
    line_words = Simnvm.Addr.default_line_words;
    nvm_words = 1 lsl 20;
    dram_words = 1 lsl 18;
    latency = Simnvm.Latency.default;
    evict_rate = 0.0;
    seed = 42;
  }

(* Layout metadata carried in the header so a surviving file is
   self-describing: recovery rebuilds the Respct.Layout from these alone. *)
type meta = { max_threads : int; registry_per_slot : int; integrity : bool }

let default_meta = { max_threads = 8; registry_per_slot = 4096; integrity = true }

type mutant = Elide_psync

type open_error =
  | Too_short of { bytes : int }
  | Bad_magic of { found : int64 }
  | Bad_version of { found : int }
  | Header_corrupt
  | Bad_geometry of string

let pp_open_error ppf = function
  | Too_short { bytes } ->
      Fmt.pf ppf "file too short for a header (%d bytes)" bytes
  | Bad_magic { found } -> Fmt.pf ppf "bad magic 0x%Lx" found
  | Bad_version { found } -> Fmt.pf ppf "unsupported version %d" found
  | Header_corrupt -> Fmt.string ppf "header checksum mismatch"
  | Bad_geometry msg -> Fmt.pf ppf "implausible geometry: %s" msg

type map = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  cfg : config;
  meta : meta;
  path : string;
  fd : Unix.file_descr;
  map : map;
  image_base : int; (* word offset of the NVMM image in the mapping *)
  mirror : int array; (* process-local "cache": nvm_words + dram_words *)
  dirty : Bytes.t; (* per NVMM line: mirror ahead of the mapping *)
  pending : Bytes.t; (* per NVMM line: pwb'd since the last psync *)
  mutable pending_order : int list; (* pending lines, reverse issue order *)
  rng : Simnvm.Rng.t;
  stats : Simnvm.Stats.t;
  mutable subs : (int * (Simnvm.Event.t -> unit)) list;
  mutable next_sub : int;
  mutable charge : float -> unit;
  mutable tid : unit -> int;
  mutable mutant : mutant option;
  truncated : bool; (* the file was shorter than its header's claim *)
  mutable closed : bool;
}

(* ------------------------------------------------------------------ *)
(* Header *)

let header_words = 16
let magic = 0x4d654d46_74635052L (* "RPctFMeM", little-endian spelling *)
let version = 1

(* FNV-1a over int64 words; the header checks itself with it, with no
   dependency on Respct.Checksum (the layering goes the other way). The
   low bit is forced so a valid checksum is never 0 (= the cleared journal
   slot) and never collides with fresh-file zeros. *)
let fnv64 words =
  let h = ref (-0x340d631b7bdddcdbL) (* 0xcbf29ce484222325 *) in
  List.iter
    (fun w ->
      for shift = 0 to 7 do
        let byte = Int64.to_int (Int64.shift_right_logical w (shift * 8)) land 0xff in
        h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L
      done)
    words;
  Int64.logor !h 1L

let header_fields (cfg : config) (meta : meta) =
  [
    Int64.of_int version;
    Int64.of_int cfg.line_words;
    Int64.of_int cfg.nvm_words;
    Int64.of_int cfg.dram_words;
    Int64.of_int meta.max_threads;
    Int64.of_int meta.registry_per_slot;
    (if meta.integrity then 1L else 0L);
  ]

let write_header (map : map) cfg meta =
  let fields = header_fields cfg meta in
  map.{0} <- magic;
  List.iteri (fun i w -> map.{1 + i} <- w) fields;
  map.{8} <- fnv64 (magic :: fields);
  for i = 9 to header_words - 1 do
    map.{i} <- 0L
  done

(* ------------------------------------------------------------------ *)
(* Journal: one line write-back at a time, SIGKILL-atomic.

   Slot layout at [journal_base]: [0] lineno (or -1 retired), [1] checksum
   over lineno + data, [2..2+lw) the line snapshot. Write order on commit:
   data, lineno, checksum; retire order: lineno := -1, checksum := 0. The
   checksum is written last, so an interrupted commit is uncertified and
   ignored; replay of a certified slot is idempotent. *)

let journal_base = header_words
let journal_words lw = 2 + lw

let journal_retire t =
  t.map.{journal_base} <- -1L;
  t.map.{journal_base + 1} <- 0L

(* Copy one line, mirror -> mapping, through the journal. *)
let write_back_line t lineno =
  let lw = t.cfg.line_words in
  let base = lineno * lw in
  let data = List.init lw (fun i -> Int64.of_int t.mirror.(base + i)) in
  List.iteri (fun i w -> t.map.{journal_base + 2 + i} <- w) data;
  t.map.{journal_base} <- Int64.of_int lineno;
  t.map.{journal_base + 1} <- fnv64 (Int64.of_int lineno :: data);
  List.iteri (fun i w -> t.map.{t.image_base + base + i} <- w) data;
  journal_retire t

(* Complete an interrupted write-back found at open time. *)
let journal_replay (map : map) ~image_base ~line_words =
  let lineno = Int64.to_int map.{journal_base} in
  if lineno >= 0 then begin
    let data = List.init line_words (fun i -> map.{journal_base + 2 + i}) in
    if fnv64 (Int64.of_int lineno :: data) = map.{journal_base + 1} then
      List.iteri
        (fun i w -> map.{image_base + (lineno * line_words) + i} <- w)
        data
  end;
  map.{journal_base} <- -1L;
  map.{journal_base + 1} <- 0L

(* ------------------------------------------------------------------ *)
(* Bitset helpers (same shape as Memsys's). *)

let[@inline] bit_get b i =
  Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) land lnot (1 lsl (i land 7))))

(* ------------------------------------------------------------------ *)
(* Construction *)

let map_words fd words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int64 Bigarray.c_layout true [| words |])

let total_words cfg = journal_base + journal_words cfg.line_words + cfg.nvm_words

let validate_geometry cfg =
  if cfg.line_words <= 0 || cfg.line_words > 62 then
    Error (Bad_geometry "line_words out of [1, 62]")
  else if cfg.nvm_words <= 0 || cfg.nvm_words > 1 lsl 28 then
    Error (Bad_geometry "nvm_words out of (0, 2^28]")
  else if cfg.nvm_words mod cfg.line_words <> 0 then
    Error (Bad_geometry "nvm_words not line-aligned")
  else if cfg.dram_words < 0 || cfg.dram_words > 1 lsl 28 then
    Error (Bad_geometry "dram_words out of [0, 2^28]")
  else Ok ()

let make cfg meta ~path ~fd ~map ~truncated =
  let image_base = journal_base + journal_words cfg.line_words in
  let mirror = Array.make (cfg.nvm_words + cfg.dram_words) 0 in
  for i = 0 to cfg.nvm_words - 1 do
    mirror.(i) <- Int64.to_int map.{image_base + i}
  done;
  let nvm_lines = cfg.nvm_words / cfg.line_words in
  {
    cfg;
    meta;
    path;
    fd;
    map;
    image_base;
    mirror;
    dirty = Bytes.make ((nvm_lines + 7) / 8) '\000';
    pending = Bytes.make ((nvm_lines + 7) / 8) '\000';
    pending_order = [];
    rng = Simnvm.Rng.create cfg.seed;
    stats = Simnvm.Stats.create ();
    subs = [];
    next_sub = 0;
    charge = (fun _ -> ());
    tid = (fun () -> -1);
    mutant = None;
    truncated;
    closed = false;
  }

let create ?(meta = default_meta) cfg ~path =
  (match validate_geometry cfg with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "Filemem.create: %a" pp_open_error e));
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let map = map_words fd (total_words cfg) in
  write_header map cfg meta;
  map.{journal_base} <- -1L;
  map.{journal_base + 1} <- 0L;
  make cfg meta ~path ~fd ~map ~truncated:false

let open_existing ?(latency = Simnvm.Latency.default) ?(evict_rate = 0.0)
    ?(seed = 42) ~path () =
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Bad_geometry (Unix.error_message e))
  | fd -> (
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_words * 8 then begin
        Unix.close fd;
        Error (Too_short { bytes = size })
      end
      else begin
        let h = map_words fd header_words in
        if h.{0} <> magic then begin
          Unix.close fd;
          Error (Bad_magic { found = h.{0} })
        end
        else if h.{1} <> Int64.of_int version then begin
          Unix.close fd;
          Error (Bad_version { found = Int64.to_int h.{1} })
        end
        else begin
          let cfg =
            {
              line_words = Int64.to_int h.{2};
              nvm_words = Int64.to_int h.{3};
              dram_words = Int64.to_int h.{4};
              latency;
              evict_rate;
              seed;
            }
          in
          let meta =
            {
              max_threads = Int64.to_int h.{5};
              registry_per_slot = Int64.to_int h.{6};
              integrity = h.{7} <> 0L;
            }
          in
          if h.{8} <> fnv64 (magic :: header_fields cfg meta) then begin
            Unix.close fd;
            Error Header_corrupt
          end
          else
            match validate_geometry cfg with
            | Error e ->
                Unix.close fd;
                Error e
            | Ok () ->
                (* A kill during file growth leaves the file shorter than
                   the header's claim; mapping the full geometry grows it
                   back sparsely, so the missing tail reads as zeros and
                   recovery grades the zeros through its damage taxonomy
                   instead of tripping over a short mapping. *)
                let truncated = size < total_words cfg * 8 in
                let map = map_words fd (total_words cfg) in
                journal_replay map
                  ~image_base:(journal_base + journal_words cfg.line_words)
                  ~line_words:cfg.line_words;
                Ok (make cfg meta ~path ~fd ~map ~truncated)
        end
      end)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let config t = t.cfg
let meta t = t.meta
let path t = t.path
let stats t = t.stats
let was_truncated t = t.truncated
let arm_mutant t m = t.mutant <- Some m

(* ------------------------------------------------------------------ *)
(* Access path *)

let emit t ev = List.iter (fun (_, f) -> f ev) (List.rev t.subs)
let[@inline] has_subs t = t.subs <> []

let check_addr t addr =
  if addr < 0 || addr >= t.cfg.nvm_words + t.cfg.dram_words then
    invalid_arg (Printf.sprintf "Filemem: address %d out of range" addr)

let is_nvm t addr = addr < t.cfg.nvm_words
let[@inline] line_of t addr = addr / t.cfg.line_words

let mark_dirty t addr =
  if is_nvm t addr then bit_set t.dirty (line_of t addr)

(* Background hardware may persist any dirty line at any moment (the
   partial-persistence hazard undo logging defends against); seeded, so a
   counterexample replays. Line-granular and journalled: even spontaneous
   write-backs are line-atomic under PCSO. *)
let spontaneous_eviction t =
  if t.cfg.evict_rate > 0.0 && Simnvm.Rng.float t.rng < t.cfg.evict_rate then begin
    let nvm_lines = t.cfg.nvm_words / t.cfg.line_words in
    let lineno = Simnvm.Rng.int t.rng nvm_lines in
    if bit_get t.dirty lineno then begin
      write_back_line t lineno;
      bit_clear t.dirty lineno;
      t.stats.Simnvm.Stats.spontaneous_evictions <-
        t.stats.Simnvm.Stats.spontaneous_evictions + 1;
      t.stats.Simnvm.Stats.nvm_writebacks <-
        t.stats.Simnvm.Stats.nvm_writebacks + 1;
      if has_subs t then begin
        emit t
          (Simnvm.Event.Writeback { backing = Simnvm.Event.Nvm; line = lineno });
        emit t (Simnvm.Event.Eviction { line = lineno })
      end
    end
  end

let load t addr =
  check_addr t addr;
  t.stats.Simnvm.Stats.loads <- t.stats.Simnvm.Stats.loads + 1;
  if has_subs t then emit t (Simnvm.Event.Load { tid = t.tid (); addr });
  t.charge t.cfg.latency.Simnvm.Latency.cache_hit_ns;
  t.mirror.(addr)

let store t addr v =
  check_addr t addr;
  t.stats.Simnvm.Stats.stores <- t.stats.Simnvm.Stats.stores + 1;
  if has_subs t then emit t (Simnvm.Event.Store { tid = t.tid (); addr });
  t.charge
    (t.cfg.latency.Simnvm.Latency.cache_hit_ns
    +. t.cfg.latency.Simnvm.Latency.store_extra_ns);
  t.mirror.(addr) <- v;
  mark_dirty t addr;
  spontaneous_eviction t

(* Lazy pwb: mark the line pending (in issue order) and let psync move it.
   This is a legal PCSO schedule — clwb only guarantees the line reaches
   the medium by the next fence — and the one that makes psync
   load-bearing: eliding it observably loses data, so the planted mutant
   is catchable. *)
let pwb t addr =
  check_addr t addr;
  let lineno = line_of t addr in
  let dirty = is_nvm t addr && bit_get t.dirty lineno in
  t.stats.Simnvm.Stats.pwbs <- t.stats.Simnvm.Stats.pwbs + 1;
  if has_subs t then emit t (Simnvm.Event.Pwb { tid = t.tid (); addr; dirty });
  if dirty then begin
    if not (bit_get t.pending lineno) then begin
      bit_set t.pending lineno;
      t.pending_order <- lineno :: t.pending_order
    end;
    t.charge t.cfg.latency.Simnvm.Latency.clwb_ns
  end
  else t.charge (t.cfg.latency.Simnvm.Latency.clwb_ns /. 8.0)

let psync t =
  t.stats.Simnvm.Stats.psyncs <- t.stats.Simnvm.Stats.psyncs + 1;
  if has_subs t then emit t (Simnvm.Event.Psync { tid = t.tid () });
  t.charge t.cfg.latency.Simnvm.Latency.sfence_ns;
  match t.mutant with
  | Some Elide_psync -> ()
  | None ->
      let lines = List.rev t.pending_order in
      t.pending_order <- [];
      List.iter
        (fun lineno ->
          bit_clear t.pending lineno;
          if bit_get t.dirty lineno then begin
            write_back_line t lineno;
            bit_clear t.dirty lineno;
            t.stats.Simnvm.Stats.nvm_writebacks <-
              t.stats.Simnvm.Stats.nvm_writebacks + 1;
            t.charge t.cfg.latency.Simnvm.Latency.nvm_writeback_ns;
            if has_subs t then
              emit t
                (Simnvm.Event.Writeback
                   { backing = Simnvm.Event.Nvm; line = lineno })
          end)
        lines

(* ------------------------------------------------------------------ *)
(* Host-level oracle views (no charge, no event — the Backend contract) *)

let peek t addr =
  check_addr t addr;
  t.mirror.(addr)

let persisted t addr =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Filemem.persisted: address not in NVMM";
  Int64.to_int t.map.{t.image_base + addr}

let poke_persisted t addr v =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Filemem.poke_persisted: address not in NVMM";
  t.map.{t.image_base + addr} <- Int64.of_int v

(* In-process power cut: the mirror (our "cache") reloads from the file
   image and the DRAM region zeroes. The parity and idempotence tests use
   this; the prockill harness uses the real thing (SIGKILL). *)
let crash t =
  t.stats.Simnvm.Stats.crashes <- t.stats.Simnvm.Stats.crashes + 1;
  if has_subs t then emit t (Simnvm.Event.Crash { eadr = false });
  for i = 0 to t.cfg.nvm_words - 1 do
    t.mirror.(i) <- Int64.to_int t.map.{t.image_base + i}
  done;
  Array.fill t.mirror t.cfg.nvm_words t.cfg.dram_words 0;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Bytes.fill t.pending 0 (Bytes.length t.pending) '\000';
  t.pending_order <- []

let flush_all t =
  let nvm_lines = t.cfg.nvm_words / t.cfg.line_words in
  for lineno = 0 to nvm_lines - 1 do
    if bit_get t.dirty lineno then begin
      write_back_line t lineno;
      bit_clear t.dirty lineno;
      t.stats.Simnvm.Stats.nvm_writebacks <-
        t.stats.Simnvm.Stats.nvm_writebacks + 1
    end
  done;
  Bytes.fill t.pending 0 (Bytes.length t.pending) '\000';
  t.pending_order <- []

let scrub_line t lineno =
  let lw = t.cfg.line_words in
  if lineno < 0 || lineno * lw >= t.cfg.nvm_words then
    invalid_arg "Filemem.scrub_line: line not in NVMM";
  for i = 0 to lw - 1 do
    t.map.{t.image_base + (lineno * lw) + i} <- 0L;
    t.mirror.((lineno * lw) + i) <- 0
  done;
  bit_clear t.dirty lineno;
  t.stats.Simnvm.Stats.media_scrubs <- t.stats.Simnvm.Stats.media_scrubs + 1;
  if has_subs t then emit t (Simnvm.Event.Media_scrub { line = lineno })

let image t =
  Array.init t.cfg.nvm_words (fun i -> Int64.to_int t.map.{t.image_base + i})

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.subs <- (id, f) :: t.subs;
  fun () -> t.subs <- List.filter (fun (i, _) -> i <> id) t.subs

let backend t : Simnvm.Backend.t =
  {
    Simnvm.Backend.name = "filemem:" ^ t.path;
    line_words = t.cfg.line_words;
    nvm_words = t.cfg.nvm_words;
    dram_words = t.cfg.dram_words;
    load = load t;
    store = store t;
    pwb = pwb t;
    psync = (fun () -> psync t);
    peek = peek t;
    persisted = persisted t;
    poke_persisted = poke_persisted t;
    is_nvm = is_nvm t;
    crash = (fun () -> crash t);
    scrub_line = scrub_line t;
    flush_all = (fun () -> flush_all t);
    image = (fun () -> image t);
    subscribe = subscribe t;
    set_charge = (fun f -> t.charge <- f);
    get_charge = (fun () -> t.charge);
    set_tid_provider = (fun f -> t.tid <- f);
  }
