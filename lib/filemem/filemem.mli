(** File-backed persistence backend over a memory-mapped file, implementing
    the {!Simnvm.Backend} contract for real-process crash testing.

    The mapping is the durable medium; a process-local mirror array plays
    the cache (and genuinely dies with the process, which is what makes a
    SIGKILL a crash). [pwb] marks the word's line pending, [psync] copies
    pending dirty lines mirror → mapping in pwb issue order — psync is
    load-bearing, so eliding it ({!arm_mutant} [Elide_psync]) observably
    loses data. Every line write-back goes through a one-slot journal in
    the file, making it SIGKILL-atomic: a reopened image contains each
    line's old snapshot or its new one, never a torn mixture (the PCSO
    line-snapshot property InCLL relies on).

    Caveat: mmap stores survive process death in the kernel page cache, so
    this backend exercises process-crash durability only — not power
    failure (no msync is available; see DESIGN.md §14). *)

type config = {
  line_words : int;
  nvm_words : int;
  dram_words : int;  (** volatile scratch; lives only in the mirror *)
  latency : Simnvm.Latency.t;
  evict_rate : float;
      (** per-store probability of a seeded spontaneous line write-back *)
  seed : int;  (** seeds the eviction RNG — replayable *)
}

val default_config : config
(** Memsys-compatible geometry, [evict_rate = 0.0]. *)

type meta = { max_threads : int; registry_per_slot : int; integrity : bool }
(** Layout metadata stored in the durable header so a surviving file is
    self-describing: recovery rebuilds {!Respct.Layout} from it alone. *)

val default_meta : meta
(** [Runtime.default_config]'s layout parameters, integrity on. *)

type mutant = Elide_psync
    (** planted bug for the prockill harness: [psync] charges and counts
        but performs no write-back *)

type open_error =
  | Too_short of { bytes : int }  (** smaller than one header *)
  | Bad_magic of { found : int64 }
  | Bad_version of { found : int }
  | Header_corrupt  (** header checksum mismatch (torn header write) *)
  | Bad_geometry of string  (** implausible or inconsistent dimensions *)

val pp_open_error : open_error Fmt.t

type t

val create : ?meta:meta -> config -> path:string -> t
(** Create (or truncate) the file, write the self-describing header, zero
    the image. @raise Invalid_argument on implausible geometry. *)

val open_existing :
  ?latency:Simnvm.Latency.t ->
  ?evict_rate:float ->
  ?seed:int ->
  path:string ->
  unit ->
  (t, open_error) result
(** Reopen a surviving file: validate the header (magic, version,
    checksum, geometry), grow a truncated file back to its claimed
    geometry (the missing tail reads as zeros, which recovery grades
    through its damage taxonomy), and replay the write-back journal if a
    kill interrupted a line copy. Never raises on malformed files. *)

val close : t -> unit
val config : t -> config
val meta : t -> meta
val path : t -> string
val stats : t -> Simnvm.Stats.t

val was_truncated : t -> bool
(** Did {!open_existing} find the file shorter than its header claimed? *)

val arm_mutant : t -> mutant -> unit
(** Plant a bug from this point on (initialisation done before arming
    stays durable). *)

val backend : t -> Simnvm.Backend.t
(** The backend record: run a world over it with
    [Simsched.Env.make_backend], recover with
    [Recovery.run_verified_backend]. *)

val persisted : t -> int -> int
(** Durable-image word (the mapping), host-level. *)

val peek : t -> int -> int
(** Coherent (mirror) word, host-level. *)

val crash : t -> unit
(** In-process power cut: reload the mirror from the durable image, zero
    the volatile region, drop dirty/pending state. (The prockill harness
    crashes with a real SIGKILL instead.) *)
