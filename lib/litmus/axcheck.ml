(* Axiomatic soundness gate for the static durability analyzer.

   The Persistate lattice claims, for a compiled litmus program, a
   must-durable set: variables whose persisted word provably equals the
   coherent word at every crash. This module holds that claim to the
   axiomatic PCSO spec itself: enumerate every (coherent memory,
   persistent image) pair reachable at a terminal state and require
   pmem(v) = mem(v) for every claimed v in every pair. Checked against
   Pcso_lazy by default — the weakest (largest-outcome-set) persistency
   variant, which dominates Pcso and Eadr, so a claim surviving it
   survives them all.

   The same machinery grades the planted mutants: the claims of the
   CORRECT program must be violated by its strip-psync variant (the
   gate has teeth), with greedy shrinking over the original program and
   a crashmatrix-style replayable counterexample file. *)

module Ir = Analysis.Ir
module Persistate = Analysis.Persistate
module Vars = Analysis.Dataflow.Vars
module Refmodel = Simnvm.Refmodel
module Memsys = Simnvm.Memsys

(* --- planted mutants over litmus programs ---------------------------- *)

type mutant = Strip_psync | Inject_redundant_pwb

let mutant_name = function
  | Strip_psync -> "strip-psync"
  | Inject_redundant_pwb -> "redundant-pwb"

let mutant_of_string = function
  | "strip-psync" -> Some Strip_psync
  | "redundant-pwb" -> Some Inject_redundant_pwb
  | _ -> None

let map_ops suffix f (p : Prog.t) =
  {
    p with
    Prog.name = p.Prog.name ^ suffix;
    threads = List.map (List.concat_map f) p.Prog.threads;
  }

let strip_psync p =
  map_ops "+strip-psync" (function Prog.Psync -> [] | op -> [ op ]) p

let inject_redundant_pwb p =
  map_ops "+redundant-pwb"
    (function Prog.Pwb l -> [ Prog.Pwb l; Prog.Pwb l ] | op -> [ op ])
    p

let apply_mutant = function
  | Strip_psync -> strip_psync
  | Inject_redundant_pwb -> inject_redundant_pwb

(* --- IR <-> Prog bridge ----------------------------------------------- *)

(* Inverse of [World.compile] for straight-line IR: the round-trip
   property test's other half, and how the gen_common flush-aware IR
   generator reaches the axiomatic enumerator. *)
let compile_ir ?lines ?layout (ir : Ir.program) : (Prog.t, string) result =
  let persistent = List.map fst ir.Ir.persistent in
  let is_p v = List.mem v persistent in
  if List.exists (fun (_, init) -> init <> 0) ir.Ir.persistent then
    Error "compile_ir: litmus images start zeroed (nonzero initial value)"
  else
    let layout =
      match layout with
      | Some l -> l
      | None ->
          let line v =
            match lines with
            | Some f -> f v
            | None ->
                let rec idx i = function
                  | [] -> i
                  | w :: _ when w = v -> i
                  | _ :: tl -> idx (i + 1) tl
                in
                idx 0 persistent
          in
          let next_off = Hashtbl.create 4 in
          List.map
            (fun v ->
              let lid = line v in
              let off =
                Option.value ~default:0 (Hashtbl.find_opt next_off lid)
              in
              Hashtbl.replace next_off lid (off + 1);
              (v, lid, off))
            persistent
    in
    let op = function
      | Ir.Pwb v when is_p v -> Ok (Prog.Pwb v)
      | Ir.Psync -> Ok Prog.Psync
      | Ir.Assign (v, _) when v = World.halt_var -> Ok Prog.Crash
      | Ir.Assign (v, Ir.Int k) when is_p v -> Ok (Prog.St (v, k))
      | Ir.Assign (r, Ir.Var l) when (not (is_p r)) && is_p l ->
          Ok (Prog.Ld (l, r))
      | Ir.Assign (v, Ir.Binop (Ir.Add, Ir.Var v', Ir.Int k))
        when is_p v && v = v' ->
          Ok (Prog.Faa (v, k))
      | s ->
          Error
            (Fmt.str "compile_ir: statement has no litmus form: %a"
               Ir.pp_stmt s)
    in
    let thread (t : Ir.thread) =
      List.fold_left
        (fun acc s ->
          match (acc, op s) with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok ops, Ok o -> Ok (o :: ops))
        (Ok []) t.Ir.body
      |> Result.map List.rev
    in
    let rec threads = function
      | [] -> Ok []
      | t :: tl -> (
          match (thread t, threads tl) with
          | Ok ops, Ok rest -> Ok (ops :: rest)
          | Error e, _ | _, Error e -> Error e)
    in
    match threads ir.Ir.threads with
    | Error e -> Error e
    | Ok ths ->
        let p = { Prog.name = ir.Ir.pname; layout; threads = ths } in
        (match Prog.check p with
        | [] -> Ok p
        | e :: _ -> Error ("compile_ir: " ^ e))

(* --- static claims ---------------------------------------------------- *)

type claims = {
  c_must_durable : Prog.loc list;  (** layout order *)
  c_may_dirty : Prog.loc list;
  c_summary : Persistate.summary;
}

let static_claims (p : Prog.t) : claims =
  let ir = World.compile p in
  let ps = Persistate.create ~lines:(Prog.line_of p) ir in
  let s = Persistate.summarize ~crash_var:World.halt_var ps in
  let sel set = List.filter (fun l -> Vars.mem l set) (Prog.locs p) in
  {
    c_must_durable = sel s.Persistate.s_must_durable;
    c_may_dirty = sel s.Persistate.s_may_dirty;
    c_summary = s;
  }

(* --- the containment check ------------------------------------------- *)

type violation = { v_loc : Prog.loc; v_mem : int list; v_pmem : int list }

type report = {
  r_prog : Prog.t;
  r_variant : Axiom.variant;
  r_skipped : bool;  (** state cap hit: nothing was decided *)
  r_states : int;
  r_terminals : int;  (** distinct (mem, pmem) terminal pairs *)
  r_claimed : Prog.loc list;
  r_empirical : Prog.loc list;
      (** locations durable in every terminal pair — the precision
          ceiling the static claim is measured against *)
  r_violations : violation list;
}

let check ?max_states ?(variant = Axiom.Pcso_lazy) ?claims (p : Prog.t) :
    report =
  let claims =
    match claims with Some c -> c | None -> static_claims p
  in
  let locs = Array.of_list (Prog.locs p) in
  let n = Array.length locs in
  let ix l =
    let rec go i = if locs.(i) = l then i else go (i + 1) in
    go 0
  in
  let claimed_ix = List.map ix claims.c_must_durable in
  let always = Array.make n true in
  let pairs = Hashtbl.create 256 in
  let violations = ref [] in
  let record mem pmem =
    let pmem = if variant = Axiom.Eadr then mem else pmem in
    let key = (Array.to_list mem, Array.to_list pmem) in
    if not (Hashtbl.mem pairs key) then begin
      Hashtbl.replace pairs key ();
      for i = 0 to n - 1 do
        if pmem.(i) <> mem.(i) then always.(i) <- false
      done;
      List.iter
        (fun i ->
          if pmem.(i) <> mem.(i) then
            violations :=
              { v_loc = locs.(i); v_mem = fst key; v_pmem = snd key }
              :: !violations)
        claimed_ix
    end
  in
  let complete, states = Axiom.enumerate ?max_states ~variant ~record p in
  {
    r_prog = p;
    r_variant = variant;
    r_skipped = not complete;
    r_states = states;
    r_terminals = Hashtbl.length pairs;
    r_claimed = claims.c_must_durable;
    r_empirical =
      (if complete then
         Array.to_list locs
         |> List.filteri (fun i _ -> always.(i))
       else []);
    r_violations = List.rev !violations;
  }

let precision (r : report) =
  match List.length r.r_empirical with
  | 0 -> 1.0
  | e -> float_of_int (List.length r.r_claimed) /. float_of_int e

(* --- refmodel dirtiness (the may-dirty dynamic bound) ----------------- *)

(* One seeded schedule against the eager-clwb reference model; returns
   the litmus lines still cache-dirty when the program stops. The
   static may-dirty set must cover every returned line (some member
   carries the Dirty bit): evictions only clean lines, so any
   [evict_rate] keeps the direction sound. *)
let ref_dirty_lines ?(sched_seed = 1) ?(evict_rate = 0.0) (p : Prog.t) :
    int list =
  let cfg =
    {
      Memsys.default_config with
      Memsys.nvm_words = 32 * World.line_words;
      dram_words = 8 * World.line_words;
      line_words = World.line_words;
      sets = 1;
      ways = 4;
      evict_rate;
      seed = sched_seed lxor 0xd112;
      eadr = false;
      pcso = true;
      faults = None;
    }
  in
  let m = Refmodel.create cfg in
  ignore
    (World.drive ~sched_seed ~load:(Refmodel.load m)
       ~store:(Refmodel.store m) ~pwb:(Refmodel.pwb m)
       ~psync:(fun () -> Refmodel.psync m)
       p);
  List.filter
    (fun lid -> Refmodel.is_cached_dirty m (lid * World.line_words))
    (Prog.lines p)

(* --- counterexamples: shrink + replay --------------------------------- *)

type cx = {
  cx_prog : Prog.t;  (** the ORIGINAL (shrunk) program, claims intact *)
  cx_variant : Axiom.variant;
  cx_mutant : mutant option;  (** [None]: the program itself violates *)
  cx_loc : Prog.loc;
}

let violates ?mutant ~variant (p : Prog.t) =
  Prog.well_formed p
  &&
  let claims = static_claims p in
  claims.c_must_durable <> []
  &&
  let target =
    match mutant with None -> p | Some m -> apply_mutant m p
  in
  let r = check ~variant ~claims target in
  (not r.r_skipped) && r.r_violations <> []

(* Greedy descent exactly as Harness.minimize, but shrinking the
   ORIGINAL program: each candidate's own claims must be violated by
   its own mutated version, so the shrunk artifact is a complete
   self-contained repro. *)
let minimize ?mutant ~variant (p : Prog.t) : Prog.t =
  let exception Found of Prog.t in
  let rec go p =
    match
      Gen.shrink p (fun p' ->
          if violates ?mutant ~variant p' then raise (Found p'))
    with
    | () -> p
    | exception Found p' -> go p'
  in
  go p

let counterexample_to_string (c : cx) =
  Fmt.str "%s# axcheck variant=%s%s loc=%s must-durable=%s\n"
    (Prog.to_string c.cx_prog)
    (Axiom.variant_name c.cx_variant)
    (match c.cx_mutant with
    | None -> ""
    | Some m -> " mutant=" ^ mutant_name m)
    c.cx_loc
    (String.concat "," (static_claims c.cx_prog).c_must_durable)

let counterexample_of_string s : (cx, string) result =
  match Prog.of_string s with
  | Error e -> Error e
  | Ok p -> (
      let line =
        String.split_on_char '\n' s
        |> List.find_opt (fun l ->
               let l = String.trim l in
               String.length l > 9 && String.sub l 0 9 = "# axcheck")
      in
      match line with
      | None -> Error "no '# axcheck ...' line"
      | Some l -> (
          let kvs =
            String.split_on_char ' ' (String.trim l)
            |> List.filter_map (fun tok ->
                   match String.index_opt tok '=' with
                   | Some i ->
                       Some
                         ( String.sub tok 0 i,
                           String.sub tok (i + 1)
                             (String.length tok - i - 1) )
                   | None -> None)
          in
          let get k = List.assoc_opt k kvs in
          match (get "variant", get "loc") with
          | Some vr, Some loc -> (
              match Axiom.variant_of_string vr with
              | Some variant ->
                  if List.mem loc (Prog.locs p) then
                    Ok
                      {
                        cx_prog = p;
                        cx_variant = variant;
                        cx_mutant =
                          Option.bind (get "mutant") mutant_of_string;
                        cx_loc = loc;
                      }
                  else Error "axcheck line: loc not in program"
              | None -> Error "axcheck line: bad variant")
          | _ -> Error "axcheck line: missing variant/loc"))

let replay (c : cx) : [ `Reproduced | `Vanished ] =
  if violates ?mutant:c.cx_mutant ~variant:c.cx_variant c.cx_prog then
    `Reproduced
  else `Vanished

(* --- the CLI demo program --------------------------------------------- *)

(* A WAL append in litmus form — the straight-line twin of the
   Analysis.Corpus wal-append program: payload persisted and fenced,
   commit mark persisted and fenced, crash. The static claim is
   {payload, commit} must-durable; stripping the psyncs leaves both
   merely pending, which Pcso_lazy is free to lose. *)
let demo : Prog.t =
  {
    Prog.name = "axdemo-wal";
    layout = [ ("payload", 0, 0); ("commit", 1, 0) ];
    threads =
      [
        [
          Prog.St ("payload", 7);
          Prog.Pwb "payload";
          Prog.Psync;
          Prog.St ("commit", 1);
          Prog.Pwb "commit";
          Prog.Psync;
          Prog.Crash;
        ];
      ];
  }

(* --- fuzz -------------------------------------------------------------- *)

type fuzz_result = {
  fz_tested : int;
  fz_skipped : int;  (** enumeration hit the state cap *)
  fz_claims : int;  (** must-durable claims verified across programs *)
  fz_failure : cx option;  (** already minimized *)
}

let fuzz ?(n = 300) ?(seed = 1) ?(variant = Axiom.Pcso_lazy) ?mutate () :
    fuzz_result =
  let rand = Random.State.make [| seed lxor 0xAc5eed |] in
  let skipped = ref 0 in
  let claims_total = ref 0 in
  let rec loop i =
    if i >= n then
      {
        fz_tested = n;
        fz_skipped = !skipped;
        fz_claims = !claims_total;
        fz_failure = None;
      }
    else begin
      let p = QCheck.Gen.generate1 ~rand Gen.gen_prog in
      let p = { p with Prog.name = Fmt.str "axfuzz-%d-%d" seed i } in
      let claims = static_claims p in
      let target =
        match mutate with None -> p | Some m -> apply_mutant m p
      in
      let r = check ~variant ~claims target in
      if r.r_skipped then begin
        incr skipped;
        loop (i + 1)
      end
      else
        match r.r_violations with
        | [] ->
            claims_total := !claims_total + List.length claims.c_must_durable;
            loop (i + 1)
        | v :: _ ->
            let p' = minimize ?mutant:mutate ~variant p in
            (* re-derive the violated location on the shrunk program *)
            let loc =
              let target' =
                match mutate with
                | None -> p'
                | Some m -> apply_mutant m p'
              in
              match (check ~variant target').r_violations with
              | v' :: _ -> v'.v_loc
              | [] -> v.v_loc
            in
            {
              fz_tested = i + 1;
              fz_skipped = !skipped;
              fz_claims = !claims_total;
              fz_failure =
                Some
                  {
                    cx_prog = p';
                    cx_variant = variant;
                    cx_mutant = mutate;
                    cx_loc = loc;
                  };
            }
    end
  in
  loop 0

(* --- JSON -------------------------------------------------------------- *)

let report_to_json (r : report) =
  let locs ls = Obs.Json.List (List.map (fun l -> Obs.Json.String l) ls) in
  Obs.Json.Obj
    [
      ("program", Obs.Json.String r.r_prog.Prog.name);
      ("variant", Obs.Json.String (Axiom.variant_name r.r_variant));
      ("skipped", Obs.Json.Bool r.r_skipped);
      ("states", Obs.Json.Int r.r_states);
      ("terminals", Obs.Json.Int r.r_terminals);
      ("claimed", locs r.r_claimed);
      ("empirical", locs r.r_empirical);
      ("violations", Obs.Json.Int (List.length r.r_violations));
    ]

let fuzz_to_json (f : fuzz_result) =
  Obs.Json.Obj
    [
      ("tested", Obs.Json.Int f.fz_tested);
      ("skipped", Obs.Json.Int f.fz_skipped);
      ("claims_verified", Obs.Json.Int f.fz_claims);
      ( "failure",
        match f.fz_failure with
        | None -> Obs.Json.Null
        | Some c -> Obs.Json.String (counterexample_to_string c) );
    ]
