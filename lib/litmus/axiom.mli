(** Axiomatic persistency spec: the set of post-crash states a litmus
    program admits, by exhaustive enumeration of interleavings and
    per-line write-back nondeterminism (DESIGN.md section 13).

    The volatile semantics is sequential consistency — the simulated
    substrate has a coherent cache and no store buffer — so a state is
    the coherent memory [mem], the persistent image [pmem], and each
    thread's program counter. Ops mutate [mem]; the adversary may at
    any point (including between the last instruction and the power
    failure) complete a {e write-back} moving a line's content from
    [mem] into [pmem]. The post-crash outcome is the [pmem] projection
    over the declared locations, recorded at every terminal state
    (explicit [Crash] executed, or all threads finished). *)

type variant =
  | Pcso
      (** line-snapshot write-back, eager [pwb] (the substrate's
          conservative clwb): the default spec the worlds check against *)
  | Pcso_lazy
      (** the general PCSO [pwb]: issuing marks the line pending, and
          the write-back applies at any later point, forced at latest by
          the next [psync] — a strict superset of [Pcso]'s outcomes *)
  | Eadr
      (** cache in the persistent domain: the crash drains every dirty
          line, so the only outcome per execution is the final [mem]
          (no loss) *)
  | Ablation
      (** word-granular write-back: a spontaneous write-back persists
          any nonempty subset of a line's dirty words, breaking
          same-line persist ordering; explicit [pwb] stays
          line-granular — a strict superset of [Pcso]'s outcomes on
          same-line conflicts *)

val variant_name : variant -> string
val variant_of_string : string -> variant option

module Outcomes : Set.S with type elt = int list

type result = {
  outcomes : Outcomes.t;
      (** each element lists the persisted value of every location, in
          layout order *)
  complete : bool;  (** false iff the state cap was hit (partial set) *)
  states : int;  (** distinct states visited *)
}

val allowed : ?max_states:int -> variant:variant -> Prog.t -> result
(** Memoized DFS over machine states; [max_states] (default 300k)
    bounds it for adversarial generator output — check [complete]
    before treating the set as exact. *)

val enumerate :
  ?max_states:int ->
  variant:variant ->
  record:(int array -> int array -> unit) ->
  Prog.t ->
  bool * int
(** The DFS core under [allowed], exposed for {!Axcheck}: [record]
    fires with the coherent memory and persistent image (in
    {!Prog.locs} order) at every terminal state — including the extra
    terminals post-crash spontaneous write-backs reach. The arrays are
    the working state; copy what you retain. Under [Eadr] the
    observable image is the first array. Returns
    [(complete, states_visited)]. *)

val mem_outcome : result -> int list -> bool

val pp_outcome : Prog.loc list -> int list Fmt.t
val pp_outcomes : Prog.loc list -> Outcomes.t Fmt.t
val outcomes_to_json : Outcomes.t -> Obs.Json.t
