(** Axiomatic soundness gate for the static durability analyzer.

    {!Analysis.Persistate} claims a must-durable set for a compiled
    litmus program; this module enumerates every axiomatically-allowed
    terminal [(coherent memory, persistent image)] pair (via
    {!Axiom.enumerate}) and requires [pmem(v) = mem(v)] for each
    claimed [v] in each pair — by default against [Pcso_lazy], the
    weakest variant, which dominates the rest. Violations shrink over
    the {e original} program (each candidate re-derives its own claims)
    into replayable counterexample files, mirroring the
    {!Harness} / crashmatrix convention. *)

(** {2 Planted mutants} *)

type mutant = Strip_psync | Inject_redundant_pwb

val mutant_name : mutant -> string
val mutant_of_string : string -> mutant option

val strip_psync : Prog.t -> Prog.t
(** Delete every [Psync]: issued pwbs never fence, so the claims of the
    original program must fail axiomatically. *)

val inject_redundant_pwb : Prog.t -> Prog.t
(** Duplicate every [Pwb]: outcome-neutral axiomatically, caught by the
    static {!Analysis.Flushlint.Redundant_pwb} rule and the dynamic
    clean-pwb counter instead. *)

val apply_mutant : mutant -> Prog.t -> Prog.t

(** {2 IR bridge} *)

val compile_ir :
  ?lines:(Analysis.Ir.var -> int) ->
  ?layout:(Prog.loc * int * int) list ->
  Analysis.Ir.program ->
  (Prog.t, string) result
(** Inverse of {!World.compile} for straight-line IR in the litmus
    fragment (constant stores, loads into transients, [Faa]-shaped
    RMWs, [Pwb]/[Psync], assignments to {!World.halt_var} as [Crash]).
    [layout] wins over [lines]; the default puts each persistent
    variable on its own line. Control flow or non-litmus statement
    shapes return [Error]. *)

(** {2 Static claims and the containment check} *)

type claims = {
  c_must_durable : Prog.loc list;  (** layout order *)
  c_may_dirty : Prog.loc list;
  c_summary : Analysis.Persistate.summary;
}

val static_claims : Prog.t -> claims
(** {!Analysis.Persistate.summarize} over {!World.compile}, with the
    program's own cache-line layout and [Crash] compiled to the halt
    variable. *)

type violation = { v_loc : Prog.loc; v_mem : int list; v_pmem : int list }

type report = {
  r_prog : Prog.t;
  r_variant : Axiom.variant;
  r_skipped : bool;  (** state cap hit: nothing was decided *)
  r_states : int;
  r_terminals : int;  (** distinct terminal (mem, pmem) pairs *)
  r_claimed : Prog.loc list;
  r_empirical : Prog.loc list;
      (** locations durable in every terminal pair (empty when
          skipped) — the precision ceiling *)
  r_violations : violation list;
}

val check :
  ?max_states:int ->
  ?variant:Axiom.variant ->
  ?claims:claims ->
  Prog.t ->
  report
(** Soundness: [r_violations = []] iff every claimed location is
    durable in every allowed terminal state. Pass [claims] explicitly
    to judge one program's claims against another's enumeration (the
    mutant gate: claims of the original vs the stripped variant).
    Default variant [Pcso_lazy]. *)

val precision : report -> float
(** |claimed| / |empirically always-durable|; 1.0 when the empirical
    set is empty. *)

val ref_dirty_lines : ?sched_seed:int -> ?evict_rate:float -> Prog.t -> int list
(** Litmus lines still cache-dirty in the eager reference model after
    one seeded schedule — every returned line must have a member in the
    static may-dirty set. *)

(** {2 Counterexamples} *)

type cx = {
  cx_prog : Prog.t;  (** the ORIGINAL (shrunk) program, claims intact *)
  cx_variant : Axiom.variant;
  cx_mutant : mutant option;  (** [None]: the program itself violates *)
  cx_loc : Prog.loc;
}

val violates : ?mutant:mutant -> variant:Axiom.variant -> Prog.t -> bool
(** The shrink predicate: the program's own claims are non-empty and
    violated by its (optionally mutated) enumeration. *)

val minimize : ?mutant:mutant -> variant:Axiom.variant -> Prog.t -> Prog.t
(** Greedy {!Gen.shrink} descent over the original program keeping
    {!violates} true; deterministic. *)

val counterexample_to_string : cx -> string
(** Replay file: the program text followed by an
    [# axcheck variant=... mutant=... loc=... must-durable=...] line
    ({!Prog.of_string} skips it as a comment). *)

val counterexample_of_string : string -> (cx, string) result

val replay : cx -> [ `Reproduced | `Vanished ]
(** Re-derive the claims and re-run the containment check. *)

val demo : Prog.t
(** The WAL-append litmus twin of [Analysis.Corpus.wal_append]: claims
    [{payload, commit}] must-durable; the strip-psync mutant violates
    both. The [analyze --mutant strip-psync] CLI flow shrinks and
    replays it. *)

(** {2 Fuzz} *)

type fuzz_result = {
  fz_tested : int;
  fz_skipped : int;  (** enumeration hit the state cap *)
  fz_claims : int;  (** must-durable claims verified across programs *)
  fz_failure : cx option;  (** already minimized *)
}

val fuzz :
  ?n:int ->
  ?seed:int ->
  ?variant:Axiom.variant ->
  ?mutate:mutant ->
  unit ->
  fuzz_result
(** [n] (default 300) programs from {!Gen.gen_prog} under a seeded
    stream; each program's claims are checked against its (optionally
    mutated) enumeration, stopping at (and minimizing) the first
    violation. With [mutate = None] any failure is a genuine soundness
    bug. *)

val report_to_json : report -> Obs.Json.t
val fuzz_to_json : fuzz_result -> Obs.Json.t
