(** The named litmus corpus: paper-derived persistency shapes whose
    PCSO-allowed sets are pinned as goldens in test/test_litmus.ml and
    which [litmus --corpus] checks against all three worlds. *)

type entry = {
  e_name : string;
  e_prog : Prog.t;
  e_variants : Axiom.variant list;
      (** the axiom variants whose soundness the harness checks for
          this entry (each with the matching world configuration) *)
  e_note : string;
}

val all : entry list
(** sb, mp-fenced, mp-unfenced, mp-same-line, incll-war, commit-crash,
    faa-contend, pwb-no-psync, eadr-noloss, ablation-split, mp-chain. *)

val find : string -> entry option
