(** The three executable worlds a litmus program runs in, each sampling
    one schedule and one adversarial crash image per seed pair:

    - {b kernel}: ops drive {!Simnvm.Memsys} directly;
    - {b ref}: ops drive {!Simnvm.Refmodel}, the executable spec;
    - {b ir}: the program compiles to the analyzer IR and runs through
      {!Analysis.Exec.run_mem} over a kernel memory system.

    A run interleaves threads with the interpreter's seeded LCG
    scheduler ([sched_seed]), with the memory system's own seeded
    spontaneous evictions live ([image_seed] seeds them). At the crash
    point a coin per still-dirty litmus line decides whether its
    in-flight write-back completed; then the world crashes and the
    persisted image is the observed outcome. Soundness: every observed
    outcome must lie in the matching {!Axiom} set. *)

type id = Kernel | Refm | Ir_mem

val id_name : id -> string
val id_of_string : string -> id option
val all_ids : id list

(** {2 Planted mutant}

    Mirrors the {!Respct.Runtime.set_mutant} hook pattern:
    [Drop_same_line_order] runs the kernel-config worlds with
    line-snapshot write-back disabled ([pcso = false]) while the spec
    stays {!Axiom.Pcso} — same-line WAR litmus programs then observe
    PCSO-forbidden outcomes, which the fuzzer must catch. *)

type mutant = Drop_same_line_order

val set_mutant : mutant option -> unit
val mutant : unit -> mutant option

(** {2 Configuration} *)

val line_words : int
(** Words per cache line in every litmus world (the
    {!Simnvm.Addr.default_line_words}). *)

type run_cfg = { eadr : bool; ablation : bool; evict_rate : float }

val default_run_cfg : run_cfg
(** PCSO, eADR off, evict_rate 0.4. *)

val run_cfg_of_variant : Axiom.variant -> run_cfg
(** The world configuration matching an axiom variant ([Pcso_lazy] maps
    to the eager substrate — its spec is a superset). *)

val addr_of_loc : Prog.t -> Prog.loc -> Simnvm.Addr.t

val drive :
  sched_seed:int ->
  load:(int -> int) ->
  store:(int -> int -> unit) ->
  pwb:(int -> unit) ->
  psync:(unit -> unit) ->
  Prog.t ->
  bool
(** Run one seeded schedule of the program against raw memory-op
    callbacks (addresses from {!addr_of_loc}), one op per scheduler
    pick; returns [true] iff a [Crash] executed. The hook {!Axcheck}
    and the Filemem dynamic oracle drive arbitrary backends with. *)

val halt_var : Analysis.Ir.var
(** The transient flag [Crash] compiles to an assignment of; the
    stepper and the {!Analysis.Persistate} crash summaries both key on
    it. *)

val compile : Prog.t -> Analysis.Ir.program
(** The IR compilation the [Ir_mem] world runs: stores/loads become
    assignments (loads into transient registers), [Faa] becomes one
    atomic read-modify-write assignment, [Crash] sets a transient halt
    flag that stops the stepper. *)

val run :
  world:id ->
  ?cfg:run_cfg ->
  sched_seed:int ->
  image_seed:int ->
  Prog.t ->
  int list
(** One observed post-crash outcome (persisted value per location, in
    layout order). Deterministic in [(world, cfg, mutant, sched_seed,
    image_seed)] — the replay contract. *)

val exhaustive_ref : ?max_paths:int -> Prog.t -> Axiom.Outcomes.t option
(** Every post-crash outcome the reference model can reach, by
    systematic enumeration of all interleavings crossed with all
    placements of spontaneous write-backs (random eviction off; an
    inserted [pwb] is exactly a spontaneous flush under the eager-clwb
    substrate), including write-backs of residual dirty lines after the
    last instruction. [None] if [max_paths] (default 200k) was
    exceeded. For small programs this must EQUAL the {!Axiom.Pcso}
    set — the completeness direction of the differential check. *)
