(** Litmus programs: tiny multi-threaded sequences of persistent-memory
    operations over a handful of named word locations with an explicit
    cache-line layout.

    Each thread is a straight-line list of ops; there is no control
    flow, so the set of executions is exactly the set of interleavings
    and the axiomatic evaluator ({!Axiom}) can enumerate it. [Crash]
    halts every thread the moment it executes; a program without an
    explicit [Crash] crashes implicitly after all threads finish. All
    locations start at 0 (the zeroed NVMM image).

    The textual encoding ([to_string]/[of_string]) is the replay
    format: counterexamples print as parseable program text, and
    [litmus --replay] reads it back. *)

type loc = string
type reg = string

type op =
  | St of loc * int  (** store a constant *)
  | Ld of loc * reg  (** load into a (volatile, unobservable) register *)
  | Pwb of loc  (** [clwb] of the location's cache line *)
  | Psync  (** [sfence] *)
  | Faa of loc * int  (** atomic fetch-and-add by a constant *)
  | Crash  (** power failure: halts all threads *)

type t = {
  name : string;
  layout : (loc * int * int) list;
      (** location, cache-line index, word offset within the line.
          Distinct locations must occupy distinct slots. *)
  threads : op list list;
}

val locs : t -> loc list
(** Declared locations, in layout order (the outcome-tuple order). *)

val line_of : t -> loc -> int
val offset_of : t -> loc -> int

val lines : t -> int list
(** Distinct line indices used by the layout, sorted. *)

val op_loc : op -> loc option
val has_crash : t -> bool

val regs : t -> reg list
(** Registers named by [Ld] ops, sorted, deduplicated. *)

val check : ?line_words:int -> t -> string list
(** Well-formedness diagnostics (empty means well-formed): non-empty
    layout and thread list, distinct locations on distinct slots,
    offsets within [line_words] (default 8), every op over a declared
    location. *)

val well_formed : ?line_words:int -> t -> bool

val pp_op : op Fmt.t
val pp : t Fmt.t

val to_string : t -> string
(** Replay text; parseable by {!of_string} (round-trips). *)

val of_string : string -> (t, string) result
(** Parse the replay format: one item per line — [litmus NAME],
    [loc NAME LINE OFFSET], [thread ...] opening a thread, then ops
    ([st l v] / [ld l r] / [pwb l] / [psync] / [faa l k] / [crash]).
    Blank lines and [#]-prefixed comment lines are skipped. The parsed
    program is {!check}ed. *)
