type variant = Pcso | Pcso_lazy | Eadr | Ablation

let variant_name = function
  | Pcso -> "pcso"
  | Pcso_lazy -> "pcso-lazy"
  | Eadr -> "eadr"
  | Ablation -> "ablation"

let variant_of_string = function
  | "pcso" -> Some Pcso
  | "pcso-lazy" -> Some Pcso_lazy
  | "eadr" -> Some Eadr
  | "ablation" -> Some Ablation
  | _ -> None

module Outcomes = Set.Make (struct
  type t = int list

  let compare = compare
end)

type result = { outcomes : Outcomes.t; complete : bool; states : int }

(* A symbolic machine state. [mem] is the coherent (SC) view, [pmem]
   the persistent image; a word is dirty iff the two disagree — value
   equality is outcome-equivalent to operational dirtiness, because
   writing back a value-clean word never changes the image. [pending]
   (Pcso_lazy only) is the sorted set of lines with an issued but not
   yet applied pwb.

   [enumerate] is the DFS core shared by [allowed] (the outcome sets
   the worlds are checked against) and [Axcheck] (which needs the full
   (mem, pmem) pair at each terminal state to judge the static
   analyzer's must-durable claims). [record] fires at every terminal
   state — explicit [Crash] executed, or all threads done — including
   the extra terminals reached by post-crash spontaneous write-backs;
   the arrays are the DFS working state, so callers must copy what they
   retain. Under [Eadr] the observable image is [mem] (the crash drains
   the cache), and [record] still receives the raw pair. *)
let enumerate ?(max_states = 300_000) ~variant
    ~(record : int array -> int array -> unit) (p : Prog.t) : bool * int =
  let loc_list = Prog.locs p in
  let n = List.length loc_list in
  let idx = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace idx l i) loc_list;
  let ix l = Hashtbl.find idx l in
  let line = Array.of_list (List.map (fun l -> Prog.line_of p l) loc_list) in
  let line_ids = Prog.lines p in
  let members lid =
    List.filter (fun i -> line.(i) = lid) (List.init n (fun i -> i))
  in
  let members_tbl = Hashtbl.create 4 in
  List.iter (fun lid -> Hashtbl.replace members_tbl lid (members lid)) line_ids;
  let members lid = Hashtbl.find members_tbl lid in
  let bodies = Array.of_list (List.map Array.of_list p.Prog.threads) in
  let nt = Array.length bodies in
  let visited = Hashtbl.create 4096 in
  let states = ref 0 in
  let capped = ref false in
  let flush_line pmem mem lid =
    let pmem' = Array.copy pmem in
    List.iter (fun i -> pmem'.(i) <- mem.(i)) (members lid);
    pmem'
  in
  let dirty_members mem pmem lid =
    List.filter (fun i -> mem.(i) <> pmem.(i)) (members lid)
  in
  let rec go mem pmem pcs halted pending =
    if not !capped then begin
      let key =
        ( Array.to_list mem,
          Array.to_list pmem,
          Array.to_list pcs,
          halted,
          pending )
      in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.replace visited key ();
        incr states;
        if !states > max_states then capped := true
        else begin
          let all_done =
            let ok = ref true in
            Array.iteri
              (fun t pc -> if pc < Array.length bodies.(t) then ok := false)
              pcs;
            !ok
          in
          if halted || all_done then record mem pmem;
          (* program steps *)
          if not halted then
            Array.iteri
              (fun t body ->
                let pc = pcs.(t) in
                if pc < Array.length body then begin
                  let pcs' = Array.copy pcs in
                  pcs'.(t) <- pc + 1;
                  match body.(pc) with
                  | Prog.St (l, v) ->
                      let mem' = Array.copy mem in
                      mem'.(ix l) <- v;
                      go mem' pmem pcs' halted pending
                  | Prog.Faa (l, k) ->
                      let mem' = Array.copy mem in
                      mem'.(ix l) <- mem.(ix l) + k;
                      go mem' pmem pcs' halted pending
                  | Prog.Ld _ ->
                      (* registers are unobservable and nothing branches
                         on them: a load only advances the pc *)
                      go mem pmem pcs' halted pending
                  | Prog.Crash -> go mem pmem pcs' true pending
                  | Prog.Psync -> (
                      match variant with
                      | Pcso_lazy ->
                          (* the fence forces every issued pwb to apply,
                             at the current contents of its line *)
                          let pmem' =
                            List.fold_left
                              (fun pm lid -> flush_line pm mem lid)
                              pmem pending
                          in
                          go mem pmem' pcs' halted []
                      | Pcso | Eadr | Ablation ->
                          go mem pmem pcs' halted pending)
                  | Prog.Pwb l -> (
                      let lid = line.(ix l) in
                      match variant with
                      | Pcso | Ablation ->
                          (* eager clwb: the whole line persists now
                             (explicit pwb is line-granular even under
                             the word ablation) *)
                          go mem (flush_line pmem mem lid) pcs' halted
                            pending
                      | Eadr ->
                          (* outcome reads [mem]; write-back invisible *)
                          go mem pmem pcs' halted pending
                      | Pcso_lazy ->
                          (* issue only; applied by a later write-back
                             or psync (the persist-now behaviour is the
                             issue immediately followed by a spontaneous
                             write-back, so it needs no extra branch) *)
                          go mem pmem pcs' halted
                            (List.sort_uniq compare (lid :: pending)))
                end)
              bodies;
          (* spontaneous write-back steps (also from terminal states:
             the adversary may complete in-flight write-backs between
             the last instruction and the power failure) *)
          match variant with
          | Eadr -> () (* crash drains the cache; write-back invisible *)
          | Pcso | Pcso_lazy ->
              List.iter
                (fun lid ->
                  if
                    dirty_members mem pmem lid <> []
                    || List.mem lid pending
                  then
                    go mem (flush_line pmem mem lid) pcs halted
                      (List.filter (fun l -> l <> lid) pending))
                line_ids
          | Ablation ->
              (* word-granular ablation: a spontaneous write-back
                 persists any nonempty subset of the line's dirty
                 words; the rest stay dirty *)
              List.iter
                (fun lid ->
                  let dirty = Array.of_list (dirty_members mem pmem lid) in
                  let k = Array.length dirty in
                  if k > 0 then
                    for mask = 1 to (1 lsl k) - 1 do
                      let pmem' = Array.copy pmem in
                      for b = 0 to k - 1 do
                        if mask land (1 lsl b) <> 0 then
                          pmem'.(dirty.(b)) <- mem.(dirty.(b))
                      done;
                      go mem pmem' pcs halted pending
                    done)
                line_ids
        end
      end
    end
  in
  go (Array.make n 0) (Array.make n 0) (Array.make nt 0) false [];
  (not !capped, !states)

let allowed ?max_states ~variant (p : Prog.t) : result =
  let outcomes = ref Outcomes.empty in
  let record mem pmem =
    outcomes :=
      Outcomes.add
        (Array.to_list (if variant = Eadr then mem else pmem))
        !outcomes
  in
  let complete, states = enumerate ?max_states ~variant ~record p in
  { outcomes = !outcomes; complete; states }

let mem_outcome r o = Outcomes.mem o r.outcomes

(* Non-breaking separators: golden tests and replay files pin these
   strings, so they must never wrap. *)
let pp_outcome locs ppf o =
  Fmt.pf ppf "(%a)"
    Fmt.(list ~sep:(any ",") (fun ppf (l, v) -> pf ppf "%s=%d" l v))
    (List.combine locs o)

let pp_outcomes locs ppf set =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any " ") (pp_outcome locs))
    (Outcomes.elements set)

let outcomes_to_json set =
  Obs.Json.List
    (List.map
       (fun o -> Obs.Json.List (List.map (fun v -> Obs.Json.Int v) o))
       (Outcomes.elements set))
