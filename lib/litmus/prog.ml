type loc = string
type reg = string

type op =
  | St of loc * int
  | Ld of loc * reg
  | Pwb of loc
  | Psync
  | Faa of loc * int
  | Crash

type t = {
  name : string;
  layout : (loc * int * int) list;
  threads : op list list;
}

let locs p = List.map (fun (l, _, _) -> l) p.layout

let line_of p l =
  let rec go = function
    | [] -> invalid_arg (Fmt.str "Litmus.Prog.line_of: undeclared %s" l)
    | (l', line, _) :: _ when String.equal l l' -> line
    | _ :: rest -> go rest
  in
  go p.layout

let offset_of p l =
  let rec go = function
    | [] -> invalid_arg (Fmt.str "Litmus.Prog.offset_of: undeclared %s" l)
    | (l', _, off) :: _ when String.equal l l' -> off
    | _ :: rest -> go rest
  in
  go p.layout

let lines p =
  List.sort_uniq compare (List.map (fun (_, line, _) -> line) p.layout)

let op_loc = function
  | St (l, _) | Ld (l, _) | Pwb l | Faa (l, _) -> Some l
  | Psync | Crash -> None

let has_crash p =
  List.exists (List.exists (fun o -> o = Crash)) p.threads

let regs p =
  List.sort_uniq compare
    (List.concat_map
       (List.filter_map (function Ld (_, r) -> Some r | _ -> None))
       p.threads)

let check ?(line_words = 8) (p : t) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun m -> errs := m :: !errs) fmt in
  if p.layout = [] then err "empty layout";
  if p.threads = [] then err "no threads";
  let seen = Hashtbl.create 8 and slots = Hashtbl.create 8 in
  List.iter
    (fun (l, line, off) ->
      if Hashtbl.mem seen l then err "duplicate location %s" l;
      Hashtbl.replace seen l ();
      if line < 0 then err "location %s: negative line %d" l line;
      if off < 0 || off >= line_words then
        err "location %s: offset %d outside line of %d words" l off line_words;
      if Hashtbl.mem slots (line, off) then
        err "location %s: slot %d.%d already taken" l line off;
      Hashtbl.replace slots (line, off) ())
    p.layout;
  let names = Hashtbl.create 8 in
  List.iter (fun (l, _, _) -> Hashtbl.replace names l ()) p.layout;
  List.iteri
    (fun t ops ->
      List.iter
        (fun o ->
          match op_loc o with
          | Some l when not (Hashtbl.mem names l) ->
              err "thread %d: undeclared location %s" t l
          | _ -> ())
        ops)
    p.threads;
  List.rev !errs

let well_formed ?line_words p = check ?line_words p = []

(* --- printing ------------------------------------------------------- *)

let pp_op ppf = function
  | St (l, v) -> Fmt.pf ppf "st %s %d" l v
  | Ld (l, r) -> Fmt.pf ppf "ld %s %s" l r
  | Pwb l -> Fmt.pf ppf "pwb %s" l
  | Psync -> Fmt.string ppf "psync"
  | Faa (l, k) -> Fmt.pf ppf "faa %s %d" l k
  | Crash -> Fmt.string ppf "crash"

let pp ppf p =
  Fmt.pf ppf "@[<v>litmus %s" p.name;
  List.iter (fun (l, line, off) -> Fmt.pf ppf "@,loc %s %d %d" l line off)
    p.layout;
  List.iteri
    (fun i ops ->
      Fmt.pf ppf "@,thread t%d" i;
      List.iter (fun o -> Fmt.pf ppf "@,  %a" pp_op o) ops)
    p.threads;
  Fmt.pf ppf "@]"

let to_string p = Fmt.str "%a@." pp p

(* --- parsing (the replay format) ------------------------------------ *)

let of_string (s : string) : (t, string) result =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let tokens_of line =
    String.split_on_char ' ' line
    |> List.filter (fun t -> t <> "")
  in
  let parse_int w k =
    match int_of_string_opt w with
    | Some n -> k n
    | None -> fail "not an integer: %s" w
  in
  let rec go lineno name layout threads cur = function
    | [] ->
        let threads =
          match cur with
          | None -> List.rev threads
          | Some ops -> List.rev (List.rev ops :: threads)
        in
        let p = { name; layout = List.rev layout; threads } in
        (match check p with
        | [] -> Ok p
        | e :: _ -> fail "ill-formed program: %s" e)
    | raw :: rest -> (
        let lineno = lineno + 1 in
        match tokens_of raw with
        | [] | "#" :: _ -> go lineno name layout threads cur rest
        | [ "litmus"; n ] -> go lineno n layout threads cur rest
        | [ "loc"; l; line; off ] ->
            parse_int line (fun line ->
                parse_int off (fun off ->
                    go lineno name ((l, line, off) :: layout) threads cur rest))
        | "thread" :: _ ->
            let threads =
              match cur with
              | None -> threads
              | Some ops -> List.rev ops :: threads
            in
            go lineno name layout threads (Some []) rest
        | toks -> (
            let push op =
              match cur with
              | None -> fail "line %d: op before any 'thread'" lineno
              | Some ops ->
                  go lineno name layout threads (Some (op :: ops)) rest
            in
            match toks with
            | [ "st"; l; v ] -> parse_int v (fun v -> push (St (l, v)))
            | [ "ld"; l; r ] -> push (Ld (l, r))
            | [ "pwb"; l ] -> push (Pwb l)
            | [ "psync" ] -> push Psync
            | [ "faa"; l; k ] -> parse_int k (fun k -> push (Faa (l, k)))
            | [ "crash" ] -> push Crash
            | w :: _ -> fail "line %d: unknown op %s" lineno w
            | [] -> assert false))
  in
  go 0 "anon" [] [] None (String.split_on_char '\n' s)
