(** Seeded random litmus programs for the differential fuzzer, biased
    toward the shapes that stress persist ordering: same-line store
    conflicts, pwb/psync fence placement, and cross-line
    message-passing writers. Plain {!QCheck.Gen} values so the test
    suites can wrap them in the gen_common printing convention. *)

val gen_prog : Prog.t QCheck.Gen.t
(** 2–4 threads of 1–4 ops over 2–4 locations on 1–2 cache lines; at
    most one [Crash], present in two thirds of programs. Always
    well-formed. *)

val shrink : Prog.t QCheck.Shrink.t
(** Drops threads, drops single ops, and simplifies op arguments;
    every candidate stays well-formed (unreferenced locations are
    pruned, keeping at least one). *)

val arb_prog : Prog.t QCheck.arbitrary
(** [gen_prog] with {!Prog.to_string} printing (the replay format) and
    {!shrink}. *)
