(** Differential litmus harness: sample executions of a program in a
    world and require every observed post-crash outcome to lie in the
    matching axiomatic set, with crashmatrix-style shrinking and
    replayable counterexample files. *)

type violation = {
  v_world : World.id;
  v_variant : Axiom.variant;
  v_mutant : World.mutant option;  (** mutant planted at detection time *)
  v_sched_seed : int;
  v_image_seed : int;
  v_observed : int list;
}

type report = {
  r_name : string;
  r_world : World.id;
  r_variant : Axiom.variant;
  r_samples : int;
  r_skipped : bool;  (** axiom state cap hit: nothing was checked *)
  r_states : int;
  r_violations : violation list;
}

val pp_violation : Prog.loc list -> violation Fmt.t

val check :
  ?samples:int ->
  ?seed:int ->
  world:World.id ->
  variant:Axiom.variant ->
  Prog.t ->
  report
(** Run [samples] (default 64) seeded (schedule, crash-image) pairs —
    the stream derives from [seed], so reported pairs replay — and
    collect every outcome outside the allowed set. *)

val first_violation :
  ?samples:int ->
  ?seed:int ->
  worlds:World.id list ->
  variants:Axiom.variant list ->
  Prog.t ->
  violation option

val minimize :
  ?samples:int ->
  ?seed:int ->
  worlds:World.id list ->
  variants:Axiom.variant list ->
  Prog.t ->
  violation ->
  Prog.t * violation
(** Greedy descent through {!Gen.shrink} candidates that still violate
    (re-checked with the same seeds, so deterministic). *)

type fuzz_result = {
  f_tested : int;
  f_skipped : int;  (** programs whose axiom enumeration hit the cap *)
  f_failure : (Prog.t * violation) option;  (** already minimized *)
}

val fuzz :
  ?n:int ->
  ?seed:int ->
  ?samples:int ->
  ?worlds:World.id list ->
  ?variants:Axiom.variant list ->
  unit ->
  fuzz_result
(** Generate [n] (default 500) programs from {!Gen.gen_prog} under a
    [seed]-derived stream and check each; stops at (and minimizes) the
    first violation. *)

val counterexample_to_string : Prog.t -> violation -> string
(** The replay file: the program in {!Prog.to_string} form followed by
    a [# check world=... variant=... sched=... image=... observed=...]
    line ({!Prog.of_string} treats it as a comment). *)

val counterexample_of_string : string -> (Prog.t * violation, string) result

val replay :
  Prog.t -> violation -> [ `Reproduced of int list | `Vanished of int list ]
(** Re-run the recorded (world, variant, mutant, seeds) tuple;
    [`Reproduced] iff the observation is still outside the allowed set.
    The recorded mutant is planted for the run and restored after. *)

val violation_to_json : violation -> Obs.Json.t
val report_to_json : report -> Obs.Json.t
