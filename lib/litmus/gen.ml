(* Random litmus programs, biased toward the shapes that stress
   persist ordering: same-line conflicts, pwb/psync fences, and
   cross-line message passing. Plain QCheck.Gen so the test suites can
   wrap it with the gen_common printing convention. *)

module G = QCheck.Gen

let ( let* ) = G.( >>= )

(* Layouts, weighted toward same-line conflicts. *)
let layouts =
  [
    (4, [ ("x", 0, 0); ("y", 0, 1) ]);  (* one shared line *)
    (3, [ ("x", 0, 0); ("y", 1, 0) ]);  (* two private lines *)
    (3, [ ("x", 0, 0); ("y", 0, 1); ("z", 1, 0) ]);
    (2, [ ("x", 0, 0); ("y", 0, 1); ("z", 1, 0); ("w", 1, 1) ]);
  ]

let gen_layout = G.frequencyl layouts

let gen_op ~locs : Prog.op G.t =
  let loc = G.oneofl locs in
  G.frequency
    [
      (4, G.map2 (fun l v -> Prog.St (l, v)) loc (G.int_range 1 3));
      (2, G.map (fun l -> Prog.Pwb l) loc);
      (2, G.return Prog.Psync);
      (2, G.map2 (fun l r -> Prog.Ld (l, r)) loc (G.oneofl [ "r0"; "r1" ]));
      (1, G.map2 (fun l k -> Prog.Faa (l, k)) loc (G.int_range 1 2));
    ]

(* A message-passing-shaped thread: write data, maybe fence, raise a
   flag on another location. Generated verbatim now and then so the
   cross-line ordering corner is always in the population. *)
let gen_mp_writer ~locs : Prog.op list G.t =
  match locs with
  | data :: flag :: _ ->
      G.map2
        (fun fence_data fence_flag ->
          [ Prog.St (data, 1) ]
          @ (if fence_data then [ Prog.Pwb data; Prog.Psync ] else [])
          @ [ Prog.St (flag, 1) ]
          @ if fence_flag then [ Prog.Pwb flag ] else [])
        G.bool G.bool
  | _ -> G.return []

let gen_thread ~locs : Prog.op list G.t =
  G.frequency
    [
      ( 4,
        let* n = G.int_range 1 4 in
        G.list_size (G.return n) (gen_op ~locs) );
      (1, gen_mp_writer ~locs);
    ]

let gen_prog : Prog.t G.t =
  let* layout = gen_layout in
  let locs = List.map (fun (l, _, _) -> l) layout in
  let* nthreads = G.frequencyl [ (5, 2); (3, 3); (1, 4) ] in
  let* threads = G.list_size (G.return nthreads) (gen_thread ~locs) in
  (* at most one crash, spliced into a random position of a random
     thread (2/3 of programs crash explicitly; the rest crash at end) *)
  let* threads =
    G.frequency
      [
        (1, G.return threads);
        ( 2,
          let* t = G.int_bound (List.length threads - 1) in
          let ops = List.nth threads t in
          let* at = G.int_bound (List.length ops) in
          let ops' =
            List.filteri (fun i _ -> i < at) ops
            @ [ Prog.Crash ]
            @ List.filteri (fun i _ -> i >= at) ops
          in
          G.return (List.mapi (fun i o -> if i = t then ops' else o) threads)
        );
      ]
  in
  G.return { Prog.name = "fuzz"; layout; threads }

(* --- shrinking ------------------------------------------------------ *)

let prune_layout (p : Prog.t) =
  let used =
    List.sort_uniq compare
      (List.concat_map (List.filter_map Prog.op_loc) p.Prog.threads)
  in
  let layout =
    List.filter (fun (l, _, _) -> List.mem l used) p.Prog.layout
  in
  if layout = [] || List.length layout = List.length p.Prog.layout then p
  else { p with Prog.layout }

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let simplify_op = function
  | Prog.St (l, v) when v > 1 -> Some (Prog.St (l, 1))
  | Prog.Faa (l, _) -> Some (Prog.St (l, 1))
  | _ -> None

let shrink (p : Prog.t) yield =
  (* drop a whole thread *)
  if List.length p.Prog.threads > 1 then
    List.iteri
      (fun t _ ->
        yield
          (prune_layout { p with Prog.threads = remove_nth t p.Prog.threads }))
      p.Prog.threads;
  (* drop one op *)
  List.iteri
    (fun t ops ->
      List.iteri
        (fun j _ ->
          let threads =
            List.mapi
              (fun i o -> if i = t then remove_nth j ops else o)
              p.Prog.threads
          in
          yield (prune_layout { p with Prog.threads = threads }))
        ops)
    p.Prog.threads;
  (* simplify one op in place *)
  List.iteri
    (fun t ops ->
      List.iteri
        (fun j o ->
          match simplify_op o with
          | None -> ()
          | Some o' ->
              let threads =
                List.mapi
                  (fun i os ->
                    if i = t then
                      List.mapi (fun k x -> if k = j then o' else x) os
                    else os)
                  p.Prog.threads
              in
              yield { p with Prog.threads = threads })
        ops)
    p.Prog.threads

let arb_prog : Prog.t QCheck.arbitrary =
  QCheck.make ~print:Prog.to_string ~shrink gen_prog
