module Rng = Simnvm.Rng

type violation = {
  v_world : World.id;
  v_variant : Axiom.variant;
  v_mutant : World.mutant option;
  v_sched_seed : int;
  v_image_seed : int;
  v_observed : int list;
}

type report = {
  r_name : string;
  r_world : World.id;
  r_variant : Axiom.variant;
  r_samples : int;
  r_skipped : bool;  (** axiom state cap hit: nothing checked *)
  r_states : int;
  r_violations : violation list;
}

let pp_violation locs ppf v =
  Fmt.pf ppf "world=%s variant=%s%s sched=%d image=%d observed=%a"
    (World.id_name v.v_world)
    (Axiom.variant_name v.v_variant)
    (match v.v_mutant with
    | Some World.Drop_same_line_order -> " mutant=drop-same-line-order"
    | None -> "")
    v.v_sched_seed v.v_image_seed (Axiom.pp_outcome locs) v.v_observed

(* Derive the (sched, image) seed stream for one (program, world,
   variant, seed) check deterministically, so a reported violation's
   seed pair replays bit-for-bit. *)
let check ?(samples = 64) ?(seed = 1) ~world ~variant (p : Prog.t) : report =
  let ax = Axiom.allowed ~variant p in
  if not ax.Axiom.complete then
    {
      r_name = p.Prog.name;
      r_world = world;
      r_variant = variant;
      r_samples = 0;
      r_skipped = true;
      r_states = ax.Axiom.states;
      r_violations = [];
    }
  else begin
    let rng = Rng.create (seed lxor 0x117b5eed) in
    let cfg = World.run_cfg_of_variant variant in
    let violations = ref [] in
    for _ = 1 to samples do
      let sched_seed = 1 + Rng.int rng 1_000_000 in
      let image_seed = 1 + Rng.int rng 1_000_000 in
      let observed = World.run ~world ~cfg ~sched_seed ~image_seed p in
      if not (Axiom.mem_outcome ax observed) then
        violations :=
          {
            v_world = world;
            v_variant = variant;
            v_mutant = World.mutant ();
            v_sched_seed = sched_seed;
            v_image_seed = image_seed;
            v_observed = observed;
          }
          :: !violations
    done;
    {
      r_name = p.Prog.name;
      r_world = world;
      r_variant = variant;
      r_samples = samples;
      r_skipped = false;
      r_states = ax.Axiom.states;
      r_violations = List.rev !violations;
    }
  end

let first_violation ?samples ?seed ~worlds ~variants p =
  List.fold_left
    (fun acc world ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc variant ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let r = check ?samples ?seed ~world ~variant p in
                  match r.r_violations with v :: _ -> Some v | [] -> None))
            None variants)
    None worlds

(* Greedy shrink: keep taking the first shrink candidate that still
   violates (re-checked with the same seeds, so the descent is
   deterministic) until none does. *)
let minimize ?samples ?seed ~worlds ~variants p v =
  let exception Found of Prog.t * violation in
  let rec go p v =
    match
      Gen.shrink p (fun p' ->
          if Prog.well_formed p' then
            match first_violation ?samples ?seed ~worlds ~variants p' with
            | Some v' -> raise (Found (p', v'))
            | None -> ())
    with
    | () -> (p, v)
    | exception Found (p', v') -> go p' v'
  in
  go p v

type fuzz_result = {
  f_tested : int;
  f_skipped : int;
  f_failure : (Prog.t * violation) option;  (** already minimized *)
}

let fuzz ?(n = 500) ?(seed = 1) ?(samples = 8) ?(worlds = World.all_ids)
    ?(variants = [ Axiom.Pcso ]) () : fuzz_result =
  let rand = Random.State.make [| seed lxor 0xF0221e57 |] in
  let skipped = ref 0 in
  let rec loop i =
    if i >= n then { f_tested = n; f_skipped = !skipped; f_failure = None }
    else begin
      let p = QCheck.Gen.generate1 ~rand Gen.gen_prog in
      let p = { p with Prog.name = Fmt.str "fuzz-%d-%d" seed i } in
      if
        List.exists
          (fun v -> not (Axiom.allowed ~variant:v p).Axiom.complete)
          variants
      then begin
        incr skipped;
        loop (i + 1)
      end
      else
        match first_violation ~samples ~seed ~worlds ~variants p with
        | None -> loop (i + 1)
        | Some v ->
            let p', v' = minimize ~samples ~seed ~worlds ~variants p v in
            {
              f_tested = i + 1;
              f_skipped = !skipped;
              f_failure = Some (p', v');
            }
    end
  in
  loop 0

(* --- counterexample files (crashmatrix-style replay) ----------------- *)

let counterexample_to_string p v =
  Fmt.str "%s# check %a\n" (Prog.to_string p)
    (pp_violation (Prog.locs p))
    v

let parse_check_line locs line =
  let kvs =
    String.split_on_char ' ' line
    |> List.filter_map (fun tok ->
           match String.index_opt tok '=' with
           | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) )
           | None -> None)
  in
  let get k = List.assoc_opt k kvs in
  match
    (get "world", get "variant", get "sched", get "image", get "observed")
  with
  | Some w, Some vr, Some s, Some i, Some o -> (
      match
        ( World.id_of_string w,
          Axiom.variant_of_string vr,
          int_of_string_opt s,
          int_of_string_opt i )
      with
      | Some world, Some variant, Some sched, Some image ->
          let observed =
            (* "(d=0,f=1)" or "0,1": accept both by stripping names *)
            String.to_seq o
            |> Seq.filter (fun c ->
                   (c >= '0' && c <= '9') || c = ',' || c = '-')
            |> String.of_seq |> String.split_on_char ','
            |> List.filter (fun s -> s <> "")
            |> List.filter_map int_of_string_opt
          in
          if List.length observed = List.length locs then
            Ok
              {
                v_world = world;
                v_variant = variant;
                v_mutant =
                  (match get "mutant" with
                  | Some "drop-same-line-order" ->
                      Some World.Drop_same_line_order
                  | _ -> None);
                v_sched_seed = sched;
                v_image_seed = image;
                v_observed = observed;
              }
          else Error "check line: observed arity mismatch"
      | _ -> Error "check line: bad world/variant/seed")
  | _ -> Error "check line: missing world/variant/sched/image/observed"

let counterexample_of_string s =
  match Prog.of_string s with
  | Error e -> Error e
  | Ok p -> (
      let check_line =
        String.split_on_char '\n' s
        |> List.find_opt (fun l ->
               let l = String.trim l in
               String.length l > 7 && String.sub l 0 7 = "# check")
      in
      match check_line with
      | None -> Error "no '# check ...' line"
      | Some l -> (
          match parse_check_line (Prog.locs p) (String.trim l) with
          | Ok v -> Ok (p, v)
          | Error e -> Error e))

(* Re-run the recorded seed pair; [`Reproduced] iff the observation is
   still outside the allowed set. Plants/restores the recorded mutant
   around the run. *)
let replay (p : Prog.t) (v : violation) =
  let saved = World.mutant () in
  World.set_mutant v.v_mutant;
  Fun.protect
    ~finally:(fun () -> World.set_mutant saved)
    (fun () ->
      let cfg = World.run_cfg_of_variant v.v_variant in
      let observed =
        World.run ~world:v.v_world ~cfg ~sched_seed:v.v_sched_seed
          ~image_seed:v.v_image_seed p
      in
      let ax = Axiom.allowed ~variant:v.v_variant p in
      if ax.Axiom.complete && not (Axiom.mem_outcome ax observed) then
        `Reproduced observed
      else `Vanished observed)

(* --- JSON ------------------------------------------------------------ *)

let violation_to_json v =
  Obs.Json.Obj
    [
      ("world", Obs.Json.String (World.id_name v.v_world));
      ("variant", Obs.Json.String (Axiom.variant_name v.v_variant));
      ( "mutant",
        match v.v_mutant with
        | Some World.Drop_same_line_order ->
            Obs.Json.String "drop-same-line-order"
        | None -> Obs.Json.Null );
      ("sched_seed", Obs.Json.Int v.v_sched_seed);
      ("image_seed", Obs.Json.Int v.v_image_seed);
      ( "observed",
        Obs.Json.List (List.map (fun x -> Obs.Json.Int x) v.v_observed) );
    ]

let report_to_json r =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String r.r_name);
      ("world", Obs.Json.String (World.id_name r.r_world));
      ("variant", Obs.Json.String (Axiom.variant_name r.r_variant));
      ("samples", Obs.Json.Int r.r_samples);
      ("skipped", Obs.Json.Bool r.r_skipped);
      ("states", Obs.Json.Int r.r_states);
      ( "violations",
        Obs.Json.List (List.map violation_to_json r.r_violations) );
    ]
