module Memsys = Simnvm.Memsys
module Refmodel = Simnvm.Refmodel
module Rng = Simnvm.Rng
module Ir = Analysis.Ir
module Exec = Analysis.Exec

type id = Kernel | Refm | Ir_mem

let id_name = function Kernel -> "kernel" | Refm -> "ref" | Ir_mem -> "ir"

let id_of_string = function
  | "kernel" -> Some Kernel
  | "ref" -> Some Refm
  | "ir" -> Some Ir_mem
  | _ -> None

let all_ids = [ Kernel; Refm; Ir_mem ]

(* --- planted kernel mutant (the Runtime.set_mutant pattern) --------- *)

type mutant = Drop_same_line_order

let mutant_hook : mutant option ref = ref None
let set_mutant m = mutant_hook := m
let mutant () = !mutant_hook

(* --- memory-system configuration ------------------------------------ *)

let line_words = Simnvm.Addr.default_line_words

type run_cfg = { eadr : bool; ablation : bool; evict_rate : float }

let default_run_cfg = { eadr = false; ablation = false; evict_rate = 0.4 }

let run_cfg_of_variant = function
  | Axiom.Pcso | Axiom.Pcso_lazy -> default_run_cfg
  | Axiom.Eadr -> { default_run_cfg with eadr = true }
  | Axiom.Ablation -> { default_run_cfg with ablation = true }

let mem_config ~(cfg : run_cfg) ~seed =
  let pcso =
    (not cfg.ablation) && not (mutant () = Some Drop_same_line_order)
  in
  {
    Memsys.default_config with
    Memsys.nvm_words = 32 * line_words;
    dram_words = 8 * line_words;
    line_words;
    (* one set of four ways: enough associativity that litmus layouts
       (at most 4 lines) never suffer a forced capacity eviction — which
       would make some never-persisted outcomes unreachable and break
       the completeness equality — while keeping the slot count low so
       the spontaneous-eviction lottery (a random slot per draw)
       actually hits the dirty litmus lines often *)
    sets = 1;
    ways = 4;
    evict_rate = cfg.evict_rate;
    seed;
    eadr = cfg.eadr;
    pcso;
    faults = None;
  }

let addr_of_loc p l = (Prog.line_of p l * line_words) + Prog.offset_of p l
let line_base lid = lid * line_words

(* --- shared schedule: the interp/run_mem LCG over runnable threads --- *)

let make_sched sched_seed =
  let state = ref ((sched_seed * 0x9E3779B9) + 0x85EBCA6B) in
  fun bound ->
    state := (!state * 25214903917) + 11;
    let x = (!state lsr 17) land 0x3FFFFFFF in
    x mod bound

(* Drive one schedule of the program against load/store/pwb/psync
   callbacks, one op per scheduler pick; returns true if a [Crash]
   executed. *)
let drive ~sched_seed ~(load : int -> int) ~(store : int -> int -> unit)
    ~(pwb : int -> unit) ~(psync : unit -> unit) (p : Prog.t) : bool =
  let addr l = addr_of_loc p l in
  let bodies = Array.of_list (List.map Array.of_list p.Prog.threads) in
  let pcs = Array.map (fun _ -> 0) bodies in
  let next = make_sched sched_seed in
  let halted = ref false in
  let runnable () =
    List.filter
      (fun t -> pcs.(t) < Array.length bodies.(t))
      (List.init (Array.length bodies) (fun t -> t))
  in
  let rec loop () =
    if not !halted then
      match runnable () with
      | [] -> ()
      | rs ->
          let t = List.nth rs (next (List.length rs)) in
          (match bodies.(t).(pcs.(t)) with
          | Prog.St (l, v) -> store (addr l) v
          | Prog.Ld (l, _) -> ignore (load (addr l))
          | Prog.Pwb l -> pwb (addr l)
          | Prog.Psync -> psync ()
          | Prog.Faa (l, k) -> store (addr l) (load (addr l) + k)
          | Prog.Crash -> halted := true);
          pcs.(t) <- pcs.(t) + 1;
          loop ()
  in
  loop ();
  !halted

(* The adversarial crash image, sampled: for each litmus line still
   cached-dirty at the crash point, a coin decides whether its in-flight
   write-back completed (pwb: a PCSO-legal whole-line persist — also
   legal under the ablation axioms, which admit every subset). *)
let sample_flushes ~image_seed ~is_dirty ~flush lines =
  let rng = Rng.create (image_seed lxor 0x1ea51f1a) in
  List.iter
    (fun lid ->
      let keep = Rng.bool rng in
      (* draw the coin for every line so the stream is layout-stable *)
      if keep && is_dirty (line_base lid) then flush (line_base lid))
    lines

let outcome_of ~persisted p =
  List.map (fun l -> persisted (addr_of_loc p l)) (Prog.locs p)

(* --- world 1: the flat kernel --------------------------------------- *)

let run_kernel ~cfg ~sched_seed ~image_seed p =
  let mem = Memsys.create (mem_config ~cfg ~seed:image_seed) in
  ignore
    (drive ~sched_seed ~load:(Memsys.load mem) ~store:(Memsys.store mem)
       ~pwb:(Memsys.pwb mem)
       ~psync:(fun () -> Memsys.psync mem)
       p);
  sample_flushes ~image_seed
    ~is_dirty:(Memsys.is_cached_dirty mem)
    ~flush:(Memsys.pwb mem) (Prog.lines p);
  Memsys.crash mem;
  outcome_of ~persisted:(Memsys.persisted mem) p

(* --- world 2: the reference model ------------------------------------ *)

let run_ref ~cfg ~sched_seed ~image_seed p =
  let m = Refmodel.create (mem_config ~cfg ~seed:image_seed) in
  ignore
    (drive ~sched_seed ~load:(Refmodel.load m) ~store:(Refmodel.store m)
       ~pwb:(Refmodel.pwb m)
       ~psync:(fun () -> Refmodel.psync m)
       p);
  sample_flushes ~image_seed
    ~is_dirty:(Refmodel.is_cached_dirty m)
    ~flush:(Refmodel.pwb m) (Prog.lines p);
  Refmodel.crash m;
  outcome_of ~persisted:(Refmodel.persisted m) p

(* --- world 3: analyzer IR over the kernel (Exec.run_mem) ------------- *)

let halt_var = "__halt"

let compile (p : Prog.t) : Ir.program =
  let stmt = function
    | Prog.St (l, v) -> Ir.Assign (l, Ir.Int v)
    | Prog.Ld (l, r) -> Ir.Assign (r, Ir.Var l)
    | Prog.Pwb l -> Ir.Pwb l
    | Prog.Psync -> Ir.Psync
    | Prog.Faa (l, k) ->
        (* a single atomic Assign: interp/run_mem execute one statement
           per scheduler step, which preserves RMW atomicity *)
        Ir.Assign (l, Ir.Binop (Ir.Add, Ir.Var l, Ir.Int k))
    | Prog.Crash -> Ir.Assign (halt_var, Ir.Int 1)
  in
  {
    Ir.pname = p.Prog.name;
    persistent = List.map (fun l -> (l, 0)) (Prog.locs p);
    transient =
      List.map (fun r -> (r, 0)) (Prog.regs p)
      @ (if Prog.has_crash p then [ (halt_var, 0) ] else []);
    threads =
      List.mapi
        (fun i ops -> { Ir.tname = Fmt.str "t%d" i; body = List.map stmt ops })
        p.Prog.threads;
  }

let run_ir ~cfg ~sched_seed ~image_seed p =
  let mem = Memsys.create (mem_config ~cfg ~seed:image_seed) in
  let addr_of v =
    if List.mem v (Prog.locs p) then Some (addr_of_loc p v) else None
  in
  ignore
    (Exec.run_mem ~sched_seed ~halt_var ~mem ~addr_of (compile p));
  sample_flushes ~image_seed
    ~is_dirty:(Memsys.is_cached_dirty mem)
    ~flush:(Memsys.pwb mem) (Prog.lines p);
  Memsys.crash mem;
  outcome_of ~persisted:(Memsys.persisted mem) p

let run ~world ?(cfg = default_run_cfg) ~sched_seed ~image_seed p =
  match world with
  | Kernel -> run_kernel ~cfg ~sched_seed ~image_seed p
  | Refm -> run_ref ~cfg ~sched_seed ~image_seed p
  | Ir_mem -> run_ir ~cfg ~sched_seed ~image_seed p

(* --- exhaustive reference exploration (completeness oracle) ---------- *)

(* Systematic enumeration of every interleaving with every placement of
   spontaneous write-backs, against the reference model with random
   eviction off: each path replays its decision prefix on a fresh model
   (the model has no snapshot hook), branching on thread steps and on
   pwb of any currently-dirty litmus line — an inserted pwb IS a
   spontaneous flush under the eager-clwb substrate. Flush decisions
   stay available after the last instruction (terminal states record
   their outcome and keep branching), which covers every subset of
   residual dirty lines. Termination: ops are finite and a flush
   strictly cleans a line, so paths are finite. *)

type dec = Dstep of int | Dflush of int

let exhaustive_ref ?(max_paths = 200_000) (p : Prog.t) :
    Axiom.Outcomes.t option =
  let cfg = { default_run_cfg with evict_rate = 0.0 } in
  let bodies = Array.of_list (List.map Array.of_list p.Prog.threads) in
  let nt = Array.length bodies in
  let outcomes = ref Axiom.Outcomes.empty in
  let paths = ref 0 in
  let capped = ref false in
  let addr l = addr_of_loc p l in
  let replay decs =
    let m = Refmodel.create (mem_config ~cfg ~seed:1) in
    let pcs = Array.make nt 0 in
    let halted = ref false in
    let exec_op t =
      (match bodies.(t).(pcs.(t)) with
      | Prog.St (l, v) -> Refmodel.store m (addr l) v
      | Prog.Ld (l, _) -> ignore (Refmodel.load m (addr l))
      | Prog.Pwb l -> Refmodel.pwb m (addr l)
      | Prog.Psync -> Refmodel.psync m
      | Prog.Faa (l, k) ->
          Refmodel.store m (addr l) (Refmodel.load m (addr l) + k)
      | Prog.Crash -> halted := true);
      pcs.(t) <- pcs.(t) + 1
    in
    List.iter
      (function
        | Dstep t -> exec_op t
        | Dflush lid -> Refmodel.pwb m (line_base lid))
      decs;
    (m, pcs, !halted)
  in
  let rec explore decs =
    if not !capped then begin
      incr paths;
      if !paths > max_paths then capped := true
      else begin
        let m, pcs, halted = replay decs in
        let terminal =
          halted
          ||
          let ok = ref true in
          Array.iteri
            (fun t pc -> if pc < Array.length bodies.(t) then ok := false)
            pcs;
          !ok
        in
        if terminal then
          outcomes :=
            Axiom.Outcomes.add
              (outcome_of ~persisted:(Refmodel.persisted m) p)
              !outcomes;
        if not halted then
          Array.iteri
            (fun t body ->
              if pcs.(t) < Array.length body then explore (decs @ [ Dstep t ]))
            bodies;
        List.iter
          (fun lid ->
            if Refmodel.is_cached_dirty m (line_base lid) then
              explore (decs @ [ Dflush lid ]))
          (Prog.lines p)
      end
    end
  in
  explore [];
  if !capped then None else Some !outcomes
