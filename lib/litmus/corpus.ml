(* Named paper-derived litmus tests. Layout convention: locations
   sharing a first coordinate share a cache line. Every program's
   PCSO-allowed set is pinned as a golden in test/test_litmus.ml. *)

type entry = {
  e_name : string;
  e_prog : Prog.t;
  e_variants : Axiom.variant list;
      (* variants whose soundness the harness checks for this entry *)
  e_note : string;
}

let p name layout threads = { Prog.name; layout; threads }

let std = [ Axiom.Pcso; Axiom.Eadr; Axiom.Ablation ]

let sb =
  {
    e_name = "sb";
    e_prog =
      p "sb"
        [ ("x", 0, 0); ("y", 1, 0) ]
        [
          [ Prog.St ("x", 1); Prog.Pwb "x"; Prog.Psync; Prog.Ld ("y", "r0") ];
          [ Prog.St ("y", 1); Prog.Pwb "y"; Prog.Psync; Prog.Ld ("x", "r1") ];
        ];
    e_variants = std;
    e_note = "store buffering, fully fenced: both stores durable at end";
  }

let mp_fenced =
  {
    e_name = "mp-fenced";
    e_prog =
      p "mp-fenced"
        [ ("d", 0, 0); ("f", 1, 0) ]
        [
          [
            Prog.St ("d", 1); Prog.Pwb "d"; Prog.Psync; Prog.St ("f", 1);
            Prog.Pwb "f";
          ];
          [ Prog.Ld ("f", "r0"); Prog.Ld ("d", "r1"); Prog.Crash ];
        ];
    e_variants = std;
    e_note = "message passing across lines, fenced: f=1 implies d=1";
  }

let mp_unfenced =
  {
    e_name = "mp-unfenced";
    e_prog =
      p "mp-unfenced"
        [ ("d", 0, 0); ("f", 1, 0) ]
        [
          [ Prog.St ("d", 1); Prog.St ("f", 1) ];
          [ Prog.Ld ("f", "r0"); Prog.Ld ("d", "r1"); Prog.Crash ];
        ];
    e_variants = std;
    e_note = "cross-line MP without fences: the flag may persist first";
  }

let mp_same_line =
  {
    e_name = "mp-same-line";
    e_prog =
      p "mp-same-line"
        [ ("d", 0, 0); ("f", 0, 1) ]
        [
          [ Prog.St ("d", 1); Prog.St ("f", 1) ];
          [ Prog.Ld ("f", "r0"); Prog.Ld ("d", "r1"); Prog.Crash ];
        ];
    e_variants = std;
    e_note =
      "MP within one line: PCSO line snapshots forbid f=1,d=0 with no \
       fence at all — the InCLL property; the word ablation readmits it";
  }

let incll_war =
  {
    e_name = "incll-war";
    e_prog =
      p "incll-war"
        [ ("x", 0, 0); ("y", 0, 1) ]
        [ [ Prog.St ("x", 1); Prog.St ("y", 1); Prog.St ("x", 2) ] ];
    e_variants = std;
    e_note =
      "same-line overwrite: any persisted prefix of the store order, \
       never x=2 without y=1";
  }

let commit_crash =
  {
    e_name = "commit-crash";
    e_prog =
      p "commit-crash"
        [ ("d", 0, 0); ("c", 1, 0) ]
        [
          [
            Prog.St ("d", 1); Prog.Pwb "d"; Prog.Psync; Prog.St ("c", 1);
            Prog.Pwb "c"; Prog.Psync; Prog.Crash;
          ];
        ];
    e_variants = std;
    e_note =
      "fully-fenced commit record: the crash after the second fence \
       observes exactly d=1,c=1";
  }

let faa_contend =
  {
    e_name = "faa-contend";
    e_prog =
      p "faa-contend"
        [ ("x", 0, 0) ]
        [
          [ Prog.Faa ("x", 1) ]; [ Prog.Faa ("x", 1) ]; [ Prog.Crash ];
        ];
    e_variants = std;
    e_note = "contended RMW with a racing crash: x persists 0, 1 or 2";
  }

let pwb_no_psync =
  {
    e_name = "pwb-no-psync";
    e_prog =
      p "pwb-no-psync"
        [ ("x", 0, 0) ]
        [ [ Prog.St ("x", 1); Prog.Pwb "x"; Prog.Crash ] ];
    e_variants = [ Axiom.Pcso; Axiom.Pcso_lazy; Axiom.Eadr; Axiom.Ablation ];
    e_note =
      "unfenced pwb: the eager substrate always persists (Pcso allows \
       only x=1); the lazy-pwb spec also allows x=0";
  }

let eadr_noloss =
  {
    e_name = "eadr-noloss";
    e_prog =
      p "eadr-noloss"
        [ ("x", 0, 0); ("y", 1, 0) ]
        [ [ Prog.St ("x", 1); Prog.St ("y", 1); Prog.Crash ] ];
    e_variants = std;
    e_note =
      "no fences across two lines: eADR admits only the no-loss state, \
       plain PCSO admits every write-back subset";
  }

let ablation_split =
  {
    e_name = "ablation-split";
    e_prog =
      p "ablation-split"
        [ ("x", 0, 0); ("y", 0, 1) ]
        [ [ Prog.St ("x", 1); Prog.St ("y", 1) ] ];
    e_variants = std;
    e_note =
      "two stores, one line: PCSO forbids y-without-x; word-granular \
       write-back splits the line and readmits it";
  }

let mp_chain =
  {
    e_name = "mp-chain";
    e_prog =
      p "mp-chain"
        [ ("a", 0, 0); ("b", 1, 0); ("c", 2, 0) ]
        [
          [ Prog.St ("a", 1); Prog.Pwb "a"; Prog.Psync; Prog.St ("b", 1) ];
          [
            Prog.Ld ("b", "r0"); Prog.Pwb "b"; Prog.Psync; Prog.St ("c", 1);
          ];
          [ Prog.Crash ];
        ];
    e_variants = std;
    e_note = "a fence chain through two threads with a racing crash";
  }

let all =
  [
    sb; mp_fenced; mp_unfenced; mp_same_line; incll_war; commit_crash;
    faa_contend; pwb_no_psync; eadr_noloss; ablation_split; mp_chain;
  ]

let find name = List.find_opt (fun e -> e.e_name = name) all
