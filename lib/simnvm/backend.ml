(* Persistence-backend seam: the Memsys-shaped operations the runtime,
   the recovery procedure and the persistent data structures actually
   consume, lifted into a first-class record so a second backend (a
   memory-mapped file, a remote store) can slide in underneath them.

   A record of closures rather than a functor, deliberately: it matches
   the existing Pds.Mem_iface idiom, keeps every module monomorphic (no
   functor explosion through Runtime/Recovery/Heap), and lets one world
   hold backends of different provenance side by side (the prockill
   parent recovers a file image while its oracles run over a simulated
   one). The simulator keeps its direct, zero-allocation call path in
   Simsched.Env; the record is consulted on the cold paths only. *)

type t = {
  name : string;  (* "simnvm", "filemem:<path>", ... *)
  line_words : int;
  nvm_words : int;
  dram_words : int;
  load : int -> int;
  store : int -> int -> unit;
  pwb : int -> unit;
  psync : unit -> unit;
  peek : int -> int;
  persisted : int -> int;
  poke_persisted : int -> int -> unit;
  is_nvm : int -> bool;
  crash : unit -> unit;
  scrub_line : int -> unit;
  flush_all : unit -> unit;
  image : unit -> int array;
  subscribe : (Event.t -> unit) -> unit -> unit;
  set_charge : (float -> unit) -> unit;
  get_charge : unit -> float -> unit;
  set_tid_provider : (unit -> int) -> unit;
}

let of_memsys m =
  let cfg = Memsys.config m in
  {
    name = "simnvm";
    line_words = cfg.Memsys.line_words;
    nvm_words = cfg.Memsys.nvm_words;
    dram_words = cfg.Memsys.dram_words;
    load = Memsys.load m;
    store = Memsys.store m;
    pwb = Memsys.pwb m;
    psync = (fun () -> Memsys.psync m);
    peek = Memsys.peek m;
    persisted = Memsys.persisted m;
    poke_persisted = Memsys.poke_persisted m;
    is_nvm = Memsys.is_nvm m;
    crash = (fun () -> Memsys.crash m);
    scrub_line = Memsys.scrub_line m;
    flush_all = (fun () -> Memsys.flush_all m);
    image = (fun () -> Memsys.image m);
    subscribe =
      (fun f ->
        let s = Memsys.subscribe m f in
        fun () -> Memsys.unsubscribe m s);
    set_charge = Memsys.set_charge m;
    get_charge = (fun () -> Memsys.get_charge m);
    set_tid_provider = Memsys.set_tid_provider m;
  }
