(** Persistence-backend seam: the {!Memsys}-shaped operations consumed by
    the checkpointing runtime, the recovery procedure and the persistent
    data structures, as a record of closures (the {!Pds.Mem_iface} idiom).

    Backends implement PCSO-flavoured persistence over some medium: word
    [load]/[store] through a volatile view, [pwb]/[psync] to make lines
    durable, a crash-surviving image read through [persisted], and enough
    geometry ([line_words], [nvm_words], [dram_words]) for the runtime to
    compute its metadata {!Respct.Layout}. {!of_memsys} adapts the
    simulator; [lib/filemem] provides the memory-mapped-file backend.

    Contract notes:
    - addresses in [0, nvm_words) are durable-capable, addresses in
      [nvm_words, nvm_words + dram_words) are volatile scratch;
    - [persisted], [peek], [poke_persisted] and [image] are host-level
      oracle views: no latency charge, no event;
    - a backend whose medium can fail raises {!Memsys.Media_error} from
      [load] exactly as the simulator does, and [scrub_line] clears the
      failure (zeroing the line);
    - [subscribe] returns the matching unsubscribe thunk. *)

type t = {
  name : string;
  line_words : int;
  nvm_words : int;
  dram_words : int;
  load : int -> int;
  store : int -> int -> unit;
  pwb : int -> unit;
  psync : unit -> unit;
  peek : int -> int;  (** logical (volatile-coherent) view; free, silent *)
  persisted : int -> int;  (** durable image view; free, silent *)
  poke_persisted : int -> int -> unit;
  is_nvm : int -> bool;
  crash : unit -> unit;  (** drop all volatile state, keep the image *)
  scrub_line : int -> unit;
  flush_all : unit -> unit;
  image : unit -> int array;
  subscribe : (Event.t -> unit) -> unit -> unit;
  set_charge : (float -> unit) -> unit;
  get_charge : unit -> float -> unit;
  set_tid_provider : (unit -> int) -> unit;
}

val of_memsys : Memsys.t -> t
(** The simulator as a backend. Hot paths in [Simsched.Env] keep calling
    {!Memsys} directly; this record serves the cold paths (bootstrap,
    recovery, oracle reads). *)
