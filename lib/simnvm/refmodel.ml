(* Naive, obviously-correct reference memory model: the executable
   specification the optimized [Memsys] kernel is differential-tested
   against (test/test_refmodel.ml).

   Same decision procedure — set placement, LRU victims, prefetch window,
   coherence charges, every RNG draw in the same order — but built from
   deliberately simple structures: sparse word-maps for the backing
   stores (an explicit "the NVMM image is a function from word address to
   value" reading of DESIGN.md's PCSO spec), an explicit dirty-offset
   *set* per line instead of a bitmask, option-valued cache slots, a plain
   list for the prefetch ring, lists for media-fault state. No
   precomputed masks, no blits, no fast paths: every transfer is a
   word-at-a-time loop over the spec.

   The model always constructs its events (appending to a list) and
   accumulates its charges in operation order, so a run can be compared
   against Memsys event-for-event and to float equality on total cost. *)

type rline = {
  lineno : int;
  words : int array;
  mutable dirty_offs : int list; (* explicit dirty-word set, unordered *)
  mutable lru : int;
  mutable last_writer : int;
}

type t = {
  cfg : Memsys.config;
  pmem : (int, int) Hashtbl.t; (* word address -> value; absent = 0 *)
  dram : (int, int) Hashtbl.t;
  slots : rline option array; (* sets * ways, row-major by set *)
  mutable stamp : int;
  rng : Rng.t;
  mutable recent : int list; (* recently filled lines, newest first *)
  mutable poisoned : int list;
  mutable transient : int list;
  mutable crash_count : int;
  mutable tid : unit -> int;
  mutable charged : float;
  mutable events : Event.t list; (* newest first *)
}

let create cfg =
  if cfg.Memsys.nvm_words mod cfg.Memsys.line_words <> 0 then
    invalid_arg "Refmodel.create: nvm_words must be line-aligned";
  {
    cfg;
    pmem = Hashtbl.create 1024;
    dram = Hashtbl.create 1024;
    slots = Array.make (cfg.Memsys.sets * cfg.Memsys.ways) None;
    stamp = 0;
    rng = Rng.create cfg.Memsys.seed;
    recent = [];
    poisoned = [];
    transient = [];
    crash_count = 0;
    tid = (fun () -> -1);
    charged = 0.0;
    events = [];
  }

let set_tid_provider t f = t.tid <- f
let total_charge t = t.charged
let events t = List.rev t.events
let clear_events t = t.events <- []

let emit t ev = t.events <- ev :: t.events
let charge t ns = t.charged <- t.charged +. ns

let lw t = t.cfg.Memsys.line_words
let is_nvm t addr = addr < t.cfg.Memsys.nvm_words

let check_addr t addr =
  if addr < 0 || addr >= t.cfg.Memsys.nvm_words + t.cfg.Memsys.dram_words then
    invalid_arg (Printf.sprintf "Refmodel: address %d out of range" addr)

let backing_read t addr =
  let m = if is_nvm t addr then t.pmem else t.dram in
  match Hashtbl.find_opt m addr with Some v -> v | None -> 0

let backing_write t addr v =
  Hashtbl.replace (if is_nvm t addr then t.pmem else t.dram) addr v

let set_of t lineno =
  (lineno * 0x9E3779B1) lsr 11 land max_int mod t.cfg.Memsys.sets

let find t lineno =
  let base = set_of t lineno * t.cfg.Memsys.ways in
  let rec scan i =
    if i >= t.cfg.Memsys.ways then None
    else
      match t.slots.(base + i) with
      | Some l when l.lineno = lineno -> Some l
      | _ -> scan (i + 1)
  in
  scan 0

(* Victim slot index: first invalid way, else least-recently-used way
   (lowest way index wins ties, like the kernel's strict [<] scan). *)
let victim_slot t lineno =
  let base = set_of t lineno * t.cfg.Memsys.ways in
  let best = ref base in
  (try
     for i = 0 to t.cfg.Memsys.ways - 1 do
       match t.slots.(base + i) with
       | None ->
           best := base + i;
           raise Exit
       | Some l -> (
           match t.slots.(!best) with
           | Some b when l.lru < b.lru -> best := base + i
           | _ -> ())
     done
   with Exit -> ());
  !best

let line_dirty l = l.dirty_offs <> []
let is_dirty_off l off = List.mem off l.dirty_offs

let write_back ?(complete = true) t l =
  let base = l.lineno * lw t in
  let nvm = is_nvm t base in
  if t.cfg.Memsys.pcso || complete then begin
    for off = 0 to lw t - 1 do
      backing_write t (base + off) l.words.(off)
    done;
    l.dirty_offs <- []
  end
  else
    for off = 0 to lw t - 1 do
      if is_dirty_off l off && Rng.bool t.rng then begin
        backing_write t (base + off) l.words.(off);
        l.dirty_offs <- List.filter (fun o -> o <> off) l.dirty_offs
      end
    done;
  emit t
    (Event.Writeback
       { backing = (if nvm then Event.Nvm else Event.Dram); line = l.lineno });
  nvm

let check_media t lineno =
  if List.mem lineno t.transient then begin
    t.transient <- List.filter (fun l -> l <> lineno) t.transient;
    let addr = lineno * lw t in
    emit t (Event.Media_error { addr; line = lineno; transient = true });
    raise (Memsys.Media_error { addr; line = lineno; transient = true })
  end;
  if List.mem lineno t.poisoned then begin
    let addr = lineno * lw t in
    emit t (Event.Media_error { addr; line = lineno; transient = false });
    raise (Memsys.Media_error { addr; line = lineno; transient = false })
  end

let fill t lineno =
  check_media t lineno;
  let lat = t.cfg.Memsys.latency in
  let slot = victim_slot t lineno in
  (match t.slots.(slot) with
  | Some old when line_dirty old ->
      let nvm = write_back t old in
      charge t
        (if nvm then lat.Latency.nvm_writeback_ns
         else lat.Latency.dram_writeback_ns)
  | _ -> ());
  let base = lineno * lw t in
  let l =
    {
      lineno;
      words = Array.init (lw t) (fun off -> backing_read t (base + off));
      dirty_offs = [];
      lru = 0;
      last_writer = -1;
    }
  in
  t.slots.(slot) <- Some l;
  let prefetched = List.mem (lineno - 1) t.recent in
  t.recent <-
    lineno :: (if List.length t.recent >= 256 then
                 List.filteri (fun i _ -> i < 255) t.recent
               else t.recent);
  let nvm = is_nvm t base in
  emit t
    (Event.Miss
       {
         backing = (if nvm then Event.Nvm else Event.Dram);
         addr = base;
         prefetched;
       });
  let miss_ns =
    if prefetched then 12.0
    else if nvm then lat.Latency.nvm_miss_ns
    else lat.Latency.dram_miss_ns
  in
  charge t miss_ns;
  l

let lookup t addr =
  let lineno = addr / lw t in
  let l =
    match find t lineno with
    | Some l ->
        emit t (Event.Hit { addr });
        charge t t.cfg.Memsys.latency.Latency.cache_hit_ns;
        l
    | None -> fill t lineno
  in
  t.stamp <- t.stamp + 1;
  l.lru <- t.stamp;
  l

let spontaneous_eviction t =
  if
    t.cfg.Memsys.evict_rate > 0.0
    && Rng.float t.rng < t.cfg.Memsys.evict_rate
  then begin
    let i = Rng.int t.rng (Array.length t.slots) in
    match t.slots.(i) with
    | Some l when line_dirty l ->
        ignore (write_back ~complete:false t l);
        emit t (Event.Eviction { line = l.lineno })
    | _ -> ()
  end

let load t addr =
  check_addr t addr;
  emit t (Event.Load { tid = t.tid (); addr });
  let l = lookup t addr in
  let me = t.tid () in
  if l.last_writer >= 0 && l.last_writer <> me then begin
    charge t 60.0 (* coherence read *);
    l.last_writer <- -1
  end;
  l.words.(addr mod lw t)

let store t addr v =
  check_addr t addr;
  emit t (Event.Store { tid = t.tid (); addr });
  let l = lookup t addr in
  let me = t.tid () in
  if me >= 0 && l.last_writer <> me then charge t 80.0 (* coherence write *);
  if me >= 0 then l.last_writer <- me;
  let off = addr mod lw t in
  l.words.(off) <- v;
  if not (is_dirty_off l off) then l.dirty_offs <- off :: l.dirty_offs;
  charge t t.cfg.Memsys.latency.Latency.store_extra_ns;
  spontaneous_eviction t

let pwb t addr =
  check_addr t addr;
  let found = find t (addr / lw t) in
  let dirty = match found with Some l -> line_dirty l | None -> false in
  emit t (Event.Pwb { tid = t.tid (); addr; dirty });
  if dirty then begin
    ignore (write_back t (Option.get found));
    charge t t.cfg.Memsys.latency.Latency.clwb_ns
  end
  else charge t (t.cfg.Memsys.latency.Latency.clwb_ns /. 8.0)

let psync t =
  emit t (Event.Psync { tid = t.tid () });
  charge t t.cfg.Memsys.latency.Latency.sfence_ns

(* Seeded fault injection at a crash: the same decision tree, draw for
   draw, as the kernel's, over the naive structures. *)
let inject_crash_faults t (fc : Memsys.fault_config) =
  let rng =
    Rng.create (fc.Memsys.fault_seed + (t.crash_count * 0x9E3779B1))
  in
  let lwn = lw t in
  if not t.cfg.Memsys.eadr then
    Array.iter
      (fun slot ->
        match slot with
        | Some l when line_dirty l && is_nvm t (l.lineno * lwn) ->
            let mask =
              List.fold_left (fun m off -> m lor (1 lsl off)) 0 l.dirty_offs
            in
            if fc.Memsys.tear_rate > 0.0 && Rng.float rng < fc.Memsys.tear_rate
            then begin
              let kept = ref 0 in
              for off = 0 to lwn - 1 do
                if mask land (1 lsl off) <> 0 && Rng.bool rng then
                  kept := !kept lor (1 lsl off)
              done;
              if !kept = mask then begin
                let dirty_offs =
                  List.filter
                    (fun off -> mask land (1 lsl off) <> 0)
                    (List.init lwn Fun.id)
                in
                let drop =
                  List.nth dirty_offs (Rng.int rng (List.length dirty_offs))
                in
                kept := !kept land lnot (1 lsl drop)
              end;
              for off = 0 to lwn - 1 do
                if !kept land (1 lsl off) <> 0 then
                  backing_write t ((l.lineno * lwn) + off) l.words.(off)
              done;
              emit t
                (Event.Fault_injected
                   (Event.Torn { line = l.lineno; kept = !kept }))
            end;
            if
              fc.Memsys.poison_rate > 0.0
              && Rng.float rng < fc.Memsys.poison_rate
            then begin
              if not (List.mem l.lineno t.poisoned) then
                t.poisoned <- l.lineno :: t.poisoned;
              emit t (Event.Fault_injected (Event.Poisoned { line = l.lineno }))
            end
        | _ -> ())
      t.slots;
  if fc.Memsys.bitflip_rate > 0.0 then begin
    let k =
      int_of_float
        (Float.round
           (fc.Memsys.bitflip_rate *. float_of_int t.cfg.Memsys.nvm_words))
    in
    for _ = 1 to max 1 k do
      let addr = Rng.int rng t.cfg.Memsys.nvm_words in
      let bit = Rng.int rng 62 in
      backing_write t addr (backing_read t addr lxor (1 lsl bit));
      emit t (Event.Fault_injected (Event.Bitflip { addr; bit }))
    done
  end;
  if fc.Memsys.transient_rate > 0.0 then begin
    let nlines = t.cfg.Memsys.nvm_words / lwn in
    let k =
      int_of_float
        (Float.round (fc.Memsys.transient_rate *. float_of_int nlines))
    in
    for _ = 1 to max 1 k do
      let line = Rng.int rng nlines in
      if not (List.mem line t.transient) then t.transient <- line :: t.transient;
      emit t (Event.Fault_injected (Event.Transient_armed { line }))
    done
  end

let crash t =
  emit t (Event.Crash { eadr = t.cfg.Memsys.eadr });
  if t.cfg.Memsys.eadr then
    Array.iter
      (fun slot ->
        match slot with
        | Some l when line_dirty l && is_nvm t (l.lineno * lw t) ->
            ignore (write_back t l)
        | _ -> ())
      t.slots;
  (match t.cfg.Memsys.faults with
  | None -> ()
  | Some fc -> inject_crash_faults t fc);
  t.crash_count <- t.crash_count + 1;
  Array.fill t.slots 0 (Array.length t.slots) None;
  Hashtbl.reset t.dram

let persisted t addr =
  if addr < 0 || addr >= t.cfg.Memsys.nvm_words then
    invalid_arg "Refmodel.persisted: address not in NVMM";
  match Hashtbl.find_opt t.pmem addr with Some v -> v | None -> 0

let image t =
  Array.init t.cfg.Memsys.nvm_words (fun addr -> persisted t addr)

let is_cached_dirty t addr =
  match find t (addr / lw t) with Some l -> line_dirty l | None -> false

let check_nvm_line t lineno =
  if lineno < 0 || lineno * lw t >= t.cfg.Memsys.nvm_words then
    invalid_arg "Refmodel: line not in NVMM"

let poison_line t lineno =
  check_nvm_line t lineno;
  let base = set_of t lineno * t.cfg.Memsys.ways in
  for i = 0 to t.cfg.Memsys.ways - 1 do
    match t.slots.(base + i) with
    | Some l when l.lineno = lineno -> t.slots.(base + i) <- None
    | _ -> ()
  done;
  if not (List.mem lineno t.poisoned) then t.poisoned <- lineno :: t.poisoned

let arm_transient_fault t lineno =
  check_nvm_line t lineno;
  let base = set_of t lineno * t.cfg.Memsys.ways in
  for i = 0 to t.cfg.Memsys.ways - 1 do
    match t.slots.(base + i) with
    | Some l when l.lineno = lineno -> t.slots.(base + i) <- None
    | _ -> ()
  done;
  if not (List.mem lineno t.transient) then t.transient <- lineno :: t.transient

let scrub_line t lineno =
  check_nvm_line t lineno;
  t.poisoned <- List.filter (fun l -> l <> lineno) t.poisoned;
  for off = 0 to lw t - 1 do
    backing_write t ((lineno * lw t) + off) 0
  done;
  emit t (Event.Media_scrub { line = lineno })

let poisoned_lines t = List.sort compare t.poisoned
