(* Simulated memory system: a volatile set-associative cache in front of a
   persistent NVMM image and a volatile DRAM region.

   The address space is split by [nvm_words]: addresses in [0, nvm_words) are
   NVMM-backed (they survive [crash]); addresses in
   [nvm_words, nvm_words + dram_words) are DRAM-backed (lost at a crash).

   Persistency model (PCSO, as on x86 with Intel DCPMM in App Direct mode):
   - stores land in the cache; a dirty line may be written back to its
     backing store at any time (spontaneous eviction, capacity eviction);
   - a write-back copies the line as a whole, so two stores to the same line
     can never persist out of program order -- the property In-Cache-Line
     Logging relies on;
   - [pwb] (clwb) persists one line, [psync] (sfence) orders: here pwb applies
     the write-back eagerly, which is a legal (conservative) PCSO behaviour,
     and psync only charges the fence cost.

   The [pcso] configuration flag exists for the ablation of DESIGN.md (5.1):
   with [pcso = false], a *spontaneous* write-back persists a random subset
   of the line's dirty words (the rest stay dirty and cached), deliberately
   violating same-line ordering; the InCLL crash-consistency property tests
   then fail, demonstrating the invariant is load-bearing. Explicit [pwb]
   and capacity evictions still persist the whole line even under the
   ablation — word-granular hardware reorders persists, it does not lose
   flushed data — which is what keeps the explicitly-flushing baselines
   (Clobber, SOFT, FriedmanQueue) correct under the same ablation. *)

(* Faulty-media model (opt-in, [faults = None] costs nothing): at every
   crash, a dedicated RNG derived from [fault_seed] and the crash ordinal
   decides, per dirty NVMM line, whether its in-flight write-back tears
   (a strict subset of its dirty words persists — whole-line atomicity
   violated, words stay 8-byte atomic), whether the line's media poisons
   (subsequent fills raise {!Media_error} until {!scrub_line}), plus a
   batch of seeded bit flips on persisted words and armed one-shot
   transient read faults. Everything is replayable from the seed. *)
type fault_config = {
  fault_seed : int;
  tear_rate : float; (* per dirty NVMM line at crash *)
  poison_rate : float; (* per dirty NVMM line at crash *)
  bitflip_rate : float; (* expected flips per crash / nvm_words *)
  transient_rate : float; (* expected armed lines per crash / NVMM lines *)
}

let no_faults =
  {
    fault_seed = 0;
    tear_rate = 0.0;
    poison_rate = 0.0;
    bitflip_rate = 0.0;
    transient_rate = 0.0;
  }

type config = {
  nvm_words : int;
  dram_words : int;
  line_words : int;
  sets : int;
  ways : int;
  latency : Latency.t;
  evict_rate : float;
  seed : int;
  eadr : bool;
  pcso : bool;
  faults : fault_config option;
}

let default_config =
  {
    nvm_words = 1 lsl 20;
    dram_words = 1 lsl 18;
    line_words = Addr.default_line_words;
    sets = 1024;
    ways = 8;
    latency = Latency.default;
    evict_rate = 0.002;
    seed = 42;
    eadr = false;
    pcso = true;
    faults = None;
  }

exception Media_error of { addr : int; line : int; transient : bool }

type line = {
  mutable tag : int; (* line index in the address space; -1 = invalid *)
  data : int array;
  mutable dirty : bool;
  mutable dirty_mask : int; (* bitmask of dirty words, for the pcso ablation *)
  mutable lru : int;
  mutable last_writer : int; (* thread that last wrote the line; -1 = shared *)
}

type subscription = int

type t = {
  cfg : config;
  pmem : int array; (* the persistent NVMM image *)
  dram : int array;
  lines : line array; (* sets * ways, row-major by set *)
  mutable stamp : int;
  rng : Rng.t;
  stats : Stats.t;
  mutable subs : (subscription * (Event.t -> unit)) array;
  mutable next_sub : int;
  mutable charge : float -> unit;
  mutable current_tid : unit -> int;
  recent_fills : int array; (* ring of recently filled line numbers *)
  recent_index : (int, int) Hashtbl.t; (* line -> occurrences in the ring *)
  mutable recent_pos : int;
  (* Faulty-media state: poisoned NVMM lines (fills raise until scrubbed)
     and armed one-shot transient read faults. Both tables stay empty with
     [faults = None] unless a host hook plants faults directly. *)
  poisoned : (int, unit) Hashtbl.t;
  transient_pending : (int, unit) Hashtbl.t;
  mutable crash_count : int;
}

let no_charge (_ : float) = ()
let no_tid () = -1

(* Event pipeline. Emission sites guard on [has_subs] before constructing
   the event, so a memory system with every subscriber detached pays only a
   length test per operation. Subscribers run in attach order, which keeps
   event delivery (and therefore anything derived from it) deterministic. *)

let[@inline] has_subs t = Array.length t.subs > 0

let emit t ev =
  let subs = t.subs in
  for i = 0 to Array.length subs - 1 do
    (snd (Array.unsafe_get subs i)) ev
  done

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.subs <- Array.append t.subs [| (id, f) |];
  id

let unsubscribe t id =
  t.subs <- Array.of_list (List.filter (fun (i, _) -> i <> id) (Array.to_list t.subs))

let clear_subscribers t = t.subs <- [||]
let subscriber_count t = Array.length t.subs

(* MESI-style coherence approximation: reading a line last written by a
   different core pays a cache-to-cache transfer and demotes the line to
   shared; writing a line one does not own exclusively pays the
   invalidation round. Modelled on top of the single simulated cache. *)
let coherence_read_ns = 60.0
let coherence_write_ns = 80.0

(* Next-line hardware prefetcher: a miss whose predecessor line was filled
   recently is served from the prefetch stream at a fraction of the miss
   latency. Sequential kernels (matrix rows, point streams) hide most of
   the NVMM latency this way, as they do on real hardware. *)
let prefetch_window = 256
let prefetched_miss_ns = 12.0

let create cfg =
  if cfg.nvm_words mod cfg.line_words <> 0 then
    invalid_arg "Memsys.create: nvm_words must be line-aligned";
  if cfg.line_words > 62 then
    invalid_arg "Memsys.create: line_words must fit a dirty bitmask";
  let mk_line _ =
    {
      tag = -1;
      data = Array.make cfg.line_words 0;
      dirty = false;
      dirty_mask = 0;
      lru = 0;
      last_writer = -1;
    }
  in
  let t =
    {
      cfg;
      pmem = Array.make cfg.nvm_words 0;
      dram = Array.make cfg.dram_words 0;
      lines = Array.init (cfg.sets * cfg.ways) mk_line;
      stamp = 0;
      rng = Rng.create cfg.seed;
      stats = Stats.create ();
      subs = [||];
      next_sub = 0;
      charge = no_charge;
      current_tid = no_tid;
      recent_fills = Array.make prefetch_window (-1);
      recent_index = Hashtbl.create (2 * prefetch_window);
      recent_pos = 0;
      poisoned = Hashtbl.create 8;
      transient_pending = Hashtbl.create 8;
      crash_count = 0;
    }
  in
  ignore (subscribe t (Stats.subscriber t.stats) : subscription);
  t

let config t = t.cfg
let stats t = t.stats
let set_charge t f = t.charge <- f
let get_charge t = t.charge
let set_tid_provider t f = t.current_tid <- f

let is_nvm t addr = addr < t.cfg.nvm_words

let check_addr t addr =
  if addr < 0 || addr >= t.cfg.nvm_words + t.cfg.dram_words then
    invalid_arg (Printf.sprintf "Memsys: address %d out of range" addr)

(* Backing-store accessors, indexed by line number. *)

let backing_read t lineno off =
  let addr = (lineno * t.cfg.line_words) + off in
  if is_nvm t addr then t.pmem.(addr) else t.dram.(addr - t.cfg.nvm_words)

let backing_write t lineno off v =
  let addr = (lineno * t.cfg.line_words) + off in
  if is_nvm t addr then t.pmem.(addr) <- v
  else t.dram.(addr - t.cfg.nvm_words) <- v

(* Persist a cached line to its backing store. Under PCSO the whole line is
   copied atomically. Under the ablation a *spontaneous* ([complete=false])
   write-back persists only a random subset of the dirty words, modelling
   word-granular (non-PCSO) write-back hardware: the unpersisted words stay
   dirty in the cache, so explicit flushes ([pwb], capacity evictions,
   eADR drain — [complete=true]) still persist everything and only the
   *ordering* of persists is weakened, never their durability. *)
let write_back ?(complete = true) t line =
  let lineno = line.tag in
  let nvm = is_nvm t (lineno * t.cfg.line_words) in
  if t.cfg.pcso || complete then begin
    for off = 0 to t.cfg.line_words - 1 do
      backing_write t lineno off line.data.(off)
    done;
    line.dirty <- false;
    line.dirty_mask <- 0
  end
  else begin
    let mask = ref line.dirty_mask in
    for off = 0 to t.cfg.line_words - 1 do
      if line.dirty_mask land (1 lsl off) <> 0 && Rng.bool t.rng then begin
        backing_write t lineno off line.data.(off);
        mask := !mask land lnot (1 lsl off)
      end
    done;
    line.dirty_mask <- !mask;
    line.dirty <- !mask <> 0
  end;
  if has_subs t then
    emit t
      (Event.Writeback
         { backing = (if nvm then Event.Nvm else Event.Dram); line = lineno });
  nvm

(* Set index uses a multiplicative hash, as real LLCs hash addresses to
   slices: without it, regular allocation strides (per-thread heap chunks)
   alias into a handful of sets and thrash artificially. *)
let set_of t lineno =
  (lineno * 0x9E3779B1) lsr 11 land max_int mod t.cfg.sets

let find_line t lineno =
  let base = set_of t lineno * t.cfg.ways in
  let rec scan i =
    if i >= t.cfg.ways then None
    else
      let line = t.lines.(base + i) in
      if line.tag = lineno then Some line else scan (i + 1)
  in
  scan 0

(* Victim: an invalid way if any, else the least recently used. *)
let victim t lineno =
  let base = set_of t lineno * t.cfg.ways in
  let best = ref t.lines.(base) in
  (try
     for i = 0 to t.cfg.ways - 1 do
       let line = t.lines.(base + i) in
       if line.tag = -1 then begin
         best := line;
         raise Exit
       end;
       if line.lru < !best.lru then best := line
     done
   with Exit -> ());
  !best

let touch t line =
  t.stamp <- t.stamp + 1;
  line.lru <- t.stamp

(* Media check on a line fill: an armed transient fault fails exactly one
   read and disarms; a poisoned line fails every read until {!scrub_line}.
   The raise happens before any cache mutation (victim selection included),
   so a caught Media_error leaves the cache exactly as it was — retrying a
   transient fault re-fills cleanly. Fault-free worlds pay two hash-table
   length tests per miss. *)
let check_media t lineno =
  if
    Hashtbl.length t.transient_pending > 0
    && Hashtbl.mem t.transient_pending lineno
  then begin
    Hashtbl.remove t.transient_pending lineno;
    let addr = lineno * t.cfg.line_words in
    if has_subs t then
      emit t (Event.Media_error { addr; line = lineno; transient = true });
    raise (Media_error { addr; line = lineno; transient = true })
  end;
  if Hashtbl.length t.poisoned > 0 && Hashtbl.mem t.poisoned lineno then begin
    let addr = lineno * t.cfg.line_words in
    if has_subs t then
      emit t (Event.Media_error { addr; line = lineno; transient = false });
    raise (Media_error { addr; line = lineno; transient = false })
  end

(* Bring a line into the cache, returning it. Charges miss cost (and the
   victim write-back cost, which delays the fill) via the charge hook. *)
let fill t lineno =
  check_media t lineno;
  let lat = t.cfg.latency in
  let line = victim t lineno in
  if line.tag >= 0 && line.dirty then begin
    let nvm = write_back t line in
    t.charge (if nvm then lat.nvm_writeback_ns else lat.dram_writeback_ns)
  end;
  line.tag <- lineno;
  line.dirty <- false;
  line.dirty_mask <- 0;
  line.last_writer <- -1;
  for off = 0 to t.cfg.line_words - 1 do
    line.data.(off) <- backing_read t lineno off
  done;
  let prefetched = Hashtbl.mem t.recent_index (lineno - 1) in
  (let old = t.recent_fills.(t.recent_pos) in
   if old >= 0 then begin
     match Hashtbl.find_opt t.recent_index old with
     | Some 1 -> Hashtbl.remove t.recent_index old
     | Some n -> Hashtbl.replace t.recent_index old (n - 1)
     | None -> ()
   end;
   t.recent_fills.(t.recent_pos) <- lineno;
   Hashtbl.replace t.recent_index lineno
     (1 + Option.value ~default:0 (Hashtbl.find_opt t.recent_index lineno));
   t.recent_pos <- (t.recent_pos + 1) mod prefetch_window);
  let nvm = is_nvm t (lineno * t.cfg.line_words) in
  if has_subs t then
    emit t
      (Event.Miss
         {
           backing = (if nvm then Event.Nvm else Event.Dram);
           addr = lineno * t.cfg.line_words;
           prefetched;
         });
  if nvm then
    t.charge (if prefetched then prefetched_miss_ns else lat.nvm_miss_ns)
  else t.charge (if prefetched then prefetched_miss_ns else lat.dram_miss_ns);
  line

let lookup t addr =
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  let line =
    match find_line t lineno with
    | Some line ->
        if has_subs t then emit t (Event.Hit { addr });
        t.charge t.cfg.latency.cache_hit_ns;
        line
    | None -> fill t lineno
  in
  touch t line;
  line

(* Background hardware may write any dirty line back at any moment: with
   probability [evict_rate] per store, persist one random dirty line. Not
   charged to the running thread (it is asynchronous hardware activity).
   This is what creates the partial-persistence hazard that undo logging
   must defend against. *)
let spontaneous_eviction t =
  if t.cfg.evict_rate > 0.0 && Rng.float t.rng < t.cfg.evict_rate then begin
    let i = Rng.int t.rng (Array.length t.lines) in
    let line = t.lines.(i) in
    if line.tag >= 0 && line.dirty then begin
      ignore (write_back ~complete:false t line);
      if has_subs t then emit t (Event.Eviction { line = line.tag })
    end
  end

let load t addr =
  check_addr t addr;
  if has_subs t then
    emit t (Event.Load { tid = t.current_tid (); addr });
  let line = lookup t addr in
  let me = t.current_tid () in
  if line.last_writer >= 0 && line.last_writer <> me then begin
    t.charge coherence_read_ns;
    line.last_writer <- -1
  end;
  line.data.(Addr.offset_in_line ~line_words:t.cfg.line_words addr)

let store t addr v =
  check_addr t addr;
  if has_subs t then
    emit t (Event.Store { tid = t.current_tid (); addr });
  let line = lookup t addr in
  let me = t.current_tid () in
  if me >= 0 && line.last_writer <> me then t.charge coherence_write_ns;
  if me >= 0 then line.last_writer <- me;
  let off = Addr.offset_in_line ~line_words:t.cfg.line_words addr in
  line.data.(off) <- v;
  line.dirty <- true;
  line.dirty_mask <- line.dirty_mask lor (1 lsl off);
  t.charge t.cfg.latency.store_extra_ns;
  spontaneous_eviction t

let pwb t addr =
  check_addr t addr;
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  let found = find_line t lineno in
  if has_subs t then begin
    let dirty = match found with Some line -> line.dirty | None -> false in
    emit t (Event.Pwb { tid = t.current_tid (); addr; dirty })
  end;
  match found with
  | Some line when line.dirty ->
      ignore (write_back t line);
      t.charge t.cfg.latency.clwb_ns
  | Some _ | None ->
      (* clwb of a clean or absent line: issue cost only. *)
      t.charge (t.cfg.latency.clwb_ns /. 8.0)

let psync t =
  if has_subs t then emit t (Event.Psync { tid = t.current_tid () });
  t.charge t.cfg.latency.sfence_ns

(* Deterministically persist-and-invalidate the line holding [addr]; used by
   tests to force a chosen partial state into NVMM before a crash. *)
let force_evict t addr =
  check_addr t addr;
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  match find_line t lineno with
  | Some line ->
      if line.dirty then ignore (write_back t line);
      line.tag <- -1
  | None -> ()

(* Drop the line holding [addr] without writing it back: used by tests to
   guarantee a store did NOT persist. *)
let drop_line t addr =
  check_addr t addr;
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  match find_line t lineno with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ()

let is_cached_dirty t addr =
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  match find_line t lineno with Some line -> line.dirty | None -> false

(* Seeded fault injection at a crash. The RNG derives from the config's
   fault seed and the crash ordinal, so the nth crash of a given world
   always injects the same faults. Under eADR the drain already persisted
   every line whole, so only bit flips and transient faults apply; without
   eADR each dirty NVMM line may additionally tear (persist a strict,
   seeded subset of its dirty words — the violation of whole-line
   atomicity real hardware exhibits at 8-byte granularity) or poison. *)
let inject_crash_faults t (fc : fault_config) =
  let rng = Rng.create (fc.fault_seed + (t.crash_count * 0x9E3779B1)) in
  let lw = t.cfg.line_words in
  if not t.cfg.eadr then
    Array.iter
      (fun line ->
        if line.tag >= 0 && line.dirty && is_nvm t (line.tag * lw) then begin
          if fc.tear_rate > 0.0 && Rng.float rng < fc.tear_rate then begin
            (* Persist a strict subset of the dirty words: each dirty word
               independently, then force at least one dropped word so the
               tear is observable. *)
            let kept = ref 0 in
            for off = 0 to lw - 1 do
              if line.dirty_mask land (1 lsl off) <> 0 && Rng.bool rng then
                kept := !kept lor (1 lsl off)
            done;
            if !kept = line.dirty_mask then begin
              (* drop one dirty word, chosen by the seed *)
              let dirty_offs =
                List.filter
                  (fun off -> line.dirty_mask land (1 lsl off) <> 0)
                  (List.init lw Fun.id)
              in
              let drop =
                List.nth dirty_offs (Rng.int rng (List.length dirty_offs))
              in
              kept := !kept land lnot (1 lsl drop)
            end;
            for off = 0 to lw - 1 do
              if !kept land (1 lsl off) <> 0 then
                backing_write t line.tag off line.data.(off)
            done;
            if has_subs t then
              emit t
                (Event.Fault_injected
                   (Event.Torn { line = line.tag; kept = !kept }))
          end;
          if fc.poison_rate > 0.0 && Rng.float rng < fc.poison_rate then begin
            Hashtbl.replace t.poisoned line.tag ();
            if has_subs t then
              emit t (Event.Fault_injected (Event.Poisoned { line = line.tag }))
          end
        end)
      t.lines;
  if fc.bitflip_rate > 0.0 then begin
    let k =
      int_of_float (Float.round (fc.bitflip_rate *. float_of_int t.cfg.nvm_words))
    in
    for _ = 1 to max 1 k do
      let addr = Rng.int rng t.cfg.nvm_words in
      let bit = Rng.int rng 62 in
      t.pmem.(addr) <- t.pmem.(addr) lxor (1 lsl bit);
      if has_subs t then
        emit t (Event.Fault_injected (Event.Bitflip { addr; bit }))
    done
  end;
  if fc.transient_rate > 0.0 then begin
    let nlines = t.cfg.nvm_words / lw in
    let k =
      int_of_float (Float.round (fc.transient_rate *. float_of_int nlines))
    in
    for _ = 1 to max 1 k do
      let line = Rng.int rng nlines in
      Hashtbl.replace t.transient_pending line ();
      if has_subs t then
        emit t (Event.Fault_injected (Event.Transient_armed { line }))
    done
  end

let crash t =
  if has_subs t then emit t (Event.Crash { eadr = t.cfg.eadr });
  if t.cfg.eadr then
    (* eADR: the cache is in the persistent domain; dirty NVMM lines are
       drained by the battery-backed flush on power failure. *)
    Array.iter
      (fun line ->
        if line.tag >= 0 && line.dirty && is_nvm t (line.tag * t.cfg.line_words)
        then ignore (write_back t line))
      t.lines;
  (match t.cfg.faults with
  | None -> ()
  | Some fc -> inject_crash_faults t fc);
  t.crash_count <- t.crash_count + 1;
  Array.iter
    (fun line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0)
    t.lines;
  Array.fill t.dram 0 (Array.length t.dram) 0

let persisted t addr =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Memsys.persisted: address not in NVMM";
  t.pmem.(addr)

let flush_all t =
  Array.iter (fun line -> if line.tag >= 0 && line.dirty then ignore (write_back t line)) t.lines

(* ------------------------------------------------------------------ *)
(* Crash-image hooks for the systematic crash explorer (lib/crashtest).

   These are host-level accessors: no latency is charged, no event is
   emitted and no cache state (LRU, prefetch ring, RNG) is perturbed, so a
   subscriber-driven pilot run and its per-boundary re-executions observe
   identical event sequences whether or not an explorer is watching. *)

(* Logical (cache-coherent) view of a word, bypassing cost and events. *)
let peek t addr =
  check_addr t addr;
  let lineno = Addr.line_of ~line_words:t.cfg.line_words addr in
  match find_line t lineno with
  | Some line -> line.data.(Addr.offset_in_line ~line_words:t.cfg.line_words addr)
  | None -> if is_nvm t addr then t.pmem.(addr) else t.dram.(addr - t.cfg.nvm_words)

type dirty_line = { lineno : int; data : int array; mask : int }

let dirty_nvm_lines t =
  Array.fold_right
    (fun line acc ->
      if line.tag >= 0 && line.dirty && is_nvm t (line.tag * t.cfg.line_words)
      then
        { lineno = line.tag; data = Array.copy line.data; mask = line.dirty_mask }
        :: acc
      else acc)
    t.lines []

let image t = Array.copy t.pmem

let reset_to_image t img =
  if Array.length img <> t.cfg.nvm_words then
    invalid_arg "Memsys.reset_to_image: image size mismatch";
  Array.blit img 0 t.pmem 0 t.cfg.nvm_words;
  Array.iter
    (fun line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0;
      line.last_writer <- -1)
    t.lines;
  Array.fill t.dram 0 (Array.length t.dram) 0;
  Array.fill t.recent_fills 0 prefetch_window (-1);
  Hashtbl.reset t.recent_index;
  t.recent_pos <- 0;
  (* A captured image carries no fault state: each adversarial re-recovery
     starts from healthy media and plants its own faults. *)
  Hashtbl.reset t.poisoned;
  Hashtbl.reset t.transient_pending

let poke_persisted t addr v =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Memsys.poke_persisted: address not in NVMM";
  t.pmem.(addr) <- v

(* ------------------------------------------------------------------ *)
(* Fault-plan hooks: plant media faults directly (the crash explorer's
   fault dimension), independent of the seeded [faults] config. *)

let check_nvm_line t lineno =
  if lineno < 0 || lineno * t.cfg.line_words >= t.cfg.nvm_words then
    invalid_arg "Memsys: line not in NVMM"

(* Poisoning drops any cached copy first (without write-back), preserving
   the invariant that a poisoned line is never cached: every subsequent
   access must go through [fill] and hit the media check. *)
let poison_line t lineno =
  check_nvm_line t lineno;
  (match find_line t lineno with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ());
  Hashtbl.replace t.poisoned lineno ()

let arm_transient_fault t lineno =
  check_nvm_line t lineno;
  (match find_line t lineno with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ());
  Hashtbl.replace t.transient_pending lineno ()

let is_poisoned t lineno = Hashtbl.mem t.poisoned lineno

let poisoned_lines t =
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) t.poisoned [])

(* Clear a poisoned line, zeroing its media content (the stored bits are
   gone; what a real scrub or sector remap does). Emits [Media_scrub] so
   repairs are observable on the pipeline. *)
let scrub_line t lineno =
  check_nvm_line t lineno;
  Hashtbl.remove t.poisoned lineno;
  for off = 0 to t.cfg.line_words - 1 do
    t.pmem.((lineno * t.cfg.line_words) + off) <- 0
  done;
  if has_subs t then emit t (Event.Media_scrub { line = lineno })
