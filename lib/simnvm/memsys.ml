(* Simulated memory system: a volatile set-associative cache in front of a
   persistent NVMM image and a volatile DRAM region.

   The address space is split by [nvm_words]: addresses in [0, nvm_words) are
   NVMM-backed (they survive [crash]); addresses in
   [nvm_words, nvm_words + dram_words) are DRAM-backed (lost at a crash).

   Persistency model (PCSO, as on x86 with Intel DCPMM in App Direct mode):
   - stores land in the cache; a dirty line may be written back to its
     backing store at any time (spontaneous eviction, capacity eviction);
   - a write-back copies the line as a whole, so two stores to the same line
     can never persist out of program order -- the property In-Cache-Line
     Logging relies on;
   - [pwb] (clwb) persists one line, [psync] (sfence) orders: here pwb applies
     the write-back eagerly, which is a legal (conservative) PCSO behaviour,
     and psync only charges the fence cost.

   The [pcso] configuration flag exists for the ablation of DESIGN.md (5.1):
   with [pcso = false], a *spontaneous* write-back persists a random subset
   of the line's dirty words (the rest stay dirty and cached), deliberately
   violating same-line ordering; the InCLL crash-consistency property tests
   then fail, demonstrating the invariant is load-bearing. Explicit [pwb]
   and capacity evictions still persist the whole line even under the
   ablation — word-granular hardware reorders persists, it does not lose
   flushed data — which is what keeps the explicitly-flushing baselines
   (Clobber, SOFT, FriedmanQueue) correct under the same ablation.

   Hot-path discipline: every per-access structure is a flat array or
   bitset indexed by line number (no hashtables), set/offset arithmetic
   uses precomputed shifts and masks when the geometry is a power of two,
   and the steady state allocates nothing — events are only constructed
   when an external subscriber is attached, and the default stats counters
   are bumped directly instead of travelling through the pipeline. The
   differential oracle in [Refmodel] pins this kernel, word for word and
   event for event, to a naive executable specification. *)

(* Faulty-media model (opt-in, [faults = None] costs nothing): at every
   crash, a dedicated RNG derived from [fault_seed] and the crash ordinal
   decides, per dirty NVMM line, whether its in-flight write-back tears
   (a strict subset of its dirty words persists — whole-line atomicity
   violated, words stay 8-byte atomic), whether the line's media poisons
   (subsequent fills raise {!Media_error} until {!scrub_line}), plus a
   batch of seeded bit flips on persisted words and armed one-shot
   transient read faults. Everything is replayable from the seed. *)
type fault_config = {
  fault_seed : int;
  tear_rate : float; (* per dirty NVMM line at crash *)
  poison_rate : float; (* per dirty NVMM line at crash *)
  bitflip_rate : float; (* expected flips per crash / nvm_words *)
  transient_rate : float; (* expected armed lines per crash / NVMM lines *)
}

let no_faults =
  {
    fault_seed = 0;
    tear_rate = 0.0;
    poison_rate = 0.0;
    bitflip_rate = 0.0;
    transient_rate = 0.0;
  }

type config = {
  nvm_words : int;
  dram_words : int;
  line_words : int;
  sets : int;
  ways : int;
  latency : Latency.t;
  evict_rate : float;
  seed : int;
  eadr : bool;
  pcso : bool;
  faults : fault_config option;
}

let default_config =
  {
    nvm_words = 1 lsl 20;
    dram_words = 1 lsl 18;
    line_words = Addr.default_line_words;
    sets = 1024;
    ways = 8;
    latency = Latency.default;
    evict_rate = 0.002;
    seed = 42;
    eadr = false;
    pcso = true;
    faults = None;
  }

exception Media_error of { addr : int; line : int; transient : bool }

(* Chunked backing stores. A simulated memory spans megawords of address
   space but a workload touches a sliver of it, so the backing arrays are
   tables of fixed-size chunks that all start out aliasing one shared,
   permanently-zero chunk: reads index straight through (the shared chunk
   really is zeroed, so no branch), writes materialize a private chunk
   first. World creation then costs a pointer per chunk instead of a
   zeroed word per address — the dominant cost of an experiment sweep
   creating hundreds of short-lived worlds. *)
let chunk_shift = 14
let chunk_words = 1 lsl chunk_shift
let chunk_mask = chunk_words - 1
let zero_chunk = Array.make chunk_words 0

type store = int array array

let store_make words : store =
  Array.make ((words + chunk_mask) lsr chunk_shift) zero_chunk

let[@inline] store_get (s : store) i =
  Array.unsafe_get s.(i lsr chunk_shift) (i land chunk_mask)

let chunk_for_write (s : store) k =
  let c = s.(k) in
  if c != zero_chunk then c
  else begin
    let c = Array.make chunk_words 0 in
    s.(k) <- c;
    c
  end

let store_set (s : store) i v =
  (chunk_for_write s (i lsr chunk_shift)).(i land chunk_mask) <- v

let[@inline] store_add (s : store) i d =
  let c = chunk_for_write s (i lsr chunk_shift) in
  let off = i land chunk_mask in
  c.(off) <- c.(off) + d

(* Lines need not divide chunks (line_words is any size <= 62), so the
   blits walk chunk boundaries. *)
let store_blit_in (s : store) pos (src : int array) srcpos len =
  let rec go pos srcpos len =
    if len > 0 then begin
      let c = chunk_for_write s (pos lsr chunk_shift) in
      let off = pos land chunk_mask in
      let n = min len (chunk_words - off) in
      Array.blit src srcpos c off n;
      go (pos + n) (srcpos + n) (len - n)
    end
  in
  go pos srcpos len

let store_blit_out (s : store) pos (dst : int array) dstpos len =
  let rec go pos dstpos len =
    if len > 0 then begin
      let c = s.(pos lsr chunk_shift) in
      let off = pos land chunk_mask in
      let n = min len (chunk_words - off) in
      Array.blit c off dst dstpos n;
      go (pos + n) (dstpos + n) (len - n)
    end
  in
  go pos dstpos len

let store_fill_zero (s : store) pos len =
  let rec go pos len =
    if len > 0 then begin
      let k = pos lsr chunk_shift in
      let off = pos land chunk_mask in
      let n = min len (chunk_words - off) in
      if s.(k) != zero_chunk then Array.fill s.(k) off n 0;
      go (pos + n) (len - n)
    end
  in
  go pos len

(* Zero the whole store by dropping every private chunk. *)
let store_clear (s : store) = Array.fill s 0 (Array.length s) zero_chunk

type line = {
  mutable tag : int; (* line index in the address space; -1 = invalid *)
  mutable data : int array; (* aliases [no_data] until the first fill *)
  mutable dirty : bool;
  mutable dirty_mask : int; (* bitmask of dirty words, for the pcso ablation *)
  mutable lru : int;
  mutable last_writer : int; (* thread that last wrote the line; -1 = shared *)
}

(* Shared placeholder for the data of never-filled lines: only [fill]
   writes to an invalid line, and it materializes a private array first,
   so the placeholder is never read or written. *)
let no_data : int array = [||]

type subscription = int

type t = {
  cfg : config;
  pmem : store; (* the persistent NVMM image *)
  dram : store;
  lines : line array; (* sets * ways, row-major by set *)
  mutable stamp : int;
  rng : Rng.t;
  stats : Stats.t;
  (* The stats counters are "subscription 0": bumped inline on the hot
     path instead of through the event pipeline, so a memory system with
     no external subscriber never constructs an event. *)
  mutable stats_on : bool;
  (* External subscribers, stored as parallel id/function arrays with an
     explicit count so subscribe/unsubscribe churn is allocation-free in
     the steady state. *)
  mutable sub_ids : int array;
  mutable sub_fns : (Event.t -> unit) array;
  mutable n_subs : int;
  mutable next_sub : int;
  mutable charge : float -> unit;
  mutable current_tid : unit -> int;
  (* Precomputed geometry. [lw_shift]/[lw_mask] and [sets_mask] are -1
     when the corresponding dimension is not a power of two (fall back to
     division). *)
  lw : int;
  lw_shift : int;
  lw_mask : int;
  sets_mask : int;
  ways : int;
  nvm_lines : int;
  total_lines : int;
  recent_fills : int array; (* ring of recently filled line numbers *)
  recent_count : store; (* line -> occurrences in the ring *)
  mutable recent_pos : int;
  (* Faulty-media state: poisoned NVMM lines (fills raise until scrubbed)
     and armed one-shot transient read faults, as bitsets over the NVMM
     line numbers with element counts for the fast emptiness test. Both
     stay empty with [faults = None] unless a host hook plants faults. *)
  poisoned_bits : Bytes.t;
  mutable n_poisoned : int;
  transient_bits : Bytes.t;
  mutable n_transient : int;
  mutable crash_count : int;
}

let no_charge (_ : float) = ()
let no_tid () = -1
let no_sub (_ : Event.t) = ()

(* Bitset primitives over [Bytes]; indices are validated by the callers
   (every producer bounds-checks the line number first). *)
let[@inline] bit_get b i =
  Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) land lnot (1 lsl (i land 7))))

(* Event pipeline. Emission sites guard on [has_subs] — external
   subscribers only — before constructing the event, so the common
   stats-only configuration pays a single integer bump per event site and
   never allocates. Subscribers run in attach order, which keeps event
   delivery (and therefore anything derived from it) deterministic. *)

let[@inline] has_subs t = t.n_subs > 0

let emit t ev =
  let fns = t.sub_fns in
  for i = 0 to t.n_subs - 1 do
    (Array.unsafe_get fns i) ev
  done

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  let n = t.n_subs in
  if n = Array.length t.sub_ids then begin
    let cap = max 4 (2 * n) in
    let ids = Array.make cap (-1) and fns = Array.make cap no_sub in
    Array.blit t.sub_ids 0 ids 0 n;
    Array.blit t.sub_fns 0 fns 0 n;
    t.sub_ids <- ids;
    t.sub_fns <- fns
  end;
  t.sub_ids.(n) <- id;
  t.sub_fns.(n) <- f;
  t.n_subs <- n + 1;
  id

(* In-place left shift over the parallel arrays: no list round-trip, no
   allocation. The vacated slot gets a no-op function so the subscriber
   can be collected (and so an emit that captured the array mid-removal
   calls a harmless stub rather than a stale closure). *)
let unsubscribe t id =
  if id = 0 then t.stats_on <- false
  else begin
    let n = t.n_subs in
    let found = ref (-1) in
    for i = 0 to n - 1 do
      if !found < 0 && t.sub_ids.(i) = id then found := i
    done;
    match !found with
    | -1 -> ()
    | at ->
        for i = at to n - 2 do
          t.sub_ids.(i) <- t.sub_ids.(i + 1);
          t.sub_fns.(i) <- t.sub_fns.(i + 1)
        done;
        t.sub_ids.(n - 1) <- -1;
        t.sub_fns.(n - 1) <- no_sub;
        t.n_subs <- n - 1
  end

let clear_subscribers t =
  t.stats_on <- false;
  for i = 0 to t.n_subs - 1 do
    t.sub_ids.(i) <- -1;
    t.sub_fns.(i) <- no_sub
  done;
  t.n_subs <- 0

let subscriber_count t = (if t.stats_on then 1 else 0) + t.n_subs

(* MESI-style coherence approximation: reading a line last written by a
   different core pays a cache-to-cache transfer and demotes the line to
   shared; writing a line one does not own exclusively pays the
   invalidation round. Modelled on top of the single simulated cache. *)
let coherence_read_ns = 60.0
let coherence_write_ns = 80.0

(* Next-line hardware prefetcher: a miss whose predecessor line was filled
   recently is served from the prefetch stream at a fraction of the miss
   latency. Sequential kernels (matrix rows, point streams) hide most of
   the NVMM latency this way, as they do on real hardware. *)
let prefetch_window = 256
let prefetch_mask = prefetch_window - 1
let prefetched_miss_ns = 12.0

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go p acc = if p >= n then acc else go (2 * p) (acc + 1) in
  go 1 0

let create cfg =
  if cfg.nvm_words mod cfg.line_words <> 0 then
    invalid_arg "Memsys.create: nvm_words must be line-aligned";
  if cfg.line_words > 62 then
    invalid_arg "Memsys.create: line_words must fit a dirty bitmask";
  let mk_line _ =
    {
      tag = -1;
      data = no_data;
      dirty = false;
      dirty_mask = 0;
      lru = 0;
      last_writer = -1;
    }
  in
  let lw = cfg.line_words in
  let nvm_lines = cfg.nvm_words / lw in
  let total_lines = (cfg.nvm_words + cfg.dram_words + lw - 1) / lw in
  {
    cfg;
    pmem = store_make cfg.nvm_words;
    dram = store_make cfg.dram_words;
    lines = Array.init (cfg.sets * cfg.ways) mk_line;
    stamp = 0;
    rng = Rng.create cfg.seed;
    stats = Stats.create ();
    stats_on = true;
    sub_ids = [||];
    sub_fns = [||];
    n_subs = 0;
    next_sub = 1 (* 0 is the built-in stats counter *);
    charge = no_charge;
    current_tid = no_tid;
    lw;
    lw_shift = (if is_pow2 lw then log2 lw else -1);
    lw_mask = (if is_pow2 lw then lw - 1 else -1);
    sets_mask = (if is_pow2 cfg.sets then cfg.sets - 1 else -1);
    ways = cfg.ways;
    nvm_lines;
    total_lines;
    recent_fills = Array.make prefetch_window (-1);
    recent_count = store_make (total_lines + 1);
    recent_pos = 0;
    poisoned_bits = Bytes.make (max 1 ((nvm_lines + 7) / 8)) '\000';
    n_poisoned = 0;
    transient_bits = Bytes.make (max 1 ((nvm_lines + 7) / 8)) '\000';
    n_transient = 0;
    crash_count = 0;
  }

let config t = t.cfg
let stats t = t.stats
let set_charge t f = t.charge <- f
let get_charge t = t.charge
let set_tid_provider t f = t.current_tid <- f

let is_nvm t addr = addr < t.cfg.nvm_words

let check_addr t addr =
  if addr < 0 || addr >= t.cfg.nvm_words + t.cfg.dram_words then
    invalid_arg (Printf.sprintf "Memsys: address %d out of range" addr)

(* Line/offset arithmetic on the precomputed geometry. *)
let[@inline] line_of t addr =
  if t.lw_shift >= 0 then addr lsr t.lw_shift else addr / t.lw

let[@inline] off_of t addr =
  if t.lw_mask >= 0 then addr land t.lw_mask else addr mod t.lw

(* Backing-store write, indexed by line number (partial persists only;
   whole-line transfers use Array.blit directly). *)

let backing_write t lineno off v =
  let addr = (lineno * t.lw) + off in
  if is_nvm t addr then store_set t.pmem addr v
  else store_set t.dram (addr - t.cfg.nvm_words) v

(* Persist a cached line to its backing store. Under PCSO the whole line is
   copied atomically (one blit). Under the ablation a *spontaneous*
   ([complete=false]) write-back persists only a random subset of the dirty
   words, modelling word-granular (non-PCSO) write-back hardware: the
   unpersisted words stay dirty in the cache, so explicit flushes ([pwb],
   capacity evictions, eADR drain — [complete=true]) still persist
   everything and only the *ordering* of persists is weakened, never their
   durability. *)
let write_back ?(complete = true) t line =
  let lineno = line.tag in
  let base = lineno * t.lw in
  let nvm = is_nvm t base in
  if t.cfg.pcso || complete then begin
    if nvm then store_blit_in t.pmem base line.data 0 t.lw
    else store_blit_in t.dram (base - t.cfg.nvm_words) line.data 0 t.lw;
    line.dirty <- false;
    line.dirty_mask <- 0
  end
  else begin
    let mask = ref line.dirty_mask in
    for off = 0 to t.lw - 1 do
      if line.dirty_mask land (1 lsl off) <> 0 && Rng.bool t.rng then begin
        backing_write t lineno off line.data.(off);
        mask := !mask land lnot (1 lsl off)
      end
    done;
    line.dirty_mask <- !mask;
    line.dirty <- !mask <> 0
  end;
  if t.stats_on then begin
    let s = t.stats in
    if nvm then s.Stats.nvm_writebacks <- s.Stats.nvm_writebacks + 1
    else s.Stats.dram_writebacks <- s.Stats.dram_writebacks + 1
  end;
  if has_subs t then
    emit t
      (Event.Writeback
         { backing = (if nvm then Event.Nvm else Event.Dram); line = lineno });
  nvm

(* Set index uses a multiplicative hash, as real LLCs hash addresses to
   slices: without it, regular allocation strides (per-thread heap chunks)
   alias into a handful of sets and thrash artificially. *)
let[@inline] set_of t lineno =
  let h = (lineno * 0x9E3779B1) lsr 11 land max_int in
  if t.sets_mask >= 0 then h land t.sets_mask else h mod t.cfg.sets

(* Hot-path lookup: the way index of [lineno] in its set, or -1. No option
   allocation on a hit. *)
let[@inline] find_slot t lineno =
  let base = set_of t lineno * t.ways in
  let lines = t.lines in
  let rec scan i =
    if i >= t.ways then -1
    else if (Array.unsafe_get lines (base + i)).tag = lineno then base + i
    else scan (i + 1)
  in
  scan 0

(* Cold-path wrapper for the host/test hooks. *)
let find_line t lineno =
  match find_slot t lineno with -1 -> None | i -> Some t.lines.(i)

(* Victim: an invalid way if any, else the least recently used. *)
let victim t lineno =
  let base = set_of t lineno * t.ways in
  let best = ref t.lines.(base) in
  (try
     for i = 0 to t.ways - 1 do
       let line = t.lines.(base + i) in
       if line.tag = -1 then begin
         best := line;
         raise Exit
       end;
       if line.lru < !best.lru then best := line
     done
   with Exit -> ());
  !best

(* Media check on a line fill: an armed transient fault fails exactly one
   read and disarms; a poisoned line fails every read until {!scrub_line}.
   The raise happens before any cache mutation (victim selection included),
   so a caught Media_error leaves the cache exactly as it was — retrying a
   transient fault re-fills cleanly. Fault-free worlds pay two integer
   tests per miss. *)
let check_media t lineno =
  if t.n_transient > 0 && lineno < t.nvm_lines && bit_get t.transient_bits lineno
  then begin
    bit_clear t.transient_bits lineno;
    t.n_transient <- t.n_transient - 1;
    let addr = lineno * t.lw in
    if t.stats_on then
      t.stats.Stats.media_errors <- t.stats.Stats.media_errors + 1;
    if has_subs t then
      emit t (Event.Media_error { addr; line = lineno; transient = true });
    raise (Media_error { addr; line = lineno; transient = true })
  end;
  if t.n_poisoned > 0 && lineno < t.nvm_lines && bit_get t.poisoned_bits lineno
  then begin
    let addr = lineno * t.lw in
    if t.stats_on then
      t.stats.Stats.media_errors <- t.stats.Stats.media_errors + 1;
    if has_subs t then
      emit t (Event.Media_error { addr; line = lineno; transient = false });
    raise (Media_error { addr; line = lineno; transient = false })
  end

(* Bring a line into the cache, returning it. Charges miss cost (and the
   victim write-back cost, which delays the fill) via the charge hook. *)
let fill t lineno =
  check_media t lineno;
  let lat = t.cfg.latency in
  let line = victim t lineno in
  if line.tag >= 0 && line.dirty then begin
    let nvm = write_back t line in
    t.charge
      (if nvm then lat.Latency.nvm_writeback_ns
       else lat.Latency.dram_writeback_ns)
  end;
  let base = lineno * t.lw in
  line.tag <- lineno;
  line.dirty <- false;
  line.dirty_mask <- 0;
  line.last_writer <- -1;
  let nvm = is_nvm t base in
  if line.data == no_data then line.data <- Array.make t.lw 0;
  if nvm then store_blit_out t.pmem base line.data 0 t.lw
  else store_blit_out t.dram (base - t.cfg.nvm_words) line.data 0 t.lw;
  let prefetched = lineno > 0 && store_get t.recent_count (lineno - 1) > 0 in
  (let old = t.recent_fills.(t.recent_pos) in
   if old >= 0 then store_add t.recent_count old (-1);
   t.recent_fills.(t.recent_pos) <- lineno;
   store_add t.recent_count lineno 1;
   t.recent_pos <- (t.recent_pos + 1) land prefetch_mask);
  if t.stats_on then begin
    let s = t.stats in
    if nvm then s.Stats.nvm_misses <- s.Stats.nvm_misses + 1
    else s.Stats.dram_misses <- s.Stats.dram_misses + 1
  end;
  if has_subs t then
    emit t
      (Event.Miss
         {
           backing = (if nvm then Event.Nvm else Event.Dram);
           addr = base;
           prefetched;
         });
  if nvm then
    t.charge (if prefetched then prefetched_miss_ns else lat.Latency.nvm_miss_ns)
  else
    t.charge (if prefetched then prefetched_miss_ns else lat.Latency.dram_miss_ns);
  line

let lookup t addr =
  let lineno = line_of t addr in
  let slot = find_slot t lineno in
  let line =
    if slot >= 0 then begin
      let line = Array.unsafe_get t.lines slot in
      if t.stats_on then t.stats.Stats.hits <- t.stats.Stats.hits + 1;
      if has_subs t then emit t (Event.Hit { addr });
      t.charge t.cfg.latency.Latency.cache_hit_ns;
      line
    end
    else fill t lineno
  in
  t.stamp <- t.stamp + 1;
  line.lru <- t.stamp;
  line

(* Background hardware may write any dirty line back at any moment: with
   probability [evict_rate] per store, persist one random dirty line. Not
   charged to the running thread (it is asynchronous hardware activity).
   This is what creates the partial-persistence hazard that undo logging
   must defend against. *)
let spontaneous_eviction t =
  if t.cfg.evict_rate > 0.0 && Rng.float t.rng < t.cfg.evict_rate then begin
    let i = Rng.int t.rng (Array.length t.lines) in
    let line = t.lines.(i) in
    if line.tag >= 0 && line.dirty then begin
      ignore (write_back ~complete:false t line);
      if t.stats_on then
        t.stats.Stats.spontaneous_evictions <-
          t.stats.Stats.spontaneous_evictions + 1;
      if has_subs t then emit t (Event.Eviction { line = line.tag })
    end
  end

let load t addr =
  check_addr t addr;
  if t.stats_on then t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  if has_subs t then emit t (Event.Load { tid = t.current_tid (); addr });
  let line = lookup t addr in
  let me = t.current_tid () in
  if line.last_writer >= 0 && line.last_writer <> me then begin
    t.charge coherence_read_ns;
    line.last_writer <- -1
  end;
  line.data.(off_of t addr)

let store t addr v =
  check_addr t addr;
  if t.stats_on then t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  if has_subs t then emit t (Event.Store { tid = t.current_tid (); addr });
  let line = lookup t addr in
  let me = t.current_tid () in
  if me >= 0 && line.last_writer <> me then t.charge coherence_write_ns;
  if me >= 0 then line.last_writer <- me;
  let off = off_of t addr in
  line.data.(off) <- v;
  line.dirty <- true;
  line.dirty_mask <- line.dirty_mask lor (1 lsl off);
  t.charge t.cfg.latency.Latency.store_extra_ns;
  spontaneous_eviction t

let pwb t addr =
  check_addr t addr;
  let lineno = line_of t addr in
  let slot = find_slot t lineno in
  let dirty = slot >= 0 && t.lines.(slot).dirty in
  if t.stats_on then t.stats.Stats.pwbs <- t.stats.Stats.pwbs + 1;
  if has_subs t then
    emit t (Event.Pwb { tid = t.current_tid (); addr; dirty });
  if dirty then begin
    ignore (write_back t t.lines.(slot));
    t.charge t.cfg.latency.Latency.clwb_ns
  end
  else
    (* clwb of a clean or absent line: issue cost only. *)
    t.charge (t.cfg.latency.Latency.clwb_ns /. 8.0)

let psync t =
  if t.stats_on then t.stats.Stats.psyncs <- t.stats.Stats.psyncs + 1;
  if has_subs t then emit t (Event.Psync { tid = t.current_tid () });
  t.charge t.cfg.latency.Latency.sfence_ns

(* Deterministically persist-and-invalidate the line holding [addr]; used by
   tests to force a chosen partial state into NVMM before a crash. *)
let force_evict t addr =
  check_addr t addr;
  match find_line t (line_of t addr) with
  | Some line ->
      if line.dirty then ignore (write_back t line);
      line.tag <- -1
  | None -> ()

(* Drop the line holding [addr] without writing it back: used by tests to
   guarantee a store did NOT persist. *)
let drop_line t addr =
  check_addr t addr;
  match find_line t (line_of t addr) with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ()

let is_cached_dirty t addr =
  match find_line t (line_of t addr) with
  | Some line -> line.dirty
  | None -> false

let bump_faults t =
  if t.stats_on then
    t.stats.Stats.faults_injected <- t.stats.Stats.faults_injected + 1

(* Seeded fault injection at a crash. The RNG derives from the config's
   fault seed and the crash ordinal, so the nth crash of a given world
   always injects the same faults. Under eADR the drain already persisted
   every line whole, so only bit flips and transient faults apply; without
   eADR each dirty NVMM line may additionally tear (persist a strict,
   seeded subset of its dirty words — the violation of whole-line
   atomicity real hardware exhibits at 8-byte granularity) or poison. *)
let inject_crash_faults t (fc : fault_config) =
  let rng = Rng.create (fc.fault_seed + (t.crash_count * 0x9E3779B1)) in
  let lw = t.lw in
  if not t.cfg.eadr then
    Array.iter
      (fun line ->
        if line.tag >= 0 && line.dirty && is_nvm t (line.tag * lw) then begin
          if fc.tear_rate > 0.0 && Rng.float rng < fc.tear_rate then begin
            (* Persist a strict subset of the dirty words: each dirty word
               independently, then force at least one dropped word so the
               tear is observable. *)
            let kept = ref 0 in
            for off = 0 to lw - 1 do
              if line.dirty_mask land (1 lsl off) <> 0 && Rng.bool rng then
                kept := !kept lor (1 lsl off)
            done;
            if !kept = line.dirty_mask then begin
              (* drop one dirty word, chosen by the seed: the k-th set bit
                 of the mask in increasing offset order *)
              let n_dirty = ref 0 in
              for off = 0 to lw - 1 do
                if line.dirty_mask land (1 lsl off) <> 0 then incr n_dirty
              done;
              let k = Rng.int rng !n_dirty in
              let drop = ref 0 and seen = ref 0 in
              (try
                 for off = 0 to lw - 1 do
                   if line.dirty_mask land (1 lsl off) <> 0 then begin
                     if !seen = k then begin
                       drop := off;
                       raise Exit
                     end;
                     incr seen
                   end
                 done
               with Exit -> ());
              kept := !kept land lnot (1 lsl !drop)
            end;
            for off = 0 to lw - 1 do
              if !kept land (1 lsl off) <> 0 then
                backing_write t line.tag off line.data.(off)
            done;
            bump_faults t;
            if has_subs t then
              emit t
                (Event.Fault_injected
                   (Event.Torn { line = line.tag; kept = !kept }))
          end;
          if fc.poison_rate > 0.0 && Rng.float rng < fc.poison_rate then begin
            if not (bit_get t.poisoned_bits line.tag) then begin
              bit_set t.poisoned_bits line.tag;
              t.n_poisoned <- t.n_poisoned + 1
            end;
            bump_faults t;
            if has_subs t then
              emit t (Event.Fault_injected (Event.Poisoned { line = line.tag }))
          end
        end)
      t.lines;
  if fc.bitflip_rate > 0.0 then begin
    let k =
      int_of_float (Float.round (fc.bitflip_rate *. float_of_int t.cfg.nvm_words))
    in
    for _ = 1 to max 1 k do
      let addr = Rng.int rng t.cfg.nvm_words in
      let bit = Rng.int rng 62 in
      store_set t.pmem addr (store_get t.pmem addr lxor (1 lsl bit));
      bump_faults t;
      if has_subs t then
        emit t (Event.Fault_injected (Event.Bitflip { addr; bit }))
    done
  end;
  if fc.transient_rate > 0.0 then begin
    let nlines = t.nvm_lines in
    let k =
      int_of_float (Float.round (fc.transient_rate *. float_of_int nlines))
    in
    for _ = 1 to max 1 k do
      let line = Rng.int rng nlines in
      if not (bit_get t.transient_bits line) then begin
        bit_set t.transient_bits line;
        t.n_transient <- t.n_transient + 1
      end;
      bump_faults t;
      if has_subs t then
        emit t (Event.Fault_injected (Event.Transient_armed { line }))
    done
  end

let crash t =
  if t.stats_on then t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  if has_subs t then emit t (Event.Crash { eadr = t.cfg.eadr });
  if t.cfg.eadr then
    (* eADR: the cache is in the persistent domain; dirty NVMM lines are
       drained by the battery-backed flush on power failure. *)
    Array.iter
      (fun line ->
        if line.tag >= 0 && line.dirty && is_nvm t (line.tag * t.lw) then
          ignore (write_back t line))
      t.lines;
  (match t.cfg.faults with
  | None -> ()
  | Some fc -> inject_crash_faults t fc);
  t.crash_count <- t.crash_count + 1;
  Array.iter
    (fun line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0)
    t.lines;
  store_clear t.dram

let persisted t addr =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Memsys.persisted: address not in NVMM";
  store_get t.pmem addr

let flush_all t =
  Array.iter (fun line -> if line.tag >= 0 && line.dirty then ignore (write_back t line)) t.lines

(* ------------------------------------------------------------------ *)
(* Crash-image hooks for the systematic crash explorer (lib/crashtest).

   These are host-level accessors: no latency is charged, no event is
   emitted and no cache state (LRU, prefetch ring, RNG) is perturbed, so a
   subscriber-driven pilot run and its per-boundary re-executions observe
   identical event sequences whether or not an explorer is watching. *)

(* Logical (cache-coherent) view of a word, bypassing cost and events. *)
let peek t addr =
  check_addr t addr;
  match find_line t (line_of t addr) with
  | Some line -> line.data.(off_of t addr)
  | None ->
      if is_nvm t addr then store_get t.pmem addr
      else store_get t.dram (addr - t.cfg.nvm_words)

type dirty_line = { lineno : int; data : int array; mask : int }

let dirty_nvm_lines t =
  Array.fold_right
    (fun line acc ->
      if line.tag >= 0 && line.dirty && is_nvm t (line.tag * t.lw) then
        { lineno = line.tag; data = Array.copy line.data; mask = line.dirty_mask }
        :: acc
      else acc)
    t.lines []

(* Materialize the persisted image as one flat array: blit every private
   chunk, leave the zero-chunk spans as the zeros Array.make gave us. *)
let image t =
  let words = t.cfg.nvm_words in
  let out = Array.make words 0 in
  Array.iteri
    (fun k c ->
      if c != zero_chunk then
        let pos = k lsl chunk_shift in
        Array.blit c 0 out pos (min chunk_words (words - pos)))
    t.pmem;
  out

let reset_to_image t img =
  if Array.length img <> t.cfg.nvm_words then
    invalid_arg "Memsys.reset_to_image: image size mismatch";
  (* Per chunk: an all-zero image span over a still-shared chunk needs no
     work (the common case when the explorer resets a sparse image), any
     other span is blitted into a private chunk. *)
  Array.iteri
    (fun k c ->
      let pos = k lsl chunk_shift in
      let n = min chunk_words (t.cfg.nvm_words - pos) in
      if c != zero_chunk then Array.blit img pos c 0 n
      else begin
        let nonzero = ref false in
        for i = pos to pos + n - 1 do
          if Array.unsafe_get img i <> 0 then nonzero := true
        done;
        if !nonzero then store_blit_in t.pmem pos img pos n
      end)
    t.pmem;
  Array.iter
    (fun line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0;
      line.last_writer <- -1)
    t.lines;
  store_clear t.dram;
  Array.fill t.recent_fills 0 prefetch_window (-1);
  store_clear t.recent_count;
  t.recent_pos <- 0;
  (* A captured image carries no fault state: each adversarial re-recovery
     starts from healthy media and plants its own faults. *)
  Bytes.fill t.poisoned_bits 0 (Bytes.length t.poisoned_bits) '\000';
  t.n_poisoned <- 0;
  Bytes.fill t.transient_bits 0 (Bytes.length t.transient_bits) '\000';
  t.n_transient <- 0

let poke_persisted t addr v =
  if addr < 0 || addr >= t.cfg.nvm_words then
    invalid_arg "Memsys.poke_persisted: address not in NVMM";
  store_set t.pmem addr v

(* ------------------------------------------------------------------ *)
(* Fault-plan hooks: plant media faults directly (the crash explorer's
   fault dimension), independent of the seeded [faults] config. *)

let check_nvm_line t lineno =
  if lineno < 0 || lineno * t.lw >= t.cfg.nvm_words then
    invalid_arg "Memsys: line not in NVMM"

(* Poisoning drops any cached copy first (without write-back), preserving
   the invariant that a poisoned line is never cached: every subsequent
   access must go through [fill] and hit the media check. *)
let poison_line t lineno =
  check_nvm_line t lineno;
  (match find_line t lineno with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ());
  if not (bit_get t.poisoned_bits lineno) then begin
    bit_set t.poisoned_bits lineno;
    t.n_poisoned <- t.n_poisoned + 1
  end

let arm_transient_fault t lineno =
  check_nvm_line t lineno;
  (match find_line t lineno with
  | Some line ->
      line.tag <- -1;
      line.dirty <- false;
      line.dirty_mask <- 0
  | None -> ());
  if not (bit_get t.transient_bits lineno) then begin
    bit_set t.transient_bits lineno;
    t.n_transient <- t.n_transient + 1
  end

let is_poisoned t lineno =
  lineno >= 0 && lineno < t.nvm_lines && bit_get t.poisoned_bits lineno

let poisoned_lines t =
  let acc = ref [] in
  for lineno = t.nvm_lines - 1 downto 0 do
    if bit_get t.poisoned_bits lineno then acc := lineno :: !acc
  done;
  !acc

(* Clear a poisoned line, zeroing its media content (the stored bits are
   gone; what a real scrub or sector remap does). Emits [Media_scrub] so
   repairs are observable on the pipeline. *)
let scrub_line t lineno =
  check_nvm_line t lineno;
  if bit_get t.poisoned_bits lineno then begin
    bit_clear t.poisoned_bits lineno;
    t.n_poisoned <- t.n_poisoned - 1
  end;
  store_fill_zero t.pmem (lineno * t.lw) t.lw;
  if t.stats_on then
    t.stats.Stats.media_scrubs <- t.stats.Stats.media_scrubs + 1;
  if has_subs t then emit t (Event.Media_scrub { line = lineno })
