(** Simulated memory system: a volatile set-associative cache in front of a
    persistent NVMM image and a volatile DRAM region.

    The address space is split: word addresses in [0, nvm_words) are
    NVMM-backed and survive {!crash}; addresses in
    [nvm_words, nvm_words + dram_words) are DRAM-backed and are lost.

    Write-back follows the x86 PCSO persistency model: a dirty line may be
    written back at any time (spontaneous eviction), and a write-back copies
    the line as a whole — so two stores to the same line never persist out of
    program order, which is the property In-Cache-Line Logging relies on.
    {!pwb} models [clwb] and {!psync} models [sfence].

    Latency costs are reported through a pluggable charge hook
    ({!set_charge}), which the scheduler binds to the virtual clock of the
    running simulated thread. *)

(** Seeded faulty-media model (opt-in). At every {!crash}, a dedicated RNG
    derived from [fault_seed] and the crash ordinal decides, per dirty NVMM
    line, whether the in-flight write-back {e tears} (a strict subset of
    its dirty words persists; words stay 8-byte atomic) or the line's media
    {e poisons} (loads raise {!Media_error} until {!scrub_line}); plus a
    batch of bit flips on persisted words and armed one-shot transient read
    faults. Fully replayable from the seed. *)
type fault_config = {
  fault_seed : int;
  tear_rate : float;  (** per dirty NVMM line at crash *)
  poison_rate : float;  (** per dirty NVMM line at crash *)
  bitflip_rate : float;  (** expected flips per crash, per NVMM word *)
  transient_rate : float;  (** expected armed lines per crash, per NVMM line *)
}

val no_faults : fault_config
(** All rates zero, seed 0. *)

type config = {
  nvm_words : int;  (** words of persistent memory (line-aligned) *)
  dram_words : int;  (** words of volatile DRAM *)
  line_words : int;  (** words per cache line *)
  sets : int;  (** cache sets *)
  ways : int;  (** cache associativity *)
  latency : Latency.t;  (** cost model *)
  evict_rate : float;  (** per-store probability of a spontaneous eviction *)
  seed : int;  (** RNG seed for eviction *)
  eadr : bool;  (** cache in the persistent domain (paper section 6) *)
  pcso : bool;
      (** [true]: line-snapshot write-back (x86 PCSO). [false]: word-granular
          write-back ablation — a {e spontaneous} write-back persists a
          random subset of the line's dirty words (the rest stay dirty and
          cached), deliberately breaking same-line persist ordering.
          Explicit {!pwb} and capacity evictions still persist the whole
          line: the ablation weakens ordering, never durability, so
          explicitly-flushing systems stay correct under it. *)
  faults : fault_config option;
      (** seeded media-fault injection at crash time; [None] (the default)
          is the perfect-media model and costs nothing *)
}

val default_config : config
(** 8 MiB NVMM / 2 MiB DRAM address space, 512 KiB 8-way cache with 64-byte
    lines, Optane-like latencies, PCSO on, eADR off. *)

type t

val create : config -> t
(** Fresh memory system with a zeroed persistent image.
    @raise Invalid_argument if [nvm_words] is not line-aligned. *)

val config : t -> config

val stats : t -> Stats.t
(** The counter record updated by the default {!Stats.subscriber} attached
    at creation. After {!clear_subscribers} the record freezes. *)

(** {2 Event pipeline}

    Every observable action is published as a typed {!Event.t} to the
    subscriber list, in attach order. With no external subscriber attached
    no event is even constructed: the default stats counters (logically
    subscription 0, reported by {!subscriber_count}) are bumped inline on
    the hot path, so the stats-only configuration costs one integer
    increment per event site and never allocates. Subscribers must not
    subscribe or unsubscribe from within a callback. *)

type subscription

val subscribe : t -> (Event.t -> unit) -> subscription
(** Attach a subscriber; it observes every subsequent event. *)

val unsubscribe : t -> subscription -> unit
(** Detach one subscriber (no-op if already detached). *)

val clear_subscribers : t -> unit
(** Detach every subscriber, including the default stats counter — the
    zero-cost configuration for hot benchmarking runs. *)

val subscriber_count : t -> int

val set_charge : t -> (float -> unit) -> unit
(** Install the hook that receives the nanosecond cost of each operation. *)

val get_charge : t -> float -> unit
(** Current charge hook (used to save/restore around flusher-pool costing). *)

val set_tid_provider : t -> (unit -> int) -> unit
(** Install the hook identifying the running simulated thread (-1 when
    none). Enables the MESI-style coherence cost model: reading a line last
    written by a different thread pays a cache-to-cache transfer, writing a
    line not exclusively owned pays an invalidation round. *)

val is_nvm : t -> Addr.t -> bool
(** Whether the address is NVMM-backed. *)

exception Media_error of { addr : int; line : int; transient : bool }
(** Raised by an access that misses into a poisoned (or transiently
    failing) NVMM line. [transient] faults fail exactly once and heal;
    poison persists until {!scrub_line}. The raise happens before any
    cache mutation, so a caught error leaves the cache untouched and the
    access can be retried. *)

val load : t -> Addr.t -> int
(** Read a word through the cache.
    @raise Media_error on a miss into a poisoned line. *)

val store : t -> Addr.t -> int -> unit
(** Write a word through the cache (write-allocate); may trigger a
    spontaneous eviction of some dirty line. *)

val pwb : t -> Addr.t -> unit
(** [clwb]: persist the line holding the address. Eager application is a
    legal conservative PCSO behaviour. *)

val psync : t -> unit
(** [sfence]: ordering fence (cost only, since {!pwb} applies eagerly). *)

val crash : t -> unit
(** Power failure: drop all volatile state (cache contents and the whole
    DRAM region). Under eADR, dirty NVMM lines are drained first. *)

val persisted : t -> Addr.t -> int
(** Read the NVMM image directly, bypassing the cache (recovery-time and
    test-oracle view). @raise Invalid_argument outside the NVMM region. *)

val force_evict : t -> Addr.t -> unit
(** Deterministically write back and invalidate the line holding the address
    (test hook: force a chosen partial state into NVMM). *)

val drop_line : t -> Addr.t -> unit
(** Invalidate the line holding the address {e without} write-back (test
    hook: guarantee a store did not persist). *)

val is_cached_dirty : t -> Addr.t -> bool
(** Whether the line holding the address is cached and dirty. *)

val flush_all : t -> unit
(** Write back every dirty line (test hook / clean shutdown). *)

(** {2 Crash-image hooks}

    Host-level accessors for the systematic crash explorer
    ([lib/crashtest]): none of them charges latency, emits an event or
    perturbs cache replacement state, so watched and unwatched runs stay
    bit-identical. *)

val peek : t -> Addr.t -> int
(** Logical (cache-coherent) view of a word: the cached copy if present,
    else the backing store. Free and event-silent, unlike {!load}. *)

type dirty_line = { lineno : int; data : int array; mask : int }
(** A dirty NVMM-backed cache line: its line number, a copy of its cached
    contents and the bitmask of dirty words. *)

val dirty_nvm_lines : t -> dirty_line list
(** Every dirty NVMM-backed line currently cached, in deterministic order.
    Capture {e before} {!crash}: this is the set of lines whose write-back
    a power failure may or may not have completed, i.e. the degrees of
    freedom of the adversarial crash-image enumeration. *)

val image : t -> int array
(** Copy of the full persistent NVMM image. *)

val reset_to_image : t -> int array -> unit
(** Restore the persistent image from a copy taken with {!image}, drop all
    cache contents without write-back and zero the DRAM: rewinds the world
    to a captured post-crash state so one crash point can be re-recovered
    under several adversarial images.
    @raise Invalid_argument on image size mismatch. *)

val poke_persisted : t -> Addr.t -> int -> unit
(** Write one word directly into the NVMM image (adversarial-image
    construction; bypasses the cache entirely).
    @raise Invalid_argument outside the NVMM region. *)

(** {2 Fault-plan hooks}

    Plant media faults directly — the crash explorer's fault dimension
    layers these on adversarial crash images, independently of the seeded
    [faults] config. {!reset_to_image} clears all planted fault state.
    {!persisted}, {!peek} and {!image} are oracle views and deliberately
    bypass poison. *)

val poison_line : t -> int -> unit
(** Poison an NVMM line (by line number): every subsequent access that
    misses into it raises {!Media_error} until {!scrub_line}. Any cached
    copy is dropped without write-back first, so the poison is observed.
    @raise Invalid_argument outside the NVMM region. *)

val arm_transient_fault : t -> int -> unit
(** Arm a one-shot transient read fault on an NVMM line: the next miss
    into it raises {!Media_error} with [transient = true], then the line
    heals. @raise Invalid_argument outside the NVMM region. *)

val is_poisoned : t -> int -> bool

val poisoned_lines : t -> int list
(** Currently poisoned NVMM lines, sorted. *)

val scrub_line : t -> int -> unit
(** Clear a poisoned line and zero its media content (the stored bits are
    lost — what a real scrub or sector remap does); publishes
    [Media_scrub]. @raise Invalid_argument outside the NVMM region. *)
