(* Typed events of the simulated memory system.

   Every observable action of Memsys — accesses, cache outcomes,
   write-backs, persistence instructions, crashes — is described by one
   constructor. Memsys publishes these through a subscriber list
   (Memsys.subscribe); Stats, the observability metric registry and any
   test-local probe are ordinary subscribers on that one pipeline, so
   instrumentation composes instead of being hard-wired into the memory
   model. *)

type backing = Nvm | Dram

(* Media faults injected at crash time by the seeded fault layer: a torn
   write-back (a dirty line persisted only a subset of its words), a
   poisoned line (unreadable until scrubbed), a bit flip in a persisted
   word, or an armed transient read fault (fails once, then heals). *)
type fault =
  | Torn of { line : int; kept : int } (* bitmask of dirty words persisted *)
  | Poisoned of { line : int }
  | Bitflip of { addr : int; bit : int }
  | Transient_armed of { line : int }

type t =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Hit of { addr : int }
  | Miss of { backing : backing; addr : int; prefetched : bool }
  | Writeback of { backing : backing; line : int }
  | Pwb of { tid : int; addr : int; dirty : bool }
  | Psync of { tid : int }
  | Eviction of { line : int } (* spontaneous background eviction *)
  | Crash of { eadr : bool }
  | Fault_injected of fault
  | Media_error of { addr : int; line : int; transient : bool }
      (* a load touched a poisoned (or transiently failing) line *)
  | Media_scrub of { line : int } (* host/recovery cleared a poisoned line *)

let backing_label = function Nvm -> "nvm" | Dram -> "dram"

let pp_fault ppf = function
  | Torn { line; kept } -> Fmt.pf ppf "torn line %d (kept %#x)" line kept
  | Poisoned { line } -> Fmt.pf ppf "poisoned line %d" line
  | Bitflip { addr; bit } -> Fmt.pf ppf "bitflip word %d bit %d" addr bit
  | Transient_armed { line } -> Fmt.pf ppf "transient fault armed line %d" line

let pp ppf = function
  | Load { tid; addr } -> Fmt.pf ppf "load[%d] %d" tid addr
  | Store { tid; addr } -> Fmt.pf ppf "store[%d] %d" tid addr
  | Hit { addr } -> Fmt.pf ppf "hit %d" addr
  | Miss { backing; addr; prefetched } ->
      Fmt.pf ppf "miss(%s%s) %d" (backing_label backing)
        (if prefetched then ",prefetched" else "")
        addr
  | Writeback { backing; line } ->
      Fmt.pf ppf "writeback(%s) line %d" (backing_label backing) line
  | Pwb { tid; addr; dirty } ->
      Fmt.pf ppf "pwb[%d] %d%s" tid addr (if dirty then "" else " (clean)")
  | Psync { tid } -> Fmt.pf ppf "psync[%d]" tid
  | Eviction { line } -> Fmt.pf ppf "eviction line %d" line
  | Crash { eadr } -> Fmt.pf ppf "crash%s" (if eadr then " (eadr)" else "")
  | Fault_injected f -> Fmt.pf ppf "fault: %a" pp_fault f
  | Media_error { addr; line; transient } ->
      Fmt.pf ppf "media error%s word %d (line %d)"
        (if transient then " (transient)" else "")
        addr line
  | Media_scrub { line } -> Fmt.pf ppf "media scrub line %d" line
