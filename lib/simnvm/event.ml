(* Typed events of the simulated memory system.

   Every observable action of Memsys — accesses, cache outcomes,
   write-backs, persistence instructions, crashes — is described by one
   constructor. Memsys publishes these through a subscriber list
   (Memsys.subscribe); Stats, the observability metric registry and any
   test-local probe are ordinary subscribers on that one pipeline, so
   instrumentation composes instead of being hard-wired into the memory
   model. *)

type backing = Nvm | Dram

type t =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Hit of { addr : int }
  | Miss of { backing : backing; addr : int; prefetched : bool }
  | Writeback of { backing : backing; line : int }
  | Pwb of { tid : int; addr : int; dirty : bool }
  | Psync of { tid : int }
  | Eviction of { line : int } (* spontaneous background eviction *)
  | Crash of { eadr : bool }

let backing_label = function Nvm -> "nvm" | Dram -> "dram"

let pp ppf = function
  | Load { tid; addr } -> Fmt.pf ppf "load[%d] %d" tid addr
  | Store { tid; addr } -> Fmt.pf ppf "store[%d] %d" tid addr
  | Hit { addr } -> Fmt.pf ppf "hit %d" addr
  | Miss { backing; addr; prefetched } ->
      Fmt.pf ppf "miss(%s%s) %d" (backing_label backing)
        (if prefetched then ",prefetched" else "")
        addr
  | Writeback { backing; line } ->
      Fmt.pf ppf "writeback(%s) line %d" (backing_label backing) line
  | Pwb { tid; addr; dirty } ->
      Fmt.pf ppf "pwb[%d] %d%s" tid addr (if dirty then "" else " (clean)")
  | Psync { tid } -> Fmt.pf ppf "psync[%d]" tid
  | Eviction { line } -> Fmt.pf ppf "eviction line %d" line
  | Crash { eadr } -> Fmt.pf ppf "crash%s" (if eadr then " (eadr)" else "")
