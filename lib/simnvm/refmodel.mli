(** Naive reference memory model: the executable specification of
    DESIGN.md's PCSO semantics that the optimized {!Memsys} kernel is
    differential-tested against (see test/test_refmodel.ml).

    It follows the kernel's decision procedure — set placement, LRU
    victims, the prefetch window, coherence charges, every RNG draw in the
    same order — but over deliberately simple structures: sparse word-maps
    for the backing stores, an explicit dirty-offset set per line,
    option-valued cache slots, plain lists everywhere. A run records its
    full event stream and accumulates its latency charges, so it can be
    compared against {!Memsys} event-for-event and to float equality on
    total cost. Media faults raise the shared {!Memsys.Media_error}. *)

type t

val create : Memsys.config -> t
(** Fresh model over a zeroed persistent image.
    @raise Invalid_argument if [nvm_words] is not line-aligned. *)

val set_tid_provider : t -> (unit -> int) -> unit
(** Install the running-thread hook. Must be a pure read (the model and
    the kernel may call it a different number of times per operation). *)

val load : t -> int -> int
(** @raise Memsys.Media_error on a miss into a poisoned/transient line. *)

val store : t -> int -> int -> unit
val pwb : t -> int -> unit
val psync : t -> unit
val crash : t -> unit

val persisted : t -> int -> int
val image : t -> int array
val is_cached_dirty : t -> int -> bool

val poison_line : t -> int -> unit
val arm_transient_fault : t -> int -> unit
val scrub_line : t -> int -> unit
val poisoned_lines : t -> int list

val total_charge : t -> float
(** Sum of all latency charges so far, accumulated in operation order. *)

val events : t -> Event.t list
(** Every event emitted so far, in emission order. *)

val clear_events : t -> unit
