(* Event counters of the simulated memory system. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable hits : int;
  mutable dram_misses : int;
  mutable nvm_misses : int;
  mutable dram_writebacks : int;
  mutable nvm_writebacks : int;
  mutable pwbs : int;
  mutable psyncs : int;
  mutable spontaneous_evictions : int;
  mutable crashes : int;
  mutable faults_injected : int;
  mutable media_errors : int;
  mutable media_scrubs : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    hits = 0;
    dram_misses = 0;
    nvm_misses = 0;
    dram_writebacks = 0;
    nvm_writebacks = 0;
    pwbs = 0;
    psyncs = 0;
    spontaneous_evictions = 0;
    crashes = 0;
    faults_injected = 0;
    media_errors = 0;
    media_scrubs = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.hits <- 0;
  t.dram_misses <- 0;
  t.nvm_misses <- 0;
  t.dram_writebacks <- 0;
  t.nvm_writebacks <- 0;
  t.pwbs <- 0;
  t.psyncs <- 0;
  t.spontaneous_evictions <- 0;
  t.crashes <- 0;
  t.faults_injected <- 0;
  t.media_errors <- 0;
  t.media_scrubs <- 0

(* Stats is one subscriber of the Memsys event pipeline: Memsys.create
   attaches [subscriber] by default, so the counters keep their historical
   meaning while Memsys itself stays free of instrumentation concerns. *)
let subscriber t (ev : Event.t) =
  match ev with
  | Event.Load _ -> t.loads <- t.loads + 1
  | Event.Store _ -> t.stores <- t.stores + 1
  | Event.Hit _ -> t.hits <- t.hits + 1
  | Event.Miss { backing = Event.Dram; _ } ->
      t.dram_misses <- t.dram_misses + 1
  | Event.Miss { backing = Event.Nvm; _ } -> t.nvm_misses <- t.nvm_misses + 1
  | Event.Writeback { backing = Event.Dram; _ } ->
      t.dram_writebacks <- t.dram_writebacks + 1
  | Event.Writeback { backing = Event.Nvm; _ } ->
      t.nvm_writebacks <- t.nvm_writebacks + 1
  | Event.Pwb _ -> t.pwbs <- t.pwbs + 1
  | Event.Psync _ -> t.psyncs <- t.psyncs + 1
  | Event.Eviction _ ->
      t.spontaneous_evictions <- t.spontaneous_evictions + 1
  | Event.Crash _ -> t.crashes <- t.crashes + 1
  | Event.Fault_injected _ -> t.faults_injected <- t.faults_injected + 1
  | Event.Media_error _ -> t.media_errors <- t.media_errors + 1
  | Event.Media_scrub _ -> t.media_scrubs <- t.media_scrubs + 1

let accesses t = t.loads + t.stores

let hit_rate t =
  let n = accesses t in
  if n = 0 then 1.0 else float_of_int t.hits /. float_of_int n

let pp ppf t =
  Fmt.pf ppf
    "@[<v>accesses=%d (loads=%d stores=%d) hit_rate=%.3f@,\
     misses: dram=%d nvm=%d@,\
     writebacks: dram=%d nvm=%d spontaneous=%d@,\
     pwb=%d psync=%d crashes=%d@,\
     faults=%d media-errors=%d scrubs=%d@]"
    (accesses t) t.loads t.stores (hit_rate t) t.dram_misses t.nvm_misses
    t.dram_writebacks t.nvm_writebacks t.spontaneous_evictions t.pwbs t.psyncs
    t.crashes t.faults_injected t.media_errors t.media_scrubs
