(** Typed events of the simulated memory system.

    {!Memsys} publishes one event per observable action through its
    subscriber list ({!Memsys.subscribe}); {!Stats} and the observability
    layer consume them as ordinary subscribers on that single pipeline. *)

type backing = Nvm | Dram

(** Media faults injected at crash time by the seeded fault layer. *)
type fault =
  | Torn of { line : int; kept : int }
      (** a dirty line in flight persisted only the [kept] subset of its
          dirty words (bitmask) — whole-line atomicity violated *)
  | Poisoned of { line : int }  (** line unreadable until scrubbed *)
  | Bitflip of { addr : int; bit : int }  (** persisted word corrupted *)
  | Transient_armed of { line : int }
      (** next read of the line fails once, then the line heals *)

type t =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Hit of { addr : int }  (** access served by the cache *)
  | Miss of { backing : backing; addr : int; prefetched : bool }
      (** line fill from the backing store (possibly the prefetch stream) *)
  | Writeback of { backing : backing; line : int }
      (** dirty line persisted to its backing store (any cause) *)
  | Pwb of { tid : int; addr : int; dirty : bool }
      (** clwb issued; [dirty] tells whether a write-back actually happened *)
  | Psync of { tid : int }  (** sfence *)
  | Eviction of { line : int }
      (** spontaneous background eviction (the hazard undo logging fights) *)
  | Crash of { eadr : bool }  (** power failure *)
  | Fault_injected of fault  (** the fault layer corrupted media at a crash *)
  | Media_error of { addr : int; line : int; transient : bool }
      (** a load touched a poisoned (or transiently failing) line; the
          matching {!Memsys.Media_error} exception is raised after this *)
  | Media_scrub of { line : int }
      (** a poisoned line was cleared (content lost, media reusable) *)

val backing_label : backing -> string
val pp_fault : fault Fmt.t
val pp : t Fmt.t
