(** Typed events of the simulated memory system.

    {!Memsys} publishes one event per observable action through its
    subscriber list ({!Memsys.subscribe}); {!Stats} and the observability
    layer consume them as ordinary subscribers on that single pipeline. *)

type backing = Nvm | Dram

type t =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Hit of { addr : int }  (** access served by the cache *)
  | Miss of { backing : backing; addr : int; prefetched : bool }
      (** line fill from the backing store (possibly the prefetch stream) *)
  | Writeback of { backing : backing; line : int }
      (** dirty line persisted to its backing store (any cause) *)
  | Pwb of { tid : int; addr : int; dirty : bool }
      (** clwb issued; [dirty] tells whether a write-back actually happened *)
  | Psync of { tid : int }  (** sfence *)
  | Eviction of { line : int }
      (** spontaneous background eviction (the hazard undo logging fights) *)
  | Crash of { eadr : bool }  (** power failure *)

val backing_label : backing -> string
val pp : t Fmt.t
