(** Event counters of the simulated memory system. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable hits : int;
  mutable dram_misses : int;
  mutable nvm_misses : int;
  mutable dram_writebacks : int;
  mutable nvm_writebacks : int;
  mutable pwbs : int;
  mutable psyncs : int;
  mutable spontaneous_evictions : int;
  mutable crashes : int;
  mutable faults_injected : int;
  mutable media_errors : int;
  mutable media_scrubs : int;
}

val create : unit -> t
val reset : t -> unit

val subscriber : t -> Event.t -> unit
(** Fold one memory event into the counters. {!Memsys.create} attaches this
    to its own pipeline by default; detaching it ({!Memsys.clear_subscribers})
    freezes the counters. *)

val accesses : t -> int
(** Total loads + stores. *)

val hit_rate : t -> float
(** Cache hit rate over all accesses; 1.0 when no access happened. *)

val pp : t Fmt.t
