(** Real-process SIGKILL crash harness over the {!Filemem} backend.

    Forks a child that runs a seeded multi-threaded ResPCT workload
    (hashmap + partitioned InCLL counters, restart point after every op)
    against a file-backed image, SIGKILLs it at a randomised wall-clock
    point, reopens the surviving file in the parent and runs
    {!Respct.Recovery.run_verified_backend} plus two durability oracles
    against the child's progress log:

    - {b no lost sealed epoch}: the durable epoch word must be at least
      the largest epoch the child logged as sealed;
    - {b last-checkpoint snapshot}: when recovery promises a bit-exact
      image, the recovered digest must equal the digest the child took at
      the failed epoch's quiescent instant.

    Campaigns also fork-and-kill a recovery pass itself (idempotence
    sub-trial) and hunt a planted [Elide_psync] mutant, shrinking any
    counterexample to a replayable parameter string. The kill point is
    real time, so reproduction is statistical: shrinking and [--replay]
    re-run a candidate several times and accept any violating run. *)

type params = {
  seed : int;
  trial : int;
  threads : int;  (** worker threads (slots [0..threads-1]) *)
  keyspace : int;  (** hashmap keys drawn from [0, keyspace) *)
  kill_delay_us : int;  (** wall-clock delay after readiness before SIGKILL *)
  mutant : bool;  (** arm [Filemem.Elide_psync] once steady state is reached *)
}

val replay_string : params -> string
(** ["seed=..;trial=..;threads=..;keyspace=..;delay_us=..;mutant=0|1"] *)

val parse_replay : string -> params option

val digest_with :
  read:(int -> int) ->
  line_words:int ->
  fuel:int ->
  heads:int ->
  buckets:int ->
  cbase:int ->
  ncounters:int ->
  int
(** Durable-image digest shared by every backend-level crash oracle: the
    hashmap's logical bindings (walked via
    {!Pds.Hashmap_respct.bindings_of} from the [heads] array) followed by
    [ncounters] raw counter cells at [cbase], folded into one integer.
    Pass [ncounters:0] when the workload has no counter region. Used by
    the prockill child/parent pair, the Filemem crash matrix and the
    service-layer crash trials, so a recovered image can be compared to a
    digest taken at a quiescent instant on the other side of a crash. *)

val layout_of : Filemem.t -> Respct.Layout.t
(** Reconstruct the ResPCT layout from a (possibly reopened) file-backed
    image's self-describing header — the layout recovery needs. *)

type violation =
  | Child_error of string
  | Reopen_failed of string
  | Unrecoverable_image of string
  | Lost_sealed_epoch of { durable : int; sealed : int }
  | Snapshot_mismatch of { epoch : int; expected : int; got : int }
  | Oracle_walk_failed of { epoch : int; msg : string }

val pp_violation : violation Fmt.t

type outcome = {
  o_params : params;
  o_killed : bool;  (** the child died by our SIGKILL (not a clean exit) *)
  o_finished : bool;  (** the child logged completion before dying *)
  o_recovery_killed : bool;
      (** a recovery pass was itself SIGKILLed before the final verified
          recovery (idempotence sub-trial) *)
  o_verdict : string;  (** clean / repaired / salvaged / unrecoverable / none *)
  o_failed_epoch : int;
  o_sealed_max : int;  (** largest sealed epoch in the child's log, -1 if none *)
  o_truncated : bool;
  o_violations : violation list;  (** empty = the trial passed all oracles *)
}

val run_trial :
  ?recovery_kill:bool ->
  ?recovery_kill_delay_us:int ->
  params ->
  dir:string ->
  outcome
(** One fork / kill / reopen / verify cycle. [recovery_kill] additionally
    SIGKILLs a recovery process mid-flight before the parent's own
    verified recovery, proving recovery idempotent. Trial files live
    under [dir] and are removed afterwards. *)

type mutant_result = {
  m_detected : bool;
  m_attempts : int;
  m_first : outcome option;
  m_shrunk : outcome option;
  m_replay : string option;  (** replayable shrunk counterexample *)
}

type campaign = {
  c_seed : int;
  c_kills : int;
  c_trials : outcome list;
  c_mutant : mutant_result option;
  c_skipped : string option;  (** reason, when fork/SIGKILL is unavailable *)
}

val violation_count : campaign -> int

val run :
  ?kills:int ->
  ?seed:int ->
  ?max_delay_us:int ->
  ?mutant_trials:int ->
  ?progress:(string -> unit) ->
  ?dir:string ->
  unit ->
  campaign
(** Full campaign: [kills] fault-free kill trials (varying thread count,
    keyspace and kill delay, with seeded recovery-kill sub-trials), then
    up to [mutant_trials] attempts to catch the planted psync-elision
    mutant, shrinking the first counterexample. Degrades to a skipped
    campaign (never raises) where [fork] is unavailable. [dir] defaults
    to a fresh directory under [/dev/shm] when writable (else the system
    temp dir). *)

val replay :
  string -> dir:string -> (params * outcome option, string) result
(** Re-run a shrunk counterexample string: [Ok (params, Some outcome)]
    when some attempt reproduced a violation, [Ok (params, None)] when
    none did (the kill point is real time — retry), [Error _] when the
    string does not parse. *)

val reproduces : ?attempts:int -> params -> dir:string -> outcome option

val default_dir : unit -> string
val fork_available : unit -> bool

val json_of_outcome : outcome -> Obs.Json.t

val json_of_campaign : campaign -> Obs.Json.t
(** Schema ["respct-prockill/v1"]. *)
