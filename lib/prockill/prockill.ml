(* Real-process SIGKILL crash harness.

   The simulated crash explorers (crashtest, crashmatrix) interrupt a
   virtual machine at a virtual instant; every bit of "durable" state is
   still process memory, so they can only validate the protocol against the
   simulator's own story of what survives. This harness closes that loop
   with a real operating-system crash: fork a child that runs a seeded
   ResPCT workload against a file-backed {!Filemem} image, SIGKILL it at a
   randomised (seeded, replayable) wall-clock point, reopen the surviving
   file in the parent and run {!Respct.Recovery.run_verified_backend} plus
   the durability oracles against the child's progress log.

   Child/parent protocol: the child appends one-line records to a log file,
   each written with a single unbuffered [Unix.write] so the line is in the
   kernel page cache (and thus survives SIGKILL) before the durable
   transition it predicts can happen:

     H <heads> <cbase>    workload geometry (map bucket array, counter base)
     R                    steady state reached (parent may kill from here)
     Q <epoch> <digest>   flush for <epoch> completed; durable-image digest
                          taken at the quiescent instant, before the seal
     S <epoch>            <epoch>'s commit sealed (logged after the seal)
     F                    workload budget exhausted, clean exit
     E <message>          child failed with an exception

   Ordering gives the oracles their teeth: "Q e" is durable in the log
   before e's seal can reach the medium, so if recovery reports failed
   epoch e it must find a matching digest; "S e" is logged only after the
   seal, so the durable epoch word must never fall below the largest logged
   S (a lost sealed epoch). The planted [Elide_psync] mutant breaks exactly
   this: seals stop reaching the file, and the first post-arm kill trips
   the oracle. *)

module Rng = Simnvm.Rng
module Recovery = Respct.Recovery

(* ------------------------------------------------------------------ *)
(* Workload geometry: shared by child (construction) and parent
   (oracle walk), so everything the parent cannot rederive from the
   file header travels in the H log line. *)

let line_words = Simnvm.Addr.default_line_words
let nvm_words = 1 lsl 16
let dram_words = 1 lsl 12
let registry_per_slot = 1024
let buckets = 32
let ncounters = 16
let period_ns = 40_000.0
let checkpoint_budget = 20_000

type params = {
  seed : int;
  trial : int;
  threads : int;  (** worker threads (slots [0..threads-1]) *)
  keyspace : int;  (** hashmap keys drawn from [0, keyspace) *)
  kill_delay_us : int;  (** wall-clock delay after readiness before SIGKILL *)
  mutant : bool;  (** arm [Filemem.Elide_psync] once steady state is reached *)
}

let replay_string p =
  Printf.sprintf "seed=%d;trial=%d;threads=%d;keyspace=%d;delay_us=%d;mutant=%d"
    p.seed p.trial p.threads p.keyspace p.kill_delay_us
    (if p.mutant then 1 else 0)

let parse_replay s =
  let kv = Hashtbl.create 8 in
  let ok =
    List.for_all
      (fun field ->
        match String.split_on_char '=' field with
        | [ k; v ] -> (
            match int_of_string_opt v with
            | Some n ->
                Hashtbl.replace kv k n;
                true
            | None -> false)
        | _ -> false)
      (String.split_on_char ';' (String.trim s))
  in
  let get k = Hashtbl.find_opt kv k in
  match
    ( ok,
      get "seed",
      get "trial",
      get "threads",
      get "keyspace",
      get "delay_us",
      get "mutant" )
  with
  | ( true,
      Some seed,
      Some trial,
      Some threads,
      Some keyspace,
      Some delay,
      Some mutant )
    when threads >= 1 && threads <= ncounters && keyspace >= 1 && delay >= 0 ->
      Some
        { seed; trial; threads; keyspace; kill_delay_us = delay;
          mutant = mutant <> 0 }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Durable-image digest: the hashmap's logical bindings plus the raw
   counter records, folded into one integer. Both sides compute it the
   same way — the child over [Filemem.persisted] at the quiescent
   instant, the parent over the reopened file after recovery. *)

let digest_with ~read ~line_words ~fuel ~heads ~buckets ~cbase ~ncounters =
  let acc = ref 0x9e3779b9 in
  let mix v = acc := (!acc * 1000003) lxor (v land max_int) land 0x3FFFFFFFFFFFF in
  let bindings =
    Pds.Hashmap_respct.bindings_of ~read ~line_words ~fuel ~heads ~buckets
  in
  List.iter
    (fun (k, v) ->
      mix k;
      mix v)
    bindings;
  for i = 0 to ncounters - 1 do
    mix (read (Respct.Heap.cell_at_words ~line_words cbase i))
  done;
  !acc

let digest ~read ~heads ~cbase =
  digest_with ~read ~line_words ~fuel:nvm_words ~heads ~buckets ~cbase
    ~ncounters

(* ------------------------------------------------------------------ *)
(* Child side. Runs after [Unix.fork] in the child process; never
   returns (always [Unix._exit]). *)

let log_to fd s =
  let line = s ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line))

let run_child (p : params) ~img ~logpath : unit =
  let lfd =
    Unix.openfile logpath [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let log = log_to lfd in
  (try
     let cfg =
       {
         Filemem.default_config with
         Filemem.nvm_words;
         Filemem.dram_words;
         Filemem.evict_rate = 0.02;
         Filemem.seed = p.seed + (1000003 * p.trial);
       }
     in
     let meta =
       {
         Filemem.max_threads = p.threads;
         Filemem.registry_per_slot = registry_per_slot;
         Filemem.integrity = true;
       }
     in
     let fm = Filemem.create ~meta cfg ~path:img in
     let sched = Simsched.Scheduler.create ~seed:(p.seed + p.trial) () in
     let env = Simsched.Env.make_backend (Filemem.backend fm) sched in
     let rcfg =
       {
         Respct.Runtime.default_config with
         Respct.Runtime.period_ns;
         Respct.Runtime.flusher_pool = 2;
         Respct.Runtime.max_threads = p.threads;
         Respct.Runtime.registry_per_slot = registry_per_slot;
         Respct.Runtime.integrity = true;
       }
     in
     let rt = Respct.Runtime.create ~cfg:rcfg env in
     let structures = ref None in
     let stop = ref false in
     ignore
       (Simsched.Scheduler.spawn ~name:"pk-coord" sched (fun () ->
            while Option.is_none !structures do
              Simsched.Scheduler.sleep sched 1_000.0
            done;
            let m, cbase = Option.get !structures in
            let heads = Pds.Hashmap_respct.heads m in
            let dig () = digest ~read:(Filemem.persisted fm) ~heads ~cbase in
            log (Printf.sprintf "H %d %d" heads cbase);
            let last = ref 0 in
            let ckpt () =
              Respct.Runtime.run_checkpoint rt ~on_flushed:(fun e ->
                  last := e;
                  log (Printf.sprintf "Q %d %d" e (dig ())));
              log (Printf.sprintf "S %d" !last)
            in
            (* One checkpoint before declaring readiness, so the mutant
               (armed below, after the seal) can never corrupt setup and
               every kill lands on a steady-state image. *)
            ckpt ();
            if p.mutant then Filemem.arm_mutant fm Filemem.Elide_psync;
            log "R";
            let n = ref 0 in
            while !n < checkpoint_budget do
              incr n;
              Simsched.Scheduler.sleep sched period_ns;
              ckpt ()
            done;
            stop := true));
     for w = 0 to p.threads - 1 do
       let wseed = p.seed + (7919 * p.trial) + (104729 * w) in
       ignore
         (Respct.Runtime.spawn ~name:(Printf.sprintf "pk-w%d" w) rt ~slot:w
            (fun _ctx ->
              if w = 0 then begin
                let cbase =
                  Respct.Runtime.alloc_incll_array rt ~slot:0 ncounters ~init:0
                in
                let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets in
                structures := Some (m, cbase)
              end;
              while Option.is_none !structures do
                Simsched.Scheduler.sleep sched 1_000.0
              done;
              let m, cbase = Option.get !structures in
              let rng = Rng.create wseed in
              while not !stop do
                (match Rng.int rng 8 with
                | 0 ->
                    ignore
                      (Pds.Hashmap_respct.remove m ~slot:w
                         ~key:(Rng.int rng p.keyspace))
                | 1 | 2 ->
                    (* Counters are partitioned by slot (worker [w] owns
                       indices congruent to [w]): InCLL updates need the
                       caller to own the variable's lock, and ownership is
                       the cheapest lock there is. *)
                    let k = Rng.int rng (ncounters / p.threads) in
                    let cell =
                      Respct.Heap.cell_at_words ~line_words cbase
                        (w + (p.threads * k))
                    in
                    Respct.Runtime.update rt ~slot:w cell
                      (Respct.Runtime.read rt ~slot:w cell + 1)
                | _ ->
                    ignore
                      (Pds.Hashmap_respct.insert m ~slot:w
                         ~key:(Rng.int rng p.keyspace)
                         ~value:(Rng.bits rng land 0xFFFFF)));
                Respct.Runtime.rp rt ~slot:w 1
              done))
     done;
     (match Simsched.Scheduler.run sched with
     | Simsched.Scheduler.Completed | Simsched.Scheduler.Crash_interrupt _ ->
         ());
     log "F";
     Filemem.close fm;
     Unix._exit 0
   with e -> log ("E " ^ Printexc.to_string e));
  Unix._exit 2

(* ------------------------------------------------------------------ *)
(* Progress-log parsing (parent side). Only newline-terminated lines
   count: the kill can tear the last line mid-write, and a torn line
   must not fabricate a claim. Dropping it is always sound — the log
   under-approximates the child's durable progress, which is the safe
   direction for both oracles. *)

type parsed = {
  pl_geom : (int * int) option;  (** H line: heads, counter base *)
  pl_ready : bool;
  pl_digests : (int * int) list;  (** Q lines: epoch -> digest *)
  pl_sealed : int;  (** largest S epoch, [-1] if none *)
  pl_finished : bool;
  pl_error : string option;
}

let parse_log s =
  let rec complete = function [] | [ _ ] -> [] | x :: tl -> x :: complete tl in
  let lines = complete (String.split_on_char '\n' s) in
  List.fold_left
    (fun acc line ->
      match String.split_on_char ' ' line with
      | [ "R" ] -> { acc with pl_ready = true }
      | [ "F" ] -> { acc with pl_finished = true }
      | [ "H"; a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some heads, Some cbase -> { acc with pl_geom = Some (heads, cbase) }
          | _ -> acc)
      | [ "Q"; e; d ] -> (
          match (int_of_string_opt e, int_of_string_opt d) with
          | Some e, Some d -> { acc with pl_digests = (e, d) :: acc.pl_digests }
          | _ -> acc)
      | [ "S"; e ] -> (
          match int_of_string_opt e with
          | Some e -> { acc with pl_sealed = max acc.pl_sealed e }
          | None -> acc)
      | "E" :: rest ->
          { acc with pl_error = Some (String.concat " " rest) }
      | _ -> acc)
    {
      pl_geom = None;
      pl_ready = false;
      pl_digests = [];
      pl_sealed = -1;
      pl_finished = false;
      pl_error = None;
    }
    lines

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all with Sys_error _ -> ""

(* ------------------------------------------------------------------ *)
(* Oracles. *)

type violation =
  | Child_error of string
      (** the child died on an exception or never reached steady state *)
  | Reopen_failed of string
      (** [Filemem.open_existing] rejected a file that a fault-free kill
          must leave openable *)
  | Unrecoverable_image of string
      (** verified recovery failed stop on fault-free media *)
  | Lost_sealed_epoch of { durable : int; sealed : int }
      (** the durable epoch word fell below an epoch the child logged as
          sealed *)
  | Snapshot_mismatch of { epoch : int; expected : int; got : int }
      (** recovery promised an exact image whose digest disagrees with
          the child's quiescent-instant digest for the failed epoch *)
  | Oracle_walk_failed of { epoch : int; msg : string }
      (** the recovered image could not even be walked (cyclic chain)
          despite an exact-image verdict *)

let pp_violation ppf = function
  | Child_error m -> Fmt.pf ppf "child error: %s" m
  | Reopen_failed m -> Fmt.pf ppf "reopen failed: %s" m
  | Unrecoverable_image m -> Fmt.pf ppf "unrecoverable image: %s" m
  | Lost_sealed_epoch { durable; sealed } ->
      Fmt.pf ppf "lost sealed epoch: durable epoch %d < logged seal %d" durable
        sealed
  | Snapshot_mismatch { epoch; expected; got } ->
      Fmt.pf ppf "snapshot mismatch at epoch %d: logged digest %d, recovered %d"
        epoch expected got
  | Oracle_walk_failed { epoch; msg } ->
      Fmt.pf ppf "oracle walk failed at epoch %d: %s" epoch msg

type outcome = {
  o_params : params;
  o_killed : bool;  (** the child died by our SIGKILL (not a clean exit) *)
  o_finished : bool;  (** the child logged F before dying *)
  o_recovery_killed : bool;
      (** a recovery pass was itself SIGKILLed before the final verified
          recovery (idempotence sub-trial) *)
  o_verdict : string;  (** clean / repaired / salvaged / unrecoverable / none *)
  o_failed_epoch : int;
  o_sealed_max : int;
  o_truncated : bool;
  o_violations : violation list;
}

let verdict_name = function
  | Recovery.Clean -> "clean"
  | Recovery.Repaired _ -> "repaired"
  | Recovery.Salvaged _ -> "salvaged"
  | Recovery.Unrecoverable _ -> "unrecoverable"

let layout_of fm =
  let meta = Filemem.meta fm in
  let cfg = Filemem.config fm in
  Respct.Layout.v ~integrity:meta.Filemem.integrity
    ~line_words:cfg.Filemem.line_words ~nvm_words:cfg.Filemem.nvm_words
    ~max_threads:meta.Filemem.max_threads
    ~registry_per_slot:meta.Filemem.registry_per_slot ()

(* Reopen the surviving image and hold it to the oracles. *)
let check_image (p : params) ~img ~(pl : parsed) ~killed ~recovery_killed
    ~extra : outcome =
  let base =
    {
      o_params = p;
      o_killed = killed;
      o_finished = pl.pl_finished;
      o_recovery_killed = recovery_killed;
      o_verdict = "none";
      o_failed_epoch = -1;
      o_sealed_max = pl.pl_sealed;
      o_truncated = false;
      o_violations = extra;
    }
  in
  match Filemem.open_existing ~path:img () with
  | Error e ->
      {
        base with
        o_violations =
          base.o_violations @ [ Reopen_failed (Fmt.str "%a" Filemem.pp_open_error e) ];
      }
  | Ok fm ->
      Fun.protect
        ~finally:(fun () -> Filemem.close fm)
        (fun () ->
          let v =
            Recovery.run_verified_backend ~layout:(layout_of fm)
              (Filemem.backend fm)
          in
          let fe = v.Recovery.vreport.Recovery.failed_epoch in
          let viol = ref [] in
          (match v.Recovery.verdict with
          | Recovery.Unrecoverable _ ->
              viol :=
                [ Unrecoverable_image
                    (Fmt.str "%a" Recovery.pp_verdict v.Recovery.verdict) ]
          | _ -> ());
          if pl.pl_sealed >= 0 && fe < pl.pl_sealed then
            viol :=
              !viol @ [ Lost_sealed_epoch { durable = fe; sealed = pl.pl_sealed } ];
          (* The digest oracle only binds when recovery promises a
             bit-exact snapshot AND the child durably predicted this
             epoch's digest (Q is logged before the seal, so a durably
             sealed epoch always has one; epoch 0 — a kill before the
             first seal — has none). *)
          (if Recovery.exact_image v.Recovery.verdict then
             match (pl.pl_geom, List.assoc_opt fe pl.pl_digests) with
             | Some (heads, cbase), Some expected -> (
                 match digest ~read:(Filemem.persisted fm) ~heads ~cbase with
                 | got ->
                     if got <> expected then
                       viol :=
                         !viol
                         @ [ Snapshot_mismatch { epoch = fe; expected; got } ]
                 | exception Failure msg ->
                     viol :=
                       !viol @ [ Oracle_walk_failed { epoch = fe; msg } ])
             | _ -> ());
          {
            base with
            o_verdict = verdict_name v.Recovery.verdict;
            o_failed_epoch = fe;
            o_truncated = Filemem.was_truncated fm;
            o_violations = base.o_violations @ !viol;
          })

(* ------------------------------------------------------------------ *)
(* Trial driver (parent side). *)

let sigkill_pid pid =
  try Unix.kill pid Sys.sigkill
  with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let wait_ready ~logpath ~timeout =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let pl = parse_log (read_file logpath) in
    if pl.pl_ready then true
    else if Option.is_some pl.pl_error then false
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.0005;
      go ()
    end
  in
  go ()

(* Satellite oracle: SIGKILL a recovery pass itself, mid-flight, and let
   the final verified recovery in the parent prove recovery idempotent —
   a partially applied rollback (each line journalled, hence line-atomic)
   must recover to the same verdict and image as an untouched one. *)
let kill_during_recovery ~img ~delay_us =
  match Unix.fork () with
  | 0 ->
      (try
         match Filemem.open_existing ~path:img () with
         | Ok fm ->
             ignore
               (Recovery.run_verified_backend ~layout:(layout_of fm)
                  (Filemem.backend fm))
         | Error _ -> ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.sleepf (float_of_int delay_us *. 1e-6);
      sigkill_pid pid;
      ignore (Unix.waitpid [] pid)

let run_trial ?(recovery_kill = false) ?(recovery_kill_delay_us = 500)
    (p : params) ~dir : outcome =
  let tag = Printf.sprintf "pk-%d-%d" (Unix.getpid ()) p.trial in
  let img = Filename.concat dir (tag ^ ".img") in
  let logpath = Filename.concat dir (tag ^ ".log") in
  let cleanup () =
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      [ img; logpath ]
  in
  cleanup ();
  match Unix.fork () with
  | 0 ->
      run_child p ~img ~logpath;
      assert false
  | pid ->
      Fun.protect ~finally:cleanup (fun () ->
          let ready = wait_ready ~logpath ~timeout:30.0 in
          if ready then Unix.sleepf (float_of_int p.kill_delay_us *. 1e-6);
          sigkill_pid pid;
          let _, status = Unix.waitpid [] pid in
          let killed =
            match status with
            | Unix.WSIGNALED s -> s = Sys.sigkill
            | _ -> false
          in
          let pl = parse_log (read_file logpath) in
          let extra =
            (match pl.pl_error with Some m -> [ Child_error m ] | None -> [])
            @
            if ready then []
            else [ Child_error "child never reached steady state" ]
          in
          if extra <> [] then
            {
              o_params = p;
              o_killed = killed;
              o_finished = pl.pl_finished;
              o_recovery_killed = false;
              o_verdict = "none";
              o_failed_epoch = -1;
              o_sealed_max = pl.pl_sealed;
              o_truncated = false;
              o_violations = extra;
            }
          else begin
            let rk = recovery_kill && killed in
            if rk then
              kill_during_recovery ~img ~delay_us:recovery_kill_delay_us;
            check_image p ~img ~pl ~killed ~recovery_killed:rk ~extra:[]
          end)

(* ------------------------------------------------------------------ *)
(* Shrinking. The kill point is wall-clock real time, so reproduction is
   statistical: a shrink candidate is accepted only if some re-run
   attempt reproduces a violation, and the surviving counterexample is
   re-validated the same way by [--replay]. *)

let reproduces ?(attempts = 3) p ~dir =
  let rec go k =
    if k = 0 then None
    else
      let o = run_trial p ~dir in
      if o.o_violations <> [] then Some o else go (k - 1)
  in
  go attempts

let shrink p0 o0 ~dir =
  let candidates p =
    List.concat
      [
        (if p.threads > 1 then [ { p with threads = 1 } ] else []);
        (if p.keyspace > 16 then [ { p with keyspace = p.keyspace / 2 } ]
         else []);
        (if p.kill_delay_us > 1000 then
           [ { p with kill_delay_us = p.kill_delay_us / 2 } ]
         else []);
      ]
  in
  let rec go p o fuel =
    if fuel = 0 then (p, o)
    else
      match
        List.find_map
          (fun c -> Option.map (fun oc -> (c, oc)) (reproduces c ~dir))
          (candidates p)
      with
      | Some (c, oc) -> go c oc (fuel - 1)
      | None -> (p, o)
  in
  go p0 o0 12

(* ------------------------------------------------------------------ *)
(* Campaign. *)

type mutant_result = {
  m_detected : bool;
  m_attempts : int;
  m_first : outcome option;
  m_shrunk : outcome option;
  m_replay : string option;
}

type campaign = {
  c_seed : int;
  c_kills : int;
  c_trials : outcome list;
  c_mutant : mutant_result option;
  c_skipped : string option;
}

let violation_count c =
  List.fold_left (fun n o -> n + List.length o.o_violations) 0 c.c_trials

let fork_available () =
  if not Sys.unix then false
  else
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        true
    | exception Unix.Unix_error _ -> false

let default_dir () =
  let base =
    let shm = "/dev/shm" in
    if
      Sys.file_exists shm
      && Sys.is_directory shm
      && (try
            Unix.access shm [ Unix.W_OK ];
            true
          with Unix.Unix_error _ -> false)
    then shm
    else Filename.get_temp_dir_name ()
  in
  let d =
    Filename.concat base (Printf.sprintf "respct-prockill-%d" (Unix.getpid ()))
  in
  (match Unix.mkdir d 0o700 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let skipped_campaign ~seed ~kills reason =
  {
    c_seed = seed;
    c_kills = kills;
    c_trials = [];
    c_mutant = None;
    c_skipped = Some reason;
  }

let run ?(kills = 50) ?(seed = 42) ?(max_delay_us = 25_000)
    ?(mutant_trials = 12) ?(progress = fun (_ : string) -> ()) ?dir () :
    campaign =
  if not (fork_available ()) then
    skipped_campaign ~seed ~kills "fork/SIGKILL unavailable on this platform"
  else begin
    let dir, own_dir =
      match dir with Some d -> (d, false) | None -> (default_dir (), true)
    in
    let rng = Rng.create seed in
    let trials =
      List.init kills (fun i ->
          let p =
            {
              seed;
              trial = i;
              threads = 1 + (i mod 3);
              keyspace = 64 * (1 + (i mod 2));
              kill_delay_us = 50 + Rng.int rng (max 1 max_delay_us);
              mutant = false;
            }
          in
          let o =
            run_trial
              ~recovery_kill:(Rng.bool rng)
              ~recovery_kill_delay_us:(100 + Rng.int rng 2_000)
              p ~dir
          in
          if (i + 1) mod 25 = 0 then
            progress (Printf.sprintf "%d/%d kills" (i + 1) kills);
          o)
    in
    let mutant =
      if mutant_trials <= 0 then None
      else begin
        let rec hunt k =
          if k >= mutant_trials then
            {
              m_detected = false;
              m_attempts = k;
              m_first = None;
              m_shrunk = None;
              m_replay = None;
            }
          else
            let p =
              {
                seed;
                trial = 100_000 + k;
                threads = 2;
                keyspace = 64;
                kill_delay_us = 2_000 + Rng.int rng 20_000;
                mutant = true;
              }
            in
            let o = run_trial p ~dir in
            if o.o_violations <> [] then begin
              progress "mutant detected; shrinking";
              let sp, so = shrink p o ~dir in
              {
                m_detected = true;
                m_attempts = k + 1;
                m_first = Some o;
                m_shrunk = Some so;
                m_replay = Some (replay_string sp);
              }
            end
            else hunt (k + 1)
        in
        Some (hunt 0)
      end
    in
    if own_dir then (
      try Unix.rmdir dir with Unix.Unix_error _ -> ());
    { c_seed = seed; c_kills = kills; c_trials = trials; c_mutant = mutant;
      c_skipped = None }
  end

let replay s ~dir =
  match parse_replay s with
  | None -> Error (Printf.sprintf "unparsable replay string: %S" s)
  | Some p -> Ok (p, reproduces ~attempts:5 p ~dir)

(* ------------------------------------------------------------------ *)
(* JSON report ("respct-prockill/v1"). *)

let json_of_outcome (o : outcome) : Obs.Json.t =
  let p = o.o_params in
  Obs.Json.Obj
    [
      ("trial", Obs.Json.Int p.trial);
      ("threads", Obs.Json.Int p.threads);
      ("keyspace", Obs.Json.Int p.keyspace);
      ("delay_us", Obs.Json.Int p.kill_delay_us);
      ("mutant", Obs.Json.Bool p.mutant);
      ("killed", Obs.Json.Bool o.o_killed);
      ("finished", Obs.Json.Bool o.o_finished);
      ("recovery_killed", Obs.Json.Bool o.o_recovery_killed);
      ("verdict", Obs.Json.String o.o_verdict);
      ("failed_epoch", Obs.Json.Int o.o_failed_epoch);
      ("sealed_max", Obs.Json.Int o.o_sealed_max);
      ("truncated", Obs.Json.Bool o.o_truncated);
      ( "violations",
        Obs.Json.List
          (List.map
             (fun v -> Obs.Json.String (Fmt.str "%a" pp_violation v))
             o.o_violations) );
    ]

let json_of_campaign (c : campaign) : Obs.Json.t =
  let hist = Hashtbl.create 8 in
  List.iter
    (fun o ->
      Hashtbl.replace hist o.o_verdict
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist o.o_verdict)))
    c.c_trials;
  let verdicts =
    List.filter_map
      (fun k ->
        Option.map (fun n -> (k, Obs.Json.Int n)) (Hashtbl.find_opt hist k))
      [ "clean"; "repaired"; "salvaged"; "unrecoverable"; "none" ]
  in
  let mutant =
    match c.c_mutant with
    | None -> Obs.Json.Null
    | Some m ->
        Obs.Json.Obj
          [
            ("detected", Obs.Json.Bool m.m_detected);
            ("attempts", Obs.Json.Int m.m_attempts);
            ( "first",
              match m.m_first with
              | Some o -> json_of_outcome o
              | None -> Obs.Json.Null );
            ( "shrunk",
              match m.m_shrunk with
              | Some o -> json_of_outcome o
              | None -> Obs.Json.Null );
            ( "replay",
              match m.m_replay with
              | Some s -> Obs.Json.String s
              | None -> Obs.Json.Null );
          ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "respct-prockill/v1");
      ("seed", Obs.Json.Int c.c_seed);
      ("kills", Obs.Json.Int c.c_kills);
      ( "skipped",
        match c.c_skipped with
        | Some r -> Obs.Json.String r
        | None -> Obs.Json.Null );
      ("violations", Obs.Json.Int (violation_count c));
      ("verdicts", Obs.Json.Obj verdicts);
      ("mutant", mutant);
      ("trials", Obs.Json.List (List.map json_of_outcome c.c_trials));
    ]
