(* Integrity codes for ResPCT persistent metadata (faulty-media hardening).

   The InCLL cell keeps its three-word shape; integrity instead *packs* the
   epoch_id word:

     bits  0..31   epoch, 32-bit two's complement
     bits 32..46   crc_rec: CRC-16/CCITT over (record, cell addr), 15 bits
     bits 47..62   crc_log: CRC-16/CCITT over (backup, epoch bits as
                   stored, cell addr)

   Packing instead of widening matters twice over: the persist path still
   issues single-word stores (8-byte atomic even on torn media), and no
   on-media layout changes — cells_per_line, Heap block shapes and the
   node layouts in lib/pds are untouched, so integrity is a config flag,
   not a format migration.

   crc_log binds the *undo log* (backup + epoch tag) to its cell address:
   when it verifies, recovery may trust the backup word and the epoch tag,
   which is exactly what proves a rollback exact. crc_rec binds the live
   record; it is advisory for cells updated in the failed epoch (their
   record is untrusted mid-epoch state anyway) and detects silent record
   corruption for quiescent cells. The address binding defeats a corrupted
   registry that redirects the recovery scan at a well-formed but wrong
   cell.

   [epoch_of] (sign-extension of the low 32 bits) is the identity on every
   raw epoch the runtime ever stores — small non-negative counters and the
   bootstrap sentinel -1 — so readers apply it unconditionally and the
   non-integrity representation is bit-for-bit what it was before this
   module existed.

   Checkpoint commits and registry entries carry full CRC-32 (IEEE) words;
   they live in words of their own, so no packing is needed. All CRCs run
   over the 8-byte little-endian serialisation of each word. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) *)

let crc32_table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let crc32_byte crc b = crc32_table.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let crc32_word crc w =
  let c = ref crc in
  for i = 0 to 7 do
    c := crc32_byte !c ((w lsr (i * 8)) land 0xFF)
  done;
  !c

let crc32_words ws =
  let c = List.fold_left crc32_word 0xFFFFFFFF ws in
  c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) *)

let crc16_table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref (n lsl 8) in
    for _ = 0 to 7 do
      c := if !c land 0x8000 <> 0 then (!c lsl 1) lxor 0x1021 else !c lsl 1;
      c := !c land 0xFFFF
    done;
    t.(n) <- !c
  done;
  t

let crc16_byte crc b = crc16_table.(((crc lsr 8) lxor b) land 0xFF) lxor ((crc lsl 8) land 0xFFFF)

let crc16_word crc w =
  let c = ref crc in
  for i = 0 to 7 do
    c := crc16_byte !c ((w lsr (i * 8)) land 0xFF)
  done;
  !c

let crc16_words ws = List.fold_left crc16_word 0xFFFF ws

(* ------------------------------------------------------------------ *)
(* Epoch-word packing *)

let epoch_mask = 0xFFFFFFFF
let rec_shift = 32
let rec_mask = 0x7FFF
let log_shift = 47
let log_mask = 0xFFFF

let epoch_of w = (w lsl 31) asr 31

let crc_log ~backup ~epoch_bits ~cell =
  crc16_words [ backup; epoch_bits; cell ] land log_mask

let crc_rec ~record ~cell = crc16_words [ record; cell ] land rec_mask

let seal ~record ~backup ~epoch ~cell =
  let e = epoch land epoch_mask in
  e
  lor (crc_rec ~record ~cell lsl rec_shift)
  lor (crc_log ~backup ~epoch_bits:e ~cell lsl log_shift)

let reseal_record w ~record ~cell =
  w
  land lnot (rec_mask lsl rec_shift)
  lor (crc_rec ~record ~cell lsl rec_shift)

let check_log ~word ~backup ~cell =
  (word lsr log_shift) land log_mask
  = crc_log ~backup ~epoch_bits:(word land epoch_mask) ~cell

let check_rec ~word ~record ~cell =
  (word lsr rec_shift) land rec_mask = crc_rec ~record ~cell

(* Test the stored crc_log against an *explicit* epoch instead of the
   word's own epoch bits: recovery uses it to unmask a failed-epoch cell
   whose epoch tag was damaged into reading quiescent -- its seal was
   computed over the failed epoch's bits and only re-verifies under them. *)
let check_log_at ~word ~backup ~epoch ~cell =
  (word lsr log_shift) land log_mask
  = crc_log ~backup ~epoch_bits:(epoch land epoch_mask) ~cell

(* ------------------------------------------------------------------ *)
(* The global epoch word: epoch in the low 32 bits, its own CRC-16 above.
   Without the seal, a bit flip turning epoch e into e - 1 would be
   indistinguishable from the legal pre-bump commit window ({epoch = e,
   commit = e + 1}), and recovery would silently roll back one epoch too
   few. *)

let epoch_seal_shift = 32
let epoch_seal_mask = 0xFFFF

let seal_epoch ~epoch ~addr =
  let e = epoch land epoch_mask in
  e lor (crc16_words [ e; addr ] lsl epoch_seal_shift)

let check_epoch ~word ~addr =
  (word lsr epoch_seal_shift) land epoch_seal_mask
  = crc16_words [ word land epoch_mask; addr ]

(* ------------------------------------------------------------------ *)
(* Whole-word CRC-32 codes: checkpoint commit record, registry summaries *)

let commit ~epoch ~addr = crc32_words [ epoch; addr ]
let regsum ~entry ~addr = crc32_words [ entry; addr ]
