(** Persistent-memory allocator (the paper's [alloc_in_nvmm]).

    A bump allocator whose cursor is an InCLL variable (so allocations made
    during a crashed epoch are reclaimed by the cursor rollback at
    recovery), with per-thread-slot cache chunks for synchronisation-free
    small allocations and per-slot, per-size free lists. Freed blocks become
    reusable only after the next checkpoint, never within the epoch that
    freed them. Free lists are segregated by size; blocks must not be
    recycled across different layouts of the same size (see DESIGN.md). *)

type t

val create :
  ?chunk_words:int ->
  Simsched.Env.t ->
  cursor_cell:Incll.cell ->
  base:int ->
  limit:int ->
  t
(** Attach an allocator to the arena [base, limit) whose persistent cursor
    lives in [cursor_cell]. [chunk_words] sizes the per-slot cache chunks.
    @raise Invalid_argument if [base > limit]. *)

val init_cursor : Pctx.t -> t -> unit
(** Initialise the cursor for a fresh memory image. Must {e not} be called
    on restart after recovery (the rolled-back cursor is authoritative). *)

val alloc_block :
  ?align_line:bool ->
  ?line_start:bool ->
  Pctx.t ->
  t ->
  words:int ->
  int * bool
(** Allocate [words] words; the boolean is [true] for a fresh block and
    [false] for one recycled from a free list (whose InCLL cells, if any,
    are already registered for recovery). [align_line] keeps the block
    within one cache line; [line_start] begins it on a line boundary.
    @raise Failure when the arena is exhausted. *)

val alloc :
  ?align_line:bool -> ?line_start:bool -> Pctx.t -> t -> words:int -> int
(** [alloc_block] without the freshness flag. *)

val alloc_incll_block : Pctx.t -> t -> Incll.cell * bool
(** Allocate one line-resident InCLL cell (uninitialised: call
    {!Incll.init}); the flag is as in {!alloc_block}. *)

val alloc_incll : Pctx.t -> t -> Incll.cell
(** [alloc_incll_block] without the freshness flag. *)

val alloc_incll_array_block : Pctx.t -> t -> int -> int * bool
(** Allocate [n] InCLL cells packed (line_words / 3) per line; returns the
    base and the freshness flag; address cells with {!cell_at}. *)

val alloc_incll_array : Pctx.t -> t -> int -> int
(** [alloc_incll_array_block] without the freshness flag. *)

val cell_at : Simsched.Env.t -> int -> int -> Incll.cell
(** [cell_at env base i]: address of the [i]-th cell of a packed array. *)

val cell_at_words : line_words:int -> int -> int -> Incll.cell
(** Pure form of {!cell_at} for host-level walkers that hold no
    environment (e.g. oracle reads over a backend's durable image). *)

val free : Pctx.t -> t -> int -> words:int -> unit
(** Return a block to the freeing slot's pending list; it becomes reusable
    after the next checkpoint. *)

val advance_epoch : t -> unit
(** Runtime hook, called when a checkpoint completes: promote blocks freed
    during the persisted epoch to the free lists. Equivalent to
    [release t (collect_pending t)]. *)

type staged
(** A snapshot of the pending frees of one epoch, detached from the heap. *)

val staged_addrs : staged -> int list
(** Debug view: the staged block addresses. *)

val collect_pending : t -> staged
(** Snapshot and clear the pending free lists (pipelined runtime: taken at
    quiescence, so it captures exactly the frees of the epoch being
    checkpointed). *)

val release : t -> staged -> unit
(** Promote a {!collect_pending} snapshot to the free lists. The pipelined
    runtime defers this until the overlapped background flush has sealed:
    releasing earlier could recycle a block the flusher walk still reads. *)

val cursor : Pctx.t -> t -> int
(** Current bump cursor (diagnostics). *)

val used : Pctx.t -> t -> int
(** Words carved from the arena so far (free lists not subtracted). *)
