(** Recovery procedure (paper Figure 5), parallelised over the InCLL
    registry as in the Figure 12 experiment.

    Call after {!Simnvm.Memsys.crash}; then attach a new runtime with
    [Runtime.restart ~reflush:report.rolled_back]. Rollback is idempotent:
    a crash during recovery simply re-runs it.

    {!run} is the original, trusting scan: correct on perfect media. For
    images written under [Runtime.config.integrity], {!run_verified}
    additionally proves what it restores: it cross-checks the epoch word
    against the double-buffered checkpoint-commit record (picking the
    newest CRC-certified slot), verifies every cell's {!Checksum} seal,
    retries transient media errors with bounded backoff, scrubs
    persistently failing lines, and reports everything unprovable in a
    structured {!verdict} — fail-stop, never fail-silent.

    Both scans roll back cells whose epoch tag is {e at least} the failed
    epoch: a crash during a pipelined overlapped flush leaves cells logged
    in the failed epoch and in its successor, and both must restore. On
    classic images the predicate degenerates to equality. *)

type report = {
  failed_epoch : int;  (** epoch the crash interrupted *)
  scanned : int;  (** registry entries examined *)
  rolled_back : Incll.cell list;
      (** cells restored from their backup; feed to [Runtime.restart] *)
  duration_ns : float;  (** virtual makespan of the parallel recovery *)
  rp_ids : (int * int) list;
      (** per thread slot, the restart-point id to resume from *)
}

(** One detected-and-classified piece of media damage. *)
type damage =
  | Torn_record of { cell : Incll.cell }
      (** a quiescent cell's record failed its CRC; the certified backup
          was restored, which is one epoch stale — a salvage *)
  | Torn_log of { cell : Incll.cell }
      (** the cell's backup/epoch seal is broken: its undo log is
          unprovable, the cell was left untouched (quarantined) *)
  | Metadata_torn of { cell : Incll.cell }
      (** same damage on a cursor / slot-count / registry-length cell: the
          scan itself ran on unproven input *)
  | Tag_restored of { cell : Incll.cell }
      (** the cell read quiescent but its log seal only verifies under one
          of the in-flight epochs (the failed epoch, or its successor
          mid-overlap) — the epoch tag was damaged. The certified backup
          was restored; reported, not proven exact (CRC-16 can collide) *)
  | Commit_repaired of { epoch : int }
      (** the sealed epoch word held and neither commit slot agreed with
          it; both slots were rewritten from the certified epoch — a
          proven repair *)
  | Epoch_restored of { epoch : int }
      (** the epoch word's seal was broken; it was rewritten from the
          newest CRC-certified commit slot. The crash may have sat in the
          pre-bump commit window one epoch earlier, so the image is
          best-effort, not proven exact *)
  | Commit_broken of { epoch_word : int; commit_word : int }
      (** neither the epoch word nor the commit record is certifiable: the
          failed epoch itself is unknown *)
  | Registry_corrupt of { addr : int }
      (** a registry entry or slot-table word failed its summary CRC or
          bounds check and was skipped *)
  | Range_out_of_bounds of { addr : int; base : int; count : int }
      (** a registry entry decoded to cells outside the heap; refused *)
  | Media_failed of { line : int }
      (** the line kept raising [Media_error] past the retry budget and
          was scrubbed: its content is lost *)

(** Outcome of a verified recovery, ordered by severity. [Clean] and
    [Repaired] guarantee the exact last-checkpoint snapshot was restored;
    [Salvaged] means damage was detected and explicitly reported but the
    image may be degraded (stale or quarantined cells); [Unrecoverable]
    means the metadata needed to interpret the image is itself unprovable
    and the caller must fail stop. *)
type verdict =
  | Clean
  | Repaired of damage list
  | Salvaged of damage list
  | Unrecoverable of damage list

type verified = {
  vreport : report;  (** the usual report (restart consumes it) *)
  verdict : verdict;
  read_retries : int;  (** media errors retried during the scan *)
}

val pp_damage : damage Fmt.t
val pp_verdict : verdict Fmt.t

val exact_image : verdict -> bool
(** Does the verdict promise a bit-exact last-checkpoint snapshot?
    ([Clean] and [Repaired] do.) *)

val run :
  ?threads:int -> ?layout:Layout.t -> ?spans:Obs.Span.t -> Simnvm.Memsys.t -> report
(** Roll back every InCLL cell modified during the failed epoch and
    re-persist it. [threads] sizes the parallel scan (default 1). [layout]
    defaults to the layout induced by {!Runtime.default_config}; pass the
    runtime's own layout when it used a custom config. [spans] receives a
    single ["recovery"] span covering the parallel scan's virtual makespan.

    Trusts the image. On faulty media it cannot hang or escape the heap
    (registry lengths and decoded ranges are clamped) but it can silently
    restore wrong data — use {!run_verified} on integrity-mode images. *)

val run_backend :
  ?threads:int ->
  ?layout:Layout.t ->
  ?spans:Obs.Span.t ->
  Simnvm.Backend.t ->
  report
(** {!run} over an arbitrary persistence backend (e.g. [Filemem]).
    [run ... mem] is [run_backend ... (Simnvm.Backend.of_memsys mem)]. *)

val run_verified :
  ?max_read_retries:int ->
  ?layout:Layout.t ->
  ?spans:Obs.Span.t ->
  Simnvm.Memsys.t ->
  verified
(** Integrity-checked, self-healing recovery for images written under
    [Runtime.config.integrity]. Sequential single-fiber scan: derives the
    failed epoch from the commit record, verifies every seal before
    trusting it, repairs what a CRC proves, quarantines what it cannot,
    retries each [Media_error] up to [max_read_retries] times (default 4)
    with exponential virtual-time backoff before scrubbing the line.
    [layout] defaults to the integrity layout induced by
    {!Runtime.default_config}.
    @raise Invalid_argument if [layout] was built without [~integrity]. *)

val run_verified_backend :
  ?max_read_retries:int ->
  ?layout:Layout.t ->
  ?spans:Obs.Span.t ->
  Simnvm.Backend.t ->
  verified
(** {!run_verified} over an arbitrary persistence backend. Additionally
    hardened against truncated media: an address the backend cannot serve
    (it raises [Invalid_argument], e.g. a file cut short by a crash during
    growth) grades into the damage taxonomy ([Range_out_of_bounds], then
    [Metadata_torn]/[Torn_log] as the zero reads fail their seals) instead
    of escaping as a raw exception. *)
