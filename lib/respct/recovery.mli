(** Recovery procedure (paper Figure 5), parallelised over the InCLL
    registry as in the Figure 12 experiment.

    Call after {!Simnvm.Memsys.crash}; then attach a new runtime with
    [Runtime.restart ~reflush:report.rolled_back]. Rollback is idempotent:
    a crash during recovery simply re-runs it. *)

type report = {
  failed_epoch : int;  (** epoch the crash interrupted *)
  scanned : int;  (** registry entries examined *)
  rolled_back : Incll.cell list;
      (** cells restored from their backup; feed to [Runtime.restart] *)
  duration_ns : float;  (** virtual makespan of the parallel recovery *)
  rp_ids : (int * int) list;
      (** per thread slot, the restart-point id to resume from *)
}

val run :
  ?threads:int -> ?layout:Layout.t -> ?spans:Obs.Span.t -> Simnvm.Memsys.t -> report
(** Roll back every InCLL cell modified during the failed epoch and
    re-persist it. [threads] sizes the parallel scan (default 1). [layout]
    defaults to the layout induced by {!Runtime.default_config}; pass the
    runtime's own layout when it used a custom config. [spans] receives a
    single ["recovery"] span covering the parallel scan's virtual makespan. *)
