(** Fixed NVMM layout of the runtime's persistent metadata: the global
    epoch, the heap-cursor and slot-count InCLL cells, per-slot
    registry-length cells, the per-slot RP_id table and the per-slot InCLL
    registry segments. Recovery locates all of it without any volatile
    state. *)

type t = {
  epoch_addr : int;
  commit_epoch_addr : int;
      (** checkpoint-commit record: copy of the epoch, on line 0 with the
          epoch word so a commit persists line-atomically (integrity mode) *)
  commit_crc_addr : int;  (** CRC-32 of the commit record *)
  commit2_epoch_addr : int;
      (** second commit slot of the pipelined double-buffered commit
          protocol (also line 0); the pipelined runtime alternates slots
          per epoch so sealing never overwrites the last certified commit.
          The classic runtime never writes it, keeping non-pipeline images
          word-for-word historical. *)
  commit2_crc_addr : int;  (** CRC-32 of the second commit slot *)
  cursor_cell : Incll.cell;
  slots_cell : Incll.cell;
  reglen_cells_base : int;
  slot_table_base : int;
  registry_base : int;
  regsum_base : int;
      (** per-entry registry CRC words, indexed like the registry segments;
          [-1] unless the layout was built with [~integrity:true] *)
  registry_per_slot : int;
  max_threads : int;
  integrity : bool;
  heap_base : int;
  heap_limit : int;
}

val v :
  ?integrity:bool ->
  line_words:int ->
  nvm_words:int ->
  max_threads:int ->
  registry_per_slot:int ->
  unit ->
  t
(** Compute the layout for a memory geometry. [integrity] (default false)
    reserves the registry-summary CRC region; a non-integrity layout is
    word-for-word the historical one.
    @raise Invalid_argument if the NVMM region cannot hold the metadata or
    the line size cannot pack two InCLL cells. *)

val max_entry_count : int
(** Largest cell count one range-encoded registry entry can cover. *)

val encode_entry : base:int -> count:int -> int
(** Encode a packed range of [count] InCLL cells starting at [base] as one
    registry entry. @raise Invalid_argument when [count] is out of range. *)

val decode_entry : int -> int * int
(** Inverse of {!encode_entry}: [(base, count)]. *)

val reglen_cell : t -> line_words:int -> int -> Incll.cell
(** Registry-length cell of a slot. *)

val registry_segment : t -> int -> int
(** Base address of a slot's registry segment. *)

val regsum_addr : t -> entry:int -> int
(** Address of the CRC-32 summary word guarding the registry entry at
    address [entry]. @raise Invalid_argument unless the layout was built
    with [~integrity:true]. *)
