(* Persistence context: what InCLL updates and persistent-heap operations
   need to know about the enclosing runtime, without depending on it.

   A context is bound to (runtime, thread slot): [epoch] reads the current
   global epoch, [add_modified] appends an address to that slot's
   to_be_flushed list (paper, Table 1), and [slot] keys the per-thread
   allocator caches. Transient code paths use {!none}. *)

type t = {
  env : Simsched.Env.t;
  slot : int;
  epoch : unit -> int;
      (* the slot's epoch view: the global word in the classic runtime, the
         slot's entry of the volatile per-slot epoch table when the
         pipelined coordinator is active *)
  add_modified : Simnvm.Addr.t -> unit;
  wait_epoch_durable : int -> unit;
      (* overlap barrier of the pipelined runtime: called with a cell's
         last-log epoch before the cell is re-logged; blocks until that
         epoch's background flush has sealed (wait-for-flushed policy).
         A no-op everywhere else. *)
  integrity : bool;
      (* seal InCLL epoch words with Checksum codes (faulty-media mode) *)
}

(* Context for code running outside any checkpointing runtime (transient
   programs, test setup): epoch is frozen at 0 and tracking is a no-op. *)
let none env =
  {
    env;
    slot = 0;
    epoch = (fun () -> 0);
    add_modified = ignore;
    wait_epoch_durable = ignore;
    integrity = false;
  }
