(** Persistence context: the view of the enclosing checkpointing runtime
    that {!Incll} and {!Heap} operations need — the current epoch, the
    modification-tracking hook and the thread slot — without a dependency
    on {!Runtime}. *)

type t = {
  env : Simsched.Env.t;  (** memory + scheduler *)
  slot : int;  (** thread slot, keys per-thread allocator caches *)
  epoch : unit -> int;  (** current global epoch number *)
  add_modified : Simnvm.Addr.t -> unit;
      (** register an address for flushing at the next checkpoint *)
  integrity : bool;
      (** seal InCLL epoch words with {!Checksum} codes (faulty-media
          hardening); off everywhere by default *)
}

val none : Simsched.Env.t -> t
(** Context for transient code: slot 0, epoch frozen at 0, tracking
    disabled. *)
