(** Persistence context: the view of the enclosing checkpointing runtime
    that {!Incll} and {!Heap} operations need — the current epoch, the
    modification-tracking hook and the thread slot — without a dependency
    on {!Runtime}. *)

type t = {
  env : Simsched.Env.t;  (** memory + scheduler *)
  slot : int;  (** thread slot, keys per-thread allocator caches *)
  epoch : unit -> int;
      (** the slot's view of the current epoch: the global epoch word in
          the classic runtime, the slot's entry of the volatile per-slot
          epoch table under the pipelined coordinator *)
  add_modified : Simnvm.Addr.t -> unit;
      (** register an address for flushing at the next checkpoint *)
  wait_epoch_durable : int -> unit;
      (** overlap barrier of the pipelined runtime (wait-for-flushed):
          {!Incll.update} calls it with a cell's last-log epoch before
          re-logging the cell; it blocks until that epoch's background
          flush has sealed, so a single backup word never loses the
          still-unflushed start-of-epoch value. A no-op in every
          non-pipelined context. *)
  integrity : bool;
      (** seal InCLL epoch words with {!Checksum} codes (faulty-media
          hardening); off everywhere by default *)
}

val none : Simsched.Env.t -> t
(** Context for transient code: slot 0, epoch frozen at 0, tracking
    disabled. *)
