(* In-Cache-Line Logging (paper Figure 2 and lines 19-29 of Figure 4).

   An InCLL cell is three consecutive words inside a single cache line:

     cell + 0   record    current value of the variable
     cell + 1   backup    value at the beginning of the epoch of last update
     cell + 2   epoch_id  epoch of the last update

   Because all three words share a cache line, the PCSO model guarantees
   that whenever [record]'s new value has reached NVMM, [backup] and
   [epoch_id] written before it have too -- so the cell carries its own
   crash-consistent undo log with no pwb/psync on the update path.

   A compiler fence keeps the store order backup -> epoch_id -> record; in
   the simulator, stores are never reordered, so program order suffices. *)

type cell = Simnvm.Addr.t

let words = 3

let record cell = cell
let backup cell = cell + 1
let epoch_id cell = cell + 2

(* Validate that a cell does not straddle a cache line: the whole point of
   InCLL is single-line residency. Allocation goes through
   [Heap.alloc_incll], which aligns; this assertion catches misuse. *)
let check_aligned env cell =
  let lw = Simsched.Env.line_words env in
  assert (Simnvm.Addr.same_line ~line_words:lw cell (cell + words - 1))

let init (ctx : Pctx.t) cell v =
  let env = ctx.Pctx.env in
  check_aligned env cell;
  Simsched.Env.store env (record cell) v;
  Simsched.Env.store env (backup cell) v;
  let epoch = ctx.Pctx.epoch () in
  let tag =
    if ctx.Pctx.integrity then Checksum.seal ~record:v ~backup:v ~epoch ~cell
    else epoch
  in
  Simsched.Env.store env (epoch_id cell) tag;
  ctx.Pctx.add_modified cell

let read (ctx : Pctx.t) cell = Simsched.Env.load ctx.Pctx.env (record cell)

(* Integrity variant of the update path. The epoch word is re-stored on
   every update (not just the logging one) so its crc_rec field tracks the
   live record; the word shares the cell's line, so PCSO keeps the extra
   store ordered with the record store for free, and it stays a single-word
   (8-byte-atomic) write on torn media. The fast path reuses the epoch word
   it loaded for the epoch comparison and patches only the crc_rec bits. *)
let update_integrity (ctx : Pctx.t) cell v =
  let env = ctx.Pctx.env in
  let epoch = ctx.Pctx.epoch () in
  let w = Simsched.Env.load env (epoch_id cell) in
  if Checksum.epoch_of w <> epoch then begin
    (* Pipelined overlap barrier: if the previous log of this cell belongs
       to an epoch whose background flush has not sealed yet, re-logging
       would destroy the only copy of its start-of-epoch value. Blocks
       until that flush seals; a no-op outside the pipelined runtime. *)
    ctx.Pctx.wait_epoch_durable (Checksum.epoch_of w);
    let prev = Simsched.Env.load env (record cell) in
    Simsched.Env.store env (backup cell) prev;
    Simsched.Env.store env (epoch_id cell)
      (Checksum.seal ~record:v ~backup:prev ~epoch ~cell);
    ctx.Pctx.add_modified cell
  end
  else
    Simsched.Env.store env (epoch_id cell)
      (Checksum.reseal_record w ~record:v ~cell);
  Simsched.Env.store env (record cell) v

let update (ctx : Pctx.t) cell v =
  if ctx.Pctx.integrity then update_integrity ctx cell v
  else begin
    let env = ctx.Pctx.env in
    let epoch = ctx.Pctx.epoch () in
    let tag = Simsched.Env.load env (epoch_id cell) in
    if tag <> epoch then begin
      (* First update of this variable in the current epoch: log it. Under
         the pipelined runtime, first wait out a still-flushing previous
         epoch (wait-for-flushed; no-op everywhere else). *)
      ctx.Pctx.wait_epoch_durable tag;
      Simsched.Env.store env (backup cell)
        (Simsched.Env.load env (record cell));
      Simsched.Env.store env (epoch_id cell) epoch;
      ctx.Pctx.add_modified cell
    end;
    Simsched.Env.store env (record cell) v
  end

(* Recovery-time view, reading the NVMM image directly (paper Figure 5). *)
module Persisted = struct
  let record mem cell = Simnvm.Memsys.persisted mem cell
  let backup mem cell = Simnvm.Memsys.persisted mem (cell + 1)
  let epoch_id mem cell = Simnvm.Memsys.persisted mem (cell + 2)
end
