(* Persistent-memory allocator (the paper's alloc_in_nvmm).

   Design:

   - The global state is a bump cursor, itself an InCLL variable:
     allocations performed during a crashed epoch are reclaimed by the
     cursor rollback at recovery, keeping the allocator consistent with the
     heap contents.
   - Each thread slot owns a cache chunk carved from the cursor under the
     global heap mutex; small allocations bump inside the chunk with no
     cross-thread synchronisation (tcmalloc-style thread caches). A chunk
     carved during a crashed epoch is reclaimed by the cursor rollback; the
     unused tail of an older chunk leaks on a crash, which is safe.
   - Freed blocks go to per-slot, per-size volatile free lists, but only
     become reusable after the next checkpoint ([advance_epoch]): reusing a
     block freed in the same epoch would destroy pre-epoch state that
     recovery may need to restore (e.g. a dequeued node that a rolled-back
     queue head still references).
   - [alloc_block] reports whether the block is fresh (never allocated
     before) or recycled. The runtime registers InCLL cells in the recovery
     registry only for fresh blocks: a recycled block's cells are already
     registered, and since free lists are segregated by size, a block is
     recycled only for the same layout, so the stale registry entry stays
     valid (rollback of a cell that was legitimately re-initialised is
     idempotent and harmless). Programs must not recycle blocks across
     different layouts of the same size (see DESIGN.md).

   Free lists and pending lists are host-level (OCaml) structures touched
   atomically between simulation yield points, so they need no simulated
   lock; only the cursor path, which performs simulated memory accesses,
   takes the heap mutex. *)

type chunk = { mutable cur : int; mutable lim : int }

type t = {
  env : Simsched.Env.t;
  cursor_cell : Incll.cell;
  base : int;
  limit : int;
  chunk_words : int;
  chunks : (int, chunk) Hashtbl.t; (* slot -> cache chunk *)
  free_lists : (int * int, int list ref) Hashtbl.t; (* (slot, words) *)
  pending : (int, (int * int) list ref) Hashtbl.t; (* slot -> frees *)
  m : Simsched.Mutex.t;
}

(* Volatile bookkeeping costs (free-list pop/push, chunk bump). *)
let cache_op_ns = 8.0

let create ?(chunk_words = 1024) env ~cursor_cell ~base ~limit =
  if base > limit then invalid_arg "Heap.create: base > limit";
  {
    env;
    cursor_cell;
    base;
    limit;
    chunk_words;
    chunks = Hashtbl.create 16;
    free_lists = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    m = Simsched.Mutex.create ~name:"heap" ();
  }

let init_cursor ctx t = Incll.init ctx t.cursor_cell t.base

let sched t = Simsched.Env.sched t.env
let line_words t = Simsched.Env.line_words t.env

let free_list t key =
  match Hashtbl.find_opt t.free_lists key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.free_lists key l;
      l

(* Allocate straight from the global cursor (large blocks, chunk refills).
   Holds the heap mutex across the InCLL cursor update. *)
let cursor_alloc ctx t ~words ~line_start =
  Simsched.Mutex.with_lock (sched t) t.m (fun () ->
      let lw = line_words t in
      let cursor = Incll.read ctx t.cursor_cell in
      let start = if line_start then (cursor + lw - 1) / lw * lw else cursor in
      if start + words > t.limit then failwith "Heap.alloc: out of memory";
      Incll.update ctx t.cursor_cell (start + words);
      start)

let slot_chunk t slot =
  match Hashtbl.find_opt t.chunks slot with
  | Some c -> c
  | None ->
      let c = { cur = 0; lim = 0 } in
      Hashtbl.add t.chunks slot c;
      c

(* [alloc_block] returns the block and whether it is fresh. *)
let alloc_block ?(align_line = false) ?(line_start = false) (ctx : Pctx.t) t
    ~words =
  if words <= 0 then invalid_arg "Heap.alloc: words must be positive";
  let s = sched t in
  Simsched.Scheduler.charge s cache_op_ns;
  let slot = ctx.Pctx.slot in
  let fl = free_list t (slot, words) in
  match !fl with
  | addr :: rest ->
      fl := rest;
      (addr, false)
  | [] ->
      let lw = line_words t in
      if line_start || words > t.chunk_words / 2 then
        (cursor_alloc ctx t ~words ~line_start:true, true)
      else begin
        let c = slot_chunk t slot in
        let start =
          if align_line then Simnvm.Addr.align_for ~line_words:lw ~words c.cur
          else c.cur
        in
        if start + words <= c.lim then begin
          c.cur <- start + words;
          (start, true)
        end
        else begin
          (* Refill the slot cache from the global cursor. *)
          let chunk = cursor_alloc ctx t ~words:t.chunk_words ~line_start:true in
          c.cur <- chunk + words;
          c.lim <- chunk + t.chunk_words;
          (chunk, true)
        end
      end

let alloc ?align_line ?line_start ctx t ~words =
  fst (alloc_block ?align_line ?line_start ctx t ~words)

let alloc_incll_block ctx t =
  alloc_block ~align_line:true ctx t ~words:Incll.words

let alloc_incll ctx t = fst (alloc_incll_block ctx t)

let cells_per_line env =
  let lw = Simsched.Env.line_words env in
  if lw < Incll.words then
    invalid_arg "Heap: cache line smaller than an InCLL cell";
  lw / Incll.words

let alloc_incll_array_block ctx t n =
  if n <= 0 then invalid_arg "Heap.alloc_incll_array: n must be positive";
  let lw = line_words t in
  let per = cells_per_line t.env in
  let lines = (n + per - 1) / per in
  alloc_block ~line_start:true ctx t ~words:(lines * lw)

let alloc_incll_array ctx t n = fst (alloc_incll_array_block ctx t n)

let cell_at_words ~line_words base i =
  let per = line_words / Incll.words in
  base + (i / per * line_words) + (i mod per * Incll.words)

let cell_at env base i =
  cell_at_words ~line_words:(Simsched.Env.line_words env) base i

let free (ctx : Pctx.t) t addr ~words =
  Simsched.Scheduler.charge (sched t) cache_op_ns;
  let slot = ctx.Pctx.slot in
  match Hashtbl.find_opt t.pending slot with
  | Some l -> l := (addr, words) :: !l
  | None -> Hashtbl.add t.pending slot (ref [ (addr, words) ])

(* Staged reclamation for the pipelined runtime: [collect_pending] snapshots
   and clears the pending lists at quiescence (capturing exactly the frees
   of the epoch being checkpointed), and [release] promotes a snapshot to
   the free lists once the overlapped background flush has sealed. Releasing
   earlier would let a block freed in epoch [e] be reallocated while the
   flusher walk still expects its epoch-[e] contents. Both are host-level
   and cost nothing in virtual time. *)

type staged = (int * (int * int) list) list

let staged_addrs (s : staged) =
  List.concat_map (fun (_, fs) -> List.map fst fs) s

let collect_pending t =
  Hashtbl.fold
    (fun slot l acc ->
      if !l = [] then acc
      else begin
        let frees = !l in
        l := [];
        (slot, frees) :: acc
      end)
    t.pending []

let release t staged =
  List.iter
    (fun (slot, frees) ->
      List.iter
        (fun (addr, words) ->
          let fl = free_list t (slot, words) in
          fl := addr :: !fl)
        frees)
    staged

(* Called by the classic runtime once a checkpoint has completed (threads
   are quiescent): blocks freed in the epoch that just persisted become
   safe to reuse by the slot that freed them. *)
let advance_epoch t = release t (collect_pending t)

let cursor ctx t = Incll.read ctx t.cursor_cell
let used ctx t = cursor ctx t - t.base
