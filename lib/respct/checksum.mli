(** Integrity codes for ResPCT persistent metadata.

    Under [Runtime.config.integrity], the InCLL epoch_id word packs the
    32-bit epoch with two address-bound CRC-16 fields: [crc_log] over the
    backup word and the epoch bits (a verified crc_log proves the cell's
    undo log, hence proves a rollback exact) and [crc_rec] over the live
    record (advisory for cells of the failed epoch, detects silent record
    corruption for quiescent ones). Cells stay three words; stores stay
    single-word (8-byte atomic even on torn media); non-integrity words are
    bit-identical to the historical representation ([epoch_of] is the
    identity on every raw epoch, including the bootstrap sentinel -1).

    Checkpoint commit records and registry-entry summaries are whole
    CRC-32 words. All CRCs run over the 8-byte little-endian serialisation
    of each input word. *)

val epoch_of : int -> int
(** Epoch carried by an epoch_id word: sign-extension of the low 32 bits.
    Identity on raw (non-integrity) epoch words. *)

val seal : record:int -> backup:int -> epoch:int -> cell:int -> int
(** Packed epoch_id word for a cell whose log was just (re)written. *)

val reseal_record : int -> record:int -> cell:int -> int
(** Replace only the crc_rec field of a packed word (subsequent updates of
    an already-logged cell: backup and epoch are unchanged). *)

val check_log : word:int -> backup:int -> cell:int -> bool
(** Does the packed word's crc_log certify [backup] (and its own epoch
    bits) for this cell? *)

val check_rec : word:int -> record:int -> cell:int -> bool
(** Does the packed word's crc_rec certify [record] for this cell? *)

val check_log_at : word:int -> backup:int -> epoch:int -> cell:int -> bool
(** Like {!check_log}, but against an explicit [epoch] instead of the
    word's own epoch bits — used by recovery to unmask a failed-epoch cell
    whose epoch tag was damaged into reading quiescent. *)

val seal_epoch : epoch:int -> addr:int -> int
(** Packed global epoch word: the epoch's low 32 bits plus their CRC-16
    (bound to [addr]). [epoch_of] extracts the epoch unchanged. Without
    the seal, a flip turning epoch [e] into [e - 1] would be
    indistinguishable from the legal pre-bump commit window. *)

val check_epoch : word:int -> addr:int -> bool
(** Does the packed global epoch word certify its own epoch bits? *)

val commit : epoch:int -> addr:int -> int
(** CRC-32 commit code for a checkpoint-commit record at [addr]. *)

val regsum : entry:int -> addr:int -> int
(** CRC-32 summary of a registry entry word living at [addr]. *)

val crc32_words : int list -> int
(** CRC-32 (IEEE) of a word sequence, 8-byte little-endian. *)

val crc16_words : int list -> int
(** CRC-16/CCITT-FALSE of a word sequence, 8-byte little-endian. *)
