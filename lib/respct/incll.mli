(** In-Cache-Line Logging: the [InCLL_data<T>] template of the paper
    (Figure 2) and its [init_InCLL]/[update_InCLL] operations (Figure 4).

    A cell is three consecutive words ({i record}, {i backup}, {i epoch_id})
    residing in a single cache line, so PCSO's same-line ordering makes the
    undo log persist no later than the datum — no flush or fence needed on
    the update path. *)

type cell = Simnvm.Addr.t
(** Base address of a cell. Must not straddle a cache line; allocate with
    {!Heap.alloc_incll}. *)

val words : int
(** Size of a cell in words (3). *)

val record : cell -> Simnvm.Addr.t
val backup : cell -> Simnvm.Addr.t
val epoch_id : cell -> Simnvm.Addr.t

val init : Pctx.t -> cell -> int -> unit
(** [init ctx cell v]: initialise a freshly allocated cell to value [v]
    (paper [init_InCLL]); registers the cell for flushing. *)

val read : Pctx.t -> cell -> int
(** Current value ([record]). *)

val update : Pctx.t -> cell -> int -> unit
(** [update ctx cell v]: the paper's [update_InCLL] — logs the old value on
    the first update in the current epoch (and registers the address for
    flushing), then writes [v]. The caller must hold the lock protecting the
    variable (section 2.1 assumption).

    When [ctx.integrity] is set, the epoch_id word is a packed
    {!Checksum} seal and is re-stored on every update so its crc_rec field
    tracks the live record — one extra same-line single-word store per
    update, the whole cost of cell integrity. *)

(** Recovery-time accessors reading the NVMM image directly. *)
module Persisted : sig
  val record : Simnvm.Memsys.t -> cell -> int
  val backup : Simnvm.Memsys.t -> cell -> int
  val epoch_id : Simnvm.Memsys.t -> cell -> int
end
