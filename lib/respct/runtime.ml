(* The ResPCT checkpointing runtime: epochs, restart points and the periodic
   checkpoint procedure (paper Figure 4), with the flusher-pool organisation
   of section 5 ("a pool of flusher threads flushes data to NVMM in
   parallel").

   Synchronisation differs from the paper's spin loops in mechanism, not in
   semantics: a runtime mutex [rmx] with two condition variables replaces
   the [timer]/[perThread_flag] spinning. Under [rmx], the coordinator's
   "all flags raised" observation and the subsequent flush are atomic with
   respect to every flag change, which closes the flag-lowering race that
   the spin-based pseudo-code leaves open. *)

type mode = Full | No_flush | Incll_only

type config = {
  period_ns : float;
  flusher_pool : int;
  mode : mode;
  max_threads : int;
  registry_per_slot : int;
  integrity : bool; (* checksum-sealed metadata for faulty media *)
  pipeline : bool;
      (* asynchronous epoch advance: workers enter epoch e+1 at their next
         restart point while a pool of long-lived flusher fibers walks the
         epoch-e modified set in the background; the commit seals on a
         double-buffered commit record once the walk completes. Off =
         bit-identical historical behaviour. *)
}

let default_config =
  {
    period_ns = 64.0e6;
    (* 64 ms, the paper's default checkpoint interval *)
    flusher_pool = 8;
    mode = Full;
    max_threads = 64;
    registry_per_slot = 8192;
    integrity = false;
    pipeline = false;
  }

(* Planted test mutants for the crashmatrix: each disables one safety leg
   of the pipelined protocol so the matrix can prove that leg load-bearing.
   Never set outside tests. *)
type mutant =
  | Seal_before_walk (* seal the commit at handoff, before the walk ends *)
  | No_overlap_wait (* drop the wait-for-flushed overlap barrier *)
  | Early_reclaim (* release the epoch's heap frees at handoff *)

type slot_state = {
  mutable active : bool;
  mutable flag : bool; (* perThread_flag *)
  mutable to_flush : int list;
  mutable to_flush_len : int;
  mutable rp_cell : Incll.cell; (* 0 = not yet assigned *)
}

type stats = {
  mutable checkpoints : int;
  mutable flushed_addrs : int;
  mutable flush_ns : float;
  mutable period_sum : float;
  mutable last_checkpoint_end : float;
  mutable stall_ns : float;
      (* mutator stall: timer raise to worker release, summed over
         checkpoints (the whole checkpoint in classic mode, only the
         quiescence + handoff in pipeline mode) *)
  mutable overlap_ns : float;
      (* pipeline only: worker release to commit seal, the background
         flush window overlapped with mutator execution *)
}

(* One in-flight background flush of the pipelined coordinator. The claim
   cursor and completion counters are host-level state mutated between
   yield points, hence atomic under the cooperative scheduler. *)
type flush_job = {
  j_id : int;
  j_epoch : int; (* the epoch whose modified set is walked *)
  j_addrs : Simnvm.Addr.t array;
  mutable j_next : int; (* shared claim cursor over j_addrs *)
  j_count : int;
  j_staged : Heap.staged; (* epoch frees, released at seal *)
  j_t0 : float; (* timer raise (virtual) *)
  j_handoff : float; (* worker release (virtual) *)
  j_sealed_early : bool; (* Seal_before_walk mutant already sealed *)
  mutable j_walkers : int; (* flusher fibers still walking *)
  mutable j_done_at : float; (* max flusher clock at walk completion *)
}

type t = {
  env : Simsched.Env.t;
  cfg : config;
  layout : Layout.t;
  heap : Heap.t;
  rmx : Simsched.Mutex.t;
  regmx : Simsched.Mutex.t; (* serialises slot-count updates *)
  arrival : Simsched.Condvar.t; (* a flag was raised / a thread left *)
  finished : Simsched.Condvar.t; (* checkpoint completed *)
  slots : slot_state array;
  mutable timer : bool;
  mutable stop_requested : bool;
  stats : stats;
  mutable spans : Obs.Span.t option;
      (* phase profiling sink: checkpoint / wait / flush / epoch intervals
         on the virtual clock; observation only, charges nothing *)
  (* ---- pipelined coordinator state ---- *)
  mutable cur_epoch : int;
      (* volatile epoch, advanced at quiescence; authoritative for workers
         in pipeline mode (the persistent word lags until the seal) *)
  slot_epochs : int array;
      (* per-slot epoch views, refreshed at quiescence; what each slot's
         Pctx reads in pipeline mode (the step toward per-shard epochs) *)
  fmx : Simsched.Mutex.t; (* guards job / flush_work / flush_done *)
  flush_work : Simsched.Condvar.t; (* a job was handed off *)
  flush_done : Simsched.Condvar.t; (* the in-flight job sealed *)
  mutable job : flush_job option;
  mutable next_job_id : int;
  mutable flushers_started : bool;
  mutable mutant : mutant option;
}

(* Cost of the volatile bookkeeping on the hot path: checking [timer],
   appending to the to_be_flushed list. These touch DRAM-cached state. *)
let flag_check_ns = 2.0
let track_ns = 5.0

let fresh_slot () =
  { active = false; flag = false; to_flush = []; to_flush_len = 0; rp_cell = 0 }

let sched t = Simsched.Env.sched t.env
let bops t = Simsched.Env.backend t.env

(* epoch_of is the identity on raw epoch words, so unpacking is
   unconditional: only integrity mode stores a sealed word. *)
let epoch_word t =
  Checksum.epoch_of (Simsched.Env.load t.env t.layout.Layout.epoch_addr)

(* The epoch workers observe. Classic mode reads the persistent word (the
   historical behaviour, cache charge included); pipeline mode reads the
   volatile counter, which runs ahead of the word during an overlapped
   flush. *)
let epoch t = if t.cfg.pipeline then t.cur_epoch else epoch_word t

(* Wait-for-flushed overlap barrier: a worker about to re-log a cell whose
   last log belongs to the epoch still being flushed must wait until that
   flush seals (the single backup word is the only copy of the cell's
   start-of-epoch value until then). Only conflicting cells pay; everyone
   else keeps running through the overlap. *)
let wait_epoch_durable t e =
  match t.job with
  | Some j when j.j_epoch = e && t.mutant <> Some No_overlap_wait ->
      let s = sched t in
      Simsched.Mutex.lock s t.fmx;
      while
        match t.job with Some j -> j.j_epoch = e | None -> false
      do
        Simsched.Condvar.wait s t.flush_done t.fmx
      done;
      Simsched.Mutex.unlock s t.fmx
  | _ -> ()

let store_epoch t e =
  Simsched.Env.store t.env t.layout.Layout.epoch_addr
    (if t.cfg.integrity then
       Checksum.seal_epoch ~epoch:e ~addr:t.layout.Layout.epoch_addr
     else e)

let add_modified t ~slot addr =
  let st = t.slots.(slot) in
  st.to_flush <- addr :: st.to_flush;
  st.to_flush_len <- st.to_flush_len + 1;
  Simsched.Scheduler.charge (sched t) track_ns

let ctx t ~slot : Pctx.t =
  if t.cfg.pipeline then
    {
      Pctx.env = t.env;
      slot;
      (* per-slot epoch view: a volatile DRAM flag read, not a load of the
         persistent word (which lags during an overlapped flush) *)
      epoch =
        (fun () ->
          Simsched.Scheduler.charge (sched t) flag_check_ns;
          t.slot_epochs.(slot));
      add_modified = (fun addr -> add_modified t ~slot addr);
      wait_epoch_durable = (fun e -> wait_epoch_durable t e);
      integrity = t.cfg.integrity;
    }
  else
    {
      Pctx.env = t.env;
      slot;
      epoch = (fun () -> epoch_word t);
      add_modified = (fun addr -> add_modified t ~slot addr);
      wait_epoch_durable = ignore;
      integrity = t.cfg.integrity;
    }

(* Context whose tracked addresses are flushed immediately: used only for
   initialising a fresh image inside [create], before the simulation runs.
   The epoch is the sentinel -1, never equal to a real epoch: cells
   initialised at bootstrap would otherwise believe they had already been
   logged and tracked in epoch 0, and their epoch-0 updates would never
   reach the first checkpoint's flush list. *)
let bootstrap_ctx t : Pctx.t =
  {
    Pctx.env = t.env;
    slot = 0;
    epoch = (fun () -> -1);
    add_modified =
      (fun addr ->
        let b = bops t in
        b.Simnvm.Backend.pwb addr;
        b.Simnvm.Backend.psync ());
    wait_epoch_durable = ignore;
    integrity = t.cfg.integrity;
  }

let make_internal ?(cfg = default_config) env =
  let b = Simsched.Env.backend env in
  let layout =
    Layout.v ~integrity:cfg.integrity ~line_words:b.Simnvm.Backend.line_words
      ~nvm_words:b.Simnvm.Backend.nvm_words ~max_threads:cfg.max_threads
      ~registry_per_slot:cfg.registry_per_slot ()
  in
  let heap =
    Heap.create env ~cursor_cell:layout.Layout.cursor_cell
      ~base:layout.Layout.heap_base ~limit:layout.Layout.heap_limit
  in
  {
    env;
    cfg;
    layout;
    heap;
    rmx = Simsched.Mutex.create ~name:"respct" ();
    regmx = Simsched.Mutex.create ~name:"registry" ();
    arrival = Simsched.Condvar.create ~name:"arrival" ();
    finished = Simsched.Condvar.create ~name:"finished" ();
    slots = Array.init cfg.max_threads (fun _ -> fresh_slot ());
    timer = false;
    stop_requested = false;
    stats =
      {
        checkpoints = 0;
        flushed_addrs = 0;
        flush_ns = 0.0;
        period_sum = 0.0;
        last_checkpoint_end = 0.0;
        stall_ns = 0.0;
        overlap_ns = 0.0;
      };
    spans = None;
    (* Volatile epoch views seeded from the NVMM image directly (persisted
       is a host-level read: no cache traffic, no charge, so non-pipeline
       virtual time is untouched). A fresh image reads 0, which [create]
       re-establishes anyway; [restart] picks up the failed epoch. *)
    cur_epoch =
      Checksum.epoch_of
        (b.Simnvm.Backend.persisted layout.Layout.epoch_addr);
    slot_epochs =
      Array.make cfg.max_threads
        (Checksum.epoch_of
           (b.Simnvm.Backend.persisted layout.Layout.epoch_addr));
    fmx = Simsched.Mutex.create ~name:"flush" ();
    flush_work = Simsched.Condvar.create ~name:"flush-work" ();
    flush_done = Simsched.Condvar.create ~name:"flush-done" ();
    job = None;
    next_job_id = 0;
    flushers_started = false;
    mutant = None;
  }

let set_spans t r = t.spans <- Some r
let spans t = t.spans

let emit_span t name t0 t1 =
  match t.spans with
  | Some r -> Obs.Span.emit r ~name ~t0 ~t1
  | None -> ()

(* Initialise a fresh persistent image: epoch 0 and the metadata cells are
   made persistent immediately so that a crash before the first checkpoint
   recovers the empty initial state. *)
(* The checkpoint-commit record: a copy of the epoch plus its CRC-32, on
   the same cache line as the epoch word itself, so the three stores of a
   commit persist atomically under PCSO. Recovery cross-checks the epoch
   word against it (a bit flip in either is detected, and whichever the
   CRC certifies wins). Written only in integrity mode.

   The pipelined runtime double-buffers the record: the slot for epoch
   value [e] is chosen by parity, so consecutive seals alternate and a
   torn slot write can never destroy the last certified commit — recovery
   picks the newest valid slot. The classic runtime keeps writing slot A
   every time (the historical single-record protocol). *)
let store_commit_record t e =
  let l = t.layout in
  let ea, ca =
    if t.cfg.pipeline && e land 1 = 1 then
      (l.Layout.commit2_epoch_addr, l.Layout.commit2_crc_addr)
    else (l.Layout.commit_epoch_addr, l.Layout.commit_crc_addr)
  in
  Simsched.Env.store t.env ea e;
  Simsched.Env.store t.env ca (Checksum.commit ~epoch:e ~addr:ea)

let create ?cfg env =
  let t = make_internal ?cfg env in
  let b = bops t in
  let bctx = bootstrap_ctx t in
  if t.cfg.integrity then store_commit_record t 0;
  store_epoch t 0;
  b.Simnvm.Backend.pwb t.layout.Layout.epoch_addr;
  Heap.init_cursor bctx t.heap;
  Incll.init bctx t.layout.Layout.slots_cell 0;
  for slot = 0 to t.cfg.max_threads - 1 do
    Incll.init bctx
      (Layout.reglen_cell t.layout ~line_words:b.Simnvm.Backend.line_words
         slot)
      0
  done;
  b.Simnvm.Backend.psync ();
  t

(* Attach a runtime to a memory image that just went through recovery.
   [reflush] seeds the to_be_flushed list with the cells the recovery rolled
   back: they carry the current (failed) epoch number in their epoch_id, so
   their next update skips logging and would otherwise never be re-flushed
   (see Recovery). They are assigned to slot 0. *)
let restart ?cfg ?(reflush = []) env =
  let t = make_internal ?cfg env in
  let st = t.slots.(0) in
  st.to_flush <- reflush;
  st.to_flush_len <- List.length reflush;
  t

(* ------------------------------------------------------------------ *)
(* InCLL registry: recovery enumerates live cells through it. Each slot
   appends to its own segment, so no cross-thread synchronisation is
   needed on the allocation path. *)

let line_words t = Simsched.Env.line_words t.env

let register_range t ~slot ~base ~count =
  let c = ctx t ~slot in
  let lencell = Layout.reglen_cell t.layout ~line_words:(line_words t) slot in
  let len = Incll.read c lencell in
  if len >= t.layout.Layout.registry_per_slot then
    failwith
      (Printf.sprintf "Runtime: InCLL registry full (slot %d, cap %d)" slot
         t.layout.Layout.registry_per_slot);
  let entry = Layout.registry_segment t.layout slot + len in
  let encoded = Layout.encode_entry ~base ~count in
  Simsched.Env.store t.env entry encoded;
  add_modified t ~slot entry;
  if t.cfg.integrity then begin
    (* Registry summary: bind the entry word to its address so recovery
       can refuse a corrupted entry instead of scanning wild memory. The
       summary lives in its own region; a crash before the checkpoint
       flushes both is harmless because the rolled-back registry length
       hides the entry from the scan. *)
    let sum = Layout.regsum_addr t.layout ~entry in
    Simsched.Env.store t.env sum (Checksum.regsum ~entry:encoded ~addr:entry);
    add_modified t ~slot sum
  end;
  Incll.update c lencell (len + 1)

let register_cell t ~slot cell = register_range t ~slot ~base:cell ~count:1

(* ------------------------------------------------------------------ *)
(* Thread registration *)

let register t ~slot =
  if slot < 0 || slot >= t.cfg.max_threads then
    invalid_arg "Runtime.register: slot out of range";
  let st = t.slots.(slot) in
  if st.active then invalid_arg "Runtime.register: slot already active";
  Simsched.Mutex.with_lock (sched t) t.rmx (fun () ->
      st.active <- true;
      st.flag <- false);
  (* Assign the persistent RP_id cell: reuse the one recorded in the slot
     table by a pre-crash run, otherwise allocate and publish it. *)
  let table_addr = t.layout.Layout.slot_table_base + slot in
  let recorded = Simsched.Env.load t.env table_addr in
  let c = ctx t ~slot in
  if recorded <> 0 then st.rp_cell <- recorded
  else begin
    let cell, fresh = Heap.alloc_incll_block c t.heap in
    Incll.init c cell 0;
    if fresh then register_cell t ~slot cell;
    Simsched.Env.store t.env table_addr cell;
    add_modified t ~slot table_addr;
    Simsched.Mutex.with_lock (sched t) t.regmx (fun () ->
        let count = Incll.read c t.layout.Layout.slots_cell in
        if slot + 1 > count then
          Incll.update c t.layout.Layout.slots_cell (slot + 1));
    st.rp_cell <- cell
  end

let deregister t ~slot =
  let st = t.slots.(slot) in
  Simsched.Mutex.with_lock (sched t) t.rmx (fun () ->
      st.active <- false;
      st.flag <- false;
      (* A departing thread may be the last one a checkpoint waits for. *)
      Simsched.Condvar.signal (sched t) t.arrival)

let spawn ?name t ~slot f =
  Simsched.Scheduler.spawn ?name (sched t) (fun () ->
      register t ~slot;
      match f (ctx t ~slot) with
      | () -> deregister t ~slot
      | exception e ->
          if e <> Simsched.Scheduler.Crashed then deregister t ~slot;
          raise e)

(* ------------------------------------------------------------------ *)
(* InCLL allocation *)

let alloc_incll t ~slot v =
  let c = ctx t ~slot in
  let cell, fresh = Heap.alloc_incll_block c t.heap in
  Incll.init c cell v;
  if fresh then register_cell t ~slot cell;
  cell

let alloc_incll_array t ~slot n ~init:v =
  let c = ctx t ~slot in
  let base, fresh = Heap.alloc_incll_array_block c t.heap n in
  for i = 0 to n - 1 do
    Incll.init c (Heap.cell_at t.env base i) v
  done;
  if fresh then begin
    (* One range-encoded registry entry per chunk of the array. Chunks
       start on line boundaries so the packed-cell rule (Heap.cell_at)
       decodes identically from each chunk base. *)
    let cpl = max 1 (line_words t / Incll.words) in
    let per = Layout.max_entry_count / cpl * cpl in
    let rec cover i =
      if i < n then begin
        let count = min per (n - i) in
        register_range t ~slot ~base:(Heap.cell_at t.env base i) ~count;
        cover (i + count)
      end
    in
    cover 0
  end;
  base

let alloc_raw ?line_start t ~slot ~words =
  Heap.alloc ?line_start (ctx t ~slot) t.heap ~words

let alloc_raw_block ?align_line ?line_start t ~slot ~words =
  Heap.alloc_block ?align_line ?line_start (ctx t ~slot) t.heap ~words

(* Initialise an InCLL cell embedded in a block obtained from
   [alloc_raw_block]: registered for recovery only when the block is fresh
   (a recycled block's cells are already in the registry). *)
let init_incll t ~slot ~fresh cell v =
  Incll.init (ctx t ~slot) cell v;
  if fresh then register_cell t ~slot cell

let free t ~slot addr ~words = Heap.free (ctx t ~slot) t.heap addr ~words

let update t ~slot cell v = Incll.update (ctx t ~slot) cell v
let read t ~slot cell = Incll.read (ctx t ~slot) cell

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let all_flags_raised t =
  Array.for_all (fun st -> (not st.active) || st.flag) t.slots

(* Flush the gathered addresses, modelling the flusher-thread pool: the
   pwb costs are accumulated off the coordinator's clock, divided by the
   pool width, and charged as the parallel flush's makespan. *)
let flush_with_pool t addrs =
  let b = bops t in
  let t0 = Simsched.Scheduler.now (sched t) in
  let saved = b.Simnvm.Backend.get_charge () in
  let acc = ref 0.0 in
  b.Simnvm.Backend.set_charge (fun ns -> acc := !acc +. ns);
  List.iter (fun addr -> b.Simnvm.Backend.pwb addr) addrs;
  b.Simnvm.Backend.psync ();
  b.Simnvm.Backend.set_charge saved;
  let makespan = !acc /. float_of_int (max 1 t.cfg.flusher_pool) in
  Simsched.Scheduler.charge (sched t) makespan;
  t.stats.flush_ns <- t.stats.flush_ns +. makespan;
  emit_span t "checkpoint.flush" t0 (Simsched.Scheduler.now (sched t))

(* Seal the checkpoint that advanced into epoch value [v]: commit record
   slot (integrity mode), epoch word, pwb, psync. All the stores share
   line 0, so one pwb persists them line-atomically under PCSO. *)
let seal_commit t v =
  if t.cfg.integrity then store_commit_record t v;
  store_epoch t v;
  Simsched.Env.pwb t.env t.layout.Layout.epoch_addr;
  Simsched.Env.psync t.env

(* Checkpoint-completion bookkeeping, shared by the classic body (runs on
   the coordinator clock) and the pipelined seal (runs on the sealing
   flusher's clock). *)
let finish_checkpoint_stats t ~count ~now =
  (* The epoch span runs from the previous checkpoint's completion to this
     one's (from time 0 for the first), the interval during which the
     just-flushed modifications accumulated. *)
  emit_span t "epoch" t.stats.last_checkpoint_end now;
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  t.stats.flushed_addrs <- t.stats.flushed_addrs + count;
  if t.stats.checkpoints > 1 then
    t.stats.period_sum <-
      t.stats.period_sum +. (now -. t.stats.last_checkpoint_end);
  t.stats.last_checkpoint_end <- now

let collect_to_flush t =
  Array.fold_left
    (fun (acc, n) st ->
      let l = st.to_flush in
      let k = st.to_flush_len in
      st.to_flush <- [];
      st.to_flush_len <- 0;
      (List.rev_append l acc, n + k))
    ([], 0) t.slots

(* ------------------------------------------------------------------ *)
(* Background flusher pool (pipeline mode). The fibers are long-lived:
   spawned once on the scheduler, they sleep on [flush_work] between
   checkpoints, claim chunks of the handed-off modified set from a shared
   cursor, and issue the pwbs on their own virtual clocks — so the walk
   genuinely overlaps mutator execution under the smallest-clock dispatch.
   The last fiber to finish the walk performs the seal. *)

let walk_chunk = 32 (* addresses claimed per host-atomic grab *)

let flusher_body t () =
  let s = sched t in
  let last = ref (-1) in
  let running = ref true in
  while !running do
    Simsched.Mutex.lock s t.fmx;
    while
      (match t.job with Some j -> j.j_id = !last | None -> true)
      && not t.stop_requested
    do
      Simsched.Condvar.wait s t.flush_work t.fmx
    done;
    match t.job with
    | Some j when j.j_id <> !last ->
        Simsched.Mutex.unlock s t.fmx;
        last := j.j_id;
        let busy0 = Simsched.Scheduler.now s in
        let len = Array.length j.j_addrs in
        let walking = ref true in
        while !walking do
          let lo = j.j_next in
          if lo >= len then walking := false
          else begin
            (* Host-level claim between yield points, hence atomic. *)
            let hi = min len (lo + walk_chunk) in
            j.j_next <- hi;
            for k = lo to hi - 1 do
              Simsched.Env.pwb t.env j.j_addrs.(k);
              Simsched.Scheduler.poll s
            done
          end
        done;
        (* Flush time is attributed to the flusher fibers, not folded into
           the coordinator's period accounting. *)
        emit_span t "checkpoint.flush" busy0 (Simsched.Scheduler.now s);
        Simsched.Mutex.lock s t.fmx;
        j.j_done_at <- Float.max j.j_done_at (Simsched.Scheduler.now s);
        j.j_walkers <- j.j_walkers - 1;
        let last_walker = j.j_walkers = 0 in
        Simsched.Mutex.unlock s t.fmx;
        if last_walker then begin
          (* The seal happens-after every walker's completion. *)
          Simsched.Scheduler.advance_to s j.j_done_at;
          let walk_end = Simsched.Scheduler.now s in
          t.stats.flush_ns <- t.stats.flush_ns +. (walk_end -. j.j_handoff);
          Simsched.Env.psync t.env;
          if not j.j_sealed_early then seal_commit t (j.j_epoch + 1);
          if t.mutant <> Some Early_reclaim then Heap.release t.heap j.j_staged;
          let now = Simsched.Scheduler.now s in
          t.stats.overlap_ns <- t.stats.overlap_ns +. (now -. j.j_handoff);
          emit_span t "checkpoint.overlap" j.j_handoff now;
          emit_span t "checkpoint" j.j_t0 now;
          finish_checkpoint_stats t ~count:j.j_count ~now;
          Simsched.Mutex.lock s t.fmx;
          t.job <- None;
          Simsched.Condvar.broadcast s t.flush_done;
          Simsched.Mutex.unlock s t.fmx
        end
    | _ ->
        (* stop requested and no fresh job *)
        Simsched.Mutex.unlock s t.fmx;
        running := false
  done

(* The pool is spawned once, lazily: [start] spawns it for a pipelined
   runtime, and a manually driven [run_checkpoint] (tests, crash scenarios)
   spawns it on first use — still long-lived fibers, never per-checkpoint
   threads. *)
let ensure_flushers t =
  if not t.flushers_started then begin
    t.flushers_started <- true;
    for i = 0 to max 1 t.cfg.flusher_pool - 1 do
      ignore
        (Simsched.Scheduler.spawn
           ~name:(Printf.sprintf "respct-flusher-%d" i)
           (sched t) (flusher_body t))
    done
  end

(* The body of the checkpoint procedure, to be called with [rmx] held and
   all flags raised: flush, advance the epoch, release the epoch's frees.
   [on_flushed] runs between the flush and the epoch increment, while every
   application thread is still quiescent: at that instant the persistent
   image is exactly the state at the start of the next epoch, which test
   oracles snapshot to verify recovery. *)
let checkpoint_body ?(on_flushed = fun (_ : int) -> ()) t =
  let addrs, count = collect_to_flush t in
  (match t.cfg.mode with
  | Full -> flush_with_pool t addrs
  | No_flush | Incll_only -> ());
  let e = epoch_word t in
  on_flushed (e + 1);
  seal_commit t (e + 1);
  t.cur_epoch <- e + 1;
  Array.fill t.slot_epochs 0 (Array.length t.slot_epochs) (e + 1);
  Heap.advance_epoch t.heap;
  let now = Simsched.Scheduler.now (sched t) in
  finish_checkpoint_stats t ~count ~now

(* Pipelined quiescence body, with [rmx] held and all flags raised: gather
   the modified set, snapshot the oracle state, stage the epoch's heap
   frees, hand the walk to the flusher pool, advance the volatile epoch
   views and release the workers. The persistent seal happens later, on
   the last flusher, once the walk completes (seal-at-walk-completion). *)
let checkpoint_handoff ?(on_flushed = fun (_ : int) -> ()) t ~t0 =
  let s = sched t in
  let addrs, count = collect_to_flush t in
  let e = t.cur_epoch in
  (* Quiescent instant: the model state here equals end-of-epoch-[e],
     exactly what recovery restores for a crash in epoch e+1 — the same
     oracle contract as the classic on_flushed. *)
  on_flushed (e + 1);
  let staged = Heap.collect_pending t.heap in
  if t.mutant = Some Early_reclaim then Heap.release t.heap staged;
  let sealed_early = t.mutant = Some Seal_before_walk in
  if sealed_early then seal_commit t (e + 1);
  let now = Simsched.Scheduler.now s in
  let job =
    {
      j_id = t.next_job_id;
      j_epoch = e;
      j_addrs = Array.of_list addrs;
      j_next = 0;
      j_count = count;
      j_staged = staged;
      j_t0 = t0;
      j_handoff = now;
      j_sealed_early = sealed_early;
      j_walkers = max 1 t.cfg.flusher_pool;
      j_done_at = now;
    }
  in
  t.next_job_id <- t.next_job_id + 1;
  t.cur_epoch <- e + 1;
  Array.fill t.slot_epochs 0 (Array.length t.slot_epochs) (e + 1);
  Simsched.Mutex.lock s t.fmx;
  t.job <- Some job;
  Simsched.Condvar.broadcast s t.flush_work;
  Simsched.Mutex.unlock s t.fmx

(* One full checkpoint: raise the timer, wait for every active thread to
   reach a restart point, then either flush-and-seal synchronously (classic
   mode) or hand the walk to the flusher pool and release the workers
   immediately (pipeline mode). Runs on the coordinator thread (or directly
   on a test thread). Pipeline applies to mode [Full] only: No_flush and
   eADR-style runs keep the classic ordering even with [pipeline = true]. *)
let run_checkpoint ?on_flushed t =
  let s = sched t in
  let pipelined = t.cfg.pipeline && t.cfg.mode = Full in
  if pipelined then begin
    ensure_flushers t;
    (* Backpressure: at most one overlapped flush in flight — the next
       quiescence waits out the previous seal before stalling anyone. *)
    Simsched.Mutex.lock s t.fmx;
    while t.job <> None do
      Simsched.Condvar.wait s t.flush_done t.fmx
    done;
    Simsched.Mutex.unlock s t.fmx
  end;
  let t0 = Simsched.Scheduler.now s in
  Simsched.Mutex.lock s t.rmx;
  t.timer <- true;
  while not (all_flags_raised t) do
    Simsched.Condvar.wait s t.arrival t.rmx
  done;
  emit_span t "checkpoint.wait" t0 (Simsched.Scheduler.now s);
  if pipelined then checkpoint_handoff ?on_flushed t ~t0
  else checkpoint_body ?on_flushed t;
  t.timer <- false;
  Simsched.Condvar.broadcast s t.finished;
  Simsched.Mutex.unlock s t.rmx;
  let now = Simsched.Scheduler.now s in
  t.stats.stall_ns <- t.stats.stall_ns +. (now -. t0);
  emit_span t "checkpoint.stall" t0 now;
  if not pipelined then emit_span t "checkpoint" t0 now

let coordinator t () =
  let s = sched t in
  let rec loop deadline =
    Simsched.Scheduler.sleep_until s deadline;
    if not t.stop_requested then begin
      run_checkpoint t;
      let next =
        Float.max (deadline +. t.cfg.period_ns) (Simsched.Scheduler.now s)
      in
      loop next
    end
  in
  loop (Simsched.Scheduler.now s +. t.cfg.period_ns)

let start t =
  match t.cfg.mode with
  | Incll_only -> ()
  | Full | No_flush ->
      if t.cfg.pipeline && t.cfg.mode = Full then ensure_flushers t;
      ignore (Simsched.Scheduler.spawn ~name:"respct-coordinator" (sched t)
                (coordinator t))

let stop t =
  t.stop_requested <- true;
  (* Wake idle flusher fibers so they can exit; only meaningful (and only
     legal) from inside the simulation. *)
  if
    t.flushers_started
    && Simsched.Scheduler.current_tid_opt (sched t) >= 0
  then begin
    let s = sched t in
    Simsched.Mutex.lock s t.fmx;
    Simsched.Condvar.broadcast s t.flush_work;
    Simsched.Mutex.unlock s t.fmx
  end

let set_mutant t m = t.mutant <- m

(* ------------------------------------------------------------------ *)
(* Restart points (paper section 3.3) *)

let rp t ~slot id =
  let st = t.slots.(slot) in
  (let bus = Simsched.Scheduler.trace_bus (sched t) in
   if Simsched.Trace.active bus then
     Simsched.Trace.emit bus
       (Simsched.Trace.Restart_point
          { tid = Simsched.Scheduler.current_tid_opt (sched t); id }));
  (* Deferred RP_id under an overlapped flush: the rp cell is updated at
     every restart point, so its previous log always belongs to the epoch
     being flushed and re-logging it would park every worker on the
     wait-for-flushed barrier at its first rp of the new epoch. Skipping
     the persistent update until the seal is safe: a crash before the seal
     rolls the world back to the previous quiescence, where the cell's
     backup holds the matching rp id; a crash after the seal (update still
     deferred) restores end-of-epoch state, and the cell's un-relogged
     record is exactly the rp id at that quiescence. Quiescence itself
     never overlaps a flush (backpressure), so the id written there is
     never deferred. *)
  let deferred =
    t.cfg.pipeline
    &&
    match t.job with
    | Some j ->
        Checksum.epoch_of
          (Simsched.Env.load t.env (Incll.epoch_id st.rp_cell))
        = j.j_epoch
    | None -> false
  in
  if not deferred then Incll.update (ctx t ~slot) st.rp_cell id;
  let s = sched t in
  Simsched.Scheduler.charge s flag_check_ns;
  if t.timer then begin
    Simsched.Mutex.lock s t.rmx;
    if t.timer then begin
      st.flag <- true;
      Simsched.Condvar.signal s t.arrival;
      while t.timer do
        Simsched.Condvar.wait s t.finished t.rmx
      done;
      st.flag <- false
    end;
    Simsched.Mutex.unlock s t.rmx
  end

(* Fast path without the runtime mutex, like the paper's plain flag store:
   the flag is raised before [timer] is checked, so either the coordinator's
   scan (under rmx) already sees it, or we observe the raised timer and
   deliver the signal under rmx. Cooperative execution makes the two
   volatile accesses sequentially consistent. *)
let checkpoint_allow t ~slot =
  let s = sched t in
  t.slots.(slot).flag <- true;
  Simsched.Scheduler.charge s flag_check_ns;
  if t.timer then
    Simsched.Mutex.with_lock s t.rmx (fun () ->
        Simsched.Condvar.signal s t.arrival)

(* checkpoint_prevent (paper lines 32-39). [app_mutex] is the application
   mutex re-acquired by the cond_wait that just returned; it must be
   released while waiting for an ongoing checkpoint, and rmx must never be
   held while blocking on it. *)
let checkpoint_prevent t ~slot app_mutex =
  let s = sched t in
  let st = t.slots.(slot) in
  st.flag <- false;
  Simsched.Scheduler.charge s flag_check_ns;
  (* Fast path: no pending checkpoint, the flag store suffices. If the
     coordinator raced us and already observed the raised flag, [timer] is
     true here and the slow path below blocks on rmx until the checkpoint
     completes, preserving quiescence. *)
  if t.timer then begin
    Simsched.Mutex.lock s t.rmx;
    st.flag <- false;
    if t.timer then begin
      st.flag <- true;
      Simsched.Condvar.signal s t.arrival;
      Simsched.Mutex.unlock s app_mutex;
      while t.timer do
        Simsched.Condvar.wait s t.finished t.rmx
      done;
      Simsched.Mutex.unlock s t.rmx;
      Simsched.Mutex.lock s app_mutex;
      Simsched.Mutex.with_lock s t.rmx (fun () -> st.flag <- false)
    end
    else Simsched.Mutex.unlock s t.rmx
  end

(* Simplified variant for blocking calls outside critical sections. *)
let checkpoint_prevent_nolock t ~slot =
  let s = sched t in
  let st = t.slots.(slot) in
  st.flag <- false;
  Simsched.Scheduler.charge s flag_check_ns;
  if t.timer then begin
    Simsched.Mutex.lock s t.rmx;
    st.flag <- false;
    if t.timer then begin
      st.flag <- true;
      Simsched.Condvar.signal s t.arrival;
      while t.timer do
        Simsched.Condvar.wait s t.finished t.rmx
      done;
      st.flag <- false
    end;
    Simsched.Mutex.unlock s t.rmx
  end

(* Figure 7: condition-variable wait wrapped in allow/prevent. *)
let cond_wait t ~slot cv app_mutex =
  checkpoint_allow t ~slot;
  Simsched.Condvar.wait (sched t) cv app_mutex;
  checkpoint_prevent t ~slot app_mutex

(* ------------------------------------------------------------------ *)
(* Introspection *)

let debug_flags t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "timer=%b stop=%b " t.timer t.stop_requested);
  Array.iteri
    (fun i st ->
      if st.active then
        Buffer.add_string b (Printf.sprintf "[%d:%b]" i st.flag))
    t.slots;
  Buffer.contents b

let stats t = t.stats
let heap t = t.heap
let layout t = t.layout
let env t = t.env
let rp_id t ~slot = read t ~slot t.slots.(slot).rp_cell

let mean_effective_period t =
  if t.stats.checkpoints <= 1 then nan
  else t.stats.period_sum /. float_of_int (t.stats.checkpoints - 1)
