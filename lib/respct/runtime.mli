(** The ResPCT checkpointing runtime (paper Figure 4): epochs, restart
    points, modification tracking and the periodic checkpoint procedure with
    a flusher-thread pool.

    Typical life cycle:
    {ol
    {- [create env] initialises a fresh persistent image (or
       [restart env] after {!Recovery});}
    {- [start t] launches the periodic checkpoint coordinator;}
    {- application threads are launched with [spawn], allocate persistent
       state with [alloc_incll]/[alloc_raw], update it with [update] (the
       paper's [update_InCLL]) or plain stores + [add_modified], and call
       [rp] at their restart points;}
    {- [stop t] ends the coordinator once the workers are done.}} *)

type mode =
  | Full  (** complete algorithm *)
  | No_flush
      (** checkpoints run but skip the flush (Figure 10, ResPCT-noFlush) *)
  | Incll_only
      (** no coordinator at all: InCLL + tracking costs only (Figure 10,
          ResPCT-InCLL) *)

type config = {
  period_ns : float;  (** checkpoint interval (paper default: 64 ms) *)
  flusher_pool : int;  (** parallel flusher threads at checkpoint time *)
  mode : mode;
  max_threads : int;  (** thread-slot capacity *)
  registry_per_slot : int;  (** registry capacity per thread slot *)
  integrity : bool;
      (** seal InCLL epoch words, registry entries and checkpoint commits
          with {!Checksum} codes so {!Recovery.run_verified} can detect and
          classify media damage. Off by default; when off, behaviour and
          the persistent image are bit-identical to a build without the
          feature. *)
  pipeline : bool;
      (** asynchronous epoch advance ([Full] mode only): quiescence only
          gathers the modified set and hands it to a pool of long-lived
          background flusher fibers, then releases the workers into epoch
          e+1 immediately; the checkpoint seals on a double-buffered commit
          record once the background walk completes. A worker re-logging a
          cell whose last log belongs to the still-flushing epoch waits for
          the seal (wait-for-flushed; see DESIGN.md §12). Off by default;
          when off, behaviour, virtual timings and the persistent image are
          bit-identical to the classic synchronous checkpoint. *)
}

val default_config : config

(** Planted protocol mutants for crash testing: each disables one safety
    leg of the pipelined checkpoint so the crash matrix can prove that leg
    load-bearing. Never set outside tests. *)
type mutant =
  | Seal_before_walk
      (** seal the commit at handoff, before the walk completes *)
  | No_overlap_wait  (** drop the wait-for-flushed overlap barrier *)
  | Early_reclaim
      (** release the epoch's heap frees at handoff instead of at seal *)

type stats = {
  mutable checkpoints : int;
  mutable flushed_addrs : int;  (** addresses flushed across all checkpoints *)
  mutable flush_ns : float;
      (** virtual time spent flushing: the synchronous flush makespan in
          classic mode, the background-walk makespan (handoff to walk end,
          on the flusher clocks) in pipeline mode *)
  mutable period_sum : float;
  mutable last_checkpoint_end : float;
  mutable stall_ns : float;
      (** mutator stall: timer raise to worker release, summed over
          checkpoints — the whole checkpoint in classic mode, only the
          quiescence wait + handoff in pipeline mode *)
  mutable overlap_ns : float;
      (** pipeline only: worker release to commit seal, the flush window
          overlapped with mutator execution *)
}

type t

val create : ?cfg:config -> Simsched.Env.t -> t
(** Initialise a runtime over a fresh persistent image; epoch 0 and the
    metadata cells are persisted immediately, so a crash before the first
    checkpoint recovers the empty initial state. *)

val restart : ?cfg:config -> ?reflush:Incll.cell list -> Simsched.Env.t -> t
(** Attach a runtime to a recovered image. [reflush] must be the
    [rolled_back] list of the {!Recovery.report}: those cells carry the
    failed epoch in their epoch_id, so their next update skips logging and
    they would otherwise never be re-flushed. *)

val start : t -> unit
(** Spawn the periodic checkpoint coordinator (no-op in [Incll_only] mode).
    Call before [Scheduler.run]. *)

val stop : t -> unit
(** Ask the coordinator to exit at its next period boundary; also wakes any
    idle background flusher fibers so a pipelined run can terminate (call
    it from inside the simulation once the workers are done, or the idle
    pool deadlocks the scheduler). *)

val set_mutant : t -> mutant option -> unit
(** Plant (or clear) a pipelined-protocol mutant. Test-only. *)

val spawn : ?name:string -> t -> slot:int -> (Pctx.t -> unit) -> int
(** Launch an application thread bound to a slot: registers the slot
    (allocating or recovering its persistent RP_id cell), runs the body with
    the slot's persistence context, deregisters on normal exit. *)

val register : t -> slot:int -> unit
(** Low-level: bind the calling simulated thread to a slot. *)

val deregister : t -> slot:int -> unit
(** Low-level: release a slot (checkpoints stop waiting for it). *)

val ctx : t -> slot:int -> Pctx.t
(** Persistence context of a slot (epoch lookup + tracking hook). *)

val rp : t -> slot:int -> int -> unit
(** Restart point (paper [RP(id)]): persist the RP id in the thread's RP_id
    cell; if a checkpoint is pending, raise the thread's flag and block
    until the checkpoint completes. [id] must be unique per call site and
    stable across runs. Never call inside a critical section. *)

val checkpoint_allow : t -> slot:int -> unit
(** Permit checkpoints to proceed without this thread (before a blocking
    call, paper Figure 7). *)

val checkpoint_prevent : t -> slot:int -> Simsched.Mutex.t -> unit
(** Revoke the permission after a [cond_wait] returned, waiting out any
    ongoing checkpoint while temporarily releasing the application mutex
    (paper lines 32-39). *)

val checkpoint_prevent_nolock : t -> slot:int -> unit
(** Variant for blocking calls made outside critical sections. *)

val cond_wait : t -> slot:int -> Simsched.Condvar.t -> Simsched.Mutex.t -> unit
(** Condition-variable wait wrapped in allow/prevent (paper Figure 7). *)

val run_checkpoint : ?on_flushed:(int -> unit) -> t -> unit
(** Execute one full checkpoint (the coordinator's body): raise the timer,
    wait for all active threads to reach restart points, then flush and
    advance the epoch — synchronously in classic mode, or by handing the
    walk to the background flusher pool in pipeline mode (the call returns
    at handoff; the seal lands later on a flusher fiber, and a second call
    first waits out any flush still in flight). [on_flushed next_epoch]
    runs at the quiescent instant: the model state there is exactly what
    recovery restores for a crash in [next_epoch]. In pipeline mode the
    contract still holds: a crash during the overlapped walk reports the
    previous epoch as failed (the epoch word has not advanced) and recovery
    restores the previous snapshot; a crash after the seal reports
    [next_epoch] and restores this one. Test oracles snapshot it there.
    Exposed for deterministic tests. *)

val alloc_incll : t -> slot:int -> int -> Incll.cell
(** Allocate, initialise and register one InCLL-protected variable. *)

val alloc_incll_array : t -> slot:int -> int -> init:int -> int
(** Allocate a packed array of [n] registered InCLL cells, all initialised
    to [init]; address cells with {!Heap.cell_at}. *)

val alloc_raw : ?line_start:bool -> t -> slot:int -> words:int -> int
(** Allocate unlogged persistent words (for WAR-free data: persist them with
    plain stores + {!add_modified}). *)

val alloc_raw_block :
  ?align_line:bool ->
  ?line_start:bool ->
  t ->
  slot:int ->
  words:int ->
  int * bool
(** As {!alloc_raw}, also reporting whether the block is fresh (see
    {!Heap.alloc_block}); needed when the block embeds InCLL cells. *)

val init_incll : t -> slot:int -> fresh:bool -> Incll.cell -> int -> unit
(** Initialise an InCLL cell embedded in a block from {!alloc_raw_block};
    registers it for recovery only when the block is fresh. *)

val free : t -> slot:int -> int -> words:int -> unit
(** Release a heap block (reusable after the next checkpoint). *)

val update : t -> slot:int -> Incll.cell -> int -> unit
(** The paper's [update_InCLL]. Caller must hold the variable's lock. *)

val read : t -> slot:int -> Incll.cell -> int
(** Current value of an InCLL variable. *)

val add_modified : t -> slot:int -> Simnvm.Addr.t -> unit
(** The paper's [add_modified]: register a plain persistent address for
    flushing at the next checkpoint. *)

val epoch : t -> int
(** Current global epoch: the persistent epoch word in classic mode, the
    volatile epoch counter in pipeline mode (which runs one ahead of the
    word while a background flush is in flight). *)

val debug_flags : t -> string
(** Debug helper: timer state and the per-slot flags of active threads. *)

val set_spans : t -> Obs.Span.t -> unit
(** Attach a span recorder: checkpoints thereafter report
    ["checkpoint"] (timer raise to completion — worker release in classic
    mode, seal in pipeline mode), ["checkpoint.wait"] (quiescence wait),
    ["checkpoint.stall"] (timer raise to worker release, the mutator-visible
    pause), ["checkpoint.flush"] (flush makespan; per-flusher busy spans in
    pipeline mode), ["checkpoint.overlap"] (pipeline only: worker release
    to seal) and ["epoch"] (previous checkpoint end to this one) intervals
    on the virtual clock. Pure observation: attaching one changes no
    charge. *)

val spans : t -> Obs.Span.t option

val stats : t -> stats
val heap : t -> Heap.t
val layout : t -> Layout.t
val env : t -> Simsched.Env.t

val rp_id : t -> slot:int -> int
(** Last restart-point id persisted for the slot. *)

val mean_effective_period : t -> float
(** Mean measured distance between checkpoint completions (section 5.2's
    effective period; [nan] with fewer than two checkpoints). *)
