(* Fixed NVMM layout of the ResPCT runtime metadata.

   Recovery must find the runtime's own persistent state without any
   volatile information, so it lives at fixed word addresses:

     0                  global epoch counter (plain word, flushed explicitly)
     line 1             heap-cursor InCLL cell
     line 2             slot-count InCLL cell
     reglen_cells_base  per-slot registry-length InCLL cells (packed)
     slot_table_base    one word per thread slot: address of its RP_id cell
     registry_base      per-slot registry segments (addresses of live InCLL
                        cells, append-only)
     heap_base          general persistent heap

   The registries materialise the set "every variable in NVMM with InCLL"
   that the recovery procedure of Figure 5 iterates over. They are per
   thread slot so that allocation-heavy workloads register cells without
   any cross-thread synchronisation; each segment's length counter is
   itself InCLL-protected, so a crash rolls the registries back in lockstep
   with the heap cursor. *)

type t = {
  epoch_addr : int;
  commit_epoch_addr : int; (* checkpoint-commit record: epoch copy ... *)
  commit_crc_addr : int; (* ... and its CRC-32 (integrity mode only) *)
  commit2_epoch_addr : int; (* second commit slot of the pipelined *)
  commit2_crc_addr : int; (* double-buffered commit protocol *)
  cursor_cell : Incll.cell;
  slots_cell : Incll.cell;
  reglen_cells_base : int; (* packed InCLL cell array, one per slot *)
  slot_table_base : int;
  registry_base : int;
  regsum_base : int; (* registry-entry CRC words (-1 unless integrity) *)
  registry_per_slot : int;
  max_threads : int;
  integrity : bool;
  heap_base : int;
  heap_limit : int;
}

let cells_per_line line_words = max 1 (line_words / Incll.words)

let v ?(integrity = false) ~line_words ~nvm_words ~max_threads
    ~registry_per_slot () =
  if line_words < 2 * Incll.words then
    invalid_arg "Layout.v: need at least two InCLL cells per line";
  let line n = n * line_words in
  let round_up a = (a + line_words - 1) / line_words * line_words in
  let reglen_cells_base = line 2 in
  let reglen_lines =
    (max_threads + cells_per_line line_words - 1) / cells_per_line line_words
  in
  let slot_table_base = reglen_cells_base + (reglen_lines * line_words) in
  let registry_base = round_up (slot_table_base + max_threads) in
  let registry_words = max_threads * registry_per_slot in
  (* The regsum region (one CRC word per registry entry, same indexing)
     exists only in integrity layouts: a non-integrity layout is
     word-for-word the historical one, which the byte-identical
     zero-overhead guarantee relies on. *)
  let regsum_base =
    if integrity then round_up (registry_base + registry_words) else -1
  in
  let heap_base =
    if integrity then round_up (regsum_base + registry_words)
    else round_up (registry_base + registry_words)
  in
  if heap_base >= nvm_words then
    invalid_arg "Layout.v: NVMM too small for metadata";
  {
    epoch_addr = 0;
    (* the commit record shares line 0 with the epoch word, so the three
       stores of a checkpoint commit persist line-atomically under PCSO.
       The pipelined runtime alternates between two commit slots (words
       1-2 and 3-4); words 3-4 were always unused, so non-pipeline images
       remain word-for-word the historical ones. *)
    commit_epoch_addr = 1;
    commit_crc_addr = 2;
    commit2_epoch_addr = 3;
    commit2_crc_addr = 4;
    cursor_cell = line 1;
    slots_cell = line 1 + Incll.words;
    (* cursor and slot-count cells share line 1: 3 + 3 = 6 words *)
    reglen_cells_base;
    slot_table_base;
    registry_base;
    regsum_base;
    registry_per_slot;
    max_threads;
    integrity;
    heap_base;
    heap_limit = nvm_words;
  }

let regsum_addr t ~entry =
  if not t.integrity then invalid_arg "Layout.regsum_addr: integrity off";
  t.regsum_base + (entry - t.registry_base)

(* Registry entries are range-encoded: [base * 2^20 + count] covers [count]
   InCLL cells packed from [base] (cells_per_line per line, the
   Heap.cell_at rule). A single cell is a range of count 1. This keeps one
   allocation of a large cell array (e.g. a million bucket heads) to one
   registry entry. *)

let entry_count_bits = 20
let max_entry_count = (1 lsl entry_count_bits) - 1

let encode_entry ~base ~count =
  if count <= 0 || count > max_entry_count then
    invalid_arg "Layout.encode_entry: bad count";
  (base lsl entry_count_bits) lor count

let decode_entry e = (e lsr entry_count_bits, e land max_entry_count)

let reglen_cell t ~line_words slot =
  let per = cells_per_line line_words in
  t.reglen_cells_base + (slot / per * line_words) + (slot mod per * Incll.words)

let registry_segment t slot = t.registry_base + (slot * t.registry_per_slot)
