(* Recovery procedure (paper Figure 5), with the parallel organisation used
   for the Figure 12 experiment: the per-slot InCLL registries are split
   into chunks distributed over a configurable number of recovery threads,
   each rolling back and re-persisting its share.

   Rollback is idempotent: a crash during recovery re-runs it from scratch
   against the same persistent image (backup words are never modified).

   Per the paper (line 65), the global epoch is left at the failed epoch.
   A rolled-back cell keeps that epoch in its epoch_id, so the first
   post-restart update of it correctly skips re-logging (backup already
   holds the start-of-epoch value) -- but the volatile to_be_flushed lists
   died in the crash, so the restarted runtime must be re-seeded with the
   rolled-back cells or their next checkpoint would miss them. [rolled_back]
   carries that list; [Runtime.restart] consumes it. *)

type report = {
  failed_epoch : int;
  scanned : int; (* registry entries examined *)
  rolled_back : Incll.cell list; (* cells restored from their backup *)
  duration_ns : float; (* virtual time of the parallel recovery *)
  rp_ids : (int * int) list; (* (slot, restart-point id) per thread slot *)
}

(* Roll one cell back if it was modified during the failed epoch; returns
   true if a rollback happened. Runs inside a recovery thread. *)
let rollback env ~failed_epoch cell =
  if Simsched.Env.load env (Incll.epoch_id cell) = failed_epoch then begin
    let saved = Simsched.Env.load env (Incll.backup cell) in
    Simsched.Env.store env (Incll.record cell) saved;
    Simsched.Env.pwb env cell;
    true
  end
  else false

(* Chunks of registry entries handed to the recovery workers. *)
let chunk_words = 256

let run ?(threads = 1) ?(layout : Layout.t option) ?spans mem =
  let mcfg = Simnvm.Memsys.config mem in
  let line_words = mcfg.Simnvm.Memsys.line_words in
  let layout =
    match layout with
    | Some l -> l
    | None ->
        Layout.v ~line_words ~nvm_words:mcfg.Simnvm.Memsys.nvm_words
          ~max_threads:Runtime.default_config.Runtime.max_threads
          ~registry_per_slot:Runtime.default_config.Runtime.registry_per_slot
  in
  let failed_epoch = Simnvm.Memsys.persisted mem layout.Layout.epoch_addr in
  (* Recovery runs on its own scheduler so its virtual duration is the
     makespan of the parallel scan (Figure 12 measures exactly this). *)
  let sched = Simsched.Scheduler.create ~seed:17 () in
  let env = Simsched.Env.make mem sched in
  let rolled = ref [] in
  let scanned = ref 0 in
  ignore
    (Simsched.Scheduler.spawn ~name:"recovery-main" sched (fun () ->
         (* Fixed metadata cells first: registry lengths govern the scan,
            the heap cursor governs reallocation. *)
         let fixed =
           layout.Layout.cursor_cell :: layout.Layout.slots_cell
           :: List.init layout.Layout.max_threads (fun slot ->
                  Layout.reglen_cell layout ~line_words slot)
         in
         let rolled_fixed = List.filter (rollback env ~failed_epoch) fixed in
         Simsched.Env.psync env;
         (* Build the chunked work list over all slot segments. *)
         let work = ref [] in
         for slot = 0 to layout.Layout.max_threads - 1 do
           let len =
             Simsched.Env.load env
               (Incll.record (Layout.reglen_cell layout ~line_words slot))
           in
           scanned := !scanned + len;
           let base = Layout.registry_segment layout slot in
           let rec chunks lo =
             if lo < len then begin
               work := (base + lo, min len (lo + chunk_words) - lo) :: !work;
               chunks (lo + chunk_words)
             end
           in
           chunks 0
         done;
         let work = Array.of_list !work in
         let next = ref 0 in
         let workers = max 1 threads in
         let done_count = ref 0 in
         let done_mx = Simsched.Mutex.create () in
         let done_cv = Simsched.Condvar.create () in
         for _ = 1 to workers do
           ignore
             (Simsched.Scheduler.spawn ~name:"recovery-worker" sched
                (fun () ->
                  let local = ref [] in
                  let continue = ref true in
                  while !continue do
                    (* Work stealing from the shared cursor: the fetch is a
                       host-level operation between yield points, hence
                       atomic. *)
                    if !next >= Array.length work then continue := false
                    else begin
                      let i = !next in
                      incr next;
                      let lo, n = work.(i) in
                      for e = lo to lo + n - 1 do
                        let base, count =
                          Layout.decode_entry (Simsched.Env.load env e)
                        in
                        for j = 0 to count - 1 do
                          let cell = Heap.cell_at env base j in
                          if rollback env ~failed_epoch cell then
                            local := cell :: !local
                        done
                      done
                    end
                  done;
                  Simsched.Env.psync env;
                  rolled := List.rev_append !local !rolled;
                  Simsched.Mutex.with_lock sched done_mx (fun () ->
                      incr done_count;
                      Simsched.Condvar.signal sched done_cv)))
         done;
         Simsched.Mutex.lock sched done_mx;
         while !done_count < workers do
           Simsched.Condvar.wait sched done_cv done_mx
         done;
         Simsched.Mutex.unlock sched done_mx;
         rolled := List.rev_append rolled_fixed !rolled));
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed -> ()
  | Simsched.Scheduler.Crash_interrupt _ -> assert false);
  (* Collect per-thread restart-point ids from the slot table. *)
  let slot_count =
    Simnvm.Memsys.persisted mem (Incll.record layout.Layout.slots_cell)
  in
  let rp_ids =
    List.init slot_count (fun slot ->
        let cell =
          Simnvm.Memsys.persisted mem (layout.Layout.slot_table_base + slot)
        in
        if cell = 0 then (slot, 0)
        else (slot, Simnvm.Memsys.persisted mem (Incll.record cell)))
  in
  let duration_ns = Simsched.Scheduler.elapsed sched in
  (match spans with
  | Some r -> Obs.Span.emit r ~name:"recovery" ~t0:0.0 ~t1:duration_ns
  | None -> ());
  { failed_epoch; scanned = !scanned; rolled_back = !rolled; duration_ns; rp_ids }
