(* Recovery procedure (paper Figure 5), with the parallel organisation used
   for the Figure 12 experiment: the per-slot InCLL registries are split
   into chunks distributed over a configurable number of recovery threads,
   each rolling back and re-persisting its share.

   Rollback is idempotent: a crash during recovery re-runs it from scratch
   against the same persistent image (backup words are never modified).

   Per the paper (line 65), the global epoch is left at the failed epoch.
   A rolled-back cell keeps that epoch in its epoch_id, so the first
   post-restart update of it correctly skips re-logging (backup already
   holds the start-of-epoch value) -- but the volatile to_be_flushed lists
   died in the crash, so the restarted runtime must be re-seeded with the
   rolled-back cells or their next checkpoint would miss them. [rolled_back]
   carries that list; [Runtime.restart] consumes it.

   Two entry points share that skeleton. [run] is the trusting scan of the
   original algorithm: correct on perfect media, silently wrong on faulty
   media. [run_verified] is the hardened scan for integrity-mode images: it
   re-derives the failed epoch from the checkpoint-commit record, verifies
   every cell's Checksum seal before trusting it, retries transient media
   errors with bounded backoff, scrubs persistently failing lines, and
   folds everything it could not prove into a structured verdict -- it
   fails stop (Salvaged / Unrecoverable), never silent. *)

type report = {
  failed_epoch : int;
  scanned : int; (* registry entries examined *)
  rolled_back : Incll.cell list; (* cells restored from their backup *)
  duration_ns : float; (* virtual time of the parallel recovery *)
  rp_ids : (int * int) list; (* (slot, restart-point id) per thread slot *)
}

(* ------------------------------------------------------------------ *)
(* Damage taxonomy of the verified scan *)

type damage =
  | Torn_record of { cell : Incll.cell }
      (* quiescent record failed crc_rec; certified backup restored
         (one epoch stale -- salvage, not proof) *)
  | Torn_log of { cell : Incll.cell }
      (* backup/epoch seal broken: undo log unprovable, cell quarantined *)
  | Metadata_torn of { cell : Incll.cell }
      (* same, on a cursor / slot-count / registry-length cell: the scan
         itself ran on unproven input *)
  | Tag_restored of { cell : Incll.cell }
      (* the cell read quiescent but its log seal only verifies under the
         failed epoch: the epoch tag was damaged. The certified backup was
         restored -- reported, not proven exact (CRC-16 can collide) *)
  | Commit_repaired of { epoch : int }
      (* the epoch word's own seal held and the commit record disagreed
         with it: the commit record was rewritten from the certified
         epoch -- a proven repair *)
  | Epoch_restored of { epoch : int }
      (* the epoch word's seal was broken and the commit record was
         certified: the epoch word was rewritten from it. The true crash
         may have sat in the pre-bump window one epoch earlier, so the
         restored image is best-effort, not proven exact *)
  | Commit_broken of { epoch_word : int; commit_word : int }
      (* neither side certifiable: the failed epoch itself is unknown *)
  | Registry_corrupt of { addr : int }
      (* registry entry (or slot-table word) failed its summary CRC or
         bounds check; skipped *)
  | Range_out_of_bounds of { addr : int; base : int; count : int }
      (* well-summed entry decoding outside the heap: refused *)
  | Media_failed of { line : int }
      (* line raised Media_error beyond the retry budget: scrubbed,
         content lost *)

type verdict =
  | Clean
  | Repaired of damage list
  | Salvaged of damage list
  | Unrecoverable of damage list

type verified = {
  vreport : report;
  verdict : verdict;
  read_retries : int; (* transient media errors retried away *)
}

let pp_damage ppf = function
  | Torn_record { cell } -> Fmt.pf ppf "torn record @@%d (backup restored)" cell
  | Torn_log { cell } -> Fmt.pf ppf "torn log @@%d (quarantined)" cell
  | Metadata_torn { cell } -> Fmt.pf ppf "metadata torn @@%d" cell
  | Tag_restored { cell } ->
      Fmt.pf ppf "epoch tag damaged @@%d (certified backup restored)" cell
  | Commit_repaired { epoch } ->
      Fmt.pf ppf "commit record repaired (epoch %d)" epoch
  | Epoch_restored { epoch } ->
      Fmt.pf ppf "epoch word restored from commit record (epoch %d)" epoch
  | Commit_broken { epoch_word; commit_word } ->
      Fmt.pf ppf "commit record broken (epoch word %d, commit %d)" epoch_word
        commit_word
  | Registry_corrupt { addr } -> Fmt.pf ppf "registry word @@%d corrupt" addr
  | Range_out_of_bounds { addr; base; count } ->
      Fmt.pf ppf "registry entry @@%d out of bounds (base %d, count %d)" addr
        base count
  | Media_failed { line } -> Fmt.pf ppf "media failed, line %d scrubbed" line

let pp_verdict ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Repaired ds ->
      Fmt.pf ppf "repaired: %a" Fmt.(list ~sep:comma pp_damage) ds
  | Salvaged ds ->
      Fmt.pf ppf "salvaged: %a" Fmt.(list ~sep:comma pp_damage) ds
  | Unrecoverable ds ->
      Fmt.pf ppf "unrecoverable: %a" Fmt.(list ~sep:comma pp_damage) ds

(* Severity lattice: any unprovable metadata damage poisons the whole
   verdict; any unproven cell damage caps it at Salvaged; proven repairs
   alone leave an exact image (Repaired). *)
let damage_grade = function
  | Commit_broken _ | Metadata_torn _ -> 3
  | Torn_record _ | Torn_log _ | Tag_restored _ | Registry_corrupt _
  | Range_out_of_bounds _ | Media_failed _ | Epoch_restored _ ->
      2
  | Commit_repaired _ -> 1

let verdict_of_damages ds =
  match List.fold_left (fun g d -> max g (damage_grade d)) 0 ds with
  | 0 -> Clean
  | 1 -> Repaired ds
  | 2 -> Salvaged ds
  | _ -> Unrecoverable ds

let exact_image = function Clean | Repaired _ -> true | Salvaged _ | Unrecoverable _ -> false

(* ------------------------------------------------------------------ *)
(* Trusting scan *)

(* Roll one cell back if it was modified during the failed epoch; returns
   true if a rollback happened. Runs inside a recovery thread.
   [Checksum.epoch_of] unpacks integrity-sealed epoch words and is the
   identity on raw ones, so one comparison serves both representations.

   The comparison is [>=], not [=]: under the pipelined runtime a crash
   during an overlapped flush of epoch e leaves the epoch word at e while
   cells whose previous log predates e were already re-logged in e+1 —
   both in-flight epochs must roll back (each such backup holds the cell's
   last pre-e value, which the e-flush never persisted). On classic images
   the two predicates are identical: no epoch_id ever exceeds the epoch
   word (the bootstrap sentinel -1 compares below every real epoch and is
   untouched either way). *)
let rollback env ~failed_epoch cell =
  if Checksum.epoch_of (Simsched.Env.load env (Incll.epoch_id cell))
     >= failed_epoch
  then begin
    let saved = Simsched.Env.load env (Incll.backup cell) in
    Simsched.Env.store env (Incll.record cell) saved;
    Simsched.Env.pwb env cell;
    true
  end
  else false

(* Chunks of registry entries handed to the recovery workers. *)
let chunk_words = 256

(* Registry lengths and decoded cell ranges are clamped against the layout
   even in the trusting scan: on corrupt input it may restore wrong values
   (that is what [run_verified] exists for), but it must not walk outside
   the heap or loop forever. *)
let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let cell_in_heap (layout : Layout.t) cell =
  cell >= layout.Layout.heap_base
  && cell + Incll.words <= layout.Layout.heap_limit

let run_backend ?(threads = 1) ?(layout : Layout.t option) ?spans
    (b : Simnvm.Backend.t) =
  let line_words = b.Simnvm.Backend.line_words in
  let layout =
    match layout with
    | Some l -> l
    | None ->
        Layout.v ~line_words ~nvm_words:b.Simnvm.Backend.nvm_words
          ~max_threads:Runtime.default_config.Runtime.max_threads
          ~registry_per_slot:Runtime.default_config.Runtime.registry_per_slot
          ()
  in
  let failed_epoch =
    Checksum.epoch_of (b.Simnvm.Backend.persisted layout.Layout.epoch_addr)
  in
  (* Recovery runs on its own scheduler so its virtual duration is the
     makespan of the parallel scan (Figure 12 measures exactly this). *)
  let sched = Simsched.Scheduler.create ~seed:17 () in
  let env = Simsched.Env.make_backend b sched in
  let rolled = ref [] in
  let scanned = ref 0 in
  ignore
    (Simsched.Scheduler.spawn ~name:"recovery-main" sched (fun () ->
         (* Fixed metadata cells first: registry lengths govern the scan,
            the heap cursor governs reallocation. *)
         let fixed =
           layout.Layout.cursor_cell :: layout.Layout.slots_cell
           :: List.init layout.Layout.max_threads (fun slot ->
                  Layout.reglen_cell layout ~line_words slot)
         in
         let rolled_fixed = List.filter (rollback env ~failed_epoch) fixed in
         Simsched.Env.psync env;
         (* Build the chunked work list over all slot segments. *)
         let work = ref [] in
         for slot = 0 to layout.Layout.max_threads - 1 do
           let len =
             clamp 0 layout.Layout.registry_per_slot
               (Simsched.Env.load env
                  (Incll.record (Layout.reglen_cell layout ~line_words slot)))
           in
           scanned := !scanned + len;
           let base = Layout.registry_segment layout slot in
           let rec chunks lo =
             if lo < len then begin
               work := (base + lo, min len (lo + chunk_words) - lo) :: !work;
               chunks (lo + chunk_words)
             end
           in
           chunks 0
         done;
         let work = Array.of_list !work in
         let next = ref 0 in
         let workers = max 1 threads in
         let done_count = ref 0 in
         let done_mx = Simsched.Mutex.create () in
         let done_cv = Simsched.Condvar.create () in
         for _ = 1 to workers do
           ignore
             (Simsched.Scheduler.spawn ~name:"recovery-worker" sched
                (fun () ->
                  let local = ref [] in
                  let continue = ref true in
                  while !continue do
                    (* Work stealing from the shared cursor: the fetch is a
                       host-level operation between yield points, hence
                       atomic. *)
                    if !next >= Array.length work then continue := false
                    else begin
                      let i = !next in
                      incr next;
                      let lo, n = work.(i) in
                      for e = lo to lo + n - 1 do
                        let base, count =
                          Layout.decode_entry (Simsched.Env.load env e)
                        in
                        for j = 0 to count - 1 do
                          let cell = Heap.cell_at env base j in
                          if
                            cell_in_heap layout cell
                            && rollback env ~failed_epoch cell
                          then local := cell :: !local
                        done
                      done
                    end
                  done;
                  Simsched.Env.psync env;
                  rolled := List.rev_append !local !rolled;
                  Simsched.Mutex.with_lock sched done_mx (fun () ->
                      incr done_count;
                      Simsched.Condvar.signal sched done_cv)))
         done;
         Simsched.Mutex.lock sched done_mx;
         while !done_count < workers do
           Simsched.Condvar.wait sched done_cv done_mx
         done;
         Simsched.Mutex.unlock sched done_mx;
         rolled := List.rev_append rolled_fixed !rolled));
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed -> ()
  | Simsched.Scheduler.Crash_interrupt _ -> assert false);
  (* Collect per-thread restart-point ids from the slot table. *)
  let slot_count =
    clamp 0 layout.Layout.max_threads
      (b.Simnvm.Backend.persisted (Incll.record layout.Layout.slots_cell))
  in
  let rp_ids =
    List.init slot_count (fun slot ->
        let cell =
          b.Simnvm.Backend.persisted (layout.Layout.slot_table_base + slot)
        in
        if cell = 0 || not (cell_in_heap layout cell) then (slot, 0)
        else (slot, b.Simnvm.Backend.persisted (Incll.record cell)))
  in
  let duration_ns = Simsched.Scheduler.elapsed sched in
  (match spans with
  | Some r -> Obs.Span.emit r ~name:"recovery" ~t0:0.0 ~t1:duration_ns
  | None -> ());
  { failed_epoch; scanned = !scanned; rolled_back = !rolled; duration_ns; rp_ids }

let run ?threads ?layout ?spans mem =
  run_backend ?threads ?layout ?spans (Simnvm.Backend.of_memsys mem)

(* ------------------------------------------------------------------ *)
(* Verified scan *)

(* Base of the exponential backoff charged before re-reading a line that
   raised Media_error (virtual nanoseconds). *)
let retry_backoff_ns = 100.0

let run_verified_backend ?(max_read_retries = 4) ?(layout : Layout.t option)
    ?spans (b : Simnvm.Backend.t) =
  let line_words = b.Simnvm.Backend.line_words in
  let layout =
    match layout with
    | Some l -> l
    | None ->
        Layout.v ~integrity:true ~line_words
          ~nvm_words:b.Simnvm.Backend.nvm_words
          ~max_threads:Runtime.default_config.Runtime.max_threads
          ~registry_per_slot:Runtime.default_config.Runtime.registry_per_slot
          ()
  in
  if not layout.Layout.integrity then
    invalid_arg "Recovery.run_verified: layout built without ~integrity";
  let l = layout in
  (* The verified scan is sequential on one recovery fiber: verification is
     dominated by the same registry reads the trusting scan performs, and a
     single fiber keeps the repair log and the media-retry state trivially
     race-free. *)
  let sched = Simsched.Scheduler.create ~seed:17 () in
  let env = Simsched.Env.make_backend b sched in
  let damages = ref [] in
  let add_damage d = damages := d :: !damages in
  let retries = ref 0 in
  (* Read through the cache with a bounded-backoff retry loop: transient
     media errors heal on their first raise, so one retry clears them;
     persistent poison survives the budget and is scrubbed (content lost,
     recorded as damage) so the scan can proceed over zeroed media. The
     raise happens before any cache mutation, so retrying is sound.

     An address the medium cannot serve at all (a file truncated by a
     crash during growth, shorter than its header's claimed geometry)
     surfaces as Invalid_argument from the backend: it grades into the
     taxonomy as an out-of-bounds range rather than escaping the scan --
     the read yields 0, whose failing seal then classifies the cell. *)
  let read addr =
    let rec go n =
      match Simsched.Env.load env addr with
      | v -> v
      | exception Simnvm.Memsys.Media_error { line; _ } ->
          incr retries;
          if n < max_read_retries then begin
            Simsched.Scheduler.charge sched
              (retry_backoff_ns *. float_of_int (1 lsl n));
            go (n + 1)
          end
          else begin
            add_damage (Media_failed { line });
            b.Simnvm.Backend.scrub_line line;
            go 0
          end
      | exception Invalid_argument _ ->
          add_damage (Range_out_of_bounds { addr; base = addr; count = 1 });
          0
    in
    go 0
  in
  let rolled = ref [] in
  let scanned = ref 0 in
  let failed_epoch = ref 0 in
  let rp_ids = ref [] in
  ignore
    (Simsched.Scheduler.spawn ~name:"recovery-verify" sched (fun () ->
         (* 1. Failed epoch. The sealed epoch word is authoritative when
            its own CRC holds; the commit record backs it up. The record
            is double-buffered (two epoch+CRC slots on the epoch word's
            line): the classic runtime rewrites slot A at every
            checkpoint, the pipelined runtime alternates slots by epoch
            parity so a torn seal can never destroy the last certified
            commit. Recovery is protocol-agnostic: it trusts whichever
            slots their CRCs certify and takes the newest. A checkpoint
            commit is three stores -- slot epoch, slot CRC, sealed epoch
            word -- so honest PCSO media can legally persist any prefix: a
            certified slot one epoch ahead of a certified epoch word, or a
            slot whose fresh epoch landed without its CRC (the stale CRC
            certifies the slot's previous tenant), are crash windows, not
            damage. Everything else is classified and, where a CRC proves
            one side, repaired. *)
         let slots_ =
           [|
             (l.Layout.commit_epoch_addr, l.Layout.commit_crc_addr);
             (l.Layout.commit2_epoch_addr, l.Layout.commit2_crc_addr);
           |]
         in
         let slot_crc i e =
           Checksum.commit ~epoch:e ~addr:(fst slots_.(i))
         in
         let ces = Array.map (fun (ea, _) -> read ea) slots_ in
         let ccs = Array.map (fun (_, ca) -> read ca) slots_ in
         let valid i = ccs.(i) = slot_crc i ces.(i) in
         (* Newest certified commit across the two slots, if any. *)
         let newest =
           let best = ref None in
           Array.iteri
             (fun i _ ->
               if valid i then
                 match !best with
                 | Some b when b >= ces.(i) -> ()
                 | _ -> best := Some ces.(i))
             slots_;
           !best
         in
         let e_word = read l.Layout.epoch_addr in
         let ew = Checksum.epoch_of e_word in
         let ew_ok = Checksum.check_epoch ~word:e_word ~addr:l.Layout.epoch_addr in
         (* A slot caught mid-write: its epoch reads one ahead of the
            certified word while its CRC still certifies the slot's
            previous occupant -- [ew] under the classic single-slot
            rewrite, [ew - 1] under the pipelined alternation. *)
         let mid_write i =
           ces.(i) = ew + 1
           && (ccs.(i) = slot_crc i ew || ccs.(i) = slot_crc i (ew - 1))
         in
         let rewrite_commit e =
           Array.iteri
             (fun i (ea, ca) ->
               Simsched.Env.store env ea e;
               Simsched.Env.store env ca (slot_crc i e);
               Simsched.Env.pwb env ea;
               Simsched.Env.pwb env ca)
             slots_
         in
         let fe =
           if ew_ok then
             if
               (match newest with Some s -> s = ew || s = ew + 1 | None -> false)
               || mid_write 0 || mid_write 1
             then ew (* consistent, or a legal mid-commit prefix *)
             else begin
               (* the commit record is damaged; the certified epoch word
                  proves the repair (both slots rewritten to it) *)
               rewrite_commit ew;
               add_damage (Commit_repaired { epoch = ew });
               ew
             end
           else
             match newest with
             | Some s ->
                 (* epoch word corrupted; the newest certified slot is the
                    best evidence, but the crash may have sat in the
                    pre-bump window one epoch earlier -- restored, not
                    proven *)
                 Simsched.Env.store env l.Layout.epoch_addr
                   (Checksum.seal_epoch ~epoch:s ~addr:l.Layout.epoch_addr);
                 Simsched.Env.pwb env l.Layout.epoch_addr;
                 add_damage (Epoch_restored { epoch = s });
                 s
             | None ->
                 (* the failed epoch itself is unknowable: every rollback
                    decision below is a guess, so the verdict is terminal *)
                 add_damage
                   (Commit_broken { epoch_word = e_word; commit_word = ces.(0) });
                 ew
         in
         failed_epoch := fe;
         (* Verify one cell against its seal. The authority depends on
            which side recovery actually consumes:

            - failed-epoch cells are rolled back from their backup, so
              crc_log (over backup + epoch tag) must prove the undo log
              before the restore may claim exactness;
            - quiescent cells keep their record, so crc_rec is the
              authority. Their crc_log may legally fail: the first update
              of a cell in the failed epoch stores the new backup *before*
              the new seal, and a crash in that window persists a fresh
              backup under the previous epoch's seal. That backup is never
              read for a quiescent cell, so a broken log seal alone is
              harmless there -- with one exception. If the epoch *tag* of
              a failed-epoch cell is damaged into reading quiescent, its
              stored crc_log was computed over the failed epoch's bits:
              probing the seal against [fe] unmasks the damage, and the
              then-certified backup is restored (reported as Tag_restored,
              never as exact -- CRC-16 can collide). *)
         let verify_cell ~metadata cell =
           let w = read (Incll.epoch_id cell) in
           let bak = read (Incll.backup cell) in
           let log_ok = Checksum.check_log ~word:w ~backup:bak ~cell in
           let restore ~seal =
             Simsched.Env.store env (Incll.record cell) bak;
             Simsched.Env.store env (Incll.epoch_id cell) seal;
             Simsched.Env.pwb env cell;
             rolled := cell :: !rolled
           in
           (* [>= fe], like the trusting scan: a pipelined overlap crash
              leaves re-logged cells one epoch ahead of the failed epoch
              word, and both in-flight epochs roll back. *)
           if Checksum.epoch_of w >= fe then begin
             if log_ok then
               restore ~seal:(Checksum.reseal_record w ~record:bak ~cell)
             else
               (* the undo log itself is unprovable: touch nothing, report *)
               add_damage
                 (if metadata then Metadata_torn { cell }
                  else Torn_log { cell })
           end
           else begin
             let rec_v = read (Incll.record cell) in
             if Checksum.check_rec ~word:w ~record:rec_v ~cell then begin
               (* Probe the log seal under both in-flight epochs: a damaged
                  tag may have hidden a cell logged in [fe] or, mid-overlap,
                  in [fe + 1]. *)
               let probed =
                 if log_ok then None
                 else if Checksum.check_log_at ~word:w ~backup:bak ~epoch:fe ~cell
                 then Some fe
                 else if
                   Checksum.check_log_at ~word:w ~backup:bak ~epoch:(fe + 1)
                     ~cell
                 then Some (fe + 1)
                 else None
               in
               match probed with
               | Some e ->
                   restore
                     ~seal:
                       (Checksum.seal ~record:bak ~backup:bak ~epoch:e ~cell);
                   add_damage (Tag_restored { cell })
               | None -> ()
             end
             else if log_ok then begin
               (* quiescent record corrupted: the certified backup is the
                  best provable value, but it is one epoch stale -- the
                  restore is a salvage, never reported as exact *)
               restore ~seal:(Checksum.reseal_record w ~record:bak ~cell);
               add_damage
                 (if metadata then Metadata_torn { cell }
                  else Torn_record { cell })
             end
             else
               add_damage
                 (if metadata then Metadata_torn { cell } else Torn_log { cell })
           end
         in
         (* 2. Fixed metadata cells: the registry lengths govern the scan
            and the heap cursor governs reallocation, so unproven damage
            here grades as Unrecoverable. *)
         let fixed =
           l.Layout.cursor_cell :: l.Layout.slots_cell
           :: List.init l.Layout.max_threads (fun slot ->
                  Layout.reglen_cell l ~line_words slot)
         in
         List.iter (verify_cell ~metadata:true) fixed;
         Simsched.Env.psync env;
         (* 3. Registry scan, every entry checked against its summary CRC
            and its decoded range bounds before any cell is trusted. *)
         for slot = 0 to l.Layout.max_threads - 1 do
           let len =
             clamp 0 l.Layout.registry_per_slot
               (read (Incll.record (Layout.reglen_cell l ~line_words slot)))
           in
           scanned := !scanned + len;
           let seg = Layout.registry_segment l slot in
           for i = 0 to len - 1 do
             let eaddr = seg + i in
             let entry = read eaddr in
             let sum = read (Layout.regsum_addr l ~entry:eaddr) in
             if sum <> Checksum.regsum ~entry ~addr:eaddr then
               add_damage (Registry_corrupt { addr = eaddr })
             else begin
               let base, count = Layout.decode_entry entry in
               let last = Heap.cell_at env base (count - 1) in
               if
                 base < l.Layout.heap_base
                 || last + Incll.words > l.Layout.heap_limit
                 || last < base
               then add_damage (Range_out_of_bounds { addr = eaddr; base; count })
               else
                 for j = 0 to count - 1 do
                   verify_cell ~metadata:false (Heap.cell_at env base j)
                 done
             end
           done
         done;
         Simsched.Env.psync env;
         (* 4. Restart points. Slot-table words are raw (no seal), so they
            get bounds checks; a wild pointer yields RP 0 plus damage
            rather than a read of arbitrary memory. *)
         let sc =
           clamp 0 l.Layout.max_threads (read (Incll.record l.Layout.slots_cell))
         in
         rp_ids :=
           List.init sc (fun slot ->
               let taddr = l.Layout.slot_table_base + slot in
               let cell = read taddr in
               if cell = 0 then (slot, 0)
               else if not (cell_in_heap l cell) then begin
                 add_damage (Registry_corrupt { addr = taddr });
                 (slot, 0)
               end
               else (slot, read (Incll.record cell)))));
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed -> ()
  | Simsched.Scheduler.Crash_interrupt _ -> assert false);
  let duration_ns = Simsched.Scheduler.elapsed sched in
  (match spans with
  | Some r -> Obs.Span.emit r ~name:"recovery" ~t0:0.0 ~t1:duration_ns
  | None -> ());
  {
    vreport =
      {
        failed_epoch = !failed_epoch;
        scanned = !scanned;
        rolled_back = !rolled;
        duration_ns;
        rp_ids = !rp_ids;
      };
    verdict = verdict_of_damages !damages;
    read_retries = !retries;
  }

let run_verified ?max_read_retries ?layout ?spans mem =
  run_verified_backend ?max_read_retries ?layout ?spans
    (Simnvm.Backend.of_memsys mem)
