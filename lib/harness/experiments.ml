(* The paper's evaluation experiments (section 5.1-5.2): one function per
   figure, returning labelled rows ready for Table.print and for
   EXPERIMENTS.md.

   Scaling: one simulated memory operation costs tens of virtual
   nanoseconds, exactly like the hardware, but wall-clock budgets limit how
   many of them a data point can execute. The [small] scale therefore
   shrinks both the structures and the checkpoint period so that every
   epoch still covers thousands of operations per thread — the ratio that
   determines checkpoint overhead — while the [paper] scale uses the
   paper's parameters (1M-bucket tables, 64 ms periods) for long runs. *)

type scale = {
  label : string;
  sweep_threads : int list; (* x-axis of Figures 8 and 9 *)
  duration_ns : float; (* measured window per data point *)
  map_prefill : int;
  buckets : int;
  queue_prefill : int;
  period_ns : float; (* default checkpoint interval *)
  fig10_threads : int;
  fig11_periods_ns : float list;
  fig12_buckets : int list;
  recovery_threads : int;
}

let small =
  {
    label = "small";
    sweep_threads = [ 1; 4; 16; 64 ];
    duration_ns = 3.0e6 (* 3 checkpoint periods *);
    map_prefill = 80_000;
    buckets = 40_000;
    queue_prefill = 1_000;
    period_ns = 1.0e6 (* 1 ms; epochs span >1k ops/thread *);
    fig10_threads = 64;
    fig11_periods_ns =
      [ 2_000.0; 4_000.0; 8_000.0; 16_000.0; 64_000.0; 256_000.0;
        1_024_000.0 ];
    fig12_buckets = [ 4_000; 16_000; 64_000; 256_000 ];
    recovery_threads = 32;
  }

let paper =
  {
    label = "paper";
    sweep_threads = [ 1; 4; 8; 16; 32; 64 ];
    duration_ns = 200.0e6 (* >3 paper-scale periods *);
    map_prefill = 1_000_000;
    buckets = 1_000_000;
    queue_prefill = 1_000;
    period_ns = 64.0e6;
    fig10_threads = 64;
    fig11_periods_ns =
      [ 1.0e6; 2.0e6; 4.0e6; 8.0e6; 16.0e6; 32.0e6; 64.0e6 ];
    fig12_buckets = [ 500_000; 1_000_000; 2_000_000; 4_000_000 ];
    recovery_threads = 32;
  }

let scale_of_string = function
  | "small" -> small
  | "paper" -> paper
  | s -> invalid_arg (Printf.sprintf "unknown scale %S (small|paper)" s)

(* Memory geometry scaled to the structure size: nodes + registry + slack. *)
let params_for (s : scale) ~threads ~kind:_ =
  let pow2_above n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 4096
  in
  let max_threads = threads + 1 in
  let registry_per_slot =
    pow2_above
      ((s.map_prefill * 3 / threads)
      + (int_of_float s.duration_ns / 120)
      + 8_192)
  in
  let need =
    (s.buckets * 16) + (s.map_prefill * 24)
    + (max_threads * registry_per_slot)
    + (1 lsl 20)
  in
  let nvm_words = pow2_above need in
  {
    Systems.default_params with
    Systems.max_threads;
    period_ns = s.period_ns;
    (* one flusher thread per program thread, as in the paper (section 5) *)
    flusher_pool = threads;
    buckets = s.buckets;
    nvm_words;
    dram_words = nvm_words / 2;
    registry_per_slot;
    (* The single simulated cache stands for private caches plus an LLC
       slice per core: its capacity scales with the thread count (16 KiB
       per thread, 64 KiB minimum) so per-thread hot state stays resident
       as it does on real hardware. *)
    cache_sets = max 32 (4 * threads);
    cache_ways = 16;
  }

let map_point ?(update_pct = 50) ?params (s : scale) kind ~threads =
  let p =
    match params with Some p -> p | None -> params_for s ~threads ~kind
  in
  let sched, env, rt, build = Systems.map_system p kind in
  let wl =
    {
      Workload.nthreads = threads;
      duration_ns = s.duration_ns;
      key_space = 2 * s.buckets;
      update_pct;
      prefill = s.map_prefill;
      seed = p.Systems.seed;
    }
  in
  let r = Workload.run_map ~mem:(Simsched.Env.mem env) ~sched ~params:wl ~build () in
  (r, rt)

let queue_point ?params (s : scale) kind ~threads =
  let p =
    match params with Some p -> p | None -> params_for s ~threads ~kind
  in
  let sched, env, rt, build = Systems.queue_system p kind in
  let wl =
    {
      Workload.q_nthreads = threads;
      q_duration_ns = s.duration_ns;
      q_prefill = s.queue_prefill;
      q_seed = p.Systems.seed;
    }
  in
  let r =
    Workload.run_queue ~mem:(Simsched.Env.mem env) ~sched ~params:wl ~build ()
  in
  (r, rt)

(* ------------------------------------------------------------------ *)
(* Instrumented points: the same worlds as [map_point]/[queue_point], with
   the observability probes attached — a Memobs counter registry on the
   memory-event pipeline (reset at the measurement-window start, so like
   Stats it covers the window only), span profiling on the ResPCT runtime,
   and the checkpoint statistics — all bundled into an [Obs.Run.point].
   Probes are pure observation: the virtual-time results are bit-identical
   to the uninstrumented points. *)

let checkpoint_extra rt =
  match rt with
  | None -> []
  | Some rt ->
      let cs = Respct.Runtime.stats rt in
      let eff = Respct.Runtime.mean_effective_period rt in
      [
        ("checkpoints", Obs.Json.Int cs.Respct.Runtime.checkpoints);
        ("flushed_addrs", Obs.Json.Int cs.Respct.Runtime.flushed_addrs);
        ("flush_ns", Obs.Json.Float cs.Respct.Runtime.flush_ns);
        ("stall_ns", Obs.Json.Float cs.Respct.Runtime.stall_ns);
        ("overlap_ns", Obs.Json.Float cs.Respct.Runtime.overlap_ns);
        ( "effective_period_ns",
          if Float.is_nan eff then Obs.Json.Null else Obs.Json.Float eff );
      ]

let workload_extra (r : Workload.result) =
  [
    ("total_ops", Obs.Json.Int r.Workload.total_ops);
    ("elapsed_ns", Obs.Json.Float r.Workload.elapsed_ns);
  ]

let instrument env rt =
  let mem = Simsched.Env.mem env in
  let registry = Obs.Metrics.create () in
  let _probe, _sub = Obs.Memobs.attach registry mem in
  let spans = Obs.Span.create () in
  Option.iter (fun rt -> Respct.Runtime.set_spans rt spans) rt;
  (registry, spans, fun () -> Obs.Metrics.reset registry)

let map_point_obs ?(update_pct = 50) ?params (s : scale) kind ~threads =
  let p =
    match params with Some p -> p | None -> params_for s ~threads ~kind
  in
  let sched, env, rt, build = Systems.map_system p kind in
  let registry, spans, reset = instrument env rt in
  let wl =
    {
      Workload.nthreads = threads;
      duration_ns = s.duration_ns;
      key_space = 2 * s.buckets;
      update_pct;
      prefill = s.map_prefill;
      seed = p.Systems.seed;
    }
  in
  let r =
    Workload.run_map ~mem:(Simsched.Env.mem env) ~on_window:reset ~sched
      ~params:wl ~build ()
  in
  Obs.Run.point
    ~params:
      [
        ("system", Obs.Json.String (Systems.name_of kind));
        ("threads", Obs.Json.Int threads);
        ("update_pct", Obs.Json.Int update_pct);
      ]
    ~throughput_mops:r.Workload.mops
    ~stats:(Simnvm.Memsys.stats (Simsched.Env.mem env))
    ~metrics:registry ~spans
    ~extra:(workload_extra r @ checkpoint_extra rt)
    (Systems.name_of kind)

let queue_point_obs ?params (s : scale) kind ~threads =
  let p =
    match params with Some p -> p | None -> params_for s ~threads ~kind
  in
  let sched, env, rt, build = Systems.queue_system p kind in
  let registry, spans, reset = instrument env rt in
  let wl =
    {
      Workload.q_nthreads = threads;
      q_duration_ns = s.duration_ns;
      q_prefill = s.queue_prefill;
      q_seed = p.Systems.seed;
    }
  in
  let r =
    Workload.run_queue ~mem:(Simsched.Env.mem env) ~on_window:reset ~sched
      ~params:wl ~build ()
  in
  Obs.Run.point
    ~params:
      [
        ("system", Obs.Json.String (Systems.name_of kind));
        ("threads", Obs.Json.Int threads);
      ]
    ~throughput_mops:r.Workload.mops
    ~stats:(Simnvm.Memsys.stats (Simsched.Env.mem env))
    ~metrics:registry ~spans
    ~extra:(workload_extra r @ checkpoint_extra rt)
    (Systems.name_of kind)

let point_mops (pt : Obs.Run.point) =
  match pt.Obs.Run.throughput_mops with Some x -> x | None -> nan

(* ------------------------------------------------------------------ *)
(* Figure 8: HashMap throughput vs threads, three update/search mixes. *)

(* Structured form: per update ratio, per system, one instrumented point
   per thread count. The ASCII table and the JSON export both read off
   these points. [update_pcts]/[kinds]/[threads] narrow the sweep (the
   determinism regression test runs a single cell). *)
let fig8_points ?(scale = small) ?(update_pcts = [ 10; 50; 90 ])
    ?(kinds = Systems.map_kinds) ?threads () =
  let sweep = Option.value ~default:scale.sweep_threads threads in
  List.map
    (fun update_pct ->
      ( update_pct,
        List.map
          (fun kind ->
            ( Systems.name_of kind,
              List.map
                (fun threads -> map_point_obs ~update_pct scale kind ~threads)
                sweep ))
          kinds ))
    update_pcts

let fig8 ?(scale = small) () =
  List.map
    (fun (update_pct, rows) ->
      ( update_pct,
        List.map
          (fun (name, pts) ->
            (name, List.map (fun pt -> Table.fmt_mops (point_mops pt)) pts))
          rows ))
    (fig8_points ~scale ())

(* ------------------------------------------------------------------ *)
(* Figure 9: Queue throughput vs threads, 1:1 enqueue/dequeue. *)

let fig9_points ?(scale = small) ?(kinds = Systems.queue_kinds) ?threads () =
  let sweep = Option.value ~default:scale.sweep_threads threads in
  List.map
    (fun kind ->
      ( Systems.name_of kind,
        List.map (fun threads -> queue_point_obs scale kind ~threads) sweep ))
    kinds

let fig9 ?(scale = small) () =
  List.map
    (fun (name, pts) ->
      (name, List.map (fun pt -> Table.fmt_mops (point_mops pt)) pts))
    (fig9_points ~scale ())

(* ------------------------------------------------------------------ *)
(* Integrity tax: ResPCT with checksum-sealed metadata
   ([Systems.params.integrity]) against the raw representation, in the
   same worlds and workloads as Figures 8/9. The sealing work rides the
   InCLL-update and checkpoint-commit hot paths, so the interesting number
   is the relative throughput delta per workload, not the absolute one. *)

let integrity_points ?(scale = small) ?threads () =
  let sweep = Option.value ~default:scale.sweep_threads threads in
  let kind = Systems.Respct in
  let run ~integrity w ~threads =
    (* The integrity layout additionally reserves one regsum word per
       registry entry; give *both* arms the doubled NVMM so the geometry
       (and hence the cache behaviour) stays identical across the pair. *)
    let p = params_for scale ~threads ~kind in
    let p =
      { p with Systems.nvm_words = 2 * p.Systems.nvm_words; integrity }
    in
    match w with
    | `Queue -> queue_point_obs ~params:p scale kind ~threads
    | `Map update_pct ->
        map_point_obs ~update_pct ~params:p scale kind ~threads
  in
  List.map
    (fun (wname, w) ->
      ( wname,
        List.map
          (fun threads ->
            ( threads,
              run ~integrity:false w ~threads,
              run ~integrity:true w ~threads ))
          sweep ))
    [ ("Queue", `Queue); ("HashMap", `Map 50) ]

let integrity_overhead_rows pts =
  List.map
    (fun (wname, cells) ->
      ( wname,
        List.map
          (fun (_threads, off, on) ->
            let raw = point_mops off and sealed = point_mops on in
            Printf.sprintf "%s/%s (%+.1f%%)" (Table.fmt_mops sealed)
              (Table.fmt_mops raw)
              (100.0 *. ((sealed -. raw) /. raw)))
          cells ))
    pts

let integrity_overhead ?(scale = small) ?threads () =
  integrity_overhead_rows (integrity_points ~scale ?threads ())

(* ------------------------------------------------------------------ *)
(* Figure 10: overhead decomposition at full thread count. Rows are the
   configurations, columns the three workloads, values normalised to
   Transient<DRAM>. *)

let fig10_points ?(scale = small) () =
  let threads = scale.fig10_threads in
  let workloads =
    [ ("Queue", `Queue); ("HashMap-RI", `Map 10); ("HashMap-WI", `Map 90) ]
  in
  let run kind ~mode w =
    let p = { (params_for scale ~threads ~kind) with Systems.mode } in
    match w with
    | `Queue -> queue_point_obs ~params:p scale kind ~threads
    | `Map update_pct ->
        map_point_obs ~update_pct ~params:p scale kind ~threads
  in
  let configs =
    [
      ("Transient<DRAM>", Systems.Transient_dram, Respct.Runtime.Full);
      ("Transient<NVMM>", Systems.Transient_nvm, Respct.Runtime.Full);
      ("ResPCT-InCLL", Systems.Respct, Respct.Runtime.Incll_only);
      ("ResPCT-noFlush", Systems.Respct, Respct.Runtime.No_flush);
      ("ResPCT", Systems.Respct, Respct.Runtime.Full);
    ]
  in
  List.map
    (fun (cname, kind, mode) ->
      ( cname,
        List.map (fun (wname, w) -> (wname, run kind ~mode w)) workloads ))
    configs

let fig10 ?(scale = small) () =
  let rows = fig10_points ~scale () in
  (* The first config is the Transient<DRAM> baseline everything else is
     normalised to. *)
  let base =
    match rows with
    | (_, cells) :: _ -> List.map (fun (w, pt) -> (w, point_mops pt)) cells
    | [] -> []
  in
  List.map
    (fun (cname, cells) ->
      ( cname,
        List.map
          (fun (wname, pt) ->
            Table.fmt_ratio (point_mops pt /. List.assoc wname base))
          cells ))
    rows

(* ------------------------------------------------------------------ *)
(* Figure 11: checkpoint-period sweep (write-intensive HashMap, full
   thread count): normalised throughput and measured effective period. *)

let point_eff (pt : Obs.Run.point) =
  match List.assoc_opt "effective_period_ns" pt.Obs.Run.extra with
  | Some (Obs.Json.Float f) -> f
  | _ -> nan

(* Structured form: the Transient<DRAM> baseline point plus one ResPCT
   point per configured period (its extras carry the measured effective
   period). *)
let fig11_points ?(scale = small) () =
  let threads = scale.fig10_threads in
  let base =
    map_point_obs ~update_pct:90 scale Systems.Transient_dram ~threads
  in
  let sweep =
    List.map
      (fun period_ns ->
        let p =
          {
            (params_for scale ~threads ~kind:Systems.Respct) with
            Systems.period_ns;
          }
        in
        ( period_ns,
          map_point_obs ~update_pct:90 ~params:p scale Systems.Respct ~threads
        ))
      scale.fig11_periods_ns
  in
  (base, sweep)

let fig11 ?(scale = small) () =
  let base, sweep = fig11_points ~scale () in
  let base_mops = point_mops base in
  List.map
    (fun (period_ns, pt) ->
      let eff = point_eff pt in
      ( Printf.sprintf "%.0f us" (period_ns /. 1e3),
        [
          Table.fmt_ratio (point_mops pt /. base_mops);
          (if Float.is_nan eff then "-"
           else Printf.sprintf "%.0f us" (eff /. 1e3));
        ] ))
    sweep

(* ------------------------------------------------------------------ *)
(* Figure 12: recovery time vs HashMap size. A write-intensive run is
   crashed mid-epoch; recovery runs with the configured thread count. *)

let fig12_points ?(scale = small) () =
  List.map
    (fun buckets ->
      let s = { scale with buckets; map_prefill = buckets * 2 } in
      let threads = 8 in
      let p = params_for s ~threads ~kind:Systems.Respct in
      let sched, env, _rt, build = Systems.map_system p Systems.Respct in
      let wl =
        {
          Workload.nthreads = threads;
          duration_ns = infinity (* run until the crash *);
          key_space = 2 * s.buckets;
          update_pct = 90;
          prefill = s.map_prefill;
          seed = p.Systems.seed;
        }
      in
      (* Crash roughly 1.5 periods after the prefill finishes: prefill time
         is unknown in advance, so run a probe first? Instead: crash far
         enough to cover prefill + one checkpoint for all sizes. *)
      let crash_at =
        (float_of_int s.map_prefill *. 400.0) +. (2.5 *. p.Systems.period_ns)
      in
      Simsched.Scheduler.set_crash_at sched crash_at;
      (try ignore (Workload.run_map ~sched ~params:wl ~build ())
       with Failure _ -> ());
      let mem = Simsched.Env.mem env in
      Simnvm.Memsys.crash mem;
      let layout =
        Respct.Layout.v
          ~line_words:(Simnvm.Memsys.config mem).Simnvm.Memsys.line_words
          ~nvm_words:p.Systems.nvm_words ~max_threads:p.Systems.max_threads
          ~registry_per_slot:p.Systems.registry_per_slot ()
      in
      let spans = Obs.Span.create () in
      let rep =
        Respct.Recovery.run ~threads:scale.recovery_threads ~layout ~spans mem
      in
      Obs.Run.point
        ~params:
          [
            ("buckets", Obs.Json.Int buckets);
            ("recovery_threads", Obs.Json.Int scale.recovery_threads);
          ]
        ~spans
        ~extra:
          [
            ("duration_ns", Obs.Json.Float rep.Respct.Recovery.duration_ns);
            ("scanned", Obs.Json.Int rep.Respct.Recovery.scanned);
            ( "rolled_back",
              Obs.Json.Int (List.length rep.Respct.Recovery.rolled_back) );
            ("failed_epoch", Obs.Json.Int rep.Respct.Recovery.failed_epoch);
          ]
        (string_of_int buckets))
    scale.fig12_buckets

let point_extra_float pt key =
  match List.assoc_opt key pt.Obs.Run.extra with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> nan

let point_extra_int pt key =
  match List.assoc_opt key pt.Obs.Run.extra with
  | Some (Obs.Json.Int i) -> i
  | _ -> 0

let fig12 ?(scale = small) () =
  List.map
    (fun pt ->
      ( pt.Obs.Run.label,
        [
          Table.fmt_ms (point_extra_float pt "duration_ns");
          string_of_int (point_extra_int pt "scanned");
          string_of_int (point_extra_int pt "rolled_back");
        ] ))
    (fig12_points ~scale ())
