(* Builders assembling one (world, system, structure) per evaluated system.

   Each builder returns the fresh scheduler plus a [build] closure that the
   workload driver calls inside its setup thread (structure creation
   performs simulated memory accesses and must run on a simulated thread). *)

type params = {
  max_threads : int;
  period_ns : float;
  flusher_pool : int;
  buckets : int;
  nvm_words : int;
  dram_words : int;
  seed : int;
  quantum : float;
  cache_sets : int;
  cache_ways : int;
  mode : Respct.Runtime.mode; (* ResPCT variants (Figure 10) *)
  registry_per_slot : int;
  eadr : bool;
  evict_rate : float; (* spontaneous-eviction probability of the world *)
  pcso : bool; (* line-granular write-back; false = word-granular ablation *)
  integrity : bool; (* checksum-sealed ResPCT metadata (faulty-media mode) *)
  pipeline : bool; (* ResPCT pipelined checkpointing (async epoch advance) *)
}

let default_params =
  {
    max_threads = 65;
    period_ns = 64.0e6;
    flusher_pool = 8;
    buckets = 1 lsl 14;
    nvm_words = 1 lsl 22;
    dram_words = 1 lsl 21;
    seed = 42;
    quantum = 50.0;
    cache_sets = 256;
    cache_ways = 4;
    mode = Respct.Runtime.Full;
    registry_per_slot = 1 lsl 14;
    eadr = false;
    evict_rate = Simnvm.Memsys.default_config.Simnvm.Memsys.evict_rate;
    pcso = true;
    integrity = false;
    pipeline = false;
  }

type kind =
  | Transient_dram
  | Transient_nvm
  | Respct
  | Pmthreads
  | Montage
  | Clobber
  | Quadra (* Trinity for the map, Quadra for the queue *)
  | Soft (* map only *)
  | Dali (* map only *)
  | Friedman (* queue only *)

let name_of = function
  | Transient_dram -> "Transient<DRAM>"
  | Transient_nvm -> "Transient<NVMM>"
  | Respct -> "ResPCT"
  | Pmthreads -> "PMThreads"
  | Montage -> "Montage"
  | Clobber -> "Clobber-NVM"
  | Quadra -> "Quadra/Trinity"
  | Soft -> "SOFT"
  | Dali -> "Dali"
  | Friedman -> "FriedmanQueue"

let map_kinds =
  [ Transient_dram; Transient_nvm; Respct; Pmthreads; Montage; Clobber;
    Quadra; Soft; Dali ]

let queue_kinds =
  [ Transient_dram; Transient_nvm; Respct; Pmthreads; Montage; Clobber;
    Quadra; Friedman ]

(* Fresh world per data point: every system measures against its own
   memory image and scheduler. *)
let world (p : params) ~kind =
  let latency =
    let base =
      match kind with
      | Transient_dram -> Simnvm.Latency.dram_only
      | _ -> Simnvm.Latency.default
    in
    if p.eadr then Simnvm.Latency.eadr_of base else base
  in
  let mem =
    Simnvm.Memsys.create
      {
        Simnvm.Memsys.default_config with
        Simnvm.Memsys.nvm_words = p.nvm_words;
        dram_words = p.dram_words;
        sets = p.cache_sets;
        ways = p.cache_ways;
        latency;
        seed = p.seed;
        eadr = p.eadr;
        evict_rate = p.evict_rate;
        pcso = p.pcso;
      }
  in
  let sched = Simsched.Scheduler.create ~seed:p.seed ~quantum:p.quantum () in
  let env = Simsched.Env.make mem sched in
  (mem, sched, env)

let rt_cfg (p : params) =
  {
    Respct.Runtime.period_ns = p.period_ns;
    flusher_pool = p.flusher_pool;
    mode = p.mode;
    max_threads = p.max_threads;
    registry_per_slot = p.registry_per_slot;
    integrity = p.integrity;
    pipeline = p.pipeline;
  }

(* Arena for the transient structures: the NVMM region (Transient<NVMM>)
   or the DRAM region (Transient<DRAM>). *)
let transient_mem env ~kind =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let base, limit =
    match kind with
    | Transient_dram ->
        ( mcfg.Simnvm.Memsys.nvm_words,
          mcfg.Simnvm.Memsys.nvm_words + mcfg.Simnvm.Memsys.dram_words )
    | _ -> (lw, mcfg.Simnvm.Memsys.nvm_words)
  in
  Pds.Mem_iface.of_env_bump env (Pds.Bump.create env ~base ~limit)

(* Returns (sched, env, runtime option, build) — the runtime is exposed so
   experiments can read checkpoint statistics afterwards. *)
let map_system (p : params) kind =
  let _mem, sched, env = world p ~kind in
  match kind with
  | Transient_dram | Transient_nvm ->
      let build () =
        let m = Pds.Hashmap_transient.create env (transient_mem env ~kind) ~buckets:p.buckets in
        (Pds.Hashmap_transient.ops m, Pds.Ops.null_system)
      in
      (sched, env, None, build)
  | Respct ->
      let rt = Respct.Runtime.create ~cfg:(rt_cfg p) env in
      Respct.Runtime.start rt;
      let build () =
        let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets:p.buckets in
        let sys =
          {
            Pds.Ops.sys_register = (fun ~slot -> Respct.Runtime.register rt ~slot);
            sys_deregister = (fun ~slot -> Respct.Runtime.deregister rt ~slot);
            sys_allow = (fun ~slot -> Respct.Runtime.checkpoint_allow rt ~slot);
            sys_prevent =
              (fun ~slot -> Respct.Runtime.checkpoint_prevent_nolock rt ~slot);
            sys_stop = (fun () -> Respct.Runtime.stop rt);
          }
        in
        (Pds.Hashmap_respct.ops m, sys)
      in
      (sched, env, Some rt, build)
  | Pmthreads ->
      let build () =
        Baselines.Pmthreads.make_map env ~max_threads:p.max_threads
          ~period_ns:p.period_ns ~flusher_pool:p.flusher_pool
          ~buckets:p.buckets
      in
      (sched, env, None, build)
  | Montage ->
      let build () =
        Baselines.Montage.make_map env ~max_threads:p.max_threads
          ~period_ns:p.period_ns ~flusher_pool:p.flusher_pool
          ~buckets:p.buckets
      in
      (sched, env, None, build)
  | Clobber ->
      let build () =
        Baselines.Durlin.make_map env ~policy:Baselines.Fatomic.Clobber
          ~max_threads:p.max_threads ~buckets:p.buckets
      in
      (sched, env, None, build)
  | Quadra ->
      let build () =
        Baselines.Durlin.make_map env ~policy:Baselines.Fatomic.Quadra
          ~max_threads:p.max_threads ~buckets:p.buckets
      in
      (sched, env, None, build)
  | Soft ->
      let build () = Baselines.Soft.make_map env ~buckets:p.buckets in
      (sched, env, None, build)
  | Dali ->
      let build () =
        Baselines.Dali.make_map env ~max_threads:p.max_threads
          ~period_ns:p.period_ns ~flusher_pool:p.flusher_pool
          ~buckets:p.buckets
      in
      (sched, env, None, build)
  | Friedman -> invalid_arg "Systems.map_system: FriedmanQueue is a queue"

let queue_system (p : params) kind =
  let _mem, sched, env = world p ~kind in
  match kind with
  | Transient_dram | Transient_nvm ->
      let build () =
        let q = Pds.Queue_transient.create env (transient_mem env ~kind) in
        (Pds.Queue_transient.ops q, Pds.Ops.null_system)
      in
      (sched, env, None, build)
  | Respct ->
      let rt = Respct.Runtime.create ~cfg:(rt_cfg p) env in
      Respct.Runtime.start rt;
      let build () =
        let q = Pds.Queue_respct.create rt ~slot:0 in
        let sys =
          {
            Pds.Ops.sys_register = (fun ~slot -> Respct.Runtime.register rt ~slot);
            sys_deregister = (fun ~slot -> Respct.Runtime.deregister rt ~slot);
            sys_allow = (fun ~slot -> Respct.Runtime.checkpoint_allow rt ~slot);
            sys_prevent =
              (fun ~slot -> Respct.Runtime.checkpoint_prevent_nolock rt ~slot);
            sys_stop = (fun () -> Respct.Runtime.stop rt);
          }
        in
        (Pds.Queue_respct.ops q, sys)
      in
      (sched, env, Some rt, build)
  | Pmthreads ->
      let build () =
        Baselines.Pmthreads.make_queue env ~max_threads:p.max_threads
          ~period_ns:p.period_ns ~flusher_pool:p.flusher_pool
      in
      (sched, env, None, build)
  | Montage ->
      let build () =
        Baselines.Montage.make_queue env ~max_threads:p.max_threads
          ~period_ns:p.period_ns ~flusher_pool:p.flusher_pool
      in
      (sched, env, None, build)
  | Clobber ->
      let build () =
        Baselines.Durlin.make_queue env ~policy:Baselines.Fatomic.Clobber
          ~max_threads:p.max_threads
      in
      (sched, env, None, build)
  | Quadra ->
      let build () =
        Baselines.Durlin.make_queue env ~policy:Baselines.Fatomic.Quadra
          ~max_threads:p.max_threads
      in
      (sched, env, None, build)
  | Friedman ->
      let build () = Baselines.Friedman_queue.make_queue env in
      (sched, env, None, build)
  | Soft | Dali -> invalid_arg "Systems.queue_system: map-only system"
