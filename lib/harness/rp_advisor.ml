(* Automation of the paper's section 3.3.2 rules over recorded executions —
   the future-work direction of its section 6.

   Given a trace of a simulated run (Simsched.Trace), the advisor:

   - splits each thread's accesses into restart-point-delimited segments
     and applies the WAR rule per segment: any address read before its
     first write within a segment needs InCLL logging; addresses only
     written need tracking (add_modified); the rest of the persistent state
     needs nothing;
   - feeds the lock and access events to the vector-clock race checker,
     validating the race-freedom assumption of section 2.1 that the whole
     ResPCT design rests on.

   Instrumentation sanity in this repository's own tests: the advisor run
   over the ResPCT queue and hash map confirms that exactly the variables
   we made InCLL variables are the ones the rule demands. *)

type report = {
  needs_logging : int list; (* addresses with a WAR segment somewhere *)
  write_only : int list; (* persistent but WAR-free: add_modified suffices *)
  races : Analysis.Racecheck.race list;
  segments : int; (* RP-delimited segments analysed *)
}

(* Per-thread segmentation: a Restart_point event closes the current
   segment. Classification is cumulative across segments: one WAR segment
   anywhere makes the address require logging. *)
let analyse ?(addr_filter = fun (_ : int) -> true) events =
  let war : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let written : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let reads_in_segment : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8 (* per thread: addresses read before being written *)
  in
  let writes_in_segment : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let segments = ref 0 in
  let tbl_of store tid =
    match Hashtbl.find_opt store tid with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 32 in
        Hashtbl.add store tid t;
        t
  in
  let checker = Analysis.Racecheck.create () in
  List.iter
    (fun ev ->
      match ev with
      | Simsched.Trace.Load { tid; addr } when addr_filter addr ->
          let ws = tbl_of writes_in_segment tid in
          if not (Hashtbl.mem ws addr) then
            Hashtbl.replace (tbl_of reads_in_segment tid) addr ();
          Analysis.Racecheck.push checker
            (Analysis.Racecheck.Rread { thread = tid; addr })
      | Simsched.Trace.Store { tid; addr } when addr_filter addr ->
          Hashtbl.replace written addr ();
          if Hashtbl.mem (tbl_of reads_in_segment tid) addr then
            Hashtbl.replace war addr ();
          Hashtbl.replace (tbl_of writes_in_segment tid) addr ();
          Analysis.Racecheck.push checker
            (Analysis.Racecheck.Rwrite { thread = tid; addr })
      | Simsched.Trace.Acquire { tid; lock } ->
          Analysis.Racecheck.push checker
            (Analysis.Racecheck.Racq { thread = tid; lock })
      | Simsched.Trace.Release { tid; lock } ->
          Analysis.Racecheck.push checker
            (Analysis.Racecheck.Rrel { thread = tid; lock })
      | Simsched.Trace.Restart_point { tid; id = _ } ->
          incr segments;
          Hashtbl.remove reads_in_segment tid;
          Hashtbl.remove writes_in_segment tid
      (* An Rmw marker follows the load/store pair Env already emitted for
         the atomic op, so the access itself is accounted above; persistence
         instructions and compute charges carry no WAR information. *)
      | Simsched.Trace.Load _ | Simsched.Trace.Store _
      | Simsched.Trace.Rmw _ | Simsched.Trace.Pwb _
      | Simsched.Trace.Psync _ | Simsched.Trace.Compute _ -> ())
    events;
  let needs_logging =
    Hashtbl.fold (fun a () acc -> a :: acc) war [] |> List.sort compare
  in
  let write_only =
    Hashtbl.fold
      (fun a () acc -> if Hashtbl.mem war a then acc else a :: acc)
      written []
    |> List.sort compare
  in
  {
    needs_logging;
    write_only;
    races = Analysis.Racecheck.races checker;
    segments = !segments;
  }

(* Subscriber-style capture: attach a recorder to the world's trace bus,
   run the workload, analyse what was seen. The advisor is just one more
   pipeline consumer; other subscribers on the same bus are unaffected. *)
let capture ?addr_filter bus f =
  let v, events = Simsched.Trace.record bus f in
  (v, analyse ?addr_filter events)

(* Attach the streaming vector-clock checker directly to a trace bus: races
   are detected as the simulation produces events, with nothing recorded.
   Returns the live checker and the subscription for detaching. *)
let race_checker_on ?(addr_filter = fun (_ : int) -> true) bus =
  let checker = Analysis.Racecheck.create () in
  let sub =
    Simsched.Trace.subscribe bus (fun ev ->
        match ev with
        | Simsched.Trace.Load { tid; addr } when addr_filter addr ->
            Analysis.Racecheck.push checker
              (Analysis.Racecheck.Rread { thread = tid; addr })
        | Simsched.Trace.Store { tid; addr } when addr_filter addr ->
            Analysis.Racecheck.push checker
              (Analysis.Racecheck.Rwrite { thread = tid; addr })
        | Simsched.Trace.Acquire { tid; lock } ->
            Analysis.Racecheck.push checker
              (Analysis.Racecheck.Racq { thread = tid; lock })
        | Simsched.Trace.Release { tid; lock } ->
            Analysis.Racecheck.push checker
              (Analysis.Racecheck.Rrel { thread = tid; lock })
        | _ -> ())
  in
  (checker, sub)

(* ------------------------------------------------------------------ *)
(* Static/dynamic cross-check for analysed IR programs.

   The static analyzer (Analysis.Warstatic/Placement) and this trace
   advisor automate the same section 3.3.2 rule from opposite ends: one
   over all CFG paths, one over a single recorded execution. Soundness
   of the static side means every variable the dynamic advisor finds
   WAR must already be in the static plan's logging set; the converse
   need not hold (the static side may-overapproximates paths the run
   did not take). *)

type ir_cross_check = {
  cc_static_log : string list;  (* plan.log, sorted *)
  cc_dynamic_log : string list; (* advisor needs_logging, as variables *)
  cc_dynamic_only : string list; (* dynamic \ static: must be empty *)
  cc_agrees : bool;
  cc_races : Analysis.Racecheck.race list; (* on persistent data words *)
  cc_segments : int;
}

let cross_check_ir ?sched_seed ?mem_seed ?pcso ~n_ops prog : ir_cross_check =
  let p, plan = Analysis.Placement.infer (prog ~iters:n_ops) in
  let w = Analysis.Exec.sim_world ?sched_seed ?mem_seed ?pcso ~plan p in
  let (), events = Simsched.Trace.record w.Analysis.Exec.w_bus (fun () ->
      w.Analysis.Exec.w_run ())
  in
  let var_of_addr =
    List.map (fun (v, a) -> (a, v)) (w.Analysis.Exec.w_var_addrs ())
  in
  let rep =
    analyse ~addr_filter:(fun a -> List.mem_assoc a var_of_addr) events
  in
  let dynamic_log =
    List.filter_map (fun a -> List.assoc_opt a var_of_addr) rep.needs_logging
    |> List.sort_uniq compare
  in
  let static_log =
    Analysis.Dataflow.Vars.elements plan.Analysis.Placement.log
  in
  let dynamic_only =
    List.filter (fun v -> not (List.mem v static_log)) dynamic_log
  in
  {
    cc_static_log = static_log;
    cc_dynamic_log = dynamic_log;
    cc_dynamic_only = dynamic_only;
    cc_agrees = dynamic_only = [];
    cc_races = rep.races;
    cc_segments = rep.segments;
  }
