(* Workload drivers for the data-structure experiments (paper section 5.1).

   A driver owns the full lifecycle of one data point: build the world
   (memory + scheduler + system + structure), prefill from a setup thread,
   release the measurement threads through a barrier, run the op mix with a
   restart point after every operation, and report throughput over the
   measured virtual-time window. *)

type map_params = {
  nthreads : int;
  duration_ns : float; (* measured virtual-time window per thread *)
  key_space : int;
  update_pct : int; (* updates per 100 operations; half insert, half remove *)
  prefill : int;
  seed : int;
}

type queue_params = {
  q_nthreads : int;
  q_duration_ns : float;
  q_prefill : int;
  q_seed : int;
}

type result = {
  mops : float; (* million ops per virtual second *)
  elapsed_ns : float; (* mean per-thread measured window *)
  total_ops : int;
}

(* Spread prefill keys over the key space deterministically. *)
let prefill_key i key_space = (i * 2654435761) land max_int mod key_space

(* Generic three-phase driver: [setup] runs on a setup thread and builds
   the structure; the workers then prefill their shares in parallel, meet at
   a barrier, and each runs operations for [duration_ns] of virtual time
   (the paper's methodology: fixed duration, count completed operations). *)
let drive ?mem ?(on_window = fun () -> ()) ~sched ~nthreads ~seed ~setup
    ~prefill_total ~prefill_op ~duration_ns ~run_op () =
  let ready = Simsched.Barrier.create ~name:"ready" (nthreads + 1) in
  let start = Simsched.Barrier.create ~name:"start" nthreads in
  let remaining = ref nthreads in
  let sys = ref Pds.Ops.null_system in
  let starts = Array.make nthreads 0.0 in
  let ends = Array.make nthreads 0.0 in
  let counts = Array.make nthreads 0 in
  ignore
    (Simsched.Scheduler.spawn ~name:"setup" sched (fun () ->
         sys := setup ();
         Simsched.Barrier.await sched ready));
  for w = 0 to nthreads - 1 do
    ignore
      (Simsched.Scheduler.spawn ~name:(Printf.sprintf "worker%d" w) sched
         (fun () ->
           Simsched.Barrier.await sched ready;
           let slot = w in
           (!sys).Pds.Ops.sys_register ~slot;
           (* Parallel prefill: worker [w] inserts the keys congruent to
              [w] modulo [nthreads]. *)
           let rec prefill i =
             if i < prefill_total then begin
               prefill_op ~slot i;
               prefill (i + nthreads)
             end
           in
           prefill w;
           (* Blocking at the barrier while a checkpoint is pending would
              deadlock the epoch (paper section 3.3.3): permit checkpoints
              for the duration of the wait. *)
           (!sys).Pds.Ops.sys_allow ~slot;
           Simsched.Barrier.await sched start;
           (!sys).Pds.Ops.sys_prevent ~slot;
           (* Memory statistics cover the measured window only; [on_window]
              lets callers reset their own probes (metric registries) at the
              same instant. *)
           if slot = 0 then begin
             Option.iter
               (fun m -> Simnvm.Stats.reset (Simnvm.Memsys.stats m))
               mem;
             on_window ()
           end;
           let rng = Simnvm.Rng.create ((seed * 8191) + w) in
           starts.(w) <- Simsched.Scheduler.now sched;
           let deadline = starts.(w) +. duration_ns in
           let n = ref 0 in
           while Simsched.Scheduler.now sched < deadline do
             run_op ~slot rng;
             incr n
           done;
           counts.(w) <- !n;
           ends.(w) <- Simsched.Scheduler.now sched;
           (!sys).Pds.Ops.sys_deregister ~slot;
           (* The last worker shuts the background coordinator down, or the
              scheduler would spin on its periodic timer forever. *)
           remaining := !remaining - 1;
           if !remaining = 0 then (!sys).Pds.Ops.sys_stop ()))
  done;
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed -> ()
  | Simsched.Scheduler.Crash_interrupt _ -> failwith "unexpected crash");
  let total = Array.fold_left ( + ) 0 counts in
  let window_sum =
    Array.fold_left ( +. ) 0.0 (Array.map2 ( -. ) ends starts)
  in
  let mean_window = window_sum /. float_of_int nthreads in
  {
    mops = float_of_int total /. Float.max 1.0 mean_window *. 1e3;
    elapsed_ns = mean_window;
    total_ops = total;
  }

(* Map workload: [build] runs inside the setup thread and returns the ops
   record plus the system hooks. Update operations are half inserts, half
   removes (paper section 5.1). *)
let run_map ?mem ?on_window ~sched ~(params : map_params) ~build () =
  let ops = ref None in
  let setup () =
    let o, sys = build () in
    ops := Some o;
    sys
  in
  let prefill_op ~slot i =
    let o = Option.get !ops in
    ignore
      (o.Pds.Ops.insert ~slot ~key:(prefill_key i params.key_space) ~value:i);
    (* Restart point during the load phase too, so checkpoints drain the
       prefill incrementally instead of stalling the measured window. *)
    o.Pds.Ops.map_rp ~slot ~id:2
  in
  let run_op ~slot rng =
    let o = Option.get !ops in
    let key = Simnvm.Rng.int rng params.key_space in
    let dice = Simnvm.Rng.int rng 100 in
    if dice < params.update_pct / 2 then
      ignore (o.Pds.Ops.insert ~slot ~key ~value:(Simnvm.Rng.bits rng))
    else if dice < params.update_pct then ignore (o.Pds.Ops.remove ~slot ~key)
    else ignore (o.Pds.Ops.search ~slot ~key);
    o.Pds.Ops.map_rp ~slot ~id:1
  in
  drive ?mem ?on_window ~sched ~nthreads:params.nthreads ~seed:params.seed
    ~setup ~prefill_total:params.prefill ~prefill_op
    ~duration_ns:params.duration_ns ~run_op ()

(* Queue workload: 1:1 enqueue/dequeue mix (paper Figure 9). *)
let run_queue ?mem ?on_window ~sched ~(params : queue_params) ~build () =
  let ops = ref None in
  let setup () =
    let o, sys = build () in
    ops := Some o;
    sys
  in
  let prefill_op ~slot i =
    let o = Option.get !ops in
    o.Pds.Ops.enqueue ~slot i;
    o.Pds.Ops.queue_rp ~slot ~id:2
  in
  let run_op ~slot rng =
    let o = Option.get !ops in
    if Simnvm.Rng.bool rng then o.Pds.Ops.enqueue ~slot (Simnvm.Rng.bits rng)
    else ignore (o.Pds.Ops.dequeue ~slot);
    o.Pds.Ops.queue_rp ~slot ~id:1
  in
  drive ?mem ?on_window ~sched ~nthreads:params.q_nthreads ~seed:params.q_seed
    ~setup ~prefill_total:params.q_prefill ~prefill_op
    ~duration_ns:params.q_duration_ns ~run_op ()
