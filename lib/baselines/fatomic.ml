(* Failure-atomic sections for the durably linearizable baselines.

   The transient structures from [Pds] run over an intercepted memory
   interface that records the read and write sets of the current operation;
   [commit] then applies one of two published persistence disciplines:

   - [Clobber] (Clobber-NVM, ASPLOS'21): undo-log only the WAR variables
     (stores whose address was read earlier in the same operation); each log
     entry must persist before the overwrite (pwb + psync on the log), and
     the write set is flushed with one fence at section exit. Log truncation
     is a lazy store on a hot line.

   - [Quadra] (Trinity/Quadra, PPoPP'21): In-Cache-Line logging — the first
     store to each line pays one extra same-line store (the in-line backup,
     persistence ordering free under PCSO), and the write set is flushed
     with one fence at section exit. No separate log, no log fences: the
     InCLL advantage over Clobber is exactly the missing per-WAR-variable
     pwb+psync.

   Read-only operations have an empty write set and commit for free, as in
   both original systems. *)

type policy = Clobber | Quadra

type opctx = {
  reads : (int, unit) Hashtbl.t;
  logged : (int, unit) Hashtbl.t; (* WAR vars already logged this op *)
  lines : (int, unit) Hashtbl.t; (* lines written this op *)
  (* Shadow bookkeeping for crash-test recovery (set_shadow): *)
  pre_words : (int, int) Hashtbl.t; (* addr -> pre-op value *)
  line_snaps : (int, int array list) Hashtbl.t;
      (* line -> cached images, newest first; the last one is pre-op *)
}

type t = {
  env : Simsched.Env.t;
  policy : policy;
  line_words : int;
  opctxs : opctx array;
  log_bases : int array; (* per-slot NVM log region bases *)
  log_cursors : int array; (* per-slot NVM log write cursors *)
  mutable shadow : bool;
  mutable stats_logged : int;
  mutable stats_flushed_lines : int;
}

let interception_ns = 2.0

(* Per-operation transaction bookkeeping (begin/commit metadata, sequence
   management) that both published systems execute around every operation. *)
let tx_overhead_ns = 50.0
let log_entry_words = 2

let create env ~policy ~max_threads ~log_base ~log_words_per_slot =
  {
    env;
    policy;
    line_words = Simsched.Env.line_words env;
    opctxs =
      Array.init max_threads (fun _ ->
          {
            reads = Hashtbl.create 32;
            logged = Hashtbl.create 8;
            lines = Hashtbl.create 8;
            pre_words = Hashtbl.create 8;
            line_snaps = Hashtbl.create 8;
          });
    log_bases =
      Array.init max_threads (fun slot -> log_base + (slot * log_words_per_slot));
    log_cursors =
      Array.init max_threads (fun slot -> log_base + (slot * log_words_per_slot));
    shadow = false;
    stats_logged = 0;
    stats_flushed_lines = 0;
  }

(* ------------------------------------------------------------------ *)
(* Crash-test shadow: what each published system's recovery procedure
   would reconstruct from its persistent log, maintained host-side.

   Clobber keeps an undo log in NVMM but truncates it with a volatile
   cursor; Quadra's in-line backups are modelled as a time cost only. The
   shadow captures the information those logs durably contain — the
   pre-operation value of every word the in-flight section overwrote
   (Clobber), respectively the per-line store-order image sequence that
   in-line backups pin under PCSO (Quadra) — with zero virtual-time or
   event footprint (Memsys.peek), so watched runs stay bit-identical. *)

let set_shadow t on = t.shadow <- on

let snapshot_line t line =
  let mem = Simsched.Env.mem t.env in
  Array.init t.line_words (fun off ->
      Simnvm.Memsys.peek mem ((line * t.line_words) + off))

(* Undo-log one variable (Clobber): the entry must reach NVMM before the
   overwrite, hence the fence on the write-ahead path. *)
let log_war t ~slot addr old_value =
  let cur = t.log_cursors.(slot) in
  Simsched.Env.store t.env cur addr;
  Simsched.Env.store t.env (cur + 1) old_value;
  Simsched.Env.pwb t.env cur;
  Simsched.Env.psync t.env;
  t.log_cursors.(slot) <- cur + log_entry_words;
  t.stats_logged <- t.stats_logged + 1

let intercepted_load t ~slot addr =
  let ctx = t.opctxs.(slot) in
  Simsched.Scheduler.charge (Simsched.Env.sched t.env) interception_ns;
  Hashtbl.replace ctx.reads addr ();
  Simsched.Env.load t.env addr

let intercepted_store t ~slot addr v =
  let ctx = t.opctxs.(slot) in
  Simsched.Scheduler.charge (Simsched.Env.sched t.env) interception_ns;
  let line = Simnvm.Addr.line_of ~line_words:t.line_words addr in
  if t.shadow then begin
    let mem = Simsched.Env.mem t.env in
    if not (Hashtbl.mem ctx.pre_words addr) then
      Hashtbl.replace ctx.pre_words addr (Simnvm.Memsys.peek mem addr);
    if not (Hashtbl.mem ctx.line_snaps line) then
      Hashtbl.replace ctx.line_snaps line [ snapshot_line t line ]
  end;
  (match t.policy with
  | Clobber ->
      if Hashtbl.mem ctx.reads addr && not (Hashtbl.mem ctx.logged addr) then begin
        Hashtbl.replace ctx.logged addr ();
        log_war t ~slot addr (Simsched.Env.load t.env addr)
      end
  | Quadra ->
      if not (Hashtbl.mem ctx.lines line) then
        (* In-line backup: one extra store to the same line; PCSO orders it
           before the data for free. Modelled as its time cost. *)
        Simsched.Scheduler.charge (Simsched.Env.sched t.env) 6.0);
  Hashtbl.replace ctx.lines line ();
  Simsched.Env.store t.env addr v;
  if t.shadow then
    Hashtbl.replace ctx.line_snaps line
      (snapshot_line t line :: Hashtbl.find ctx.line_snaps line)

(* Commit the section: flush the write set, one fence; reset the op
   context. The log is truncated with a lazy store (no fence), as both
   systems do off the critical path. *)
let commit t ~slot =
  let ctx = t.opctxs.(slot) in
  if Hashtbl.length ctx.lines > 0 then begin
    Hashtbl.iter
      (fun line () ->
        Simsched.Env.pwb t.env (line * t.line_words);
        t.stats_flushed_lines <- t.stats_flushed_lines + 1)
      ctx.lines;
    Simsched.Env.psync t.env;
    if t.policy = Clobber && Hashtbl.length ctx.logged > 0 then begin
      (* reset the per-thread log head (lazy store, no fence) *)
      t.log_cursors.(slot) <- t.log_bases.(slot);
      Simsched.Scheduler.charge (Simsched.Env.sched t.env) 6.0
    end
  end;
  Hashtbl.reset ctx.reads;
  Hashtbl.reset ctx.logged;
  Hashtbl.reset ctx.lines;
  Hashtbl.reset ctx.pre_words;
  Hashtbl.reset ctx.line_snaps

let with_op t ~slot f =
  Simsched.Scheduler.charge (Simsched.Env.sched t.env) tx_overhead_ns;
  let r = f () in
  commit t ~slot;
  r

(* Post-crash recovery against the shadow, applied directly to the NVMM
   image. Clobber undoes every word the in-flight section overwrote (its
   undo log persists before each overwrite, so the pre-image is always
   recoverable). Quadra first validates each written line against the
   sequence of cached images the section produced: under PCSO a write-back
   is a line snapshot, so the persisted line must equal one of them — a
   line matching none is torn (two stores of one line persisted out of
   order), exactly what the word-granular ablation produces and what
   in-line logging cannot recover from. *)

type shadow_recovery =
  | Rolled_back of int  (** in-flight sections undone *)
  | Torn_line of int  (** persisted line state unreachable under PCSO *)

let recover_shadow t =
  let mem = Simsched.Env.mem t.env in
  let torn = ref None in
  let rolled = ref 0 in
  Array.iter
    (fun ctx ->
      match t.policy with
      | Clobber ->
          if Hashtbl.length ctx.pre_words > 0 then incr rolled;
          Hashtbl.fold (fun addr pre acc -> (addr, pre) :: acc) ctx.pre_words []
          |> List.sort compare
          |> List.iter (fun (addr, pre) ->
                 Simnvm.Memsys.poke_persisted mem addr pre)
      | Quadra ->
          if Hashtbl.length ctx.line_snaps > 0 then incr rolled;
          Hashtbl.fold (fun line snaps acc -> (line, snaps) :: acc)
            ctx.line_snaps []
          |> List.sort compare
          |> List.iter (fun (line, snaps) ->
                 let current =
                   Array.init t.line_words (fun off ->
                       Simnvm.Memsys.persisted mem ((line * t.line_words) + off))
                 in
                 if List.exists (fun s -> s = current) snaps then
                   let pre = List.nth snaps (List.length snaps - 1) in
                   Array.iteri
                     (fun off v ->
                       Simnvm.Memsys.poke_persisted mem
                         ((line * t.line_words) + off)
                         v)
                     pre
                 else if !torn = None then torn := Some line))
    t.opctxs;
  match !torn with Some line -> Torn_line line | None -> Rolled_back !rolled

(* Intercepted memory interface over an NVM arena, for the transient
   structures. *)
let mem t bump =
  {
    Pds.Mem_iface.load = (fun ~slot addr -> intercepted_load t ~slot addr);
    store = (fun ~slot addr v -> intercepted_store t ~slot addr v);
    alloc = (fun ~slot:_ ~words -> Pds.Bump.alloc bump ~words);
    free = (fun ~slot:_ addr ~words -> Pds.Bump.free bump addr ~words);
  }
