(* Durably linearizable baselines: Clobber-NVM and Quadra/Trinity.

   Both run the transient NVMM structures inside failure-atomic sections
   (see Fatomic); they differ only in the logging discipline. The paper
   evaluates Quadra on the Queue and Trinity on the HashMap; both share the
   InCLL-based per-operation protocol we model with the [Quadra] policy. *)

let log_words_per_slot = 4096

let setup env ~policy ~max_threads =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let log_base =
    mcfg.Simnvm.Memsys.nvm_words - (max_threads * log_words_per_slot)
  in
  let fa = Fatomic.create env ~policy ~max_threads ~log_base ~log_words_per_slot in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let bump = Pds.Bump.create env ~base:lw ~limit:log_base in
  (fa, Fatomic.mem fa bump)

let map_ops fa m =
  {
    Pds.Ops.insert =
      (fun ~slot ~key ~value ->
        Fatomic.with_op fa ~slot (fun () ->
            Pds.Hashmap_transient.insert m ~slot ~key ~value));
    remove =
      (fun ~slot ~key ->
        Fatomic.with_op fa ~slot (fun () ->
            Pds.Hashmap_transient.remove m ~slot ~key));
    search =
      (fun ~slot ~key ->
        Fatomic.with_op fa ~slot (fun () ->
            Pds.Hashmap_transient.search m ~slot ~key));
    map_rp = Pds.Ops.no_rp;
  }

let queue_ops fa q =
  {
    Pds.Ops.enqueue =
      (fun ~slot v ->
        Fatomic.with_op fa ~slot (fun () ->
            Pds.Queue_transient.enqueue q ~slot v));
    dequeue =
      (fun ~slot ->
        Fatomic.with_op fa ~slot (fun () ->
            Pds.Queue_transient.dequeue q ~slot));
    queue_rp = Pds.Ops.no_rp;
  }

let make_map env ~policy ~max_threads ~buckets =
  let fa, mem = setup env ~policy ~max_threads in
  let m = Pds.Hashmap_transient.create env mem ~buckets in
  (map_ops fa m, Pds.Ops.null_system)

let make_queue env ~policy ~max_threads =
  let fa, mem = setup env ~policy ~max_threads in
  let q = Pds.Queue_transient.create env mem in
  (queue_ops fa q, Pds.Ops.null_system)

(* Crash-test handles: same construction, but with shadow capture enabled
   and the failure-atomic machinery plus the structure handle exposed, so
   the crash explorer can run shadow recovery and read the persisted
   contents. Creation runs inside its own atomic section: a crash between
   creation and the first operation rolls back to a committed empty
   structure. *)

let make_map_instrumented env ~policy ~max_threads ~buckets =
  let fa, mem = setup env ~policy ~max_threads in
  Fatomic.set_shadow fa true;
  let m =
    Fatomic.with_op fa ~slot:0 (fun () ->
        Pds.Hashmap_transient.create env mem ~buckets)
  in
  (fa, m, map_ops fa m)

let make_queue_instrumented env ~policy ~max_threads =
  let fa, mem = setup env ~policy ~max_threads in
  Fatomic.set_shadow fa true;
  let q =
    Fatomic.with_op fa ~slot:0 (fun () -> Pds.Queue_transient.create env mem)
  in
  (fa, q, queue_ops fa q)
