(* SOFT (Zuriel et al., OOPSLA'19): lock-free durable hash map.

   Volatile index in DRAM (bucket array + CAS-linked nodes), persistent
   nodes in NVMM holding only the data needed for recovery. Searches touch
   the volatile index only — no locks, no flushes — which is why SOFT
   outperforms even the transient lock-based map on read-intensive
   workloads (paper, Figure 8). Inserts and removes persist the pnode with
   one flush + fence.

   Volatile node: [key; value; pnode; next] in DRAM.
   Persistent node: [key; value; valid] in NVMM.

   The [valid] word models SOFT's per-word validity-bit scheme: it holds an
   integrity tag derived from key and value (never 0), so a torn pnode —
   some words persisted, others not, as word-granular hardware can produce
   before the flush — fails the tag check at recovery and reads as absent,
   exactly like a pnode whose validity bits disagree in the published
   algorithm. Invalidation stores 0. *)

let vnode_words = 4
let pnode_words = 3

type t = {
  env : Simsched.Env.t;
  buckets : int;
  heads : int; (* DRAM bucket array *)
  dram_bump : Pds.Bump.t;
  nvm_bump : Pds.Bump.t;
}

let create env ~buckets =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let dram_base = mcfg.Simnvm.Memsys.nvm_words in
  let dram_bump =
    Pds.Bump.create env ~base:dram_base
      ~limit:(dram_base + mcfg.Simnvm.Memsys.dram_words)
  in
  let nvm_bump = Pds.Bump.create env ~base:lw ~limit:mcfg.Simnvm.Memsys.nvm_words in
  let heads = Pds.Bump.alloc dram_bump ~words:buckets in
  { env; buckets; heads; dram_bump; nvm_bump }

let bucket t key = (key land max_int) mod t.buckets

let rec find t node key =
  if node = 0 then 0
  else if Simsched.Env.load t.env node = key then node
  else find t (Simsched.Env.load t.env (node + 3)) key

(* Validity tag of a pnode (never 0, the invalidated state). *)
let tag ~key ~value = ((key * 0x9E3779B1) lxor value lxor 0x5BF03635) lor 1

(* Persist a pnode: one flush + one fence, the whole durability cost of a
   SOFT update (two flushes only when the pnode straddles a line). *)
let persist_pnode t ~key ~value =
  let p = Pds.Bump.alloc t.nvm_bump ~words:pnode_words in
  Simsched.Env.store t.env p key;
  Simsched.Env.store t.env (p + 1) value;
  Simsched.Env.store t.env (p + 2) (tag ~key ~value);
  Simsched.Env.pwb t.env p;
  let lw = Simsched.Env.line_words t.env in
  if not (Simnvm.Addr.same_line ~line_words:lw p (p + pnode_words - 1)) then
    Simsched.Env.pwb t.env (p + pnode_words - 1);
  Simsched.Env.psync t.env;
  p

let insert t ~slot:_ ~key ~value =
  let b = t.heads + bucket t key in
  let rec retry () =
    let head = Simsched.Env.load t.env b in
    match find t head key with
    | 0 ->
        let p = persist_pnode t ~key ~value in
        let v = Pds.Bump.alloc t.dram_bump ~words:vnode_words in
        Simsched.Env.store t.env v key;
        Simsched.Env.store t.env (v + 1) value;
        Simsched.Env.store t.env (v + 2) p;
        Simsched.Env.store t.env (v + 3) head;
        if Simsched.Env.cas t.env b ~expected:head ~desired:v then true
        else begin
          Pds.Bump.free t.dram_bump v ~words:vnode_words;
          retry ()
        end
    | node ->
        (* update in place: new pnode persisted, old one invalidated *)
        let p_old = Simsched.Env.load t.env (node + 2) in
        let p = persist_pnode t ~key ~value in
        Simsched.Env.store t.env (node + 1) value;
        Simsched.Env.store t.env (node + 2) p;
        Simsched.Env.store t.env (p_old + 2) 0;
        Simsched.Env.pwb t.env (p_old + 2);
        Simsched.Env.psync t.env;
        false
  in
  retry ()

let search t ~slot:_ ~key =
  (* flush-free, lock-free: the SOFT fast path *)
  let head = Simsched.Env.load t.env (t.heads + bucket t key) in
  match find t head key with
  | 0 -> None
  | node -> Some (Simsched.Env.load t.env (node + 1))

let remove t ~slot:_ ~key =
  let b = t.heads + bucket t key in
  let rec unlink prev node =
    if node = 0 then false
    else if Simsched.Env.load t.env node = key then begin
      (* durability point: invalidate the pnode *)
      let p = Simsched.Env.load t.env (node + 2) in
      Simsched.Env.store t.env (p + 2) 0;
      Simsched.Env.pwb t.env (p + 2);
      Simsched.Env.psync t.env;
      let nxt = Simsched.Env.load t.env (node + 3) in
      let target = if prev = 0 then b else prev + 3 in
      if Simsched.Env.cas t.env target ~expected:node ~desired:nxt then true
      else unlink_retry ()
    end
    else unlink node (Simsched.Env.load t.env (node + 3))
  and unlink_retry () = unlink 0 (Simsched.Env.load t.env b) in
  unlink_retry ()

let ops t =
  {
    Pds.Ops.insert = (fun ~slot ~key ~value -> insert t ~slot ~key ~value);
    remove = (fun ~slot ~key -> remove t ~slot ~key);
    search = (fun ~slot ~key -> search t ~slot ~key);
    map_rp = Pds.Ops.no_rp;
  }

let make_map env ~buckets =
  (ops (create env ~buckets), Pds.Ops.null_system)

(* Crash-test handle: the structure stays exposed for the persisted-image
   reader below. *)
let make_map_instrumented env ~buckets =
  let t = create env ~buckets in
  (t, ops t)

(* Recovery-time oracle view: scan the pnode arena (pnodes are uniform
   3-word blocks, never freed) and keep every pnode whose validity tag
   checks out — exactly what SOFT's recovery rebuilds the map from. A key
   may appear twice (new pnode persisted before the old is invalidated);
   the oracle resolves the choice. *)
let persisted_bindings mem t =
  let mcfg = Simnvm.Memsys.config mem in
  let base = mcfg.Simnvm.Memsys.line_words in
  let stop = base + Pds.Bump.used t.nvm_bump ~base in
  let p = Simnvm.Memsys.persisted mem in
  let acc = ref [] in
  let a = ref base in
  while !a + pnode_words <= stop do
    let key = p !a and value = p (!a + 1) and valid = p (!a + 2) in
    if valid <> 0 && valid = tag ~key ~value then acc := (key, value) :: !acc;
    a := !a + pnode_words
  done;
  List.sort compare !acc
