(* FriedmanQueue (Friedman et al., PPoPP'18): durably linearizable
   lock-free FIFO queue in NVMM.

   A Michael-Scott queue whose nodes are persisted before being linked and
   whose link/unlink steps are flushed and fenced — between two and three
   flush+fence pairs per operation, the cost profile the paper's Figure 9
   shows. Nodes are not reclaimed (the published algorithm uses hazard
   pointers and deferred reclamation; the simulation simply leaks, which is
   safe and does not change the per-operation cost). *)

let node_words = 2

type t = {
  env : Simsched.Env.t;
  head_ptr : int; (* NVM *)
  tail_ptr : int;
  nvm_bump : Pds.Bump.t;
}

let create env =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let nvm_bump =
    Pds.Bump.create env ~base:(2 * lw) ~limit:mcfg.Simnvm.Memsys.nvm_words
  in
  let ptrs = lw (* head and tail in one line of their own *) in
  let sentinel = Pds.Bump.alloc nvm_bump ~words:node_words in
  Simsched.Env.store env (sentinel + 1) 0;
  Simsched.Env.pwb env sentinel;
  Simsched.Env.store env ptrs sentinel;
  Simsched.Env.store env (ptrs + 1) sentinel;
  Simsched.Env.pwb env ptrs;
  Simsched.Env.psync env;
  { env; head_ptr = ptrs; tail_ptr = ptrs + 1; nvm_bump }

(* The linearisation + flush chain of an operation runs inside the
   exclusive-ownership window of the head/tail line: successive operations
   genuinely wait on each other's flushes in the published algorithm (an
   enqueuer cannot link until the previous link is persisted and the tail
   swung), and the simulator's virtual-time value flow would otherwise let
   them overlap. *)
let enqueue t ~slot:_ v =
  let node = Pds.Bump.alloc t.nvm_bump ~words:node_words in
  Simsched.Env.store t.env node v;
  Simsched.Env.store t.env (node + 1) 0;
  Simsched.Env.pwb t.env node;
  Simsched.Env.psync t.env;
  Simsched.Env.serialize_rmw t.env t.tail_ptr (fun () ->
      let rec retry () =
        let tail = Simsched.Env.load t.env t.tail_ptr in
        let next = Simsched.Env.load t.env (tail + 1) in
        if next = 0 then
          if Simsched.Env.cas t.env (tail + 1) ~expected:0 ~desired:node
          then begin
            Simsched.Env.pwb t.env (tail + 1);
            Simsched.Env.psync t.env;
            ignore
              (Simsched.Env.cas t.env t.tail_ptr ~expected:tail ~desired:node)
          end
          else retry ()
        else begin
          (* help: swing the stale tail forward *)
          Simsched.Env.pwb t.env (tail + 1);
          Simsched.Env.psync t.env;
          ignore
            (Simsched.Env.cas t.env t.tail_ptr ~expected:tail ~desired:next);
          retry ()
        end
      in
      retry ())

let dequeue t ~slot:_ =
  Simsched.Env.serialize_rmw t.env t.head_ptr (fun () ->
      let rec retry () =
        let head = Simsched.Env.load t.env t.head_ptr in
        let first = Simsched.Env.load t.env (head + 1) in
        if first = 0 then None
        else begin
          let v = Simsched.Env.load t.env first in
          if Simsched.Env.cas t.env t.head_ptr ~expected:head ~desired:first
          then begin
            (* persist the returned value record and the new head so the
               dequeue survives a crash (two flush+fence pairs) *)
            Simsched.Env.pwb t.env first;
            Simsched.Env.psync t.env;
            Simsched.Env.pwb t.env t.head_ptr;
            Simsched.Env.psync t.env;
            Some v
          end
          else retry ()
        end
      in
      retry ())

let ops t =
  {
    Pds.Ops.enqueue = (fun ~slot v -> enqueue t ~slot v);
    dequeue = (fun ~slot -> dequeue t ~slot);
    queue_rp = Pds.Ops.no_rp;
  }

let make_queue env =
  let t = create env in
  (ops t, Pds.Ops.null_system)

(* Crash-test handle: the structure stays exposed for the persisted-image
   reader below. *)
let make_queue_instrumented env =
  let t = create env in
  (t, ops t)

(* Recovery-time oracle view: the persisted head pointer names the sentinel;
   the queue contents follow its persisted next chain — what the published
   recovery procedure walks after a crash. *)
let persisted_contents mem t =
  let p = Simnvm.Memsys.persisted mem in
  (* Fuel bounds the walk: corrupt crash images can tie the chain into a
     cycle. *)
  let rec walk node acc fuel =
    if node = 0 then List.rev acc
    else if fuel = 0 then failwith "persisted queue chain is cyclic"
    else walk (p (node + 1)) (p node :: acc) (fuel - 1)
  in
  let sentinel = p t.head_ptr in
  if sentinel = 0 then []
  else
    walk (p (sentinel + 1)) []
      (Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words
