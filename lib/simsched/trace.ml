(* Execution tracing as a per-world event bus.

   Each scheduler owns one bus. The environment publishes every memory
   access (plain loads/stores, RMWs, persistence instructions, compute
   charges), the synchronisation primitives publish lock operations, and
   the ResPCT runtime publishes restart-point markers — all on the same
   bus. Consumers (the WAR/idempotence analyser, the vector-clock race
   checker, the RP advisor, observability probes) attach as subscribers;
   nothing is process-global, so traced worlds compose and parallel worlds
   cannot observe each other.

   The disabled fast path is one array-length test: producers guard with
   [active] before even constructing an event. *)

type event =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Rmw of { tid : int; addr : int }
  | Pwb of { tid : int; addr : int }
  | Psync of { tid : int }
  | Compute of { tid : int; ns : float }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Restart_point of { tid : int; id : int }

type subscription = int

(* Parallel id/function arrays with an explicit count: subscribe grows by
   doubling, unsubscribe shifts in place — steady-state attach/detach churn
   (Trace.record around every analysis window) allocates nothing. *)
type bus = {
  mutable sink_ids : int array;
  mutable sink_fns : (event -> unit) array;
  mutable n_sinks : int;
  mutable next_sub : int;
}

let no_sink (_ : event) = ()
let create_bus () = { sink_ids = [||]; sink_fns = [||]; n_sinks = 0; next_sub = 0 }
let[@inline] active b = b.n_sinks > 0

let emit b ev =
  let fns = b.sink_fns in
  for i = 0 to b.n_sinks - 1 do
    (Array.unsafe_get fns i) ev
  done

let subscribe b f =
  let id = b.next_sub in
  b.next_sub <- id + 1;
  let n = b.n_sinks in
  if n = Array.length b.sink_ids then begin
    let cap = max 4 (2 * n) in
    let ids = Array.make cap (-1) and fns = Array.make cap no_sink in
    Array.blit b.sink_ids 0 ids 0 n;
    Array.blit b.sink_fns 0 fns 0 n;
    b.sink_ids <- ids;
    b.sink_fns <- fns
  end;
  b.sink_ids.(n) <- id;
  b.sink_fns.(n) <- f;
  b.n_sinks <- n + 1;
  id

let unsubscribe b id =
  let n = b.n_sinks in
  let found = ref (-1) in
  for i = 0 to n - 1 do
    if !found < 0 && b.sink_ids.(i) = id then found := i
  done;
  match !found with
  | -1 -> ()
  | at ->
      for i = at to n - 2 do
        b.sink_ids.(i) <- b.sink_ids.(i + 1);
        b.sink_fns.(i) <- b.sink_fns.(i + 1)
      done;
      b.sink_ids.(n - 1) <- -1;
      b.sink_fns.(n - 1) <- no_sink;
      b.n_sinks <- n - 1

(* ------------------------------------------------------------------ *)
(* Recorder: the accumulate-then-analyse subscriber used by the offline
   analyses (Rp_advisor, idempotence). *)

type recorder = {
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable sub : subscription option;
}

let attach b =
  let r = { events = []; count = 0; sub = None } in
  let id =
    subscribe b (fun ev ->
        r.events <- ev :: r.events;
        r.count <- r.count + 1)
  in
  r.sub <- Some id;
  r

let detach b r =
  match r.sub with
  | Some id ->
      unsubscribe b id;
      r.sub <- None
  | None -> ()

let events r = List.rev r.events
let count r = r.count

(* Run [f] with a fresh recorder attached, then detach it. *)
let record b f =
  let r = attach b in
  Fun.protect
    ~finally:(fun () -> detach b r)
    (fun () ->
      let v = f () in
      (v, events r))
