(* Execution tracing as a per-world event bus.

   Each scheduler owns one bus. The environment publishes every memory
   access (plain loads/stores, RMWs, persistence instructions, compute
   charges), the synchronisation primitives publish lock operations, and
   the ResPCT runtime publishes restart-point markers — all on the same
   bus. Consumers (the WAR/idempotence analyser, the vector-clock race
   checker, the RP advisor, observability probes) attach as subscribers;
   nothing is process-global, so traced worlds compose and parallel worlds
   cannot observe each other.

   The disabled fast path is one array-length test: producers guard with
   [active] before even constructing an event. *)

type event =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Rmw of { tid : int; addr : int }
  | Pwb of { tid : int; addr : int }
  | Psync of { tid : int }
  | Compute of { tid : int; ns : float }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Restart_point of { tid : int; id : int }

type subscription = int

type bus = {
  mutable sinks : (subscription * (event -> unit)) array;
  mutable next_sub : int;
}

let create_bus () = { sinks = [||]; next_sub = 0 }
let[@inline] active b = Array.length b.sinks > 0

let emit b ev =
  let sinks = b.sinks in
  for i = 0 to Array.length sinks - 1 do
    (snd (Array.unsafe_get sinks i)) ev
  done

let subscribe b f =
  let id = b.next_sub in
  b.next_sub <- id + 1;
  b.sinks <- Array.append b.sinks [| (id, f) |];
  id

let unsubscribe b id =
  b.sinks <-
    Array.of_list (List.filter (fun (i, _) -> i <> id) (Array.to_list b.sinks))

(* ------------------------------------------------------------------ *)
(* Recorder: the accumulate-then-analyse subscriber used by the offline
   analyses (Rp_advisor, idempotence). *)

type recorder = {
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable sub : subscription option;
}

let attach b =
  let r = { events = []; count = 0; sub = None } in
  let id =
    subscribe b (fun ev ->
        r.events <- ev :: r.events;
        r.count <- r.count + 1)
  in
  r.sub <- Some id;
  r

let detach b r =
  match r.sub with
  | Some id ->
      unsubscribe b id;
      r.sub <- None
  | None -> ()

let events r = List.rev r.events
let count r = r.count

(* Run [f] with a fresh recorder attached, then detach it. *)
let record b f =
  let r = attach b in
  Fun.protect
    ~finally:(fun () -> detach b r)
    (fun () ->
      let v = f () in
      (v, events r))
