(* Simulated pthread-style mutex.

   Contended acquisitions are exact: on unlock with waiters, ownership is
   handed directly to the oldest waiter, whose clock is advanced to the
   release instant, so contended critical sections are perfectly
   serialised in virtual time.

   Uncontended acquisitions are approximate: a thread may acquire a free
   mutex at a clock slightly behind the previous holder's release, because
   dispatch order can run a whole critical section before a
   virtually-earlier thread gets the processor. Under min-clock scheduling
   this overlap is bounded by the scheduler quantum plus one operation.
   (Advancing the acquirer to the release time would close the gap but
   creates a positive-feedback ratchet -- inflated release times propagate
   through other locks and serialise unrelated threads -- so the bounded
   error is the right trade-off.)

   No preemption point sits between a wait-queue registration and the
   corresponding [Scheduler.block], so a waiter is always observably Blocked
   by the time any other thread can try to wake it. *)

let lock_ns = 18.0
let unlock_ns = 14.0

(* Cache-line transfer cost when the lock (and the data it protects) was
   last held by a different core: the coherence miss that dominates
   contended critical sections on real multiprocessors. *)
let coherence_ns = 90.0

type t = {
  name : string;
  id : int; (* stable identity for trace events *)
  mutable owner : int option;
  mutable last_owner : int;
  waiters : int Queue.t;
  mutable last_release : float;
}

let all : t list ref = ref []
let next_id = ref 0

let create ?(name = "mutex") () =
  incr next_id;
  let m =
    {
      name;
      id = !next_id;
      owner = None;
      last_owner = -1;
      waiters = Queue.create ();
      last_release = 0.0;
    }
  in
  all := m :: !all;
  m

(* Debug helper: every mutex that is currently held or contended. *)
let dump_held () =
  List.filter_map
    (fun m ->
      match m.owner with
      | Some tid ->
          Some
            (Printf.sprintf "%s held by #%d (%d waiting)" m.name tid
               (Queue.length m.waiters))
      | None -> None)
    !all

let lock sched m =
  Scheduler.charge sched lock_ns;
  Scheduler.poll sched;
  let me = Scheduler.current_tid sched in
  (if m.owner = None then begin
     m.owner <- Some me;
     if m.last_owner >= 0 && m.last_owner <> me then
       Scheduler.charge sched coherence_ns;
     m.last_owner <- me
   end
   else begin
     Queue.add me m.waiters;
     Scheduler.block sched;
     (* Ownership was handed off by the releaser, necessarily another core. *)
     assert (m.owner = Some me);
     Scheduler.charge sched coherence_ns;
     m.last_owner <- me
   end);
  let bus = Scheduler.trace_bus sched in
  if Trace.active bus then Trace.emit bus (Trace.Acquire { tid = me; lock = m.id })

let unlock sched m =
  let me = Scheduler.current_tid sched in
  (match m.owner with
  | Some owner when owner = me -> ()
  | Some _ | None ->
      invalid_arg (Printf.sprintf "Mutex.unlock(%s): not the owner" m.name));
  Scheduler.charge sched unlock_ns;
  let bus = Scheduler.trace_bus sched in
  if Trace.active bus then Trace.emit bus (Trace.Release { tid = me; lock = m.id });
  m.last_release <- Scheduler.now sched;
  match Queue.take_opt m.waiters with
  | Some next ->
      m.owner <- Some next;
      Scheduler.wakeup sched next ~at:m.last_release
  | None -> m.owner <- None

let try_lock sched m =
  Scheduler.charge sched lock_ns;
  let me = Scheduler.current_tid sched in
  if m.owner = None then begin
    m.owner <- Some me;
    if m.last_owner >= 0 && m.last_owner <> me then
      Scheduler.charge sched coherence_ns;
    m.last_owner <- me;
    true
  end
  else false

let holder m = m.owner

let with_lock sched m f =
  lock sched m;
  match f () with
  | v ->
      unlock sched m;
      v
  | exception e ->
      (* Simulated crashes must not release locks (the machine died). *)
      if e <> Scheduler.Crashed then unlock sched m;
      raise e
