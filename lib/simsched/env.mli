(** Execution environment binding a memory backend to a {!Scheduler}.

    Simulated programs access memory exclusively through these wrappers:
    latencies are charged to the running thread's virtual clock and every
    access is a preemption point. The backend is usually the simulator
    ({!make}, which keeps a direct call path); {!make_backend} runs the
    same programs over any {!Simnvm.Backend.t} (e.g. a memory-mapped
    file). *)

type t

val make : Simnvm.Memsys.t -> Scheduler.t -> t
(** Couple a memory system with a scheduler (installs the charge hook). *)

val make_backend : Simnvm.Backend.t -> Scheduler.t -> t
(** Couple an arbitrary backend with a scheduler (installs the charge
    hook and thread-id provider through the backend record). *)

val mem : t -> Simnvm.Memsys.t
(** The simulator underneath, when there is one.
    @raise Invalid_argument if the world runs over an external backend. *)

val backend : t -> Simnvm.Backend.t
(** The backend ops record — always available. For {!make} worlds this is
    [Simnvm.Backend.of_memsys] of the simulator. *)

val sched : t -> Scheduler.t

val bus : t -> Trace.bus
(** The world's trace bus (same as [Scheduler.trace_bus (sched t)]): every
    wrapper below publishes its access on it, including {!cas}/{!faa}
    (which emit the constituent load/store plus an [Rmw] marker) and
    {!compute}. *)

val load : t -> Simnvm.Addr.t -> int
(** Read a word; charges latency; preemption point. *)

val store : t -> Simnvm.Addr.t -> int -> unit
(** Write a word; charges latency; preemption point. *)

val pwb : t -> Simnvm.Addr.t -> unit
(** clwb the word's line; preemption point. *)

val psync : t -> unit
(** sfence; preemption point. *)

val serialize_rmw : t -> Simnvm.Addr.t -> (unit -> 'a) -> 'a
(** Run [f] inside the exclusive-ownership window of the address's cache
    line: conflicting atomic sequences on one line serialise in virtual
    time, as the line does between cores. Used by lock-free algorithms for
    their linearisation + flush chains. *)

val cas : t -> Simnvm.Addr.t -> expected:int -> desired:int -> bool
(** Atomic compare-and-swap (no preemption point between read and write). *)

val faa : t -> Simnvm.Addr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val compute : t -> float -> unit
(** Charge pure computation time (non-memory work of a kernel). *)

val line_words : t -> int
(** Cache-line size of the underlying memory system, in words. *)
