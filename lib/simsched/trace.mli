(** Execution tracing as a per-world event bus.

    Each {!Scheduler} owns a bus ({!Scheduler.trace_bus}); {!Env} publishes
    every memory access — including CAS/FAA, the persistence instructions
    and compute charges — {!Mutex} publishes lock operations, and the
    ResPCT runtime publishes restart-point markers, all on the same bus.
    Consumers (race checker, RP advisor, observability probes) attach as
    subscribers; nothing is process-global. *)

type event =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Rmw of { tid : int; addr : int }
      (** marks that the immediately preceding load/store pair at [addr]
          was one atomic CAS/FAA *)
  | Pwb of { tid : int; addr : int }
  | Psync of { tid : int }
  | Compute of { tid : int; ns : float }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Restart_point of { tid : int; id : int }

type bus
type subscription

val create_bus : unit -> bus

val active : bus -> bool
(** Whether any subscriber is attached. Producers guard event construction
    on this, making the disabled path one array-length test. *)

val emit : bus -> event -> unit
(** Deliver to every subscriber, in attach order. *)

val subscribe : bus -> (event -> unit) -> subscription
val unsubscribe : bus -> subscription -> unit

(** {2 Recorder} — the accumulate-then-analyse subscriber *)

type recorder

val attach : bus -> recorder
val detach : bus -> recorder -> unit

val events : recorder -> event list
(** Events in program order. *)

val count : recorder -> int

val record : bus -> (unit -> 'a) -> 'a * event list
(** Run a computation with a fresh recorder attached and return its trace;
    the recorder is detached afterwards. *)
