(* Execution environment binding a memory backend to a scheduler.

   All simulated programs access memory exclusively through these wrappers:
   latencies flow into the running thread's virtual clock (the charge hook is
   installed by [make]) and every access is a preemption point, so the
   scheduler can interleave threads as real hardware would.

   The memory side is a backend behind the Simnvm.Backend seam. The
   simulator remains a special case with a direct, closure-free call path
   (one constructor match per access, nothing else changed); any other
   backend — the mmap'd-file Filemem, chiefly — goes through its record of
   closures. Sim-only call sites keep using [mem]; backend-generic code
   uses [backend].

   Every wrapper — including the atomic RMWs and pure-compute charges —
   publishes on the world's trace bus (Scheduler.trace_bus), so analyses
   that consume traces (race checker, RP advisor) see the complete access
   stream. Emission is guarded on [Trace.active]: an untraced world pays
   one array-length test per access. *)

type backing = Sim of Simnvm.Memsys.t | Ext of Simnvm.Backend.t

type t = {
  be : backing;
  ops : Simnvm.Backend.t; (* cold-path view of [be]; for Sim, of_memsys *)
  lw : int; (* cached line_words: the hot paths and RMW tokens need it *)
  sched : Scheduler.t;
  bus : Trace.bus;
  rmw_tokens : (int, Mutex.t) Hashtbl.t;
      (* per-line exclusive-ownership tokens: conflicting RMWs on one line
         serialise on real hardware (the line passes core to core), which a
         pure time charge cannot express *)
}

let init be (ops : Simnvm.Backend.t) sched =
  ops.Simnvm.Backend.set_charge (fun ns -> Scheduler.charge sched ns);
  ops.Simnvm.Backend.set_tid_provider (fun () ->
      Scheduler.current_tid_opt sched);
  {
    be;
    ops;
    lw = ops.Simnvm.Backend.line_words;
    sched;
    bus = Scheduler.trace_bus sched;
    rmw_tokens = Hashtbl.create 64;
  }

let make mem sched = init (Sim mem) (Simnvm.Backend.of_memsys mem) sched
let make_backend ops sched = init (Ext ops) ops sched

let mem t =
  match t.be with
  | Sim m -> m
  | Ext b ->
      invalid_arg
        ("Env.mem: world runs over external backend " ^ b.Simnvm.Backend.name)

let backend t = t.ops
let sched t = t.sched
let bus t = t.bus

let load t addr =
  let v =
    match t.be with
    | Sim m -> Simnvm.Memsys.load m addr
    | Ext b -> b.Simnvm.Backend.load addr
  in
  if Trace.active t.bus then
    Trace.emit t.bus
      (Trace.Load { tid = Scheduler.current_tid_opt t.sched; addr });
  Scheduler.poll t.sched;
  v

let store t addr v =
  (match t.be with
  | Sim m -> Simnvm.Memsys.store m addr v
  | Ext b -> b.Simnvm.Backend.store addr v);
  if Trace.active t.bus then
    Trace.emit t.bus
      (Trace.Store { tid = Scheduler.current_tid_opt t.sched; addr });
  Scheduler.poll t.sched

let pwb t addr =
  (match t.be with
  | Sim m -> Simnvm.Memsys.pwb m addr
  | Ext b -> b.Simnvm.Backend.pwb addr);
  if Trace.active t.bus then
    Trace.emit t.bus
      (Trace.Pwb { tid = Scheduler.current_tid_opt t.sched; addr });
  Scheduler.poll t.sched

let psync t =
  (match t.be with
  | Sim m -> Simnvm.Memsys.psync m
  | Ext b -> b.Simnvm.Backend.psync ());
  if Trace.active t.bus then
    Trace.emit t.bus (Trace.Psync { tid = Scheduler.current_tid_opt t.sched });
  Scheduler.poll t.sched

(* Conflicting atomic RMWs on one cache line serialise: the line is a token
   passed exclusively between cores, which a pure time charge cannot
   express. [serialize_rmw] holds the line's token across [f] (a hidden
   mutex whose hand-off gives exact virtual-time serialisation, including a
   line-transfer cost on contention). Lock-free algorithms additionally
   wrap their linearisation + flush sequences in it -- the real dependent
   chain that successive operations wait on. Reentrancy is not supported:
   nest [cas]/[faa] on a different line only. *)
let serialize_rmw t addr f =
  let line = Simnvm.Addr.line_of ~line_words:t.lw addr in
  let token =
    match Hashtbl.find_opt t.rmw_tokens line with
    | Some m -> m
    | None ->
        let m = Mutex.create ~name:"rmw-token" () in
        Hashtbl.add t.rmw_tokens line m;
        m
  in
  Mutex.with_lock t.sched token (fun () ->
      let result = f () in
      Scheduler.charge t.sched 8.0;
      result)

(* The traced view of an atomic RMW: the load (and, on success, the store)
   appear as ordinary access events so the WAR rule and the race checker
   account for them, and an Rmw marker records their atomicity. Before this
   went through the bus, cas/faa bypassed tracing entirely and RMW-heavy
   structures were silently invisible to the analyses. *)
let emit_rmw t ~addr ~wrote =
  if Trace.active t.bus then begin
    let tid = Scheduler.current_tid_opt t.sched in
    Trace.emit t.bus (Trace.Load { tid; addr });
    if wrote then Trace.emit t.bus (Trace.Store { tid; addr });
    Trace.emit t.bus (Trace.Rmw { tid; addr })
  end

let raw_load t addr =
  match t.be with
  | Sim m -> Simnvm.Memsys.load m addr
  | Ext b -> b.Simnvm.Backend.load addr

let raw_store t addr v =
  match t.be with
  | Sim m -> Simnvm.Memsys.store m addr v
  | Ext b -> b.Simnvm.Backend.store addr v

(* Atomic compare-and-swap: no preemption point separates the read from the
   write, so it is atomic in the simulation exactly as the hardware
   instruction is. Charged as a store plus an RMW penalty; algorithms whose
   RMWs contend on one line must additionally wrap their dependent
   sequences in [serialize_rmw]. *)
let cas t addr ~expected ~desired =
  let v = raw_load t addr in
  let ok = v = expected in
  if ok then raw_store t addr desired;
  emit_rmw t ~addr ~wrote:ok;
  Scheduler.charge t.sched 8.0;
  Scheduler.poll t.sched;
  ok

(* Atomic fetch-and-add, same atomicity argument as [cas]. *)
let faa t addr delta =
  let v = raw_load t addr in
  raw_store t addr (v + delta);
  emit_rmw t ~addr ~wrote:true;
  Scheduler.charge t.sched 8.0;
  Scheduler.poll t.sched;
  v

(* Pure computation cost (the non-memory work of an application kernel). *)
let compute t ns =
  Scheduler.charge t.sched ns;
  if Trace.active t.bus then
    Trace.emit t.bus
      (Trace.Compute { tid = Scheduler.current_tid_opt t.sched; ns });
  Scheduler.poll t.sched

let line_words t = t.lw
