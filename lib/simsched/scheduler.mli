(** Deterministic cooperative scheduler with virtual per-thread clocks.

    Simulated threads are OCaml 5 effect-based fibers. Each thread owns a
    virtual clock in nanoseconds; memory and synchronisation operations
    charge their latency to the running thread's clock, and the scheduler
    always dispatches the ready thread with the smallest clock (conservative
    discrete-event simulation). Lock contention, checkpoint stalls and
    "throughput at N threads" thereby become well-defined virtual-time
    quantities on a single host core, and every execution is reproducible
    from its seed. *)

exception Crashed
(** Raised inside fibers when a simulated power failure interrupts them.
    Simulated code must not catch it. *)

exception Deadlock of string
(** Raised by {!run} when no thread is runnable but some are blocked. *)

type outcome =
  | Completed  (** all threads ran to completion *)
  | Crash_interrupt of float
      (** the virtual crash instant was reached; fibers were discontinued *)

type t

val create : ?seed:int -> ?quantum:float -> ?jitter:float -> unit -> t
(** [create ()] makes a scheduler.
    [quantum] (ns) bounds how far a running thread may overrun the next
    ready thread's clock before {!poll} preempts it: [0.0] gives the most
    faithful interleaving, larger values trade accuracy for speed.
    [jitter] randomises charges by the given relative amplitude, to vary
    interleavings across seeds in crash-injection tests. *)

val trace_bus : t -> Trace.bus
(** This world's trace-event bus: {!Env}, {!Mutex} and the ResPCT runtime
    publish on it, analyses subscribe to it. One bus per scheduler, so
    traced worlds compose and parallel worlds stay isolated. *)

val spawn : ?name:string -> t -> (unit -> unit) -> int
(** Register a new simulated thread and return its tid. Its initial clock is
    the spawner's current clock (0 outside the simulation). *)

val run : t -> outcome
(** Dispatch until every thread finished, the crash instant is reached, or a
    thread raised (the exception is re-raised here).
    @raise Deadlock when only blocked threads remain. *)

val current_tid : t -> int
(** Tid of the running thread. Must be called from inside a fiber. *)

val current_tid_opt : t -> int
(** Tid of the running thread, or -1 outside the simulation. *)

val now : t -> float
(** Virtual clock of the running thread (0 outside the simulation). *)

val elapsed : t -> float
(** Maximum clock over all threads: the virtual makespan of the run. *)

val thread_clock : t -> int -> float
(** Clock of an arbitrary thread. *)

val charge : t -> float -> unit
(** Advance the running thread's clock by a cost in ns (jittered). Does not
    preempt; callers invoke {!poll} at safe points. No-op outside fibers, so
    setup code is free. *)

val advance_to : t -> float -> unit
(** Advance the running thread's clock to the given instant if it is behind
    (a happens-before edge: e.g. acquiring a mutex released at that time). *)

val poll : t -> unit
(** Preemption point: switch out if the running clock passed the bound. *)

val yield : t -> unit
(** Unconditional preemption point. *)

val sleep_until : t -> float -> unit
(** Advance the running thread's clock to the given instant and yield; used
    for the periodic checkpoint timer. *)

val sleep : t -> float -> unit
(** [sleep t d] = [sleep_until t (now t +. d)]. *)

val block : t -> unit
(** Park the running thread; it resumes after a matching {!wakeup}. The
    caller must have registered the thread on some wait queue first. *)

val wakeup : t -> int -> at:float -> unit
(** Make a blocked thread ready again, advancing its clock to [at] if that
    is later (the waker's clock: the happens-before edge of the wakeup). *)

val set_crash_at : t -> float -> unit
(** Declare a power failure at the given virtual instant. *)

val preempt_now : t -> unit
(** Force the running thread to switch out at its next {!poll}, regardless
    of the quantum: targeted preemption injection for schedule exploration
    (call from a {!Trace} subscriber at a chosen sync event). No-op outside
    the simulation; the thread still resumes whenever it holds the smallest
    ready clock. *)
