(* Deterministic cooperative scheduler with virtual per-thread clocks.

   Simulated threads are OCaml 5 effect-based fibers. Each thread owns a
   virtual clock (nanoseconds); memory and synchronisation operations charge
   their latency to the clock of the running thread. The scheduler always
   dispatches the ready thread with the smallest clock (conservative
   discrete-event simulation), so:

   - lock contention serialises critical sections in virtual time,
   - "throughput at N threads" is well defined on a single host core,
   - executions are exactly reproducible from the seed.

   Preemption is cooperative: running code calls [poll] (the Env memory
   wrappers do it after every simulated memory access); [poll] switches
   threads when the running clock exceeds the next ready clock plus the
   configured quantum.

   Crash injection: [set_crash_at] declares a virtual instant; once every
   ready thread has reached it, [run] stops dispatching, discontinues all
   fibers and reports [Crashed]. Combined with [Simnvm.Memsys.crash] this
   models a whole-machine power failure at an arbitrary moment.

   Threads live in a growable array in spawn order and are never removed,
   so a thread's tid doubles as its index ([thread_clock]/[wakeup] are
   O(1)) and the per-dispatch scans allocate nothing. Dispatch order is
   pinned by the legacy newest-first list semantics: scans run from the
   newest thread downwards with a strict comparison, so the newest ready
   thread wins clock ties exactly as before. *)

exception Crashed
exception Deadlock of string

type outcome = Completed | Crash_interrupt of float

type entry = Thunk of (unit -> unit) | Started

type thread = {
  tid : int;
  name : string;
  mutable clock : float;
  mutable status : status;
  mutable entry : entry;
  mutable k : (unit, unit) Effect.Deep.continuation option;
}

and status = Ready | Running | Blocked | Finished

type t = {
  mutable threads : thread array; (* index = tid, spawn order *)
  mutable n_threads : int;
  mutable current : thread option;
  mutable bound : float; (* preemption bound for the running thread *)
  mutable crash_at : float option;
  mutable failure : exn option;
  quantum : float;
  jitter : float;
  rng : Simnvm.Rng.t;
  bus : Trace.bus; (* this world's trace-event bus *)
}

type _ Effect.t += Preempt : unit Effect.t | Block : unit Effect.t

let create ?(seed = 1) ?(quantum = 0.0) ?(jitter = 0.0) () =
  {
    threads = [||];
    n_threads = 0;
    current = None;
    bound = infinity;
    crash_at = None;
    failure = None;
    quantum;
    jitter;
    rng = Simnvm.Rng.create seed;
    bus = Trace.create_bus ();
  }

let trace_bus t = t.bus

let current t =
  match t.current with
  | Some th -> th
  | None -> invalid_arg "Scheduler: no simulated thread is running"

let current_tid t = (current t).tid
let current_tid_opt t = match t.current with Some th -> th.tid | None -> -1
let now t = match t.current with Some th -> th.clock | None -> 0.0

(* A thread becoming Ready while another runs must tighten the runner's
   preemption bound: the bound was computed at dispatch time, and without
   this a thread woken mid-slice (lock hand-off, broadcast) would not get
   the processor until the runner blocked by itself -- entire epochs could
   execute against a stale-infinite bound. *)
let tighten_bound t clock =
  if t.current <> None then t.bound <- Float.min t.bound (clock +. t.quantum)

let spawn ?(name = "thread") t f =
  let clock = match t.current with Some th -> th.clock | None -> 0.0 in
  let th =
    {
      tid = t.n_threads;
      name;
      clock;
      status = Ready;
      entry = Thunk f;
      k = None;
    }
  in
  let n = t.n_threads in
  if n = Array.length t.threads then begin
    let cap = max 8 (2 * n) in
    let arr = Array.make cap th in
    Array.blit t.threads 0 arr 0 n;
    t.threads <- arr
  end;
  t.threads.(n) <- th;
  t.n_threads <- n + 1;
  tighten_bound t clock;
  th.tid

let find_thread t tid =
  if tid >= 0 && tid < t.n_threads then Some t.threads.(tid) else None

let thread_clock t tid =
  match find_thread t tid with
  | Some th -> th.clock
  | None -> invalid_arg "Scheduler.thread_clock: unknown tid"

let elapsed t =
  let acc = ref 0.0 in
  for i = 0 to t.n_threads - 1 do
    acc := Float.max !acc t.threads.(i).clock
  done;
  !acc

let charge t ns =
  match t.current with
  | None -> () (* setup code outside the simulation is free *)
  | Some th ->
      let ns =
        if t.jitter > 0.0 then
          ns *. (1.0 +. (t.jitter *. (Simnvm.Rng.float t.rng -. 0.5)))
        else ns
      in
      th.clock <- th.clock +. ns

let advance_to t at =
  match t.current with
  | None -> ()
  | Some th -> if at > th.clock then th.clock <- at

let poll t =
  match t.current with
  | None -> ()
  | Some th -> if th.clock > t.bound then Effect.perform Preempt

let yield t =
  match t.current with None -> () | Some _ -> Effect.perform Preempt

let sleep_until t time =
  let th = current t in
  if time > th.clock then th.clock <- time;
  Effect.perform Preempt

let sleep t dur = sleep_until t (now t +. dur)

let block t =
  let th = current t in
  th.status <- Blocked;
  Effect.perform Block;
  (* Re-entry point after wakeup. *)
  ()

let wakeup t tid ~at =
  match find_thread t tid with
  | None -> invalid_arg "Scheduler.wakeup: unknown tid"
  | Some th ->
      if th.status <> Blocked then
        invalid_arg "Scheduler.wakeup: thread is not blocked";
      th.status <- Ready;
      if at > th.clock then th.clock <- at;
      tighten_bound t th.clock

let set_crash_at t time = t.crash_at <- Some time

(* Targeted preemption injection (schedule exploration): collapse the
   running thread's bound so its next [poll] switches out even inside the
   quantum. A no-op outside fibers or when no other thread is ready (the
   min-clock dispatcher would re-pick the same thread anyway). *)
let preempt_now t =
  if t.current <> None then t.bound <- neg_infinity

(* ------------------------------------------------------------------ *)
(* Dispatch loop *)

let handler t th =
  {
    Effect.Deep.retc = (fun () -> th.status <- Finished);
    exnc =
      (fun e ->
        th.status <- Finished;
        match e with Crashed -> () | e -> t.failure <- Some e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Preempt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.k <- Some k;
                th.status <- Ready)
        | Block ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.k <- Some k
                (* status was set to Blocked by [block] before performing *))
        | _ -> None);
  }

(* Newest-first scan with strict [<]: the newest ready thread wins clock
   ties, matching the historical cons-list fold. *)
let pick_min_ready t =
  let best = ref None in
  for i = t.n_threads - 1 downto 0 do
    let th = t.threads.(i) in
    if th.status = Ready then
      match !best with
      | None -> best := Some th
      | Some b -> if th.clock < b.clock then best := Some th
  done;
  !best

(* Smallest ready clock excluding [th]: the next point at which another
   thread should get the processor in virtual time. *)
let next_other_clock t th =
  let acc = ref infinity in
  for i = 0 to t.n_threads - 1 do
    let other = t.threads.(i) in
    if other.tid <> th.tid && other.status = Ready then
      acc := Float.min !acc other.clock
  done;
  !acc

let dispatch t th =
  th.status <- Running;
  t.current <- Some th;
  let bound = next_other_clock t th +. t.quantum in
  t.bound <-
    (match t.crash_at with Some c -> Float.min bound c | None -> bound);
  (match th.entry with
  | Thunk f ->
      th.entry <- Started;
      Effect.Deep.match_with f () (handler t th)
  | Started -> (
      match th.k with
      | Some k ->
          th.k <- None;
          Effect.Deep.continue k ()
      | None -> assert false));
  t.current <- None;
  if th.status = Running then th.status <- Ready

let kill_all t =
  for i = t.n_threads - 1 downto 0 do
    let th = t.threads.(i) in
    (match th.k with
    | Some k -> (
        th.k <- None;
        t.current <- Some th;
        try Effect.Deep.discontinue k Crashed with Crashed -> ())
    | None -> ());
    t.current <- None;
    th.status <- Finished
  done

let describe_blocked t =
  let acc = ref [] in
  for i = 0 to t.n_threads - 1 do
    let th = t.threads.(i) in
    if th.status = Blocked then
      acc := Printf.sprintf "%s#%d@%.0fns" th.name th.tid th.clock :: !acc
  done;
  String.concat ", " !acc

let any_blocked t =
  let rec go i =
    i < t.n_threads && (t.threads.(i).status = Blocked || go (i + 1))
  in
  go 0

let run t =
  let rec loop () =
    (match t.failure with
    | Some e ->
        t.failure <- None;
        kill_all t;
        raise e
    | None -> ());
    match pick_min_ready t with
    | None ->
        if any_blocked t then
          raise
            (Deadlock
               (Printf.sprintf "no runnable thread; blocked: %s"
                  (describe_blocked t)))
        else Completed
    | Some th -> (
        match t.crash_at with
        | Some c when th.clock >= c ->
            kill_all t;
            Crash_interrupt c
        | Some _ | None ->
            dispatch t th;
            loop ())
  in
  loop ()
