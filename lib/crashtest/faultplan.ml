(* Deterministic media-fault plans for the crash explorer.

   A plan is a function of (fault seed, crash index, dirty-line set) only,
   so a failure line from CI replays bit-for-bit: re-executing the same
   world to the same boundary reproduces the same dirty lines and hence
   the same injected damage. Faults are applied *after* the adversarial
   write-back variant is installed — they model what the medium does to
   the image the power failure left, whatever that image is:

   - [Tear] re-tears one dirty line below PCSO granularity: a chosen
     subset of its dirty words comes from the crashing cache, the rest
     revert to the pre-crash persisted content — an image no legal
     whole-line write-back can produce;
   - [Poison] marks a line as unreadable: every load from it raises
     {!Simnvm.Memsys.Media_error} until recovery scrubs it;
   - [Bitflip] flips one bit of one persisted word in place. Flips target
     *dirty* words (or the sealed metadata region when nothing is dirty):
     a word in flight at power loss can land marginally written and read
     back wrong later, below what a whole-line tear models. A clean word
     decaying at rest is a different physical process that ECC sees and
     reports -- that is [Poison]/[Transient] -- so silent flips on
     arbitrary at-rest application data (which carry no redundancy by the
     paper's WAR-free rule, e.g. hashmap key words) are deliberately out
     of the model;
   - [Transient] arms a one-shot read fault that disarms after the first
     raise — the negative control for the retry path. *)

type op =
  | Tear of { lineno : int; keep : int }
  | Poison of { lineno : int }
  | Bitflip of { addr : int; bit : int }
  | Transient of { lineno : int }

let pp_op ppf = function
  | Tear { lineno; keep } -> Fmt.pf ppf "tear(line=%d,keep=%#x)" lineno keep
  | Poison { lineno } -> Fmt.pf ppf "poison(line=%d)" lineno
  | Bitflip { addr; bit } -> Fmt.pf ppf "bitflip(addr=%d,bit=%d)" addr bit
  | Transient { lineno } -> Fmt.pf ppf "transient(line=%d)" lineno

(* With no dirty lines to aim at, target the metadata / registry region at
   the bottom of NVMM — always populated once a runtime exists. *)
let low_lines = 16

let pick_line rng (dirty : Simnvm.Memsys.dirty_line list) =
  match dirty with
  | [] -> Simnvm.Rng.int rng low_lines
  | _ ->
      (List.nth dirty (Simnvm.Rng.int rng (List.length dirty)))
        .Simnvm.Memsys.lineno

let derive ~seed ~crash_index ~line_words dirty =
  let rng = Simnvm.Rng.create (seed + (crash_index * 0x9E3779B1)) in
  let n = 1 + Simnvm.Rng.int rng 2 in
  List.init n (fun _ ->
      let dirty_tearable =
        (* a tear needs at least two dirty words to differ from a legal
           whole-line or no write-back *)
        List.filter
          (fun dl ->
            let m = dl.Simnvm.Memsys.mask in
            m land (m - 1) <> 0)
          dirty
      in
      match Simnvm.Rng.int rng (if dirty_tearable = [] then 3 else 4) with
      | 0 -> Poison { lineno = pick_line rng dirty }
      | 1 ->
          let addr =
            match dirty with
            | [] ->
                (* metadata region: every word there is sealed *)
                Simnvm.Rng.int rng (low_lines * line_words)
            | _ ->
                let dl =
                  List.nth dirty (Simnvm.Rng.int rng (List.length dirty))
                in
                let offs =
                  List.filter
                    (fun off -> dl.Simnvm.Memsys.mask land (1 lsl off) <> 0)
                    (List.init line_words Fun.id)
                in
                (dl.Simnvm.Memsys.lineno * line_words)
                + List.nth offs (Simnvm.Rng.int rng (List.length offs))
          in
          Bitflip { addr; bit = Simnvm.Rng.int rng 62 }
      | 2 -> Transient { lineno = pick_line rng dirty }
      | _ ->
          let dl =
            List.nth dirty_tearable
              (Simnvm.Rng.int rng (List.length dirty_tearable))
          in
          let mask = dl.Simnvm.Memsys.mask in
          (* strict non-empty subset of the dirty words *)
          let keep = ref (mask land Simnvm.Rng.bits rng) in
          if !keep = mask then keep := mask land (mask - 1);
          if !keep = 0 then keep := mask land - mask;
          Tear { lineno = dl.Simnvm.Memsys.lineno; keep = !keep })

let apply mem ~base ~dirty ops =
  let lw = (Simnvm.Memsys.config mem).Simnvm.Memsys.line_words in
  List.iter
    (fun op ->
      match op with
      | Tear { lineno; keep } ->
          List.iter
            (fun (dl : Simnvm.Memsys.dirty_line) ->
              if dl.Simnvm.Memsys.lineno = lineno then
                for off = 0 to lw - 1 do
                  if dl.Simnvm.Memsys.mask land (1 lsl off) <> 0 then
                    let addr = (lineno * lw) + off in
                    Simnvm.Memsys.poke_persisted mem addr
                      (if keep land (1 lsl off) <> 0 then
                         dl.Simnvm.Memsys.data.(off)
                       else base.(addr))
                done)
            dirty
      | Poison { lineno } -> Simnvm.Memsys.poison_line mem lineno
      | Bitflip { addr; bit } ->
          Simnvm.Memsys.poke_persisted mem addr
            (Simnvm.Memsys.persisted mem addr lxor (1 lsl bit))
      | Transient { lineno } -> Simnvm.Memsys.arm_transient_fault mem lineno)
    ops
