(* Crash-test scenarios: one deterministic single-producer world per
   (system, structure) pair, each with the strongest oracle its
   persistence contract supports.

   - ResPCT (and the raw-word variant): last-checkpoint oracle. The
     manual checkpoint coordinator snapshots the host-side reference
     model inside [run_checkpoint ~on_flushed] — the instant every thread
     is quiescent at a restart point, when the logical state recovery
     must restore for a crash in the *next* epoch is exactly the model.
     Comparing the recovered bindings against the *model* (not against a
     persisted-image snapshot) is what catches tracking bugs such as a
     missing [add_modified]: a never-flushed cell is stale in both the
     image snapshot and the recovered image, but not in the model.

   - Clobber / Quadra: durable-linearizability oracle. Shadow recovery
     (Fatomic.recover_shadow) reconstructs what each published log
     durably contains; the result must be the reference state after [c]
     or [c + 1] completed operations ([c + 1] when the in-flight
     operation's effects persisted in full before the crash). Quadra
     additionally reports torn lines — persisted line states unreachable
     under PCSO — which is precisely what the word-granular ablation
     produces and in-cache-line logging cannot recover from.

   - SOFT: durable-linearizability with per-key choice. An in-flight
     update legitimately leaves both the old and the new pnode valid;
     recovery may keep either, so the oracle accepts any per-key choice
     function that reproduces state [c] or [c + 1].

   - FriedmanQueue: durable linearizability on the persisted head chain.

   - PMThreads / Montage / Dali: progress-and-determinism oracle only.
     Their recovery procedures are modelled as time costs, not as
     content transformations, so the explorer checks that every crash
     boundary is reachable deterministically (same completed-op count as
     the pilot) and that recovery hooks do not raise. *)

let nvm_words = 1 lsl 16
let dram_words = 1 lsl 14

let mem_cfg ~mem_seed ~pcso =
  {
    Simnvm.Memsys.default_config with
    Simnvm.Memsys.nvm_words;
    dram_words;
    sets = 64;
    ways = 4;
    seed = mem_seed;
    evict_rate = 0.0;
    pcso;
  }

let world ~sched_seed ~mem_seed ~pcso =
  let mem = Simnvm.Memsys.create (mem_cfg ~mem_seed ~pcso) in
  let sched = Simsched.Scheduler.create ~seed:sched_seed () in
  let env = Simsched.Env.make mem sched in
  (mem, sched, env)

let run_world sched =
  match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed | Simsched.Scheduler.Crash_interrupt _ -> ()

let buckets = 8

(* ------------------------------------------------------------------ *)
(* ResPCT: manual periodic coordinator with a termination flag (the
   library coordinator runs forever) and model snapshots at the
   quiescent point of every checkpoint. *)

let rt_cfg =
  {
    Respct.Runtime.period_ns = 3_000.0;
    flusher_pool = 2;
    mode = Respct.Runtime.Full;
    max_threads = 4;
    (* Small: the workloads here are tens of ops, and recovery rescans the
       whole registry once per adversarial image — thousands of images per
       exploration. *)
    registry_per_slot = 192;
    integrity = false;
    pipeline = false;
  }

let rt_cfg_integrity = { rt_cfg with Respct.Runtime.integrity = true }

(* Recovery flavour of the ResPCT scenarios. [`Off] is the plain trusting
   scan on a plain image; [`Verified] writes the image under
   [Runtime.config.integrity] and recovers with [Recovery.run_verified];
   [`Noverify] is the planted mutant — the image carries the checksums but
   recovery runs the trusting scan, so injected media damage must surface
   as a silently wrong image the fault oracle catches. *)
type respct_fault_mode = [ `Off | `Verified | `Noverify ]

let spawn_coordinator sched r ~finished ~on_flushed =
  ignore
    (Simsched.Scheduler.spawn ~name:"ckpt" sched (fun () ->
         let rec loop at =
           if not !finished then begin
             Simsched.Scheduler.sleep_until sched at;
             if not !finished then begin
               Respct.Runtime.run_checkpoint r ~on_flushed;
               loop (at +. rt_cfg.Respct.Runtime.period_ns)
             end
           end
         in
         loop rt_cfg.Respct.Runtime.period_ns))

(* The recovered image can only be interpreted through the structure once
   a checkpoint has covered its creation: for a crash in the creation
   epoch, recovery rolls back the heap cursor and the registry length, so
   the structure's cells are discarded allocations the re-executed
   application re-initialises — walking them would read garbage that is
   never observable after restart. *)
let respct_recover_check mem rt snapshots ~created_epoch ~recovered_state ~pp =
  match !rt with
  | None -> Ok () (* crash before the runtime existed: nothing promised *)
  | Some r ->
      let rep = Respct.Recovery.run ~layout:(Respct.Runtime.layout r) mem in
      let failed = rep.Respct.Recovery.failed_epoch in
      if failed <= !created_epoch then Ok ()
      else
        let expected =
          Option.value ~default:[] (Hashtbl.find_opt snapshots failed)
        in
        let got = recovered_state () in
        if got = expected then Ok ()
        else
          Error
            (Fmt.str "epoch %d: recovered %a, last checkpoint had %a" failed pp
               got pp expected)

(* Verdict-aware oracle for integrity-mode images. [faults] says whether
   the image under check carries injected media damage.

   On perfect media the recovered structure must match the snapshot
   regardless of the verdict: damage classification may legitimately fire
   on freed cells caught mid-reinitialisation (their partial init is not
   logged, exactly like upstream ResPCT, because a free cell is
   unreachable in every recoverable state), but it can never change
   reachable state — and an [Unrecoverable] verdict is a false alarm by
   construction, since metadata cells are never recycled.

   On faulty media the verdict gates the comparison: [Clean] / [Repaired]
   promise the exact last-checkpoint snapshot and are held to it;
   [Salvaged] / [Unrecoverable] explicitly report the damage, which is the
   whole durability contract — detected or exact, never silently wrong. *)
let respct_verified_check ~faults mem rt snapshots ~created_epoch
    ~recovered_state ~pp =
  match !rt with
  | None -> Ok ()
  | Some r ->
      let v =
        Respct.Recovery.run_verified ~layout:(Respct.Runtime.layout r) mem
      in
      let failed = v.Respct.Recovery.vreport.Respct.Recovery.failed_epoch in
      let exact = Respct.Recovery.exact_image v.Respct.Recovery.verdict in
      if faults && not exact then Ok ()
      else if
        (not faults)
        && (match v.Respct.Recovery.verdict with
           | Respct.Recovery.Unrecoverable _ -> true
           | _ -> false)
      then
        Error
          (Fmt.str "perfect media judged %a" Respct.Recovery.pp_verdict
             v.Respct.Recovery.verdict)
      else if failed <= !created_epoch then Ok ()
      else
        let expected =
          Option.value ~default:[] (Hashtbl.find_opt snapshots failed)
        in
        let got = recovered_state () in
        if got = expected then Ok ()
        else
          Error
            (Fmt.str "verdict %a, epoch %d: recovered %a, last checkpoint \
                      had %a"
               Respct.Recovery.pp_verdict v.Respct.Recovery.verdict failed pp
               got pp expected)

let respct_cfg_of_mode = function
  | `Off -> rt_cfg
  | `Verified | `Noverify -> rt_cfg_integrity

(* Pipelined variants reuse the classic configs with the asynchronous
   epoch advance switched on; the crash boundaries then include every pwb
   of the background walk and the (double-buffered) seal itself, so the
   explorer automatically visits crashes mid-walk, between the commit-slot
   stores and the epoch-word store, and at the workers' first post-advance
   restart points. *)
let respct_pipeline_cfg fault_mode =
  { (respct_cfg_of_mode fault_mode) with Respct.Runtime.pipeline = true }

let mutant_suffix = function
  | None -> ""
  | Some Respct.Runtime.Seal_before_walk -> "-mutant-earlyseal"
  | Some Respct.Runtime.No_overlap_wait -> "-mutant-nowait"
  | Some Respct.Runtime.Early_reclaim -> "-mutant-earlyreclaim"

let respct_checks_of_mode fault_mode mem rt snapshots ~created_epoch
    ~recovered_state ~pp =
  let plain () =
    respct_recover_check mem rt snapshots ~created_epoch ~recovered_state ~pp
  in
  let verified ~faults () =
    respct_verified_check ~faults mem rt snapshots ~created_epoch
      ~recovered_state ~pp
  in
  match fault_mode with
  | `Off -> (plain, None)
  | `Verified -> (verified ~faults:false, Some (verified ~faults:true))
  (* the mutant trusts the image even when the oracle injects damage *)
  | `Noverify -> (plain, Some plain)

let respct_map ?(fault_mode : respct_fault_mode = `Off) ?(pipeline = false)
    ?(churn = false) ?mutant ~sched_seed ~mem_seed ~pcso ~n_ops () :
    Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops =
      if churn then Workmix.churn_ops ~n:n_ops ()
      else Workmix.map_ops ~seed:(mem_seed + 11) ~n:n_ops ()
    in
    let rt = ref None in
    let map = ref None in
    let created_epoch = ref max_int in
    let snapshots = Hashtbl.create 8 in
    let model = Hashtbl.create 32 in
    let model_snapshot () =
      List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) model [])
    in
    let completed = ref 0 in
    let finished = ref false in
    let run () =
      let cfg =
        if pipeline then respct_pipeline_cfg fault_mode
        else respct_cfg_of_mode fault_mode
      in
      let r = Respct.Runtime.create ~cfg env in
      Respct.Runtime.set_mutant r mutant;
      rt := Some r;
      spawn_coordinator sched r ~finished ~on_flushed:(fun next_epoch ->
          Hashtbl.replace snapshots next_epoch (model_snapshot ()));
      ignore
        (Respct.Runtime.spawn r ~slot:0 (fun _ctx ->
             let m = Pds.Hashmap_respct.create r ~slot:0 ~buckets in
             map := Some m;
             created_epoch := Respct.Runtime.epoch r;
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Insert (key, value) ->
                     ignore (Pds.Hashmap_respct.insert m ~slot:0 ~key ~value);
                     Hashtbl.replace model key value
                 | Workmix.Remove key ->
                     ignore (Pds.Hashmap_respct.remove m ~slot:0 ~key);
                     Hashtbl.remove model key
                 | Workmix.Search key ->
                     ignore (Pds.Hashmap_respct.search m ~slot:0 ~key));
                 incr completed;
                 Respct.Runtime.rp r ~slot:0 1)
               ops;
             finished := true;
             (* Wake any idle background flusher fibers; otherwise the
                world ends in [Scheduler.Deadlock], which [run_world]
                deliberately does not catch. *)
             if pipeline then Respct.Runtime.stop r));
      run_world sched
    in
    let recover_check, recover_check_faulty =
      respct_checks_of_mode fault_mode mem rt snapshots ~created_epoch
        ~recovered_state:(fun () ->
          match !map with
          | None -> []
          | Some m -> Pds.Hashmap_respct.persisted_bindings mem m)
        ~pp:Workmix.pp_bindings
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty;
    }
  in
  let name =
    (match fault_mode with
    | `Off -> "respct-map"
    | `Verified -> "respct-map-integrity"
    | `Noverify -> "respct-map-noverify")
    ^ (if pipeline then "-pipeline" else "")
    ^ (if churn then "-churn" else "")
    ^ mutant_suffix mutant
  in
  { Explore.name; sched_seed; mem_seed; pcso; n_ops; make }

let respct_queue ?(fault_mode : respct_fault_mode = `Off) ?(pipeline = false)
    ?mutant ~sched_seed ~mem_seed ~pcso ~n_ops () : Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops = Workmix.queue_ops ~seed:(mem_seed + 23) ~n:n_ops () in
    let rt = ref None in
    let queue = ref None in
    let created_epoch = ref max_int in
    let snapshots = Hashtbl.create 8 in
    let model = ref [] in
    let completed = ref 0 in
    let finished = ref false in
    let run () =
      let cfg =
        if pipeline then respct_pipeline_cfg fault_mode
        else respct_cfg_of_mode fault_mode
      in
      let r = Respct.Runtime.create ~cfg env in
      Respct.Runtime.set_mutant r mutant;
      rt := Some r;
      spawn_coordinator sched r ~finished ~on_flushed:(fun next_epoch ->
          Hashtbl.replace snapshots next_epoch !model);
      ignore
        (Respct.Runtime.spawn r ~slot:0 (fun _ctx ->
             let q = Pds.Queue_respct.create r ~slot:0 in
             queue := Some q;
             created_epoch := Respct.Runtime.epoch r;
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Enqueue v ->
                     Pds.Queue_respct.enqueue q ~slot:0 v;
                     model := !model @ [ v ]
                 | Workmix.Dequeue -> (
                     ignore (Pds.Queue_respct.dequeue q ~slot:0);
                     match !model with [] -> () | _ :: tl -> model := tl));
                 incr completed;
                 Respct.Runtime.rp r ~slot:0 1)
               ops;
             finished := true;
             if pipeline then Respct.Runtime.stop r));
      run_world sched
    in
    let recover_check, recover_check_faulty =
      respct_checks_of_mode fault_mode mem rt snapshots ~created_epoch
        ~recovered_state:(fun () ->
          match !queue with
          | None -> []
          | Some q -> Pds.Queue_respct.persisted_contents mem q)
        ~pp:Workmix.pp_contents
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty;
    }
  in
  let name =
    (match fault_mode with
    | `Off -> "respct-queue"
    | `Verified -> "respct-queue-integrity"
    | `Noverify -> "respct-queue-noverify")
    ^ (if pipeline then "-pipeline" else "")
    ^ mutant_suffix mutant
  in
  { Explore.name; sched_seed; mem_seed; pcso; n_ops; make }

(* Raw-word append log: each operation allocates one line-aligned untracked
   persistent word, stores a unique value and registers it with
   [add_modified] — the paper's section 3.3.2 rule for WAR-free data. The
   [mutant] flag skips [add_modified] on every third word (a deliberately
   planted tracking bug): its line is never flushed by any checkpoint, so
   the last-checkpoint oracle reports a stale word. Line alignment keeps a
   neighbouring entry's flush from masking the bug. The oracle is
   one-sided (every entry of the failed epoch's snapshot must be
   persisted), which is the durability contract of tracked raw data. *)
let respct_raw ?(mutant = false) ~sched_seed ~mem_seed ~pcso ~n_ops () :
    Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let rt = ref None in
    let snapshots = Hashtbl.create 8 in
    let entries = ref [] in
    let completed = ref 0 in
    let finished = ref false in
    let run () =
      let r = Respct.Runtime.create ~cfg:rt_cfg env in
      rt := Some r;
      spawn_coordinator sched r ~finished ~on_flushed:(fun next_epoch ->
          Hashtbl.replace snapshots next_epoch !entries);
      ignore
        (Respct.Runtime.spawn r ~slot:0 (fun _ctx ->
             for i = 1 to n_ops do
               let addr =
                 Respct.Runtime.alloc_raw ~line_start:true r ~slot:0 ~words:1
               in
               Simsched.Env.store env addr (1000 + i);
               if not (mutant && i mod 3 = 0) then
                 Respct.Runtime.add_modified r ~slot:0 addr;
               entries := (addr, 1000 + i) :: !entries;
               incr completed;
               Respct.Runtime.rp r ~slot:0 1
             done;
             finished := true));
      run_world sched
    in
    let recover_check () =
      match !rt with
      | None -> Ok ()
      | Some r ->
          let rep =
            Respct.Recovery.run ~layout:(Respct.Runtime.layout r) mem
          in
          let failed = rep.Respct.Recovery.failed_epoch in
          let expected =
            Option.value ~default:[] (Hashtbl.find_opt snapshots failed)
          in
          let stale =
            List.find_opt
              (fun (a, v) -> Simnvm.Memsys.persisted mem a <> v)
              expected
          in
          (match stale with
          | None -> Ok ()
          | Some (a, v) ->
              Error
                (Printf.sprintf
                   "epoch %d: word %d should persist %d, image has %d" failed
                   a v
                   (Simnvm.Memsys.persisted mem a)))
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty = None;
    }
  in
  let name = if mutant then "respct-raw-mutant" else "respct-raw" in
  { Explore.name; sched_seed; mem_seed; pcso; n_ops; make }

(* ------------------------------------------------------------------ *)
(* Clobber / Quadra: single worker fiber, durable-linearizability oracle
   against the precomputed reference-prefix states. *)

let durlin_allowed states c got =
  got = states.(c) || (c + 1 < Array.length states && got = states.(c + 1))

let durlin_error ~pp states c got =
  Error
    (Fmt.str "after %d complete ops: recovered %a not in {%a, %a}" c pp got pp
       states.(c) pp
       states.(min (c + 1) (Array.length states - 1)))

let durlin_map ~policy ~name ~sched_seed ~mem_seed ~pcso ~n_ops :
    Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops = Workmix.map_ops ~seed:(mem_seed + 31) ~n:n_ops () in
    let states = Workmix.map_states ops in
    let handles = ref None in
    let completed = ref 0 in
    let run () =
      ignore
        (Simsched.Scheduler.spawn ~name:"worker" sched (fun () ->
             let fa, m, mops =
               Baselines.Durlin.make_map_instrumented env ~policy
                 ~max_threads:2 ~buckets
             in
             handles := Some (fa, m);
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Insert (key, value) ->
                     ignore (mops.Pds.Ops.insert ~slot:0 ~key ~value)
                 | Workmix.Remove key -> ignore (mops.Pds.Ops.remove ~slot:0 ~key)
                 | Workmix.Search key ->
                     ignore (mops.Pds.Ops.search ~slot:0 ~key));
                 incr completed)
               ops));
      run_world sched
    in
    let recover_check () =
      match !handles with
      | None -> Ok () (* crash during construction: no committed state yet *)
      | Some (fa, m) -> (
          match Baselines.Fatomic.recover_shadow fa with
          | Baselines.Fatomic.Torn_line line ->
              Error
                (Printf.sprintf
                   "torn line %d: persisted state unreachable under PCSO" line)
          | Baselines.Fatomic.Rolled_back _ ->
              let got = Pds.Hashmap_transient.persisted_bindings mem m in
              let c = !completed in
              if durlin_allowed states c got then Ok ()
              else durlin_error ~pp:Workmix.pp_bindings states c got)
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty = None;
    }
  in
  { Explore.name = name; sched_seed; mem_seed; pcso; n_ops; make }

let durlin_queue ~policy ~name ~sched_seed ~mem_seed ~pcso ~n_ops :
    Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops = Workmix.queue_ops ~seed:(mem_seed + 43) ~n:n_ops () in
    let states = Workmix.queue_states ops in
    let handles = ref None in
    let completed = ref 0 in
    let run () =
      ignore
        (Simsched.Scheduler.spawn ~name:"worker" sched (fun () ->
             let fa, q, qops =
               Baselines.Durlin.make_queue_instrumented env ~policy
                 ~max_threads:2
             in
             handles := Some (fa, q);
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Enqueue v -> qops.Pds.Ops.enqueue ~slot:0 v
                 | Workmix.Dequeue -> ignore (qops.Pds.Ops.dequeue ~slot:0));
                 incr completed)
               ops));
      run_world sched
    in
    let recover_check () =
      match !handles with
      | None -> Ok ()
      | Some (fa, q) -> (
          match Baselines.Fatomic.recover_shadow fa with
          | Baselines.Fatomic.Torn_line line ->
              Error
                (Printf.sprintf
                   "torn line %d: persisted state unreachable under PCSO" line)
          | Baselines.Fatomic.Rolled_back _ ->
              let got = Pds.Queue_transient.persisted_contents mem q in
              let c = !completed in
              if durlin_allowed states c got then Ok ()
              else durlin_error ~pp:Workmix.pp_contents states c got)
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty = None;
    }
  in
  { Explore.name = name; sched_seed; mem_seed; pcso; n_ops; make }

(* ------------------------------------------------------------------ *)
(* SOFT: durable linearizability with per-key choice — an in-flight
   update leaves both pnodes valid and recovery may keep either. *)

let soft_matches recovered state =
  List.sort_uniq compare (List.map fst recovered) = List.map fst state
  && List.for_all (fun kv -> List.mem kv recovered) state

let soft_map ~sched_seed ~mem_seed ~pcso ~n_ops : Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops = Workmix.map_ops ~seed:(mem_seed + 53) ~n:n_ops () in
    let states = Workmix.map_states ops in
    let handle = ref None in
    let completed = ref 0 in
    let run () =
      ignore
        (Simsched.Scheduler.spawn ~name:"worker" sched (fun () ->
             let t, mops = Baselines.Soft.make_map_instrumented env ~buckets in
             handle := Some t;
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Insert (key, value) ->
                     ignore (mops.Pds.Ops.insert ~slot:0 ~key ~value)
                 | Workmix.Remove key -> ignore (mops.Pds.Ops.remove ~slot:0 ~key)
                 | Workmix.Search key ->
                     ignore (mops.Pds.Ops.search ~slot:0 ~key));
                 incr completed)
               ops));
      run_world sched
    in
    let recover_check () =
      match !handle with
      | None -> Ok ()
      | Some t ->
          let recovered = Baselines.Soft.persisted_bindings mem t in
          let c = !completed in
          if
            soft_matches recovered states.(c)
            || c + 1 < Array.length states
               && soft_matches recovered states.(c + 1)
          then Ok ()
          else
            Error
              (Fmt.str "after %d complete ops: valid pnodes %a match neither \
                        %a nor the next state"
                 c Workmix.pp_bindings recovered Workmix.pp_bindings
                 states.(c))
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty = None;
    }
  in
  { Explore.name = "soft-map"; sched_seed; mem_seed; pcso; n_ops; make }

let friedman_queue ~sched_seed ~mem_seed ~pcso ~n_ops : Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let ops = Workmix.queue_ops ~seed:(mem_seed + 61) ~n:n_ops () in
    let states = Workmix.queue_states ops in
    let handle = ref None in
    let completed = ref 0 in
    let run () =
      ignore
        (Simsched.Scheduler.spawn ~name:"worker" sched (fun () ->
             let t, qops = Baselines.Friedman_queue.make_queue_instrumented env in
             handle := Some t;
             List.iter
               (fun op ->
                 (match op with
                 | Workmix.Enqueue v -> qops.Pds.Ops.enqueue ~slot:0 v
                 | Workmix.Dequeue -> ignore (qops.Pds.Ops.dequeue ~slot:0));
                 incr completed)
               ops));
      run_world sched
    in
    let recover_check () =
      match !handle with
      | None -> Ok ()
      | Some t ->
          let got = Baselines.Friedman_queue.persisted_contents mem t in
          let c = !completed in
          if durlin_allowed states c got then Ok ()
          else durlin_error ~pp:Workmix.pp_contents states c got
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check;
      recover_check_faulty = None;
    }
  in
  { Explore.name = "friedman-queue"; sched_seed; mem_seed; pcso; n_ops; make }

(* ------------------------------------------------------------------ *)
(* Buffered epoch systems (PMThreads, Montage, Dali): their recovery is
   modelled as a time cost, so content cannot be checked — the explorer's
   built-in determinism oracle (same completed-op count as the pilot at
   every boundary) is the property under test. *)

type epoch_builder =
  | Map_builder of (Simsched.Env.t -> Pds.Ops.map * Pds.Ops.system)
  | Queue_builder of (Simsched.Env.t -> Pds.Ops.queue * Pds.Ops.system)

let progress ~name ~builder ~sched_seed ~mem_seed ~pcso ~n_ops :
    Explore.scenario =
  let make ~n_ops =
    let mem, sched, env = world ~sched_seed ~mem_seed ~pcso in
    let completed = ref 0 in
    let run () =
      ignore
        (Simsched.Scheduler.spawn ~name:"worker" sched (fun () ->
             match builder with
             | Map_builder build ->
                 let mops, sys = build env in
                 sys.Pds.Ops.sys_register ~slot:0;
                 List.iter
                   (fun op ->
                     (match op with
                     | Workmix.Insert (key, value) ->
                         ignore (mops.Pds.Ops.insert ~slot:0 ~key ~value)
                     | Workmix.Remove key ->
                         ignore (mops.Pds.Ops.remove ~slot:0 ~key)
                     | Workmix.Search key ->
                         ignore (mops.Pds.Ops.search ~slot:0 ~key));
                     incr completed;
                     mops.Pds.Ops.map_rp ~slot:0 ~id:1)
                   (Workmix.map_ops ~seed:(mem_seed + 71) ~n:n_ops ());
                 sys.Pds.Ops.sys_deregister ~slot:0;
                 sys.Pds.Ops.sys_stop ()
             | Queue_builder build ->
                 let qops, sys = build env in
                 sys.Pds.Ops.sys_register ~slot:0;
                 List.iter
                   (fun op ->
                     (match op with
                     | Workmix.Enqueue v -> qops.Pds.Ops.enqueue ~slot:0 v
                     | Workmix.Dequeue -> ignore (qops.Pds.Ops.dequeue ~slot:0));
                     incr completed;
                     qops.Pds.Ops.queue_rp ~slot:0 ~id:1)
                   (Workmix.queue_ops ~seed:(mem_seed + 83) ~n:n_ops ());
                 sys.Pds.Ops.sys_deregister ~slot:0;
                 sys.Pds.Ops.sys_stop ()));
      run_world sched
    in
    {
      Explore.mem;
      run;
      completed = (fun () -> !completed);
      recover_check = (fun () -> Ok ());
      recover_check_faulty = None;
    }
  in
  { Explore.name = name; sched_seed; mem_seed; pcso; n_ops; make }

let epoch_period = 3_000.0

(* ------------------------------------------------------------------ *)
(* Registry *)

type structure = Map | Queue

type entry = {
  id : string;
  structure : structure;
  expect_ablation : [ `Breaks | `Holds ];
  expect_faults : [ `Detects | `Breaks | `Unsupported ];
  build :
    sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int ->
    Explore.scenario;
}

let all : entry list =
  [
    {
      id = "respct-map";
      structure = Map;
      expect_ablation = `Breaks;
      expect_faults = `Unsupported;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_map ~sched_seed ~mem_seed ~pcso ~n_ops ());
    };
    {
      id = "respct-queue";
      structure = Queue;
      expect_ablation = `Breaks;
      expect_faults = `Unsupported;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_queue ~sched_seed ~mem_seed ~pcso ~n_ops ());
    };
    {
      id = "respct-raw";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_raw ~sched_seed ~mem_seed ~pcso ~n_ops ());
    };
    {
      id = "clobber-map";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build = durlin_map ~policy:Baselines.Fatomic.Clobber ~name:"clobber-map";
    };
    {
      id = "clobber-queue";
      structure = Queue;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        durlin_queue ~policy:Baselines.Fatomic.Clobber ~name:"clobber-queue";
    };
    {
      id = "quadra-map";
      structure = Map;
      expect_ablation = `Breaks;
      expect_faults = `Unsupported;
      build = durlin_map ~policy:Baselines.Fatomic.Quadra ~name:"quadra-map";
    };
    {
      id = "quadra-queue";
      structure = Queue;
      expect_ablation = `Breaks;
      expect_faults = `Unsupported;
      build =
        durlin_queue ~policy:Baselines.Fatomic.Quadra ~name:"quadra-queue";
    };
    {
      id = "soft-map";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build = soft_map;
    };
    {
      id = "friedman-queue";
      structure = Queue;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build = friedman_queue;
    };
    {
      id = "pmthreads-map";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        progress ~name:"pmthreads-map"
          ~builder:
            (Map_builder
               (fun env ->
                 Baselines.Pmthreads.make_map env ~max_threads:2
                   ~period_ns:epoch_period ~flusher_pool:2 ~buckets));
    };
    {
      id = "pmthreads-queue";
      structure = Queue;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        progress ~name:"pmthreads-queue"
          ~builder:
            (Queue_builder
               (fun env ->
                 Baselines.Pmthreads.make_queue env ~max_threads:2
                   ~period_ns:epoch_period ~flusher_pool:2));
    };
    {
      id = "montage-map";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        progress ~name:"montage-map"
          ~builder:
            (Map_builder
               (fun env ->
                 Baselines.Montage.make_map env ~max_threads:2
                   ~period_ns:epoch_period ~flusher_pool:2 ~buckets));
    };
    {
      id = "montage-queue";
      structure = Queue;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        progress ~name:"montage-queue"
          ~builder:
            (Queue_builder
               (fun env ->
                 Baselines.Montage.make_queue env ~max_threads:2
                   ~period_ns:epoch_period ~flusher_pool:2));
    };
    {
      id = "dali-map";
      structure = Map;
      expect_ablation = `Holds;
      expect_faults = `Unsupported;
      build =
        progress ~name:"dali-map"
          ~builder:
            (Map_builder
               (fun env ->
                 Baselines.Dali.make_map env ~max_threads:2
                   ~period_ns:epoch_period ~flusher_pool:2 ~buckets));
    };
  ]

(* The fault dimension's scenario set: integrity-mode worlds recovered
   with the verifying scan (every injected fault must be detected or
   exactly repaired) plus the planted no-verification mutant (injected
   faults must surface as violations — otherwise the fault oracle has no
   teeth). Kept out of [all] so the plain matrix and the ablation check
   are unchanged. *)
let fault_scenarios : entry list =
  [
    {
      id = "respct-map-integrity";
      structure = Map;
      expect_ablation = `Breaks;
      expect_faults = `Detects;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_map ~fault_mode:`Verified ~sched_seed ~mem_seed ~pcso ~n_ops
            ());
    };
    {
      id = "respct-queue-integrity";
      structure = Queue;
      expect_ablation = `Breaks;
      expect_faults = `Detects;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_queue ~fault_mode:`Verified ~sched_seed ~mem_seed ~pcso
            ~n_ops ());
    };
    {
      id = "respct-map-noverify";
      structure = Map;
      expect_ablation = `Breaks;
      expect_faults = `Breaks;
      build =
        (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
          respct_map ~fault_mode:`Noverify ~sched_seed ~mem_seed ~pcso ~n_ops
            ());
    };
  ]

(* Pipelined-checkpointing scenario set, paired with the pipeline check's
   expectation. Kept out of [all] so the smoke matrix and its byte-pinned
   golden are unchanged. Correct pipeline configurations must recover at
   every crash boundary — including crashes taken mid background walk,
   between the commit-slot stores and the epoch-word store, and at the
   first post-advance restart point, all of which the persist-event
   boundary enumeration visits. The planted mutants each break one leg of
   the overlap protocol and must die with a shrunk, replayable
   counterexample:
   - [Seal_before_walk] seals the commit record at handoff, so a crash
     during the walk reports the new epoch durable while epoch-[e] lines
     are still dirty;
   - [No_overlap_wait] lets epoch-[e+1] writers overwrite the single
     backup word of a cell whose epoch-[e] log has not flushed, so
     rollback restores a value from the wrong epoch;
   - [Early_reclaim] releases epoch-[e] freed blocks at handoff, so an
     overlapped allocation recycles a cell that rollback still needs. *)
let pipeline_scenarios : (entry * [ `Holds | `Breaks ]) list =
  [
    ( {
        id = "respct-map-pipeline";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~pipeline:true ~sched_seed ~mem_seed ~pcso ~n_ops ());
      },
      `Holds );
    ( {
        id = "respct-queue-pipeline";
        structure = Queue;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_queue ~pipeline:true ~sched_seed ~mem_seed ~pcso ~n_ops ());
      },
      `Holds );
    ( {
        id = "respct-map-integrity-pipeline";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Detects;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~fault_mode:`Verified ~pipeline:true ~sched_seed
              ~mem_seed ~pcso ~n_ops ());
      },
      `Holds );
    (* The mutant workloads run at twice the preset's op count: the bugs
       they plant only fire inside an overlap window that also contains a
       conflicting re-log (nowait) or a free-then-reuse pair (reclaim),
       and the smoke preset's op counts cross too few epochs to guarantee
       one. Exploration stops at the first violation, so the larger
       workload costs little. *)
    ( {
        id = "respct-map-pipeline-mutant-earlyseal";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~pipeline:true ~mutant:Respct.Runtime.Seal_before_walk
              ~sched_seed ~mem_seed ~pcso ~n_ops:(n_ops * 2) ());
      },
      `Breaks );
    ( {
        id = "respct-map-pipeline-mutant-nowait";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~pipeline:true ~mutant:Respct.Runtime.No_overlap_wait
              ~sched_seed ~mem_seed ~pcso ~n_ops:(n_ops * 2) ());
      },
      `Breaks );
    (* The control for the reclaim mutant below: the correct protocol must
       survive the allocator-churn workload that kills the mutant. *)
    ( {
        id = "respct-map-pipeline-churn";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~pipeline:true ~churn:true ~sched_seed ~mem_seed ~pcso
              ~n_ops ());
      },
      `Holds );
    (* The map, not the queue: a hashmap remove frees a node whose key
       word is plain (written once, WAR-free), so an overlapped reuse
       destroys state that rollback cannot restore. The queue only ever
       frees sentinel nodes, whose observable fields are re-logged on
       reuse — InCLL's own logging heals the premature reclaim there.

       And the churn mix, not the random one: the hazard needs a block
       freed in epoch [e] to be re-allocated inside epoch [e]'s own
       overlap window (an older free is already legally released by then),
       which the random mix essentially never produces — its frees and its
       allocating re-inserts land epochs apart. The churn mix frees on
       every other operation and re-allocates on the next, and free lists
       are LIFO per size class, so nearly every overlap window pops a
       just-staged block. *)
    ( {
        id = "respct-map-pipeline-churn-mutant-earlyreclaim";
        structure = Map;
        expect_ablation = `Breaks;
        expect_faults = `Unsupported;
        build =
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            respct_map ~pipeline:true ~churn:true
              ~mutant:Respct.Runtime.Early_reclaim ~sched_seed ~mem_seed
              ~pcso ~n_ops:(n_ops * 2) ());
      },
      `Breaks );
  ]

let find id =
  List.find_opt
    (fun e -> e.id = id)
    (all @ fault_scenarios @ List.map fst pipeline_scenarios)
