(* The crash explorer: exhaustive crash-point enumeration with adversarial
   persistent-image enumeration per crash point.

   One pilot run fixes the deterministic execution and counts its
   persist-relevant event boundaries (Crashpoint). For every boundary the
   world is re-executed from scratch and crashed exactly there; the set of
   dirty NVMM lines at that instant spans the adversary's degrees of
   freedom — which write-backs the power failure did or did not complete:

   - under PCSO, any subset of dirty lines may have been written back as
     whole-line snapshots; we check the baseline image (no extra
     write-back), each single-line eviction, and the all-lines image;
   - under the word-granular ablation (pcso = false), any subset of dirty
     *words* may have persisted; we check each single-word eviction (the
     minimal reordering InCLL cannot survive) plus the baseline and
     all-lines images. Word images are illegal under PCSO and are never
     generated there — they would report false positives against
     InCLL-based systems;
   - under eADR the cache is in the persistence domain: the post-crash
     image is unique and only the baseline is checked.

   Each image is installed with [reset_to_image] + targeted pokes and
   handed to the scenario's [recover_check], which runs the system's
   recovery procedure and compares the recovered state against its oracle. *)

type instance = {
  mem : Simnvm.Memsys.t;
  run : unit -> unit;  (** build the world's structures and drive the ops *)
  completed : unit -> int;  (** operations fully completed so far *)
  recover_check : unit -> (unit, string) result;
      (** recover the current persistent image and check it against the
          oracle; called once per adversarial image *)
  recover_check_faulty : (unit -> (unit, string) result) option;
      (** oracle for images carrying injected media damage: recovery must
          either restore the exact snapshot or explicitly report the
          damage; [None] falls back to [recover_check] *)
}

type scenario = {
  name : string;
  sched_seed : int;
  mem_seed : int;
  pcso : bool;
  n_ops : int;
  make : n_ops:int -> instance;
}

type variant =
  | Baseline
  | Evict_line of int
  | Evict_word of int
  | Evict_all

type failure = {
  crash_index : int;
  variant : variant;
  fault_seed : int option;
  reason : string;
}

type outcome = {
  scenario : scenario;
  boundaries : int;
  images : int;
  truncated : int;
  failures : failure list;
}

let poke_dirty_words mem lw (dl : Simnvm.Memsys.dirty_line) =
  for off = 0 to lw - 1 do
    if dl.Simnvm.Memsys.mask land (1 lsl off) <> 0 then
      Simnvm.Memsys.poke_persisted mem
        ((dl.Simnvm.Memsys.lineno * lw) + off)
        dl.Simnvm.Memsys.data.(off)
  done

(* Clean words of a dirty line already equal the backing store, so poking
   only the dirty words is exactly a whole-line write-back. *)
let apply_variant mem dirty v =
  let lw = (Simnvm.Memsys.config mem).Simnvm.Memsys.line_words in
  match v with
  | Baseline -> ()
  | Evict_all -> List.iter (poke_dirty_words mem lw) dirty
  | Evict_line lineno ->
      List.iter
        (fun dl ->
          if dl.Simnvm.Memsys.lineno = lineno then poke_dirty_words mem lw dl)
        dirty
  | Evict_word addr ->
      let lineno = addr / lw and off = addr mod lw in
      List.iter
        (fun dl ->
          if dl.Simnvm.Memsys.lineno = lineno then
            Simnvm.Memsys.poke_persisted mem addr dl.Simnvm.Memsys.data.(off))
        dirty

let variants_for ~eadr ~pcso ~line_words ~max_images dirty =
  if eadr then ([ Baseline ], 0)
  else
    let extremes = if dirty = [] then [] else [ Evict_all ] in
    let singles =
      if pcso then
        List.map (fun dl -> Evict_line dl.Simnvm.Memsys.lineno) dirty
      else
        List.concat_map
          (fun dl ->
            List.filter_map
              (fun off ->
                if dl.Simnvm.Memsys.mask land (1 lsl off) <> 0 then
                  Some
                    (Evict_word ((dl.Simnvm.Memsys.lineno * line_words) + off))
                else None)
              (List.init line_words Fun.id))
          dirty
    in
    let all = (Baseline :: singles) @ extremes in
    let total = List.length all in
    if total <= max_images then (all, 0)
    else (List.filteri (fun i _ -> i < max_images) all, total - max_images)

let explore ?(max_images_per_point = 64) ?(stop_at_first_failure = false)
    ?(fault_seeds = []) (s : scenario) =
  let fault_options = None :: List.map Option.some fault_seeds in
  let pilot_inst = s.make ~n_ops:s.n_ops in
  match
    Crashpoint.pilot pilot_inst.mem ~completed:pilot_inst.completed
      pilot_inst.run
  with
  | exception e ->
      {
        scenario = s;
        boundaries = 0;
        images = 0;
        truncated = 0;
        failures =
          [
            {
              crash_index = 0;
              variant = Baseline;
              fault_seed = None;
              reason = "pilot run raised " ^ Printexc.to_string e;
            };
          ];
      }
  | boundaries, completed_at ->
  let failures = ref [] in
  let images = ref 0 in
  let truncated = ref 0 in
  let add f = failures := f :: !failures in
  let stop () = stop_at_first_failure && !failures <> [] in
  let k = ref 0 in
  while (not (stop ())) && !k < boundaries do
    let ck = !k in
    let ik = s.make ~n_ops:s.n_ops in
    let mem = ik.mem in
    (match
       try
         (Crashpoint.run_to mem ~crash_index:ck ik.run
           :> [ `Completed | `Crashed | `Raised of exn ])
       with e -> `Raised e
     with
    | `Raised e ->
        add
          {
            crash_index = ck;
            variant = Baseline;
            fault_seed = None;
            reason = "crash run raised " ^ Printexc.to_string e;
          }
    | `Completed ->
        add
          {
            crash_index = ck;
            variant = Baseline;
            fault_seed = None;
            reason =
              Printf.sprintf
                "re-execution diverged: boundary %d never reached" ck;
          }
    | `Crashed ->
        if ik.completed () <> completed_at.(ck) then
          add
            {
              crash_index = ck;
              variant = Baseline;
              fault_seed = None;
              reason =
                Printf.sprintf
                  "nondeterministic re-execution: %d ops completed, pilot \
                   saw %d"
                  (ik.completed ()) completed_at.(ck);
            }
        else begin
          let cfg = Simnvm.Memsys.config mem in
          let dirty = Simnvm.Memsys.dirty_nvm_lines mem in
          Simnvm.Memsys.crash mem;
          let base = Simnvm.Memsys.image mem in
          let variants, dropped =
            variants_for ~eadr:cfg.Simnvm.Memsys.eadr
              ~pcso:cfg.Simnvm.Memsys.pcso
              ~line_words:cfg.Simnvm.Memsys.line_words
              ~max_images:max_images_per_point dirty
          in
          truncated := !truncated + dropped;
          List.iter
            (fun v ->
              List.iter
                (fun fs ->
                  if not (stop ()) then begin
                    (* reset clears poison / transient state from the
                       previous fault image as well as the pokes *)
                    Simnvm.Memsys.reset_to_image mem base;
                    apply_variant mem dirty v;
                    let check =
                      match fs with
                      | None -> ik.recover_check
                      | Some seed ->
                          Faultplan.apply mem ~base ~dirty
                            (Faultplan.derive ~seed ~crash_index:ck
                               ~line_words:cfg.Simnvm.Memsys.line_words dirty);
                          Option.value ik.recover_check_faulty
                            ~default:ik.recover_check
                    in
                    incr images;
                    match check () with
                    | Ok () -> ()
                    | Error reason ->
                        add
                          {
                            crash_index = ck;
                            variant = v;
                            fault_seed = fs;
                            reason;
                          }
                    | exception e ->
                        add
                          {
                            crash_index = ck;
                            variant = v;
                            fault_seed = fs;
                            reason = "recovery raised " ^ Printexc.to_string e;
                          }
                  end)
                fault_options)
            variants
        end);
    incr k
  done;
  {
    scenario = s;
    boundaries;
    images = !images;
    truncated = !truncated;
    failures = List.rev !failures;
  }

(* Replay a single (crash point, image variant) — the counterexample
   reproduction path of the CLI. *)
let check_point ?fault_seed (s : scenario) ~crash_index ~variant =
  let ik = s.make ~n_ops:s.n_ops in
  match Crashpoint.run_to ik.mem ~crash_index ik.run with
  | `Completed ->
      Error
        (Printf.sprintf "boundary %d never reached (run completed)"
           crash_index)
  | `Crashed -> (
      let dirty = Simnvm.Memsys.dirty_nvm_lines ik.mem in
      Simnvm.Memsys.crash ik.mem;
      let base = Simnvm.Memsys.image ik.mem in
      apply_variant ik.mem dirty variant;
      let check =
        match fault_seed with
        | None -> ik.recover_check
        | Some seed ->
            let lw = (Simnvm.Memsys.config ik.mem).Simnvm.Memsys.line_words in
            Faultplan.apply ik.mem ~base ~dirty
              (Faultplan.derive ~seed ~crash_index ~line_words:lw dirty);
            Option.value ik.recover_check_faulty ~default:ik.recover_check
      in
      match check () with
      | r -> r
      | exception e -> Error ("recovery raised " ^ Printexc.to_string e))
