(** The crash explorer: exhaustive crash-point enumeration with adversarial
    persistent-image enumeration per crash point (tentpole of the crash
    matrix). *)

type instance = {
  mem : Simnvm.Memsys.t;
  run : unit -> unit;
      (** build the structures and drive the operations; everything that
          emits memory events must happen inside this call so the crash
          exception unwinds to the explorer *)
  completed : unit -> int;  (** operations fully completed so far *)
  recover_check : unit -> (unit, string) result;
      (** run the system's recovery on the current persistent image and
          compare against the oracle; invoked once per adversarial image,
          so it must be re-runnable *)
  recover_check_faulty : (unit -> (unit, string) result) option;
      (** oracle for images that additionally carry injected media faults:
          recovery must either restore the exact last-checkpoint snapshot
          or explicitly report the damage — a silently wrong image is the
          violation. [None] falls back to [recover_check] (scenarios whose
          recovery makes no integrity claims). *)
}

type scenario = {
  name : string;
  sched_seed : int;
  mem_seed : int;
  pcso : bool;
  n_ops : int;
  make : n_ops:int -> instance;  (** fresh deterministic world *)
}

type variant =
  | Baseline  (** the image as the crash left it: no extra write-back *)
  | Evict_line of int
      (** one dirty line additionally written back whole (legal under PCSO) *)
  | Evict_word of int
      (** one dirty word additionally persisted alone — word-granular
          hardware; only generated under the pcso = false ablation *)
  | Evict_all  (** every dirty line written back *)

type failure = {
  crash_index : int;
  variant : variant;
  fault_seed : int option;
      (** the media-fault seed layered on the image, if any *)
  reason : string;
}

type outcome = {
  scenario : scenario;
  boundaries : int;  (** persist-relevant event boundaries enumerated *)
  images : int;  (** adversarial images recovered and checked *)
  truncated : int;  (** images dropped by [max_images_per_point] *)
  failures : failure list;
}

val explore :
  ?max_images_per_point:int ->
  ?stop_at_first_failure:bool ->
  ?fault_seeds:int list ->
  scenario ->
  outcome
(** Pilot once, then crash the re-executed world at every boundary and
    check recovery under every adversarial image (default cap: 64 images
    per point, excess counted in [truncated]). Divergence from the pilot
    (a boundary not reached, or a different completed-op count at the
    crash) is itself reported as a failure: the explorer's soundness rests
    on deterministic re-execution.

    Each seed in [fault_seeds] (default none) multiplies the image set:
    every adversarial image is additionally checked with the
    {!Faultplan} derived from (seed, crash index, dirty lines) installed
    on top, against [recover_check_faulty]. *)

val check_point :
  ?fault_seed:int ->
  scenario ->
  crash_index:int ->
  variant:variant ->
  (unit, string) result
(** Replay a single (crash point, image variant, optional fault seed)
    tuple — counterexample reproduction. *)

val apply_variant :
  Simnvm.Memsys.t -> Simnvm.Memsys.dirty_line list -> variant -> unit
(** Install a variant's extra write-backs into the persistent image
    (exposed for the recovery-idempotence tests). *)
