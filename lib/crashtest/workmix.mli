(** Deterministic operation mixes and reference-model prefix states, shared
    by the crash explorer and the QCheck generators in test/common. *)

type map_op =
  | Insert of int * int
  | Remove of int
  | Search of int

type queue_op =
  | Enqueue of int
  | Dequeue

val map_ops : ?key_range:int -> seed:int -> n:int -> unit -> map_op list
(** ~60% inserts, ~25% removes, ~15% searches over [1, key_range]; inserted
    values are unique per index and never 0. Equal seeds give equal lists. *)

val churn_ops : ?keys:int -> n:int -> unit -> map_op list
(** Allocator-churn mix: insert keys [1, keys], then round-robin
    [remove(k); insert(k, fresh)] pairs, so nearly every epoch frees map
    nodes and immediately re-allocates. Deterministic (no seed); prefixes
    of a longer run equal shorter runs, so shrinking stays faithful. *)

val queue_ops : seed:int -> n:int -> unit -> queue_op list
(** ~2/3 enqueues of unique non-zero values, ~1/3 dequeues. *)

val map_states : map_op list -> (int * int) list array
(** [states.(i)]: sorted logical bindings after the first [i] operations
    (length [n + 1], index 0 is the empty map). *)

val queue_states : queue_op list -> int list array
(** [states.(i)]: queue contents front-first after the first [i] operations. *)

val pp_map_op : map_op Fmt.t
val pp_queue_op : queue_op Fmt.t
val pp_bindings : (int * int) list Fmt.t
val pp_contents : int list Fmt.t
