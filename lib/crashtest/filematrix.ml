(* Crash-matrix dimension over Filemem images (ROADMAP item 3 leftover).

   The simulator dimensions enumerate adversarial write-back images from
   the cache model; a Filemem world has no cache model to enumerate, but
   it has the real thing the prockill harness checks statistically: a
   durable file image whose psync is load-bearing. This dimension makes
   that check exhaustive-in-virtual-time and deterministic — a seeded
   multi-threaded workload (hashmap + partitioned InCLL counters, the
   prockill shape) over a Filemem backend, a virtual power cut at a
   chosen instant, then verified recovery held to the same two oracles
   as prockill:

   - no lost sealed epoch: the recovered epoch must be at least the
     largest epoch sealed before the crash;
   - exact snapshot: when the verdict promises a bit-exact image, the
     recovered digest must equal the digest taken at the failed epoch's
     quiescent instant.

   Unlike prockill the crash instant is virtual, so counterexamples
   shrink exactly (no statistical retries) and replay byte-for-byte. The
   planted [Elide_psync] mutant must break — proving the oracles (and
   the journalled write-back they guard) load-bearing. *)

module Sched = Simsched.Scheduler
module Rng = Simnvm.Rng

let nvm_words = 1 lsl 16
let dram_words = 1 lsl 12
let registry_per_slot = 1024
let buckets = 32
let ncounters = 16
let period_ns = 40_000.0

type params = {
  fseed : int;
  fthreads : int;
  fkeyspace : int;
  fops : int;  (* operations per worker *)
  fcrash_us : int;  (* virtual power-cut instant *)
  fmutant : bool;  (* arm Elide_psync after the first checkpoint *)
}

let replay_string p =
  Printf.sprintf "seed=%d;threads=%d;keyspace=%d;ops=%d;crash_us=%d;mutant=%d"
    p.fseed p.fthreads p.fkeyspace p.fops p.fcrash_us
    (if p.fmutant then 1 else 0)

let parse_replay s =
  match
    Scanf.sscanf s "seed=%d;threads=%d;keyspace=%d;ops=%d;crash_us=%d;mutant=%d"
      (fun a b c d e f -> (a, b, c, d, e, f))
  with
  | seed, threads, keyspace, ops, crash_us, mutant ->
      if threads <= 0 || keyspace <= 0 || ops < 0 || crash_us < 0 then None
      else
        Some
          {
            fseed = seed;
            fthreads = threads;
            fkeyspace = keyspace;
            fops = ops;
            fcrash_us = crash_us;
            fmutant = mutant <> 0;
          }
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

type violation =
  | Lost_sealed_epoch of { durable : int; sealed : int }
  | Snapshot_mismatch of { epoch : int; expected : int; got : int }
  | Unrecoverable_image of string
  | Walk_failed of string

let pp_violation ppf = function
  | Lost_sealed_epoch { durable; sealed } ->
      Fmt.pf ppf "lost sealed epoch: durable %d < sealed %d" durable sealed
  | Snapshot_mismatch { epoch; expected; got } ->
      Fmt.pf ppf "snapshot mismatch at epoch %d: expected %x got %x" epoch
        expected got
  | Unrecoverable_image msg -> Fmt.pf ppf "unrecoverable image: %s" msg
  | Walk_failed msg -> Fmt.pf ppf "oracle walk failed: %s" msg

type outcome = {
  fo_params : params;
  fo_crashed : bool;  (* the power cut fired before the workload ended *)
  fo_verdict : string;
  fo_failed_epoch : int;
  fo_sealed_max : int;
  fo_checkpoints : int;
  fo_violations : violation list;
}

let run_trial (p : params) ~dir : outcome =
  let path =
    Filename.concat dir
      (Printf.sprintf "fmx-%d-%d-%d-%d-%d.img" p.fseed p.fthreads p.fops
         p.fcrash_us
         (if p.fmutant then 1 else 0))
  in
  let cfg =
    {
      Filemem.default_config with
      Filemem.nvm_words;
      Filemem.dram_words;
      Filemem.evict_rate = 0.02;
      Filemem.seed = p.fseed;
    }
  in
  let meta =
    {
      Filemem.max_threads = p.fthreads;
      Filemem.registry_per_slot = registry_per_slot;
      Filemem.integrity = true;
    }
  in
  let fm = Filemem.create ~meta cfg ~path in
  let sched = Sched.create ~seed:p.fseed () in
  let env = Simsched.Env.make_backend (Filemem.backend fm) sched in
  let rcfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.period_ns;
      Respct.Runtime.flusher_pool = 2;
      Respct.Runtime.max_threads = p.fthreads;
      Respct.Runtime.registry_per_slot = registry_per_slot;
      Respct.Runtime.integrity = true;
    }
  in
  let rt = Respct.Runtime.create ~cfg:rcfg env in
  let structures = ref None in
  let remaining = ref p.fthreads in
  let checkpoints = ref 0 in
  let sealed_max = ref 0 in
  let digests : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let line_words = cfg.Filemem.line_words in
  ignore
    (Sched.spawn ~name:"fmx-coord" sched (fun () ->
         while Option.is_none !structures do
           Sched.sleep sched 1_000.0
         done;
         let m, cbase = Option.get !structures in
         let heads = Pds.Hashmap_respct.heads m in
         let dig () =
           Prockill.digest_with ~read:(Filemem.persisted fm) ~line_words
             ~fuel:nvm_words ~heads ~buckets ~cbase ~ncounters
         in
         let last = ref 0 in
         let ckpt () =
           Respct.Runtime.run_checkpoint rt ~on_flushed:(fun e ->
               last := e;
               Hashtbl.replace digests e (dig ()));
           incr checkpoints;
           if !last > !sealed_max then sealed_max := !last
         in
         (* one checkpoint before the mutant arms, so every crash lands
            on a steady-state image (the prockill readiness protocol) *)
         ckpt ();
         if p.fmutant then Filemem.arm_mutant fm Filemem.Elide_psync;
         while !remaining > 0 do
           Sched.sleep sched period_ns;
           ckpt ()
         done));
  for w = 0 to p.fthreads - 1 do
    let wseed = p.fseed + (104729 * w) in
    ignore
      (Respct.Runtime.spawn
         ~name:(Printf.sprintf "fmx-w%d" w)
         rt ~slot:w
         (fun _ctx ->
           if w = 0 then begin
             let cbase =
               Respct.Runtime.alloc_incll_array rt ~slot:0 ncounters ~init:0
             in
             let m = Pds.Hashmap_respct.create rt ~slot:0 ~buckets in
             structures := Some (m, cbase)
           end;
           (* no readiness gate: workers must keep passing restart points
              or the coordinator's first checkpoint can never quiesce *)
           while Option.is_none !structures do
             Sched.sleep sched 1_000.0
           done;
           let m, cbase = Option.get !structures in
           let rng = Rng.create wseed in
           for _ = 1 to p.fops do
             (match Rng.int rng 8 with
             | 0 ->
                 ignore
                   (Pds.Hashmap_respct.remove m ~slot:w
                      ~key:(Rng.int rng p.fkeyspace))
             | 1 | 2 ->
                 let k = Rng.int rng (max 1 (ncounters / p.fthreads)) in
                 let idx = (w + (p.fthreads * k)) mod ncounters in
                 let cell = Respct.Heap.cell_at_words ~line_words cbase idx in
                 Respct.Runtime.update rt ~slot:w cell
                   (Respct.Runtime.read rt ~slot:w cell + 1)
             | _ ->
                 ignore
                   (Pds.Hashmap_respct.insert m ~slot:w
                      ~key:(Rng.int rng p.fkeyspace)
                      ~value:(Rng.bits rng land 0xFFFFF)));
             Respct.Runtime.rp rt ~slot:w 1
           done;
           remaining := !remaining - 1))
  done;
  Sched.set_crash_at sched (float_of_int p.fcrash_us *. 1_000.0);
  let crashed =
    match Sched.run sched with
    | Sched.Completed -> false
    | Sched.Crash_interrupt _ -> true
  in
  (* the power cut: volatile mirror dies, the durable image survives *)
  Filemem.crash fm;
  let layout = Prockill.layout_of fm in
  let v =
    Respct.Recovery.run_verified_backend ~layout (Filemem.backend fm)
  in
  let fe = v.Respct.Recovery.vreport.Respct.Recovery.failed_epoch in
  let verdict = Fmt.str "%a" Respct.Recovery.pp_verdict v.Respct.Recovery.verdict in
  let violations = ref [] in
  (match v.Respct.Recovery.verdict with
  | Respct.Recovery.Unrecoverable _ ->
      violations := [ Unrecoverable_image verdict ]
  | _ ->
      if fe < !sealed_max then
        violations :=
          Lost_sealed_epoch { durable = fe; sealed = !sealed_max }
          :: !violations;
      if Respct.Recovery.exact_image v.Respct.Recovery.verdict then (
        match (Hashtbl.find_opt digests fe, !structures) with
        | Some expected, Some (m, cbase) -> (
            match
              Prockill.digest_with ~read:(Filemem.persisted fm) ~line_words
                ~fuel:nvm_words
                ~heads:(Pds.Hashmap_respct.heads m)
                ~buckets ~cbase ~ncounters
            with
            | got ->
                if got <> expected then
                  violations :=
                    Snapshot_mismatch { epoch = fe; expected; got }
                    :: !violations
            | exception Failure msg ->
                violations := Walk_failed msg :: !violations)
        | _ -> ()));
  Filemem.close fm;
  (try Sys.remove path with Sys_error _ -> ());
  {
    fo_params = p;
    fo_crashed = crashed;
    fo_verdict = verdict;
    fo_failed_epoch = fe;
    fo_sealed_max = !sealed_max;
    fo_checkpoints = !checkpoints;
    fo_violations = List.rev !violations;
  }

let violating o = o.fo_violations <> []

(* ------------------------------------------------------------------ *)
(* Exact shrinking: the crash instant is virtual, so a reproduction is
   a pure function of the params — no retries, no statistics. *)

let shrink (p : params) ~dir =
  let better q = if violating (run_trial q ~dir) then Some q else None in
  let p = ref p in
  (* fewer ops per worker first *)
  let continue = ref true in
  while !continue do
    let q = { !p with fops = !p.fops / 2 } in
    if q.fops < 1 then continue := false
    else
      match better q with Some q -> p := q | None -> continue := false
  done;
  (* then fewer threads *)
  let continue = ref true in
  while !continue && !p.fthreads > 1 do
    let q = { !p with fthreads = !p.fthreads - 1 } in
    match better q with Some q -> p := q | None -> continue := false
  done;
  (* then an earlier crash, walking down in checkpoint-period steps *)
  let continue = ref true in
  while !continue && !p.fcrash_us > 50 do
    let q = { !p with fcrash_us = !p.fcrash_us - 40 } in
    match better q with Some q -> p := q | None -> continue := false
  done;
  !p

(* ------------------------------------------------------------------ *)
(* The check: clean worlds must pass every grid point, the planted
   psync-elision mutant must be caught (with an exact, replayable
   counterexample), and the replay string must round-trip. *)

let grid (preset : Matrix.preset) =
  let crash_points =
    (* straddle several checkpoint boundaries: the first checkpoint ends
       near 40us, so walk from mid-steady-state outward *)
    match preset.Matrix.label with
    | "deep" -> [ 55; 70; 90; 110; 135; 160; 190; 230; 280 ]
    | _ -> [ 60; 95; 140; 200 ]
  in
  List.concat_map
    (fun (sched_seed, mem_seed) ->
      List.concat_map
        (fun crash_us ->
          [
            {
              fseed = sched_seed + (1_000_003 * mem_seed);
              fthreads = 2;
              fkeyspace = 96;
              fops = preset.Matrix.map_ops * 20;
              fcrash_us = crash_us;
              fmutant = false;
            };
          ])
        crash_points)
    preset.Matrix.seeds

let check ?dir (preset : Matrix.preset) ppf =
  let dir =
    match dir with
    | Some d -> d
    | None ->
        let base =
          if Sys.file_exists "/dev/shm" then "/dev/shm"
          else Filename.get_temp_dir_name ()
        in
        let rec go i =
          let d =
            Filename.concat base
              (Printf.sprintf "respct-fmx-%d-%d" (Unix.getpid ()) i)
          in
          match Unix.mkdir d 0o700 with
          | () -> d
          | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
        in
        go 0
  in
  let ok = ref true in
  (* direction 1: clean worlds pass everywhere *)
  List.iter
    (fun p ->
      let o = run_trial p ~dir in
      if violating o then begin
        ok := false;
        Fmt.pf ppf "filemem %-42s FAIL (%a)@." (replay_string p)
          Fmt.(list ~sep:comma pp_violation)
          o.fo_violations
      end
      else
        Fmt.pf ppf "filemem %-42s ok (%s, epoch %d, %d ckpts)@."
          (replay_string p) o.fo_verdict o.fo_failed_epoch o.fo_checkpoints)
    (grid preset);
  (* direction 2: the planted mutant must break somewhere on the grid *)
  let caught = ref None in
  List.iter
    (fun p ->
      if !caught = None then begin
        let p = { p with fmutant = true } in
        let o = run_trial p ~dir in
        if violating o then caught := Some (p, o)
      end)
    (grid preset);
  (match !caught with
  | None ->
      ok := false;
      Fmt.pf ppf "filemem mutant Elide_psync NOT caught — oracles toothless@."
  | Some (p, o) ->
      let s = shrink p ~dir in
      let so = run_trial s ~dir in
      Fmt.pf ppf "filemem mutant caught (%a); shrunk to %s (%a)@."
        Fmt.(list ~sep:comma pp_violation)
        o.fo_violations (replay_string s)
        Fmt.(list ~sep:comma pp_violation)
        so.fo_violations;
      (* replay parity: the printed string must reproduce exactly *)
      (match parse_replay (replay_string s) with
      | Some s' when s' = s ->
          if not (violating (run_trial s' ~dir)) then begin
            ok := false;
            Fmt.pf ppf "filemem replay of shrunk counterexample LOST the \
                        violation@."
          end
      | _ ->
          ok := false;
          Fmt.pf ppf "filemem replay string does not round-trip@."));
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  !ok

let replay s ~dir =
  match parse_replay s with
  | None -> Error (Printf.sprintf "cannot parse %S" s)
  | Some p -> Ok (p, run_trial p ~dir)
