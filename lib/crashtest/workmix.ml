(* Deterministic operation mixes shared by the crash explorer and the
   property tests (test/common/gen_common.ml wraps these for QCheck).

   Values are unique per index and never 0 (0 is the simulator's
   freshly-zeroed word), so a stale or torn value is always
   distinguishable from a legitimate one. *)

type map_op =
  | Insert of int * int
  | Remove of int
  | Search of int

type queue_op =
  | Enqueue of int
  | Dequeue

let map_ops ?(key_range = 13) ~seed ~n () =
  let rng = Simnvm.Rng.create seed in
  List.init n (fun i ->
      let key = 1 + Simnvm.Rng.int rng key_range in
      match Simnvm.Rng.int rng 8 with
      | 0 | 1 -> Remove key
      | 2 -> Search key
      | _ -> Insert (key, 100 + i))

(* Allocator-churn mix: fill a small key set, then round-robin
   remove(k); insert(k, fresh) pairs. Every epoch frees map nodes and the
   very next operation re-allocates one, so an allocator that recycles a
   block before the freeing epoch has sealed is exercised on almost every
   checkpoint overlap window (free lists are LIFO per size class, so the
   newest free is popped first). *)
let churn_ops ?(keys = 8) ~n () =
  List.init n (fun i ->
      if i < keys then Insert (1 + i, 100 + i)
      else
        let j = i - keys in
        let key = 1 + (j / 2 mod keys) in
        if j mod 2 = 0 then Remove key else Insert (key, 100 + i))

let queue_ops ~seed ~n () =
  let rng = Simnvm.Rng.create seed in
  List.init n (fun i ->
      if Simnvm.Rng.int rng 3 = 0 then Dequeue else Enqueue (100 + i))

(* Reference-model states after each prefix: [states.(i)] is the logical
   state once the first [i] operations have completed. *)

let map_states ops =
  let n = List.length ops in
  let states = Array.make (n + 1) [] in
  let model = Hashtbl.create 16 in
  List.iteri
    (fun i op ->
      (match op with
      | Insert (k, v) -> Hashtbl.replace model k v
      | Remove k -> Hashtbl.remove model k
      | Search _ -> ());
      states.(i + 1) <-
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))
    ops;
  states

let queue_states ops =
  let n = List.length ops in
  let states = Array.make (n + 1) [] in
  let q = ref [] in
  List.iteri
    (fun i op ->
      (match op with
      | Enqueue v -> q := !q @ [ v ]
      | Dequeue -> ( match !q with [] -> () | _ :: tl -> q := tl));
      states.(i + 1) <- !q)
    ops;
  states

let pp_map_op ppf = function
  | Insert (k, v) -> Fmt.pf ppf "insert(%d,%d)" k v
  | Remove k -> Fmt.pf ppf "remove(%d)" k
  | Search k -> Fmt.pf ppf "search(%d)" k

let pp_queue_op ppf = function
  | Enqueue v -> Fmt.pf ppf "enqueue(%d)" v
  | Dequeue -> Fmt.pf ppf "dequeue"

let pp_bindings ppf bs =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%d->%d" k v))
    bs

let pp_contents ppf vs = Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.comma Fmt.int) vs
