(** Crash-test scenarios: one deterministic world per (system, structure)
    pair, each with the strongest oracle its persistence contract supports
    — last-checkpoint for ResPCT, durable linearizability for the
    flush-per-operation baselines, progress/determinism for the buffered
    epoch systems. *)

val mem_cfg : mem_seed:int -> pcso:bool -> Simnvm.Memsys.config
(** The small deterministic world every scenario runs in (64 Ki NVMM
    words, no spontaneous evictions — the explorer enumerates the
    eviction adversary itself). *)

val rt_cfg : Respct.Runtime.config
(** ResPCT runtime config of the crash scenarios: 3 µs checkpoint period,
    so short runs cross several epochs. *)

val rt_cfg_integrity : Respct.Runtime.config
(** [rt_cfg] with {!Respct.Runtime.config.integrity} on: epoch words,
    registry entries and checkpoint commits carry {!Respct.Checksum}
    seals. *)

type respct_fault_mode = [ `Off | `Verified | `Noverify ]
(** Recovery flavour of the ResPCT scenarios: plain image + trusting scan,
    integrity image + {!Respct.Recovery.run_verified} (the fault oracle's
    "detected or exact" contract), or the planted mutant — integrity image
    recovered by the trusting scan, which injected faults must expose. *)

val respct_map :
  ?fault_mode:respct_fault_mode ->
  ?pipeline:bool ->
  ?churn:bool ->
  ?mutant:Respct.Runtime.mutant ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  unit ->
  Explore.scenario
(** [~pipeline:true] switches on {!Respct.Runtime.config.pipeline}
    (asynchronous epoch advance with double-buffered commits);
    [~churn:true] drives the map with {!Workmix.churn_ops} (tight
    remove/re-insert cycles that stress staged heap reclamation);
    [?mutant] plants one of the pipeline protocol mutants via
    {!Respct.Runtime.set_mutant}. *)

val respct_queue :
  ?fault_mode:respct_fault_mode ->
  ?pipeline:bool ->
  ?mutant:Respct.Runtime.mutant ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  unit ->
  Explore.scenario

val respct_raw :
  ?mutant:bool ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  unit ->
  Explore.scenario
(** Raw-word append log over [alloc_raw] + [add_modified]. With
    [~mutant:true] every third word deliberately skips [add_modified]; the
    last-checkpoint oracle must catch the stale word. *)

val durlin_map :
  policy:Baselines.Fatomic.policy ->
  name:string ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  Explore.scenario

val durlin_queue :
  policy:Baselines.Fatomic.policy ->
  name:string ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  Explore.scenario

val soft_map :
  sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int -> Explore.scenario

val friedman_queue :
  sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int -> Explore.scenario

val soft_matches : (int * int) list -> (int * int) list -> bool
(** Whether the valid-pnode multiset can reduce to the given state under
    some per-key choice (exposed for tests). *)

type structure = Map | Queue

type entry = {
  id : string;
  structure : structure;
  expect_ablation : [ `Breaks | `Holds ];
      (** whether the word-granular write-back ablation must produce
          violations for this system (the PCSO-reliance asymmetry) *)
  expect_faults : [ `Detects | `Breaks | `Unsupported ];
      (** under injected media faults: [`Detects] — every fault must be
          detected or exactly repaired (zero violations), [`Breaks] — the
          planted mutant must produce violations, [`Unsupported] — the
          system makes no integrity claims and is not run in the fault
          dimension *)
  build :
    sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int ->
    Explore.scenario;
}

val all : entry list
(** ResPCT and every baseline, over both structures where applicable. *)

val fault_scenarios : entry list
(** The fault dimension's set: the integrity-mode ResPCT worlds plus the
    no-verification mutant; disjoint from [all] so the plain matrix is
    unchanged. *)

val pipeline_scenarios : (entry * [ `Holds | `Breaks ]) list
(** The pipelined-checkpointing dimension: ResPCT worlds with
    {!Respct.Runtime.config.pipeline} on (plain and integrity-mode), each
    paired with the pipeline check's expectation, plus the three planted
    protocol mutants ([Seal_before_walk], [No_overlap_wait],
    [Early_reclaim]) that must produce violations. Disjoint from [all] so
    the smoke matrix is unchanged. *)

val find : string -> entry option
(** Looks through [all], [fault_scenarios] and [pipeline_scenarios]. *)
