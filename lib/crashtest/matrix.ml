(* The crash matrix: every scenario × every crash boundary × every
   adversarial image, plus the schedule sweeps, behind two presets.

   [run] is the correctness gate (zero violations expected everywhere);
   [ablation_check] flips the world to word-granular write-back and
   checks the *asymmetry*: systems whose recovery leans on PCSO's
   same-line store ordering (ResPCT's InCLL, Quadra's in-line logging)
   must break, systems that persist each datum with explicit flushes
   before depending on it (Clobber's write-ahead undo log, SOFT's
   validity-tagged pnodes, FriedmanQueue) must keep passing. A matrix
   where everything passes under the ablation would mean the explorer
   cannot see persist-order bugs at all. *)

type preset = {
  label : string;
  map_ops : int;
  queue_ops : int;
  seeds : (int * int) list;  (** (sched_seed, mem_seed) pairs *)
  max_images : int;
  sched_seeds : int list;
  sched_delays : float list;
  sched_stride : int;
  fault_seeds : int list;
}

let smoke =
  {
    label = "smoke";
    map_ops = 18;
    queue_ops = 14;
    seeds = [ (1, 1) ];
    max_images = 48;
    sched_seeds = [ 1; 2 ];
    sched_delays = [ 400.0 ];
    sched_stride = 7;
    fault_seeds = [ 7 ];
  }

let deep =
  {
    label = "deep";
    map_ops = 40;
    queue_ops = 32;
    seeds = [ (1, 1); (2, 3); (5, 7) ];
    max_images = 160;
    sched_seeds = [ 1; 2; 3; 4; 5; 6 ];
    sched_delays = [ 150.0; 1200.0 ];
    sched_stride = 3;
    fault_seeds = [ 7; 23 ];
  }

let n_ops_for p = function
  | Scenarios.Map -> p.map_ops
  | Scenarios.Queue -> p.queue_ops

let filtered ?filter pool =
  match filter with
  | None -> pool
  | Some f ->
      List.filter
        (fun (e : Scenarios.entry) ->
          let len = String.length f in
          String.length e.Scenarios.id >= len
          && (String.sub e.Scenarios.id 0 len = f || e.Scenarios.id = f))
        pool

let entries ?filter () = filtered ?filter Scenarios.all
let fault_entries ?filter () = filtered ?filter Scenarios.fault_scenarios

let explore_entry ~pcso ~p (e : Scenarios.entry) =
  List.map
    (fun (sched_seed, mem_seed) ->
      let n_ops = n_ops_for p e.Scenarios.structure in
      let sc = e.Scenarios.build ~sched_seed ~mem_seed ~pcso ~n_ops in
      Explore.explore ~max_images_per_point:p.max_images sc)
    p.seeds

let shrunk ?fault_seeds ~pcso (e : Scenarios.entry) (o : Explore.outcome) =
  match o.Explore.failures with
  | [] -> None
  | f :: _ ->
      let s = o.Explore.scenario in
      let rebuild ~n_ops =
        e.Scenarios.build ~sched_seed:s.Explore.sched_seed
          ~mem_seed:s.Explore.mem_seed ~pcso ~n_ops
      in
      Some (Shrink.minimize ?fault_seeds ~rebuild ~n_ops:s.Explore.n_ops f)

let run ?(pcso = true) ?filter ?(schedules = true) p ppf =
  Fmt.pf ppf "crash matrix (%s, %s)@."
    p.label
    (if pcso then "PCSO" else "word-granular ablation");
  let violations = ref 0 in
  List.iter
    (fun (e : Scenarios.entry) ->
      List.iter
        (fun (o : Explore.outcome) ->
          Fmt.pf ppf "  %a@." Report.pp_outcome o;
          if o.Explore.failures <> [] then begin
            violations := !violations + List.length o.Explore.failures;
            List.iteri
              (fun i f ->
                if i < 3 then Fmt.pf ppf "    %a@." Report.pp_failure f)
              o.Explore.failures;
            match shrunk ~pcso e o with
            | None -> ()
            | Some c -> Fmt.pf ppf "    %a@." Report.pp_counterexample c
          end)
        (explore_entry ~pcso ~p e))
    (entries ?filter ());
  let sched_failures =
    if not schedules then []
    else
      List.concat_map
        (fun spec ->
          Schedule.sweep spec ~seeds:p.sched_seeds ~delays:p.sched_delays
            ~stride:p.sched_stride)
        Schedule.all_specs
  in
  if schedules then
    Fmt.pf ppf "  schedule sweeps: %d specs, %s@."
      (List.length Schedule.all_specs)
      (match sched_failures with
      | [] -> "ok"
      | fs -> Printf.sprintf "FAIL (%d)" (List.length fs));
  List.iter (fun f -> Fmt.pf ppf "    %a@." Schedule.pp_failure f) sched_failures;
  let ok = !violations = 0 && sched_failures = [] in
  Fmt.pf ppf "crash matrix %s: %s@." p.label
    (if ok then "PASS"
     else
       Printf.sprintf "FAIL (%d crash violations, %d schedule failures)"
         !violations
         (List.length sched_failures));
  ok

let ablation_check ?filter p ppf =
  Fmt.pf ppf "ablation asymmetry check (%s): word-granular write-back@."
    p.label;
  let ok = ref true in
  List.iter
    (fun (e : Scenarios.entry) ->
      let sched_seed, mem_seed = List.hd p.seeds in
      let n_ops = n_ops_for p e.Scenarios.structure in
      let sc = e.Scenarios.build ~sched_seed ~mem_seed ~pcso:false ~n_ops in
      (* A first failure settles the verdict for systems expected to
         break; only the ones expected to hold need the full sweep. *)
      let o =
        Explore.explore ~max_images_per_point:p.max_images
          ~stop_at_first_failure:(e.Scenarios.expect_ablation = `Breaks)
          sc
      in
      let broke = o.Explore.failures <> [] in
      let expected = e.Scenarios.expect_ablation = `Breaks in
      let verdict =
        match (broke, expected) with
        | true, true -> "breaks (expected: relies on PCSO)"
        | false, false -> "holds (expected: explicit flush ordering)"
        | true, false ->
            ok := false;
            "UNEXPECTED BREAK"
        | false, true ->
            ok := false;
            "UNEXPECTEDLY HOLDS (explorer lost its teeth?)"
      in
      Fmt.pf ppf "  %-18s boundaries=%-5d images=%-5d %s@." e.Scenarios.id
        o.Explore.boundaries o.Explore.images verdict;
      if broke then begin
        (match o.Explore.failures with
        | f :: _ -> Fmt.pf ppf "    first: %a@." Report.pp_failure f
        | [] -> ());
        if expected then
          match shrunk ~pcso:false e o with
          | None -> ()
          | Some c -> Fmt.pf ppf "    %a@." Report.pp_counterexample c
      end)
    (entries ?filter ());
  Fmt.pf ppf "ablation asymmetry: %s@." (if !ok then "PASS" else "FAIL");
  !ok

(* The fault-injection gate, in both directions. Integrity-mode worlds
   must survive every (crash image x fault plan): recovery either proves
   the exact snapshot or explicitly reports the damage. The planted
   no-verification mutant must *fail* under the same plans — if silent
   corruption sails through the trusting scan unnoticed by the oracle,
   the fault dimension has no teeth. Mutant counterexamples are shrunk
   and replayed like any other. *)
let faults_check ?filter p ppf =
  Fmt.pf ppf "fault-injection check (%s): seeds [%s]@." p.label
    (String.concat "; " (List.map string_of_int p.fault_seeds));
  let ok = ref true in
  List.iter
    (fun (e : Scenarios.entry) ->
      let sched_seed, mem_seed = List.hd p.seeds in
      let n_ops = n_ops_for p e.Scenarios.structure in
      let sc = e.Scenarios.build ~sched_seed ~mem_seed ~pcso:true ~n_ops in
      let o =
        Explore.explore ~max_images_per_point:p.max_images
          ~stop_at_first_failure:(e.Scenarios.expect_faults = `Breaks)
          ~fault_seeds:p.fault_seeds sc
      in
      let broke = o.Explore.failures <> [] in
      let expected = e.Scenarios.expect_faults = `Breaks in
      let verdict =
        match (broke, expected) with
        | false, false -> "detects (every fault detected or exactly repaired)"
        | true, true -> "breaks (expected: recovery skips verification)"
        | true, false ->
            ok := false;
            "SILENT CORRUPTION ESCAPED"
        | false, true ->
            ok := false;
            "MUTANT UNDETECTED (fault oracle lost its teeth?)"
      in
      Fmt.pf ppf "  %-24s boundaries=%-5d images=%-5d %s@." e.Scenarios.id
        o.Explore.boundaries o.Explore.images verdict;
      if broke then begin
        (match o.Explore.failures with
        | f :: _ -> Fmt.pf ppf "    first: %a@." Report.pp_failure f
        | [] -> ());
        if expected then
          match shrunk ~fault_seeds:p.fault_seeds ~pcso:true e o with
          | None -> ()
          | Some c -> (
              Fmt.pf ppf "    %a@." Report.pp_counterexample c;
              let rebuild ~n_ops =
                e.Scenarios.build ~sched_seed ~mem_seed ~pcso:true ~n_ops
              in
              match Shrink.replay c ~rebuild with
              | Error _ -> ()
              | Ok () ->
                  ok := false;
                  Fmt.pf ppf "    REPLAY DID NOT REPRODUCE@.")
      end)
    (fault_entries ?filter ());
  Fmt.pf ppf "fault injection: %s@." (if !ok then "PASS" else "FAIL");
  !ok

(* The pipelined-checkpointing gate, in both directions. Correct pipeline
   configurations (async epoch advance + double-buffered commits) must
   recover at every crash boundary — the boundary enumeration includes
   every pwb of the background walk, the commit-slot stores and the
   post-advance restart points, so the mid-overlap windows are visited
   exhaustively. The integrity-mode entry additionally replays the
   preset's media-fault plans against the two-slot commit protocol. The
   three planted protocol mutants must *fail*, and their counterexamples
   must shrink and replay — otherwise the overlap oracles have no teeth.
   The pipelined schedule sweep (preemption injection inside the overlap
   window) closes the check. *)
let pipeline_check ?filter p ppf =
  Fmt.pf ppf "pipelined checkpointing check (%s)@." p.label;
  let ok = ref true in
  let pool =
    List.filter
      (fun (e, _) -> filtered ?filter [ e ] <> [])
      Scenarios.pipeline_scenarios
  in
  List.iter
    (fun ((e : Scenarios.entry), expect) ->
      let sched_seed, mem_seed = List.hd p.seeds in
      let n_ops = n_ops_for p e.Scenarios.structure in
      let sc = e.Scenarios.build ~sched_seed ~mem_seed ~pcso:true ~n_ops in
      let fault_seeds =
        if e.Scenarios.expect_faults = `Detects then p.fault_seeds else []
      in
      let o =
        Explore.explore ~max_images_per_point:p.max_images
          ~stop_at_first_failure:(expect = `Breaks)
          ~fault_seeds sc
      in
      let broke = o.Explore.failures <> [] in
      let expected = expect = `Breaks in
      let verdict =
        match (broke, expected) with
        | false, false -> "holds (recovers at every mid-overlap boundary)"
        | true, true -> "breaks (expected: planted overlap-protocol mutant)"
        | true, false ->
            ok := false;
            "OVERLAP UNSAFE"
        | false, true ->
            ok := false;
            "MUTANT UNDETECTED (overlap oracle lost its teeth?)"
      in
      Fmt.pf ppf "  %-40s boundaries=%-5d images=%-5d %s@." e.Scenarios.id
        o.Explore.boundaries o.Explore.images verdict;
      if broke then begin
        (match o.Explore.failures with
        | f :: _ -> Fmt.pf ppf "    first: %a@." Report.pp_failure f
        | [] -> ());
        if expected then
          match
            shrunk
              ?fault_seeds:
                (if fault_seeds = [] then None else Some fault_seeds)
              ~pcso:true e o
          with
          | None -> ()
          | Some c -> (
              Fmt.pf ppf "    %a@." Report.pp_counterexample c;
              let rebuild ~n_ops =
                e.Scenarios.build ~sched_seed ~mem_seed ~pcso:true ~n_ops
              in
              match Shrink.replay c ~rebuild with
              | Error _ -> ()
              | Ok () ->
                  ok := false;
                  Fmt.pf ppf "    REPLAY DID NOT REPRODUCE@.")
      end)
    pool;
  let sched_failures =
    List.concat_map
      (fun spec ->
        Schedule.sweep spec ~seeds:p.sched_seeds ~delays:p.sched_delays
          ~stride:p.sched_stride)
      Schedule.pipeline_specs
  in
  Fmt.pf ppf "  pipeline schedule sweeps: %d specs, %s@."
    (List.length Schedule.pipeline_specs)
    (match sched_failures with
    | [] -> "ok"
    | fs -> Printf.sprintf "FAIL (%d)" (List.length fs));
  List.iter
    (fun f -> Fmt.pf ppf "    %a@." Schedule.pp_failure f)
    sched_failures;
  if sched_failures <> [] then ok := false;
  Fmt.pf ppf "pipelined checkpointing: %s@." (if !ok then "PASS" else "FAIL");
  !ok
