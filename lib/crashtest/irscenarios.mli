(** Crash scenarios for statically analysed IR programs.

    The bridge between {!Analysis.Placement}'s inferred instrumentation
    plans and the explorer: each corpus program is instrumented exactly
    as its plan says (via {!Analysis.Exec.sim_world}) and held to the
    last-checkpoint durability oracle, so "the static analyzer's plan
    survives crash exploration" is a checked property. [strip_log]
    plants the one-logging-site-removed mutant the lint must also
    reject. These scenarios live outside {!Scenarios.all} so the matrix
    goldens stay pinned; the CLI's [--replay] resolves them through
    {!find}. *)

val scenario :
  ?strip_log:Analysis.Ir.var list ->
  name:string ->
  sched_seed:int ->
  mem_seed:int ->
  pcso:bool ->
  n_ops:int ->
  (iters:int -> Analysis.Ir.program) ->
  Explore.scenario

val corpus :
  ?sched_seed:int ->
  ?mem_seed:int ->
  ?pcso:bool ->
  ?n_ops:int ->
  unit ->
  (string * Explore.scenario) list
(** For every {!Analysis.Corpus} program: ["ir-<name>"] under its
    inferred plan and ["ir-<name>-striplog"] with the alphabetically
    first logged variable stripped. *)

val find :
  string ->
  (sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int ->
   Explore.scenario)
  option
(** Resolve a [corpus] id (as printed in replay lines) to its builder. *)

type verdict = {
  plan_ok : bool;
  plan_failures : Explore.failure list;
  mutant_caught_static : bool;  (** lint flags [War_missing_logging] *)
  mutant_counterexample : Shrink.counterexample option;
      (** shrunk dynamic counterexample; [None] means the mutant
          survived exploration *)
}

val check_program :
  ?sched_seed:int ->
  ?mem_seed:int ->
  ?pcso:bool ->
  ?n_ops:int ->
  ?name:string ->
  (iters:int -> Analysis.Ir.program) ->
  verdict
(** The both-directions gate: the inferred plan must survive
    exploration and the stripped mutant must be caught both statically
    and dynamically. *)
