(* Bounded schedule exploration: seed sweeps plus targeted preemption
   injection at synchronisation trace events.

   A sweep runs each scenario under several scheduler seeds (with charge
   jitter, so seeds genuinely permute interleavings) and, per seed, once
   per targeted synchronisation point: a subscriber on the world's
   [Trace] bus counts lock acquisitions and atomic RMWs and, at the n-th
   one, charges a delay to the running thread and forces it to switch out
   at its next poll ([Scheduler.preempt_now]) — exactly the "adversary
   preempts you inside your critical window" schedules a seed sweep is
   unlikely to hit. A [Deadlock] from the scheduler is a failure like any
   assertion: lost-wakeup and lock-order bugs surface here. *)

type injection = { at_sync : int; delay_ns : float }

(* Count Acquire/Rmw events; fire the injection at the chosen one. The
   subscription is detached on every exit path. *)
let with_injection sched inj f =
  match inj with
  | None ->
      let n = ref 0 in
      let bus = Simsched.Scheduler.trace_bus sched in
      let sub =
        Simsched.Trace.subscribe bus (fun ev ->
            match ev with
            | Simsched.Trace.Acquire _ | Simsched.Trace.Rmw _ -> incr n
            | _ -> ())
      in
      Fun.protect
        ~finally:(fun () -> Simsched.Trace.unsubscribe bus sub)
        (fun () ->
          let r = f () in
          (r, !n))
  | Some { at_sync; delay_ns } ->
      let n = ref 0 in
      let bus = Simsched.Scheduler.trace_bus sched in
      let sub =
        Simsched.Trace.subscribe bus (fun ev ->
            match ev with
            | Simsched.Trace.Acquire _ | Simsched.Trace.Rmw _ ->
                if !n = at_sync then begin
                  Simsched.Scheduler.charge sched delay_ns;
                  Simsched.Scheduler.preempt_now sched
                end;
                incr n
            | _ -> ())
      in
      Fun.protect
        ~finally:(fun () -> Simsched.Trace.unsubscribe bus sub)
        (fun () ->
          let r = f () in
          (r, !n))

type spec = {
  name : string;
  run :
    sched_seed:int -> injection option -> (unit, string) result * int;
      (** result and the number of sync points seen *)
}

type failure = {
  spec : string;
  sched_seed : int;
  injection : injection option;
  reason : string;
}

let pp_failure ppf f =
  Fmt.pf ppf "%s: seed=%d%s: %s" f.spec f.sched_seed
    (match f.injection with
    | None -> ""
    | Some i ->
        Printf.sprintf " preempt@sync=%d delay=%.0fns" i.at_sync i.delay_ns)
    f.reason

let sweep (s : spec) ~seeds ~delays ~stride =
  List.concat_map
    (fun sched_seed ->
      let base, syncs = s.run ~sched_seed None in
      let base_failures =
        match base with
        | Ok () -> []
        | Error reason -> [ { spec = s.name; sched_seed; injection = None; reason } ]
      in
      let rec targets at acc =
        if at >= syncs then List.rev acc else targets (at + stride) (at :: acc)
      in
      let injected =
        List.concat_map
          (fun at_sync ->
            List.filter_map
              (fun delay_ns ->
                let inj = { at_sync; delay_ns } in
                match fst (s.run ~sched_seed (Some inj)) with
                | Ok () -> None
                | Error reason ->
                    Some
                      { spec = s.name; sched_seed; injection = Some inj; reason })
              delays)
          (targets 0 [])
      in
      base_failures @ injected)
    seeds

(* ------------------------------------------------------------------ *)
(* Scenario 1: transient lock-based queue on NVMM, two producers. The
   per-producer FIFO order and the completeness of the drained multiset
   must survive any interleaving the injector forces. *)

let jitter = 0.02
let per_producer = 12

(* Virtual-time bounded wait: a plain yield-spin would keep the waiter
   runnable forever and mask a deadlock among the watched threads from
   both the scheduler's detector and the host. Returns [false] on
   timeout — the waiter-side symptom of a stuck schedule. *)
let wait_until sched ~deadline cond =
  while (not (cond ())) && Simsched.Scheduler.now sched < deadline do
    Simsched.Scheduler.sleep sched 200.0
  done;
  cond ()

let transient_queue_spec : spec =
  let run ~sched_seed inj =
    let mem = Simnvm.Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
    let sched =
      Simsched.Scheduler.create ~seed:sched_seed ~quantum:0.0 ~jitter ()
    in
    let env = Simsched.Env.make mem sched in
    with_injection sched inj (fun () ->
        let lw = (Simnvm.Memsys.config mem).Simnvm.Memsys.line_words in
        let arena =
          Pds.Mem_iface.of_env_bump env
            (Pds.Bump.create env ~base:lw
               ~limit:(Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words)
        in
        let q = ref None in
        let done_producers = ref 0 in
        let drained = ref [] in
        ignore
          (Simsched.Scheduler.spawn ~name:"setup" sched (fun () ->
               let queue = Pds.Queue_transient.create env arena in
               q := Some queue;
               for p = 0 to 1 do
                 ignore
                   (Simsched.Scheduler.spawn
                      ~name:(Printf.sprintf "enq%d" p)
                      sched
                      (fun () ->
                        for i = 1 to per_producer do
                          Pds.Queue_transient.enqueue queue ~slot:p
                            (((p + 1) * 10_000) + i)
                        done;
                        incr done_producers))
               done;
               ignore
                 (Simsched.Scheduler.spawn ~name:"drain" sched (fun () ->
                      if
                        wait_until sched ~deadline:5.0e6 (fun () ->
                            !done_producers >= 2)
                      then
                        let rec pull () =
                          match Pds.Queue_transient.dequeue queue ~slot:2 with
                          | Some v ->
                              drained := v :: !drained;
                              pull ()
                          | None -> ()
                        in
                        pull ()))));
        match Simsched.Scheduler.run sched with
        | exception Simsched.Scheduler.Deadlock d -> Error ("deadlock: " ^ d)
        | Simsched.Scheduler.Crash_interrupt _ -> Error "unexpected crash"
        | Simsched.Scheduler.Completed ->
            let out = List.rev !drained in
            let per p = List.filter (fun v -> v / 10_000 = p + 1) out in
            let increasing l = List.sort compare l = l in
            if List.length out <> 2 * per_producer then
              Error
                (Printf.sprintf "drained %d of %d values" (List.length out)
                   (2 * per_producer))
            else if not (increasing (per 0) && increasing (per 1)) then
              Error "per-producer FIFO order violated"
            else Ok ())
  in
  { name = "transient-queue-2p"; run }

(* Scenario 2: ResPCT map, two workers on disjoint key ranges with
   restart points and a periodic checkpoint coordinator; after the
   workers exit, a checker thread validates the volatile contents against
   the per-worker models. Deadlocks between [rp] parking and the
   coordinator's quiescence wait are the target bug class. *)

let respct_map_spec_with ~name ~cfg : spec =
  let run ~sched_seed inj =
    let mem = Simnvm.Memsys.create (Scenarios.mem_cfg ~mem_seed:1 ~pcso:true) in
    let sched =
      Simsched.Scheduler.create ~seed:sched_seed ~quantum:0.0 ~jitter ()
    in
    let env = Simsched.Env.make mem sched in
    with_injection sched inj (fun () ->
        let r = Respct.Runtime.create ~cfg env in
        let finished = ref false in
        let done_workers = ref 0 in
        let models = [| Hashtbl.create 16; Hashtbl.create 16 |] in
        let errors = ref [] in
        ignore
          (Simsched.Scheduler.spawn ~name:"setup" sched (fun () ->
               let m = Pds.Hashmap_respct.create r ~slot:0 ~buckets:8 in
               ignore
                 (Simsched.Scheduler.spawn ~name:"ckpt" sched (fun () ->
                      (* bounded like the waiters: an unbounded periodic
                         loop would keep the world runnable forever and
                         mask a worker deadlock *)
                      let rec loop at =
                        if (not !finished) && at < 5.0e6 then begin
                          Simsched.Scheduler.sleep_until sched at;
                          if not !finished then begin
                            Respct.Runtime.run_checkpoint r;
                            loop (at +. 3_000.0)
                          end
                        end
                      in
                      loop 3_000.0));
               for w = 0 to 1 do
                 ignore
                   (Respct.Runtime.spawn r ~slot:w (fun _ctx ->
                        List.iter
                          (fun op ->
                            (match op with
                            | Workmix.Insert (key, value) ->
                                let key = (w * 100) + key in
                                ignore
                                  (Pds.Hashmap_respct.insert m ~slot:w ~key
                                     ~value);
                                Hashtbl.replace models.(w) key value
                            | Workmix.Remove key ->
                                let key = (w * 100) + key in
                                ignore (Pds.Hashmap_respct.remove m ~slot:w ~key);
                                Hashtbl.remove models.(w) key
                            | Workmix.Search key ->
                                ignore
                                  (Pds.Hashmap_respct.search m ~slot:w
                                     ~key:((w * 100) + key)));
                            Respct.Runtime.rp r ~slot:w (w + 1))
                          (Workmix.map_ops ~seed:(91 + w) ~n:16 ());
                        incr done_workers;
                        if !done_workers = 2 then begin
                          finished := true;
                          (* wake idle pipeline flushers, or the world
                             ends in a (reported) deadlock *)
                          if cfg.Respct.Runtime.pipeline then
                            Respct.Runtime.stop r
                        end))
               done;
               ignore
                 (Simsched.Scheduler.spawn ~name:"check" sched (fun () ->
                      if
                        not
                          (wait_until sched ~deadline:5.0e6 (fun () ->
                               !finished))
                      then errors := "timeout waiting for workers" :: !errors
                      else
                      Array.iteri
                        (fun w model ->
                          Hashtbl.iter
                            (fun key value ->
                              match
                                Pds.Hashmap_respct.search m ~slot:3 ~key
                              with
                              | Some v when v = value -> ()
                              | got ->
                                  errors :=
                                    Printf.sprintf
                                      "worker %d key %d: expected %d, found %s"
                                      w key value
                                      (match got with
                                      | None -> "nothing"
                                      | Some v -> string_of_int v)
                                    :: !errors)
                            model)
                        models))));
        match Simsched.Scheduler.run sched with
        | exception Simsched.Scheduler.Deadlock d -> Error ("deadlock: " ^ d)
        | Simsched.Scheduler.Crash_interrupt _ -> Error "unexpected crash"
        | Simsched.Scheduler.Completed -> (
            match !errors with
            | [] -> Ok ()
            | e :: _ -> Error e))
  in
  { name; run }

let respct_map_spec =
  respct_map_spec_with ~name:"respct-map-2w" ~cfg:Scenarios.rt_cfg

let all_specs = [ transient_queue_spec; respct_map_spec ]

(* The pipelined variant is the deadlock hunt for the new machinery: rp
   parking on [wait_epoch_durable], the coordinator's backpressure wait
   and the flusher pool's condvars all interleave under the injected
   preemptions. Kept out of [all_specs] (the smoke golden pins its spec
   count); the pipeline matrix check sweeps it. *)
let respct_map_pipeline_spec =
  respct_map_spec_with ~name:"respct-map-2w-pipeline"
    ~cfg:{ Scenarios.rt_cfg with Respct.Runtime.pipeline = true }

let pipeline_specs = [ respct_map_pipeline_spec ]
