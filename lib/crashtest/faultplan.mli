(** Deterministic media-fault plans layered on the explorer's adversarial
    crash images: a pure function of (fault seed, crash index, dirty-line
    set), so every CI failure line replays bit-for-bit. *)

type op =
  | Tear of { lineno : int; keep : int }
      (** sub-line tear: the [keep] subset of the line's dirty words comes
          from the crashing cache, the rest reverts to the pre-crash
          persisted content — unreachable under PCSO *)
  | Poison of { lineno : int }
      (** loads raise {!Simnvm.Memsys.Media_error} until the line is
          scrubbed *)
  | Bitflip of { addr : int; bit : int }  (** one persisted bit flipped *)
  | Transient of { lineno : int }
      (** one-shot read fault; disarms after the first raise (the retry
          path's negative control) *)

val pp_op : op Fmt.t

val derive :
  seed:int ->
  crash_index:int ->
  line_words:int ->
  Simnvm.Memsys.dirty_line list ->
  op list
(** One or two fault operations, preferring dirty lines as targets (the
    metadata region when there are none). Equal inputs give equal plans. *)

val apply :
  Simnvm.Memsys.t ->
  base:int array ->
  dirty:Simnvm.Memsys.dirty_line list ->
  op list ->
  unit
(** Install a plan into the post-crash persistent image. [base] must be
    the image as the crash left it (before write-back variants), [dirty]
    the dirty-line set captured just before the crash; tears combine the
    two below line granularity. *)
