(** Crash-matrix dimension over {!Filemem} images: the prockill
    durability oracles (no-lost-sealed-epoch, exact checkpoint-snapshot
    digest) made deterministic by crashing at a *virtual* instant
    instead of a wall-clock SIGKILL. Counterexamples shrink exactly and
    replay byte-for-byte, and the planted [Elide_psync] mutant must be
    caught — proving the journalled write-back load-bearing. *)

type params = {
  fseed : int;
  fthreads : int;
  fkeyspace : int;
  fops : int;  (** operations per worker *)
  fcrash_us : int;  (** virtual power-cut instant (µs) *)
  fmutant : bool;  (** arm [Filemem.Elide_psync] after the first checkpoint *)
}

val replay_string : params -> string
(** ["seed=..;threads=..;keyspace=..;ops=..;crash_us=..;mutant=0|1"] *)

val parse_replay : string -> params option

type violation =
  | Lost_sealed_epoch of { durable : int; sealed : int }
  | Snapshot_mismatch of { epoch : int; expected : int; got : int }
  | Unrecoverable_image of string
  | Walk_failed of string

val pp_violation : violation Fmt.t

type outcome = {
  fo_params : params;
  fo_crashed : bool;
  fo_verdict : string;
  fo_failed_epoch : int;
  fo_sealed_max : int;
  fo_checkpoints : int;
  fo_violations : violation list;  (** empty = passed both oracles *)
}

val run_trial : params -> dir:string -> outcome
(** One seeded workload / virtual power cut / verified recovery cycle.
    Deterministic: equal params give equal outcomes. Trial files live
    under [dir] and are removed afterwards. *)

val shrink : params -> dir:string -> params
(** Minimise a violating trial (ops, then threads, then the crash
    instant), preserving the violation at every step. *)

val check : ?dir:string -> Matrix.preset -> Format.formatter -> bool
(** Both directions over a grid derived from the preset: clean worlds
    must pass every (seed × crash instant) point, and the planted
    psync-elision mutant must be caught, shrunk and replayed. Returns
    whether everything held. *)

val replay : string -> dir:string -> (params * outcome, string) result
(** Re-run a printed counterexample string. *)
