(** Bounded schedule exploration: scheduler-seed sweeps plus targeted
    preemption injection at lock-acquire / atomic-RMW trace events. *)

type injection = {
  at_sync : int;  (** ordinal of the Acquire/Rmw trace event to hit *)
  delay_ns : float;  (** extra charge before the forced preemption *)
}

type spec = {
  name : string;
  run : sched_seed:int -> injection option -> (unit, string) result * int;
      (** one full deterministic run: result of the scenario's own
          functional checks (deadlocks reported as [Error]) and the number
          of synchronisation points seen, which sizes the injection sweep *)
}

type failure = {
  spec : string;
  sched_seed : int;
  injection : injection option;
  reason : string;
}

val pp_failure : failure Fmt.t

val sweep :
  spec -> seeds:int list -> delays:float list -> stride:int -> failure list
(** For every seed: one baseline run, then one run per (every [stride]-th
    synchronisation point × delay) with the preemption injected there. *)

val with_injection :
  Simsched.Scheduler.t ->
  injection option ->
  (unit -> 'a) ->
  'a * int
(** Run a thunk with the injection subscriber attached to the scheduler's
    trace bus; returns the thunk's result and the number of sync points
    observed. The subscription is detached on every exit path. *)

val transient_queue_spec : spec
(** Two producers on the lock-based transient queue; per-producer FIFO
    order and drain completeness checked. *)

val respct_map_spec : spec
(** Two ResPCT workers on disjoint key ranges with restart points and a
    periodic checkpoint coordinator; volatile contents checked against the
    per-worker models, rp/checkpoint deadlocks reported. *)

val all_specs : spec list
(** The classic sweep set ([transient_queue_spec]; [respct_map_spec]) —
    pinned by the smoke golden, the pipelined spec lives in
    {!pipeline_specs}. *)

val respct_map_pipeline_spec : spec
(** {!respct_map_spec} under {!Respct.Runtime.config.pipeline}: the
    deadlock hunt for rp parking on the overlap barrier, the coordinator's
    backpressure wait and the flusher pool's condvars. *)

val pipeline_specs : spec list
