(** Rendering and (de)serialisation of explorer results; every failure
    prints the full replay recipe for the [crashmatrix] CLI. *)

val variant_to_string : Explore.variant -> string
val variant_of_string : string -> (Explore.variant, string) result
val pp_variant : Explore.variant Fmt.t
val pp_failure : Explore.failure Fmt.t

val replay_args : Shrink.counterexample -> string
(** The [crashmatrix] argument string reproducing the counterexample. *)

val pp_counterexample : Shrink.counterexample Fmt.t
val pp_outcome : Explore.outcome Fmt.t
