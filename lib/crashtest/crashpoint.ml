(* Crash-point enumeration over the Memsys event pipeline.

   A persist-relevant event is any action that changes, or could have
   changed, what a power failure leaves in NVMM: a store to an NVMM
   address (it dirties a line), a write-back into the NVMM image, or a
   fence. The boundaries between consecutive persist-relevant events are
   exactly the distinct crash instants of a deterministic execution: a
   crash anywhere between two such events yields the same persistent image
   and the same set of dirty lines.

   The pilot run counts the boundaries; a crash run re-executes the same
   deterministic world and raises [Crash_now] from a subscriber when the
   chosen boundary fires. The exception unwinds through the fiber (the
   scheduler kills the remaining threads and re-raises it from
   [Scheduler.run]) or, for events emitted during setup code outside any
   fiber, directly out of the instance's [run] — both paths end in
   [run_to]'s handler. [Fun.protect] guarantees the subscriber is detached
   from the world on every exit path, including crashes: a leaked
   subscriber would crash the *next* world's pilot at a stale index. *)

exception Crash_now

let persist_event ~nvm_words = function
  | Simnvm.Event.Store { addr; _ } -> addr < nvm_words
  | Simnvm.Event.Writeback { backing = Simnvm.Event.Nvm; _ } -> true
  | Simnvm.Event.Psync _ -> true
  | _ -> false

let pilot mem ~completed f =
  let nw = (Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words in
  let acc = ref [] in
  let n = ref 0 in
  let sub =
    Simnvm.Memsys.subscribe mem (fun ev ->
        if persist_event ~nvm_words:nw ev then begin
          acc := completed () :: !acc;
          incr n
        end)
  in
  Fun.protect
    ~finally:(fun () -> Simnvm.Memsys.unsubscribe mem sub)
    (fun () -> f ());
  (!n, Array.of_list (List.rev !acc))

let run_to mem ~crash_index f =
  let nw = (Simnvm.Memsys.config mem).Simnvm.Memsys.nvm_words in
  let n = ref 0 in
  let sub =
    Simnvm.Memsys.subscribe mem (fun ev ->
        if persist_event ~nvm_words:nw ev then begin
          if !n = crash_index then raise Crash_now;
          incr n
        end)
  in
  Fun.protect
    ~finally:(fun () -> Simnvm.Memsys.unsubscribe mem sub)
    (fun () ->
      match f () with
      | () -> `Completed
      | exception Crash_now -> `Crashed)
