(* Crash scenarios for statically analysed IR programs: the bridge
   between [Analysis.Placement]'s inferred instrumentation plans and the
   explorer's adversarial crash/image enumeration. Each corpus program
   is instrumented exactly as its plan says, run through
   [Analysis.Exec.sim_world], and held to the last-checkpoint oracle —
   so "the static analyzer's plan survives crashmatrix" is a checked
   property, not a convention. The [strip_log] scenarios plant the
   one-logging-site-removed mutant the lint must also reject. *)

let scenario ?(strip_log = []) ~name ~sched_seed ~mem_seed ~pcso ~n_ops
    (program : iters:int -> Analysis.Ir.program) : Explore.scenario =
  let make ~n_ops =
    let p, plan = Analysis.Placement.infer (program ~iters:n_ops) in
    let w =
      Analysis.Exec.sim_world ~sched_seed ~mem_seed ~pcso ~strip_log ~plan p
    in
    {
      Explore.mem = w.Analysis.Exec.w_mem;
      run = w.Analysis.Exec.w_run;
      completed = w.Analysis.Exec.w_completed;
      recover_check = w.Analysis.Exec.w_recover_check;
      recover_check_faulty = None;
    }
  in
  { Explore.name; sched_seed; mem_seed; pcso; n_ops; make }

(* The corpus scenarios under the inferred plan, plus one planted mutant
   per program stripping the alphabetically first logged variable. *)
let corpus ?(sched_seed = 5) ?(mem_seed = 7) ?(pcso = true) ?(n_ops = 8) () :
    (string * Explore.scenario) list =
  List.concat_map
    (fun (cname, prog) ->
      let p, plan = Analysis.Placement.infer (prog ~iters:n_ops) in
      ignore p;
      let stripped =
        match Analysis.Dataflow.Vars.min_elt_opt plan.Analysis.Placement.log with
        | Some v -> [ v ]
        | None -> []
      in
      [
        ( "ir-" ^ cname,
          scenario ~name:("ir-" ^ cname) ~sched_seed ~mem_seed ~pcso ~n_ops
            prog );
        ( "ir-" ^ cname ^ "-striplog",
          scenario ~strip_log:stripped
            ~name:("ir-" ^ cname ^ "-striplog")
            ~sched_seed ~mem_seed ~pcso ~n_ops prog );
      ])
    Analysis.Corpus.all

(* Strip the alphabetically first logged variable: the canonical
   one-logging-site-removed mutant. *)
let strip_of (plan : Analysis.Placement.plan) =
  match Analysis.Dataflow.Vars.min_elt_opt plan.Analysis.Placement.log with
  | Some v -> [ v ]
  | None -> []

(* Resolve the ids [corpus] (and the printed replay lines) use; kept out
   of [Scenarios.all] so the matrix goldens stay pinned. *)
let find id :
    (sched_seed:int -> mem_seed:int -> pcso:bool -> n_ops:int ->
     Explore.scenario)
    option =
  List.find_map
    (fun (cname, prog) ->
      let base = "ir-" ^ cname in
      if id = base then
        Some
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            scenario ~name:base ~sched_seed ~mem_seed ~pcso ~n_ops prog)
      else if id = base ^ "-striplog" then
        Some
          (fun ~sched_seed ~mem_seed ~pcso ~n_ops ->
            let _, plan = Analysis.Placement.infer (prog ~iters:n_ops) in
            scenario ~strip_log:(strip_of plan) ~name:id ~sched_seed
              ~mem_seed ~pcso ~n_ops prog)
      else None)
    Analysis.Corpus.all

(* Both-directions gate for one program: the inferred plan must survive
   exploration, and the stripped mutant must fail it (and be caught
   statically by the lint). Returns the mutant's shrunk counterexample
   for replay printing. *)
type verdict = {
  plan_ok : bool;
  plan_failures : Explore.failure list;
  mutant_caught_static : bool;
  mutant_counterexample : Shrink.counterexample option;
}

let check_program ?(sched_seed = 5) ?(mem_seed = 7) ?(pcso = true)
    ?(n_ops = 8) ?(name = "ir-program")
    (prog : iters:int -> Analysis.Ir.program) : verdict =
  let p, plan = Analysis.Placement.infer (prog ~iters:n_ops) in
  let good = scenario ~name ~sched_seed ~mem_seed ~pcso ~n_ops prog in
  let good_outcome = Explore.explore good in
  let stripped = strip_of plan in
  let mutant_plan =
    {
      plan with
      Analysis.Placement.log =
        Analysis.Dataflow.Vars.diff plan.Analysis.Placement.log
          (Analysis.Dataflow.Vars.of_list stripped);
    }
  in
  let mutant_caught_static =
    List.exists
      (fun (f : Analysis.Lint.finding) ->
        f.Analysis.Lint.rule = Analysis.Lint.War_missing_logging)
      (Analysis.Lint.run ~plan:mutant_plan p)
  in
  let mutant_name = name ^ "-striplog" in
  let rebuild ~n_ops =
    scenario ~strip_log:stripped ~name:mutant_name ~sched_seed ~mem_seed
      ~pcso ~n_ops prog
  in
  let mutant_outcome =
    Explore.explore ~stop_at_first_failure:true (rebuild ~n_ops)
  in
  let mutant_counterexample =
    match mutant_outcome.Explore.failures with
    | [] -> None
    | f :: _ -> Some (Shrink.minimize ~rebuild ~n_ops f)
  in
  {
    plan_ok = good_outcome.Explore.failures = [];
    plan_failures = good_outcome.Explore.failures;
    mutant_caught_static;
    mutant_counterexample;
  }
