(* Counterexample minimisation.

   Two dimensions, in order: the operation count (bisected — failure need
   not be monotone in the prefix length, so the result is a local minimum,
   which is still a valid, replayable counterexample), then the crash
   index (the explorer visits boundaries in ascending order with
   [stop_at_first_failure], so the failure it returns already carries the
   smallest failing boundary for that op count). *)

type counterexample = {
  scenario : string;
  sched_seed : int;
  mem_seed : int;
  pcso : bool;
  n_ops : int;
  crash_index : int;
  variant : Explore.variant;
  fault_seed : int option;
  reason : string;
}

let of_failure (s : Explore.scenario) (f : Explore.failure) =
  {
    scenario = s.Explore.name;
    sched_seed = s.Explore.sched_seed;
    mem_seed = s.Explore.mem_seed;
    pcso = s.Explore.pcso;
    n_ops = s.Explore.n_ops;
    crash_index = f.Explore.crash_index;
    variant = f.Explore.variant;
    fault_seed = f.Explore.fault_seed;
    reason = f.Explore.reason;
  }

let minimize ?(fault_seeds = []) ~(rebuild : n_ops:int -> Explore.scenario)
    ~n_ops (first : Explore.failure) =
  let fails m =
    if m < 0 then None
    else
      let o =
        Explore.explore ~stop_at_first_failure:true ~fault_seeds
          (rebuild ~n_ops:m)
      in
      match o.Explore.failures with f :: _ -> Some f | [] -> None
  in
  (* invariant: [lo] passes, [hi] fails with [f_hi] *)
  let rec bisect lo hi f_hi =
    if hi - lo <= 1 then (hi, f_hi)
    else
      let mid = (lo + hi) / 2 in
      match fails mid with
      | Some f -> bisect lo mid f
      | None -> bisect mid hi f_hi
  in
  let m, f =
    match fails 0 with
    | Some f -> (0, f) (* fails before any operation: construction bug *)
    | None -> bisect 0 n_ops first
  in
  of_failure (rebuild ~n_ops:m) f

let replay (c : counterexample)
    ~(rebuild : n_ops:int -> Explore.scenario) =
  Explore.check_point ?fault_seed:c.fault_seed (rebuild ~n_ops:c.n_ops)
    ~crash_index:c.crash_index ~variant:c.variant
