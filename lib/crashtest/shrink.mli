(** Shrink an explorer failure to a minimal replayable counterexample:
    smallest (local-minimum) operation prefix, then first failing crash
    boundary within it. *)

type counterexample = {
  scenario : string;
  sched_seed : int;
  mem_seed : int;
  pcso : bool;
  n_ops : int;
  crash_index : int;
  variant : Explore.variant;
  fault_seed : int option;
  reason : string;
}

val of_failure : Explore.scenario -> Explore.failure -> counterexample
(** Unshrunk counterexample (fallback when minimisation is skipped). *)

val minimize :
  ?fault_seeds:int list ->
  rebuild:(n_ops:int -> Explore.scenario) ->
  n_ops:int ->
  Explore.failure ->
  counterexample
(** [rebuild] must rebuild the same scenario (same seeds, same pcso) with a
    different operation count; [n_ops] is the failing count the failure
    came from; [fault_seeds] must be the fault seeds the original
    exploration ran with (default none). *)

val replay :
  counterexample ->
  rebuild:(n_ops:int -> Explore.scenario) ->
  (unit, string) result
(** Re-run exactly the counterexample's (ops, crash index, image variant,
    fault seed) tuple; [Error] means it still reproduces. *)
