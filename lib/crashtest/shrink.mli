(** Shrink an explorer failure to a minimal replayable counterexample:
    smallest (local-minimum) operation prefix, then first failing crash
    boundary within it. *)

type counterexample = {
  scenario : string;
  sched_seed : int;
  mem_seed : int;
  pcso : bool;
  n_ops : int;
  crash_index : int;
  variant : Explore.variant;
  reason : string;
}

val of_failure : Explore.scenario -> Explore.failure -> counterexample
(** Unshrunk counterexample (fallback when minimisation is skipped). *)

val minimize :
  rebuild:(n_ops:int -> Explore.scenario) ->
  n_ops:int ->
  Explore.failure ->
  counterexample
(** [rebuild] must rebuild the same scenario (same seeds, same pcso) with a
    different operation count; [n_ops] is the failing count the failure
    came from. *)

val replay :
  counterexample ->
  rebuild:(n_ops:int -> Explore.scenario) ->
  (unit, string) result
(** Re-run exactly the counterexample's (ops, crash index, image variant)
    triple; [Error] means it still reproduces. *)
