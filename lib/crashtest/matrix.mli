(** The crash matrix: every scenario × crash boundary × adversarial image,
    plus the schedule sweeps, behind [smoke] (CI) and [deep] (scheduled
    run) presets. *)

type preset = {
  label : string;
  map_ops : int;
  queue_ops : int;
  seeds : (int * int) list;  (** (sched_seed, mem_seed) pairs *)
  max_images : int;  (** adversarial-image cap per crash point *)
  sched_seeds : int list;
  sched_delays : float list;
  sched_stride : int;  (** every n-th sync point gets a preemption *)
  fault_seeds : int list;  (** media-fault plans layered per crash image *)
}

val smoke : preset
val deep : preset

val run :
  ?pcso:bool ->
  ?filter:string ->
  ?schedules:bool ->
  preset ->
  Format.formatter ->
  bool
(** Explore every (filtered) scenario under every seed pair, print one row
    per outcome with shrunk counterexamples for failures, then run the
    schedule sweeps. Returns whether everything passed. [filter] keeps
    scenarios whose id starts with the given prefix. *)

val ablation_check : ?filter:string -> preset -> Format.formatter -> bool
(** Re-run the matrix under word-granular write-back and check the
    asymmetry: PCSO-reliant systems (ResPCT-InCLL, Quadra) must report
    violations, explicitly-flushing systems (Clobber, SOFT, FriedmanQueue)
    and the buffered epoch systems must not. Returns whether every
    expectation held. *)

val pipeline_check : ?filter:string -> preset -> Format.formatter -> bool
(** Run the pipelined-checkpointing dimension over
    {!Scenarios.pipeline_scenarios}: pipeline-mode worlds must recover at
    every crash boundary (including mid-overlap windows: during the
    background walk, between the commit-slot stores, at post-advance
    restart points), the integrity entry additionally under the preset's
    media-fault plans; the planted overlap-protocol mutants must produce
    violations, which are shrunk and replayed. Closes with the pipelined
    schedule sweep. Returns whether every expectation held. *)

val faults_check : ?filter:string -> preset -> Format.formatter -> bool
(** Run the fault dimension over {!Scenarios.fault_scenarios}: every crash
    image is re-checked with each of the preset's deterministic media-fault
    plans installed. Integrity-mode recovery must detect or exactly repair
    every fault (zero violations); the planted no-verification mutant must
    produce violations, which are shrunk and replayed. Returns whether both
    directions held. *)
