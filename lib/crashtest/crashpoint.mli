(** Crash-point enumeration: count the persist-relevant event boundaries of
    a deterministic execution, then re-execute and crash at a chosen one. *)

exception Crash_now
(** Raised by the crash subscriber at the chosen boundary. Simulated code
    must not catch it; it unwinds to {!run_to}. *)

val persist_event : nvm_words:int -> Simnvm.Event.t -> bool
(** Whether the event can change what a power failure leaves in NVMM: an
    NVMM store, an NVMM write-back, or a fence. *)

val pilot :
  Simnvm.Memsys.t -> completed:(unit -> int) -> (unit -> unit) -> int * int array
(** [pilot mem ~completed run] executes [run] to completion with a counting
    subscriber attached and returns [(boundaries, completed_at)]:
    the number of persist-relevant events, and per event the value of
    [completed ()] at the instant it fired (the determinism reference for
    re-executions). The subscriber is detached on every exit path. *)

val run_to :
  Simnvm.Memsys.t ->
  crash_index:int ->
  (unit -> unit) ->
  [ `Completed | `Crashed ]
(** Re-execute, raising {!Crash_now} exactly when persist-relevant event
    [crash_index] fires (events [0 .. crash_index - 1] complete; the
    triggering event does not). [`Completed] means the boundary was never
    reached — for a deterministic world, a divergence from the pilot. The
    subscriber is detached on every exit path. *)
