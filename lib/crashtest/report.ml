(* Rendering and (de)serialisation of explorer results: every failure is
   printed with the full replay recipe, so a CI log line can be turned
   back into a single re-execution. *)

let variant_to_string = function
  | Explore.Baseline -> "baseline"
  | Explore.Evict_all -> "all"
  | Explore.Evict_line l -> Printf.sprintf "line:%d" l
  | Explore.Evict_word a -> Printf.sprintf "word:%d" a

let variant_of_string s =
  match String.split_on_char ':' s with
  | [ "baseline" ] -> Ok Explore.Baseline
  | [ "all" ] -> Ok Explore.Evict_all
  | [ "line"; n ] -> (
      match int_of_string_opt n with
      | Some l -> Ok (Explore.Evict_line l)
      | None -> Error ("bad line number: " ^ n))
  | [ "word"; n ] -> (
      match int_of_string_opt n with
      | Some a -> Ok (Explore.Evict_word a)
      | None -> Error ("bad word address: " ^ n))
  | _ -> Error ("bad variant (baseline|all|line:N|word:N): " ^ s)

let pp_variant ppf v = Fmt.string ppf (variant_to_string v)

let pp_fault_seed ppf = function
  | None -> ()
  | Some s -> Fmt.pf ppf " fault-seed=%d" s

let pp_failure ppf (f : Explore.failure) =
  Fmt.pf ppf "crash@%d image=%a%a: %s" f.Explore.crash_index pp_variant
    f.Explore.variant pp_fault_seed f.Explore.fault_seed f.Explore.reason

let replay_args (c : Shrink.counterexample) =
  Printf.sprintf
    "--replay %s --ops %d --sched-seed %d --mem-seed %d --crash-index %d \
     --image %s%s"
    c.Shrink.scenario c.Shrink.n_ops c.Shrink.sched_seed c.Shrink.mem_seed
    c.Shrink.crash_index
    (variant_to_string c.Shrink.variant)
    ((match c.Shrink.fault_seed with
     | None -> ""
     | Some s -> Printf.sprintf " --fault-seed %d" s)
    ^ if c.Shrink.pcso then "" else " --no-pcso")

let pp_counterexample ppf (c : Shrink.counterexample) =
  Fmt.pf ppf
    "@[<v2>counterexample %s (shrunk to %d ops):@,\
     seeds: scheduler=%d memory=%d pcso=%b@,\
     crash index %d, image %a%a@,\
     %s@,\
     replay: crashmatrix %s@]"
    c.Shrink.scenario c.Shrink.n_ops c.Shrink.sched_seed c.Shrink.mem_seed
    c.Shrink.pcso c.Shrink.crash_index pp_variant c.Shrink.variant
    pp_fault_seed c.Shrink.fault_seed c.Shrink.reason (replay_args c)

let pp_outcome ppf (o : Explore.outcome) =
  let s = o.Explore.scenario in
  Fmt.pf ppf "%-18s ops=%-3d boundaries=%-5d images=%-5d%s %s"
    s.Explore.name s.Explore.n_ops o.Explore.boundaries o.Explore.images
    (if o.Explore.truncated > 0 then
       Printf.sprintf " (cap dropped %d)" o.Explore.truncated
     else "")
    (match o.Explore.failures with
    | [] -> "ok"
    | fs -> Printf.sprintf "FAIL (%d violations)" (List.length fs))
