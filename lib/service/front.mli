(** Request-level KV serving front-end over N independently-checkpointed
    ResPCT shards (DESIGN.md §15).

    Simulated client sessions (closed-loop, exponential arrivals and
    think times, constant per-hop network latency) feed one front-end
    fiber that routes each request through a consistent-hash ring
    ({!Router}) into a bounded per-shard admission queue ({!Admission}).
    Shard workers drain batches, coalesce duplicate puts, execute against
    the shard's own {!Respct.Runtime} world and hand completions back.
    Checkpoints roll: each shard's coordinator staggers its deadlines by
    [period/shards], so no instant pauses every shard at once (the
    result reports the measured stall overlap).

    Sessions are plain records multiplexed on one fiber — not fibers
    themselves — because scheduler dispatch is O(live threads); this is
    what makes 10k+ concurrent sessions simulable.

    Crash-under-load (File backend, integrity mode): at [crash_at_ns]
    the victim shard's durability path freezes (the SIGKILL instant),
    its queue closes — clients see typed [Shard_down] rejections — and
    once its workers drain, the image takes a power cut and runs
    {!Respct.Recovery.run_verified_backend} inside the simulation while
    the survivors keep serving. Replies are acked at execution, so the
    victim legitimately rolls back to its last sealed checkpoint; the
    report holds recovery to the no-lost-sealed-epoch and
    checkpoint-digest oracles. *)

type backend_kind =
  | Sim  (** the in-memory simulator ({!Simnvm.Memsys}) per shard *)
  | File of string  (** {!Filemem} images under the given directory *)

type config = {
  shards : int;
  vnodes : int;  (** ring points per shard *)
  workers : int;  (** worker threads per shard *)
  sessions : int;
  requests : int;  (** requests per session (closed loop) *)
  keys : int;
  prefill : int;  (** keys [0, prefill) inserted before traffic starts *)
  theta : float;  (** zipfian skew of key popularity *)
  read_pct : int;
  arrival_ns : float;  (** mean inter-session-arrival gap *)
  think_ns : float;  (** mean client think time between requests *)
  net_ns : float;  (** one-way network propagation *)
  queue_cap : int;
  batch_max : int;
  retries : int;  (** per request, on rejection or in-flight drop *)
  retry_ns : float;  (** mean client backoff before a retry *)
  period_ns : float;  (** per-shard checkpoint period *)
  pipeline : bool;  (** pipelined checkpoints (forced off in crash trials) *)
  integrity : bool;
  disjoint_keys : bool;  (** partition the keyspace by session *)
  collect_final : bool;  (** return the merged final (key, value) map *)
  record_digests : bool;  (** File: digest the durable image per epoch *)
  seed : int;
  backend : backend_kind;
  nvm_words : int;  (** per shard; 0 = size from prefill + traffic *)
  registry_per_slot : int;
}

val smoke : config
(** Seconds-scale: 4 shards, 200 sessions, 20k keys. *)

val sweep : config
(** The ROADMAP target: 8 shards, 10k sessions, 2^20 keys, zipfian
    hot-key storm. *)

type shard_report = {
  sr_id : int;
  sr_served : int;  (** requests executed (including coalesced puts) *)
  sr_batches : int;
  sr_coalesced : int;
  sr_accepted : int;
  sr_rejected_full : int;
  sr_rejected_down : int;
  sr_max_depth : int;
  sr_checkpoints : int;
  sr_sealed : int;
  sr_stall_ns : float;
  sr_flush_ns : float;
  sr_down : bool;
}

type crash_report = {
  cr_shard : int;
  cr_at_ns : float;
  cr_verdict : string;
  cr_exact : bool;
  cr_failed_epoch : int;
  cr_sealed_at_crash : int;
  cr_lost_sealed : bool;  (** [true] would be a durability violation *)
  cr_digest_match : bool option;  (** [None]: no snapshot for that epoch *)
  cr_dropped : int;  (** requests failed back to clients by the crash *)
  cr_recovery_ns : float;
      (** virtual duration of the verified recovery: charged in-sim time
          plus the modeled full-image media scan (the walk itself reads
          the free post-crash persisted view) *)
  cr_survivor_mrps : float;  (** survivors' Mreq/s while the victim is down *)
}

type survivor_check = {
  sc_shard : int;
  sc_verdict : string;
  sc_failed_epoch : int;
  sc_sealed : int;
  sc_ok : bool;
}

type result = {
  r_cfg : config;
  r_makespan_ns : float;
  r_completed : int;
  r_failed : int;
  r_retried : int;
  r_rejected_full : int;
  r_rejected_down : int;
  r_mrps : float;  (** completed requests per virtual µs (Mreq/s) *)
  r_shards : shard_report list;
  r_stall_overlap_ns : float;
      (** virtual time during which >= 2 shards were stalled at once *)
  r_crash : crash_report option;
  r_survivors : survivor_check list;
      (** end-of-run durability audit of every surviving file image *)
  r_final : (int * int) list option;
  r_metrics : Obs.Metrics.t;
  r_span_json : (int * Obs.Json.t) list;
}

val run : ?crash_at_ns:float -> ?crash_shard:int -> config -> result
(** Execute one service run. [crash_at_ns] arms the crash-under-load
    scenario against shard [crash_shard mod shards] (default 0).
    @raise Invalid_argument on a crash trial without the File backend
    and integrity mode, or on non-positive dimensions. *)

val to_json : result -> Obs.Json.t
(** Schema ["respct-service/v1"]. Everything exported is virtual-time or
    counter data: the same seed yields byte-identical text. *)

val fresh_dir : unit -> string
(** A fresh private directory for File-backend images ([/dev/shm] when
    available, else the system temp dir). *)
