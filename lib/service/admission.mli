(** Bounded admission queue with typed rejection.

    The producer side never blocks: {!offer} fails fast against a full
    or closed queue so the client can back off, retry elsewhere, or
    surface the error. The consumer side blocks in virtual time and
    drains batches. Depth can never exceed the cap — admission control
    is the cap, not a soft target. *)

type reject =
  | Queue_full  (** the shard is saturated: back off and retry *)
  | Shard_down  (** the shard closed (crashed or shut down): don't *)

val reject_name : reject -> string

type 'a t

val create : ?name:string -> Simsched.Scheduler.t -> cap:int -> 'a t
(** @raise Invalid_argument if [cap <= 0]. *)

val offer : 'a t -> 'a -> (int, reject) result
(** Non-blocking enqueue; [Ok depth] reports the queue depth after the
    push (for depth telemetry). Call from a simulated fiber. *)

val take :
  'a t ->
  max:int ->
  wait:(Simsched.Condvar.t -> Simsched.Mutex.t -> unit) ->
  'a list
(** Block until work arrives, then drain up to [max] requests in FIFO
    order. Returns [[]] only when the queue is closed and empty — the
    consumer's signal to exit. [wait] performs one condition wait (a
    ResPCT worker passes [Runtime.cond_wait] so checkpoints can proceed
    while it is parked). *)

val close : 'a t -> 'a list
(** Close the queue: subsequent offers fail with [Shard_down], parked
    consumers wake and drain out. Returns the undrained requests so the
    caller can fail them back to their clients. *)

val depth : 'a t -> int
val closed : 'a t -> bool
val accepted : 'a t -> int
val rejected_full : 'a t -> int
val rejected_down : 'a t -> int
val max_depth : 'a t -> int
(** High-water mark of the depth; never exceeds the cap. *)
