(* Consistent-hash request router.

   Each shard contributes [vnodes] points on a ring of 62-bit hashes; a
   key is owned by the first point clockwise from its own hash. A point's
   position depends only on (shard, vnode) — never on how many shards
   exist — so growing the ring from N to N+1 shards moves exactly the
   keys captured by the new shard's points and no others (the stability
   property test_service checks). *)

(* xorshift-multiply finaliser over 62-bit ints; multipliers stay below
   2^32 so every literal is portable OCaml. *)
let mix x =
  let h = ref ((x + 0x1531_7ACA_DE92) land max_int) in
  h := !h * 0x9E37_79B1 land max_int;
  h := !h lxor (!h lsr 29);
  h := !h * 0x85EB_CA77 land max_int;
  h := !h lxor (!h lsr 31);
  h := !h * 0xC2B2_AE3D land max_int;
  h := !h lxor (!h lsr 30);
  !h

let point ~shard ~vnode = mix ((shard * 0x10_0001) lxor (vnode * 0x9E37_79B9))

type t = {
  shards : int;
  vnodes : int;
  hash : int array;  (* ring positions, ascending *)
  owner : int array;  (* shard owning hash.(i) *)
}

let create ~shards ~vnodes =
  if shards <= 0 then invalid_arg "Router.create: shards";
  if vnodes <= 0 then invalid_arg "Router.create: vnodes";
  let pts = Array.make (shards * vnodes) (0, 0) in
  for s = 0 to shards - 1 do
    for v = 0 to vnodes - 1 do
      pts.((s * vnodes) + v) <- (point ~shard:s ~vnode:v, s)
    done
  done;
  Array.sort compare pts;
  {
    shards;
    vnodes;
    hash = Array.map fst pts;
    owner = Array.map snd pts;
  }

let shards t = t.shards
let vnodes t = t.vnodes

(* Successor lookup: smallest ring point >= h, wrapping to 0. *)
let route t key =
  let h = mix key in
  let n = Array.length t.hash in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.hash.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.owner.(if !lo = n then 0 else !lo)
