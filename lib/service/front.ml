(* Request-level serving front-end over N independently-checkpointed
   ResPCT shards (ROADMAP item 1; DESIGN.md §15).

   Topology: simulated client sessions -> front-end fiber -> per-shard
   bounded admission queue -> shard workers (batching + put-coalescing)
   -> per-shard Respct.Runtime world, with a rolling per-shard
   checkpoint schedule (deadlines staggered by period/shards) so no
   global pause exists.

   Sessions are *not* fibers: the scheduler dispatches by scanning every
   thread, so 10k session fibers would make each context switch O(10k).
   Instead one front-end fiber multiplexes all sessions as plain records
   driven by a binary heap of arrival events, and shard workers hand
   completions back through a mutex-guarded list + condvar. Network
   latency is one constant [net_ns] per hop (client->shard and
   shard->client), charged on the event times themselves, so queueing
   delay and propagation delay both land in the measured latency.

   Crash-under-load (File backend only): at [crash_at_ns] the victim
   shard's durability path (pwb/psync/flush) freezes — the moment the
   process would have died — its queue closes (clients see typed
   Shard_down rejections and retry or fail), in-flight batches are cut,
   and once its workers drain, the file image takes an in-process power
   cut and runs verified recovery *inside the simulation*, while the
   surviving shards keep serving. Replies are acked at execution, not at
   durability, so a crash rolls the victim back to its last sealed
   checkpoint — the paper's bounded-staleness externalisation caveat. *)

module Sched = Simsched.Scheduler
module Rng = Simnvm.Rng

type backend_kind = Sim | File of string

type config = {
  shards : int;
  vnodes : int;
  workers : int;  (* per shard *)
  sessions : int;
  requests : int;  (* per session (closed loop) *)
  keys : int;
  prefill : int;  (* keys [0, prefill) inserted before traffic starts *)
  theta : float;  (* zipfian skew of the key popularity *)
  read_pct : int;
  arrival_ns : float;  (* mean inter-session-arrival gap *)
  think_ns : float;  (* mean client think time between requests *)
  net_ns : float;  (* one-way network propagation *)
  queue_cap : int;
  batch_max : int;
  retries : int;  (* per request, on typed rejection or drop *)
  retry_ns : float;  (* mean client backoff before a retry *)
  period_ns : float;  (* per-shard checkpoint period *)
  pipeline : bool;
  integrity : bool;
  disjoint_keys : bool;
      (* partition the keyspace by session (conflict-free traffic: the
         routing-differential oracle needs writes that never race) *)
  collect_final : bool;  (* return the merged final (key, value) map *)
  record_digests : bool;  (* File: digest the durable image per epoch *)
  seed : int;
  backend : backend_kind;
  nvm_words : int;  (* per shard; 0 = size from prefill + traffic *)
  registry_per_slot : int;
}

let smoke =
  {
    shards = 4;
    vnodes = 64;
    workers = 2;
    sessions = 200;
    requests = 10;
    keys = 20_000;
    prefill = 5_000;
    theta = 0.99;
    read_pct = 90;
    arrival_ns = 2_000.0;
    think_ns = 20_000.0;
    net_ns = 3_000.0;
    queue_cap = 256;
    batch_max = 16;
    retries = 2;
    retry_ns = 10_000.0;
    period_ns = 200_000.0;
    pipeline = true;
    integrity = true;
    disjoint_keys = false;
    collect_final = false;
    record_digests = false;
    seed = 1;
    backend = Sim;
    nvm_words = 0;
    registry_per_slot = 1 lsl 14;
  }

(* The ROADMAP target: 1M+ keys, 10k+ concurrent sessions, zipfian
   hot-key storm. Tighter arrivals + more requests per session keep all
   10k sessions genuinely concurrent for most of the run. *)
let sweep =
  {
    smoke with
    shards = 8;
    workers = 4;
    sessions = 10_000;
    requests = 30;
    keys = 1 lsl 20;
    prefill = 1 lsl 20;
    arrival_ns = 400.0;
    think_ns = 1_000_000.0;
    queue_cap = 4_096;
    batch_max = 32;
    period_ns = 1_000_000.0;
    (* prefill-dense epochs log ~2-3 InCLL entries per insert; a 1 ms
       period over a 1M-key prefill needs headroom beyond 2^16 *)
    registry_per_slot = 1 lsl 17;
  }

(* ------------------------------------------------------------------ *)
(* Requests and sessions *)

type status = Pending | Done | Dropped

type req = {
  r_sid : int;
  r_key : int;
  r_put : int option;  (* None = get *)
  mutable r_submit : float;  (* client-side send instant *)
  mutable r_retries : int;
  mutable r_status : status;
}

(* Binary min-heap of timed events, tie-broken by insertion sequence so
   the event order (hence the whole run) is deterministic. *)
module Eheap = struct
  type 'a entry = { at : float; seq : int; v : 'a }
  type 'a t = { mutable a : 'a entry array; mutable n : int; mutable seq : int }

  let create () = { a = [||]; n = 0; seq = 0 }
  let lt x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let push t at v =
    let e = { at; seq = t.seq; v } in
    t.seq <- t.seq + 1;
    if t.n = Array.length t.a then begin
      let cap = max 16 (2 * t.n) in
      let a = Array.make cap e in
      Array.blit t.a 0 a 0 t.n;
      t.a <- a
    end;
    t.a.(t.n) <- e;
    t.n <- t.n + 1;
    let i = ref (t.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt t.a.(!i) t.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let pop_min t =
    if t.n = 0 then None
    else begin
      let top = t.a.(0) in
      t.n <- t.n - 1;
      if t.n > 0 then begin
        t.a.(0) <- t.a.(t.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < t.n && lt t.a.(l) t.a.(!s) then s := l;
          if r < t.n && lt t.a.(r) t.a.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let tmp = t.a.(!s) in
            t.a.(!s) <- t.a.(!i);
            t.a.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some (top.at, top.v)
    end
end

(* ------------------------------------------------------------------ *)
(* Shards *)

type shard = {
  s_id : int;
  s_backend : Simnvm.Backend.t;  (* raw (unfrozen) backend *)
  s_fm : Filemem.t option;
  s_frozen : bool ref;
  s_rt : Respct.Runtime.t;
  s_queue : req Admission.t;
  s_spans : Obs.Span.t;
  s_path : string option;
  mutable s_map : Pds.Hashmap_respct.t option;
  mutable s_down : bool;
  mutable s_served : int;  (* requests executed (incl. coalesced) *)
  mutable s_served_at_crash : int;
  mutable s_batches : int;
  mutable s_coalesced : int;
  mutable s_checkpoints : int;
  mutable s_active : int;  (* workers inside the serving loop *)
  mutable s_sealed : int;  (* largest epoch known sealed on the medium *)
  mutable s_sealed_at_crash : int;
  mutable s_last_flushed : int;
  s_digests : (int, int) Hashtbl.t;  (* epoch -> durable-image digest *)
}

(* Durability freeze: the SIGKILL instant for an in-process world. Loads
   and stores keep hitting the volatile mirror (the dying process's last
   instants), but nothing reaches the durable image any more. *)
let freezeable (b : Simnvm.Backend.t) frozen =
  {
    b with
    Simnvm.Backend.pwb = (fun a -> if not !frozen then b.Simnvm.Backend.pwb a);
    psync = (fun () -> if not !frozen then b.Simnvm.Backend.psync ());
    flush_all = (fun () -> if not !frozen then b.Simnvm.Backend.flush_all ());
  }

let pow2_ge n =
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p

let shard_digest sh ~read =
  match sh.s_map with
  | None -> 0
  | Some m ->
      Prockill.digest_with ~read
        ~line_words:sh.s_backend.Simnvm.Backend.line_words
        ~fuel:sh.s_backend.Simnvm.Backend.nvm_words
        ~heads:(Pds.Hashmap_respct.heads m)
        ~buckets:(Pds.Hashmap_respct.buckets m)
        ~cbase:0 ~ncounters:0

(* ------------------------------------------------------------------ *)
(* Reports *)

type shard_report = {
  sr_id : int;
  sr_served : int;
  sr_batches : int;
  sr_coalesced : int;
  sr_accepted : int;
  sr_rejected_full : int;
  sr_rejected_down : int;
  sr_max_depth : int;
  sr_checkpoints : int;
  sr_sealed : int;
  sr_stall_ns : float;
  sr_flush_ns : float;
  sr_down : bool;
}

type crash_report = {
  cr_shard : int;
  cr_at_ns : float;
  cr_verdict : string;
  cr_exact : bool;
  cr_failed_epoch : int;
  cr_sealed_at_crash : int;
  cr_lost_sealed : bool;  (* true would be a durability violation *)
  cr_digest_match : bool option;  (* None: no snapshot for that epoch *)
  cr_dropped : int;  (* requests failed back to clients by the crash *)
  cr_recovery_ns : float;  (* virtual time of the verified recovery *)
  cr_survivor_mrps : float;  (* survivors' Mreq/s while the victim is down *)
}

type survivor_check = {
  sc_shard : int;
  sc_verdict : string;
  sc_failed_epoch : int;
  sc_sealed : int;
  sc_ok : bool;
}

type result = {
  r_cfg : config;
  r_makespan_ns : float;
  r_completed : int;
  r_failed : int;
  r_retried : int;
  r_rejected_full : int;
  r_rejected_down : int;
  r_mrps : float;  (* completed requests per virtual µs (Mreq/s) *)
  r_shards : shard_report list;
  r_stall_overlap_ns : float;  (* >= 2 shards stalled simultaneously *)
  r_crash : crash_report option;
  r_survivors : survivor_check list;
  r_final : (int * int) list option;
  r_metrics : Obs.Metrics.t;
  r_span_json : (int * Obs.Json.t) list;  (* per-shard span summaries *)
}

(* Virtual time during which >= 2 shards were inside a checkpoint stall:
   zero-ish means the rolling schedule really has no global pause. *)
let stall_overlap shards =
  let evs =
    List.concat_map
      (fun sh ->
        List.concat_map
          (fun sp ->
            if sp.Obs.Span.name = "checkpoint.stall" then
              [ (sp.Obs.Span.t0, 1); (sp.Obs.Span.t1, -1) ]
            else [])
          sh.s_spans.Obs.Span.spans)
      shards
  in
  let evs = List.sort compare evs in
  let active = ref 0 and last = ref 0.0 and overlap = ref 0.0 in
  List.iter
    (fun (t, d) ->
      if !active >= 2 then overlap := !overlap +. (t -. !last);
      active := !active + d;
      last := t)
    evs;
  !overlap

(* ------------------------------------------------------------------ *)
(* The run *)

let mix3 a b c =
  Router.mix (Router.mix ((a * 0x85EB_CA77) lxor (b * 0x9E37_79B1)) lxor c)

let run ?crash_at_ns ?(crash_shard = 0) cfg =
  if cfg.shards <= 0 || cfg.workers <= 0 then
    invalid_arg "Front.run: shards/workers";
  if cfg.sessions <= 0 || cfg.requests <= 0 then
    invalid_arg "Front.run: sessions/requests";
  (match (crash_at_ns, cfg.backend) with
  | Some _, Sim ->
      invalid_arg "Front.run: crash trials need the File backend"
  | Some _, File _ when not cfg.integrity ->
      invalid_arg "Front.run: crash trials need integrity mode"
  | _ -> ());
  (* The sealed-epoch crash oracle needs the classic synchronous seal
     (run_checkpoint returns at the seal); pipelining stays on for
     crash-free runs. *)
  let pipeline = cfg.pipeline && crash_at_ns = None in
  let victim = if cfg.shards = 0 then 0 else crash_shard mod cfg.shards in
  let ring = Router.create ~shards:cfg.shards ~vnodes:cfg.vnodes in
  let sched = Sched.create ~seed:cfg.seed () in

  (* Geometry: nodes are one line each, so size the heap from the keys a
     shard can ever hold (prefill stripe + worst-case fresh inserts). *)
  let per_shard_prefill = (cfg.prefill / cfg.shards) + 1 in
  let write_traffic =
    (cfg.sessions * cfg.requests * (100 - cfg.read_pct) / 100 / cfg.shards) + 1
  in
  let expected_keys = per_shard_prefill + write_traffic in
  let buckets = max 64 (min (1 lsl 16) (pow2_ge (expected_keys / 6 + 1))) in
  let nvm_words =
    if cfg.nvm_words > 0 then cfg.nvm_words
    else
      max (1 lsl 16)
        (pow2_ge
           ((2 * buckets) + (24 * expected_keys)
           + (2 * cfg.workers * cfg.registry_per_slot)
           + 16_384))
  in
  let dram_words = 1 lsl 14 in

  let rcfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.period_ns = cfg.period_ns;
      Respct.Runtime.flusher_pool = 2;
      Respct.Runtime.max_threads = cfg.workers;
      Respct.Runtime.registry_per_slot = cfg.registry_per_slot;
      Respct.Runtime.integrity = cfg.integrity;
      Respct.Runtime.pipeline;
    }
  in

  let make_shard i =
    let queue =
      Admission.create ~name:(Printf.sprintf "shard%d" i) sched
        ~cap:cfg.queue_cap
    in
    let spans = Obs.Span.create ~keep:8192 () in
    let frozen = ref false in
    let backend, fm, env, path =
      match cfg.backend with
      | Sim ->
          let mcfg =
            {
              Simnvm.Memsys.default_config with
              Simnvm.Memsys.nvm_words;
              Simnvm.Memsys.dram_words;
              Simnvm.Memsys.seed = cfg.seed + (31 * i);
            }
          in
          let mem = Simnvm.Memsys.create mcfg in
          (Simnvm.Backend.of_memsys mem, None, Simsched.Env.make mem sched, None)
      | File dir ->
          let fcfg =
            {
              Filemem.default_config with
              Filemem.nvm_words;
              Filemem.dram_words;
              Filemem.evict_rate = 0.0;
              Filemem.seed = cfg.seed + (31 * i);
            }
          in
          let meta =
            {
              Filemem.max_threads = cfg.workers;
              Filemem.registry_per_slot = cfg.registry_per_slot;
              Filemem.integrity = cfg.integrity;
            }
          in
          let path = Filename.concat dir (Printf.sprintf "shard-%d.img" i) in
          let fm = Filemem.create ~meta fcfg ~path in
          let b = Filemem.backend fm in
          ( b,
            Some fm,
            Simsched.Env.make_backend (freezeable b frozen) sched,
            Some path )
    in
    let rt = Respct.Runtime.create ~cfg:rcfg env in
    Respct.Runtime.set_spans rt spans;
    {
      s_id = i;
      s_backend = backend;
      s_fm = fm;
      s_frozen = frozen;
      s_rt = rt;
      s_queue = queue;
      s_spans = spans;
      s_path = path;
      s_map = None;
      s_down = false;
      s_served = 0;
      s_served_at_crash = 0;
      s_batches = 0;
      s_coalesced = 0;
      s_checkpoints = 0;
      s_active = 0;
      s_sealed = 0;
      s_sealed_at_crash = 0;
      s_last_flushed = 0;
      s_digests = Hashtbl.create 64;
    }
  in
  let shards = Array.init cfg.shards make_shard in

  (* Pre-route the prefill stripes (host-level, before the sim starts). *)
  let prefill_of = Array.make cfg.shards [] in
  for k = cfg.prefill - 1 downto 0 do
    let s = Router.route ring k in
    prefill_of.(s) <- k :: prefill_of.(s)
  done;
  let prefill_of = Array.map Array.of_list prefill_of in
  (* per-shard count of workers done prefilling: no worker may serve
     traffic while a sibling's stripe is still inserting, or a late
     prefill insert could overwrite a client put *)
  let prefill_done = Array.make cfg.shards 0 in

  (* Telemetry *)
  let metrics = Obs.Metrics.create () in
  let m_completed = Obs.Metrics.counter metrics "requests.completed" in
  let m_failed = Obs.Metrics.counter metrics "requests.failed" in
  let m_retried = Obs.Metrics.counter metrics "requests.retried" in
  let m_rej_full = Obs.Metrics.counter metrics "reject.queue_full" in
  let m_rej_down = Obs.Metrics.counter metrics "reject.shard_down" in
  let h_latency = Obs.Metrics.histogram metrics "latency_ns" in
  let h_depth =
    Obs.Metrics.histogram metrics "queue_depth"
      ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. |]
  in
  let h_batch =
    Obs.Metrics.histogram metrics "batch_size"
      ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
  in

  (* Completion channel: workers -> front-end. *)
  let idle_mu = Simsched.Mutex.create ~name:"front.idle" () in
  let idle_cv = Simsched.Condvar.create ~name:"front.idle" () in
  let completions : (req * float) list ref = ref [] in
  let push_completions rs =
    match rs with
    | [] -> ()
    | rs ->
        Simsched.Mutex.lock sched idle_mu;
        completions := List.rev_append rs !completions;
        Simsched.Condvar.signal sched idle_cv;
        Simsched.Mutex.unlock sched idle_mu
  in

  let stop_all = ref false in
  let crash_rep = ref None in

  (* ---------------- shard workers ---------------- *)
  let spawn_worker sh w =
    ignore
      (Respct.Runtime.spawn
         ~name:(Printf.sprintf "s%d-w%d" sh.s_id w)
         sh.s_rt ~slot:w
         (fun _ctx ->
           if w = 0 then
             sh.s_map <-
               Some (Pds.Hashmap_respct.create sh.s_rt ~slot:0 ~buckets);
           while Option.is_none sh.s_map do
             Sched.sleep sched 500.0
           done;
           let m = Option.get sh.s_map in
           (* prefill stripe, restart point after every insert *)
           let pf = prefill_of.(sh.s_id) in
           let i = ref w in
           while !i < Array.length pf do
             let key = pf.(!i) in
             ignore
               (Pds.Hashmap_respct.insert m ~slot:w ~key
                  ~value:(key lxor 0x5EED));
             Respct.Runtime.rp sh.s_rt ~slot:w 1;
             i := !i + cfg.workers
           done;
           prefill_done.(sh.s_id) <- prefill_done.(sh.s_id) + 1;
           while prefill_done.(sh.s_id) < cfg.workers do
             (* restart point keeps the wait quiescent for checkpoints *)
             Respct.Runtime.rp sh.s_rt ~slot:w 3;
             Sched.sleep sched 500.0
           done;
           sh.s_active <- sh.s_active + 1;
           let wait cv mu = Respct.Runtime.cond_wait sh.s_rt ~slot:w cv mu in
           let continue = ref true in
           while !continue do
             match Admission.take sh.s_queue ~max:cfg.batch_max ~wait with
             | [] -> continue := false
             | batch ->
                 sh.s_batches <- sh.s_batches + 1;
                 Obs.Metrics.observe h_batch (float_of_int (List.length batch));
                 (* put-coalescing: only the last put per key executes *)
                 let last_put = Hashtbl.create 8 in
                 List.iteri
                   (fun j r ->
                     if r.r_put <> None then Hashtbl.replace last_put r.r_key j)
                   batch;
                 let finished = ref [] in
                 List.iteri
                   (fun j r ->
                     if sh.s_down then begin
                       (* the crash cut this batch: the rest dies in flight *)
                       r.r_status <- Dropped;
                       finished := (r, Sched.now sched) :: !finished
                     end
                     else begin
                       (match r.r_put with
                       | Some v ->
                           if Hashtbl.find last_put r.r_key = j then
                             ignore
                               (Pds.Hashmap_respct.insert m ~slot:w ~key:r.r_key
                                  ~value:v)
                           else sh.s_coalesced <- sh.s_coalesced + 1
                       | None ->
                           ignore
                             (Pds.Hashmap_respct.search m ~slot:w ~key:r.r_key));
                       sh.s_served <- sh.s_served + 1;
                       Respct.Runtime.rp sh.s_rt ~slot:w 2;
                       r.r_status <- Done;
                       finished := (r, Sched.now sched) :: !finished
                     end)
                   batch;
                 push_completions (List.rev !finished)
           done;
           sh.s_active <- sh.s_active - 1))
  in

  (* ---------------- rolling checkpoint coordinators ---------------- *)
  let spawn_coordinator sh =
    ignore
      (Sched.spawn
         ~name:(Printf.sprintf "s%d-ckpt" sh.s_id)
         sched
         (fun () ->
           while Option.is_none sh.s_map do
             Sched.sleep sched 500.0
           done;
           (* stagger the first deadline so the shards' pauses roll *)
           let deadline =
             ref
               (Sched.now sched
               +. cfg.period_ns
                  *. float_of_int (sh.s_id + 1)
                  /. float_of_int cfg.shards)
           in
           let continue = ref true in
           while !continue do
             Sched.sleep_until sched !deadline;
             if !stop_all || sh.s_down then continue := false
             else begin
               let before = sh.s_last_flushed in
               Respct.Runtime.run_checkpoint sh.s_rt ~on_flushed:(fun e ->
                   if not sh.s_down then begin
                     sh.s_last_flushed <- e;
                     match sh.s_fm with
                     | Some fm when cfg.record_digests ->
                         Hashtbl.replace sh.s_digests e
                           (shard_digest sh ~read:(Filemem.persisted fm))
                     | _ -> ()
                   end);
               if not sh.s_down then begin
                 sh.s_checkpoints <- sh.s_checkpoints + 1;
                 (* pipeline: the seal of epoch e lands while e+1 runs, so
                    at this return only the previous flush is sealed *)
                 let sealed = if pipeline then before else sh.s_last_flushed in
                 if sealed > sh.s_sealed then sh.s_sealed <- sealed
               end;
               deadline := !deadline +. cfg.period_ns
             end
           done;
           (* release the idle flusher fibers or the run cannot end *)
           Respct.Runtime.stop sh.s_rt))
  in

  (* ---------------- front-end fiber ---------------- *)
  let heap : req Eheap.t = Eheap.create () in
  let left = Array.make cfg.sessions cfg.requests in
  let live = ref cfg.sessions in
  let zipf = Apps.Ycsb.make_zipf ~theta:cfg.theta cfg.keys in
  let timing_rng = Rng.create (cfg.seed lxor 0x74_11) in
  let exp_draw rng mean =
    if mean <= 0.0 then 0.0 else -.mean *. log (1.0 -. Rng.float rng)
  in
  let draw_req sid idx =
    let rng = Rng.create (mix3 cfg.seed sid idx) in
    let key =
      if cfg.disjoint_keys then begin
        let span = max 1 (cfg.keys / cfg.sessions) in
        min (cfg.keys - 1) ((sid * span) + Rng.int rng span)
      end
      else Apps.Ycsb.scramble (Apps.Ycsb.sample_zipf zipf rng) cfg.keys
    in
    let put =
      if Rng.int rng 100 >= cfg.read_pct then
        Some (Rng.bits rng land 0xFFFFF)
      else None
    in
    {
      r_sid = sid;
      r_key = key;
      r_put = put;
      r_submit = 0.0;
      r_retries = cfg.retries;
      r_status = Pending;
    }
  in
  ignore
    (Sched.spawn ~name:"front" sched (fun () ->
         (* session arrivals: a Poisson-ish ramp over the arrival gap *)
         let at = ref 0.0 in
         for sid = 0 to cfg.sessions - 1 do
           at := !at +. exp_draw timing_rng cfg.arrival_ns;
           let r = draw_req sid 0 in
           r.r_submit <- !at;
           Eheap.push heap (!at +. cfg.net_ns) r
         done;
         let rec advance sid at_client =
           left.(sid) <- left.(sid) - 1;
           if left.(sid) = 0 then decr live
           else begin
             let idx = cfg.requests - left.(sid) in
             let r = draw_req sid idx in
             let t_send = at_client +. exp_draw timing_rng cfg.think_ns in
             r.r_submit <- t_send;
             Eheap.push heap (t_send +. cfg.net_ns) r
           end
         and retry_or_fail r at_client =
           if r.r_retries > 0 then begin
             r.r_retries <- r.r_retries - 1;
             r.r_status <- Pending;
             Obs.Metrics.incr m_retried;
             let t_send = at_client +. exp_draw timing_rng cfg.retry_ns in
             Eheap.push heap (t_send +. cfg.net_ns) r
           end
           else begin
             Obs.Metrics.incr m_failed;
             advance r.r_sid at_client
           end
         and handle (r, at) =
           let at_client = at +. cfg.net_ns in
           match r.r_status with
           | Done ->
               Obs.Metrics.incr m_completed;
               Obs.Metrics.observe h_latency (at_client -. r.r_submit);
               advance r.r_sid at_client
           | Dropped -> retry_or_fail r at_client
           | Pending -> assert false
         and submit r t_arrive =
           let sh = shards.(Router.route ring r.r_key) in
           match Admission.offer sh.s_queue r with
           | Ok d -> Obs.Metrics.observe h_depth (float_of_int d)
           | Error rej ->
               (match rej with
               | Admission.Queue_full -> Obs.Metrics.incr m_rej_full
               | Admission.Shard_down -> Obs.Metrics.incr m_rej_down);
               retry_or_fail r (t_arrive +. cfg.net_ns)
         in
         let drain () =
           Simsched.Mutex.lock sched idle_mu;
           let got = List.rev !completions in
           completions := [];
           Simsched.Mutex.unlock sched idle_mu;
           List.iter handle got
         in
         let rec loop () =
           drain ();
           if !live > 0 then
             match Eheap.pop_min heap with
             | Some (t, r) ->
                 Sched.sleep_until sched t;
                 drain ();
                 submit r t;
                 loop ()
             | None ->
                 Simsched.Mutex.lock sched idle_mu;
                 while !completions = [] && !live > 0 do
                   Simsched.Condvar.wait sched idle_cv idle_mu
                 done;
                 Simsched.Mutex.unlock sched idle_mu;
                 loop ()
         in
         loop ();
         (* all sessions finished: shut the shards down *)
         stop_all := true;
         Array.iter (fun sh -> ignore (Admission.close sh.s_queue)) shards))

  (* ---------------- crash fiber (File backend only) ---------------- *)
  ;
  (match crash_at_ns with
  | None -> ()
  | Some t_crash ->
      ignore
        (Sched.spawn ~name:"svc-fault" sched (fun () ->
             Sched.sleep_until sched t_crash;
             let sh = shards.(victim) in
             if (not !stop_all) && not sh.s_down then begin
               let at = Sched.now sched in
               sh.s_down <- true;
               sh.s_sealed_at_crash <- sh.s_sealed;
               Array.iter (fun s -> s.s_served_at_crash <- s.s_served) shards;
               sh.s_frozen := true;
               (* queued requests die with the shard; fail them back *)
               let leftovers = Admission.close sh.s_queue in
               List.iter (fun r -> r.r_status <- Dropped) leftovers;
               push_completions (List.map (fun r -> (r, at)) leftovers);
               (* let the dying workers drain out of the serving loop *)
               while sh.s_active > 0 do
                 Sched.sleep sched 2_000.0
               done;
               let fm = Option.get sh.s_fm in
               (* power cut on the image, then verified recovery in-sim:
                  the survivors keep serving while this fiber recovers *)
               Filemem.crash fm;
               let t0 = Sched.now sched in
               let v =
                 Respct.Recovery.run_verified_backend
                   ~layout:(Respct.Runtime.layout sh.s_rt)
                   (Filemem.backend fm)
               in
               (* the walk reads the post-crash [persisted] view, which the
                  simulator does not charge; add the modeled media scan *)
               let scan_lines =
                 (sh.s_backend.Simnvm.Backend.nvm_words
                 + sh.s_backend.Simnvm.Backend.line_words - 1)
                 / sh.s_backend.Simnvm.Backend.line_words
               in
               let recovery_ns =
                 Sched.now sched -. t0
                 +. (float_of_int scan_lines
                    *. Filemem.default_config.Filemem.latency
                         .Simnvm.Latency.nvm_miss_ns)
               in
               let fe = v.Respct.Recovery.vreport.Respct.Recovery.failed_epoch in
               let exact = Respct.Recovery.exact_image v.Respct.Recovery.verdict in
               let digest_match =
                 if not exact then None
                 else
                   match Hashtbl.find_opt sh.s_digests fe with
                   | None -> None
                   | Some expected ->
                       Some (expected = shard_digest sh ~read:(Filemem.persisted fm))
               in
               crash_rep :=
                 Some
                   {
                     cr_shard = victim;
                     cr_at_ns = at;
                     cr_verdict =
                       Fmt.str "%a" Respct.Recovery.pp_verdict
                         v.Respct.Recovery.verdict;
                     cr_exact = exact;
                     cr_failed_epoch = fe;
                     cr_sealed_at_crash = sh.s_sealed_at_crash;
                     cr_lost_sealed = fe < sh.s_sealed_at_crash;
                     cr_digest_match = digest_match;
                     cr_dropped = List.length leftovers;
                     cr_recovery_ns = recovery_ns;
                     cr_survivor_mrps = 0.0 (* filled in after the run *);
                   }
             end)));

  Array.iter
    (fun sh ->
      spawn_coordinator sh;
      for w = 0 to cfg.workers - 1 do
        spawn_worker sh w
      done)
    shards;

  (match Sched.run sched with
  | Sched.Completed -> ()
  | Sched.Crash_interrupt _ -> failwith "Front.run: unexpected crash outcome");

  let makespan = Sched.elapsed sched in

  (* survivor throughput while the victim was down *)
  let crash =
    match !crash_rep with
    | None -> None
    | Some cr ->
        let post =
          Array.fold_left
            (fun acc sh ->
              if sh.s_id = cr.cr_shard then acc
              else acc + (sh.s_served - sh.s_served_at_crash))
            0 shards
        in
        let window = makespan -. cr.cr_at_ns in
        Some
          {
            cr with
            cr_survivor_mrps =
              (if window > 0.0 then float_of_int post *. 1e3 /. window else 0.0);
          }
  in

  (* final logical bindings (coherent view), for the routing oracle *)
  let final =
    if not cfg.collect_final then None
    else
      Some
        (Array.to_list shards
        |> List.concat_map (fun sh ->
               match sh.s_map with
               | None -> []
               | Some m ->
                   Pds.Hashmap_respct.bindings_of
                     ~read:sh.s_backend.Simnvm.Backend.peek
                     ~line_words:sh.s_backend.Simnvm.Backend.line_words
                     ~fuel:sh.s_backend.Simnvm.Backend.nvm_words
                     ~heads:(Pds.Hashmap_respct.heads m)
                     ~buckets:(Pds.Hashmap_respct.buckets m))
        |> List.sort compare)
  in

  (* end-of-run durability audit: power-cut every surviving file image
     and hold verified recovery to the sealed-epoch + digest oracles *)
  let survivors =
    Array.to_list shards
    |> List.filter_map (fun sh ->
           match sh.s_fm with
           | Some fm when (not sh.s_down) && cfg.integrity ->
               Filemem.crash fm;
               let v =
                 Respct.Recovery.run_verified_backend
                   ~layout:(Respct.Runtime.layout sh.s_rt)
                   (Filemem.backend fm)
               in
               let fe =
                 v.Respct.Recovery.vreport.Respct.Recovery.failed_epoch
               in
               let exact =
                 Respct.Recovery.exact_image v.Respct.Recovery.verdict
               in
               let digest_ok =
                 match Hashtbl.find_opt sh.s_digests fe with
                 | Some expected when exact ->
                     expected = shard_digest sh ~read:(Filemem.persisted fm)
                 | _ -> true
               in
               Some
                 {
                   sc_shard = sh.s_id;
                   sc_verdict =
                     Fmt.str "%a" Respct.Recovery.pp_verdict
                       v.Respct.Recovery.verdict;
                   sc_failed_epoch = fe;
                   sc_sealed = sh.s_sealed;
                   sc_ok = exact && fe >= sh.s_sealed && digest_ok;
                 }
           | _ -> None)
  in

  let shard_reports =
    Array.to_list shards
    |> List.map (fun sh ->
           let st = Respct.Runtime.stats sh.s_rt in
           {
             sr_id = sh.s_id;
             sr_served = sh.s_served;
             sr_batches = sh.s_batches;
             sr_coalesced = sh.s_coalesced;
             sr_accepted = Admission.accepted sh.s_queue;
             sr_rejected_full = Admission.rejected_full sh.s_queue;
             sr_rejected_down = Admission.rejected_down sh.s_queue;
             sr_max_depth = Admission.max_depth sh.s_queue;
             sr_checkpoints = sh.s_checkpoints;
             sr_sealed = sh.s_sealed;
             sr_stall_ns = st.Respct.Runtime.stall_ns;
             sr_flush_ns = st.Respct.Runtime.flush_ns;
             sr_down = sh.s_down;
           })
  in
  let span_json =
    Array.to_list shards
    |> List.map (fun sh -> (sh.s_id, Obs.Span.to_json sh.s_spans))
  in
  let overlap = stall_overlap (Array.to_list shards) in

  (* drop the image files we created *)
  Array.iter
    (fun sh ->
      match (sh.s_fm, sh.s_path) with
      | Some fm, Some path ->
          Filemem.close fm;
          (try Sys.remove path with Sys_error _ -> ())
      | _ -> ())
    shards;

  let completed = Obs.Metrics.value m_completed in
  {
    r_cfg = cfg;
    r_makespan_ns = makespan;
    r_completed = completed;
    r_failed = Obs.Metrics.value m_failed;
    r_retried = Obs.Metrics.value m_retried;
    r_rejected_full = Obs.Metrics.value m_rej_full;
    r_rejected_down = Obs.Metrics.value m_rej_down;
    r_mrps =
      (if makespan > 0.0 then float_of_int completed *. 1e3 /. makespan
       else 0.0);
    r_shards = shard_reports;
    r_stall_overlap_ns = overlap;
    r_crash = crash;
    r_survivors = survivors;
    r_final = final;
    r_metrics = metrics;
    r_span_json = span_json;
  }

(* ------------------------------------------------------------------ *)
(* JSON export (schema respct-service/v1). Everything in here is
   virtual-time or counter data, so same seed => byte-identical text. *)

let json_of_config cfg =
  Obs.Json.Obj
    [
      ("shards", Obs.Json.Int cfg.shards);
      ("vnodes", Obs.Json.Int cfg.vnodes);
      ("workers", Obs.Json.Int cfg.workers);
      ("sessions", Obs.Json.Int cfg.sessions);
      ("requests", Obs.Json.Int cfg.requests);
      ("keys", Obs.Json.Int cfg.keys);
      ("prefill", Obs.Json.Int cfg.prefill);
      ("theta", Obs.Json.Float cfg.theta);
      ("read_pct", Obs.Json.Int cfg.read_pct);
      ("arrival_ns", Obs.Json.Float cfg.arrival_ns);
      ("think_ns", Obs.Json.Float cfg.think_ns);
      ("net_ns", Obs.Json.Float cfg.net_ns);
      ("queue_cap", Obs.Json.Int cfg.queue_cap);
      ("batch_max", Obs.Json.Int cfg.batch_max);
      ("retries", Obs.Json.Int cfg.retries);
      ("period_ns", Obs.Json.Float cfg.period_ns);
      ("pipeline", Obs.Json.Bool cfg.pipeline);
      ("integrity", Obs.Json.Bool cfg.integrity);
      ("seed", Obs.Json.Int cfg.seed);
      ( "backend",
        Obs.Json.String (match cfg.backend with Sim -> "sim" | File _ -> "file")
      );
    ]

let json_of_shard sr =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int sr.sr_id);
      ("served", Obs.Json.Int sr.sr_served);
      ("batches", Obs.Json.Int sr.sr_batches);
      ("coalesced", Obs.Json.Int sr.sr_coalesced);
      ("accepted", Obs.Json.Int sr.sr_accepted);
      ("rejected_full", Obs.Json.Int sr.sr_rejected_full);
      ("rejected_down", Obs.Json.Int sr.sr_rejected_down);
      ("max_depth", Obs.Json.Int sr.sr_max_depth);
      ("checkpoints", Obs.Json.Int sr.sr_checkpoints);
      ("sealed_epoch", Obs.Json.Int sr.sr_sealed);
      ("stall_ns", Obs.Json.Float sr.sr_stall_ns);
      ("flush_ns", Obs.Json.Float sr.sr_flush_ns);
      ("down", Obs.Json.Bool sr.sr_down);
    ]

let json_of_crash cr =
  Obs.Json.Obj
    [
      ("shard", Obs.Json.Int cr.cr_shard);
      ("at_ns", Obs.Json.Float cr.cr_at_ns);
      ("verdict", Obs.Json.String cr.cr_verdict);
      ("exact_image", Obs.Json.Bool cr.cr_exact);
      ("failed_epoch", Obs.Json.Int cr.cr_failed_epoch);
      ("sealed_at_crash", Obs.Json.Int cr.cr_sealed_at_crash);
      ("lost_sealed", Obs.Json.Bool cr.cr_lost_sealed);
      ( "digest_match",
        match cr.cr_digest_match with
        | None -> Obs.Json.Null
        | Some b -> Obs.Json.Bool b );
      ("dropped", Obs.Json.Int cr.cr_dropped);
      ("recovery_ns", Obs.Json.Float cr.cr_recovery_ns);
      ("survivor_mrps", Obs.Json.Float cr.cr_survivor_mrps);
    ]

let json_of_survivor sc =
  Obs.Json.Obj
    [
      ("shard", Obs.Json.Int sc.sc_shard);
      ("verdict", Obs.Json.String sc.sc_verdict);
      ("failed_epoch", Obs.Json.Int sc.sc_failed_epoch);
      ("sealed_epoch", Obs.Json.Int sc.sc_sealed);
      ("ok", Obs.Json.Bool sc.sc_ok);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "respct-service/v1");
      ("config", json_of_config r.r_cfg);
      ("makespan_ns", Obs.Json.Float r.r_makespan_ns);
      ("completed", Obs.Json.Int r.r_completed);
      ("failed", Obs.Json.Int r.r_failed);
      ("retried", Obs.Json.Int r.r_retried);
      ("rejected_full", Obs.Json.Int r.r_rejected_full);
      ("rejected_down", Obs.Json.Int r.r_rejected_down);
      ("throughput_mrps", Obs.Json.Float r.r_mrps);
      ("stall_overlap_ns", Obs.Json.Float r.r_stall_overlap_ns);
      ("shards", Obs.Json.List (List.map json_of_shard r.r_shards));
      ( "crash",
        match r.r_crash with None -> Obs.Json.Null | Some c -> json_of_crash c
      );
      ("survivors", Obs.Json.List (List.map json_of_survivor r.r_survivors));
      ("metrics", Obs.Metrics.to_json r.r_metrics);
      ( "spans",
        Obs.Json.List
          (List.map
             (fun (i, j) ->
               Obs.Json.Obj [ ("shard", Obs.Json.Int i); ("spans", j) ])
             r.r_span_json) );
    ]

(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let base = if Sys.file_exists "/dev/shm" then "/dev/shm" else Filename.get_temp_dir_name () in
  let rec go i =
    let d = Filename.concat base (Printf.sprintf "respct-svc-%d-%d" (Unix.getpid ()) i) in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0
