(** Consistent-hash routing of keys to shards.

    A point's ring position depends only on its (shard, vnode) pair, so
    adding shard N+1 to an N-shard ring moves only the keys the new
    shard's points capture — roughly K/(N+1) of them — and every moved
    key lands on the new shard. *)

type t

val create : shards:int -> vnodes:int -> t
(** @raise Invalid_argument if either count is non-positive. *)

val shards : t -> int
val vnodes : t -> int

val route : t -> int -> int
(** Owning shard of a key, in [0, shards). Pure and deterministic. *)

val mix : int -> int
(** The 62-bit hash finaliser underneath the ring (exposed for tests). *)
