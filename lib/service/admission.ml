(* Bounded admission queue in front of a shard.

   Producers (the front-end fiber) never block: an offer against a full
   or closed queue fails immediately with a typed rejection the client
   can act on (back off and retry vs. give up). Consumers (shard
   workers) block on a condition variable and drain up to a batch of
   requests per wakeup; the wait is parameterised so a ResPCT worker can
   wrap it in checkpoint allow/prevent ({!Respct.Runtime.cond_wait})
   without this module knowing about runtimes. *)

type reject = Queue_full | Shard_down

let reject_name = function
  | Queue_full -> "queue_full"
  | Shard_down -> "shard_down"

type 'a t = {
  sched : Simsched.Scheduler.t;
  cap : int;
  q : 'a Queue.t;
  mu : Simsched.Mutex.t;
  nonempty : Simsched.Condvar.t;
  mutable closed : bool;
  mutable accepted : int;
  mutable rejected_full : int;
  mutable rejected_down : int;
  mutable max_depth : int;
}

let create ?(name = "admission") sched ~cap =
  if cap <= 0 then invalid_arg "Admission.create: cap";
  {
    sched;
    cap;
    q = Queue.create ();
    mu = Simsched.Mutex.create ~name:(name ^ ".mu") ();
    nonempty = Simsched.Condvar.create ~name:(name ^ ".nonempty") ();
    closed = false;
    accepted = 0;
    rejected_full = 0;
    rejected_down = 0;
    max_depth = 0;
  }

let offer t x =
  Simsched.Mutex.lock t.sched t.mu;
  let r =
    if t.closed then begin
      t.rejected_down <- t.rejected_down + 1;
      Error Shard_down
    end
    else if Queue.length t.q >= t.cap then begin
      t.rejected_full <- t.rejected_full + 1;
      Error Queue_full
    end
    else begin
      Queue.push x t.q;
      let d = Queue.length t.q in
      if d > t.max_depth then t.max_depth <- d;
      t.accepted <- t.accepted + 1;
      Simsched.Condvar.signal t.sched t.nonempty;
      Ok d
    end
  in
  Simsched.Mutex.unlock t.sched t.mu;
  r

let take t ~max ~wait =
  if max <= 0 then invalid_arg "Admission.take: max";
  Simsched.Mutex.lock t.sched t.mu;
  while Queue.is_empty t.q && not t.closed do
    wait t.nonempty t.mu
  done;
  let n = min max (Queue.length t.q) in
  let rec grab n acc =
    if n = 0 then List.rev acc else grab (n - 1) (Queue.pop t.q :: acc)
  in
  let batch = grab n [] in
  if not (Queue.is_empty t.q) then Simsched.Condvar.signal t.sched t.nonempty;
  Simsched.Mutex.unlock t.sched t.mu;
  batch

let close t =
  Simsched.Mutex.lock t.sched t.mu;
  t.closed <- true;
  let leftovers = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  Simsched.Condvar.broadcast t.sched t.nonempty;
  Simsched.Mutex.unlock t.sched t.mu;
  leftovers

let depth t = Queue.length t.q
let closed t = t.closed
let accepted t = t.accepted
let rejected_full t = t.rejected_full
let rejected_down t = t.rejected_down
let max_depth t = t.max_depth
