(* Bank transfers: the classic crash-consistency demonstration.

   Four tellers move money between 64 accounts (InCLL variables protected
   by per-account locks, acquired in address order). The invariant is that
   the total balance is constant. We crash the bank mid-transfer many
   times, run recovery, and check the invariant every time: partial
   transfers that reached NVMM are rolled back to the last checkpoint.

   Run with: dune exec examples/bank_transfer.exe *)

let accounts = 64
let initial = 1_000
let tellers = 4

let trial seed =
  let mem =
    Simnvm.Memsys.create
      { Simnvm.Memsys.default_config with Simnvm.Memsys.evict_rate = 0.2; seed }
  in
  let sched = Simsched.Scheduler.create ~seed () in
  let env = Simsched.Env.make mem sched in
  let cfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.period_ns = 30_000.0;
      max_threads = tellers + 1;
    }
  in
  let rt = Respct.Runtime.create ~cfg env in
  Respct.Runtime.start rt;
  let cells = ref [||] in
  let locks =
    Array.init accounts (fun i ->
        Simsched.Mutex.create ~name:(Printf.sprintf "account%d" i) ())
  in
  (* Teller 0 opens the accounts, the others start transferring as soon as
     they see them. *)
  for teller = 0 to tellers - 1 do
    ignore
      (Respct.Runtime.spawn rt ~slot:teller (fun _ctx ->
           if teller = 0 then begin
             let base =
               Respct.Runtime.alloc_incll_array rt ~slot:0 accounts
                 ~init:initial
             in
             cells :=
               Array.init accounts (fun i ->
                   Respct.Heap.cell_at env base i)
           end;
           let rng = Simnvm.Rng.create ((seed * 31) + teller) in
           while Array.length !cells = 0 do
             Simsched.Scheduler.sleep sched 500.0
           done;
           let rec loop () =
             let a = Simnvm.Rng.int rng accounts in
             let b = (a + 1 + Simnvm.Rng.int rng (accounts - 1)) mod accounts in
             let lo = min a b and hi = max a b in
             let amount = Simnvm.Rng.int rng 50 in
             Simsched.Mutex.lock sched locks.(lo);
             Simsched.Mutex.lock sched locks.(hi);
             let va = Respct.Runtime.read rt ~slot:teller (!cells).(a) in
             let vb = Respct.Runtime.read rt ~slot:teller (!cells).(b) in
             if va >= amount then begin
               Respct.Runtime.update rt ~slot:teller (!cells).(a) (va - amount);
               Respct.Runtime.update rt ~slot:teller (!cells).(b) (vb + amount)
             end;
             Simsched.Mutex.unlock sched locks.(hi);
             Simsched.Mutex.unlock sched locks.(lo);
             Respct.Runtime.rp rt ~slot:teller 1;
             loop ()
           in
           loop ()))
  done;
  let crash_at = 40_000.0 +. float_of_int (seed * 7919 mod 100_000) in
  Simsched.Scheduler.set_crash_at sched crash_at;
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Crash_interrupt _ -> ()
  | Simsched.Scheduler.Completed -> assert false);
  Simnvm.Memsys.crash mem;
  let _report =
    Respct.Recovery.run ~threads:4 ~layout:(Respct.Runtime.layout rt) mem
  in
  let total =
    Array.fold_left
      (fun acc cell -> acc + Simnvm.Memsys.persisted mem cell)
      0 !cells
  in
  (total, crash_at)

let () =
  let expected = accounts * initial in
  Printf.printf
    "Transferring money between %d accounts with %d tellers; invariant: \
     total = %d\n"
    accounts tellers expected;
  for seed = 1 to 20 do
    let total, crash_at = trial seed in
    Printf.printf "crash #%02d at t=%.0f us: recovered total = %d  %s\n" seed
      (crash_at /. 1e3) total
      (if total = expected then "[invariant holds]" else "[VIOLATION!]");
    assert (total = expected)
  done;
  print_endline "all 20 crash trials recovered a consistent bank"
