(* Quickstart: the whole ResPCT life cycle in one file.

   A worker increments a persistent counter with restart points between
   increments; the periodic coordinator checkpoints every 50 us; we crash
   the machine mid-run, run recovery, and observe that the counter is back
   at the last checkpoint — buffered durable linearizability in action.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a world: simulated NVMM + cache, a virtual-time scheduler. *)
  (* evict_rate makes the hardware write dirty lines back spontaneously, so
     partial post-checkpoint state reaches NVMM — the hazard InCLL rolls
     back. *)
  let mem =
    Simnvm.Memsys.create
      { Simnvm.Memsys.default_config with Simnvm.Memsys.evict_rate = 0.3; sets = 16; ways = 4 }
  in
  let sched = Simsched.Scheduler.create ~seed:7 () in
  let env = Simsched.Env.make mem sched in

  (* 2. Create the checkpointing runtime (50 us period) and start its
     coordinator. *)
  let cfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.period_ns = 50_000.0;
      max_threads = 4;
    }
  in
  let rt = Respct.Runtime.create ~cfg env in
  Respct.Runtime.start rt;

  (* 3. A worker: a persistent InCLL counter, a restart point per step. *)
  let counter = ref 0 in
  ignore
    (Respct.Runtime.spawn rt ~slot:0 (fun _ctx ->
         counter := Respct.Runtime.alloc_incll rt ~slot:0 0;
         for i = 1 to 10_000 do
           Respct.Runtime.update rt ~slot:0 !counter i;
           Simsched.Env.compute env 250.0;
           Respct.Runtime.rp rt ~slot:0 1
         done));

  (* 4. Crash the machine 1.2 ms into the run. *)
  Simsched.Scheduler.set_crash_at sched 1_230_000.0;
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Crash_interrupt t ->
      Printf.printf "crashed at t=%.0f us (mid-epoch)\n" (t /. 1e3)
  | Simsched.Scheduler.Completed -> print_endline "completed before the crash");
  Simnvm.Memsys.crash mem;

  Printf.printf
    "counter in NVMM right after the crash: %d (possibly mid-epoch state)\n"
    (Simnvm.Memsys.persisted mem !counter);

  (* 5. Recover: roll every InCLL variable back to the last checkpoint. *)
  let report =
    Respct.Recovery.run ~threads:2 ~layout:(Respct.Runtime.layout rt) mem
  in
  Printf.printf
    "recovery: failed epoch %d, %d cells rolled back, %.1f us (virtual)\n"
    report.Respct.Recovery.failed_epoch
    (List.length report.Respct.Recovery.rolled_back)
    (report.Respct.Recovery.duration_ns /. 1e3);
  Printf.printf "counter restored to the last checkpoint: %d\n"
    (Simnvm.Memsys.persisted mem !counter);
  Printf.printf "restart point to resume from: %d\n"
    (List.assoc 0 report.Respct.Recovery.rp_ids);

  (* 6. Restart and continue from the recovered value. *)
  let sched2 = Simsched.Scheduler.create ~seed:8 () in
  let env2 = Simsched.Env.make mem sched2 in
  let rt2 =
    Respct.Runtime.restart ~cfg ~reflush:report.Respct.Recovery.rolled_back env2
  in
  Respct.Runtime.start rt2;
  let recovered = Simnvm.Memsys.persisted mem !counter in
  ignore
    (Respct.Runtime.spawn rt2 ~slot:0 (fun _ctx ->
         for i = recovered + 1 to recovered + 100 do
           Respct.Runtime.update rt2 ~slot:0 !counter i;
           Respct.Runtime.rp rt2 ~slot:0 1
         done;
         Respct.Runtime.stop rt2));
  ignore (Simsched.Scheduler.run sched2);
  Printf.printf "after restart, counter continued to: %d\n"
    (Respct.Runtime.read rt2 ~slot:0 !counter)
