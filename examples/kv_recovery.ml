(* Crash recovery of a key-value store built on the public API.

   Four writers update a ResPCT hash map while the coordinator checkpoints
   every 40 us; we snapshot the logical contents at each checkpoint (using
   the quiescent on_flushed hook), crash at a random instant, recover, and
   diff the recovered map against the snapshot for the failed epoch —
   exactly the buffered-durable-linearizability contract.

   Run with: dune exec examples/kv_recovery.exe *)

let () =
  let seed = 2026 in
  let mem =
    Simnvm.Memsys.create
      { Simnvm.Memsys.default_config with Simnvm.Memsys.evict_rate = 0.15; seed }
  in
  let sched = Simsched.Scheduler.create ~seed () in
  let env = Simsched.Env.make mem sched in
  let cfg =
    {
      Respct.Runtime.default_config with
      Respct.Runtime.period_ns = 40_000.0;
      max_threads = 8;
    }
  in
  let rt = Respct.Runtime.create ~cfg env in
  let map = ref None in
  let snapshots = Hashtbl.create 16 in
  (* Manual coordinator so we can snapshot inside the quiescent window. *)
  ignore
    (Simsched.Scheduler.spawn ~name:"coordinator" sched (fun () ->
         let rec loop deadline =
           Simsched.Scheduler.sleep_until sched deadline;
           Respct.Runtime.run_checkpoint rt ~on_flushed:(fun next_epoch ->
               Option.iter
                 (fun m ->
                   Hashtbl.replace snapshots next_epoch
                     (Pds.Hashmap_respct.persisted_bindings mem m))
                 !map);
           loop (deadline +. 40_000.0)
         in
         loop 40_000.0));
  for w = 0 to 3 do
    ignore
      (Respct.Runtime.spawn rt ~slot:w (fun _ctx ->
           if w = 0 then
             map := Some (Pds.Hashmap_respct.create rt ~slot:0 ~buckets:256);
           while !map = None do
             Simsched.Scheduler.sleep sched 500.0
           done;
           let m = Option.get !map in
           let rng = Simnvm.Rng.create (seed + w) in
           let rec loop i =
             let key = Simnvm.Rng.int rng 512 in
             (match Simnvm.Rng.int rng 3 with
             | 0 -> ignore (Pds.Hashmap_respct.remove m ~slot:w ~key)
             | _ -> ignore (Pds.Hashmap_respct.insert m ~slot:w ~key ~value:i));
             Respct.Runtime.rp rt ~slot:w 1;
             loop (i + 1)
           in
           loop 0))
  done;
  Simsched.Scheduler.set_crash_at sched 150_000.0;
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Crash_interrupt t ->
      Printf.printf "power failure at t=%.0f us\n" (t /. 1e3)
  | Simsched.Scheduler.Completed -> assert false);
  Simnvm.Memsys.crash mem;
  let report =
    Respct.Recovery.run ~threads:4 ~layout:(Respct.Runtime.layout rt) mem
  in
  let failed = report.Respct.Recovery.failed_epoch in
  Printf.printf "recovery rolled back %d cells (failed epoch %d)\n"
    (List.length report.Respct.Recovery.rolled_back)
    failed;
  let recovered =
    Pds.Hashmap_respct.persisted_bindings mem (Option.get !map)
  in
  match Hashtbl.find_opt snapshots failed with
  | None ->
      Printf.printf
        "crash before the first checkpoint: recovered map has %d bindings \
         (initial state)\n"
        (List.length recovered)
  | Some snapshot ->
      Printf.printf
        "snapshot at last checkpoint: %d bindings; recovered: %d bindings\n"
        (List.length snapshot) (List.length recovered);
      assert (snapshot = recovered);
      print_endline
        "recovered contents EXACTLY match the last checkpoint: buffered \
         durable linearizability holds"
