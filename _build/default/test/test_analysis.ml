(* Tests for the analysis extensions: the idempotence/WAR rule of paper
   section 3.3.2 (Table 2) and the vector-clock race checker validating
   the race-freedom assumption of section 2.1. *)

open Analysis

let classification =
  Alcotest.testable Idempotence.pp_classification ( = )

let test_table2 () =
  (* x=5; y=x : both RAW, idempotent *)
  Alcotest.check classification "RAW x" Idempotence.Raw
    (Idempotence.classify Idempotence.table2_raw "x");
  Alcotest.(check bool) "RAW idempotent" true
    (Idempotence.idempotent Idempotence.table2_raw);
  (* y=x; x=8 : x is WAR, not idempotent *)
  Alcotest.check classification "WAR x" Idempotence.War
    (Idempotence.classify Idempotence.table2_war "x");
  Alcotest.(check bool) "WAR not idempotent" false
    (Idempotence.idempotent Idempotence.table2_war)

let test_classify_cases () =
  let open Idempotence in
  Alcotest.check classification "read-only" No_dependency
    (classify [ Read "a"; Read "a" ] "a");
  Alcotest.check classification "never accessed" No_dependency
    (classify [ Read "a" ] "b");
  Alcotest.check classification "write-only" Raw
    (classify [ Write "a" ] "a");
  Alcotest.check classification "write then read then write = RAW" Raw
    (classify [ Write "a"; Read "a"; Write "a" ] "a");
  Alcotest.check classification "reads of others don't matter" War
    (classify [ Read "b"; Read "a"; Write "b"; Write "a" ] "a")

let test_needs_logging_matches_paper_example () =
  (* The paper's x^p snippet between RPs: x is read then written in the
     loop (WAR -> InCLL); p is written once then only read (no logging). *)
  let open Idempotence in
  let trace =
    [
      Write "p";
      Read "p";
      Read "x";
      Write "x";
      Read "p";
      Read "x";
      Write "x";
    ]
  in
  Alcotest.(check (list string)) "only x needs logging" [ "x" ]
    (needs_logging trace)

(* ------------------------------------------------------------------ *)
(* Race checker *)

let test_locked_accesses_race_free () =
  let open Racecheck in
  let events =
    [
      Racq { thread = 1; lock = 0 };
      Rwrite { thread = 1; addr = 100 };
      Rrel { thread = 1; lock = 0 };
      Racq { thread = 2; lock = 0 };
      Rread { thread = 2; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
      Rrel { thread = 2; lock = 0 };
    ]
  in
  Alcotest.(check bool) "race free" true (race_free events)

let test_unlocked_write_write_races () =
  let open Racecheck in
  let events =
    [
      Rwrite { thread = 1; addr = 100 };
      Rwrite { thread = 2; addr = 100 };
    ]
  in
  Alcotest.(check bool) "detected" false (race_free events);
  match check events with
  | [ { addr; first_thread; second_thread } ] ->
      Alcotest.(check int) "addr" 100 addr;
      Alcotest.(check (pair int int)) "threads" (1, 2)
        (first_thread, second_thread)
  | races -> Alcotest.failf "expected one race, got %d" (List.length races)

let test_read_write_race () =
  let open Racecheck in
  let events =
    [
      Racq { thread = 1; lock = 0 };
      Rread { thread = 1; addr = 7 };
      Rrel { thread = 1; lock = 0 };
      (* writer uses a different lock: still a race with the read *)
      Racq { thread = 2; lock = 9 };
      Rwrite { thread = 2; addr = 7 };
      Rrel { thread = 2; lock = 9 };
    ]
  in
  Alcotest.(check bool) "different locks do not order" false
    (race_free events)

let test_hb_transitivity () =
  let open Racecheck in
  (* T1 -> (lock A) -> T2 -> (lock B) -> T3: T3's write is ordered after
     T1's via the chain, no race. *)
  let events =
    [
      Rwrite { thread = 1; addr = 42 };
      Racq { thread = 1; lock = 1 };
      Rrel { thread = 1; lock = 1 };
      Racq { thread = 2; lock = 1 };
      Racq { thread = 2; lock = 2 };
      Rrel { thread = 2; lock = 2 };
      Rrel { thread = 2; lock = 1 };
      Racq { thread = 3; lock = 2 };
      Rwrite { thread = 3; addr = 42 };
      Rrel { thread = 3; lock = 2 };
    ]
  in
  Alcotest.(check bool) "transitive happens-before" true (race_free events)

let test_same_thread_never_races () =
  let open Racecheck in
  let events =
    [
      Rwrite { thread = 1; addr = 5 };
      Rread { thread = 1; addr = 5 };
      Rwrite { thread = 1; addr = 5 };
    ]
  in
  Alcotest.(check bool) "program order" true (race_free events)

let () =
  Alcotest.run "analysis"
    [
      ( "idempotence",
        [
          Alcotest.test_case "Table 2" `Quick test_table2;
          Alcotest.test_case "classification cases" `Quick test_classify_cases;
          Alcotest.test_case "paper x^p example" `Quick
            test_needs_logging_matches_paper_example;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "locked accesses race-free" `Quick
            test_locked_accesses_race_free;
          Alcotest.test_case "unlocked write-write race" `Quick
            test_unlocked_write_write_races;
          Alcotest.test_case "different locks race" `Quick
            test_read_write_race;
          Alcotest.test_case "happens-before transitivity" `Quick
            test_hb_transitivity;
          Alcotest.test_case "same thread never races" `Quick
            test_same_thread_never_races;
        ] );
    ]
