(* Closure-record interfaces shared by all map and queue implementations:
   the workload harness drives any persistence system through these.

   [rp] is the per-iteration restart-point hook the workload driver calls
   after each completed operation: ResPCT variants bind it to [Runtime.rp],
   other buffered systems to their own pause point, durable and transient
   systems to a no-op. *)

type map = {
  insert : slot:int -> key:int -> value:int -> bool;
      (* true if the key was absent *)
  remove : slot:int -> key:int -> bool; (* true if the key was present *)
  search : slot:int -> key:int -> int option;
  map_rp : slot:int -> id:int -> unit;
}

type queue = {
  enqueue : slot:int -> int -> unit;
  dequeue : slot:int -> int option; (* None when empty *)
  queue_rp : slot:int -> id:int -> unit;
}

let no_rp ~slot:_ ~id:_ = ()

(* Lifecycle hooks of a persistence system: the workload driver registers
   each worker thread before its first operation, deregisters it after the
   last one, and stops any background coordinator at the end of the run. *)
type system = {
  sys_register : slot:int -> unit;
  sys_deregister : slot:int -> unit;
  sys_allow : slot:int -> unit;
      (* permit checkpoints while this thread blocks (paper section 3.3.3) *)
  sys_prevent : slot:int -> unit; (* revoke after the blocking call returns *)
  sys_stop : unit -> unit;
}

let null_system =
  {
    sys_register = (fun ~slot:_ -> ());
    sys_deregister = (fun ~slot:_ -> ());
    sys_allow = (fun ~slot:_ -> ());
    sys_prevent = (fun ~slot:_ -> ());
    sys_stop = ignore;
  }
