(** Placement-agnostic memory interface for the transient data structures.

    The same structure code runs over NVMM or DRAM (the paper's
    Transient<NVMM> / Transient<DRAM> configurations), and persistence
    systems that wrap transient structures inject their own accessors
    (PMThreads intercepts stores; Clobber-NVM and Quadra intercept loads
    and stores to build per-operation read/write sets — hence the thread
    slot on every accessor). *)

type t = {
  load : slot:int -> int -> int;
  store : slot:int -> int -> int -> unit;
  alloc : slot:int -> words:int -> int;
  free : slot:int -> int -> words:int -> unit;
}

val of_env_bump : Simsched.Env.t -> Bump.t -> t
(** Plain accessors over an arena: the un-intercepted (transient) case. *)
