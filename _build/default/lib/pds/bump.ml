(* Volatile bump allocator with size-class free lists, modelling malloc for
   the transient programs. All bookkeeping is host-level and atomic between
   simulation yield points; only a flat time cost is charged. *)

let alloc_ns = 35.0

type t = {
  sched : Simsched.Scheduler.t;
  mutable cur : int;
  limit : int;
  free_lists : (int, int list ref) Hashtbl.t;
}

let create env ~base ~limit =
  {
    sched = Simsched.Env.sched env;
    cur = base;
    limit;
    free_lists = Hashtbl.create 8;
  }

let alloc t ~words =
  if words <= 0 then invalid_arg "Bump.alloc: words must be positive";
  Simsched.Scheduler.charge t.sched alloc_ns;
  match Hashtbl.find_opt t.free_lists words with
  | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      addr
  | Some _ | None ->
      let addr = t.cur in
      if addr + words > t.limit then failwith "Bump.alloc: out of memory";
      t.cur <- addr + words;
      addr

let free t addr ~words =
  Simsched.Scheduler.charge t.sched (alloc_ns /. 2.0);
  match Hashtbl.find_opt t.free_lists words with
  | Some l -> l := addr :: !l
  | None -> Hashtbl.add t.free_lists words (ref [ addr ])

let used t ~base = t.cur - base
