(** Transient lock-based FIFO queue ("queue protected by one lock"):
    sentinel-headed linked list of [value; next] nodes, head/tail pointers
    in simulated memory. *)

type t

val node_words : int

val create : Simsched.Env.t -> Mem_iface.t -> t
val enqueue : t -> slot:int -> int -> unit
val dequeue : t -> slot:int -> int option

val ops : t -> Ops.queue
(** Harness-facing closure record (no restart points). *)
