lib/pds/mem_iface.ml: Bump Simsched
