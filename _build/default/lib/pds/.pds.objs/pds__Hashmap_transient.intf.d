lib/pds/hashmap_transient.mli: Mem_iface Ops Simsched
