lib/pds/hashmap_respct.mli: Ops Respct Simnvm
