lib/pds/queue_transient.mli: Mem_iface Ops Simsched
