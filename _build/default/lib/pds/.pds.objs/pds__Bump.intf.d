lib/pds/bump.mli: Simsched
