lib/pds/queue_respct.mli: Ops Respct Simnvm
