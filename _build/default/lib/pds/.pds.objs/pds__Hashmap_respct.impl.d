lib/pds/hashmap_respct.ml: Array List Ops Respct Simnvm Simsched
