lib/pds/queue_transient.ml: Mem_iface Ops Simsched
