lib/pds/mem_iface.mli: Bump Simsched
