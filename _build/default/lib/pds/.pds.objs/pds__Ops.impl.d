lib/pds/ops.ml:
