lib/pds/queue_respct.ml: List Ops Respct Simnvm Simsched
