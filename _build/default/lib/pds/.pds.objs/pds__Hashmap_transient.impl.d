lib/pds/hashmap_transient.ml: Array Mem_iface Ops Simsched
