lib/pds/ops.mli:
