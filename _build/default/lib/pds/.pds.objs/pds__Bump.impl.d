lib/pds/bump.ml: Hashtbl Simsched
