(** Closure-record interfaces shared by all map and queue implementations;
    the workload harness drives any persistence system through these. *)

type map = {
  insert : slot:int -> key:int -> value:int -> bool;
      (** [true] if the key was absent (value updated otherwise) *)
  remove : slot:int -> key:int -> bool;  (** [true] if the key was present *)
  search : slot:int -> key:int -> int option;
  map_rp : slot:int -> id:int -> unit;
      (** per-operation restart-point / pause-point hook *)
}

type queue = {
  enqueue : slot:int -> int -> unit;
  dequeue : slot:int -> int option;  (** [None] when empty *)
  queue_rp : slot:int -> id:int -> unit;
}

val no_rp : slot:int -> id:int -> unit
(** The hook for systems without restart points. *)

(** Lifecycle hooks of a persistence system: the workload driver registers
    each worker thread before its first operation, deregisters it after the
    last one, brackets blocking waits with allow/prevent (paper section
    3.3.3), and stops any background coordinator at the end of the run. *)
type system = {
  sys_register : slot:int -> unit;
  sys_deregister : slot:int -> unit;
  sys_allow : slot:int -> unit;
  sys_prevent : slot:int -> unit;
  sys_stop : unit -> unit;
}

val null_system : system
(** All hooks are no-ops (transient and purely per-op systems). *)
