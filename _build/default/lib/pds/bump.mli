(** Volatile bump allocator with size-class free lists, modelling [malloc]
    for the transient programs. Bookkeeping is host-level and atomic
    between simulation yield points; only a flat time cost is charged. *)

type t

val create : Simsched.Env.t -> base:int -> limit:int -> t
(** Allocator over the arena [base, limit). *)

val alloc : t -> words:int -> int
(** Allocate (free list first, then bump).
    @raise Failure when the arena is exhausted.
    @raise Invalid_argument if [words <= 0]. *)

val free : t -> int -> words:int -> unit
(** Return a block to its size class (immediately reusable: volatile). *)

val used : t -> base:int -> int
(** Words bumped from the arena so far. *)
