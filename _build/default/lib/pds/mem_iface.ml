(* Placement-agnostic memory interface for the transient data structures.

   The same structure code runs over NVMM or DRAM (the paper's
   Transient<NVMM> / Transient<DRAM> configurations), and persistence
   systems that wrap transient structures inject their own accessors
   (PMThreads intercepts stores; Clobber-NVM and Quadra intercept loads and
   stores to build per-operation read/write sets, which is why every
   accessor carries the thread slot). *)

type t = {
  load : slot:int -> int -> int;
  store : slot:int -> int -> int -> unit;
  alloc : slot:int -> words:int -> int;
  free : slot:int -> int -> words:int -> unit;
}

let of_env_bump env bump =
  {
    load = (fun ~slot:_ addr -> Simsched.Env.load env addr);
    store = (fun ~slot:_ addr v -> Simsched.Env.store env addr v);
    alloc = (fun ~slot:_ ~words -> Bump.alloc bump ~words);
    free = (fun ~slot:_ addr ~words -> Bump.free bump addr ~words);
  }
