(* Table 3 analogue: how much of each ported program is ResPCT
   instrumentation. The paper counts lines added or modified in the C
   sources; we count the lines of our OCaml ports that mention the ResPCT
   API (restart points, InCLL updates, tracking, allow/prevent, runtime
   plumbing) against the module's total lines. *)

let instrumentation_markers =
  [
    "Respct.";
    "App_env.rp";
    "App_env.store_once";
    "App_env.register";
    "App_env.deregister";
    "update_incll";
    "add_modified";
    "alloc_incll";
    "checkpoint_allow";
    "checkpoint_prevent";
    "cond_wait";
  ]

let targets =
  [
    ("HashMap", "lib/pds/hashmap_respct.ml");
    ("Queue", "lib/pds/queue_respct.ml");
    ("Dedup", "lib/apps/dedup.ml");
    ("Swaptions", "lib/apps/swaptions.ml");
    ("MatMul", "lib/apps/matmul.ml");
    ("LR", "lib/apps/linreg.ml");
    ("KV store", "lib/apps/kvstore.ml");
  ]

let count_file path =
  let ic = open_in path in
  let total = ref 0 and instrumented = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr total;
       if
         List.exists
           (fun marker ->
             let rec find i =
               i + String.length marker <= String.length line
               && (String.sub line i (String.length marker) = marker
                  || find (i + 1))
             in
             find 0)
           instrumentation_markers
       then incr instrumented
     done
   with End_of_file -> ());
  close_in ic;
  (!instrumented, !total)

(* Rows of (application, instrumented lines, total lines, percentage);
   files are resolved relative to [root] (the repository checkout). *)
let rows ?(root = ".") () =
  List.filter_map
    (fun (name, path) ->
      let path = Filename.concat root path in
      if Sys.file_exists path then begin
        let instrumented, total = count_file path in
        Some
          ( name,
            [
              string_of_int instrumented;
              string_of_int total;
              Printf.sprintf "%.2f%%"
                (100.0 *. float_of_int instrumented /. float_of_int total);
            ] )
      end
      else None)
    targets
