(* Plain-text rendering of result tables and series, in the shape of the
   paper's figures (rows = systems, columns = the swept parameter). *)

let rule widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let row widths cells =
  let cells =
    List.map2
      (fun w c ->
        let pad = w - String.length c in
        if pad >= 0 then " " ^ c ^ String.make (pad + 1) ' ' else " " ^ c ^ " ")
      widths cells
  in
  "|" ^ String.concat "|" cells ^ "|"

(* [print ~title ~header rows]: rows are (label, cell list). *)
let print ?out ~title ~header rows =
  let ppf = Option.value ~default:Format.std_formatter out in
  let all = header :: List.map (fun (label, cells) -> label :: cells) rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc r ->
            match List.nth_opt r i with
            | Some c -> max acc (String.length c)
            | None -> acc)
          0 all)
  in
  Format.fprintf ppf "@.== %s ==@." title;
  Format.fprintf ppf "%s@." (rule widths);
  Format.fprintf ppf "%s@." (row widths header);
  Format.fprintf ppf "%s@." (rule widths);
  List.iter
    (fun (label, cells) ->
      let cells =
        cells @ List.init (ncols - 1 - List.length cells) (fun _ -> "")
      in
      Format.fprintf ppf "%s@." (row widths (label :: cells)))
    rows;
  Format.fprintf ppf "%s@." (rule widths);
  Format.pp_print_flush ppf ()

let fmt_mops v = Printf.sprintf "%.2f" v
let fmt_ratio v = Printf.sprintf "%.2f" v
let fmt_ms ns = Printf.sprintf "%.2f" (ns /. 1e6)
