lib/harness/workload.ml: Array Float Option Pds Printf Simnvm Simsched
