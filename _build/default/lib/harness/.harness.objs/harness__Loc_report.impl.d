lib/harness/loc_report.ml: Filename List Printf String Sys
