lib/harness/systems.ml: Baselines Pds Respct Simnvm Simsched
