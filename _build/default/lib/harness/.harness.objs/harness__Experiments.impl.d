lib/harness/experiments.ml: Float List Printf Respct Simnvm Simsched Systems Table Workload
