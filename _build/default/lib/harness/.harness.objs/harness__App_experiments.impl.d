lib/harness/app_experiments.ml: Apps List Pds Printf Respct Simnvm Simsched Systems Table
