lib/harness/table.ml: Format List Option Printf String
