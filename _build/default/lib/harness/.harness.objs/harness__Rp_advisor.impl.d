lib/harness/rp_advisor.ml: Analysis Hashtbl List Simsched
