(* Real-world workload experiments: Figure 13 (compute-intensive
   applications) and Figure 14 (Memcached-like KV store under YCSB). *)

type app_scale = {
  matmul_n : int;
  lr_points : int;
  swaptions : int;
  dedup_chunks : int;
  kv_load : int;
  kv_run : int;
  kv_keys : int;
  app_threads : int;
  period_ns : float;
}

let small =
  {
    matmul_n = 96;
    lr_points = 400_000;
    swaptions = 6_000;
    dedup_chunks = 8_000;
    kv_load = 15_000;
    kv_run = 45_000;
    kv_keys = 15_000;
    app_threads = 64;
    period_ns = 250_000.0;
  }

let paper =
  {
    matmul_n = 96;
    lr_points = 2_000_000;
    swaptions = 1024;
    dedup_chunks = 100_000;
    kv_load = 1_000_000;
    kv_run = 1_000_000;
    kv_keys = 1_000_000;
    app_threads = 64;
    period_ns = 64.0e6;
  }

type variant = App_dram | App_nvm | App_respct

let variant_name = function
  | App_dram -> "Transient<DRAM>"
  | App_nvm -> "Transient<NVMM>"
  | App_respct -> "ResPCT"

(* Build a world sized for an application run; returns (env, persistence,
   transient arena). *)
let app_world (s : app_scale) variant ~nthreads ~nvm_words =
  let p =
    {
      Systems.default_params with
      Systems.max_threads = nthreads + 1;
      period_ns = s.period_ns;
      nvm_words;
      dram_words = nvm_words;
      registry_per_slot = 1 lsl 14;
      cache_sets = max 32 (4 * nthreads);
      cache_ways = 16;
      flusher_pool = nthreads;
    }
  in
  let kind =
    match variant with
    | App_dram -> Systems.Transient_dram
    | App_nvm | App_respct -> Systems.Transient_nvm
  in
  let _mem, _sched, env = Systems.world p ~kind in
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  match variant with
  | App_respct ->
      let rt = Respct.Runtime.create ~cfg:(Systems.rt_cfg p) env in
      Respct.Runtime.start rt;
      (* transient arena unused by durable apps, but harmless to provide *)
      let bump = Pds.Bump.create env ~base:lw ~limit:(mcfg.Simnvm.Memsys.nvm_words / 2) in
      (env, Apps.App_env.Durable rt, bump)
  | App_dram ->
      let base = mcfg.Simnvm.Memsys.nvm_words in
      let bump =
        Pds.Bump.create env ~base ~limit:(base + mcfg.Simnvm.Memsys.dram_words)
      in
      (env, Apps.App_env.Transient, bump)
  | App_nvm ->
      let bump =
        Pds.Bump.create env ~base:lw ~limit:(mcfg.Simnvm.Memsys.nvm_words / 2)
      in
      (env, Apps.App_env.Transient, bump)

let run_app (s : app_scale) variant = function
  | `Matmul ->
      let cfg = { Apps.Matmul.n = s.matmul_n; nthreads = s.app_threads } in
      let env, p, bump = app_world s variant ~nthreads:s.app_threads ~nvm_words:(1 lsl 21) in
      fst (Apps.Matmul.run env p cfg ~bump)
  | `Linreg naive ->
      let cfg =
        {
          Apps.Linreg.points = s.lr_points;
          nthreads = s.app_threads;
          granularity = (if naive then `Per_point else `Per_batch 1000);
        }
      in
      let env, p, bump = app_world s variant ~nthreads:s.app_threads ~nvm_words:(1 lsl 23) in
      fst (Apps.Linreg.run env p cfg ~bump)
  | `Swaptions naive ->
      let cfg =
        {
          Apps.Swaptions.swaptions = s.swaptions;
          trials = 60;
          nthreads = s.app_threads;
          granularity = (if naive then `Per_trial else `Per_swaption);
        }
      in
      let env, p, bump = app_world s variant ~nthreads:s.app_threads ~nvm_words:(1 lsl 21) in
      fst (Apps.Swaptions.run env p cfg ~bump)
  | `Dedup ->
      let cfg =
        {
          Apps.Dedup.default_cfg with
          Apps.Dedup.chunks = s.dedup_chunks;
          distinct = s.dedup_chunks / 4;
        }
      in
      let env, p, _bump = app_world s variant ~nthreads:64 ~nvm_words:(1 lsl 21) in
      fst (Apps.Dedup.run env p cfg)

(* Figure 13: normalised execution time (relative to Transient<DRAM>) for
   the four applications; plus the RP-placement ablation rows of section
   5.3 for LR and Swaptions. *)
let fig13 ?(scale = small) () =
  let apps =
    [
      ("Dedup", `Dedup);
      ("Swaptions", `Swaptions false);
      ("MatMul", `Matmul);
      ("LR", `Linreg false);
    ]
  in
  let base =
    List.map (fun (name, app) -> (name, run_app scale App_dram app)) apps
  in
  let rows =
    List.map
      (fun variant ->
        ( variant_name variant,
          List.map
            (fun (name, app) ->
              let t = run_app scale variant app in
              Table.fmt_ratio (t /. List.assoc name base))
            apps ))
      [ App_dram; App_nvm; App_respct ]
  in
  (* section 5.3 ablation: naive RP placement *)
  let naive =
    ( "ResPCT (naive RPs)",
      List.map
        (fun (name, app) ->
          match app with
          | `Swaptions _ ->
              Table.fmt_ratio
                (run_app scale App_respct (`Swaptions true)
                /. List.assoc name base)
          | `Linreg _ ->
              Table.fmt_ratio
                (run_app scale App_respct (`Linreg true) /. List.assoc name base)
          | `Matmul | `Dedup -> "-")
        apps )
  in
  rows @ [ naive ]

(* Figure 14: KV-store throughput (Kops/s) per YCSB mix and system. *)
let fig14 ?(scale = small) () =
  let mixes =
    [
      ("read-intensive", Apps.Ycsb.read_intensive);
      ("balanced", Apps.Ycsb.balanced);
      ("write-intensive", Apps.Ycsb.write_intensive);
    ]
  in
  List.map
    (fun variant ->
      ( variant_name variant,
        List.map
          (fun (_name, mix) ->
            let cfg =
              {
                Apps.Kvstore.default_cfg with
                Apps.Kvstore.keys = scale.kv_keys;
                buckets = scale.kv_keys;
                load_ops = scale.kv_load;
                run_ops = scale.kv_run;
                mix;
              }
            in
            let env, p, _bump =
              app_world scale variant
                ~nthreads:(cfg.Apps.Kvstore.clients + cfg.Apps.Kvstore.workers)
                ~nvm_words:(1 lsl 22)
            in
            let dur, ops = Apps.Kvstore.run env p cfg in
            Printf.sprintf "%.0f" (float_of_int ops /. dur *. 1e6))
          mixes ))
    [ App_dram; App_nvm; App_respct ]
