(* Automation of the paper's section 3.3.2 rules over recorded executions —
   the future-work direction of its section 6.

   Given a trace of a simulated run (Simsched.Trace), the advisor:

   - splits each thread's accesses into restart-point-delimited segments
     and applies the WAR rule per segment: any address read before its
     first write within a segment needs InCLL logging; addresses only
     written need tracking (add_modified); the rest of the persistent state
     needs nothing;
   - feeds the lock and access events to the vector-clock race checker,
     validating the race-freedom assumption of section 2.1 that the whole
     ResPCT design rests on.

   Instrumentation sanity in this repository's own tests: the advisor run
   over the ResPCT queue and hash map confirms that exactly the variables
   we made InCLL variables are the ones the rule demands. *)

type report = {
  needs_logging : int list; (* addresses with a WAR segment somewhere *)
  write_only : int list; (* persistent but WAR-free: add_modified suffices *)
  races : Analysis.Racecheck.race list;
  segments : int; (* RP-delimited segments analysed *)
}

(* Per-thread segmentation: a Restart_point event closes the current
   segment. Classification is cumulative across segments: one WAR segment
   anywhere makes the address require logging. *)
let analyse ?(addr_filter = fun (_ : int) -> true) events =
  let war : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let written : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let reads_in_segment : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8 (* per thread: addresses read before being written *)
  in
  let writes_in_segment : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let segments = ref 0 in
  let tbl_of store tid =
    match Hashtbl.find_opt store tid with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 32 in
        Hashtbl.add store tid t;
        t
  in
  let race_events = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Simsched.Trace.Load { tid; addr } when addr_filter addr ->
          let ws = tbl_of writes_in_segment tid in
          if not (Hashtbl.mem ws addr) then
            Hashtbl.replace (tbl_of reads_in_segment tid) addr ();
          race_events := Analysis.Racecheck.Rread { thread = tid; addr } :: !race_events
      | Simsched.Trace.Store { tid; addr } when addr_filter addr ->
          Hashtbl.replace written addr ();
          if Hashtbl.mem (tbl_of reads_in_segment tid) addr then
            Hashtbl.replace war addr ();
          Hashtbl.replace (tbl_of writes_in_segment tid) addr ();
          race_events := Analysis.Racecheck.Rwrite { thread = tid; addr } :: !race_events
      | Simsched.Trace.Acquire { tid; lock } ->
          race_events := Analysis.Racecheck.Racq { thread = tid; lock } :: !race_events
      | Simsched.Trace.Release { tid; lock } ->
          race_events := Analysis.Racecheck.Rrel { thread = tid; lock } :: !race_events
      | Simsched.Trace.Restart_point { tid; id = _ } ->
          incr segments;
          Hashtbl.remove reads_in_segment tid;
          Hashtbl.remove writes_in_segment tid
      | Simsched.Trace.Load _ | Simsched.Trace.Store _ -> ())
    events;
  let needs_logging =
    Hashtbl.fold (fun a () acc -> a :: acc) war [] |> List.sort compare
  in
  let write_only =
    Hashtbl.fold
      (fun a () acc -> if Hashtbl.mem war a then acc else a :: acc)
      written []
    |> List.sort compare
  in
  {
    needs_logging;
    write_only;
    races = Analysis.Racecheck.check (List.rev !race_events);
    segments = !segments;
  }
