(** Simulated pthread-style mutex with virtual-time hand-off semantics: on
    unlock, ownership passes to the oldest waiter and the waiter's clock is
    advanced to the release instant, serialising critical sections in
    virtual time. *)

type t

val create : ?name:string -> unit -> t

val lock : Scheduler.t -> t -> unit
(** Acquire, blocking in virtual time while contended. *)

val unlock : Scheduler.t -> t -> unit
(** Release; hands off to the oldest waiter.
    @raise Invalid_argument if the caller is not the owner. *)

val try_lock : Scheduler.t -> t -> bool
(** Non-blocking acquire. *)

val holder : t -> int option
(** Owner tid, if any (test hook). *)

val dump_held : unit -> string list
(** Debug helper: description of every currently held or contended mutex. *)

val with_lock : Scheduler.t -> t -> (unit -> 'a) -> 'a
(** Run a critical section. The lock is not released when the section is
    interrupted by a simulated crash — the machine died holding it. *)
