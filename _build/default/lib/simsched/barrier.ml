(* Reusable cyclic barrier for the data-parallel applications. *)

type t = {
  parties : int;
  m : Mutex.t;
  cv : Condvar.t;
  mutable arrived : int;
  mutable generation : int;
}

let create ?(name = "barrier") parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  {
    parties;
    m = Mutex.create ~name:(name ^ ".m") ();
    cv = Condvar.create ~name ();
    arrived = 0;
    generation = 0;
  }

let trace = ref false

let await sched b =
  Mutex.lock sched b.m;
  let gen = b.generation in
  b.arrived <- b.arrived + 1;
  if !trace then
    Printf.printf "barrier %s: tid %d arrived (%d/%d) gen %d at %.0f\n"
      (Condvar.name b.cv) (Scheduler.current_tid sched) b.arrived b.parties gen
      (Scheduler.now sched);
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.generation <- b.generation + 1;
    Condvar.broadcast sched b.cv
  end
  else
    while b.generation = gen do
      Condvar.wait sched b.cv b.m
    done;
  Mutex.unlock sched b.m
