(** Execution tracing: when a recorder is installed, {!Env} and {!Mutex}
    emit one event per memory access and lock operation, and the ResPCT
    runtime emits restart-point markers. The harness feeds the traces to
    the WAR/idempotence and race analyses, automating the paper's section
    3.3.2 classification rules. One traced world at a time. *)

type event =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Restart_point of { tid : int; id : int }

type recorder

val start : unit -> recorder
(** Install a fresh recorder. *)

val stop : unit -> unit
(** Remove the current recorder. *)

val emit : event -> unit
(** Record an event (no-op when no recorder is installed). *)

val events : recorder -> event list
(** Events in program order. *)

val record : (unit -> 'a) -> 'a * event list
(** Run a computation under a fresh recorder and return its trace;
    restores the previous recorder afterwards. *)
