(** Simulated condition variable with pthread semantics over {!Mutex}. *)

type t

val create : ?name:string -> unit -> t

val wait : Scheduler.t -> t -> Mutex.t -> unit
(** Atomically release the mutex and block; re-acquires the mutex before
    returning. As with pthreads, spurious-wakeup-safe use requires a
    predicate loop around the wait. *)

val signal : Scheduler.t -> t -> unit
(** Wake the oldest waiter, if any. *)

val broadcast : Scheduler.t -> t -> unit
(** Wake every waiter. *)

val waiting : t -> int
(** Number of parked waiters (test hook). *)

val name : t -> string

val dump_waiting : unit -> string list
(** Debug helper: every condition variable with parked waiters. *)
