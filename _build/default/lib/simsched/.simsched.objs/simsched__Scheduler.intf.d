lib/simsched/scheduler.mli:
