lib/simsched/trace.mli:
