lib/simsched/barrier.mli: Scheduler
