lib/simsched/env.mli: Scheduler Simnvm
