lib/simsched/trace.ml: Fun List
