lib/simsched/mutex.mli: Scheduler
