lib/simsched/condvar.ml: List Mutex Printf Queue Scheduler String
