lib/simsched/mutex.ml: List Printf Queue Scheduler Trace
