lib/simsched/env.ml: Hashtbl Mutex Scheduler Simnvm Trace
