lib/simsched/barrier.ml: Condvar Mutex Printf Scheduler
