lib/simsched/condvar.mli: Mutex Scheduler
