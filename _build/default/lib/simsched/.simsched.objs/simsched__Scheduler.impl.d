lib/simsched/scheduler.ml: Effect Float List Printf Simnvm String
