(* Execution tracing.

   When a recorder is installed, the environment and the synchronisation
   primitives emit one event per memory access, lock operation and restart
   point. The harness feeds these traces to the WAR/idempotence analyser
   and the race checker (Analysis), automating the variable-classification
   rules of the paper's section 3.3.2 — the direction its section 6 calls
   future work.

   The recorder is process-global (one traced world at a time), which keeps
   the zero-cost-when-disabled fast path a single ref read. *)

type event =
  | Load of { tid : int; addr : int }
  | Store of { tid : int; addr : int }
  | Acquire of { tid : int; lock : int }
  | Release of { tid : int; lock : int }
  | Restart_point of { tid : int; id : int }

type recorder = { mutable events : event list; mutable count : int }

let current : recorder option ref = ref None

let start () =
  let r = { events = []; count = 0 } in
  current := Some r;
  r

let stop () = current := None

let emit ev =
  match !current with
  | None -> ()
  | Some r ->
      r.events <- ev :: r.events;
      r.count <- r.count + 1

let events r = List.rev r.events

(* Run [f] with tracing enabled, then restore the previous recorder. *)
let record f =
  let saved = !current in
  let r = start () in
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let v = f () in
      (v, events r))
