(** Reusable cyclic barrier (for data-parallel application kernels). *)

type t

val create : ?name:string -> int -> t
(** [create parties] makes a barrier for [parties] threads.
    @raise Invalid_argument if [parties <= 0]. *)

val await : Scheduler.t -> t -> unit
(** Block until all parties arrived; the barrier then resets. *)

val trace : bool ref
(** Debug: print arrivals. *)
