(* Simulated condition variable with pthread semantics. *)

let signal_ns = 20.0
let wait_ns = 25.0

type t = { name : string; waiters : int Queue.t }

let all : t list ref = ref []

let create ?(name = "condvar") () =
  let cv = { name; waiters = Queue.create () } in
  all := cv :: !all;
  cv

(* Debug helper: every condition variable with parked waiters. *)
let dump_waiting () =
  List.filter_map
    (fun cv ->
      if Queue.is_empty cv.waiters then None
      else
        Some
          (Printf.sprintf "%s: [%s]" cv.name
             (String.concat ";"
                (List.map string_of_int (List.of_seq (Queue.to_seq cv.waiters))))))
    !all

let wait sched cv m =
  Scheduler.charge sched wait_ns;
  let me = Scheduler.current_tid sched in
  Queue.add me cv.waiters;
  Mutex.unlock sched m;
  (* No preemption point between the queue registration above and this
     block: a signaller always observes us Blocked. *)
  Scheduler.block sched;
  Mutex.lock sched m

let signal sched cv =
  Scheduler.charge sched signal_ns;
  match Queue.take_opt cv.waiters with
  | Some tid -> Scheduler.wakeup sched tid ~at:(Scheduler.now sched)
  | None -> ()

let broadcast sched cv =
  Scheduler.charge sched signal_ns;
  let at = Scheduler.now sched in
  Queue.iter (fun tid -> Scheduler.wakeup sched tid ~at) cv.waiters;
  Queue.clear cv.waiters

let waiting cv = Queue.length cv.waiters
let name cv = cv.name
