(* Swaptions (Parsec): lockless data-parallel Monte-Carlo pricing. Each
   thread prices a disjoint set of swaptions; each price is the mean over
   [trials] simulated paths.

   RP placement (paper section 5.3, "the problem and the solution were very
   similar [to LR]"):
   - [`Per_trial]: an RP after every Monte-Carlo trial forces the running
     sum into an InCLL variable updated per trial — the naive placement;
   - [`Per_swaption]: trials accumulate in a volatile local; only the final
     price is persistent (write-once), with one RP per swaption. *)

type granularity = [ `Per_trial | `Per_swaption ]

type cfg = {
  swaptions : int;
  trials : int;
  nthreads : int;
  granularity : granularity;
}

let default_cfg =
  { swaptions = 256; trials = 200; nthreads = 64; granularity = `Per_swaption }

let trial_compute_ns = 120.0 (* path simulation arithmetic *)

(* Deterministic pseudo-price contribution of one trial. *)
let trial_value s t = ((s * 31) + (t * 17)) mod 1000

(* Returns (virtual makespan, base address of the price vector). *)
let run env persistence (cfg : cfg) ~bump =
  let prices = ref 0 in
  let setup () =
    prices := App_env.alloc persistence bump ~slot:0 ~words:cfg.swaptions
  in
  let makespan =
    App_env.run_workers ~setup env persistence ~nthreads:cfg.nthreads
      (fun ~slot ->
        let per = (cfg.swaptions + cfg.nthreads - 1) / cfg.nthreads in
        let lo = slot * per and hi = min cfg.swaptions ((slot + 1) * per) in
        let acc_cell =
          match (persistence, cfg.granularity) with
          | App_env.Durable rt, `Per_trial ->
              Some (Respct.Runtime.alloc_incll rt ~slot 0)
          | _ -> None
        in
        for s = lo to hi - 1 do
          (match (acc_cell, persistence) with
          | Some cell, App_env.Durable rt ->
              (* naive placement: persistent running sum, RP per trial *)
              Respct.Runtime.update rt ~slot cell 0;
              for t = 1 to cfg.trials do
                Simsched.Env.compute env trial_compute_ns;
                Respct.Runtime.update rt ~slot cell
                  (Respct.Runtime.read rt ~slot cell + trial_value s t);
                App_env.rp persistence ~slot 1
              done;
              App_env.store_once env persistence ~slot (!prices + s)
                (Respct.Runtime.read rt ~slot cell / cfg.trials)
          | _ ->
              let acc = ref 0 in
              for t = 1 to cfg.trials do
                Simsched.Env.compute env trial_compute_ns;
                acc := !acc + trial_value s t
              done;
              App_env.store_once env persistence ~slot (!prices + s)
                (!acc / cfg.trials));
          (* RP after each completed swaption *)
          App_env.rp persistence ~slot 2
        done)
  in
  (makespan, !prices)

let expected_price cfg s =
  let acc = ref 0 in
  for t = 1 to cfg.trials do
    acc := !acc + trial_value s t
  done;
  !acc / cfg.trials
