(* Matrix multiplication (Phoenix MatMul): C = A x B, rows of C partitioned
   over the worker threads.

   ResPCT port per the paper: a restart point after computing each cell of
   C. Each C cell is written exactly once (no WAR dependency), so it is a
   plain persistent word registered with add_modified -- no InCLL needed.
   A and B are read-only inputs; the loop indices are reinitialised from
   the restart point on recovery. *)

type cfg = { n : int; nthreads : int }

let default_cfg = { n = 48; nthreads = 64 }

(* One fused multiply-add's worth of non-memory work. *)
let fma_ns = 1.0

(* Returns (virtual makespan, base address of C). *)
let run env persistence (cfg : cfg) ~bump =
  let n = cfg.n in
  let a = ref 0 and b = ref 0 and c = ref 0 in
  let setup () =
    a := App_env.alloc persistence bump ~slot:0 ~words:(n * n);
    b := App_env.alloc persistence bump ~slot:0 ~words:(n * n);
    c := App_env.alloc persistence bump ~slot:0 ~words:(n * n);
    for i = 0 to (n * n) - 1 do
      Simsched.Env.store env (!a + i) ((i * 7) + 1);
      Simsched.Env.store env (!b + i) ((i * 13) + 2)
    done
  in
  let makespan =
    App_env.run_workers ~setup env persistence ~nthreads:cfg.nthreads
      (fun ~slot ->
      let rows_per = (n + cfg.nthreads - 1) / cfg.nthreads in
      let lo = slot * rows_per and hi = min n ((slot + 1) * rows_per) in
      for i = lo to hi - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0 in
          for k = 0 to n - 1 do
            let x = Simsched.Env.load env (!a + (i * n) + k) in
            let y = Simsched.Env.load env (!b + (k * n) + j) in
            acc := !acc + (x * y);
            Simsched.Env.compute env fma_ns
          done;
          App_env.store_once env persistence ~slot (!c + (i * n) + j) !acc;
          (* RP after each cell of the result matrix (paper section 5.3) *)
          App_env.rp persistence ~slot 1
        done
      done)
  in
  (makespan, !c)

(* Reference result for correctness checks. *)
let expected_cell cfg i j =
  let n = cfg.n in
  let acc = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + ((((i * n) + k) * 7 + 1) * ((((k * n) + j) * 13) + 2))
  done;
  !acc
