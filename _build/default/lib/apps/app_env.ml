(* Shared plumbing for the application kernels (paper section 5.3).

   Every kernel runs in one of two variants:
   - [Transient]: the original program, plain loads and stores (the world's
     latency config decides whether that means DRAM or NVMM);
   - [Durable rt]: the ResPCT port -- persistent state in NVMM, updates
     through update_InCLL / add_modified, restart points per the paper's
     placement discussion. *)

type persistence = Transient | Durable of Respct.Runtime.t

(* Allocate [words] of application memory: from the ResPCT heap when
   durable, from a caller-provided transient arena otherwise. *)
let alloc persistence bump ~slot ~words =
  match persistence with
  | Transient -> Pds.Bump.alloc bump ~words
  | Durable rt -> Respct.Runtime.alloc_raw rt ~slot ~words

let rp persistence ~slot id =
  match persistence with
  | Transient -> ()
  | Durable rt -> Respct.Runtime.rp rt ~slot id

let register persistence ~slot =
  match persistence with
  | Transient -> ()
  | Durable rt -> Respct.Runtime.register rt ~slot

let deregister persistence ~slot =
  match persistence with
  | Transient -> ()
  | Durable rt -> Respct.Runtime.deregister rt ~slot

(* Store a write-once persistent value (no WAR dependency: plain store plus
   tracking, paper section 3.3.2). *)
let store_once env persistence ~slot addr v =
  Simsched.Env.store env addr v;
  match persistence with
  | Transient -> ()
  | Durable rt -> Respct.Runtime.add_modified rt ~slot addr

(* Run [setup] on its own simulated thread, then [nthreads] kernel workers
   (released by a barrier once setup finished); returns the virtual
   makespan of the workers. The runtime's coordinator, if any, is stopped
   by the last worker. *)
let run_workers ?(setup = fun () -> ()) env persistence ~nthreads body =
  let sched = Simsched.Env.sched env in
  let ready = Simsched.Barrier.create ~name:"app-ready" (nthreads + 1) in
  let starts = Array.make nthreads infinity in
  let ends = Array.make nthreads 0.0 in
  let remaining = ref nthreads in
  ignore
    (Simsched.Scheduler.spawn ~name:"app-setup" sched (fun () ->
         setup ();
         Simsched.Barrier.await sched ready));
  for w = 0 to nthreads - 1 do
    ignore
      (Simsched.Scheduler.spawn ~name:(Printf.sprintf "app%d" w) sched
         (fun () ->
           (* Register before the barrier so startup is not measured; the
              barrier wait is bracketed by checkpoint_allow/prevent (paper
              section 3.3.3) since a checkpoint may fire meanwhile. *)
           register persistence ~slot:w;
           (match persistence with
           | Transient -> ()
           | Durable rt -> Respct.Runtime.checkpoint_allow rt ~slot:w);
           Simsched.Barrier.await sched ready;
           (match persistence with
           | Transient -> ()
           | Durable rt -> Respct.Runtime.checkpoint_prevent_nolock rt ~slot:w);
           starts.(w) <- Simsched.Scheduler.now sched;
           body ~slot:w;
           deregister persistence ~slot:w;
           ends.(w) <- Simsched.Scheduler.now sched;
           decr remaining;
           if !remaining = 0 then
             match persistence with
             | Transient -> ()
             | Durable rt -> Respct.Runtime.stop rt))
  done;
  (match Simsched.Scheduler.run sched with
  | Simsched.Scheduler.Completed -> ()
  | Simsched.Scheduler.Crash_interrupt _ -> failwith "unexpected crash");
  (* Makespan of the parallel phase only: input initialisation on the setup
     thread is not part of the measured kernel. *)
  Array.fold_left Float.max 0.0 ends
  -. Array.fold_left Float.min infinity starts
