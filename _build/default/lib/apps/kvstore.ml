(* Memcached-like in-memory key-value store (paper section 5.3, Figure 14):
   client threads issue requests through a shared queue; a small pool of
   worker threads executes them against the hash table, which is the only
   persistent state (the paper's port persists exactly the key-value hash
   table). Responses are asynchronous writes: the client is answered as
   soon as the operation is applied, without waiting for durability — the
   paper's "asynchronous writes version".

   Clients are closed-loop RPC callers (enqueue, block on a response
   condition variable, repeat), which exercises the Figure 7
   checkpoint_allow/prevent protocol on both sides of the queue. *)

type cfg = {
  clients : int;
  workers : int;
  keys : int;
  buckets : int;
  load_ops : int;
  run_ops : int; (* total measured operations *)
  mix : Ycsb.mix;
}

let default_cfg =
  {
    clients = 32;
    workers = 4;
    keys = 20_000;
    buckets = 20_000;
    load_ops = 20_000;
    run_ops = 60_000;
    mix = Ycsb.read_intensive;
  }

type request = {
  op : Ycsb.op;
  client : int;
}

type t = {
  q : request Queue.t;
  qm : Simsched.Mutex.t;
  q_nonempty : Simsched.Condvar.t;
  response_m : Simsched.Mutex.t array; (* per client *)
  response_cv : Simsched.Condvar.t array;
  response_ready : bool array;
  mutable stop : bool;
}

let network_ns = 250.0 (* request parsing + response serialisation share *)

(* Returns (virtual makespan of the measured phase, ops completed). *)
let run env persistence (cfg : cfg) =
  let sched = Simsched.Env.sched env in
  let t =
    {
      q = Queue.create ();
      qm = Simsched.Mutex.create ~name:"kv-q" ();
      q_nonempty = Simsched.Condvar.create ~name:"kv-q" ();
      response_m =
        Array.init cfg.clients (fun _ -> Simsched.Mutex.create ~name:"kv-resp" ());
      response_cv =
        Array.init cfg.clients (fun _ -> Simsched.Condvar.create ~name:"kv-resp" ());
      response_ready = Array.make cfg.clients false;
      stop = false;
    }
  in
  let table = ref None in
  let completed = ref 0 in
  let finished_clients = ref 0 in
  let t_start = ref infinity and t_end = ref 0.0 in
  let nthreads = cfg.workers + cfg.clients in
  (* Slots: workers use 0..workers-1, clients workers..workers+clients-1. *)
  let setup () =
    table :=
      Some
        (match persistence with
        | App_env.Durable rt ->
            `Respct (Pds.Hashmap_respct.create rt ~slot:0 ~buckets:cfg.buckets)
        | App_env.Transient ->
            let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
            let bump =
              Pds.Bump.create env
                ~base:(mcfg.Simnvm.Memsys.nvm_words / 2)
                ~limit:mcfg.Simnvm.Memsys.nvm_words
            in
            `Transient
              (Pds.Hashmap_transient.create env
                 (Pds.Mem_iface.of_env_bump env bump)
                 ~buckets:cfg.buckets))
  in
  let wait ~slot cv m =
    match persistence with
    | App_env.Transient -> Simsched.Condvar.wait sched cv m
    | App_env.Durable rt -> Respct.Runtime.cond_wait rt ~slot cv m
  in
  let execute ~slot op =
    match (Option.get !table, op) with
    | `Respct m, Ycsb.Get k -> ignore (Pds.Hashmap_respct.search m ~slot ~key:k)
    | `Respct m, Ycsb.Put (k, v) ->
        ignore (Pds.Hashmap_respct.insert m ~slot ~key:k ~value:v)
    | `Transient m, Ycsb.Get k ->
        ignore (Pds.Hashmap_transient.search m ~slot ~key:k)
    | `Transient m, Ycsb.Put (k, v) ->
        ignore (Pds.Hashmap_transient.insert m ~slot ~key:k ~value:v)
  in
  let makespan =
    App_env.run_workers ~setup env persistence ~nthreads (fun ~slot ->
        if slot < cfg.workers then begin
          (* server worker *)
          let continue = ref true in
          while !continue do
            App_env.rp persistence ~slot 1;
            Simsched.Mutex.lock sched t.qm;
            while Queue.is_empty t.q && not t.stop do
              wait ~slot t.q_nonempty t.qm
            done;
            if Queue.is_empty t.q && t.stop then begin
              continue := false;
              Simsched.Mutex.unlock sched t.qm
            end
            else begin
              let r = Queue.pop t.q in
              Simsched.Mutex.unlock sched t.qm;
              Simsched.Env.compute env network_ns;
              execute ~slot r.op;
              (* asynchronous write: respond without waiting for durability *)
              Simsched.Mutex.lock sched t.response_m.(r.client);
              t.response_ready.(r.client) <- true;
              Simsched.Condvar.signal sched t.response_cv.(r.client);
              Simsched.Mutex.unlock sched t.response_m.(r.client)
            end
          done
        end
        else begin
          (* client *)
          let c = slot - cfg.workers in
          let rng = Simnvm.Rng.create (977 * (c + 1)) in
          let z = Ycsb.make_zipf cfg.keys in
          (* load phase: clients share the load keys round-robin *)
          let rec load i =
            if i < cfg.load_ops then begin
              let key = Ycsb.scramble i cfg.keys in
              Simsched.Mutex.lock sched t.qm;
              Queue.push { op = Ycsb.Put (key, i); client = c } t.q;
              Simsched.Condvar.signal sched t.q_nonempty;
              Simsched.Mutex.unlock sched t.qm;
              Simsched.Mutex.lock sched t.response_m.(c);
              while not t.response_ready.(c) do
                wait ~slot t.response_cv.(c) t.response_m.(c)
              done;
              t.response_ready.(c) <- false;
              Simsched.Mutex.unlock sched t.response_m.(c);
              load (i + cfg.clients)
            end
          in
          load c;
          (* measured phase *)
          if Simsched.Scheduler.now sched < !t_start then
            t_start := Simsched.Scheduler.now sched;
          let per_client = cfg.run_ops / cfg.clients in
          for _ = 1 to per_client do
            App_env.rp persistence ~slot 2;
            let op = Ycsb.next_op cfg.mix z rng in
            Simsched.Mutex.lock sched t.qm;
            Queue.push { op; client = c } t.q;
            Simsched.Condvar.signal sched t.q_nonempty;
            Simsched.Mutex.unlock sched t.qm;
            Simsched.Mutex.lock sched t.response_m.(c);
            while not t.response_ready.(c) do
              wait ~slot t.response_cv.(c) t.response_m.(c)
            done;
            t.response_ready.(c) <- false;
            Simsched.Mutex.unlock sched t.response_m.(c);
            incr completed
          done;
          if Simsched.Scheduler.now sched > !t_end then
            t_end := Simsched.Scheduler.now sched;
          (* last client to finish stops the workers *)
          incr finished_clients;
          if !finished_clients = cfg.clients then begin
            Simsched.Mutex.lock sched t.qm;
            t.stop <- true;
            Simsched.Condvar.broadcast sched t.q_nonempty;
            Simsched.Mutex.unlock sched t.qm
          end
        end)
  in
  ignore makespan;
  (!t_end -. !t_start, !completed)
