(** Shared plumbing for the application kernels (paper section 5.3): each
    kernel runs either as the original transient program or as its ResPCT
    port, selected by {!persistence}. *)

type persistence =
  | Transient  (** plain loads/stores (DRAM or NVMM per the world config) *)
  | Durable of Respct.Runtime.t  (** the ResPCT port *)

val alloc : persistence -> Pds.Bump.t -> slot:int -> words:int -> int
(** Application memory: the ResPCT heap when durable, the transient arena
    otherwise. *)

val rp : persistence -> slot:int -> int -> unit
(** Restart point (no-op when transient). *)

val register : persistence -> slot:int -> unit
val deregister : persistence -> slot:int -> unit

val store_once : Simsched.Env.t -> persistence -> slot:int -> int -> int -> unit
(** Store a write-once persistent value: plain store plus tracking, the
    paper's rule for WAR-free variables (section 3.3.2). *)

val run_workers :
  ?setup:(unit -> unit) ->
  Simsched.Env.t ->
  persistence ->
  nthreads:int ->
  (slot:int -> unit) ->
  float
(** Run [setup] on a simulated thread, then the worker bodies (registered,
    released together by a barrier bracketed with allow/prevent); returns
    the virtual makespan of the parallel phase. The last worker stops the
    runtime's coordinator. *)
