(* YCSB-style workload generation (Cooper et al., SoCC'10): a load phase
   populating the store and an operation mix over a zipfian-skewed key
   popularity distribution, as used for the paper's Memcached evaluation
   (Figure 14). *)

type mix = { read_pct : int }

let read_intensive = { read_pct = 90 }
let balanced = { read_pct = 50 }
let write_intensive = { read_pct = 10 }

let mix_name m =
  Printf.sprintf "%d%%read/%d%%write" m.read_pct (100 - m.read_pct)

(* Standard YCSB zipfian generator (Gray et al.'s algorithm): constant time
   per sample after an O(n) zeta precomputation. *)
type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  threshold : float; (* zeta(2, theta) *)
}

let make_zipf ?(theta = 0.99) n =
  let zeta m =
    let acc = ref 0.0 in
    for i = 1 to m do
      acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !acc
  in
  let zetan = zeta n in
  let zeta2 = zeta 2 in
  {
    n;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan));
    threshold = zeta2;
  }

let sample_zipf z rng =
  let u = Simnvm.Rng.float rng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
  else
    int_of_float
      (float_of_int z.n
      *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
    mod z.n

type op = Get of int | Put of int * int

(* Scramble the zipfian rank so hot keys spread over the key space. *)
let scramble key n = (key * 2654435761) land max_int mod n

let next_op mix z rng =
  let key = scramble (sample_zipf z rng) z.n in
  if Simnvm.Rng.int rng 100 < mix.read_pct then Get key
  else Put (key, Simnvm.Rng.bits rng)
