lib/apps/linreg.ml: App_env Array Respct Simsched
