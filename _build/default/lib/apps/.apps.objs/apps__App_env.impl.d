lib/apps/app_env.ml: Array Float Pds Printf Respct Simsched
