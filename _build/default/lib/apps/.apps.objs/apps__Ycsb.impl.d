lib/apps/ycsb.ml: Float Printf Simnvm
