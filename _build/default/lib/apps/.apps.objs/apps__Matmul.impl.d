lib/apps/matmul.ml: App_env Simsched
