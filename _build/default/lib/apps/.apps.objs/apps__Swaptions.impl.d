lib/apps/swaptions.ml: App_env Respct Simsched
