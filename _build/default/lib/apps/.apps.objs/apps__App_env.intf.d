lib/apps/app_env.mli: Pds Respct Simsched
