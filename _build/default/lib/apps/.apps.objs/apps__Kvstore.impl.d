lib/apps/kvstore.ml: App_env Array Option Pds Queue Respct Simnvm Simsched Ycsb
