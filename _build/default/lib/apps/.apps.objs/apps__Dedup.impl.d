lib/apps/dedup.ml: App_env Option Pds Queue Respct Simnvm Simsched
