lib/apps/ycsb.mli: Simnvm
