(** YCSB-style workload generation (Cooper et al., SoCC'10) for the
    Figure 14 KV-store evaluation: zipfian key popularity and read/write
    mixes. *)

type mix = { read_pct : int }

val read_intensive : mix
(** 90% reads. *)

val balanced : mix
(** 50% reads. *)

val write_intensive : mix
(** 10% reads. *)

val mix_name : mix -> string

type zipf

val make_zipf : ?theta:float -> int -> zipf
(** Standard YCSB zipfian generator over [0, n); [theta] defaults to the
    YCSB constant 0.99. *)

val sample_zipf : zipf -> Simnvm.Rng.t -> int
(** Constant-time sample; rank 0 is the most popular key. *)

type op = Get of int | Put of int * int

val scramble : int -> int -> int
(** Spread a zipfian rank over the key space (YCSB's hashed item order). *)

val next_op : mix -> zipf -> Simnvm.Rng.t -> op
(** One operation of the mix over a zipfian-scrambled key. *)
