(* Linear regression (Phoenix LR): one pass over the (x, y) points
   accumulating sum_x, sum_y, sum_xx, sum_xy per thread, then a reduction.

   This kernel is the paper's RP-placement case study (section 5.3):

   - [`Per_point] restart points: every point's processing must persist its
     effect, so the four accumulators are InCLL variables updated with
     update_InCLL at every point — the naive placement that cost the paper
     a 9x slowdown;
   - [`Per_batch n]: accumulate in volatile locals, fold into the InCLL
     accumulators and place the RP once per batch of [n] points — the fix
     that brought the overhead to ~20%. *)

type granularity = [ `Per_point | `Per_batch of int ]
type cfg = { points : int; nthreads : int; granularity : granularity }

let default_cfg = { points = 60_000; nthreads = 64; granularity = `Per_batch 1000 }

let point_compute_ns = 2.0

type accumulators = { sx : int; sy : int; sxx : int; sxy : int }

(* Returns (virtual makespan, accumulator totals). *)
let run env persistence (cfg : cfg) ~bump =
  let pts = ref 0 in
  let setup () =
    pts := App_env.alloc persistence bump ~slot:0 ~words:(2 * cfg.points);
    for i = 0 to cfg.points - 1 do
      Simsched.Env.store env (!pts + (2 * i)) (i mod 1000);
      Simsched.Env.store env (!pts + (2 * i) + 1) (((3 * (i mod 1000)) + 7) mod 5000)
    done
  in
  let totals = Array.make cfg.nthreads { sx = 0; sy = 0; sxx = 0; sxy = 0 } in
  let makespan =
    App_env.run_workers ~setup env persistence ~nthreads:cfg.nthreads
      (fun ~slot ->
        let per = (cfg.points + cfg.nthreads - 1) / cfg.nthreads in
        let lo = slot * per and hi = min cfg.points ((slot + 1) * per) in
        (* Per-thread persistent accumulators (InCLL: they carry WAR
           dependencies across restart points). *)
        let cells =
          match persistence with
          | App_env.Transient -> [||]
          | App_env.Durable rt ->
              Array.init 4 (fun _ -> Respct.Runtime.alloc_incll rt ~slot 0)
        in
        let vsx = ref 0 and vsy = ref 0 and vsxx = ref 0 and vsxy = ref 0 in
        let flush_batch () =
          match persistence with
          | App_env.Transient -> ()
          | App_env.Durable rt ->
              let upd i v =
                if v <> 0 then
                  Respct.Runtime.update rt ~slot cells.(i)
                    (Respct.Runtime.read rt ~slot cells.(i) + v)
              in
              upd 0 !vsx;
              upd 1 !vsy;
              upd 2 !vsxx;
              upd 3 !vsxy;
              vsx := 0;
              vsy := 0;
              vsxx := 0;
              vsxy := 0
        in
        let batch =
          match cfg.granularity with `Per_point -> 1 | `Per_batch n -> n
        in
        let since_rp = ref 0 in
        for i = lo to hi - 1 do
          let x = Simsched.Env.load env (!pts + (2 * i)) in
          let y = Simsched.Env.load env (!pts + (2 * i) + 1) in
          Simsched.Env.compute env point_compute_ns;
          vsx := !vsx + x;
          vsy := !vsy + y;
          vsxx := !vsxx + (x * x);
          vsxy := !vsxy + (x * y);
          incr since_rp;
          if !since_rp >= batch then begin
            flush_batch ();
            App_env.rp persistence ~slot 1;
            since_rp := 0
          end
        done;
        flush_batch ();
        App_env.rp persistence ~slot 2;
        (* Final reduction values, read back for verification. *)
        totals.(slot) <-
          (match persistence with
          | App_env.Transient -> { sx = !vsx; sy = !vsy; sxx = !vsxx; sxy = !vsxy }
          | App_env.Durable rt ->
              {
                sx = Respct.Runtime.read rt ~slot cells.(0);
                sy = Respct.Runtime.read rt ~slot cells.(1);
                sxx = Respct.Runtime.read rt ~slot cells.(2);
                sxy = Respct.Runtime.read rt ~slot cells.(3);
              }))
  in
  let sum f = Array.fold_left (fun acc a -> acc + f a) 0 totals in
  ( makespan,
    {
      sx = sum (fun a -> a.sx);
      sy = sum (fun a -> a.sy);
      sxx = sum (fun a -> a.sxx);
      sxy = sum (fun a -> a.sxy);
    } )

(* Reference totals for correctness checks. *)
let expected cfg =
  let sx = ref 0 and sy = ref 0 and sxx = ref 0 and sxy = ref 0 in
  for i = 0 to cfg.points - 1 do
    let x = i mod 1000 in
    let y = ((3 * (i mod 1000)) + 7) mod 5000 in
    sx := !sx + x;
    sy := !sy + y;
    sxx := !sxx + (x * x);
    sxy := !sxy + (x * y)
  done;
  { sx = !sx; sy = !sy; sxx = !sxx; sxy = !sxy }
