(* Dedup (Parsec): a data-processing pipeline whose stages synchronise with
   condition variables — the paper's heavily lock-based application and the
   exercise for the Figure 7 cond_wait protocol.

   Stages: producer -> [chunk queue] -> hashers -> [hashed queue] ->
   writers. Writers insert (hash -> chunk id) into the persistent
   deduplication table (the ResPCT hash map in the durable variant) and
   count unique chunks. Every queue wait uses checkpoint_allow /
   checkpoint_prevent so checkpoints can proceed while a stage is blocked. *)

type cfg = {
  chunks : int;
  distinct : int; (* number of distinct chunk contents (duplication rate) *)
  hashers : int;
  writers : int;
  queue_cap : int;
}

let default_cfg =
  { chunks = 8_000; distinct = 2_000; hashers = 32; writers = 31; queue_cap = 64 }

let hash_compute_ns = 150.0 (* per-chunk fingerprint arithmetic *)

(* Bounded queue on simulated synchronisation primitives. The [-1] value is
   the end-of-stream marker, broadcast once per consumer. *)
module Bq = struct
  type t = {
    items : int Queue.t;
    cap : int;
    m : Simsched.Mutex.t;
    not_empty : Simsched.Condvar.t;
    not_full : Simsched.Condvar.t;
  }

  let create name cap =
    {
      items = Queue.create ();
      cap;
      m = Simsched.Mutex.create ~name ();
      not_empty = Simsched.Condvar.create ~name:(name ^ ".ne") ();
      not_full = Simsched.Condvar.create ~name:(name ^ ".nf") ();
    }

  (* [wait] abstracts the cond_wait protocol: ResPCT variants pass
     Runtime.cond_wait, transient ones plain Condvar.wait. *)
  let push sched wait t v =
    Simsched.Mutex.lock sched t.m;
    while Queue.length t.items >= t.cap do
      wait t.not_full t.m
    done;
    Queue.push v t.items;
    Simsched.Condvar.signal sched t.not_empty;
    Simsched.Mutex.unlock sched t.m

  let pop sched wait t =
    Simsched.Mutex.lock sched t.m;
    while Queue.is_empty t.items do
      wait t.not_empty t.m
    done;
    let v = Queue.pop t.items in
    Simsched.Condvar.signal sched t.not_full;
    Simsched.Mutex.unlock sched t.m;
    v
end

(* Returns (virtual makespan, number of unique chunks found). *)
let run env persistence (cfg : cfg) =
  let sched = Simsched.Env.sched env in
  let chunk_q = Bq.create "chunkq" cfg.queue_cap in
  let hashed_q = Bq.create "hashedq" cfg.queue_cap in
  let unique = ref 0 in
  let unique_m = Simsched.Mutex.create ~name:"unique" () in
  let table = ref None in
  let nthreads = 1 + cfg.hashers + cfg.writers in
  let setup () =
    match persistence with
    | App_env.Durable rt ->
        table :=
          Some (`Respct (Pds.Hashmap_respct.create rt ~slot:0 ~buckets:4096))
    | App_env.Transient ->
        let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
        let bump =
          Pds.Bump.create env
            ~base:(mcfg.Simnvm.Memsys.nvm_words / 2)
            ~limit:mcfg.Simnvm.Memsys.nvm_words
        in
        table :=
          Some
            (`Transient
              (Pds.Hashmap_transient.create env
                 (Pds.Mem_iface.of_env_bump env bump)
                 ~buckets:4096))
  in
  let wait_of ~slot cv m =
    match persistence with
    | App_env.Transient -> Simsched.Condvar.wait sched cv m
    | App_env.Durable rt -> Respct.Runtime.cond_wait rt ~slot cv m
  in
  let makespan =
    App_env.run_workers ~setup env persistence ~nthreads (fun ~slot ->
        let wait cv m = wait_of ~slot cv m in
        if slot = 0 then begin
          (* producer: fragment the input stream *)
          for i = 0 to cfg.chunks - 1 do
            Simsched.Env.compute env 30.0;
            Bq.push sched wait chunk_q ((i * 2654435761) mod cfg.distinct);
            App_env.rp persistence ~slot 1
          done;
          for _ = 1 to cfg.hashers do
            Bq.push sched wait chunk_q (-1)
          done
        end
        else if slot <= cfg.hashers then begin
          (* hashers: fingerprint each chunk *)
          let continue = ref true in
          while !continue do
            App_env.rp persistence ~slot 2;
            let c = Bq.pop sched wait chunk_q in
            if c = -1 then continue := false
            else begin
              Simsched.Env.compute env hash_compute_ns;
              Bq.push sched wait hashed_q c
            end
          done;
          Bq.push sched wait hashed_q (-1)
        end
        else begin
          (* writers: insert into the persistent dedup table *)
          let continue = ref true in
          while !continue do
            App_env.rp persistence ~slot 3;
            let c = Bq.pop sched wait hashed_q in
            if c = -1 then begin
              continue := false;
              (* recycle the marker so every writer terminates regardless of
                 the hasher/writer ratio *)
              Bq.push sched wait hashed_q (-1)
            end
            else begin
              let fresh =
                match Option.get !table with
                | `Respct m -> Pds.Hashmap_respct.insert m ~slot ~key:c ~value:1
                | `Transient m ->
                    Pds.Hashmap_transient.insert m ~slot ~key:c ~value:1
              in
              if fresh then
                Simsched.Mutex.with_lock sched unique_m (fun () -> incr unique)
            end
          done
        end)
  in
  (makespan, !unique)
