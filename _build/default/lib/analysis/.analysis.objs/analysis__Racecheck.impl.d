lib/analysis/racecheck.ml: Hashtbl List Option
