lib/analysis/idempotence.ml: Fmt List
