lib/analysis/idempotence.mli: Fmt
