lib/analysis/racecheck.mli:
