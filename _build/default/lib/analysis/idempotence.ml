(* Idempotence analysis of straight-line access sequences (paper Table 2
   and section 3.3.2, after De Kruijf et al., PLDI'12).

   A program sub-part re-executed from a restart point computes the same
   result iff no variable's first access sequence is a write-after-read
   (WAR): re-execution would read the value a previous execution already
   overwrote. The paper derives from this the rule for which persistent
   variables need InCLL logging; this module implements that rule over an
   explicit access trace — the automation direction the paper's section 6
   sketches as future work. *)

type access = Read of string | Write of string

type classification =
  | No_dependency  (** never both read and written *)
  | Raw  (** first write precedes first read: idempotent *)
  | War  (** read before the first write: requires logging *)

let classify trace var =
  (* The verdict is decided by the first write: a preceding read makes the
     sequence WAR, otherwise RAW; with no write there is no dependency. *)
  let rec scan seen_read = function
    | [] -> No_dependency
    | Read v :: rest when v = var -> scan true rest
    | Write v :: _ when v = var -> if seen_read then War else Raw
    | _ :: rest -> scan seen_read rest
  in
  scan false trace

let idempotent trace =
  let vars =
    List.sort_uniq compare
      (List.map (function Read v | Write v -> v) trace)
  in
  List.for_all (fun v -> classify trace v <> War) vars

(* Variables of the trace that the section 3.3.2 rule says need InCLL. *)
let needs_logging trace =
  let vars =
    List.sort_uniq compare
      (List.map (function Read v | Write v -> v) trace)
  in
  List.filter (fun v -> classify trace v = War) vars

(* The two sequences of paper Table 2. *)
let table2_raw = [ Write "x"; Read "x"; Write "y" ]
let table2_war = [ Read "x"; Write "y"; Write "x" ]

let pp_access ppf = function
  | Read v -> Fmt.pf ppf "read %s" v
  | Write v -> Fmt.pf ppf "write %s" v

let pp_classification ppf = function
  | No_dependency -> Fmt.string ppf "no dependency"
  | Raw -> Fmt.string ppf "RAW (idempotent)"
  | War -> Fmt.string ppf "WAR (needs logging)"
