(* Vector-clock data-race checker for access traces.

   ResPCT assumes race-free lock-based programs (paper section 2.1): two
   conflicting accesses to the same variable must be ordered by
   happens-before edges induced by lock release/acquire pairs. This checker
   validates that assumption for recorded traces: it implements the
   standard vector-clock algorithm (FastTrack-style, unoptimised) over an
   event list of reads, writes, acquires and releases. *)

type event =
  | Racq of { thread : int; lock : int }
  | Rrel of { thread : int; lock : int }
  | Rread of { thread : int; addr : int }
  | Rwrite of { thread : int; addr : int }

type race = { addr : int; first_thread : int; second_thread : int }

module Vc = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let get (t : t) i = Option.value ~default:0 (Hashtbl.find_opt t i)
  let set (t : t) i v = Hashtbl.replace t i v

  let join (a : t) (b : t) =
    Hashtbl.iter (fun i v -> if v > get a i then set a i v) b

  let copy (t : t) : t = Hashtbl.copy t

  (* a <= b pointwise *)
  let leq (a : t) (b : t) =
    Hashtbl.fold (fun i v acc -> acc && v <= get b i) a true
end

type shadow = {
  mutable last_writes : (int * int) list; (* (thread, clock) per writer *)
  mutable last_reads : (int * int) list;
}

let check events =
  let threads : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let locks : (int, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let vars : (int, shadow) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let vc_of thread =
    match Hashtbl.find_opt threads thread with
    | Some vc -> vc
    | None ->
        let vc = Vc.create () in
        Vc.set vc thread 1;
        Hashtbl.add threads thread vc;
        vc
  in
  let shadow_of addr =
    match Hashtbl.find_opt vars addr with
    | Some s -> s
    | None ->
        let s = { last_writes = []; last_reads = [] } in
        Hashtbl.add vars addr s;
        s
  in
  let happens_before (thread, clock) vc =
    (* event (thread, clock) happens-before the state vc *)
    clock <= Vc.get vc thread
  in
  List.iter
    (fun ev ->
      match ev with
      | Racq { thread; lock } -> (
          let vc = vc_of thread in
          match Hashtbl.find_opt locks lock with
          | Some lvc -> Vc.join vc lvc
          | None -> ())
      | Rrel { thread; lock } ->
          let vc = vc_of thread in
          Hashtbl.replace locks lock (Vc.copy vc);
          Vc.set vc thread (Vc.get vc thread + 1)
      | Rread { thread; addr } ->
          let vc = vc_of thread in
          let s = shadow_of addr in
          List.iter
            (fun (w, c) ->
              if w <> thread && not (happens_before (w, c) vc) then
                races := { addr; first_thread = w; second_thread = thread } :: !races)
            s.last_writes;
          s.last_reads <-
            (thread, Vc.get vc thread)
            :: List.filter (fun (th, _) -> th <> thread) s.last_reads
      | Rwrite { thread; addr } ->
          let vc = vc_of thread in
          let s = shadow_of addr in
          List.iter
            (fun (w, c) ->
              if w <> thread && not (happens_before (w, c) vc) then
                races := { addr; first_thread = w; second_thread = thread } :: !races)
            s.last_writes;
          List.iter
            (fun (r, c) ->
              if r <> thread && not (happens_before (r, c) vc) then
                races := { addr; first_thread = r; second_thread = thread } :: !races)
            s.last_reads;
          s.last_writes <- [ (thread, Vc.get vc thread) ];
          s.last_reads <- [])
    events;
  List.rev !races

let race_free events = check events = []

let _ = Vc.leq (* exposed for tests of the vector-clock lattice *)
