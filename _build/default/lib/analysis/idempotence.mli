(** Idempotence analysis of straight-line access sequences (paper Table 2
    and section 3.3.2, after De Kruijf et al., PLDI'12).

    A program sub-part re-executed from a restart point computes the same
    result iff no variable's access sequence begins with a
    write-after-read; the paper derives from this the rule deciding which
    persistent variables need InCLL logging. This module implements that
    rule over explicit traces — the automation direction the paper's
    section 6 sketches as future work (see also {!Trace} for traces
    recorded from running simulated code). *)

type access = Read of string | Write of string

type classification =
  | No_dependency  (** never written in the trace *)
  | Raw  (** first write precedes any read of it: idempotent *)
  | War  (** read before the first write: requires logging *)

val classify : access list -> string -> classification
(** Classify one variable's dependency pattern in the trace. *)

val idempotent : access list -> bool
(** Whether re-executing the whole trace is safe without logging. *)

val needs_logging : access list -> string list
(** The variables the section 3.3.2 rule marks as requiring InCLL. *)

val table2_raw : access list
(** The paper's Table 2 RAW sequence: [x=5; y=x]. *)

val table2_war : access list
(** The paper's Table 2 WAR sequence: [y=x; x=8]. *)

val pp_access : access Fmt.t
val pp_classification : classification Fmt.t
