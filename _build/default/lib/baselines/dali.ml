(* Dali (Nawab et al., DISC'17): a periodically persistent hash map.

   Updates prepend a version record to the bucket's chain with plain NVMM
   stores — no flushes on the operation path. Reads traverse the chain and
   take the newest version of the key (read indirection: chains hold stale
   versions until the epoch boundary). At each epoch the coordinator
   flushes the dirty buckets and compacts their chains, retiring superseded
   versions.

   Record: [key; value; next]; a tombstone is a record whose value is
   [tombstone]. *)

let record_words = 3
let tombstone = min_int

type t = {
  env : Simsched.Env.t;
  gate : Epoch_gate.t;
  buckets : int;
  heads : int; (* NVMM bucket array *)
  locks : Simsched.Mutex.t array;
  nvm_bump : Pds.Bump.t;
  dirty : (int, unit) Hashtbl.t; (* dirty buckets this epoch *)
  flusher_pool : int;
  mutable compacted : int;
}

let bucket t key = (key land max_int) mod t.buckets

(* Epoch boundary: flush every dirty bucket's chain, then compact it
   (newest version per key wins; tombstones and stale versions retire). *)
let epoch_body t () =
  let m = Simsched.Env.mem t.env in
  let saved = Simnvm.Memsys.get_charge m in
  let acc = ref 0.0 in
  Simnvm.Memsys.set_charge m (fun ns -> acc := !acc +. ns);
  Hashtbl.iter
    (fun b () ->
      let head_addr = t.heads + b in
      Simnvm.Memsys.pwb m head_addr;
      (* flush the chain records *)
      let rec flush_chain node =
        if node <> 0 then begin
          Simnvm.Memsys.pwb m node;
          flush_chain (Simnvm.Memsys.load m (node + 2))
        end
      in
      flush_chain (Simnvm.Memsys.load m head_addr);
      (* compact: rebuild keeping the newest version of each key *)
      let seen = Hashtbl.create 8 in
      let keep = ref [] in
      let rec scan node =
        if node <> 0 then begin
          let key = Simnvm.Memsys.load m node in
          let value = Simnvm.Memsys.load m (node + 1) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            if value <> tombstone then keep := node :: !keep
            else Pds.Bump.free t.nvm_bump node ~words:record_words
          end
          else begin
            Pds.Bump.free t.nvm_bump node ~words:record_words;
            t.compacted <- t.compacted + 1
          end;
          scan (Simnvm.Memsys.load m (node + 2))
        end
      in
      scan (Simnvm.Memsys.load m head_addr);
      (* !keep is oldest-first; relink preserving newest-first order *)
      let new_head =
        List.fold_left
          (fun next node ->
            Simnvm.Memsys.store m (node + 2) next;
            Simnvm.Memsys.pwb m node;
            node)
          0 !keep
      in
      Simnvm.Memsys.store m head_addr new_head;
      Simnvm.Memsys.pwb m head_addr)
    t.dirty;
  Simnvm.Memsys.psync m;
  Simnvm.Memsys.set_charge m saved;
  Simsched.Scheduler.charge (Simsched.Env.sched t.env)
    (!acc /. float_of_int (max 1 t.flusher_pool));
  Hashtbl.reset t.dirty

let create env ~max_threads ~period_ns ~flusher_pool ~buckets =
  let sched = Simsched.Env.sched env in
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let nvm_bump =
    Pds.Bump.create env ~base:lw ~limit:mcfg.Simnvm.Memsys.nvm_words
  in
  let heads = Pds.Bump.alloc nvm_bump ~words:buckets in
  let t =
    {
      env;
      gate = Epoch_gate.create sched ~max_threads;
      buckets;
      heads;
      locks = Array.init buckets (fun _ -> Simsched.Mutex.create ~name:"dali" ());
      nvm_bump;
      dirty = Hashtbl.create 256;
      flusher_pool;
      compacted = 0;
    }
  in
  Epoch_gate.start t.gate ~period_ns (epoch_body t);
  t

let prepend t ~key ~value b =
  let r = Pds.Bump.alloc t.nvm_bump ~words:record_words in
  let head_addr = t.heads + b in
  Simsched.Env.store t.env r key;
  Simsched.Env.store t.env (r + 1) value;
  Simsched.Env.store t.env (r + 2) (Simsched.Env.load t.env head_addr);
  Simsched.Env.store t.env head_addr r;
  Hashtbl.replace t.dirty b ()

(* Newest version of the key in the chain, 0 when absent. *)
let rec find t node key =
  if node = 0 then 0
  else if Simsched.Env.load t.env node = key then node
  else find t (Simsched.Env.load t.env (node + 2)) key

let sched t = Simsched.Env.sched t.env

let insert t ~slot:_ ~key ~value =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      let existing = find t (Simsched.Env.load t.env (t.heads + b)) key in
      let fresh =
        existing = 0 || Simsched.Env.load t.env (existing + 1) = tombstone
      in
      prepend t ~key ~value b;
      fresh)

let search t ~slot:_ ~key =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      match find t (Simsched.Env.load t.env (t.heads + b)) key with
      | 0 -> None
      | node ->
          let v = Simsched.Env.load t.env (node + 1) in
          if v = tombstone then None else Some v)

let remove t ~slot:_ ~key =
  let b = bucket t key in
  Simsched.Mutex.with_lock (sched t) t.locks.(b) (fun () ->
      match find t (Simsched.Env.load t.env (t.heads + b)) key with
      | 0 -> false
      | node ->
          if Simsched.Env.load t.env (node + 1) = tombstone then false
          else begin
            prepend t ~key ~value:tombstone b;
            true
          end)

let system t : Pds.Ops.system =
  {
    Pds.Ops.sys_register = (fun ~slot -> Epoch_gate.register t.gate ~slot);
    sys_deregister = (fun ~slot -> Epoch_gate.deregister t.gate ~slot);
    sys_allow = (fun ~slot -> Epoch_gate.allow t.gate ~slot);
    sys_prevent = (fun ~slot -> Epoch_gate.prevent t.gate ~slot);
    sys_stop = (fun () -> Epoch_gate.stop t.gate);
  }

let make_map env ~max_threads ~period_ns ~flusher_pool ~buckets =
  let t = create env ~max_threads ~period_ns ~flusher_pool ~buckets in
  ( {
      Pds.Ops.insert = (fun ~slot ~key ~value -> insert t ~slot ~key ~value);
      remove = (fun ~slot ~key -> remove t ~slot ~key);
      search = (fun ~slot ~key -> search t ~slot ~key);
      map_rp = (fun ~slot ~id:_ -> Epoch_gate.pause_point t.gate ~slot);
    },
    system t )
