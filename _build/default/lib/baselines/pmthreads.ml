(* PMThreads (PLDI'20): versioned shadow copies with page-protection
   tracking.

   During an epoch every update goes to a DRAM shadow of the persistent
   state. Modifications are tracked through the OS page-protection
   mechanism: at the start of each epoch the whole persistent heap is
   write-protected (an mprotect + TLB-shootdown storm whose cost grows with
   the heap size), and the first store to each page takes a fault. At the
   epoch boundary all threads quiesce and the dirty pages are copied to
   NVMM by a flusher pool (we parallelised the copy exactly as the paper's
   authors did for their evaluation -- the stock single flusher was the
   bottleneck).

   This reproduces the trade-off the paper describes: excellent on the
   Queue (tiny hot heap: a handful of faults per epoch, DRAM-speed
   operations) and poor on the HashMap (large heap: per-epoch reprotection
   storm plus a fault for every touched page). *)

let page_words = 512
let dirty_check_ns = 5.0 (* store to an already-writable page *)
let fault_ns = 2_000.0 (* write-protection fault on first touch *)

(* Per-dirty-page mprotect syscall + TLB shootdown when re-arming the
   tracking at the epoch boundary: the dominant cost when the persistent
   state is large, per the paper's analysis of PMThreads. *)
let reprotect_page_ns = 1_500.0
let copy_line_ns = 160.0 (* DRAM read + NVMM streaming write, per line *)

type t = {
  env : Simsched.Env.t;
  gate : Epoch_gate.t;
  dirty : (int, unit) Hashtbl.t;
  ever_touched : (int, unit) Hashtbl.t; (* high-water mark of the heap *)
  flusher_pool : int;
  line_words : int;
  mutable pages_copied : int;
}

let epoch_body t () =
  let pages = Hashtbl.length t.dirty in
  let lines_per_page = page_words / t.line_words in
  let copy =
    float_of_int (pages * lines_per_page)
    *. copy_line_ns
    /. float_of_int (max 1 t.flusher_pool)
  in
  (* Per-dirty-page mprotect + shootdown to re-arm the tracking. *)
  let reprotect = float_of_int pages *. reprotect_page_ns in
  Simsched.Scheduler.charge (Simsched.Env.sched t.env) (copy +. reprotect);
  t.pages_copied <- t.pages_copied + pages;
  Hashtbl.reset t.dirty

let create env ~max_threads ~period_ns ~flusher_pool =
  let sched = Simsched.Env.sched env in
  let t =
    {
      env;
      gate = Epoch_gate.create sched ~max_threads;
      dirty = Hashtbl.create 1024;
      ever_touched = Hashtbl.create 1024;
      flusher_pool;
      line_words = Simsched.Env.line_words env;
      pages_copied = 0;
    }
  in
  Epoch_gate.start t.gate ~period_ns (epoch_body t);
  t

let tracked_store t addr v =
  let page = addr / page_words in
  if Hashtbl.mem t.dirty page then
    Simsched.Scheduler.charge (Simsched.Env.sched t.env) dirty_check_ns
  else begin
    Hashtbl.replace t.dirty page ();
    Hashtbl.replace t.ever_touched page ();
    Simsched.Scheduler.charge (Simsched.Env.sched t.env) fault_ns
  end;
  Simsched.Env.store t.env addr v

(* The shadow lives in DRAM: structures allocate from the DRAM region. *)
let mem t bump =
  {
    Pds.Mem_iface.load = (fun ~slot:_ addr -> Simsched.Env.load t.env addr);
    store = (fun ~slot:_ addr v -> tracked_store t addr v);
    alloc = (fun ~slot:_ ~words -> Pds.Bump.alloc bump ~words);
    free = (fun ~slot:_ addr ~words -> Pds.Bump.free bump addr ~words);
  }

let system t : Pds.Ops.system =
  {
    Pds.Ops.sys_register = (fun ~slot -> Epoch_gate.register t.gate ~slot);
    sys_deregister = (fun ~slot -> Epoch_gate.deregister t.gate ~slot);
    sys_allow = (fun ~slot -> Epoch_gate.allow t.gate ~slot);
    sys_prevent = (fun ~slot -> Epoch_gate.prevent t.gate ~slot);
    sys_stop = (fun () -> Epoch_gate.stop t.gate);
  }

let dram_bump t =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem t.env) in
  let base = mcfg.Simnvm.Memsys.nvm_words in
  Pds.Bump.create t.env ~base ~limit:(base + mcfg.Simnvm.Memsys.dram_words)

let make_map env ~max_threads ~period_ns ~flusher_pool ~buckets =
  let t = create env ~max_threads ~period_ns ~flusher_pool in
  let m = Pds.Hashmap_transient.create env (mem t (dram_bump t)) ~buckets in
  let ops =
    {
      (Pds.Hashmap_transient.ops m) with
      Pds.Ops.map_rp =
        (fun ~slot ~id:_ -> Epoch_gate.pause_point t.gate ~slot);
    }
  in
  (ops, system t)

let make_queue env ~max_threads ~period_ns ~flusher_pool =
  let t = create env ~max_threads ~period_ns ~flusher_pool in
  let q = Pds.Queue_transient.create env (mem t (dram_bump t)) in
  let ops =
    {
      (Pds.Queue_transient.ops q) with
      Pds.Ops.queue_rp =
        (fun ~slot ~id:_ -> Epoch_gate.pause_point t.gate ~slot);
    }
  in
  (ops, system t)
