(* SOFT (Zuriel et al., OOPSLA'19): lock-free durable hash map.

   Volatile index in DRAM (bucket array + CAS-linked nodes), persistent
   nodes in NVMM holding only the data needed for recovery. Searches touch
   the volatile index only — no locks, no flushes — which is why SOFT
   outperforms even the transient lock-based map on read-intensive
   workloads (paper, Figure 8). Inserts and removes persist the pnode with
   one flush + fence.

   Volatile node: [key; value; pnode; next] in DRAM.
   Persistent node: [key; value; valid] in NVMM. *)

let vnode_words = 4
let pnode_words = 3

type t = {
  env : Simsched.Env.t;
  buckets : int;
  heads : int; (* DRAM bucket array *)
  dram_bump : Pds.Bump.t;
  nvm_bump : Pds.Bump.t;
}

let create env ~buckets =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let dram_base = mcfg.Simnvm.Memsys.nvm_words in
  let dram_bump =
    Pds.Bump.create env ~base:dram_base
      ~limit:(dram_base + mcfg.Simnvm.Memsys.dram_words)
  in
  let nvm_bump = Pds.Bump.create env ~base:lw ~limit:mcfg.Simnvm.Memsys.nvm_words in
  let heads = Pds.Bump.alloc dram_bump ~words:buckets in
  { env; buckets; heads; dram_bump; nvm_bump }

let bucket t key = (key land max_int) mod t.buckets

let rec find t node key =
  if node = 0 then 0
  else if Simsched.Env.load t.env node = key then node
  else find t (Simsched.Env.load t.env (node + 3)) key

(* Persist a pnode: one flush + one fence, the whole durability cost of a
   SOFT update. *)
let persist_pnode t ~key ~value ~valid =
  let p = Pds.Bump.alloc t.nvm_bump ~words:pnode_words in
  Simsched.Env.store t.env p key;
  Simsched.Env.store t.env (p + 1) value;
  Simsched.Env.store t.env (p + 2) valid;
  Simsched.Env.pwb t.env p;
  Simsched.Env.psync t.env;
  p

let insert t ~slot:_ ~key ~value =
  let b = t.heads + bucket t key in
  let rec retry () =
    let head = Simsched.Env.load t.env b in
    match find t head key with
    | 0 ->
        let p = persist_pnode t ~key ~value ~valid:1 in
        let v = Pds.Bump.alloc t.dram_bump ~words:vnode_words in
        Simsched.Env.store t.env v key;
        Simsched.Env.store t.env (v + 1) value;
        Simsched.Env.store t.env (v + 2) p;
        Simsched.Env.store t.env (v + 3) head;
        if Simsched.Env.cas t.env b ~expected:head ~desired:v then true
        else begin
          Pds.Bump.free t.dram_bump v ~words:vnode_words;
          retry ()
        end
    | node ->
        (* update in place: new pnode persisted, old one invalidated *)
        let p_old = Simsched.Env.load t.env (node + 2) in
        let p = persist_pnode t ~key ~value ~valid:1 in
        Simsched.Env.store t.env (node + 1) value;
        Simsched.Env.store t.env (node + 2) p;
        Simsched.Env.store t.env (p_old + 2) 0;
        Simsched.Env.pwb t.env (p_old + 2);
        Simsched.Env.psync t.env;
        false
  in
  retry ()

let search t ~slot:_ ~key =
  (* flush-free, lock-free: the SOFT fast path *)
  let head = Simsched.Env.load t.env (t.heads + bucket t key) in
  match find t head key with
  | 0 -> None
  | node -> Some (Simsched.Env.load t.env (node + 1))

let remove t ~slot:_ ~key =
  let b = t.heads + bucket t key in
  let rec unlink prev node =
    if node = 0 then false
    else if Simsched.Env.load t.env node = key then begin
      (* durability point: invalidate the pnode *)
      let p = Simsched.Env.load t.env (node + 2) in
      Simsched.Env.store t.env (p + 2) 0;
      Simsched.Env.pwb t.env (p + 2);
      Simsched.Env.psync t.env;
      let nxt = Simsched.Env.load t.env (node + 3) in
      let target = if prev = 0 then b else prev + 3 in
      if Simsched.Env.cas t.env target ~expected:node ~desired:nxt then true
      else unlink_retry ()
    end
    else unlink node (Simsched.Env.load t.env (node + 3))
  and unlink_retry () = unlink 0 (Simsched.Env.load t.env b) in
  unlink_retry ()

let make_map env ~buckets =
  let t = create env ~buckets in
  ( {
      Pds.Ops.insert = (fun ~slot ~key ~value -> insert t ~slot ~key ~value);
      remove = (fun ~slot ~key -> remove t ~slot ~key);
      search = (fun ~slot ~key -> search t ~slot ~key);
      map_rp = Pds.Ops.no_rp;
    },
    Pds.Ops.null_system )
