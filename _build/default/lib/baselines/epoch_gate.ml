(* Generic epoch/quiescence service for the checkpointing baselines
   (PMThreads, Montage, Dali): worker threads call [pause_point] between
   operations; the periodic coordinator raises the gate, waits for every
   registered worker to pause, runs the epoch body (copying shadow pages,
   flushing payload buffers, ...) and releases everyone.

   Unlike ResPCT's restart points, the pause points carry no persistent
   state of their own -- these systems define their recovery state by
   critical-section/operation boundaries (paper section 2.2). *)

type t = {
  sched : Simsched.Scheduler.t;
  m : Simsched.Mutex.t;
  arrival : Simsched.Condvar.t;
  released : Simsched.Condvar.t;
  mutable gate_up : bool;
  mutable stop_requested : bool;
  active : bool array;
  paused : bool array;
  mutable epochs : int;
}

let create sched ~max_threads =
  {
    sched;
    m = Simsched.Mutex.create ~name:"epoch-gate" ();
    arrival = Simsched.Condvar.create ~name:"gate-arrival" ();
    released = Simsched.Condvar.create ~name:"gate-release" ();
    gate_up = false;
    stop_requested = false;
    active = Array.make max_threads false;
    paused = Array.make max_threads false;
    epochs = 0;
  }

let register t ~slot =
  Simsched.Mutex.with_lock t.sched t.m (fun () -> t.active.(slot) <- true)

let deregister t ~slot =
  Simsched.Mutex.with_lock t.sched t.m (fun () ->
      t.active.(slot) <- false;
      t.paused.(slot) <- false;
      Simsched.Condvar.signal t.sched t.arrival)

let flag_check_ns = 2.0

let pause_point t ~slot =
  Simsched.Scheduler.charge t.sched flag_check_ns;
  if t.gate_up then begin
    Simsched.Mutex.lock t.sched t.m;
    if t.gate_up then begin
      t.paused.(slot) <- true;
      Simsched.Condvar.signal t.sched t.arrival;
      while t.gate_up do
        Simsched.Condvar.wait t.sched t.released t.m
      done;
      t.paused.(slot) <- false
    end;
    Simsched.Mutex.unlock t.sched t.m
  end

(* Blocking-call protocol (mirrors ResPCT's checkpoint_allow/prevent): a
   thread about to block marks itself paused so epochs can proceed without
   it; on return it waits out any ongoing epoch before resuming. *)
let allow t ~slot =
  Simsched.Mutex.with_lock t.sched t.m (fun () ->
      t.paused.(slot) <- true;
      Simsched.Condvar.signal t.sched t.arrival)

let prevent t ~slot =
  Simsched.Mutex.lock t.sched t.m;
  while t.gate_up do
    Simsched.Condvar.wait t.sched t.released t.m
  done;
  t.paused.(slot) <- false;
  Simsched.Mutex.unlock t.sched t.m

let all_paused t =
  let ok = ref true in
  Array.iteri (fun i a -> if a && not t.paused.(i) then ok := false) t.active;
  !ok

(* Run one epoch boundary: quiesce, run [body], release. *)
let run_epoch t body =
  Simsched.Mutex.lock t.sched t.m;
  t.gate_up <- true;
  while not (all_paused t) do
    Simsched.Condvar.wait t.sched t.arrival t.m
  done;
  body ();
  t.epochs <- t.epochs + 1;
  t.gate_up <- false;
  Simsched.Condvar.broadcast t.sched t.released;
  Simsched.Mutex.unlock t.sched t.m

let start t ~period_ns body =
  ignore
    (Simsched.Scheduler.spawn ~name:"epoch-coordinator" t.sched (fun () ->
         let rec loop deadline =
           Simsched.Scheduler.sleep_until t.sched deadline;
           if not t.stop_requested then begin
             run_epoch t body;
             loop
               (Float.max
                  (deadline +. period_ns)
                  (Simsched.Scheduler.now t.sched))
           end
         in
         loop (Simsched.Scheduler.now t.sched +. period_ns)))

let stop t = t.stop_requested <- true
let epochs t = t.epochs
