(* Montage (ICPP'21): buffered durability through copy-on-write payloads.

   Every update allocates a fresh persistent payload block from a shared
   allocator (the paper's identified Montage cost: allocator stress), while
   indexes and pointers stay in DRAM. Payloads written during an epoch are
   flushed at the epoch boundary by the background coordinator. The FIFO
   queue additionally maintains a persistent global sequence number updated
   inside the critical section — the metadata Montage needs to rebuild the
   queue order at recovery (paper footnote 3), and its second cost.

   Retired payloads are reclaimed one epoch later (Montage's epoch-based
   reclamation). *)

let payload_words = 4 (* key/value/epoch-tag/valid *)

type t = {
  env : Simsched.Env.t;
  gate : Epoch_gate.t;
  alloc_lock : Simsched.Mutex.t; (* the shared payload allocator *)
  nvm_bump : Pds.Bump.t;
  to_flush : int list ref array; (* per-slot payloads written this epoch *)
  retired : (int * int) list ref array; (* per-slot, reclaim next epoch *)
  flusher_pool : int;
  mutable flushed_payloads : int;
}

let epoch_body t () =
  let m = Simsched.Env.mem t.env in
  let saved = Simnvm.Memsys.get_charge m in
  let acc = ref 0.0 in
  Simnvm.Memsys.set_charge m (fun ns -> acc := !acc +. ns);
  Array.iter
    (fun l ->
      List.iter
        (fun p ->
          Simnvm.Memsys.pwb m p;
          t.flushed_payloads <- t.flushed_payloads + 1)
        !l;
      l := [])
    t.to_flush;
  Simnvm.Memsys.psync m;
  Simnvm.Memsys.set_charge m saved;
  Simsched.Scheduler.charge (Simsched.Env.sched t.env)
    (!acc /. float_of_int (max 1 t.flusher_pool));
  (* Epoch-based reclamation: payloads retired during the epoch that just
     persisted are now reusable. *)
  Array.iter
    (fun l ->
      List.iter (fun (addr, words) -> Pds.Bump.free t.nvm_bump addr ~words) !l;
      l := [])
    t.retired

let create env ~max_threads ~period_ns ~flusher_pool =
  let sched = Simsched.Env.sched env in
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem env) in
  let lw = mcfg.Simnvm.Memsys.line_words in
  let t =
    {
      env;
      gate = Epoch_gate.create sched ~max_threads;
      alloc_lock = Simsched.Mutex.create ~name:"montage-alloc" ();
      nvm_bump =
        Pds.Bump.create env ~base:lw
          ~limit:(mcfg.Simnvm.Memsys.nvm_words - lw);
      to_flush = Array.init max_threads (fun _ -> ref []);
      retired = Array.init max_threads (fun _ -> ref []);
      flusher_pool;
      flushed_payloads = 0;
    }
  in
  Epoch_gate.start t.gate ~period_ns (epoch_body t);
  t

(* Allocate and fill a payload: the shared allocator is a contention point
   by design. *)
let new_payload t ~slot ~key ~value =
  let sched = Simsched.Env.sched t.env in
  let p =
    Simsched.Mutex.with_lock sched t.alloc_lock (fun () ->
        Pds.Bump.alloc t.nvm_bump ~words:payload_words)
  in
  Simsched.Env.store t.env p key;
  Simsched.Env.store t.env (p + 1) value;
  Simsched.Env.store t.env (p + 2) (Epoch_gate.epochs t.gate);
  Simsched.Env.store t.env (p + 3) 1;
  let l = t.to_flush.(slot) in
  l := p :: !l;
  p

let retire t ~slot p =
  let l = t.retired.(slot) in
  l := (p, payload_words) :: !l

let dram_bump t =
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem t.env) in
  let base = mcfg.Simnvm.Memsys.nvm_words in
  Pds.Bump.create t.env ~base ~limit:(base + mcfg.Simnvm.Memsys.dram_words)

let system t : Pds.Ops.system =
  {
    Pds.Ops.sys_register = (fun ~slot -> Epoch_gate.register t.gate ~slot);
    sys_deregister = (fun ~slot -> Epoch_gate.deregister t.gate ~slot);
    sys_allow = (fun ~slot -> Epoch_gate.allow t.gate ~slot);
    sys_prevent = (fun ~slot -> Epoch_gate.prevent t.gate ~slot);
    sys_stop = (fun () -> Epoch_gate.stop t.gate);
  }

(* Map: DRAM index from keys to payload addresses; reads go through to the
   payload in NVMM. *)
let make_map env ~max_threads ~period_ns ~flusher_pool ~buckets =
  let t = create env ~max_threads ~period_ns ~flusher_pool in
  let index =
    Pds.Hashmap_transient.create env
      (Pds.Mem_iface.of_env_bump env (dram_bump t))
      ~buckets
  in
  let insert ~slot ~key ~value =
    let p = new_payload t ~slot ~key ~value in
    Pds.Hashmap_transient.insert index ~slot ~key ~value:p
  in
  let search ~slot ~key =
    match Pds.Hashmap_transient.search index ~slot ~key with
    | None -> None
    | Some p -> Some (Simsched.Env.load t.env (p + 1))
  in
  let remove ~slot ~key =
    match Pds.Hashmap_transient.search index ~slot ~key with
    | None -> false
    | Some p ->
        retire t ~slot p;
        (* anti-node payload records the deletion for recovery *)
        ignore (new_payload t ~slot ~key ~value:0);
        Pds.Hashmap_transient.remove index ~slot ~key
  in
  ( {
      Pds.Ops.insert;
      remove;
      search;
      map_rp = (fun ~slot ~id:_ -> Epoch_gate.pause_point t.gate ~slot);
    },
    system t )

(* Queue: DRAM sentinel list of payload pointers, a single lock, and the
   persistent global sequence number updated inside the critical section —
   the recovery metadata that limits Montage's queue performance (paper
   section 5.1). The payload is allocated before entering the section, as
   Montage does. *)
let make_queue env ~max_threads ~period_ns ~flusher_pool =
  let t = create env ~max_threads ~period_ns ~flusher_pool in
  let sched = Simsched.Env.sched t.env in
  let mcfg = Simnvm.Memsys.config (Simsched.Env.mem t.env) in
  (* the global persistent sequence number lives in its own line *)
  let seq_addr = mcfg.Simnvm.Memsys.nvm_words - mcfg.Simnvm.Memsys.line_words in
  let bump = dram_bump t in
  let lock = Simsched.Mutex.create ~name:"montage-queue" () in
  (* DRAM node: [payload; next]; head/tail pointers in DRAM too *)
  let ptrs = Pds.Bump.alloc bump ~words:2 in
  let sentinel = Pds.Bump.alloc bump ~words:2 in
  Simsched.Env.store t.env (sentinel + 1) 0;
  Simsched.Env.store t.env ptrs sentinel;
  Simsched.Env.store t.env (ptrs + 1) sentinel;
  let enqueue ~slot v =
    let p = new_payload t ~slot ~key:0 ~value:v in
    let node = Pds.Bump.alloc bump ~words:2 in
    Simsched.Mutex.with_lock sched lock (fun () ->
        (* seqno persisted with the element: NVMM write in the section *)
        let seq = Simsched.Env.faa t.env seq_addr 1 in
        Simsched.Env.store t.env p seq;
        Simsched.Env.store t.env node p;
        Simsched.Env.store t.env (node + 1) 0;
        let tail = Simsched.Env.load t.env (ptrs + 1) in
        Simsched.Env.store t.env (tail + 1) node;
        Simsched.Env.store t.env (ptrs + 1) node)
  in
  let dequeue ~slot =
    Simsched.Mutex.with_lock sched lock (fun () ->
        let s = Simsched.Env.load t.env ptrs in
        let first = Simsched.Env.load t.env (s + 1) in
        if first = 0 then None
        else begin
          let p = Simsched.Env.load t.env first in
          let v = Simsched.Env.load t.env (p + 1) in
          Simsched.Env.store t.env ptrs first;
          Pds.Bump.free bump s ~words:2;
          retire t ~slot p;
          Some v
        end)
  in
  ( {
      Pds.Ops.enqueue;
      dequeue;
      queue_rp = (fun ~slot ~id:_ -> Epoch_gate.pause_point t.gate ~slot);
    },
    system t )
