(** Generic epoch/quiescence service for the checkpointing baselines
    (PMThreads, Montage, Dali): workers call {!pause_point} between
    operations; the periodic coordinator raises the gate, waits for every
    registered worker to pause, runs the epoch body (copying shadow pages,
    flushing payload buffers, ...) and releases everyone. *)

type t

val create : Simsched.Scheduler.t -> max_threads:int -> t

val register : t -> slot:int -> unit
val deregister : t -> slot:int -> unit

val pause_point : t -> slot:int -> unit
(** Worker-side safe point: blocks while an epoch boundary is running. *)

val allow : t -> slot:int -> unit
(** Mark the worker paused before a blocking call so epochs can proceed
    without it (the analogue of ResPCT's checkpoint_allow). *)

val prevent : t -> slot:int -> unit
(** Resume after the blocking call, waiting out any ongoing epoch. *)

val run_epoch : t -> (unit -> unit) -> unit
(** Quiesce all registered workers, run the body, release (test hook). *)

val start : t -> period_ns:float -> (unit -> unit) -> unit
(** Spawn the periodic coordinator running the body at each boundary. *)

val stop : t -> unit
(** Ask the coordinator to exit at its next boundary. *)

val epochs : t -> int
(** Completed epoch boundaries. *)
