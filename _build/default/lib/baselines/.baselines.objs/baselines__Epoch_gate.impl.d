lib/baselines/epoch_gate.ml: Array Float Simsched
