lib/baselines/durlin.ml: Fatomic Pds Simnvm Simsched
