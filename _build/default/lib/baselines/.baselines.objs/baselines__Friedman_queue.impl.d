lib/baselines/friedman_queue.ml: Pds Simnvm Simsched
