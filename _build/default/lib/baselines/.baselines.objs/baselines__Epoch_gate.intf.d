lib/baselines/epoch_gate.mli: Simsched
