lib/baselines/dali.ml: Array Epoch_gate Hashtbl List Pds Simnvm Simsched
