lib/baselines/soft.ml: Pds Simnvm Simsched
