lib/baselines/montage.ml: Array Epoch_gate List Pds Simnvm Simsched
