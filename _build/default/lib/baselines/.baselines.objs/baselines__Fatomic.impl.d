lib/baselines/fatomic.ml: Array Hashtbl Pds Simnvm Simsched
