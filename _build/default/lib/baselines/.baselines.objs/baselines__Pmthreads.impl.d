lib/baselines/pmthreads.ml: Epoch_gate Hashtbl Pds Simnvm Simsched
