lib/simnvm/rng.mli:
