lib/simnvm/memsys.ml: Addr Array Hashtbl Latency Option Printf Rng Stats
