lib/simnvm/addr.mli: Fmt
