lib/simnvm/latency.mli: Fmt
