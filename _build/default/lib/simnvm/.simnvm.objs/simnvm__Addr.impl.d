lib/simnvm/addr.ml: Fmt
