lib/simnvm/latency.ml: Fmt
