lib/simnvm/stats.ml: Fmt
