lib/simnvm/rng.ml: Int64
