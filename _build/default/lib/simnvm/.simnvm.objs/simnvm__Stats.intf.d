lib/simnvm/stats.mli: Fmt
