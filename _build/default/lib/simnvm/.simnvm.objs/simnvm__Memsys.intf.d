lib/simnvm/memsys.mli: Addr Latency Stats
