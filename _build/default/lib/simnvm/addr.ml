(* Word addresses and cache-line arithmetic.

   The simulated memory is an array of 64-bit words; an address is a word
   index. A cache line groups [line_words] consecutive words (8 by default,
   i.e. a 64-byte line of 8-byte words, matching x86). *)

type t = int

let word_bytes = 8
let default_line_words = 8

let line_of ~line_words addr = addr / line_words
let line_base ~line_words addr = addr - (addr mod line_words)
let offset_in_line ~line_words addr = addr mod line_words
let same_line ~line_words a b = line_of ~line_words a = line_of ~line_words b

(* First address >= addr whose line has at least [words] words remaining,
   i.e. an allocation of [words] starting there does not straddle a line.
   Requires words <= line_words. *)
let align_for ~line_words ~words addr =
  if words > line_words then
    invalid_arg "Addr.align_for: allocation larger than a cache line";
  let off = offset_in_line ~line_words addr in
  if off + words <= line_words then addr else line_base ~line_words addr + line_words

let pp ppf a = Fmt.pf ppf "0x%x" (a * word_bytes)
