(** Latency cost model of the simulated memory hierarchy (nanoseconds).

    Defaults follow the DRAM/Optane ratios measured by Yang et al. (FAST'20):
    NVMM read latency 2-3x DRAM and markedly more expensive write-backs. *)

type t = {
  cache_hit_ns : float;  (** load/store hitting the cache *)
  dram_miss_ns : float;  (** line fill from DRAM *)
  nvm_miss_ns : float;  (** line fill from NVMM *)
  store_extra_ns : float;  (** extra cost of a store over a load *)
  clwb_ns : float;  (** pwb: issue + drain of one line to NVMM *)
  sfence_ns : float;  (** psync: ordering fence *)
  dram_writeback_ns : float;  (** dirty-line write-back to DRAM *)
  nvm_writeback_ns : float;  (** dirty-line write-back to NVMM *)
}

val default : t
(** Optane-like asymmetric hierarchy. *)

val dram_only : t
(** Same hierarchy with NVMM costs collapsed to DRAM costs; used for the
    paper's Transient<DRAM> configurations. *)

val eadr_of : t -> t
(** [eadr_of base] models eADR (cache in the persistent domain, paper
    section 6): flushes and fences become free. *)

val pp : t Fmt.t
