(* Deterministic splitmix64 PRNG.

   All randomness in the simulator flows through explicitly seeded [Rng.t]
   values so that every experiment and every crash-injection test is exactly
   reproducible from its seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t =
  (* 53 uniform mantissa bits in [0, 1). *)
  let mask53 = (1 lsl 53) - 1 in
  float_of_int (Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) land mask53)
  /. float_of_int (1 lsl 53)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = create (Int64.to_int (next_int64 t))
