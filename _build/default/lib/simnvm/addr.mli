(** Word addresses and cache-line arithmetic.

    The simulated memory is an array of 64-bit words; an address is a word
    index. A cache line groups [line_words] consecutive words (8 by default:
    a 64-byte x86 line of 8-byte words). *)

type t = int

val word_bytes : int
(** Bytes per word (8). *)

val default_line_words : int
(** Words per cache line (8 = 64-byte lines). *)

val line_of : line_words:int -> t -> int
(** Index of the cache line containing the address. *)

val line_base : line_words:int -> t -> t
(** First address of the line containing the address. *)

val offset_in_line : line_words:int -> t -> int
(** Word offset within its line. *)

val same_line : line_words:int -> t -> t -> bool
(** Whether two addresses share a cache line — the property In-Cache-Line
    Logging depends on. *)

val align_for : line_words:int -> words:int -> t -> t
(** [align_for ~line_words ~words addr] is the first address [>= addr] at
    which an allocation of [words] words does not straddle a line boundary.
    @raise Invalid_argument if [words > line_words]. *)

val pp : t Fmt.t
