(** Deterministic splitmix64 pseudo-random number generator.

    Every source of randomness in the simulator (eviction, scheduling jitter,
    workload generation, crash times) is an explicitly seeded [Rng.t], making
    all experiments and failure-injection tests reproducible. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val bits : t -> int
(** 62 uniformly distributed non-negative bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform draw from [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** Derive an independent generator (for per-thread streams). *)
