(* Event counters of the simulated memory system. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable hits : int;
  mutable dram_misses : int;
  mutable nvm_misses : int;
  mutable dram_writebacks : int;
  mutable nvm_writebacks : int;
  mutable pwbs : int;
  mutable psyncs : int;
  mutable spontaneous_evictions : int;
  mutable crashes : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    hits = 0;
    dram_misses = 0;
    nvm_misses = 0;
    dram_writebacks = 0;
    nvm_writebacks = 0;
    pwbs = 0;
    psyncs = 0;
    spontaneous_evictions = 0;
    crashes = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.hits <- 0;
  t.dram_misses <- 0;
  t.nvm_misses <- 0;
  t.dram_writebacks <- 0;
  t.nvm_writebacks <- 0;
  t.pwbs <- 0;
  t.psyncs <- 0;
  t.spontaneous_evictions <- 0;
  t.crashes <- 0

let accesses t = t.loads + t.stores

let hit_rate t =
  let n = accesses t in
  if n = 0 then 1.0 else float_of_int t.hits /. float_of_int n

let pp ppf t =
  Fmt.pf ppf
    "@[<v>accesses=%d (loads=%d stores=%d) hit_rate=%.3f@,\
     misses: dram=%d nvm=%d@,\
     writebacks: dram=%d nvm=%d spontaneous=%d@,\
     pwb=%d psync=%d crashes=%d@]"
    (accesses t) t.loads t.stores (hit_rate t) t.dram_misses t.nvm_misses
    t.dram_writebacks t.nvm_writebacks t.spontaneous_evictions t.pwbs t.psyncs
    t.crashes
