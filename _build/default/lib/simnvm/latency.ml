(* Cost model of the simulated memory hierarchy, in nanoseconds.

   Defaults follow the DRAM/Optane ratios reported by Yang et al.,
   "An empirical guide to the behavior and use of scalable persistent
   memory" (FAST'20): NVM read latency 2-3x DRAM, significantly more
   expensive write-backs, and a non-trivial cost for clwb/sfence. *)

type t = {
  cache_hit_ns : float;      (* load/store hitting the cache *)
  dram_miss_ns : float;      (* line fill from DRAM *)
  nvm_miss_ns : float;       (* line fill from NVMM *)
  store_extra_ns : float;    (* extra cost of a store over a load *)
  clwb_ns : float;           (* pwb: issue + drain of one line to NVMM *)
  sfence_ns : float;         (* psync: ordering fence *)
  dram_writeback_ns : float; (* dirty-line write-back to DRAM *)
  nvm_writeback_ns : float;  (* dirty-line write-back to NVMM *)
}

let default =
  {
    cache_hit_ns = 4.0;
    dram_miss_ns = 80.0;
    (* Effective NVMM miss latency: idle random-read latency on DCPMM is
       ~300ns (2-3x DRAM, Yang et al.), but out-of-order cores overlap
       misses; 160ns reproduces the application-level Transient<NVMM> /
       Transient<DRAM> ratios the paper reports (Figure 10). *)
    nvm_miss_ns = 160.0;
    store_extra_ns = 2.0;
    clwb_ns = 120.0;
    sfence_ns = 90.0;
    dram_writeback_ns = 40.0;
    nvm_writeback_ns = 140.0;
  }

(* A hierarchy without the DRAM/NVM asymmetry: used for Transient<DRAM>
   configurations where the whole address space behaves like DRAM. *)
let dram_only =
  {
    default with
    nvm_miss_ns = default.dram_miss_ns;
    nvm_writeback_ns = default.dram_writeback_ns;
    clwb_ns = default.clwb_ns;
  }

(* eADR (paper section 6): the cache belongs to the persistent domain, so
   flush and fence instructions are free. Miss costs are unchanged. *)
let eadr_of base = { base with clwb_ns = 0.0; sfence_ns = 0.0 }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>hit=%.0fns dram_miss=%.0fns nvm_miss=%.0fns clwb=%.0fns \
     sfence=%.0fns wb(dram)=%.0fns wb(nvm)=%.0fns@]"
    t.cache_hit_ns t.dram_miss_ns t.nvm_miss_ns t.clwb_ns t.sfence_ns
    t.dram_writeback_ns t.nvm_writeback_ns
