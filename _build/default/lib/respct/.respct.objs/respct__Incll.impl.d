lib/respct/incll.ml: Pctx Simnvm Simsched
