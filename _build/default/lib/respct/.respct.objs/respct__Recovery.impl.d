lib/respct/recovery.ml: Array Heap Incll Layout List Runtime Simnvm Simsched
