lib/respct/incll.mli: Pctx Simnvm
