lib/respct/recovery.mli: Incll Layout Simnvm
