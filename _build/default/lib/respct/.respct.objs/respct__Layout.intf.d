lib/respct/layout.mli: Incll
