lib/respct/pctx.ml: Simnvm Simsched
