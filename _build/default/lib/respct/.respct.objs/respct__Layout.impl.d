lib/respct/layout.ml: Incll
