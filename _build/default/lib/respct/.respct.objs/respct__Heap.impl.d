lib/respct/heap.ml: Hashtbl Incll List Pctx Simnvm Simsched
