lib/respct/heap.mli: Incll Pctx Simsched
