lib/respct/pctx.mli: Simnvm Simsched
