lib/respct/runtime.mli: Heap Incll Layout Pctx Simnvm Simsched
