lib/respct/runtime.ml: Array Buffer Float Heap Incll Layout List Pctx Printf Simnvm Simsched
