(** Fixed NVMM layout of the runtime's persistent metadata: the global
    epoch, the heap-cursor and slot-count InCLL cells, per-slot
    registry-length cells, the per-slot RP_id table and the per-slot InCLL
    registry segments. Recovery locates all of it without any volatile
    state. *)

type t = {
  epoch_addr : int;
  cursor_cell : Incll.cell;
  slots_cell : Incll.cell;
  reglen_cells_base : int;
  slot_table_base : int;
  registry_base : int;
  registry_per_slot : int;
  max_threads : int;
  heap_base : int;
  heap_limit : int;
}

val v :
  line_words:int ->
  nvm_words:int ->
  max_threads:int ->
  registry_per_slot:int ->
  t
(** Compute the layout for a memory geometry.
    @raise Invalid_argument if the NVMM region cannot hold the metadata or
    the line size cannot pack two InCLL cells. *)

val max_entry_count : int
(** Largest cell count one range-encoded registry entry can cover. *)

val encode_entry : base:int -> count:int -> int
(** Encode a packed range of [count] InCLL cells starting at [base] as one
    registry entry. @raise Invalid_argument when [count] is out of range. *)

val decode_entry : int -> int * int
(** Inverse of {!encode_entry}: [(base, count)]. *)

val reglen_cell : t -> line_words:int -> int -> Incll.cell
(** Registry-length cell of a slot. *)

val registry_segment : t -> int -> int
(** Base address of a slot's registry segment. *)
