(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (section 5). Each experiment prints a table in the shape of
   the corresponding figure: rows are systems (or configurations), columns
   the swept parameter; throughput is virtual-time Mops/s (see DESIGN.md on
   scaling). A Bechamel suite at the end measures the wall-clock cost of
   miniature instances of each experiment, one Test per table/figure.

   Usage: main.exe [fig8] [fig9] [fig10] [fig11] [fig12] [fig13] [fig14]
                   [tab2] [tab3] [bechamel] [all] [--scale small|paper]
   With no figure argument, everything runs at the small scale. *)

open Harness

let scale = ref Experiments.small
let app_scale = ref App_experiments.small

let thread_header s =
  "threads:" :: List.map string_of_int s.Experiments.sweep_threads

let run_fig8 () =
  List.iter
    (fun (update_pct, rows) ->
      Table.print
        ~title:
          (Printf.sprintf
             "Figure 8: HashMap throughput (Mops/s), %d%% updates / %d%% \
              searches"
             update_pct (100 - update_pct))
        ~header:(thread_header !scale) rows)
    (Experiments.fig8 ~scale:!scale ())

let run_fig9 () =
  Table.print ~title:"Figure 9: Queue throughput (Mops/s), 1:1 enq/deq"
    ~header:(thread_header !scale)
    (Experiments.fig9 ~scale:!scale ())

let run_fig10 () =
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 10: overhead analysis at %d threads (throughput normalised \
          to Transient<DRAM>)"
         !scale.Experiments.fig10_threads)
    ~header:[ "config:"; "Queue"; "HashMap-RI"; "HashMap-WI" ]
    (Experiments.fig10 ~scale:!scale ())

let run_fig11 () =
  Table.print
    ~title:
      "Figure 11: checkpoint-period sweep (HashMap write-intensive; \
       normalised throughput and measured effective period)"
    ~header:[ "period"; "norm. throughput"; "effective period" ]
    (Experiments.fig11 ~scale:!scale ())

let run_fig12 () =
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 12: recovery time vs HashMap size (%d recovery threads)"
         !scale.Experiments.recovery_threads)
    ~header:[ "buckets"; "recovery (ms)"; "registry entries"; "rolled back" ]
    (Experiments.fig12 ~scale:!scale ())

let run_fig13 () =
  Table.print
    ~title:
      "Figure 13: compute-intensive applications (execution time normalised \
       to Transient<DRAM>; last row = section 5.3's naive RP placement)"
    ~header:[ "config:"; "Dedup"; "Swaptions"; "MatMul"; "LR" ]
    (App_experiments.fig13 ~scale:!app_scale ())

let run_fig14 () =
  Table.print
    ~title:"Figure 14: KV store under YCSB (Kops/s)"
    ~header:[ "config:"; "read-intensive"; "balanced"; "write-intensive" ]
    (App_experiments.fig14 ~scale:!app_scale ())

let run_tab2 () =
  let show name trace =
    let cells =
      List.map
        (fun v ->
          Fmt.str "%a" Analysis.Idempotence.pp_classification
            (Analysis.Idempotence.classify trace v))
        [ "x"; "y" ]
    in
    ( name,
      cells
      @ [
          (if Analysis.Idempotence.idempotent trace then "idempotent"
           else "not idempotent");
        ] )
  in
  Table.print
    ~title:"Table 2: RAW/WAR dependencies and idempotence (analysis demo)"
    ~header:[ "sequence"; "x"; "y"; "verdict" ]
    [
      show "x=5; y=x (RAW)" Analysis.Idempotence.table2_raw;
      show "y=x; x=8 (WAR)" Analysis.Idempotence.table2_war;
    ]

let run_tab3 () =
  match Loc_report.rows () with
  | [] ->
      print_endline
        "Table 3: sources not found (run from the repository root to count \
         instrumentation lines)"
  | rows ->
      Table.print
        ~title:
          "Table 3: ResPCT instrumentation lines in the ported applications"
        ~header:[ "application"; "instrumented LoC"; "total LoC"; "%" ]
        rows

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock cost of miniature instances, one per figure. *)

let bechamel () =
  let open Bechamel in
  let tiny =
    {
      !scale with
      Experiments.sweep_threads = [ 4 ];
      duration_ns = 100_000.0;
      map_prefill = 500;
      buckets = 500;
      queue_prefill = 100;
      fig10_threads = 4;
      fig11_periods_ns = [ 64_000.0 ];
      fig12_buckets = [ 2_000 ];
    }
  in
  let tiny_apps =
    {
      !app_scale with
      App_experiments.matmul_n = 12;
      lr_points = 2_000;
      swaptions = 32;
      dedup_chunks = 200;
      kv_load = 300;
      kv_run = 900;
      kv_keys = 300;
      app_threads = 4;
    }
  in
  let stage f = Staged.stage (fun () -> ignore (f ())) in
  let tests =
    Test.make_grouped ~name:"respct-experiments"
      [
        Test.make ~name:"fig8-hashmap"
          (stage (fun () -> Experiments.fig8 ~scale:tiny ()));
        Test.make ~name:"fig9-queue"
          (stage (fun () -> Experiments.fig9 ~scale:tiny ()));
        Test.make ~name:"fig10-overheads"
          (stage (fun () -> Experiments.fig10 ~scale:tiny ()));
        Test.make ~name:"fig11-period-sweep"
          (stage (fun () -> Experiments.fig11 ~scale:tiny ()));
        Test.make ~name:"fig12-recovery"
          (stage (fun () -> Experiments.fig12 ~scale:tiny ()));
        Test.make ~name:"fig13-apps"
          (stage (fun () -> App_experiments.fig13 ~scale:tiny_apps ()));
        Test.make ~name:"fig14-kvstore"
          (stage (fun () -> App_experiments.fig14 ~scale:tiny_apps ()));
        Test.make ~name:"tab2-idempotence"
          (stage (fun () ->
               Analysis.Idempotence.idempotent Analysis.Idempotence.table2_war));
        Test.make ~name:"tab3-loc" (stage (fun () -> Loc_report.rows ()));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:10 ~quota:(Time.second 0.5) ~kde:(Some 5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline
    "\n== Bechamel: wall-clock cost of one miniature run per experiment ==";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-45s %12.3f ms/run\n" name (est /. 1e6)
      | Some [] | None -> Printf.printf "%-45s (no estimate)\n" name)
    results

let all_experiments =
  [
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("fig12", run_fig12);
    ("fig13", run_fig13);
    ("fig14", run_fig14);
    ("tab2", run_tab2);
    ("tab3", run_tab3);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse sel = function
    | [] -> List.rev sel
    | "--scale" :: s :: rest ->
        scale := Experiments.scale_of_string s;
        (app_scale :=
           match s with
           | "paper" -> App_experiments.paper
           | _ -> App_experiments.small);
        parse sel rest
    | "all" :: rest -> parse (List.rev_map fst all_experiments @ sel) rest
    | name :: rest when List.mem_assoc name all_experiments ->
        parse (name :: sel) rest
    | name :: _ ->
        Printf.eprintf "unknown experiment %S; known: %s all --scale\n" name
          (String.concat " " (List.map fst all_experiments));
        exit 2
  in
  let selected = parse [] args in
  let selected =
    if selected = [] then List.map fst all_experiments else selected
  in
  Printf.printf
    "ResPCT evaluation harness — scale=%s (virtual-time results; see \
     EXPERIMENTS.md)\n"
    !scale.Experiments.label;
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      (List.assoc name all_experiments) ();
      Printf.printf "[%s done in %.1fs wall]\n%!" name
        (Unix.gettimeofday () -. t0))
    selected
