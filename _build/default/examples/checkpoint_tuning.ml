(* Checkpoint-period and RP-placement tuning (paper sections 5.2 and 5.3).

   Shows the two knobs a ResPCT user controls:
   - the checkpoint period: shorter periods mean less lost work after a
     crash but more time spent flushing (Figure 11's trade-off);
   - RP granularity: restart points after every item force persistent
     accumulators (InCLL on the hot path); batching keeps the hot path
     volatile (the paper's LR story: 9x -> 20%).

   Run with: dune exec examples/checkpoint_tuning.exe *)

let () =
  let scale =
    {
      Harness.Experiments.small with
      Harness.Experiments.sweep_threads = [ 16 ];
      duration_ns = 1.0e6;
      map_prefill = 10_000;
      buckets = 5_000;
    }
  in
  print_endline "Checkpoint-period sweep (write-intensive HashMap, 16 threads):";
  let base =
    (fst
       (Harness.Experiments.map_point ~update_pct:90 scale
          Harness.Systems.Transient_dram ~threads:16))
      .Harness.Workload.mops
  in
  List.iter
    (fun period_ns ->
      let p =
        {
          (Harness.Experiments.params_for scale ~threads:16
             ~kind:Harness.Systems.Respct)
          with
          Harness.Systems.period_ns;
        }
      in
      let r, rt =
        Harness.Experiments.map_point ~update_pct:90 ~params:p scale
          Harness.Systems.Respct ~threads:16
      in
      let eff =
        match rt with
        | Some rt -> Respct.Runtime.mean_effective_period rt
        | None -> nan
      in
      Printf.printf
        "  period %6.0f us: %5.2f Mops/s (%.2fx of DRAM), effective period \
         %.0f us\n"
        (period_ns /. 1e3) r.Harness.Workload.mops
        (r.Harness.Workload.mops /. base)
        (eff /. 1e3))
    [ 8_000.0; 32_000.0; 128_000.0; 512_000.0 ];
  print_endline "";
  print_endline "RP granularity on the LR kernel (64 threads):";
  let s = { Harness.App_experiments.small with Harness.App_experiments.lr_points = 100_000 } in
  List.iter
    (fun (label, naive) ->
      let t =
        Harness.App_experiments.run_app s Harness.App_experiments.App_respct
          (`Linreg naive)
      in
      Printf.printf "  %-28s %8.0f us\n" label (t /. 1e3))
    [ ("RP per batch of 1000 points", false); ("RP per point (naive)", true) ]
