examples/checkpoint_tuning.ml: Harness List Printf Respct
