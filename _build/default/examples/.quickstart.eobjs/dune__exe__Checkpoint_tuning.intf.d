examples/checkpoint_tuning.mli:
