examples/bank_transfer.ml: Array Printf Respct Simnvm Simsched
