examples/kv_recovery.ml: Hashtbl List Option Pds Printf Respct Simnvm Simsched
