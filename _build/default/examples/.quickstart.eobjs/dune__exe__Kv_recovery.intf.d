examples/kv_recovery.mli:
