examples/quickstart.ml: List Printf Respct Simnvm Simsched
