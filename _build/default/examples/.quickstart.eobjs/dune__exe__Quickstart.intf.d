examples/quickstart.mli:
