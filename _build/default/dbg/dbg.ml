open Harness
let () =
  let s = App_experiments.small in
  List.iter (fun v ->
    let t = App_experiments.run_app s v `Matmul in
    Printf.printf "%-16s matmul %.0f us\n" (App_experiments.variant_name v) (t /. 1e3))
    App_experiments.[App_dram; App_nvm; App_respct]
